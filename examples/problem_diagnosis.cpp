// Problem diagnosis: what went wrong, where, and what did routing do
// about it? Generates a synthetic trace, replays one flow under the
// targeted-redundancy scheme, then walks its problematic intervals:
// classifies each against the ground-truth event log and shows which
// dissemination graph the scheme had selected (including a Graphviz DOT
// dump of the graph used during the worst interval with --dot).
//
//   $ ./problem_diagnosis --source=ATL --destination=SEA --days=3 --dot
#include <algorithm>
#include <iostream>

#include "playback/classification.hpp"
#include "playback/report.hpp"
#include "playback/playback.hpp"
#include "routing/problem_detector.hpp"
#include "trace/synth.hpp"
#include "trace/topology.hpp"
#include "util/config.hpp"
#include "util/strings.hpp"

int main(int argc, char** argv) {
  using namespace dg;
  util::Config args;
  args.applyArgs(argc, argv);

  const auto topology = trace::Topology::ltn12();
  const auto& g = topology.graph();
  const routing::Flow flow{topology.at(args.getString("source", "NYC")),
                           topology.at(args.getString("destination", "SJC"))};

  trace::GeneratorParams generator;
  generator.seed = static_cast<std::uint64_t>(args.getInt("seed", 3));
  generator.duration = util::days(args.getInt("days", 3));
  const auto synthetic = generateSyntheticTrace(g, generator);

  playback::PlaybackParams params;
  params.mcSamples = static_cast<int>(args.getInt("mc_samples", 1000));
  const playback::PlaybackEngine engine(g, synthetic.trace, params);
  const auto result = engine.run(
      flow, routing::SchemeKind::TargetedRedundancy, routing::SchemeParams{});

  std::cout << "flow " << topology.name(flow.source) << "->"
            << topology.name(flow.destination) << ": unavailability "
            << util::formatFixed(result.unavailability * 1e6, 1) << " ppm, "
            << result.problematicIntervals << " problematic intervals\n\n";

  const auto classification = playback::classifyProblems(
      g, synthetic.events, flow, result.problems);
  std::cout << playback::renderClassification(classification) << '\n';

  // Walk the problematic intervals and narrate them.
  const routing::ProblemDetector detector(g, routing::DetectorParams{});
  std::cout << "worst intervals:\n";
  auto problems = result.problems;
  std::sort(problems.begin(), problems.end(),
            [](const auto& a, const auto& b) {
              return a.missProbability > b.missProbability;
            });
  const std::size_t show = std::min<std::size_t>(problems.size(), 10);
  for (std::size_t i = 0; i < show; ++i) {
    const auto& problem = problems[i];
    const auto view =
        routing::NetworkView::atInterval(synthetic.trace, problem.interval);
    const auto situation =
        detector.classify(view, flow.source, flow.destination);
    std::cout << "  t=" << problem.interval * 10 << "s miss="
              << util::formatPercent(problem.missProbability, 1)
              << "  detector: "
              << (situation.source ? "source " : "")
              << (situation.destination ? "destination " : "")
              << (situation.middle ? "middle " : "")
              << (situation.any() ? "" : "(cleared by then)");
    // Ground truth.
    for (const auto& event : synthetic.events) {
      if (!event.activeDuring(problem.interval)) continue;
      std::cout << " | event: "
                << (event.kind == trace::ProblemEvent::Kind::Node
                        ? "site " + topology.name(event.node)
                        : "link " + topology.edgeName(event.link))
                << (event.severity >= 1.0 ? " outage" : " degradation");
    }
    std::cout << '\n';
  }

  if (args.getBool("dot", false) && !problems.empty()) {
    // Re-select the graph the scheme would use for the worst interval and
    // dump it.
    auto scheme =
        routing::makeScheme(routing::SchemeKind::TargetedRedundancy, g, flow,
                            routing::SchemeParams{});
    scheme->initialize(routing::NetworkView::baseline(synthetic.trace));
    const std::size_t worst = problems.front().interval;
    const auto view = routing::NetworkView::atInterval(
        synthetic.trace, worst > 0 ? worst - 1 : 0);
    const auto& dg = scheme->select(view);
    std::cout << "\ndissemination graph in use at t=" << worst * 10
              << "s:\n"
              << dg.toDot([&](graph::NodeId n) { return topology.name(n); });
  }
  return 0;
}
