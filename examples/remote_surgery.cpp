// Remote surgery: the paper's motivating application. A surgeon in NYC
// operates on a patient in LAX; haptic commands flow west and video/
// telemetry feedback flows east, both requiring 130 ms round-trip --
// i.e. each direction must deliver within 65 ms, reliably, for the whole
// procedure.
//
// The example runs the identical procedure (40 simulated minutes with a
// realistic mix of network problems around both sites) twice: once over a
// traditional single path and once over targeted-redundancy dissemination
// graphs, and reports what the surgeon would experience.
#include <iostream>

#include "core/transport.hpp"
#include "trace/synth.hpp"
#include "trace/topology.hpp"
#include "util/strings.hpp"

namespace {

using namespace dg;

struct ProcedureOutcome {
  core::FlowStats command;   // NYC -> LAX
  core::FlowStats feedback;  // LAX -> NYC
};

ProcedureOutcome runProcedure(const trace::Topology& topology,
                              const trace::Trace& conditions,
                              routing::SchemeKind scheme) {
  core::TransportService service(topology, conditions);
  const auto command = service.openFlow("NYC", "LAX", scheme);
  const auto feedback = service.openFlow("LAX", "NYC", scheme);
  service.run(conditions.duration() - util::milliseconds(500));
  return {service.stats(command), service.stats(feedback)};
}

void report(const char* label, const ProcedureOutcome& outcome) {
  const auto line = [](const char* direction, const core::FlowStats& s) {
    std::cout << "  " << util::padRight(direction, 20)
              << util::padLeft(util::formatPercent(s.onTimeRate(), 3), 10)
              << " on time, " << s.lost() << " commands lost, mean latency "
              << util::formatFixed(s.latencyUs.mean() / 1000.0, 1)
              << " ms, cost "
              << util::formatFixed(s.costPerPacket(), 2) << " tx/pkt\n";
  };
  std::cout << label << ":\n";
  line("surgeon -> robot", outcome.command);
  line("robot -> surgeon", outcome.feedback);
  // A control gap: the longest the surgeon could go without an
  // acknowledged command is roughly bounded by consecutive losses; report
  // the simple expectation instead.
  std::cout << '\n';
}

}  // namespace

int main() {
  const auto topology = trace::Topology::ltn12();
  const auto& g = topology.graph();

  // A 40-minute procedure. The network misbehaves: a fluttering
  // degradation at the surgeon's site mid-procedure, a partial outage at
  // the patient's site later, and an unrelated middle-link failure.
  trace::Trace conditions(util::seconds(10), 240,
                          trace::healthyBaseline(g, 1e-4));
  util::Rng rng(7);
  trace::applyEvent(conditions, g,
                    trace::makeNodeEvent(g, topology.at("NYC"), 40, 50,
                                         /*coverage=*/1.0, /*activity=*/0.5,
                                         /*severity=*/0.9, 0, rng),
                    rng, 0.5);
  trace::applyEvent(conditions, g,
                    trace::makeNodeOutageEvent(g, topology.at("LAX"), 140,
                                               40, /*aliveLinks=*/1,
                                               /*severity=*/1.0, 0, rng),
                    rng, 0.5);
  const auto chiDen = g.findEdge(topology.at("CHI"), topology.at("DEN"));
  trace::applyEvent(conditions, g,
                    trace::makeLinkEvent(g, *chiDen, 90, 30, 1.0, 0.95, 0),
                    rng, 0.5);

  std::cout << "=== Remote surgery, NYC surgeon -> LAX patient, 40 min ===\n"
            << "problems: NYC degradation t=400-900s, CHI-DEN link failure "
               "t=900-1200s, LAX partial outage t=1400-1800s\n\n";

  report("Traditional single path (OSPF-like)",
         runProcedure(topology, conditions,
                      routing::SchemeKind::StaticSinglePath));
  report("Two static disjoint paths",
         runProcedure(topology, conditions,
                      routing::SchemeKind::StaticTwoDisjoint));
  report("Targeted-redundancy dissemination graphs",
         runProcedure(topology, conditions,
                      routing::SchemeKind::TargetedRedundancy));

  std::cout << "A procedure is considered safe when >99.9% of commands\n"
               "arrive within the 130 ms round-trip budget; compare the\n"
               "on-time rates above.\n";
  return 0;
}
