// Scheme comparison study using the playback engine (the fast path for
// long horizons): generates a multi-day synthetic condition trace and
// compares every routing scheme for a flow you choose, printing the
// trade-off between timeliness, reliability and cost.
//
//   $ ./scheme_comparison --source=WAS --destination=SEA --days=7
#include <iostream>

#include "playback/experiment.hpp"
#include "playback/report.hpp"
#include "trace/synth.hpp"
#include "trace/topology.hpp"
#include "util/config.hpp"
#include "util/strings.hpp"

int main(int argc, char** argv) {
  using namespace dg;
  util::Config args;
  args.applyArgs(argc, argv);

  const auto topology = trace::Topology::ltn12();
  const std::string source = args.getString("source", "NYC");
  const std::string destination = args.getString("destination", "SJC");

  trace::GeneratorParams generator;
  generator.seed = static_cast<std::uint64_t>(args.getInt("seed", 1));
  generator.duration = util::days(args.getInt("days", 7));
  const auto synthetic =
      generateSyntheticTrace(topology.graph(), generator);

  playback::ExperimentConfig config;
  config.flows = {routing::Flow{topology.at(source),
                                topology.at(destination)}};
  config.playback.mcSamples = static_cast<int>(args.getInt("mc_samples",
                                                           1000));
  const auto result =
      runExperiment(topology.graph(), synthetic.trace, config);

  std::cout << "Flow " << source << "->" << destination << " over "
            << args.getInt("days", 7) << " synthetic days ("
            << synthetic.events.size() << " network events)\n\n";
  std::cout << renderSummaryTable(result, synthetic.trace, 1) << '\n';

  // A simple recommendation based on the measurements.
  const playback::SchemeSummary* best = nullptr;
  for (const auto& summary : result.summary) {
    if (summary.scheme == routing::SchemeKind::TimeConstrainedFlooding)
      continue;  // the price ceiling, not a recommendation
    if (best == nullptr || summary.unavailability < best->unavailability)
      best = &summary;
  }
  if (best != nullptr) {
    std::cout << "recommended scheme: " << routing::schemeName(best->scheme)
              << " (unavailability "
              << util::formatFixed(best->unavailability * 1e6, 1)
              << " ppm at cost "
              << util::formatFixed(best->averageCost, 2)
              << " transmissions/packet)\n";
  }
  return 0;
}
