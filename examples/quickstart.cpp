// Quickstart: stand up the overlay transport service, open one timely-
// reliable flow, inject a source-site problem, and read the delivery
// statistics.
//
//   $ ./quickstart
//
// This is the smallest end-to-end use of the public API: Topology +
// condition trace -> TransportService -> flow -> stats.
#include <iostream>

#include "core/transport.hpp"
#include "trace/synth.hpp"
#include "trace/topology.hpp"
#include "util/strings.hpp"

int main() {
  using namespace dg;

  // 1. The overlay: 12 data centers, 64 directed links (an LTN-like
  //    topology with geo-derived fiber latencies).
  const auto topology = trace::Topology::ltn12();

  // 2. Network conditions for the run: 10 minutes, healthy except for a
  //    partial outage at NYC (all links but one go dark) from t=120s to
  //    t=300s.
  const auto& g = topology.graph();
  trace::Trace conditions(util::seconds(10), 60,
                          trace::healthyBaseline(g, 1e-4));
  util::Rng rng(42);
  const auto outage = trace::makeNodeOutageEvent(
      g, topology.at("NYC"), /*startInterval=*/12, /*intervalCount=*/18,
      /*aliveLinks=*/1, /*severity=*/1.0, 0, rng);
  trace::applyEvent(conditions, g, outage, rng);

  // 3. The transport service and a flow with the paper's guarantee: one
  //    packet every 10 ms, delivered within 65 ms one-way (130 ms RTT).
  core::TransportService service(topology, conditions);
  const auto flow = service.openFlow(
      "NYC", "SJC", routing::SchemeKind::TargetedRedundancy);

  // 4. Run the 10 simulated minutes and report.
  service.run(util::minutes(10) - util::milliseconds(100));
  const auto& stats = service.stats(flow);

  std::cout << "sent:            " << stats.sent << " packets\n"
            << "on time (<=65ms): " << stats.deliveredOnTime << " ("
            << util::formatPercent(stats.onTimeRate(), 3) << ")\n"
            << "late:            " << stats.deliveredLate << '\n'
            << "lost:            " << stats.lost() << '\n'
            << "mean latency:    "
            << util::formatFixed(stats.latencyUs.mean() / 1000.0, 2)
            << " ms\n"
            << "cost:            "
            << util::formatFixed(stats.costPerPacket(), 2)
            << " transmissions/packet\n";
  return 0;
}
