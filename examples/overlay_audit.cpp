// Overlay audit: operations-facing fragility report for an overlay
// topology -- where a single site or link failure disconnects traffic,
// and how much *timely* redundancy each evaluation flow really has under
// its deadline (graph-theoretic connectivity overstates what a 65 ms
// budget can use).
//
//   $ ./overlay_audit                       # audit the builtin ltn12
//   $ ./overlay_audit --topology=mesh.txt   # audit your own (see
//                                           # Topology::fromString format)
#include <iostream>

#include "graph/analysis.hpp"
#include "graph/disjoint_paths.hpp"
#include "graph/shortest_path.hpp"
#include "playback/experiment.hpp"
#include "trace/topology.hpp"
#include "util/config.hpp"
#include "util/strings.hpp"

int main(int argc, char** argv) {
  using namespace dg;
  util::Config args;
  args.applyArgs(argc, argv);

  const auto topology =
      args.has("topology")
          ? trace::Topology::fromFile(args.getString("topology"))
          : trace::Topology::ltn12();
  const auto& g = topology.graph();
  const util::SimTime deadline =
      util::milliseconds(args.getInt("deadline_ms", 65));

  std::cout << "=== Overlay audit: " << topology.siteCount() << " sites, "
            << g.edgeCount() << " directed links ===\n\n";

  if (!graph::isConnected(g)) {
    std::cout << "!! overlay is DISCONNECTED\n\n";
  }

  // Site fragility.
  std::cout << util::padRight("site", 6) << util::padLeft("degree", 8)
            << util::padLeft("articulation", 14)
            << util::padLeft("bridge_links", 14) << '\n';
  for (const auto& entry : graph::fragilityReport(g)) {
    std::cout << util::padRight(topology.name(entry.node), 6)
              << util::padLeft(std::to_string(entry.degree), 8)
              << util::padLeft(entry.articulation ? "YES" : "-", 14)
              << util::padLeft(entry.adjacentBridges > 0
                                   ? std::to_string(entry.adjacentBridges)
                                   : "-",
                               14)
              << '\n';
  }
  const auto bridgeLinks = graph::bridges(g);
  std::cout << "\nbridge links: ";
  if (bridgeLinks.empty()) {
    std::cout << "none (every link failure is survivable)\n";
  } else {
    for (const auto e : bridgeLinks) std::cout << topology.edgeName(e) << ' ';
    std::cout << '\n';
  }

  // Per-flow timely redundancy.
  const auto weights = g.baseLatencies();
  std::cout << "\nper-flow redundancy within "
            << util::formatDuration(deadline) << " one-way:\n";
  std::cout << util::padRight("flow", 12) << util::padLeft("shortest", 10)
            << util::padLeft("connectivity", 14)
            << util::padLeft("timely_disjoint", 17)
            << util::padLeft("min_cut", 9) << '\n';
  for (const auto& flow : playback::transcontinentalFlows(topology)) {
    const auto best =
        graph::shortestPath(g, flow.source, flow.destination, weights);
    const int connectivity = graph::maxNodeDisjointPaths(
        g, flow.source, flow.destination, weights);
    const int timely = graph::timelyDisjointConnectivity(
        g, flow.source, flow.destination, weights, deadline);
    const auto cut =
        graph::minimumEdgeCut(g, flow.source, flow.destination);
    std::cout << util::padRight(topology.name(flow.source) + "->" +
                                    topology.name(flow.destination),
                                12)
              << util::padLeft(util::formatDuration(best.distance), 10)
              << util::padLeft(std::to_string(connectivity), 14)
              << util::padLeft(std::to_string(timely), 17)
              << util::padLeft(std::to_string(cut.size()), 9) << '\n';
    if (timely < 2) {
      std::cout << "    !! fewer than two timely disjoint paths: the "
                   "2-disjoint and targeted schemes degrade to single-path "
                   "protection here\n";
    }
  }
  return 0;
}
