// Playback hot-path throughput benchmark.
//
// Replays the full transcontinental flows x schemes experiment over a
// synthetic week-long trace twice with the same engine parameters:
// once on the legacy path (per-interval vector materialization, no
// memoization -- the pre-optimization baseline, still selectable via
// PlaybackParams) and once on the optimized path (condition-timeline
// cursor + cross-job decision/evaluation memos). It reports wall time,
// replayed intervals per second and heap allocations (counted by the
// operator new replacement below) for both runs, verifies the two
// produce *identical* results, and writes everything to
// BENCH_playback.json.
//
// Two further arms measure the chunk-parallel packed sweep: the trace is
// packed into a temporary dgtrace container and runPackedExperiment is
// timed cold (no decision-memo sidecar) and warm (sidecar written by the
// cold run), end to end including container open and decode. Per-stage
// wall-clock breakdowns (decode / Monte-Carlo / memo / merge) are
// collected for every arm; the two extra clock reads per operation apply
// to all arms equally, so the speedup stays a fair comparison.
//
// Keys: --days=7 --threads=1 --seed=S --mc_samples=N --out=FILE plus the
// trace-generator keys of bench_common.hpp. With --baseline=FILE (a
// previous BENCH_playback.json) the run acts as a regression gate: if
// the optimized arm's intervals_per_second drops more than 10% below the
// baseline's, the bench exits 3.
#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <new>
#include <sstream>
#include <thread>

#include "bench_common.hpp"
#include "playback/experiment.hpp"
#include "playback/playback.hpp"
#include "store/writer.hpp"
#include "util/wall_clock.hpp"

// ---------------------------------------------------------------------
// Allocation instrumentation: global counters fed by replacing the
// default operator new/delete for this binary. The array and sized forms
// forward here per the standard's default behavior.
// ---------------------------------------------------------------------

namespace {
std::atomic<std::uint64_t> g_allocationCount{0};
std::atomic<std::uint64_t> g_allocationBytes{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocationCount.fetch_add(1, std::memory_order_relaxed);
  g_allocationBytes.fetch_add(size, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace dg;

struct RunMeasurement {
  double wallSeconds = 0.0;
  double intervalsPerSecond = 0.0;
  std::uint64_t allocations = 0;
  std::uint64_t allocatedBytes = 0;
  std::vector<playback::FlowSchemeResult> results;
};

/// Runs every (flow, scheme) job on one shared engine, mirroring
/// runExperiment's worker pool (kept local so the engine's memo
/// statistics stay accessible).
RunMeasurement runAllJobs(const playback::PlaybackEngine& engine,
                          const std::vector<routing::Flow>& flows,
                          const std::vector<routing::SchemeKind>& schemes,
                          const routing::SchemeParams& schemeParams,
                          unsigned threadCount) {
  const trace::Trace& trace = engine.trace();
  const std::size_t jobs = flows.size() * schemes.size();
  RunMeasurement m;
  m.results.resize(jobs);

  const std::uint64_t allocBefore =
      g_allocationCount.load(std::memory_order_relaxed);
  const std::uint64_t bytesBefore =
      g_allocationBytes.load(std::memory_order_relaxed);
  util::WallClock stopwatch;
  stopwatch.start();

  std::atomic<std::size_t> next{0};
  const auto worker = [&] {
    for (;;) {
      const std::size_t job = next.fetch_add(1);
      if (job >= jobs) return;
      const std::size_t flowIndex = job / schemes.size();
      const std::size_t schemeIndex = job % schemes.size();
      m.results[job] = engine.run(flows[flowIndex], schemes[schemeIndex],
                                  schemeParams);
    }
  };
  if (threadCount <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threadCount);
    for (unsigned i = 0; i < threadCount; ++i) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }

  m.wallSeconds = stopwatch.elapsedSeconds();
  m.allocations =
      g_allocationCount.load(std::memory_order_relaxed) - allocBefore;
  m.allocatedBytes =
      g_allocationBytes.load(std::memory_order_relaxed) - bytesBefore;
  const double replayed =
      static_cast<double>(jobs) * static_cast<double>(trace.intervalCount());
  m.intervalsPerSecond = m.wallSeconds > 0 ? replayed / m.wallSeconds : 0.0;
  return m;
}

bool resultsIdentical(const std::vector<playback::FlowSchemeResult>& a,
                      const std::vector<playback::FlowSchemeResult>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const auto& x = a[i];
    const auto& y = b[i];
    if (x.unavailability != y.unavailability ||
        x.unavailableSeconds != y.unavailableSeconds ||
        x.problematicIntervals != y.problematicIntervals ||
        x.averageCost != y.averageCost ||
        x.averageLatencyUs != y.averageLatencyUs ||
        x.problems.size() != y.problems.size()) {
      std::cerr << "DIFF job " << i << ": unavail " << x.unavailability
                << " vs " << y.unavailability << ", cost " << x.averageCost
                << " vs " << y.averageCost << ", latency "
                << x.averageLatencyUs << " vs " << y.averageLatencyUs
                << ", problems " << x.problems.size() << " vs "
                << y.problems.size() << ", probIntervals "
                << x.problematicIntervals << " vs " << y.problematicIntervals
                << "\n";
      return false;
    }
    for (std::size_t p = 0; p < x.problems.size(); ++p) {
      if (x.problems[p].interval != y.problems[p].interval ||
          x.problems[p].missProbability != y.problems[p].missProbability) {
        return false;
      }
    }
  }
  return true;
}

void appendRunJson(std::ostringstream& json, const char* name,
                   const RunMeasurement& m) {
  json << "  \"" << name << "\": {\n"
       << "    \"wall_seconds\": " << m.wallSeconds << ",\n"
       << "    \"intervals_per_second\": " << m.intervalsPerSecond << ",\n"
       << "    \"allocations\": " << m.allocations << ",\n"
       << "    \"allocated_bytes\": " << m.allocatedBytes << "\n"
       << "  }";
}

void appendStagesJson(std::ostringstream& json, const char* name,
                      const playback::ExperimentResult::StageBreakdown& s) {
  json << "  \"" << name << "\": {\n"
       << "    \"decode_seconds\": " << static_cast<double>(s.decodeNs) / 1e9
       << ",\n"
       << "    \"mc_seconds\": " << static_cast<double>(s.mcNs) / 1e9
       << ",\n"
       << "    \"memo_seconds\": " << static_cast<double>(s.memoNs) / 1e9
       << ",\n"
       << "    \"merge_seconds\": " << static_cast<double>(s.mergeNs) / 1e9
       << "\n  }";
}

/// Reads `optimized.intervals_per_second` out of a previous bench JSON.
/// Hand-rolled scan (the repo has no JSON parser dependency): finds the
/// "optimized" object, then the key within it. Returns 0 on any miss.
double baselineIntervalsPerSecond(const std::string& path) {
  std::ifstream in(path);
  if (!in) return 0.0;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  const std::size_t obj = text.find("\"optimized\"");
  if (obj == std::string::npos) return 0.0;
  const std::size_t key = text.find("\"intervals_per_second\":", obj);
  if (key == std::string::npos) return 0.0;
  return std::strtod(text.c_str() + key + 23, nullptr);
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::parseArgs(argc, argv);
  // Read the baseline before any output: --baseline and --out may name
  // the same file (CI gates against the committed results in place).
  const double baselineIps =
      args.has("baseline")
          ? baselineIntervalsPerSecond(args.getString("baseline", ""))
          : 0.0;
  const auto topology = trace::Topology::ltn12();

  auto generator = bench::makeGeneratorParams(args);
  generator.duration = util::hours(
      static_cast<std::int64_t>(args.getDouble("days", 7.0) * 24.0));
  const auto synthetic =
      generateSyntheticTrace(topology.graph(), generator);
  const trace::Trace& trace = synthetic.trace;

  const auto flows = playback::transcontinentalFlows(topology);
  const auto schemes = routing::allSchemeKinds();
  const unsigned threads =
      static_cast<unsigned>(args.getInt("threads", 1));

  routing::SchemeParams schemeParams;
  playback::PlaybackParams base;
  base.mcSamples = static_cast<int>(args.getInt("mc_samples", 1000));
  base.collectStageTimings = true;  // all arms pay the same clock reads

  std::cout << "=== playback throughput: " << flows.size() << " flows x "
            << schemes.size() << " schemes over "
            << trace.intervalCount() << " intervals ("
            << util::toSeconds(trace.duration()) / 86'400.0 << " days), "
            << threads << " thread(s) ===\n";

  // Legacy path: per-interval vector materialization, no memoization.
  playback::PlaybackParams legacyParams = base;
  legacyParams.decisionMemo = false;
  legacyParams.conditionCursor = false;
  const playback::PlaybackEngine legacyEngine(topology.graph(), trace,
                                              legacyParams);
  const RunMeasurement legacy =
      runAllJobs(legacyEngine, flows, schemes, schemeParams, threads);
  std::cout << "baseline (legacy):  " << legacy.wallSeconds << " s, "
            << legacy.intervalsPerSecond << " intervals/s, "
            << legacy.allocations << " allocations\n";

  // Optimized path: condition cursor + cross-job memos.
  const playback::PlaybackEngine optimizedEngine(topology.graph(), trace,
                                                 base);
  const RunMeasurement optimized =
      runAllJobs(optimizedEngine, flows, schemes, schemeParams, threads);
  const routing::DecisionMemo::Stats memoStats =
      optimizedEngine.decisionMemo().stats();
  std::cout << "optimized (cursor+memo): " << optimized.wallSeconds
            << " s, " << optimized.intervalsPerSecond << " intervals/s, "
            << optimized.allocations << " allocations\n";

  const double speedup =
      legacy.wallSeconds > 0 && optimized.wallSeconds > 0
          ? legacy.wallSeconds / optimized.wallSeconds
          : 0.0;
  const bool identical =
      resultsIdentical(legacy.results, optimized.results);
  std::cout << "speedup: " << speedup << "x; results identical: "
            << (identical ? "yes" : "NO") << "; decision memo: "
            << memoStats.decisionHits << " hits / "
            << memoStats.decisionMisses << " misses\n";

  playback::ExperimentResult::StageBreakdown optimizedStages;
  {
    const playback::StageTimings& st = optimizedEngine.stageTimings();
    optimizedStages.decodeNs = st.decodeNs.load(std::memory_order_relaxed);
    optimizedStages.mcNs = st.mcNs.load(std::memory_order_relaxed);
    optimizedStages.memoNs = st.memoNs.load(std::memory_order_relaxed);
    optimizedStages.mergeNs = st.mergeNs.load(std::memory_order_relaxed);
  }

  // ---- Chunk-parallel packed sweep, cold and warm memo cache ----------
  const auto tmpDir = std::filesystem::temp_directory_path();
  const std::string packedPath =
      (tmpDir / "bench_playback_trace.dgtrace").string();
  const std::string memoPath =
      (tmpDir / "bench_playback_memo.dgmemo").string();
  store::packTrace(trace, packedPath);
  std::filesystem::remove(memoPath);

  playback::ExperimentConfig chunkedConfig;
  chunkedConfig.flows = flows;
  chunkedConfig.schemes = schemes;
  chunkedConfig.schemeParams = schemeParams;
  chunkedConfig.playback = base;
  chunkedConfig.threads = threads;
  chunkedConfig.memoCachePath = memoPath;

  const auto runChunked = [&](const char* label, RunMeasurement& m) {
    const std::uint64_t allocBefore =
        g_allocationCount.load(std::memory_order_relaxed);
    const std::uint64_t bytesBefore =
        g_allocationBytes.load(std::memory_order_relaxed);
    util::WallClock stopwatch;
    stopwatch.start();
    auto result = playback::runPackedExperiment(topology.graph(), packedPath,
                                                chunkedConfig);
    m.wallSeconds = stopwatch.elapsedSeconds();
    m.allocations =
        g_allocationCount.load(std::memory_order_relaxed) - allocBefore;
    m.allocatedBytes =
        g_allocationBytes.load(std::memory_order_relaxed) - bytesBefore;
    const double replayed = static_cast<double>(flows.size()) *
                            static_cast<double>(schemes.size()) *
                            static_cast<double>(trace.intervalCount());
    m.intervalsPerSecond =
        m.wallSeconds > 0 ? replayed / m.wallSeconds : 0.0;
    m.results = std::move(result.perFlow);
    std::cout << label << ": " << m.wallSeconds << " s, "
              << m.intervalsPerSecond << " intervals/s (memo cache "
              << playback::memoCacheLoadResultName(result.memoCacheLoad)
              << ", " << result.memoStats.decisionHits << " hits)\n";
    return result;
  };

  RunMeasurement chunkedCold;
  const auto coldResult =
      runChunked("chunked cold (packed)", chunkedCold);
  RunMeasurement chunkedWarm;
  const auto warmResult =
      runChunked("chunked warm (packed)", chunkedWarm);
  // The warm sidecar may change timing, never results.
  const bool chunkedIdentical =
      resultsIdentical(chunkedCold.results, chunkedWarm.results);
  if (!chunkedIdentical)
    std::cerr << "FAIL: warm memo cache changed chunked results\n";

  std::ostringstream json;
  json << std::setprecision(17);
  json << "{\n"
       << "  \"days\": " << args.getDouble("days", 7.0) << ",\n"
       << "  \"intervals\": " << trace.intervalCount() << ",\n"
       << "  \"flows\": " << flows.size() << ",\n"
       << "  \"schemes\": " << schemes.size() << ",\n"
       << "  \"jobs\": " << flows.size() * schemes.size() << ",\n"
       << "  \"threads\": " << threads << ",\n"
       << "  \"mc_samples\": " << base.mcSamples << ",\n";
  appendRunJson(json, "baseline", legacy);
  json << ",\n";
  appendRunJson(json, "optimized", optimized);
  json << ",\n";
  appendStagesJson(json, "optimized_stages", optimizedStages);
  json << ",\n";
  appendRunJson(json, "chunked_cold", chunkedCold);
  json << ",\n";
  appendStagesJson(json, "chunked_cold_stages", coldResult.stages);
  json << ",\n";
  appendRunJson(json, "chunked_warm", chunkedWarm);
  json << ",\n";
  appendStagesJson(json, "chunked_warm_stages", warmResult.stages);
  json << ",\n"
       << "  \"speedup\": " << speedup << ",\n"
       << "  \"results_identical\": " << (identical ? "true" : "false")
       << ",\n"
       << "  \"chunked_results_identical\": "
       << (chunkedIdentical ? "true" : "false") << ",\n"
       << "  \"memo_cache\": {\n"
       << "    \"cold_load\": \""
       << playback::memoCacheLoadResultName(coldResult.memoCacheLoad)
       << "\",\n"
       << "    \"warm_load\": \""
       << playback::memoCacheLoadResultName(warmResult.memoCacheLoad)
       << "\",\n"
       << "    \"warm_hits\": " << warmResult.memoStats.decisionHits << ",\n"
       << "    \"warm_misses\": " << warmResult.memoStats.decisionMisses
       << ",\n"
       << "    \"decisions\": " << warmResult.memoStats.decisions << "\n"
       << "  },\n"
       << "  \"decision_memo\": {\n"
       << "    \"hits\": " << memoStats.decisionHits << ",\n"
       << "    \"misses\": " << memoStats.decisionMisses << ",\n"
       << "    \"decisions\": " << memoStats.decisions << ",\n"
       << "    \"edge_lists\": " << memoStats.edgeLists << ",\n"
       << "    \"contexts\": " << memoStats.contexts << "\n"
       << "  }\n"
       << "}\n";

  const std::string outPath =
      args.getString("out", "BENCH_playback.json");
  std::ofstream out(outPath);
  if (!out) {
    std::cerr << "cannot open " << outPath << '\n';
    return 1;
  }
  out << json.str();
  std::cout << "wrote " << outPath << '\n';

  if (!identical) {
    std::cerr << "FAIL: legacy and optimized results differ\n";
    return 1;
  }
  if (!chunkedIdentical) return 1;

  // Regression gate: compare against a previous run's optimized arm.
  if (args.has("baseline")) {
    const double previous = baselineIps;
    if (previous > 0.0 &&
        optimized.intervalsPerSecond < previous * 0.9) {
      std::cerr << "FAIL: optimized throughput "
                << optimized.intervalsPerSecond << " intervals/s is >10% below baseline "
                << previous << " intervals/s\n";
      return 3;
    }
    std::cout << "regression gate: " << optimized.intervalsPerSecond
              << " vs baseline " << previous << " intervals/s -- ok\n";
  }
  return 0;
}
