// Experiment E7 (reconstructed table): the cost of each routing scheme in
// per-packet edge transmissions, absolute and relative to the static
// two-disjoint-paths scheme. The abstract's claim: targeted redundancy
// costs ~2% more than two disjoint paths while flooding costs several
// times as much.
#include <iostream>

#include "bench_common.hpp"
#include "playback/report.hpp"
#include "util/strings.hpp"

int main(int argc, char** argv) {
  using namespace dg;
  auto args = bench::parseArgs(argc, argv);
  const auto topology = trace::Topology::ltn12();
  const auto synthetic = generateSyntheticTrace(
      topology.graph(), bench::makeGeneratorParams(args));
  const auto config = bench::makeExperimentConfig(args, topology);
  bench::printRunHeader("E7: per-packet cost of each scheme", synthetic,
                        config);
  const auto result =
      runExperiment(topology.graph(), synthetic.trace, config);
  std::cout << renderCostTable(result) << '\n';

  // Per-flow cost matrix.
  std::cout << util::padRight("flow", 12);
  for (const auto kind : config.schemes) {
    std::cout << util::padLeft(std::string(routing::schemeName(kind)), 22);
  }
  std::cout << '\n';
  for (std::size_t f = 0; f < config.flows.size(); ++f) {
    const auto flow = config.flows[f];
    std::cout << util::padRight(topology.name(flow.source) + "->" +
                                    topology.name(flow.destination),
                                12);
    for (std::size_t s = 0; s < config.schemes.size(); ++s) {
      std::cout << util::padLeft(
          util::formatFixed(
              result.at(f, s, config.schemes.size()).averageCost, 2),
          22);
    }
    std::cout << '\n';
  }
  return 0;
}
