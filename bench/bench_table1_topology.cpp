// Experiment E2 (paper Table I, reconstructed): the overlay topology and
// evaluation workload -- sites, links, latencies, per-flow shortest /
// disjoint-path structure against the 65 ms one-way budget.
#include <iostream>

#include "bench_common.hpp"
#include "graph/disjoint_paths.hpp"
#include "graph/shortest_path.hpp"
#include "util/strings.hpp"

int main(int argc, char** argv) {
  using namespace dg;
  auto args = bench::parseArgs(argc, argv);
  const auto topology = trace::Topology::ltn12();
  const auto& g = topology.graph();
  const auto weights = g.baseLatencies();
  const util::SimTime deadline =
      util::milliseconds(args.getInt("deadline_ms", 65));

  std::cout << "=== E2 / Table I: overlay topology and workload ===\n\n";
  std::cout << "sites: " << topology.siteCount()
            << ", directed overlay links: " << g.edgeCount()
            << ", one-way deadline: " << util::formatDuration(deadline)
            << " (130ms RTT)\n\n";

  std::cout << util::padRight("site", 6) << util::padLeft("degree", 8)
            << util::padLeft("lat", 9) << util::padLeft("lon", 10) << '\n';
  for (graph::NodeId n = 0; n < g.nodeCount(); ++n) {
    const auto& site = topology.site(n);
    std::cout << util::padRight(site.name, 6)
              << util::padLeft(std::to_string(g.outDegree(n)), 8)
              << util::padLeft(util::formatFixed(site.latitudeDeg, 2), 9)
              << util::padLeft(util::formatFixed(site.longitudeDeg, 2), 10)
              << '\n';
  }

  std::cout << "\nlinks (undirected, geo-derived fiber latency):\n";
  for (graph::EdgeId e = 0; e < g.edgeCount(); e += 2) {
    std::cout << "  " << util::padRight(topology.edgeName(e), 10)
              << util::padLeft(util::formatDuration(g.edge(e).latency), 10)
              << '\n';
  }

  std::cout << "\nevaluation flows (transcontinental):\n";
  std::cout << util::padRight("flow", 12) << util::padLeft("shortest", 10)
            << util::padLeft("2-disjoint", 12)
            << util::padLeft("connectivity", 14)
            << util::padLeft("slack_vs_65ms", 15) << '\n';
  for (const auto& flow : playback::transcontinentalFlows(topology)) {
    const auto best =
        graph::shortestPath(g, flow.source, flow.destination, weights);
    const auto pair = graph::nodeDisjointPaths(g, flow.source,
                                               flow.destination, weights, 2);
    const int connectivity =
        graph::maxNodeDisjointPaths(g, flow.source, flow.destination,
                                    weights);
    const util::SimTime second =
        pair.paths.size() == 2 ? pair.totalLatency - best.distance : 0;
    std::cout << util::padRight(topology.name(flow.source) + "->" +
                                    topology.name(flow.destination),
                                12)
              << util::padLeft(util::formatDuration(best.distance), 10)
              << util::padLeft(util::formatDuration(second), 12)
              << util::padLeft(std::to_string(connectivity), 14)
              << util::padLeft(
                     util::formatDuration(deadline - best.distance), 15)
              << '\n';
  }
  return 0;
}
