// Experiment E6 (reconstructed case-study figure): delivery through a
// scripted source-site problem, two ways --
//   (a) playback timeline: per-10s-interval miss probability for each
//       scheme through a fluttering source degradation followed by a
//       partial outage;
//   (b) the same scenario driven end-to-end through the packet-level
//       event simulator (TransportService), reporting per-flow totals.
// The shape to look for: single path collapses for the duration; two
// disjoint paths degrade whenever both first hops are hit; targeted
// redundancy tracks flooding after one detection interval.
#include <iostream>

#include "bench_common.hpp"
#include "core/transport.hpp"
#include "playback/playback.hpp"
#include "util/strings.hpp"

int main(int argc, char** argv) {
  using namespace dg;
  auto args = bench::parseArgs(argc, argv);
  const auto topology = trace::Topology::ltn12();
  const auto& g = topology.graph();
  const std::string sourceName = args.getString("source", "NYC");
  const std::string destinationName = args.getString("destination", "SJC");
  const graph::NodeId src = topology.at(sourceName);

  // 20 minutes of trace: healthy, then a fluttering degradation
  // (intervals 20-59), then healthy, then an all-but-one-link partial
  // outage (intervals 75-104).
  const std::size_t intervals = 120;
  trace::Trace tr(util::seconds(10), intervals,
                  trace::healthyBaseline(g, 1e-4));
  util::Rng rng(static_cast<std::uint64_t>(args.getInt("seed", 7)));
  const auto degradation = trace::makeNodeEvent(
      g, src, 20, 40, /*coverage=*/1.0, /*activity=*/0.5,
      /*severity=*/0.9, 0, rng);
  trace::applyEvent(tr, g, degradation, rng, 0.5);
  const auto outage =
      trace::makeNodeOutageEvent(g, src, 75, 30, /*aliveLinks=*/1,
                                 /*severity=*/1.0, 0, rng);
  trace::applyEvent(tr, g, outage, rng, 0.5);

  // ---- (a) playback timelines ----------------------------------------
  playback::PlaybackParams params;
  params.mcSamples = static_cast<int>(args.getInt("mc_samples", 3000));
  const playback::PlaybackEngine engine(g, tr, params);
  const routing::Flow flow{src, topology.at(destinationName)};
  const routing::SchemeParams schemeParams;

  std::cout << "=== E6: case study, " << sourceName << " site problems, flow "
            << sourceName << "->" << destinationName << " ===\n";
  std::cout << "fluttering degradation: intervals 20-59 (activity 0.5, "
               "loss 0.9); partial outage: intervals 75-104 (one link "
               "alive)\n\n";
  std::cout << "per-interval miss probability (%):\n";
  std::cout << util::padRight("t(s)", 7);
  std::vector<std::vector<double>> timelines;
  for (const auto kind : routing::allSchemeKinds()) {
    std::cout << util::padLeft(std::string(routing::schemeName(kind)), 22);
    timelines.push_back(
        engine.missTimeline(flow, kind, schemeParams, 0, intervals));
  }
  std::cout << '\n';
  for (std::size_t t = 10; t < intervals; ++t) {
    // Print the interesting window only.
    if (t > 64 && t < 70) continue;
    if (t > 108) break;
    std::cout << util::padRight(std::to_string(t * 10), 7);
    for (const auto& timeline : timelines) {
      std::cout << util::padLeft(
          util::formatFixed(timeline[t] * 100.0, 1), 22);
    }
    std::cout << '\n';
  }

  // ---- (b) event-driven run -------------------------------------------
  // --distributed runs the Spines-like mode: per-node measurement,
  // flooded link-state updates, source-stamped graphs.
  core::TransportConfig serviceConfig;
  if (args.getBool("distributed", false)) {
    serviceConfig.monitorMode = core::MonitorMode::Distributed;
  }
  std::cout << "\npacket-level event simulation over the same trace ("
            << (serviceConfig.monitorMode == core::MonitorMode::Distributed
                    ? "distributed link-state monitoring"
                    : "centralized monitoring")
            << "):\n";
  std::cout << util::padRight("scheme", 22) << util::padLeft("sent", 8)
            << util::padLeft("on_time", 10) << util::padLeft("late", 7)
            << util::padLeft("lost", 7) << util::padLeft("on_time_rate", 14)
            << util::padLeft("cost/pkt", 10) << '\n';
  for (const auto kind : routing::allSchemeKinds()) {
    core::TransportService service(topology, tr, serviceConfig);
    const auto id =
        service.openFlow(sourceName, destinationName, kind);
    service.run(util::seconds(10) * static_cast<util::SimTime>(intervals) -
                util::milliseconds(500));
    const auto& stats = service.stats(id);
    std::cout << util::padRight(std::string(routing::schemeName(kind)), 22)
              << util::padLeft(std::to_string(stats.sent), 8)
              << util::padLeft(std::to_string(stats.deliveredOnTime), 10)
              << util::padLeft(std::to_string(stats.deliveredLate), 7)
              << util::padLeft(std::to_string(stats.lost()), 7)
              << util::padLeft(util::formatPercent(stats.onTimeRate(), 2),
                               14)
              << util::padLeft(util::formatFixed(stats.costPerPacket(), 2),
                               10)
              << '\n';
  }
  return 0;
}
