// Experiment E1 (paper Fig. 1, reconstructed): example dissemination
// graphs for one transcontinental flow -- single path, two disjoint
// paths, targeted source/destination/robust graphs and time-constrained
// flooding -- printed as edge lists and Graphviz DOT.
#include <iostream>

#include "bench_common.hpp"
#include "graph/disjoint_paths.hpp"
#include "routing/targeted_graphs.hpp"

int main(int argc, char** argv) {
  using namespace dg;
  auto args = bench::parseArgs(argc, argv);
  const auto topology = trace::Topology::ltn12();
  const auto& g = topology.graph();
  const auto weights = g.baseLatencies();

  const std::string sourceName = args.getString("source", "NYC");
  const std::string destinationName = args.getString("destination", "SJC");
  const util::SimTime deadline =
      util::milliseconds(args.getInt("deadline_ms", 65));
  const routing::Flow flow{topology.at(sourceName),
                           topology.at(destinationName)};
  const bool dot = args.getBool("dot", false);

  const auto name = [&](graph::NodeId n) { return topology.name(n); };
  const auto show = [&](const std::string& title,
                        const graph::DisseminationGraph& dg) {
    std::cout << "--- " << title << " (" << dg.edgeCount() << " edges, cost "
              << dg.cost() << ", latency "
              << util::formatDuration(dg.latencyToDestination(weights))
              << ")\n";
    if (dot) {
      std::cout << dg.toDot(name);
    } else {
      for (const graph::EdgeId e : dg.edges()) {
        std::cout << "  " << topology.edgeName(e) << " ("
                  << util::formatDuration(g.edge(e).latency) << ")\n";
      }
    }
    std::cout << '\n';
  };

  std::cout << "=== E1 / Fig. 1: dissemination graphs for " << sourceName
            << "->" << destinationName << ", deadline "
            << util::formatDuration(deadline) << " ===\n\n";

  const auto single = graph::nodeDisjointPaths(g, flow.source,
                                               flow.destination, weights, 1);
  graph::DisseminationGraph singleGraph(g, flow.source, flow.destination);
  if (!single.paths.empty()) singleGraph.addPath(single.paths.front());
  show("single path", singleGraph);

  const auto targeted =
      routing::buildTargetedGraphs(g, flow, weights, deadline);
  show("two node-disjoint paths", targeted.twoDisjoint);
  show("source-problem graph", targeted.sourceProblem);
  show("destination-problem graph", targeted.destinationProblem);
  show("robust source-destination graph", targeted.robust);

  auto flooding = graph::floodingGraph(g, flow.source, flow.destination);
  flooding.pruneDeadlineInfeasible(weights, deadline);
  show("time-constrained flooding", flooding);
  return 0;
}
