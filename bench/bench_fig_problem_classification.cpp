// Experiment E4 (reconstructed figure): where are the problems that
// defeat two disjoint paths? Joins the static-two-disjoint scheme's
// problematic intervals against the generator's ground-truth event log
// and buckets them by location relative to each flow. The paper's central
// empirical finding is that these are dominated by problems around a
// source or destination -- the motivation for targeted redundancy.
#include <iostream>

#include "bench_common.hpp"
#include "playback/classification.hpp"
#include "playback/report.hpp"

int main(int argc, char** argv) {
  using namespace dg;
  auto args = bench::parseArgs(argc, argv);
  const auto topology = trace::Topology::ltn12();
  const auto synthetic = generateSyntheticTrace(
      topology.graph(), bench::makeGeneratorParams(args));
  auto config = bench::makeExperimentConfig(args, topology);
  // Classify for the schemes of interest: the single-path baseline and
  // the static two-disjoint scheme the paper analyzes.
  config.schemes = {routing::SchemeKind::StaticSinglePath,
                    routing::SchemeKind::StaticTwoDisjoint,
                    routing::SchemeKind::TargetedRedundancy};
  bench::printRunHeader(
      "E4: classification of problematic intervals by location", synthetic,
      config);

  const auto result =
      runExperiment(topology.graph(), synthetic.trace, config);

  for (std::size_t s = 0; s < config.schemes.size(); ++s) {
    std::vector<playback::ProblemClassification> parts;
    for (std::size_t f = 0; f < config.flows.size(); ++f) {
      parts.push_back(playback::classifyProblems(
          topology.graph(), synthetic.events, config.flows[f],
          result.at(f, s, config.schemes.size()).problems));
    }
    const auto combined = playback::combineClassifications(parts);
    std::cout << "problematic intervals of "
              << routing::schemeName(config.schemes[s]) << ":\n"
              << renderClassification(combined) << '\n';
  }
  return 0;
}
