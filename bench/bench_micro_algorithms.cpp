// Experiment E8: google-benchmark microbenchmarks of the core algorithms
// -- engineering due diligence rather than a paper artifact. Covers path
// computation, targeted-graph construction, dissemination-graph
// evaluation, Monte-Carlo delivery sampling and the packet-level
// forwarding engine.
#include <benchmark/benchmark.h>

#include "core/transport.hpp"
#include "graph/disjoint_paths.hpp"
#include "graph/k_shortest.hpp"
#include "graph/shortest_path.hpp"
#include "playback/playback.hpp"
#include "routing/targeted_graphs.hpp"
#include "telemetry/telemetry.hpp"
#include "trace/synth.hpp"
#include "trace/topology.hpp"

namespace {

using namespace dg;

const trace::Topology& ltn() {
  static const trace::Topology topology = trace::Topology::ltn12();
  return topology;
}

routing::Flow nycSjc() {
  return routing::Flow{ltn().at("NYC"), ltn().at("SJC")};
}

void BM_Dijkstra(benchmark::State& state) {
  const auto& g = ltn().graph();
  const auto weights = g.baseLatencies();
  const auto flow = nycSjc();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        graph::shortestPath(g, flow.source, flow.destination, weights));
  }
}
BENCHMARK(BM_Dijkstra);

void BM_NodeDisjointPair(benchmark::State& state) {
  const auto& g = ltn().graph();
  const auto weights = g.baseLatencies();
  const auto flow = nycSjc();
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::nodeDisjointPaths(
        g, flow.source, flow.destination, weights, 2));
  }
}
BENCHMARK(BM_NodeDisjointPair);

void BM_YenK8(benchmark::State& state) {
  const auto& g = ltn().graph();
  const auto weights = g.baseLatencies();
  const auto flow = nycSjc();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        graph::kShortestPaths(g, flow.source, flow.destination, weights, 8));
  }
}
BENCHMARK(BM_YenK8);

void BM_TargetedGraphConstruction(benchmark::State& state) {
  const auto& g = ltn().graph();
  const auto weights = g.baseLatencies();
  const auto flow = nycSjc();
  for (auto _ : state) {
    benchmark::DoNotOptimize(routing::buildTargetedGraphs(
        g, flow, weights, util::milliseconds(65)));
  }
}
BENCHMARK(BM_TargetedGraphConstruction);

void BM_EarliestArrival(benchmark::State& state) {
  const auto& g = ltn().graph();
  const auto weights = g.baseLatencies();
  const auto flow = nycSjc();
  auto flooding = graph::floodingGraph(g, flow.source, flow.destination);
  flooding.pruneDeadlineInfeasible(weights, util::milliseconds(65));
  for (auto _ : state) {
    benchmark::DoNotOptimize(flooding.earliestArrival(weights));
  }
}
BENCHMARK(BM_EarliestArrival);

void BM_MonteCarloDelivery(benchmark::State& state) {
  const auto& g = ltn().graph();
  const auto flow = nycSjc();
  const auto targeted = routing::buildTargetedGraphs(
      g, flow, g.baseLatencies(), util::milliseconds(65));
  std::vector<double> losses(g.edgeCount(), 0.0);
  for (const graph::EdgeId e : g.outEdges(flow.source)) losses[e] = 0.3;
  const auto latencies = g.baseLatencies();
  util::Rng rng(1);
  const playback::DeliveryModelParams params;
  for (auto _ : state) {
    benchmark::DoNotOptimize(playback::onTimeProbabilityMC(
        targeted.sourceProblem, losses, latencies, params,
        static_cast<int>(state.range(0)), rng));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MonteCarloDelivery)->Arg(100)->Arg(1000);

void BM_PlaybackHealthyDay(benchmark::State& state) {
  const auto& g = ltn().graph();
  static const trace::Trace tr(util::seconds(10), 8640,
                               trace::healthyBaseline(g, 1e-4));
  playback::PlaybackParams params;
  const playback::PlaybackEngine engine(g, tr, params);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.run(
        nycSjc(), routing::SchemeKind::TargetedRedundancy,
        routing::SchemeParams{}));
  }
  state.SetItemsProcessed(state.iterations() * 8640);
}
BENCHMARK(BM_PlaybackHealthyDay)->Unit(benchmark::kMillisecond);

void BM_EventSimSecond(benchmark::State& state) {
  // One simulated second of a 100 pkt/s flow through the full
  // packet-level overlay (forwarding, dedup, probes, monitor).
  const auto& topology = ltn();
  static const trace::Trace tr(util::seconds(10), 360,
                               trace::healthyBaseline(topology.graph(),
                                                      1e-4));
  for (auto _ : state) {
    state.PauseTiming();
    core::TransportService service(topology, tr);
    const auto id = service.openFlow("NYC", "SJC",
                                     routing::SchemeKind::TargetedRedundancy);
    state.ResumeTiming();
    service.run(util::seconds(1));
    benchmark::DoNotOptimize(service.stats(id).sent);
  }
}
BENCHMARK(BM_EventSimSecond)->Unit(benchmark::kMillisecond);

// Telemetry overhead guards: the same workloads as BM_PlaybackHealthyDay
// and BM_EventSimSecond with a full Telemetry attached. The registry's
// design target is <5% slowdown on these hot paths (cached handles; one
// add per event) -- compare against the un-instrumented twins above.
void BM_PlaybackHealthyDayTelemetry(benchmark::State& state) {
  const auto& g = ltn().graph();
  static const trace::Trace tr(util::seconds(10), 8640,
                               trace::healthyBaseline(g, 1e-4));
  playback::PlaybackParams params;
  const playback::PlaybackEngine engine(g, tr, params);
  for (auto _ : state) {
    telemetry::Telemetry telemetry;
    benchmark::DoNotOptimize(engine.run(
        nycSjc(), routing::SchemeKind::TargetedRedundancy,
        routing::SchemeParams{}, &telemetry));
  }
  state.SetItemsProcessed(state.iterations() * 8640);
}
BENCHMARK(BM_PlaybackHealthyDayTelemetry)->Unit(benchmark::kMillisecond);

void BM_EventSimSecondTelemetry(benchmark::State& state) {
  const auto& topology = ltn();
  static const trace::Trace tr(util::seconds(10), 360,
                               trace::healthyBaseline(topology.graph(),
                                                      1e-4));
  for (auto _ : state) {
    state.PauseTiming();
    telemetry::Telemetry telemetry;
    core::TransportService service(topology, tr);
    service.setTelemetry(&telemetry);
    const auto id = service.openFlow("NYC", "SJC",
                                     routing::SchemeKind::TargetedRedundancy);
    state.ResumeTiming();
    service.run(util::seconds(1));
    benchmark::DoNotOptimize(service.stats(id).sent);
    benchmark::DoNotOptimize(telemetry.metrics.empty());
  }
}
BENCHMARK(BM_EventSimSecondTelemetry)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
