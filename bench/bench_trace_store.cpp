// Packed trace store benchmark (BENCH_trace_store.json).
//
// Generates a week-scale synthetic trace and measures the dgtrace store
// against the text format: encode/decode wall time and throughput, file
// sizes, and the bounded-memory evidence for the streaming paths -- the
// writer's peak buffered records (one chunk), the streaming generator's
// peak pending-impairment window, and the steady-state allocation count
// of a full chunked-cursor sweep (PackedConditionSource feeding a
// ConditionTimeline), which must stay O(chunk), not O(trace).
//
// Keys: --days=7 --seed=S --chunk_intervals=N --out=FILE plus the
// trace-generator keys of bench_common.hpp.
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <new>
#include <sstream>
#include <string>

#include "bench_common.hpp"
#include "store/reader.hpp"
#include "store/writer.hpp"
#include "trace/condition_timeline.hpp"
#include "trace/stream.hpp"
#include "util/wall_clock.hpp"

// Allocation instrumentation (same scheme as bench_playback_throughput):
// count every operator new in the binary.
namespace {
std::atomic<std::uint64_t> g_allocationCount{0};
std::atomic<std::uint64_t> g_allocationBytes{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocationCount.fetch_add(1, std::memory_order_relaxed);
  g_allocationBytes.fetch_add(size, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace dg;

std::uint64_t fileSize(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  return in ? static_cast<std::uint64_t>(in.tellg()) : 0;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::parseArgs(argc, argv);
  const auto topology = trace::Topology::ltn12();

  auto generator = bench::makeGeneratorParams(args);
  generator.duration = util::hours(
      static_cast<std::int64_t>(args.getDouble("days", 7.0) * 24.0));
  store::WriterOptions options;
  options.chunkIntervals = static_cast<std::uint32_t>(
      args.getInt("chunk_intervals", store::kDefaultChunkIntervals));

  const std::string textPath = "bench_trace_store.tmp.trace";
  const std::string packedPath = "bench_trace_store.tmp.dgtrace";
  util::WallClock clock;

  // Streaming generation straight into the packed store: the end-to-end
  // bounded-memory path (no materialized Trace anywhere).
  clock.start();
  trace::StreamGenerationStats streamStats;
  std::uint64_t packedBytes = 0;
  std::size_t writerPeakRecords = 0;
  std::uint64_t packedRecords = 0;
  {
    std::ofstream out(packedPath, std::ios::binary | std::ios::trunc);
    store::StoreWriter writer(out, options);
    streamSyntheticTrace(topology.graph(), generator, writer, &streamStats);
    packedBytes = writer.bytesWritten();
    writerPeakRecords = writer.peakBufferedRecords();
    packedRecords = writer.recordsWritten();
  }
  const double streamEncodeSeconds = clock.elapsedSeconds();

  // Batch generation + text save, the legacy pipeline.
  const auto synthetic = generateSyntheticTrace(topology.graph(), generator);
  clock.start();
  synthetic.trace.save(textPath);
  const double textSaveSeconds = clock.elapsedSeconds();
  clock.start();
  const auto textLoaded = trace::Trace::load(textPath);
  const double textLoadSeconds = clock.elapsedSeconds();
  const std::uint64_t textBytes = fileSize(textPath);

  // Packed decode + verify.
  clock.start();
  auto reader = store::PackedTraceReader::open(packedPath);
  const auto decoded = reader.readAll();
  const double packedLoadSeconds = clock.elapsedSeconds();
  clock.start();
  const auto verifyReport = reader.verify();
  const double verifySeconds = clock.elapsedSeconds();

  const bool lossless = decoded == synthetic.trace;

  // Steady-state chunked cursor sweep: warm one pass, then measure the
  // second pass's allocations. The cursor + source reuse their decode
  // workspace, so the measured pass should allocate O(chunks), not
  // O(intervals).
  store::PackedConditionSource source(reader);
  trace::ConditionTimeline cursor(source);
  const std::size_t intervals =
      static_cast<std::size_t>(reader.info().intervalCount);
  for (std::size_t i = 0; i < intervals; ++i) cursor.seek(i);
  const std::uint64_t allocBefore =
      g_allocationCount.load(std::memory_order_relaxed);
  clock.start();
  for (std::size_t i = 0; i < intervals; ++i) cursor.seek(i);
  const double sweepSeconds = clock.elapsedSeconds();
  const std::uint64_t sweepAllocations =
      g_allocationCount.load(std::memory_order_relaxed) - allocBefore;

  std::remove(textPath.c_str());
  std::remove(packedPath.c_str());

  const double days = util::toSeconds(synthetic.trace.duration()) / 86'400.0;
  std::cout << "=== trace store: " << days << " days, "
            << synthetic.trace.intervalCount() << " intervals, "
            << packedRecords << " deviation records ===\n"
            << "text:   " << textBytes << " bytes, save "
            << textSaveSeconds << " s, load " << textLoadSeconds << " s\n"
            << "packed: " << packedBytes << " bytes ("
            << (textBytes > 0
                    ? static_cast<double>(packedBytes) /
                          static_cast<double>(textBytes)
                    : 0.0)
            << "x of text), stream-encode " << streamEncodeSeconds
            << " s, load " << packedLoadSeconds << " s, verify "
            << verifySeconds << " s\n"
            << "bounded memory: writer peak " << writerPeakRecords
            << " buffered records, generator peak "
            << streamStats.peakPendingOps << " pending impairments\n"
            << "cursor sweep: " << sweepAllocations << " allocations over "
            << intervals << " intervals (" << sweepSeconds << " s)\n"
            << "lossless: " << (lossless ? "yes" : "NO")
            << ", text-roundtrip-equal: "
            << (textLoaded == synthetic.trace ? "yes" : "no (precision)")
            << "\n";

  std::ostringstream json;
  json << "{\n"
       << "  \"days\": " << days << ",\n"
       << "  \"intervals\": " << synthetic.trace.intervalCount() << ",\n"
       << "  \"records\": " << packedRecords << ",\n"
       << "  \"chunk_intervals\": " << options.chunkIntervals << ",\n"
       << "  \"chunks_verified\": " << verifyReport.chunksVerified << ",\n"
       << "  \"text_bytes\": " << textBytes << ",\n"
       << "  \"packed_bytes\": " << packedBytes << ",\n"
       << "  \"text_save_seconds\": " << textSaveSeconds << ",\n"
       << "  \"text_load_seconds\": " << textLoadSeconds << ",\n"
       << "  \"stream_encode_seconds\": " << streamEncodeSeconds << ",\n"
       << "  \"packed_load_seconds\": " << packedLoadSeconds << ",\n"
       << "  \"verify_seconds\": " << verifySeconds << ",\n"
       << "  \"writer_peak_buffered_records\": " << writerPeakRecords
       << ",\n"
       << "  \"generator_peak_pending_ops\": "
       << streamStats.peakPendingOps << ",\n"
       << "  \"cursor_sweep_allocations\": " << sweepAllocations << ",\n"
       << "  \"cursor_sweep_seconds\": " << sweepSeconds << ",\n"
       << "  \"lossless\": " << (lossless ? "true" : "false") << "\n"
       << "}\n";

  const std::string outPath =
      args.getString("out", "BENCH_trace_store.json");
  std::ofstream out(outPath);
  out << json.str();
  std::cout << "wrote " << outPath << "\n";
  return lossless ? 0 : 1;
}
