// Experiment E11 (reconstructed figure): delivery-latency distribution
// per routing scheme over the evaluation trace -- the "timely" half of
// the paper's guarantee. Reports min/median/p99/max of per-interval
// delivery latency for each scheme and flow group, against the 65 ms
// one-way budget.
#include <iostream>

#include "bench_common.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"

int main(int argc, char** argv) {
  using namespace dg;
  auto args = bench::parseArgs(argc, argv);
  // A shorter default horizon: latency distributions stabilize quickly.
  if (!args.has("days")) args.set("days", "7");
  const auto topology = trace::Topology::ltn12();
  const auto synthetic = generateSyntheticTrace(
      topology.graph(), bench::makeGeneratorParams(args));
  auto config = bench::makeExperimentConfig(args, topology);
  config.playback.collectIntervalLatencies = true;
  bench::printRunHeader("E11: delivery-latency distribution per scheme",
                        synthetic, config);

  const auto result =
      runExperiment(topology.graph(), synthetic.trace, config);

  std::cout << util::padRight("scheme", 22) << util::padLeft("min", 10)
            << util::padLeft("median", 10) << util::padLeft("p99", 10)
            << util::padLeft("max", 10)
            << util::padLeft("deadline_margin_p99", 21) << '\n';
  const util::SimTime deadline = config.schemeParams.deadline;
  for (std::size_t s = 0; s < config.schemes.size(); ++s) {
    util::EmpiricalCdf cdf;
    for (std::size_t f = 0; f < config.flows.size(); ++f) {
      for (const double latency :
           result.at(f, s, config.schemes.size()).intervalLatenciesUs) {
        cdf.add(latency);
      }
    }
    const auto ms = [](double us) {
      return util::formatFixed(us / 1000.0, 2) + "ms";
    };
    const double p99 = cdf.quantile(0.99);
    std::cout << util::padRight(
                     std::string(routing::schemeName(config.schemes[s])), 22)
              << util::padLeft(ms(cdf.quantile(0.0)), 10)
              << util::padLeft(ms(cdf.quantile(0.5)), 10)
              << util::padLeft(ms(p99), 10)
              << util::padLeft(ms(cdf.quantile(1.0)), 10)
              << util::padLeft(
                     ms(static_cast<double>(deadline) - p99), 21)
              << '\n';
  }
  std::cout << "\n(latencies are per-interval earliest arrivals of the "
               "active dissemination graph;\nschemes differ mainly in the "
               "tail -- redundancy keeps the tail close to the healthy "
               "shortest path)\n";
  return 0;
}
