// Experiment E10 (extension): what the cost metric means operationally.
// The paper argues flooding is "prohibitively expensive"; with an
// explicit per-link capacity model the expense becomes visible as
// congestion. Several flows share the overlay while link capacity
// shrinks; flooding's 8x transmission count turns into queueing delay
// and drops that break its own deadline, while targeted redundancy keeps
// near-flooding availability at two-disjoint-paths load.
#include <iostream>

#include "bench_common.hpp"
#include "core/transport.hpp"
#include "util/strings.hpp"

int main(int argc, char** argv) {
  using namespace dg;
  auto args = bench::parseArgs(argc, argv);
  const auto topology = trace::Topology::ltn12();
  const auto& g = topology.graph();

  // A moderately problematic 5-minute trace so that redundancy earns its
  // keep: a fluttering degradation at NYC mid-run.
  trace::Trace tr(util::seconds(10), 30, trace::healthyBaseline(g, 1e-4));
  util::Rng rng(static_cast<std::uint64_t>(args.getInt("seed", 3)));
  trace::applyEvent(tr, g,
                    trace::makeNodeEvent(g, topology.at("NYC"), 8, 16, 1.0,
                                         0.5, 0.9, 0, rng),
                    rng, 0.5);

  const std::vector<std::pair<const char*, const char*>> flowSpecs = {
      {"NYC", "SJC"}, {"NYC", "LAX"}, {"WAS", "SEA"}, {"ATL", "SJC"},
  };
  const double ratePerFlow = args.getDouble("pkts_per_s", 100.0);

  std::cout << "=== E10 (extension): schemes under per-link capacity "
               "limits ===\n"
            << flowSpecs.size() << " flows x " << ratePerFlow
            << " pkt/s, NYC degradation t=80-240s\n\n";
  std::cout << util::padRight("capacity (pkt/s/link)", 24);
  for (const auto kind : routing::allSchemeKinds()) {
    std::cout << util::padLeft(std::string(routing::schemeName(kind)), 22);
  }
  std::cout << "\n";

  for (const double capacity : {0.0, 2000.0, 1000.0, 500.0, 250.0}) {
    std::cout << util::padRight(
        capacity == 0.0 ? std::string("unlimited")
                        : util::formatFixed(capacity, 0),
        24);
    for (const auto kind : routing::allSchemeKinds()) {
      core::TransportConfig config;
      config.linkCapacity.packetsPerSecond = capacity;
      core::TransportService service(topology, tr, config);
      std::vector<net::FlowId> flows;
      for (const auto& [src, dst] : flowSpecs) {
        flows.push_back(service.openFlow(
            src, dst, kind,
            static_cast<util::SimTime>(1e6 / ratePerFlow)));
      }
      service.run(tr.duration() - util::milliseconds(500));
      double onTimeSum = 0;
      for (const auto id : flows) {
        onTimeSum += service.stats(id).onTimeRate();
      }
      std::cout << util::padLeft(
          util::formatPercent(onTimeSum / static_cast<double>(flows.size()),
                              2),
          22);
    }
    std::cout << '\n';
  }
  std::cout << "\n(on-time rate averaged over the flows; watch flooding "
               "collapse as capacity falls while targeted holds)\n";
  return 0;
}
