// Shared plumbing for the experiment binaries: every bench accepts
// --key=value overrides (see keys below) so the whole evaluation is
// scriptable; defaults reproduce the configuration recorded in
// EXPERIMENTS.md.
#pragma once

#include <iostream>
#include <string>

#include "playback/experiment.hpp"
#include "trace/synth.hpp"
#include "trace/topology.hpp"
#include "util/config.hpp"
#include "util/sim_time.hpp"

namespace dg::bench {

inline util::Config parseArgs(int argc, char** argv) {
  util::Config config;
  config.applyArgs(argc, argv);
  return config;
}

/// Generator parameters from config keys: seed, days, node_events_per_day,
/// link_events_per_day, steady_prob, blackout_prob, severity_min/max,
/// flutter_min/max, coverage_min/max, placement_exponent,
/// latency_event_prob, event_median_s.
inline trace::GeneratorParams makeGeneratorParams(
    const util::Config& config) {
  trace::GeneratorParams params;
  params.seed =
      static_cast<std::uint64_t>(config.getInt("seed", 20170605));
  params.duration = util::hours(
      static_cast<std::int64_t>(config.getDouble("days", 28.0) * 24.0));
  params.nodeEventsPerDay =
      config.getDouble("node_events_per_day", params.nodeEventsPerDay);
  params.linkEventsPerDay =
      config.getDouble("link_events_per_day", params.linkEventsPerDay);
  params.nodeSteadyProb =
      config.getDouble("steady_prob", params.nodeSteadyProb);
  params.nodeBlackoutProb =
      config.getDouble("blackout_prob", params.nodeBlackoutProb);
  params.lossSeverityMin =
      config.getDouble("severity_min", params.lossSeverityMin);
  params.lossSeverityMax =
      config.getDouble("severity_max", params.lossSeverityMax);
  params.nodeFlutterActivityMin =
      config.getDouble("flutter_min", params.nodeFlutterActivityMin);
  params.nodeFlutterActivityMax =
      config.getDouble("flutter_max", params.nodeFlutterActivityMax);
  params.nodePartialOutageProb =
      config.getDouble("partial_outage_prob", params.nodePartialOutageProb);
  params.outageAliveLinksMin = static_cast<int>(
      config.getInt("outage_alive_min", params.outageAliveLinksMin));
  params.outageAliveLinksMax = static_cast<int>(
      config.getInt("outage_alive_max", params.outageAliveLinksMax));
  params.nodePlacementDegreeExponent = config.getDouble(
      "placement_exponent", params.nodePlacementDegreeExponent);
  params.latencyEventProb =
      config.getDouble("latency_event_prob", params.latencyEventProb);
  params.nodeEventMedianSeconds =
      config.getDouble("event_median_s", params.nodeEventMedianSeconds);
  return params;
}

/// Experiment configuration from config keys: mc_samples, staleness,
/// deadline_ms, threads, recovery.
inline playback::ExperimentConfig makeExperimentConfig(
    const util::Config& config, const trace::Topology& topology) {
  playback::ExperimentConfig experiment;
  experiment.flows = playback::transcontinentalFlows(topology);
  experiment.playback.mcSamples =
      static_cast<int>(config.getInt("mc_samples", 1000));
  experiment.playback.viewStaleness =
      static_cast<int>(config.getInt("staleness", 1));
  experiment.playback.delivery.recoveryEnabled =
      config.getBool("recovery", true);
  experiment.schemeParams.deadline = util::milliseconds(
      config.getInt("deadline_ms", 65));
  experiment.playback.delivery.deadline =
      experiment.schemeParams.deadline;
  experiment.threads =
      static_cast<unsigned>(config.getInt("threads", 0));
  return experiment;
}

inline void printRunHeader(const std::string& title,
                           const trace::SyntheticTrace& synthetic,
                           const playback::ExperimentConfig& config) {
  std::cout << "=== " << title << " ===\n";
  std::cout << "trace: "
            << util::toSeconds(synthetic.trace.duration()) / 86'400.0
            << " days, " << synthetic.trace.intervalCount()
            << " intervals, " << synthetic.events.size() << " events; "
            << config.flows.size() << " flows, "
            << config.schemes.size() << " schemes\n\n";
}

}  // namespace dg::bench
