// Experiment E9 (extension; the paper's future-work direction): how much
// of the optimization headroom do the precomputed targeted graphs
// capture? For a set of source-area condition snapshots, compares
//   - static two disjoint paths,
//   - the targeted source-problem graph (precomputed on healthy data),
//   - a per-snapshot greedily *optimized* dissemination graph with the
//     same edge budget,
//   - time-constrained flooding (the price-is-no-object bound),
// reporting P(on-time delivery) and cost for each.
#include <iostream>

#include "bench_common.hpp"
#include "playback/graph_optimizer.hpp"
#include "graph/shortest_path.hpp"
#include "routing/targeted_graphs.hpp"
#include "util/strings.hpp"

int main(int argc, char** argv) {
  using namespace dg;
  auto args = bench::parseArgs(argc, argv);
  const auto topology = trace::Topology::ltn12();
  const auto& g = topology.graph();
  const routing::Flow flow{topology.at(args.getString("source", "NYC")),
                           topology.at(args.getString("destination", "SJC"))};
  const auto latencies = g.baseLatencies();
  const int mcSamples = static_cast<int>(args.getInt("mc_samples", 20000));

  const auto targeted = routing::buildTargetedGraphs(
      g, flow, latencies, util::milliseconds(args.getInt("deadline_ms", 65)));
  auto flooding = graph::floodingGraph(g, flow.source, flow.destination);
  flooding.pruneDeadlineInfeasible(
      latencies, util::milliseconds(args.getInt("deadline_ms", 65)));

  struct Snapshot {
    const char* name;
    double sourceLoss;   ///< loss on every source link
    int deadSourceLinks; ///< additionally, this many links fully dark
  };
  const Snapshot snapshots[] = {
      {"mild degradation (20% loss all src links)", 0.2, 0},
      {"heavy degradation (60% loss all src links)", 0.6, 0},
      {"severe degradation (90% loss all src links)", 0.9, 0},
      {"partial outage (all but one src link dark)", 0.0, -1},
      {"degradation + two dark links", 0.5, 2},
  };

  std::cout << "=== E9 (extension): optimized dissemination graphs vs "
               "targeted redundancy, flow "
            << topology.name(flow.source) << "->"
            << topology.name(flow.destination) << " ===\n\n";
  std::cout << util::padRight("snapshot", 44) << util::padLeft("scheme", 22)
            << util::padLeft("on_time", 10) << util::padLeft("edges", 7)
            << util::padLeft("cost", 6) << '\n';

  for (const Snapshot& snapshot : snapshots) {
    std::vector<double> losses(g.edgeCount(), 1e-4);
    const auto sourceLinks = g.outEdges(flow.source);
    for (std::size_t i = 0; i < sourceLinks.size(); ++i) {
      losses[sourceLinks[i]] = snapshot.sourceLoss;
    }
    if (snapshot.deadSourceLinks == -1) {
      // All links dark except the one the shortest path uses (a survivor
      // that can actually reach the destination within the deadline).
      const auto best = graph::shortestPath(g, flow.source,
                                            flow.destination, latencies);
      for (const graph::EdgeId e : sourceLinks) {
        if (!best.edges.empty() && e == best.edges.front()) continue;
        losses[e] = 1.0;
      }
    } else {
      for (int i = 0; i < snapshot.deadSourceLinks &&
                      static_cast<std::size_t>(i) < sourceLinks.size();
           ++i) {
        losses[sourceLinks[static_cast<std::size_t>(i)]] = 1.0;
      }
    }

    playback::OptimizerParams optimizer;
    optimizer.edgeBudget =
        static_cast<int>(targeted.sourceProblem.edgeCount());
    optimizer.mcSamples = static_cast<int>(args.getInt("opt_samples", 4000));
    const auto optimized = playback::optimizeDisseminationGraph(
        g, flow, losses, latencies, optimizer);

    const auto score = [&](const graph::DisseminationGraph& dg) {
      util::Rng rng(11);
      return playback::onTimeProbabilityMC(dg, losses, latencies,
                                           optimizer.delivery, mcSamples,
                                           rng);
    };
    const auto row = [&](const char* name,
                         const graph::DisseminationGraph& dg,
                         double onTime) {
      std::cout << util::padRight(snapshot.name, 44)
                << util::padLeft(name, 22)
                << util::padLeft(util::formatPercent(onTime, 2), 10)
                << util::padLeft(std::to_string(dg.edgeCount()), 7)
                << util::padLeft(std::to_string(dg.cost()), 6) << '\n';
    };
    row("two-disjoint", targeted.twoDisjoint, score(targeted.twoDisjoint));
    row("targeted-src", targeted.sourceProblem,
        score(targeted.sourceProblem));
    row("optimized", optimized.graph, score(optimized.graph));
    row("flooding", flooding, score(flooding));
    std::cout << '\n';
  }
  std::cout << "Reading: 'optimized' re-plans per snapshot with the same "
               "edge budget as targeted-src;\nthe gap between them is the "
               "headroom the paper's precomputed graphs leave on the "
               "table.\n";
  return 0;
}
