// Experiment E3 (the paper's headline table): per-scheme unavailability,
// coverage of the single-path -> optimal gap, and cost, over a multi-week
// synthetic trace and 16 transcontinental flows.
//
// Abstract targets: targeted redundancy covers > 99% of the gap, dynamic
// two-disjoint ~ 70%, static two-disjoint ~ 45%, at a cost ~ 2% above two
// disjoint paths.
//
// `--ablations` additionally sweeps monitoring staleness, recovery on/off
// and the event-mix knobs DESIGN.md calls out.
#include <iostream>

#include "bench_common.hpp"
#include "playback/ablation.hpp"
#include "playback/report.hpp"

namespace {

using namespace dg;

playback::ExperimentResult runOnce(const trace::Topology& topology,
                                   const trace::SyntheticTrace& synthetic,
                                   const playback::ExperimentConfig& config,
                                   const std::string& title) {
  bench::printRunHeader(title, synthetic, config);
  const auto result =
      runExperiment(topology.graph(), synthetic.trace, config);
  std::cout << renderSummaryTable(result, synthetic.trace,
                                  config.flows.size())
            << '\n';
  return result;
}

void runAblations(const trace::Topology& topology,
                  const util::Config& args) {
  const auto generator = bench::makeGeneratorParams(args);
  const auto config = bench::makeExperimentConfig(args, topology);
  const auto specs = playback::standardAblations();
  std::cout << "=== ablation suite (" << specs.size() << " runs) ===\n";
  for (const auto& spec : specs) {
    std::cout << "  " << spec.name << ": " << spec.rationale << '\n';
  }
  std::cout << '\n';
  const auto results =
      runAblationSuite(topology.graph(), generator, config, specs);
  std::cout << "gap coverage by ablation:\n"
            << renderAblationComparison(
                   results, {routing::SchemeKind::DynamicSinglePath,
                             routing::SchemeKind::StaticTwoDisjoint,
                             routing::SchemeKind::DynamicTwoDisjoint,
                             routing::SchemeKind::TargetedRedundancy})
            << '\n';
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dg;
  const auto args = bench::parseArgs(argc, argv);
  const auto topology = trace::Topology::ltn12();

  const auto generator = bench::makeGeneratorParams(args);
  const auto synthetic =
      generateSyntheticTrace(topology.graph(), generator);
  const auto config = bench::makeExperimentConfig(args, topology);
  const auto result = runOnce(
      topology, synthetic, config,
      "E3 / Table II: gap coverage of routing schemes (reconstructed)");

  std::cout << "Per-flow unavailability:\n"
            << renderPerFlowTable(result, config, topology) << '\n';

  if (args.getBool("ablations", false)) {
    runAblations(topology, args);
  }
  return 0;
}
