// Experiment E5 (reconstructed figure): CDF of per-flow unavailability
// for every routing scheme. Output is plottable text: one line per flow
// quantile per scheme.
#include <iostream>

#include "bench_common.hpp"
#include "playback/report.hpp"

int main(int argc, char** argv) {
  using namespace dg;
  auto args = bench::parseArgs(argc, argv);
  const auto topology = trace::Topology::ltn12();
  const auto synthetic = generateSyntheticTrace(
      topology.graph(), bench::makeGeneratorParams(args));
  const auto config = bench::makeExperimentConfig(args, topology);
  bench::printRunHeader("E5: CDF of per-flow unavailability", synthetic,
                        config);
  const auto result =
      runExperiment(topology.graph(), synthetic.trace, config);
  std::cout << renderUnavailabilityCdf(result, config);
  return 0;
}
