#include "trace/synth.hpp"

#include <gtest/gtest.h>

#include "test_support.hpp"
#include "trace/topology.hpp"

namespace dg::trace {
namespace {

GeneratorParams shortParams(std::uint64_t seed = 1) {
  GeneratorParams params;
  params.seed = seed;
  params.duration = util::days(2);
  return params;
}

TEST(Synth, DeterministicForSeed) {
  const auto topology = Topology::ltn12();
  const auto a = generateSyntheticTrace(topology.graph(), shortParams(5));
  const auto b = generateSyntheticTrace(topology.graph(), shortParams(5));
  EXPECT_EQ(a.events.size(), b.events.size());
  EXPECT_EQ(a.trace.toString(), b.trace.toString());
}

TEST(Synth, DifferentSeedsDiffer) {
  const auto topology = Topology::ltn12();
  const auto a = generateSyntheticTrace(topology.graph(), shortParams(5));
  const auto b = generateSyntheticTrace(topology.graph(), shortParams(6));
  EXPECT_NE(a.trace.toString(), b.trace.toString());
}

TEST(Synth, EventCountsNearExpectation) {
  const auto topology = Topology::ltn12();
  GeneratorParams params = shortParams(7);
  params.duration = util::days(20);
  params.nodeEventsPerDay = 6.0;
  params.linkEventsPerDay = 3.0;
  const auto result = generateSyntheticTrace(topology.graph(), params);
  // Expect ~180 events over 20 days; allow generous Poisson slack.
  EXPECT_GT(result.events.size(), 120u);
  EXPECT_LT(result.events.size(), 260u);
}

TEST(Synth, EventsAreSortedAndWithinTrace) {
  const auto topology = Topology::ltn12();
  const auto result = generateSyntheticTrace(topology.graph(), shortParams(9));
  std::size_t previous = 0;
  for (const ProblemEvent& event : result.events) {
    EXPECT_GE(event.startInterval, previous);
    previous = event.startInterval;
    EXPECT_LT(event.startInterval, result.trace.intervalCount());
    EXPECT_GE(event.intervalCount, 1u);
    EXPECT_FALSE(event.affectedEdges.empty());
  }
}

TEST(Synth, NodeEventsAffectOnlyAdjacentLinks) {
  const auto topology = Topology::ltn12();
  const auto& g = topology.graph();
  const auto result = generateSyntheticTrace(g, shortParams(11));
  for (const ProblemEvent& event : result.events) {
    if (event.kind != ProblemEvent::Kind::Node) continue;
    for (const graph::EdgeId e : event.affectedEdges) {
      const graph::Edge& edge = g.edge(e);
      EXPECT_TRUE(edge.from == event.node || edge.to == event.node);
    }
  }
}

TEST(Synth, LinkEventsAffectBothDirections) {
  const auto topology = Topology::ltn12();
  const auto& g = topology.graph();
  const auto result = generateSyntheticTrace(g, shortParams(13));
  for (const ProblemEvent& event : result.events) {
    if (event.kind != ProblemEvent::Kind::Link) continue;
    ASSERT_EQ(event.affectedEdges.size(), 2u);
    const auto reverse = g.reverseEdge(event.affectedEdges[0]);
    ASSERT_TRUE(reverse.has_value());
    EXPECT_EQ(event.affectedEdges[1], *reverse);
  }
}

TEST(Synth, BlackoutEventsAreTotalLoss) {
  const auto topology = Topology::ltn12();
  GeneratorParams params = shortParams(17);
  params.duration = util::days(30);
  params.nodeBlackoutProb = 1.0;
  params.linkEventsPerDay = 0.0;
  params.blipsPerLinkPerDay = 0.0;
  const auto result = generateSyntheticTrace(topology.graph(), params);
  ASSERT_FALSE(result.events.empty());
  for (const ProblemEvent& event : result.events) {
    EXPECT_DOUBLE_EQ(event.severity, 1.0);
    EXPECT_DOUBLE_EQ(event.activity, 1.0);
    // Blackout covers every adjacent undirected link.
    EXPECT_EQ(event.affectedEdges.size(),
              2 * topology.graph().outDegree(event.node));
  }
}

TEST(Synth, TraceConditionsMatchEventsGroundTruth) {
  // Every deviated loss condition must be explainable by an active event
  // or a benign blip; with blips disabled, by an active event.
  const auto topology = Topology::ltn12();
  GeneratorParams params = shortParams(19);
  params.blipsPerLinkPerDay = 0.0;
  const auto result = generateSyntheticTrace(topology.graph(), params);
  const auto& trace = result.trace;
  for (std::size_t i = 0; i < trace.intervalCount(); ++i) {
    for (const auto& [edge, conditions] : trace.deviationsAt(i)) {
      bool explained = false;
      for (const ProblemEvent& event : result.events) {
        if (!event.activeDuring(i)) continue;
        if (std::find(event.affectedEdges.begin(), event.affectedEdges.end(),
                      edge) != event.affectedEdges.end()) {
          explained = true;
          break;
        }
      }
      EXPECT_TRUE(explained) << "interval " << i << " edge " << edge;
    }
  }
}

TEST(Synth, LatencyEventsInflateLatencyNotLoss) {
  const auto topology = Topology::ltn12();
  GeneratorParams params = shortParams(23);
  // Latency impairment applies to partial outages and link events; force
  // every node event into the outage class.
  params.nodePartialOutageProb = 1.0;
  params.latencyEventProb = 1.0;
  params.nodeBlackoutProb = 0.0;
  params.blipsPerLinkPerDay = 0.0;
  const auto result = generateSyntheticTrace(topology.graph(), params);
  for (const ProblemEvent& event : result.events) {
    EXPECT_EQ(event.impairment, ProblemEvent::Impairment::Latency);
    EXPECT_GE(event.latencyPenalty, params.latencyPenaltyMin);
    EXPECT_LE(event.latencyPenalty, params.latencyPenaltyMax);
  }
  for (std::size_t i = 0; i < result.trace.intervalCount(); ++i) {
    for (const auto& [edge, conditions] : result.trace.deviationsAt(i)) {
      EXPECT_LT(conditions.lossRate, 0.01);
      EXPECT_GT(conditions.latency, result.trace.baseline(edge).latency);
    }
  }
}

TEST(Synth, RejectsBadDurations) {
  const auto topology = Topology::ltn12();
  GeneratorParams params;
  params.duration = 0;
  EXPECT_THROW(generateSyntheticTrace(topology.graph(), params),
               std::invalid_argument);
  params.duration = util::seconds(5);
  params.intervalLength = util::seconds(10);
  EXPECT_THROW(generateSyntheticTrace(topology.graph(), params),
               std::invalid_argument);
}

TEST(ApplyEvent, FullActivityImpairsEveryInterval) {
  test::Line line;
  auto trace = test::healthyTrace(line.g, 10);
  util::Rng rng(1);
  const auto event =
      makeLinkEvent(line.g, line.sm, 2, 4, 1.0, 0.8, 0);
  applyEvent(trace, line.g, event, rng);
  for (std::size_t i = 0; i < trace.intervalCount(); ++i) {
    const bool within = i >= 2 && i < 6;
    EXPECT_EQ(trace.at(line.sm, i).lossRate > 0.5, within) << i;
    EXPECT_EQ(trace.at(line.ms, i).lossRate > 0.5, within) << i;
  }
}

TEST(ApplyEvent, ClampsAtTraceEnd) {
  test::Line line;
  auto trace = test::healthyTrace(line.g, 5);
  util::Rng rng(1);
  const auto event = makeLinkEvent(line.g, line.sm, 3, 100, 1.0, 0.8, 0);
  EXPECT_NO_THROW(applyEvent(trace, line.g, event, rng));
  EXPECT_GT(trace.at(line.sm, 4).lossRate, 0.5);
}

TEST(MakeNodeEvent, AlwaysAffectsAtLeastOneLink) {
  test::Diamond d;
  util::Rng rng(3);
  for (int trial = 0; trial < 50; ++trial) {
    const auto event =
        makeNodeEvent(d.g, d.s, 0, 1, /*coverage=*/0.01, 0.5, 0.5, 0, rng);
    EXPECT_GE(event.affectedEdges.size(), 2u);  // link + reverse
  }
}

}  // namespace
}  // namespace dg::trace
