#include "trace/topology.hpp"

#include <gtest/gtest.h>

#include "graph/shortest_path.hpp"

namespace dg::trace {
namespace {

TEST(Geo, HaversineKnownDistances) {
  // NYC <-> LA great-circle distance is ~3936 km.
  const double km = haversineKm(40.71, -74.01, 34.05, -118.24);
  EXPECT_NEAR(km, 3936.0, 40.0);
  EXPECT_DOUBLE_EQ(haversineKm(10, 20, 10, 20), 0.0);
}

TEST(Geo, FiberLatencyScaling) {
  // 200,000 km/s with 1.4 inflation: 1000 km -> 7 ms.
  EXPECT_EQ(fiberLatency(1000.0), util::microseconds(7000));
  EXPECT_EQ(fiberLatency(1000.0, 1.0), util::microseconds(5000));
  EXPECT_EQ(fiberLatency(0.0), 0);
}

TEST(Topology, AddSiteAndLookup) {
  Topology t;
  const auto id = t.addSite({"AAA", 1.0, 2.0});
  EXPECT_EQ(t.siteCount(), 1u);
  EXPECT_EQ(t.byName("AAA"), id);
  EXPECT_EQ(t.at("AAA"), id);
  EXPECT_FALSE(t.byName("BBB").has_value());
  EXPECT_THROW(t.at("BBB"), std::out_of_range);
  EXPECT_THROW(t.addSite({"AAA", 0, 0}), std::invalid_argument);
}

TEST(Topology, ConnectUsesGeoLatency) {
  Topology t;
  t.addSite({"NYC", 40.71, -74.01});
  t.addSite({"LAX", 34.05, -118.24});
  const auto e = t.connect("NYC", "LAX");
  // ~3936 km * 7 us/km ~ 27.5 ms.
  EXPECT_NEAR(static_cast<double>(t.graph().edge(e).latency), 27'500.0,
              500.0);
  // Both directions exist with equal latency.
  EXPECT_EQ(t.graph().edge(e).latency, t.graph().edge(e + 1).latency);
}

TEST(Topology, EdgeName) {
  Topology t;
  t.addSite({"A", 0, 0});
  t.addSite({"B", 0, 1});
  const auto e = t.connectWithLatency("A", "B", 100);
  EXPECT_EQ(t.edgeName(e), "A->B");
  EXPECT_EQ(t.edgeName(e + 1), "B->A");
}

TEST(Topology, Ltn12Shape) {
  const auto t = Topology::ltn12();
  EXPECT_EQ(t.siteCount(), 12u);
  EXPECT_EQ(t.graph().nodeCount(), 12u);
  // The paper's overlay scale: 64 directed edges.
  EXPECT_EQ(t.graph().edgeCount(), 64u);
  // Every site is connected (degree >= 3 keeps disjoint options).
  for (graph::NodeId n = 0; n < t.graph().nodeCount(); ++n) {
    EXPECT_GE(t.graph().outDegree(n), 3u) << t.name(n);
  }
}

TEST(Topology, Ltn12AllPairsReachable) {
  const auto t = Topology::ltn12();
  const auto weights = t.graph().baseLatencies();
  for (graph::NodeId a = 0; a < t.graph().nodeCount(); ++a) {
    const auto dist = graph::dijkstraDistances(t.graph(), a, weights);
    for (graph::NodeId b = 0; b < t.graph().nodeCount(); ++b) {
      EXPECT_NE(dist[b], util::kNever)
          << t.name(a) << " cannot reach " << t.name(b);
    }
  }
}

TEST(Topology, RoundTripSerialization) {
  const auto t = Topology::ltn12();
  const auto copy = Topology::fromString(t.toString());
  EXPECT_EQ(copy.siteCount(), t.siteCount());
  EXPECT_EQ(copy.graph().edgeCount(), t.graph().edgeCount());
  for (graph::EdgeId e = 0; e < t.graph().edgeCount(); ++e) {
    EXPECT_EQ(copy.graph().edge(e).from, t.graph().edge(e).from);
    EXPECT_EQ(copy.graph().edge(e).to, t.graph().edge(e).to);
    EXPECT_EQ(copy.graph().edge(e).latency, t.graph().edge(e).latency);
  }
}

TEST(Topology, FromStringErrors) {
  EXPECT_THROW(Topology::fromString("bogus A B\n"), std::runtime_error);
  EXPECT_THROW(Topology::fromString("site X\n"), std::runtime_error);
  EXPECT_THROW(Topology::fromString("site X 0 0\nlink X Y\n"),
               std::runtime_error);
  EXPECT_THROW(
      Topology::fromString("site X 0 0\nsite Y 0 1\nlink X Y -5\n"),
      std::runtime_error);
}

TEST(Topology, FromStringWithCommentsAndExplicitLatency) {
  const auto t = Topology::fromString(
      "# test topology\n"
      "site A 0 0\n"
      "site B 0 10\n"
      "link A B 12345\n");
  EXPECT_EQ(t.graph().edge(0).latency, 12345);
}


TEST(Topology, Abilene11Shape) {
  const auto t = Topology::abilene11();
  EXPECT_EQ(t.siteCount(), 11u);
  EXPECT_EQ(t.graph().edgeCount(), 28u);  // 14 undirected links
  // Abilene is a sparse ring-like backbone: minimum degree 2.
  for (graph::NodeId n = 0; n < t.graph().nodeCount(); ++n) {
    EXPECT_GE(t.graph().outDegree(n), 2u) << t.name(n);
  }
}

TEST(Topology, Abilene11AllPairsReachable) {
  const auto t = Topology::abilene11();
  const auto weights = t.graph().baseLatencies();
  for (graph::NodeId a = 0; a < t.graph().nodeCount(); ++a) {
    const auto dist = graph::dijkstraDistances(t.graph(), a, weights);
    for (graph::NodeId b = 0; b < t.graph().nodeCount(); ++b) {
      EXPECT_NE(dist[b], util::kNever)
          << t.name(a) << " cannot reach " << t.name(b);
    }
  }
}

TEST(Topology, Abilene11RoundTrips) {
  const auto t = Topology::abilene11();
  const auto copy = Topology::fromString(t.toString());
  EXPECT_EQ(copy.siteCount(), t.siteCount());
  EXPECT_EQ(copy.graph().edgeCount(), t.graph().edgeCount());
}

// One regression test per construction-invariant rejection: these are
// the invariants the topogen generators (and every consumer of
// Topology) rely on, so each rejection path is pinned individually.

TEST(TopologyValidation, RejectsSelfLoop) {
  Topology t;
  t.addSite({"A", 0, 0});
  EXPECT_THROW(t.connectWithLatency("A", "A", 100), std::invalid_argument);
}

TEST(TopologyValidation, RejectsDuplicateLinkEitherDirection) {
  Topology t;
  t.addSite({"A", 0, 0});
  t.addSite({"B", 0, 10});
  t.connectWithLatency("A", "B", 100);
  EXPECT_THROW(t.connectWithLatency("A", "B", 100), std::invalid_argument);
  EXPECT_THROW(t.connectWithLatency("B", "A", 100), std::invalid_argument);
}

TEST(TopologyValidation, RejectsNonPositiveLatency) {
  Topology t;
  t.addSite({"A", 0, 0});
  t.addSite({"B", 0, 10});
  EXPECT_THROW(t.connectWithLatency("A", "B", 0), std::invalid_argument);
  EXPECT_THROW(t.connectWithLatency("A", "B", -5), std::invalid_argument);
  // connect() derives latency from geography; co-located sites round to
  // zero and must be rejected rather than silently admitted.
  Topology u;
  u.addSite({"X", 10, 20});
  u.addSite({"Y", 10, 20});
  EXPECT_THROW(u.connect("X", "Y"), std::invalid_argument);
}

TEST(TopologyValidation, RejectsMalformedSiteNames) {
  Topology t;
  EXPECT_THROW(t.addSite({"", 0, 0}), std::invalid_argument);
  EXPECT_THROW(t.addSite({"A B", 0, 0}), std::invalid_argument);
  EXPECT_THROW(t.addSite({"A\tB", 0, 0}), std::invalid_argument);
  // '#' starts a comment in the text format, so it cannot appear in a
  // name that must round-trip through toString().
  EXPECT_THROW(t.addSite({"A#1", 0, 0}), std::invalid_argument);
}

TEST(TopologyValidation, RejectsOutOfRangeCoordinates) {
  Topology t;
  EXPECT_THROW(t.addSite({"A", 90.5, 0}), std::invalid_argument);
  EXPECT_THROW(t.addSite({"B", -91, 0}), std::invalid_argument);
  EXPECT_THROW(t.addSite({"C", 0, 180.5}), std::invalid_argument);
  EXPECT_THROW(t.addSite({"D", 0, -181}), std::invalid_argument);
  // The extremes themselves are legal.
  t.addSite({"N", 90, 180});
  t.addSite({"S", -90, -180});
  EXPECT_EQ(t.siteCount(), 2u);
}

}  // namespace
}  // namespace dg::trace
