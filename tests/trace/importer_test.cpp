#include "trace/importer.hpp"

#include <gtest/gtest.h>

#include "trace/synth.hpp"

namespace dg::trace {
namespace {

class ImporterTest : public ::testing::Test {
 protected:
  ImporterTest() : topology_(Topology::ltn12()) {}
  Topology topology_;
};

TEST_F(ImporterTest, ParsesRecordsIntoIntervals) {
  const auto trace = importMeasurementsCsv(topology_,
                                           "# comment\n"
                                           "0.0,NYC,CHI,0.0,9000\n"
                                           "12.0,NYC,CHI,0.5,9500\n"
                                           "25.0,NYC,CHI,0.0,9000\n");
  EXPECT_EQ(trace.intervalCount(), 3u);
  const auto edge =
      topology_.graph().findEdge(topology_.at("NYC"), topology_.at("CHI"));
  EXPECT_DOUBLE_EQ(trace.at(*edge, 1).lossRate, 0.5);
  EXPECT_EQ(trace.at(*edge, 1).latency, 9500);
}

TEST_F(ImporterTest, AveragesRecordsInSameInterval) {
  const auto trace = importMeasurementsCsv(topology_,
                                           "0.0,NYC,CHI,0.2,9000\n"
                                           "5.0,NYC,CHI,0.4,11000\n");
  const auto edge =
      topology_.graph().findEdge(topology_.at("NYC"), topology_.at("CHI"));
  EXPECT_NEAR(trace.at(*edge, 0).lossRate, 0.3, 1e-12);
  EXPECT_EQ(trace.at(*edge, 0).latency, 10000);
}

TEST_F(ImporterTest, UnmeasuredLinksKeepBaseline) {
  const auto trace =
      importMeasurementsCsv(topology_, "0.0,NYC,CHI,0.5,9000\n");
  const auto other =
      topology_.graph().findEdge(topology_.at("CHI"), topology_.at("DEN"));
  EXPECT_DOUBLE_EQ(trace.at(*other, 0).lossRate, 1e-4);
}

TEST_F(ImporterTest, ErrorsCarryLineNumbers) {
  const auto expectFailure = [&](std::string_view csv,
                                 std::string_view needle) {
    try {
      importMeasurementsCsv(topology_, csv);
      FAIL() << "expected throw for: " << csv;
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << e.what();
    }
  };
  expectFailure("0.0,NYC,CHI,0.5\n", "line 1");
  expectFailure("x,NYC,CHI,0.5,9000\n", "bad time");
  expectFailure("0.0,NYC,CHI,1.5,9000\n", "bad loss");
  expectFailure("0.0,NYC,CHI,0.5,-3\n", "bad latency");
  expectFailure("0.0,NYC,XXX,0.5,9000\n", "unknown site");
  expectFailure("0.0,NYC,SEA,0.5,9000\n", "no overlay link");
  expectFailure("# only comments\n", "no usable records");
}

TEST_F(ImporterTest, SkipUnknownSitesOption) {
  ImportOptions options;
  options.skipUnknownSites = true;
  const auto trace = importMeasurementsCsv(topology_,
                                           "0.0,NYC,XXX,0.5,9000\n"
                                           "0.0,NYC,SEA,0.5,9000\n"
                                           "0.0,NYC,CHI,0.5,9000\n",
                                           options);
  EXPECT_TRUE(trace.hasDeviation(0));
}

TEST_F(ImporterTest, StartTimeShiftsIntervalZero) {
  ImportOptions options;
  options.startTime = util::seconds(100);
  const auto trace = importMeasurementsCsv(topology_,
                                           "50.0,NYC,CHI,0.9,9000\n"
                                           "105.0,NYC,CHI,0.5,9000\n",
                                           options);
  // The record at t=50 is dropped; t=105 lands in interval 0.
  EXPECT_EQ(trace.intervalCount(), 1u);
  const auto edge =
      topology_.graph().findEdge(topology_.at("NYC"), topology_.at("CHI"));
  EXPECT_DOUBLE_EQ(trace.at(*edge, 0).lossRate, 0.5);
}

TEST_F(ImporterTest, RoundTripThroughExport) {
  GeneratorParams params;
  params.seed = 11;
  params.duration = util::hours(6);
  const auto synthetic = generateSyntheticTrace(topology_.graph(), params);
  const std::string csv =
      exportMeasurementsCsv(topology_, synthetic.trace);

  ImportOptions options;
  options.residualLoss = 1e-4;
  const auto imported = importMeasurementsCsv(topology_, csv, options);
  // Every deviation survives the round trip (times are interval-aligned
  // so no re-bucketing error).
  for (std::size_t i = 0; i < synthetic.trace.intervalCount(); ++i) {
    for (const auto& [edge, conditions] : synthetic.trace.deviationsAt(i)) {
      ASSERT_LT(i, imported.intervalCount());
      EXPECT_NEAR(imported.at(edge, i).lossRate, conditions.lossRate, 1e-9)
          << "interval " << i << " edge " << edge;
      EXPECT_EQ(imported.at(edge, i).latency, conditions.latency);
    }
  }
}

}  // namespace
}  // namespace dg::trace
