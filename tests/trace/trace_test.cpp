#include "trace/trace.hpp"

#include <gtest/gtest.h>

#include "test_support.hpp"

namespace dg::trace {
namespace {

Trace makeTrace() {
  test::Line line;
  return test::healthyTrace(line.g, 5, util::seconds(10), 1e-4);
}

TEST(Trace, BaselineEverywhereInitially) {
  const auto trace = makeTrace();
  EXPECT_EQ(trace.intervalCount(), 5u);
  EXPECT_EQ(trace.edgeCount(), 4u);
  EXPECT_EQ(trace.duration(), util::seconds(50));
  for (std::size_t i = 0; i < trace.intervalCount(); ++i) {
    EXPECT_FALSE(trace.hasDeviation(i));
    EXPECT_EQ(trace.at(0, i), trace.baseline(0));
  }
}

TEST(Trace, SetConditionOverrides) {
  auto trace = makeTrace();
  const LinkConditions degraded{0.5, util::milliseconds(30)};
  trace.setCondition(1, 2, degraded);
  EXPECT_TRUE(trace.hasDeviation(2));
  EXPECT_EQ(trace.at(1, 2), degraded);
  EXPECT_EQ(trace.at(1, 1), trace.baseline(1));
  EXPECT_EQ(trace.at(0, 2), trace.baseline(0));
  // Overwrite.
  const LinkConditions worse{0.9, util::milliseconds(40)};
  trace.setCondition(1, 2, worse);
  EXPECT_EQ(trace.at(1, 2), worse);
  EXPECT_EQ(trace.deviationsAt(2).size(), 1u);
}

TEST(Trace, ApplyImpairmentCombines) {
  auto trace = makeTrace();
  trace.applyImpairment(0, 1, LinkConditions{0.5, util::milliseconds(10)});
  trace.applyImpairment(0, 1, LinkConditions{0.5, util::milliseconds(20)});
  const auto& c = trace.at(0, 1);
  // Independent losses compose: 1 - (1-1e-4)(1-0.5)(1-0.5) ~ 0.750025.
  EXPECT_NEAR(c.lossRate, 0.750025, 1e-6);
  EXPECT_EQ(c.latency, util::milliseconds(20));
}

TEST(Trace, IntervalAtClampsRange) {
  const auto trace = makeTrace();
  EXPECT_EQ(trace.intervalAt(-5), 0u);
  EXPECT_EQ(trace.intervalAt(0), 0u);
  EXPECT_EQ(trace.intervalAt(util::seconds(10)), 1u);
  EXPECT_EQ(trace.intervalAt(util::seconds(10) - 1), 0u);
  EXPECT_EQ(trace.intervalAt(util::seconds(500)), 4u);
}

TEST(Trace, VectorsReflectDeviations) {
  auto trace = makeTrace();
  trace.setCondition(2, 3, LinkConditions{0.25, util::milliseconds(99)});
  const auto losses = trace.lossRatesAt(3);
  const auto latencies = trace.latenciesAt(3);
  EXPECT_DOUBLE_EQ(losses[2], 0.25);
  EXPECT_EQ(latencies[2], util::milliseconds(99));
  EXPECT_DOUBLE_EQ(losses[0], 1e-4);
}

TEST(Trace, RoundTripSerialization) {
  auto trace = makeTrace();
  trace.setCondition(1, 2, LinkConditions{0.5, util::milliseconds(30)});
  trace.setCondition(3, 4, LinkConditions{1.0, util::milliseconds(10)});
  const auto copy = Trace::fromString(trace.toString());
  EXPECT_EQ(copy.intervalCount(), trace.intervalCount());
  EXPECT_EQ(copy.edgeCount(), trace.edgeCount());
  EXPECT_EQ(copy.intervalLength(), trace.intervalLength());
  for (graph::EdgeId e = 0; e < trace.edgeCount(); ++e) {
    for (std::size_t i = 0; i < trace.intervalCount(); ++i) {
      EXPECT_EQ(copy.at(e, i), trace.at(e, i)) << "edge " << e << " ivl " << i;
    }
  }
}

TEST(Trace, FromStringErrors) {
  EXPECT_THROW(Trace::fromString(""), std::runtime_error);
  EXPECT_THROW(Trace::fromString("dev 0 0 0.5 100\n"), std::runtime_error);
  EXPECT_THROW(Trace::fromString("trace 10 0 4\n"), std::runtime_error);
  EXPECT_THROW(
      Trace::fromString("trace 1000000 2 2\ndev 5 0 0.5 100\n"),
      std::runtime_error);
  EXPECT_THROW(
      Trace::fromString("trace 1000000 2 2\nbase 9 0.1 100\n"),
      std::runtime_error);
}

TEST(Trace, RejectsBadConstruction) {
  EXPECT_THROW(Trace(0, 5, {}), std::invalid_argument);
}

TEST(HealthyBaseline, MatchesGraph) {
  test::Diamond d;
  const auto baseline = healthyBaseline(d.g, 2e-4);
  ASSERT_EQ(baseline.size(), d.g.edgeCount());
  EXPECT_DOUBLE_EQ(baseline[d.sa].lossRate, 2e-4);
  EXPECT_EQ(baseline[d.sa].latency, util::milliseconds(10));
}

}  // namespace
}  // namespace dg::trace
