// Cursor-vs-materialized equivalence and exact content interning for the
// condition timeline (the playback hot path's view of the trace).
#include "trace/condition_timeline.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "test_support.hpp"
#include "util/rng.hpp"

namespace dg {
namespace {

/// A trace with randomized loss/latency deviations scattered over random
/// (edge, interval) cells, on top of a small residual baseline loss.
trace::Trace randomTrace(const graph::Graph& g, std::size_t intervals,
                         std::uint64_t seed) {
  trace::Trace tr =
      test::healthyTrace(g, intervals, util::seconds(10), 1e-4);
  util::Rng rng(seed);
  const std::size_t events = intervals;
  for (std::size_t k = 0; k < events; ++k) {
    const auto e = static_cast<graph::EdgeId>(
        rng.uniformInt(static_cast<std::uint64_t>(g.edgeCount())));
    const auto t = static_cast<std::size_t>(
        rng.uniformInt(static_cast<std::uint64_t>(intervals)));
    trace::LinkConditions c = tr.baseline(e);
    if (rng.bernoulli(0.5)) {
      c.lossRate = rng.uniform(0.05, 0.9);
    } else {
      c.latency = 3 * c.latency + util::milliseconds(5);
    }
    tr.setCondition(e, t, c);
  }
  return tr;
}

void expectCursorMatches(const trace::ConditionTimeline& cursor,
                         const trace::Trace& tr, std::size_t t) {
  const std::vector<double> loss = tr.lossRatesAt(t);
  const std::vector<util::SimTime> latency = tr.latenciesAt(t);
  ASSERT_EQ(cursor.lossRates().size(), loss.size());
  ASSERT_EQ(cursor.latencies().size(), latency.size());
  for (std::size_t e = 0; e < loss.size(); ++e) {
    EXPECT_EQ(cursor.lossRates()[e], loss[e]) << "edge " << e;
    EXPECT_EQ(cursor.latencies()[e], latency[e]) << "edge " << e;
  }
}

TEST(ConditionTimeline, MatchesMaterializedAccessorsSequentially) {
  const test::Diamond d;
  const trace::Trace tr = randomTrace(d.g, 64, 1);
  trace::ConditionTimeline cursor(tr);
  for (std::size_t t = 0; t < tr.intervalCount(); ++t) {
    cursor.seek(t);
    ASSERT_EQ(cursor.interval(), t);
    expectCursorMatches(cursor, tr, t);
  }
}

TEST(ConditionTimeline, MatchesMaterializedAccessorsOnRandomSeeks) {
  const auto topology = trace::Topology::ltn12();
  const trace::Trace tr = randomTrace(topology.graph(), 128, 7);
  trace::ConditionTimeline cursor(tr);
  util::Rng rng(99);
  for (int step = 0; step < 500; ++step) {
    const auto t = static_cast<std::size_t>(
        rng.uniformInt(static_cast<std::uint64_t>(tr.intervalCount())));
    cursor.seek(t);
    expectCursorMatches(cursor, tr, t);
  }
}

TEST(ConditionTimeline, SpansStayValidAcrossSeeks) {
  const test::Line l;
  trace::Trace tr = test::healthyTrace(l.g, 4);
  tr.setCondition(l.sm, 2, {0.5, util::milliseconds(40)});
  trace::ConditionTimeline cursor(tr);
  cursor.seek(0);
  const std::span<const double> loss = cursor.lossRates();
  cursor.seek(2);
  EXPECT_EQ(loss[l.sm], 0.5);  // same storage, updated in place
  cursor.seek(1);
  EXPECT_EQ(loss[l.sm], tr.baseline(l.sm).lossRate);
}

TEST(ConditionTimeline, SeekPastEndThrows) {
  const test::Line l;
  const trace::Trace tr = test::healthyTrace(l.g, 4);
  trace::ConditionTimeline cursor(tr);
  EXPECT_THROW(cursor.seek(4), std::out_of_range);
}

TEST(ConditionIndex, CleanIntervalsShareTheCleanContent) {
  const test::Line l;
  trace::Trace tr = test::healthyTrace(l.g, 6);
  tr.setCondition(l.sm, 3, {0.5, util::milliseconds(40)});
  const trace::ConditionIndex index(tr);
  for (std::size_t t = 0; t < tr.intervalCount(); ++t) {
    if (t == 3) {
      EXPECT_NE(index.contentId(t), trace::ConditionIndex::kCleanContent);
    } else {
      EXPECT_EQ(index.contentId(t), trace::ConditionIndex::kCleanContent);
    }
  }
  EXPECT_EQ(index.distinctContents(), 2u);
}

TEST(ConditionIndex, InternsByExactContentNotByInterval) {
  const test::Diamond d;
  trace::Trace tr = test::healthyTrace(d.g, 8);
  const trace::LinkConditions lossy{0.3, util::milliseconds(10)};
  const trace::LinkConditions lossier{0.4, util::milliseconds(10)};
  tr.setCondition(d.sa, 1, lossy);
  tr.setCondition(d.sa, 5, lossy);   // identical content, distant interval
  tr.setCondition(d.sa, 2, lossier); // same edge, different value
  tr.setCondition(d.ad, 3, lossy);   // same value, different edge
  const trace::ConditionIndex index(tr);
  EXPECT_EQ(index.contentId(1), index.contentId(5));
  EXPECT_NE(index.contentId(1), index.contentId(2));
  EXPECT_NE(index.contentId(1), index.contentId(3));
  EXPECT_EQ(index.distinctContents(), 4u);  // clean + three distinct
}

TEST(TraceValidation, ZeroIntervalCountThrows) {
  const test::Line l;
  EXPECT_THROW(trace::Trace(util::seconds(10), 0,
                            trace::healthyBaseline(l.g, 0.0)),
               std::invalid_argument);
}

TEST(TraceValidation, NonPositiveIntervalLengthThrows) {
  const test::Line l;
  EXPECT_THROW(
      trace::Trace(0, 4, trace::healthyBaseline(l.g, 0.0)),
      std::invalid_argument);
}

}  // namespace
}  // namespace dg
