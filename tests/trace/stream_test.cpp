// TraceSink streaming: builder round trips and the streaming synthetic
// generator's bit-identity to the batch path.
#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "test_support.hpp"
#include "trace/stream.hpp"
#include "trace/synth.hpp"
#include "trace/topology.hpp"

namespace dg {
namespace {

TEST(TraceStream, StreamIntoBuilderReproducesTheTrace) {
  const test::Diamond diamond;
  trace::Trace original(util::seconds(10), 25,
                        trace::healthyBaseline(diamond.g, 1e-4));
  original.setCondition(diamond.sa, 0, {0.9, util::milliseconds(10)});
  original.setCondition(diamond.ad, 11, {0.25, util::milliseconds(400)});
  original.setCondition(diamond.db, 11, {1.0, util::milliseconds(15)});
  original.setCondition(diamond.ba, 24, {0.1, util::milliseconds(5)});

  trace::TraceBuilder builder;
  trace::streamTrace(original, builder);
  EXPECT_EQ(builder.take(), original);
}

TEST(TraceStream, BuilderEnforcesItsContract) {
  trace::TraceBuilder builder;
  EXPECT_THROW(builder.take(), std::logic_error);
  EXPECT_THROW(builder.interval(0, {}), std::logic_error);
  builder.begin(util::seconds(10), 4,
                std::vector<trace::LinkConditions>(
                    2, trace::LinkConditions{0.0, util::milliseconds(1)}));
  EXPECT_THROW(builder.begin(util::seconds(10), 4, {}), std::logic_error);
  EXPECT_THROW(builder.interval(4, {}), std::out_of_range);
  EXPECT_THROW(builder.take(), std::logic_error);  // no end() yet
  builder.end();
  const trace::Trace taken = builder.take();
  EXPECT_EQ(taken.intervalCount(), 4u);
}

TEST(TraceStream, StreamedGeneratorIsBitIdenticalToBatch) {
  const auto topology = trace::Topology::ltn12();
  for (const std::uint64_t seed : {1ull, 7ull, 20170605ull}) {
    trace::GeneratorParams params;
    params.seed = seed;
    params.duration = util::days(1);

    const auto batch = generateSyntheticTrace(topology.graph(), params);

    trace::TraceBuilder builder;
    trace::StreamGenerationStats stats;
    const auto events =
        streamSyntheticTrace(topology.graph(), params, builder, &stats);
    const trace::Trace streamed = builder.take();

    EXPECT_EQ(streamed, batch.trace) << "seed " << seed;
    EXPECT_EQ(events, batch.events) << "seed " << seed;
    EXPECT_EQ(stats.events, batch.events.size());
  }
}

TEST(TraceStream, StreamingStatsStayBoundedOnLongTraces) {
  const auto topology = trace::Topology::ltn12();
  trace::GeneratorParams params;
  params.seed = 5;

  params.duration = util::days(2);
  trace::TraceBuilder shortBuilder;
  trace::StreamGenerationStats shortStats;
  streamSyntheticTrace(topology.graph(), params, shortBuilder, &shortStats);
  shortBuilder.take();

  params.duration = util::days(8);
  trace::TraceBuilder longBuilder;
  trace::StreamGenerationStats longStats;
  streamSyntheticTrace(topology.graph(), params, longBuilder, &longStats);
  longBuilder.take();

  // 4x the horizon means ~4x the emitted work, but the pending window
  // tracks event density, not trace length: it must not scale with the
  // horizon. Allow generous slack for random variation in event shapes.
  EXPECT_GT(longStats.emittedIntervals, shortStats.emittedIntervals);
  EXPECT_LT(longStats.peakPendingOps,
            4 * std::max<std::size_t>(shortStats.peakPendingOps, 1000));
  EXPECT_LT(longStats.peakPendingIntervals,
            longStats.emittedIntervals + 1);
}

}  // namespace
}  // namespace dg
