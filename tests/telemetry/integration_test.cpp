// Cross-layer telemetry integration: counters asserted against the
// engines' own ground truth (FlowStats, node accessors, trace events and
// the synthetic generator's event log), plus the thread-count
// determinism guarantee for exports.
#include <gtest/gtest.h>

#include "core/transport.hpp"
#include "playback/experiment.hpp"
#include "playback/playback.hpp"
#include "telemetry/export.hpp"
#include "telemetry/telemetry.hpp"
#include "trace/synth.hpp"
#include "trace/topology.hpp"

namespace dg {
namespace {

trace::Trace lossyTrace(const trace::Topology& topology,
                        std::size_t intervals, std::size_t problemFirst,
                        std::size_t problemLast, double loss) {
  trace::Trace tr(util::seconds(10), intervals,
                  trace::healthyBaseline(topology.graph(), 1e-4));
  const auto& g = topology.graph();
  const auto nyc = topology.at("NYC");
  for (std::size_t i = problemFirst; i < problemLast; ++i) {
    for (const graph::EdgeId e : g.outEdges(nyc)) {
      tr.setCondition(e, i, trace::LinkConditions{loss, g.edge(e).latency});
      if (const auto r = g.reverseEdge(e))
        tr.setCondition(*r, i,
                        trace::LinkConditions{loss, g.edge(*r).latency});
    }
  }
  return tr;
}

TEST(TelemetryIntegration, SimulateCountersMatchEngineGroundTruth) {
  const auto topology = trace::Topology::ltn12();
  const auto tr = lossyTrace(topology, 60, 0, 60, 0.2);

  telemetry::Telemetry telemetry;
  core::TransportService service(topology, tr);
  service.setTelemetry(&telemetry);
  const auto flow = service.openFlow(
      "NYC", "SJC", routing::SchemeKind::StaticSinglePath);
  service.run(util::seconds(60));

  const auto& stats = service.stats(flow);
  const telemetry::MetricsRegistry& m = telemetry.metrics;
  const telemetry::Labels flowLabels{{"flow", "0"}};
  EXPECT_EQ(m.counterValue("dg_core_sent_total", flowLabels), stats.sent);
  EXPECT_EQ(m.counterValue("dg_core_delivered_on_time_total", flowLabels),
            stats.deliveredOnTime);
  EXPECT_EQ(m.counterValue("dg_core_delivered_late_total", flowLabels),
            stats.deliveredLate);
  const telemetry::HistogramMetric* latency =
      m.findHistogram("dg_core_delivery_latency_ms", flowLabels);
  ASSERT_NE(latency, nullptr);
  EXPECT_EQ(latency->count(), stats.delivered());

  // Per-node counters agree with the nodes' own accounting.
  std::uint64_t nacks = 0, retransmissions = 0, duplicates = 0;
  for (graph::NodeId n = 0; n < topology.graph().nodeCount(); ++n) {
    const core::OverlayNode& node = service.node(n);
    const telemetry::Labels nodeLabels{{"node", std::to_string(n)}};
    EXPECT_EQ(m.counterValue("dg_core_nacks_sent_total", nodeLabels),
              node.nacksSent());
    EXPECT_EQ(
        m.counterValue("dg_core_retransmissions_sent_total", nodeLabels),
        node.retransmissionsSent());
    EXPECT_EQ(m.counterValue("dg_core_duplicates_dropped_total", nodeLabels),
              node.duplicatesDropped());
    nacks += node.nacksSent();
    retransmissions += node.retransmissionsSent();
    duplicates += node.duplicatesDropped();
  }
  // 20% loss on every NYC link for a minute: recovery must have fired.
  EXPECT_GT(nacks, 0u);
  EXPECT_GT(retransmissions, 0u);

  // Recovered deliveries: counted, and each one has a trace event.
  const std::uint64_t recovered =
      m.counterValue("dg_core_recovered_deliveries_total", flowLabels);
  EXPECT_GT(recovered, 0u);
  EXPECT_LE(recovered, retransmissions);
  EXPECT_EQ(telemetry.trace
                .eventsOfKind(telemetry::TraceEventKind::RecoveredDelivery)
                .size(),
            recovered);

  // Per-link drop counters sum to the drops the trace events recorded
  // for data packets, and something was dropped under 20% loss.
  std::uint64_t linkDrops = 0;
  for (graph::EdgeId e = 0; e < topology.graph().edgeCount(); ++e) {
    linkDrops += m.counterValue("dg_net_link_drops_total",
                                {{"edge", std::to_string(e)}});
  }
  EXPECT_GT(linkDrops, 0u);

  // Sim-time stamps only: every event within the simulated horizon.
  for (const telemetry::TraceEvent& event : telemetry.trace.events()) {
    EXPECT_GE(event.time, 0);
    EXPECT_LE(event.time, util::seconds(60));
  }
}

TEST(TelemetryIntegration, PlaybackCountersMatchRunAndTraceEvents) {
  const auto topology = trace::Topology::ltn12();
  const auto tr = lossyTrace(topology, 60, 5, 40, 0.6);
  playback::PlaybackParams params;
  params.mcSamples = 200;
  const playback::PlaybackEngine engine(topology.graph(), tr, params);
  const routing::Flow flow{topology.at("NYC"), topology.at("SJC")};

  telemetry::Telemetry telemetry;
  const auto result =
      engine.run(flow, routing::SchemeKind::TargetedRedundancy,
                 routing::SchemeParams{}, &telemetry);

  const telemetry::MetricsRegistry& m = telemetry.metrics;
  const std::string flowLabel = std::to_string(flow.source) + "->" +
                                std::to_string(flow.destination);
  const telemetry::Labels labels{{"flow", flowLabel},
                                 {"scheme", "targeted"}};
  EXPECT_EQ(m.counterValue("dg_playback_intervals_total", labels),
            tr.intervalCount());
  const std::uint64_t mcIntervals =
      m.counterValue("dg_playback_mc_intervals_total", labels);
  EXPECT_GT(mcIntervals, 0u);
  EXPECT_EQ(m.counterValue("dg_playback_mc_samples_total", labels),
            mcIntervals * 200u);

  // The injected source problem must be classified, and the targeted
  // scheme must have switched graphs; switches and classifications both
  // count and leave trace events.
  std::uint64_t classifications = 0;
  for (const auto& [key, counter] : m.counters()) {
    if (key.name == "dg_routing_classifications_total")
      classifications += counter->value();
  }
  EXPECT_GT(classifications, 0u);
  const std::uint64_t switches =
      m.counterValue("dg_routing_graph_switches_total", labels);
  EXPECT_GT(switches, 0u);
  EXPECT_EQ(telemetry.trace
                .eventsOfKind(telemetry::TraceEventKind::GraphSwitch)
                .size(),
            switches);
  // Problematic intervals exist and the run saw them.
  EXPECT_GT(result.problematicIntervals, 0u);

  // Interval timestamps are exact sim-time multiples of the interval.
  for (const telemetry::TraceEvent& event :
       telemetry.trace.eventsOfKind(telemetry::TraceEventKind::GraphSwitch)) {
    EXPECT_EQ(event.time % tr.intervalLength(), 0);
    EXPECT_LT(event.time, tr.duration());
  }
}

TEST(TelemetryIntegration, PlaybackQuietOnSyntheticTraceWithoutEvents) {
  // Ground truth from the generator: when the synthetic event log is
  // empty, a dynamic scheme must never switch graphs and no interval
  // needs Monte-Carlo.
  const auto topology = trace::Topology::ltn12();
  trace::GeneratorParams params;
  params.duration = util::minutes(30);
  params.nodeEventsPerDay = 0.0;
  params.linkEventsPerDay = 0.0;
  params.blipsPerLinkPerDay = 0.0;
  const auto synthetic = generateSyntheticTrace(topology.graph(), params);
  ASSERT_TRUE(synthetic.events.empty());

  const playback::PlaybackEngine engine(topology.graph(), synthetic.trace,
                                        {});
  telemetry::Telemetry telemetry;
  engine.run(routing::Flow{topology.at("NYC"), topology.at("SJC")},
             routing::SchemeKind::TargetedRedundancy,
             routing::SchemeParams{}, &telemetry);
  const telemetry::MetricsRegistry& m = telemetry.metrics;
  std::uint64_t switches = 0;
  for (const auto& [key, counter] : m.counters()) {
    if (key.name == "dg_routing_graph_switches_total")
      switches += counter->value();
  }
  EXPECT_EQ(switches, 0u);
  EXPECT_TRUE(
      telemetry.trace.eventsOfKind(telemetry::TraceEventKind::GraphSwitch)
          .empty());
}

TEST(TelemetryIntegration, ExperimentExportsAreIdenticalAcrossThreadCounts) {
  const auto topology = trace::Topology::ltn12();
  trace::GeneratorParams genParams;
  genParams.duration = util::hours(1);
  genParams.seed = 11;
  const auto synthetic = generateSyntheticTrace(topology.graph(), genParams);

  playback::ExperimentConfig config;
  config.flows = {routing::Flow{topology.at("NYC"), topology.at("SJC")},
                  routing::Flow{topology.at("WAS"), topology.at("SEA")}};
  config.schemes = {routing::SchemeKind::DynamicSinglePath,
                    routing::SchemeKind::TargetedRedundancy};
  config.playback.mcSamples = 100;

  std::string jsonByThreads[3];
  std::string traceByThreads[3];
  const unsigned threadCounts[3] = {1, 2, 4};
  for (int i = 0; i < 3; ++i) {
    config.threads = threadCounts[i];
    telemetry::Telemetry telemetry;
    playback::runExperiment(topology.graph(), synthetic.trace, config,
                            &telemetry);
    jsonByThreads[i] = telemetry::toJson(telemetry.metrics);
    traceByThreads[i] = telemetry::toJson(telemetry.trace);
    EXPECT_FALSE(telemetry.metrics.empty());
  }
  EXPECT_EQ(jsonByThreads[0], jsonByThreads[1]);
  EXPECT_EQ(jsonByThreads[0], jsonByThreads[2]);
  EXPECT_EQ(traceByThreads[0], traceByThreads[1]);
  EXPECT_EQ(traceByThreads[0], traceByThreads[2]);
}

}  // namespace
}  // namespace dg
