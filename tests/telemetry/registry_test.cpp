#include "telemetry/metrics.hpp"

#include <gtest/gtest.h>

namespace dg::telemetry {
namespace {

TEST(MetricsRegistry, CounterFindOrCreateAndLookup) {
  MetricsRegistry registry;
  Counter& c = registry.counter("dg_test_total");
  c.inc();
  c.inc(4);
  EXPECT_EQ(registry.counterValue("dg_test_total"), 5u);
  EXPECT_EQ(&registry.counter("dg_test_total"), &c);
  EXPECT_EQ(registry.counterValue("dg_other_total"), 0u);
  EXPECT_EQ(registry.findCounter("dg_other_total"), nullptr);
}

TEST(MetricsRegistry, LabelsAreNormalizedToSortedOrder) {
  MetricsRegistry registry;
  Counter& a = registry.counter("dg_test_total",
                                {{"scheme", "targeted"}, {"flow", "0"}});
  Counter& b = registry.counter("dg_test_total",
                                {{"flow", "0"}, {"scheme", "targeted"}});
  EXPECT_EQ(&a, &b);
  a.inc();
  EXPECT_EQ(
      registry.counterValue("dg_test_total",
                            {{"scheme", "targeted"}, {"flow", "0"}}),
      1u);
}

TEST(MetricsRegistry, GaugeKeepsHighWaterMark) {
  MetricsRegistry registry;
  Gauge& g = registry.gauge("dg_depth_high");
  g.high(3.0);
  g.high(1.0);
  EXPECT_DOUBLE_EQ(g.value(), 3.0);
  g.set(0.5);
  EXPECT_DOUBLE_EQ(g.value(), 0.5);
}

TEST(MetricsRegistry, HistogramGeometryMismatchThrows) {
  MetricsRegistry registry;
  registry.histogram("dg_lat_ms", 0.0, 100.0, 10);
  EXPECT_NO_THROW(registry.histogram("dg_lat_ms", 0.0, 100.0, 10));
  EXPECT_THROW(registry.histogram("dg_lat_ms", 0.0, 100.0, 20),
               std::invalid_argument);
  EXPECT_THROW(registry.histogram("dg_lat_ms", 0.0, 50.0, 10),
               std::invalid_argument);
}

TEST(MetricsRegistry, MergeAddsCountersAndHistogramsMaxesGauges) {
  MetricsRegistry a;
  MetricsRegistry b;
  a.counter("dg_c_total").inc(2);
  b.counter("dg_c_total").inc(5);
  b.counter("dg_only_in_b_total").inc(7);
  a.gauge("dg_g_high").high(4.0);
  b.gauge("dg_g_high").high(9.0);
  a.histogram("dg_h", 0.0, 10.0, 5).observe(1.0);
  b.histogram("dg_h", 0.0, 10.0, 5).observe(9.0);
  a.summary("dg_s").observe(2.0);
  b.summary("dg_s").observe(4.0);

  a.merge(b);
  EXPECT_EQ(a.counterValue("dg_c_total"), 7u);
  EXPECT_EQ(a.counterValue("dg_only_in_b_total"), 7u);
  EXPECT_DOUBLE_EQ(a.findGauge("dg_g_high")->value(), 9.0);
  EXPECT_EQ(a.findHistogram("dg_h")->count(), 2u);
  EXPECT_DOUBLE_EQ(a.findHistogram("dg_h")->sum(), 10.0);
  EXPECT_EQ(a.findSummary("dg_s")->stats().count(), 2u);
  EXPECT_DOUBLE_EQ(a.findSummary("dg_s")->stats().mean(), 3.0);
}

// The experiment runner's determinism argument: observations distributed
// over per-worker registries and merged in a fixed order reproduce the
// single-registry result for any partitioning -- exactly for counters,
// gauges and histogram buckets (integer adds / max), and to floating-
// point rounding for summary sums (the byte-identical guarantee across
// thread counts comes from the runner's *fixed* per-job partitioning,
// which makes the merge sequence independent of the thread count).
TEST(MetricsRegistry, PartitionedMergeMatchesSingleRegistryForAnyWorkerCount) {
  const int observations = 97;
  const auto observe = [](MetricsRegistry& r, int i) {
    r.counter("dg_events_total", {{"flow", std::to_string(i % 3)}}).inc();
    r.gauge("dg_depth_high").high(static_cast<double>(i % 13));
    r.histogram("dg_lat_ms", 0.0, 50.0, 10)
        .observe(static_cast<double>(i % 50));
    r.summary("dg_loss").observe(static_cast<double>(i) / observations);
  };

  MetricsRegistry reference;
  for (int i = 0; i < observations; ++i) observe(reference, i);

  for (const int workers : {1, 2, 3, 4, 7}) {
    std::vector<MetricsRegistry> parts(static_cast<std::size_t>(workers));
    for (int i = 0; i < observations; ++i) {
      observe(parts[static_cast<std::size_t>(i % workers)], i);
    }
    MetricsRegistry merged;
    for (const MetricsRegistry& part : parts) merged.merge(part);

    for (int f = 0; f < 3; ++f) {
      const Labels labels{{"flow", std::to_string(f)}};
      EXPECT_EQ(merged.counterValue("dg_events_total", labels),
                reference.counterValue("dg_events_total", labels))
          << "workers=" << workers;
    }
    EXPECT_DOUBLE_EQ(merged.findGauge("dg_depth_high")->value(),
                     reference.findGauge("dg_depth_high")->value());
    const util::Histogram& mh = merged.findHistogram("dg_lat_ms")->histogram();
    const util::Histogram& rh =
        reference.findHistogram("dg_lat_ms")->histogram();
    ASSERT_EQ(mh.bucketCount(), rh.bucketCount());
    for (std::size_t b = 0; b < mh.bucketCount(); ++b) {
      EXPECT_EQ(mh.bucketValue(b), rh.bucketValue(b)) << "workers=" << workers;
    }
    const util::OnlineStats& ms = merged.findSummary("dg_loss")->stats();
    const util::OnlineStats& rs = reference.findSummary("dg_loss")->stats();
    EXPECT_EQ(ms.count(), rs.count());
    EXPECT_DOUBLE_EQ(ms.min(), rs.min());
    EXPECT_DOUBLE_EQ(ms.max(), rs.max());
    EXPECT_NEAR(ms.sum(), rs.sum(), 1e-9);  // FP addition order differs
  }
}

// The guarantee the runner actually relies on: the SAME per-job
// partitioning merged in the SAME order yields byte-identical samples,
// however many threads executed the jobs.
TEST(MetricsRegistry, FixedJobPartitioningMergesIdentically) {
  const auto buildJobs = [] {
    std::vector<MetricsRegistry> jobs(4);
    for (int j = 0; j < 4; ++j) {
      auto& r = jobs[static_cast<std::size_t>(j)];
      for (int i = 0; i < 10 + j; ++i) {
        r.counter("dg_events_total").inc();
        r.summary("dg_loss").observe(static_cast<double>(i * (j + 1)) / 7.0);
      }
    }
    return jobs;
  };
  const auto mergeAll = [](const std::vector<MetricsRegistry>& jobs) {
    MetricsRegistry merged;
    for (const MetricsRegistry& job : jobs) merged.merge(job);
    return merged.samples();
  };
  EXPECT_EQ(mergeAll(buildJobs()), mergeAll(buildJobs()));
}

TEST(MetricsRegistry, SampleKeyRendersPrometheusStyle) {
  EXPECT_EQ(sampleKey("dg_x_total", {}), "dg_x_total");
  EXPECT_EQ(sampleKey("dg_x_total", {{"flow", "0"}, {"scheme", "targeted"}}),
            "dg_x_total{flow=\"0\",scheme=\"targeted\"}");
}

TEST(MetricsRegistry, FormatDoubleIsShortestRoundTrip) {
  EXPECT_EQ(formatDouble(0.1), "0.1");
  EXPECT_EQ(formatDouble(2.0), "2");
  EXPECT_EQ(std::stod(formatDouble(1.0 / 3.0)), 1.0 / 3.0);
}

}  // namespace
}  // namespace dg::telemetry
