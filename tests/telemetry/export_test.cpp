#include "telemetry/export.hpp"

#include <gtest/gtest.h>

#include "telemetry/telemetry.hpp"

namespace dg::telemetry {
namespace {

MetricsRegistry populatedRegistry() {
  MetricsRegistry registry;
  registry.counter("dg_net_link_drops_total", {{"edge", "3"}}).inc(17);
  registry.counter("dg_net_link_drops_total", {{"edge", "7"}}).inc(2);
  registry.counter("dg_core_sent_total", {{"flow", "0"}}).inc(1000);
  registry.gauge("dg_sim_queue_depth_high").high(42.0);
  HistogramMetric& h =
      registry.histogram("dg_core_delivery_latency_ms", 0.0, 100.0, 4,
                         {{"flow", "0"}});
  h.observe(10.0);
  h.observe(30.0);
  h.observe(250.0);  // overflow bucket
  SummaryMetric& s = registry.summary("dg_core_monitor_loss_estimate");
  s.observe(0.001);
  s.observe(0.25);
  return registry;
}

// The acceptance criterion: export -> parse -> identical values, for the
// exact flattening samples() exposes.
TEST(Exporters, PrometheusRoundTripsEverySample) {
  const MetricsRegistry registry = populatedRegistry();
  const std::string text = toPrometheus(registry);
  const auto parsed = parsePrometheus(text);
  const auto samples = registry.samples();
  ASSERT_FALSE(samples.empty());
  EXPECT_EQ(parsed.size(), samples.size());
  for (const auto& [key, value] : samples) {
    const auto it = parsed.find(key);
    ASSERT_NE(it, parsed.end()) << "missing sample " << key;
    EXPECT_DOUBLE_EQ(it->second, value) << key;
  }
}

TEST(Exporters, PrometheusIsDeterministic) {
  EXPECT_EQ(toPrometheus(populatedRegistry()),
            toPrometheus(populatedRegistry()));
  EXPECT_EQ(toJson(populatedRegistry()), toJson(populatedRegistry()));
  EXPECT_EQ(toCsv(populatedRegistry()), toCsv(populatedRegistry()));
}

TEST(Exporters, PrometheusHasTypeHeadersAndCumulativeBuckets) {
  const std::string text = toPrometheus(populatedRegistry());
  EXPECT_NE(text.find("# TYPE dg_net_link_drops_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE dg_core_delivery_latency_ms histogram"),
            std::string::npos);
  // 3 observations total, one beyond the top edge: +Inf bucket must carry
  // the full count and the _count sample must agree.
  EXPECT_NE(text.find("le=\"+Inf\""), std::string::npos);
  EXPECT_NE(text.find("dg_core_delivery_latency_ms_count{flow=\"0\"} 3"),
            std::string::npos);
}

TEST(Exporters, JsonCarriesAllInstrumentKinds) {
  const std::string json = toJson(populatedRegistry());
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"summaries\""), std::string::npos);
  EXPECT_NE(json.find("\"dg_net_link_drops_total\""), std::string::npos);
  EXPECT_NE(json.find("\"edge\":\"3\""), std::string::npos);
}

TEST(Exporters, CsvHasHeaderAndOneRowPerSampleFamily) {
  const std::string csv = toCsv(populatedRegistry());
  EXPECT_EQ(csv.rfind("type,name,labels,sample,value", 0), 0u);
  EXPECT_NE(csv.find("counter,dg_net_link_drops_total,edge=3"),
            std::string::npos);
}

TEST(Exporters, ParsePrometheusRejectsMalformedLines) {
  EXPECT_THROW(parsePrometheus("dg_x_total"), std::runtime_error);
  EXPECT_THROW(parsePrometheus("dg_x_total not-a-number"),
               std::runtime_error);
  EXPECT_TRUE(parsePrometheus("# just a comment\n\n").empty());
}

TEST(Exporters, TraceLogJsonCarriesEventsAndAccounting) {
  TraceLog log(8);
  log.record(util::seconds(2), TraceEventKind::GraphSwitch, 0, 1, -1, 5.0,
             "targeted");
  const std::string json = toJson(log);
  EXPECT_NE(json.find("\"recorded\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"dropped\": 0"), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"graph-switch\""), std::string::npos);
  EXPECT_NE(json.find("\"time_us\":2000000"), std::string::npos);
  EXPECT_NE(json.find("\"detail\":\"targeted\""), std::string::npos);
}

}  // namespace
}  // namespace dg::telemetry
