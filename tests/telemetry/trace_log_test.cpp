#include "telemetry/trace_log.hpp"

#include <gtest/gtest.h>

namespace dg::telemetry {
namespace {

TraceEvent at(util::SimTime time, TraceEventKind kind = TraceEventKind::PacketDrop) {
  TraceEvent event;
  event.time = time;
  event.kind = kind;
  return event;
}

TEST(TraceLog, RecordsOldestFirst) {
  TraceLog log(8);
  log.record(util::seconds(1), TraceEventKind::NackSent, 0, 3, 2, 4.0);
  log.record(util::seconds(2), TraceEventKind::Retransmission, 0, 5, 2, 7.0);
  ASSERT_EQ(log.size(), 2u);
  const auto events = log.events();
  EXPECT_EQ(events[0].time, util::seconds(1));
  EXPECT_EQ(events[0].kind, TraceEventKind::NackSent);
  EXPECT_EQ(events[0].node, 3);
  EXPECT_DOUBLE_EQ(events[0].value, 4.0);
  EXPECT_EQ(events[1].kind, TraceEventKind::Retransmission);
  EXPECT_EQ(log.recorded(), 2u);
  EXPECT_EQ(log.dropped(), 0u);
}

TEST(TraceLog, OverflowOverwritesOldestAndAccountsDrops) {
  TraceLog log(4);
  for (int i = 0; i < 10; ++i) log.record(at(util::seconds(i)));
  EXPECT_EQ(log.size(), 4u);
  EXPECT_EQ(log.capacity(), 4u);
  EXPECT_EQ(log.recorded(), 10u);
  EXPECT_EQ(log.dropped(), 6u);
  const auto events = log.events();
  ASSERT_EQ(events.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(events[static_cast<std::size_t>(i)].time,
              util::seconds(6 + i));
  }
}

TEST(TraceLog, EventsOfKindFilters) {
  TraceLog log(16);
  log.record(at(1, TraceEventKind::PacketDrop));
  log.record(at(2, TraceEventKind::GraphSwitch));
  log.record(at(3, TraceEventKind::PacketDrop));
  EXPECT_EQ(log.eventsOfKind(TraceEventKind::PacketDrop).size(), 2u);
  EXPECT_EQ(log.eventsOfKind(TraceEventKind::GraphSwitch).size(), 1u);
  EXPECT_TRUE(log.eventsOfKind(TraceEventKind::NackSent).empty());
}

TEST(TraceLog, MergeUnionsAndSortsByTime) {
  TraceLog a(16);
  TraceLog b(16);
  a.record(at(1));
  a.record(at(5, TraceEventKind::GraphSwitch));
  b.record(at(3, TraceEventKind::NackSent));
  a.merge(b);
  ASSERT_EQ(a.size(), 3u);
  const auto events = a.events();
  EXPECT_EQ(events[0].time, 1);
  EXPECT_EQ(events[1].time, 3);
  EXPECT_EQ(events[1].kind, TraceEventKind::NackSent);
  EXPECT_EQ(events[2].time, 5);
  EXPECT_EQ(a.recorded(), 3u);
}

// Splitting the same event stream over per-worker logs and merging in a
// fixed order reproduces the single-log contents (the thread-count
// determinism argument for trace exports).
TEST(TraceLog, PartitionedMergeMatchesSingleLog) {
  TraceLog reference(64);
  for (int i = 0; i < 40; ++i) reference.record(at(util::seconds(i)));

  for (const int workers : {1, 2, 3, 5}) {
    std::vector<TraceLog> parts(static_cast<std::size_t>(workers),
                                TraceLog(64));
    for (int i = 0; i < 40; ++i) {
      parts[static_cast<std::size_t>(i % workers)].record(
          at(util::seconds(i)));
    }
    TraceLog merged(64);
    for (const TraceLog& part : parts) merged.merge(part);
    ASSERT_EQ(merged.size(), reference.size()) << "workers=" << workers;
    const auto expected = reference.events();
    const auto actual = merged.events();
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(actual[i].time, expected[i].time) << "workers=" << workers;
    }
  }
}

TEST(TraceLog, MergeRespectsCapacityOfTarget) {
  TraceLog small(4);
  TraceLog big(16);
  for (int i = 0; i < 10; ++i) big.record(at(util::seconds(i)));
  small.merge(big);
  EXPECT_EQ(small.size(), 4u);
  // The four newest survive.
  EXPECT_EQ(small.events().front().time, util::seconds(6));
  EXPECT_EQ(small.events().back().time, util::seconds(9));
}

TEST(TraceLog, KindNamesAreKebabCase) {
  EXPECT_EQ(traceEventKindName(TraceEventKind::PacketDrop), "packet-drop");
  EXPECT_EQ(traceEventKindName(TraceEventKind::GraphSwitch), "graph-switch");
  EXPECT_EQ(traceEventKindName(TraceEventKind::ProblemClassified),
            "problem-classified");
}

}  // namespace
}  // namespace dg::telemetry
