#include "lexer.hpp"

#include <gtest/gtest.h>

namespace dg::lint {
namespace {

std::vector<Token> lex(std::string_view src) { return tokenize(src); }

TEST(DglintLexer, IdentifiersNumbersAndPunct) {
  const auto tokens = lex("int x = 42 + 0x1f;");
  ASSERT_EQ(tokens.size(), 7u);
  EXPECT_EQ(tokens[0].kind, TokenKind::Identifier);
  EXPECT_EQ(tokens[0].text, "int");
  EXPECT_EQ(tokens[2].kind, TokenKind::Punct);
  EXPECT_EQ(tokens[2].text, "=");
  EXPECT_EQ(tokens[3].kind, TokenKind::Number);
  EXPECT_EQ(tokens[3].text, "42");
  EXPECT_EQ(tokens[5].kind, TokenKind::Number);
  EXPECT_EQ(tokens[5].text, "0x1f");
  EXPECT_EQ(tokens[6].text, ";");
}

TEST(DglintLexer, GreedyMultiCharPunct) {
  const auto tokens = lex("a += b; c :: d; e -> f;");
  std::vector<std::string> puncts;
  for (const Token& t : tokens)
    if (t.kind == TokenKind::Punct) puncts.push_back(t.text);
  EXPECT_EQ(puncts,
            (std::vector<std::string>{"+=", ";", "::", ";", "->", ";"}));
}

TEST(DglintLexer, LineAndBlockComments) {
  const auto tokens = lex("x; // trailing note\n/* block\nspans */ y;");
  ASSERT_EQ(tokens.size(), 6u);
  EXPECT_EQ(tokens[2].kind, TokenKind::Comment);
  EXPECT_EQ(tokens[2].text, " trailing note");
  EXPECT_EQ(tokens[2].line, 1u);
  EXPECT_EQ(tokens[3].kind, TokenKind::Comment);
  EXPECT_EQ(tokens[3].text, " block\nspans ");
  EXPECT_EQ(tokens[4].text, "y");
  EXPECT_EQ(tokens[4].line, 3u);  // block comment advanced the line count
}

TEST(DglintLexer, StringsAreOpaque) {
  const auto tokens = lex("f(\"std::rand() \\\" escaped\");");
  ASSERT_EQ(tokens.size(), 5u);
  EXPECT_EQ(tokens[2].kind, TokenKind::String);
  EXPECT_EQ(tokens[2].text, "std::rand() \\\" escaped");
}

TEST(DglintLexer, RawStrings) {
  const auto tokens = lex("auto s = R\"(line1\n\"quoted\" )\";");
  ASSERT_EQ(tokens.size(), 5u);
  EXPECT_EQ(tokens[3].kind, TokenKind::String);
  EXPECT_EQ(tokens[3].text, "line1\n\"quoted\" ");
  EXPECT_EQ(tokens[4].text, ";");
}

TEST(DglintLexer, RawStringWithDelimiter) {
  const auto tokens = lex("R\"xx(a )\" still inside)xx\"");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].kind, TokenKind::String);
  EXPECT_EQ(tokens[0].text, "a )\" still inside");
}

TEST(DglintLexer, CharLiterals) {
  const auto tokens = lex("char c = '\\n'; char d = ':';");
  ASSERT_EQ(tokens.size(), 10u);
  EXPECT_EQ(tokens[3].kind, TokenKind::CharLiteral);
  EXPECT_EQ(tokens[3].text, "\\n");
  EXPECT_EQ(tokens[8].kind, TokenKind::CharLiteral);
  EXPECT_EQ(tokens[8].text, ":");
}

TEST(DglintLexer, PreprocessorLogicalLines) {
  const auto tokens = lex("#define X \\\n  42\n#pragma   once\nint y;");
  ASSERT_GE(tokens.size(), 2u);
  EXPECT_EQ(tokens[0].kind, TokenKind::Preprocessor);
  EXPECT_EQ(tokens[0].text, "#define X    42");
  EXPECT_EQ(tokens[1].kind, TokenKind::Preprocessor);
  EXPECT_EQ(tokens[1].text, "#pragma   once");
  EXPECT_EQ(tokens[2].text, "int");
  EXPECT_EQ(tokens[2].line, 4u);
}

TEST(DglintLexer, DigitSeparatorsAndExponents) {
  const auto tokens = lex("x = 3'600'000'000; y = 1.5e-9;");
  EXPECT_EQ(tokens[2].kind, TokenKind::Number);
  EXPECT_EQ(tokens[2].text, "3'600'000'000");
  EXPECT_EQ(tokens[6].kind, TokenKind::Number);
  EXPECT_EQ(tokens[6].text, "1.5e-9");
}

TEST(DglintLexer, LineNumbersTrackNewlines) {
  const auto tokens = lex("a\nb\n\nc");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0].line, 1u);
  EXPECT_EQ(tokens[1].line, 2u);
  EXPECT_EQ(tokens[2].line, 4u);
}

TEST(DglintLexer, SplitLines) {
  const auto lines = splitLines("one\r\ntwo\nthree");
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0], "one");
  EXPECT_EQ(lines[1], "two");
  EXPECT_EQ(lines[2], "three");
}

}  // namespace
}  // namespace dg::lint
