// Driver-level tests: directory scanning, baseline round-trip and the
// three output formats, run against a scratch source tree on disk.
#include "dglint.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>

namespace dg::lint {
namespace {

namespace fs = std::filesystem;

class DglintDriver : public ::testing::Test {
 protected:
  DglintDriver() {
    // The pid keeps concurrent ctest shards (one process per test) from
    // sharing -- and tearing down -- each other's scratch tree.
    root_ = fs::temp_directory_path() /
            ("dglint_test_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter()++));
    fs::create_directories(root_ / "src" / "util");
    fs::create_directories(root_ / "src" / "telemetry");
  }
  ~DglintDriver() override {
    std::error_code ec;
    fs::remove_all(root_, ec);
  }

  static int& counter() {
    static int n = 0;
    return n;
  }

  void write(const std::string& rel, const std::string& content) {
    std::ofstream out(root_ / rel, std::ios::binary);
    out << content;
  }

  DriverOptions optionsFor() {
    DriverOptions options;
    options.root = root_.string();
    options.paths = {"src"};
    return options;
  }

  fs::path root_;
};

TEST_F(DglintDriver, WalksTreeDeterministically) {
  write("src/util/a.cpp", "#include <cstdlib>\nint f() { return std::rand(); }\n");
  write("src/telemetry/b.cpp",
        "#include <cstdlib>\nint g() { return std::rand(); }\n");
  write("src/util/note.md", "not scanned\n");

  const LintResult result = runLint(optionsFor());
  ASSERT_EQ(result.findings.size(), 2u);
  EXPECT_EQ(result.filesScanned, 2u);
  // Sorted path order: telemetry before util.
  EXPECT_EQ(result.findings[0].path, "src/telemetry/b.cpp");
  EXPECT_EQ(result.findings[1].path, "src/util/a.cpp");

  const LintResult again = runLint(optionsFor());
  EXPECT_EQ(formatFindings(again, "text"), formatFindings(result, "text"));
}

TEST_F(DglintDriver, BaselineRoundTrip) {
  write("src/util/a.cpp", "#include <cstdlib>\nint f() { return std::rand(); }\n");

  // First run writes the baseline; second run consumes it.
  DriverOptions writeOptions = optionsFor();
  writeOptions.writeBaselinePath = "baseline.txt";
  const LintResult first = runLint(writeOptions);
  ASSERT_EQ(first.findings.size(), 1u);

  DriverOptions readOptions = optionsFor();
  readOptions.baselinePath = "baseline.txt";
  const LintResult second = runLint(readOptions);
  EXPECT_TRUE(second.findings.empty());
  EXPECT_EQ(second.baselined, 1u);
  EXPECT_EQ(second.staleBaseline, 0u);

  // Editing the offending line invalidates its baseline entry: the
  // finding comes back and the entry reports as stale.
  write("src/util/a.cpp",
        "#include <cstdlib>\nint f() { return 1 + std::rand(); }\n");
  const LintResult third = runLint(readOptions);
  EXPECT_EQ(third.findings.size(), 1u);
  EXPECT_EQ(third.staleBaseline, 1u);
}

TEST_F(DglintDriver, CommentsInBaselineFileIgnored) {
  write("src/util/a.cpp", "#include <cstdlib>\nint f() { return std::rand(); }\n");
  write("baseline.txt", "# a comment line\n\n");
  DriverOptions options = optionsFor();
  options.baselinePath = "baseline.txt";
  const LintResult result = runLint(options);
  EXPECT_EQ(result.findings.size(), 1u);
  EXPECT_EQ(result.staleBaseline, 0u);
}

TEST_F(DglintDriver, TextFormat) {
  write("src/util/a.cpp", "#include <cstdlib>\nint f() { return std::rand(); }\n");
  const LintResult result = runLint(optionsFor());
  const std::string text = formatFindings(result, "text");
  EXPECT_NE(text.find("src/util/a.cpp:2: [R1]"), std::string::npos) << text;
}

TEST_F(DglintDriver, JsonFormatEscapesAndCounts) {
  write("src/util/a.cpp", "#include <cstdlib>\nint f() { return std::rand(); }\n");
  const LintResult result = runLint(optionsFor());
  const std::string json = formatFindings(result, "json");
  EXPECT_NE(json.find("\"rule\":\"R1\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"filesScanned\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"line\":2"), std::string::npos) << json;
}

TEST_F(DglintDriver, GithubFormat) {
  write("src/util/a.cpp", "#include <cstdlib>\nint f() { return std::rand(); }\n");
  const LintResult result = runLint(optionsFor());
  const std::string gh = formatFindings(result, "github");
  EXPECT_NE(gh.find("::error file=src/util/a.cpp,line=2,title=dglint R1::"),
            std::string::npos)
      << gh;
}

TEST_F(DglintDriver, CleanTreeIsClean) {
  write("src/util/clean.hpp",
        "#pragma once\nnamespace x {\nconstexpr int kOne = 1;\n}\n");
  const LintResult result = runLint(optionsFor());
  EXPECT_TRUE(result.findings.empty())
      << formatFindings(result, "text");
}

TEST_F(DglintDriver, BuildDirectoriesSkipped) {
  fs::create_directories(root_ / "src" / "build-foo");
  write("src/build-foo/bad.cpp",
        "#include <cstdlib>\nint f() { return std::rand(); }\n");
  const LintResult result = runLint(optionsFor());
  EXPECT_TRUE(result.findings.empty());
}

}  // namespace
}  // namespace dg::lint
