// Tests for the dgcheck semantic pass: fixture-driven positives and
// negatives for R5-R8 (including the cross-file two-hop allocation
// case), directive binding (R0), suppression handling, and the
// incremental cache / baseline driver behavior in a temp repo.
#include "semantic.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#ifdef _WIN32
#include <process.h>
#define DGCHECK_GETPID _getpid
#else
#include <unistd.h>
#define DGCHECK_GETPID getpid
#endif

namespace dg::lint {
namespace {

namespace fs = std::filesystem;

std::string readFixture(const std::string& name) {
  const std::string path = std::string(DGLINT_FIXTURE_DIR) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::size_t countRule(const std::vector<Finding>& findings,
                      const std::string& rule) {
  return static_cast<std::size_t>(std::count_if(
      findings.begin(), findings.end(),
      [&](const Finding& f) { return f.rule == rule; }));
}

std::vector<std::size_t> linesOf(const std::vector<Finding>& findings,
                                 const std::string& rule) {
  std::vector<std::size_t> lines;
  for (const Finding& f : findings) {
    if (f.rule == rule) lines.push_back(f.line);
  }
  std::sort(lines.begin(), lines.end());
  return lines;
}

std::string dump(const SemanticResult& result) {
  std::ostringstream out;
  for (const Finding& f : result.findings) {
    out << f.path << ":" << f.line << " [" << f.rule << "] " << f.message
        << "\n";
  }
  return out.str();
}

// ---- R5: hot-path allocation ----------------------------------------

TEST(DgcheckR5, FlagsEveryAllocationClassInAHotFunction) {
  const auto result = analyzeSemanticSources(
      {{"src/fixture/r5_hot_alloc.cpp", readFixture("r5_hot_alloc.cpp")}});
  // hotAlloc: local vector, push_back-without-reserve, new, malloc.
  EXPECT_EQ(countRule(result.findings, "R5"), 4u) << dump(result);
  EXPECT_EQ(linesOf(result.findings, "R5"),
            (std::vector<std::size_t>{15, 16, 17, 18}));
  EXPECT_EQ(countRule(result.findings, "R0"), 0u) << dump(result);
}

TEST(DgcheckR5, SetupRegionAndReserveSilenceHotAllocations) {
  const auto result = analyzeSemanticSources(
      {{"src/fixture/r5_hot_alloc.cpp", readFixture("r5_hot_alloc.cpp")}});
  // Everything in hotClean (lines 25-34) is sanctioned: nothing may
  // anchor there.
  for (const Finding& f : result.findings) {
    EXPECT_LT(f.line, 25u) << dump(result);
  }
}

TEST(DgcheckR5, CrossFileAllocationTwoHopsAway) {
  const auto result = analyzeSemanticSources(
      {{"src/fixture/r5_cross_entry.cpp", readFixture("r5_cross_entry.cpp")},
       {"src/fixture/r5_cross_leaf.cpp", readFixture("r5_cross_leaf.cpp")}});
  // leafAlloc's vector + push_back, reached hot -> middle -> leaf.
  EXPECT_EQ(countRule(result.findings, "R5"), 2u) << dump(result);
  for (const Finding& f : result.findings) {
    EXPECT_EQ(f.path, "src/fixture/r5_cross_leaf.cpp");
    EXPECT_NE(f.message.find("hotEntry"), std::string::npos) << f.message;
    EXPECT_NE(f.message.find("leafAlloc"), std::string::npos) << f.message;
  }
}

TEST(DgcheckR5, ColdAnnotationStopsTheTraversal) {
  const std::string source = R"cpp(
namespace fixture {
// dgcheck: cold: fixture — amortized path
int coldLeaf(int n) {
  int* p = new int(n);
  const int r = *p;
  delete p;
  return r;
}
// dgcheck: hot
int hotViaCold(int n) { return coldLeaf(n); }
}  // namespace fixture
)cpp";
  const auto result =
      analyzeSemanticSources({{"src/fixture/cold.cpp", source}});
  EXPECT_EQ(countRule(result.findings, "R5"), 0u) << dump(result);
  EXPECT_EQ(countRule(result.findings, "R0"), 0u) << dump(result);
}

TEST(DgcheckR5, TrailingSuppressionConsumesTheFinding) {
  const std::string source = R"cpp(
namespace fixture {
// dgcheck: hot
int hotSuppressed(int n) {
  int* p = new int(n);  // dgcheck: ok(R5): fixture exercises suppression
  const int r = *p;
  delete p;
  return r;
}
}  // namespace fixture
)cpp";
  const auto result =
      analyzeSemanticSources({{"src/fixture/suppress.cpp", source}});
  EXPECT_TRUE(result.findings.empty()) << dump(result);
  EXPECT_EQ(result.suppressed, 1u);
}

// ---- R6: RNG stream discipline --------------------------------------

TEST(DgcheckR6, FlagsLoopAndSiblingStreamsWithoutFork) {
  const auto result = analyzeSemanticSources(
      {{"src/fixture/r6_rng.cpp", readFixture("r6_rng.cpp")}});
  // loopNoFork (line 19: loop without per-iteration fork) and
  // siblingsNoFork (line 25: second callee on the same stream).
  EXPECT_EQ(countRule(result.findings, "R6"), 2u) << dump(result);
  EXPECT_EQ(linesOf(result.findings, "R6"),
            (std::vector<std::size_t>{19, 25}));
}

TEST(DgcheckR6, PerIterationAndPerSiblingForksAreClean) {
  const auto result = analyzeSemanticSources(
      {{"src/fixture/r6_rng.cpp", readFixture("r6_rng.cpp")}});
  // Nothing may anchor in loopForked/siblingsForked (lines 28-41).
  for (const Finding& f : result.findings) {
    EXPECT_LT(f.line, 28u) << dump(result);
  }
}

TEST(DgcheckR6, DeletingTheForkMakesTheLoopFire) {
  // The acceptance shape: take the clean loop from the fixture and
  // delete its fork line — the rule must fire on the now-shared stream.
  std::string source = readFixture("r6_rng.cpp");
  const std::string forkLine = "util::Rng sub = rng.fork();";
  const std::size_t at = source.find(forkLine);
  ASSERT_NE(at, std::string::npos);
  source.erase(at, forkLine.size());
  const std::string drawSub = "draw(sub)";
  const std::size_t use = source.find(drawSub);
  ASSERT_NE(use, std::string::npos);
  source.replace(use, drawSub.size(), "draw(rng)");
  const auto result =
      analyzeSemanticSources({{"src/fixture/r6_rng.cpp", source}});
  EXPECT_EQ(countRule(result.findings, "R6"), 3u) << dump(result);
}

// ---- R7: worker-shared mutable state --------------------------------

TEST(DgcheckR7, FlagsGlobalWritesAndMutableStaticsFromWorkers) {
  const auto result = analyzeSemanticSources(
      {{"src/fixture/r7_worker.cpp", readFixture("r7_worker.cpp")}});
  // workerBad: static local (line 14) + g_counter write (line 16).
  EXPECT_EQ(countRule(result.findings, "R7"), 2u) << dump(result);
  EXPECT_EQ(linesOf(result.findings, "R7"),
            (std::vector<std::size_t>{14, 16}));
}

TEST(DgcheckR7, WorkspaceMutationAndConstStaticsAreClean) {
  const auto result = analyzeSemanticSources(
      {{"src/fixture/r7_worker.cpp", readFixture("r7_worker.cpp")}});
  // Nothing may anchor in workerGood (lines 20-25).
  for (const Finding& f : result.findings) {
    EXPECT_LT(f.line, 20u) << dump(result);
  }
}

TEST(DgcheckR7, NonWorkerCodeMayTouchGlobals) {
  const std::string source = R"cpp(
namespace fixture {
int g_total = 0;
int accumulate(int n) {
  g_total += n;  // not worker-reachable: fine
  return g_total;
}
}  // namespace fixture
)cpp";
  const auto result =
      analyzeSemanticSources({{"src/fixture/not_worker.cpp", source}});
  EXPECT_EQ(countRule(result.findings, "R7"), 0u) << dump(result);
}

// ---- R8: wire-decode bounds -----------------------------------------

TEST(DgcheckR8, FlagsUncheckedLengthAndAcceptsGuardedOne) {
  const auto result = analyzeSemanticSources(
      {{"src/live/r8_wire.cpp", readFixture("r8_wire.cpp")}});
  // decodeBad's resize (line 17); decodeGood is fully guarded.
  EXPECT_EQ(countRule(result.findings, "R8"), 1u) << dump(result);
  EXPECT_EQ(linesOf(result.findings, "R8"),
            (std::vector<std::size_t>{17}));
}

TEST(DgcheckR8, OnlyAppliesUnderSrcLive) {
  const auto result = analyzeSemanticSources(
      {{"src/fixture/r8_wire.cpp", readFixture("r8_wire.cpp")}});
  EXPECT_EQ(countRule(result.findings, "R8"), 0u) << dump(result);
}

// ---- R0: directive binding ------------------------------------------

TEST(DgcheckR0, MalformedAndUnboundDirectivesAreReported) {
  const std::string source = R"cpp(
// dgcheck: hott
namespace fixture {
// dgcheck: hot

int unboundTarget = 3;
int fine(int x) { return x + unboundTarget; }
}  // namespace fixture
)cpp";
  const auto result =
      analyzeSemanticSources({{"src/fixture/r0.cpp", source}});
  // One malformed verb ("hott"), one hot annotation bound to a
  // non-function line.
  EXPECT_EQ(countRule(result.findings, "R0"), 2u) << dump(result);
}

TEST(DgcheckR0, RuleFilterSelectsFamilies) {
  const auto result = analyzeSemanticSources(
      {{"src/fixture/r5_hot_alloc.cpp", readFixture("r5_hot_alloc.cpp")},
       {"src/fixture/r6_rng.cpp", readFixture("r6_rng.cpp")}},
      {"R6"});
  EXPECT_EQ(countRule(result.findings, "R5"), 0u) << dump(result);
  EXPECT_EQ(countRule(result.findings, "R6"), 2u) << dump(result);
}

// ---- Driver: incremental cache + baseline ---------------------------

class DgcheckDriver : public ::testing::Test {
 protected:
  void SetUp() override {
    static int counter = 0;
    root_ = fs::temp_directory_path() /
            ("dgcheck_test_" + std::to_string(DGCHECK_GETPID()) + "_" +
             std::to_string(counter++));
    fs::create_directories(root_ / "src");
  }

  void TearDown() override {
    std::error_code ec;
    fs::remove_all(root_, ec);
  }

  void write(const std::string& rel, const std::string& content) {
    const fs::path path = root_ / rel;
    fs::create_directories(path.parent_path());
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << content;
  }

  SemanticOptions optionsFor() {
    SemanticOptions options;
    options.root = root_.string();
    options.paths = {"src"};
    options.cachePath = (root_ / "dgcheck.cache").string();
    return options;
  }

  fs::path root_;
};

constexpr const char* kHotEntry = R"cpp(
namespace fixture {
int helper(int n);
// dgcheck: hot
int hotEntry(int n) { return helper(n); }
}  // namespace fixture
)cpp";

constexpr const char* kHelperAllocating = R"cpp(
#include <vector>
namespace fixture {
int helper(int n) {
  std::vector<int> buf;
  buf.push_back(n);
  return buf[0];
}
}  // namespace fixture
)cpp";

constexpr const char* kHelperClean = R"cpp(
namespace fixture {
int helper(int n) { return n + 1; }
}  // namespace fixture
)cpp";

TEST_F(DgcheckDriver, WarmRunReusesSummariesAndKeepsFindings) {
  write("src/entry.cpp", kHotEntry);
  write("src/helper.cpp", kHelperAllocating);

  const SemanticResult cold = runSemantic(optionsFor());
  EXPECT_EQ(cold.filesScanned, 2u);
  EXPECT_EQ(cold.filesReused, 0u);
  EXPECT_EQ(countRule(cold.findings, "R5"), 2u) << dump(cold);

  const SemanticResult warm = runSemantic(optionsFor());
  EXPECT_EQ(warm.filesScanned, 2u);
  EXPECT_EQ(warm.filesReused, 2u);
  // Cached summaries must reproduce the cross-file findings exactly.
  EXPECT_EQ(warm.findings, cold.findings) << dump(warm);
}

TEST_F(DgcheckDriver, EditedFileIsResummarizedOthersStayCached) {
  write("src/entry.cpp", kHotEntry);
  write("src/helper.cpp", kHelperAllocating);
  (void)runSemantic(optionsFor());

  write("src/helper.cpp", kHelperClean);
  const SemanticResult after = runSemantic(optionsFor());
  EXPECT_EQ(after.filesScanned, 2u);
  EXPECT_EQ(after.filesReused, 1u);  // entry.cpp untouched
  EXPECT_TRUE(after.findings.empty()) << dump(after);
}

TEST_F(DgcheckDriver, BaselineAbsorbsKnownFindingsAndReportsStale) {
  write("src/entry.cpp", kHotEntry);
  write("src/helper.cpp", kHelperAllocating);

  SemanticOptions writeOptions = optionsFor();
  writeOptions.writeBaselinePath = ".dgcheck-baseline";
  const SemanticResult first = runSemantic(writeOptions);
  // Writing a baseline records findings; it does not consume them.
  EXPECT_EQ(countRule(first.findings, "R5"), 2u) << dump(first);

  SemanticOptions readOptions = optionsFor();
  readOptions.baselinePath = ".dgcheck-baseline";
  const SemanticResult second = runSemantic(readOptions);
  EXPECT_TRUE(second.findings.empty()) << dump(second);
  EXPECT_EQ(second.baselined, 2u);
  EXPECT_EQ(second.staleBaseline, 0u);

  // Fixing the code turns the baseline entries stale, not silent.
  write("src/helper.cpp", kHelperClean);
  const SemanticResult third = runSemantic(readOptions);
  EXPECT_TRUE(third.findings.empty()) << dump(third);
  EXPECT_EQ(third.baselined, 0u);
  EXPECT_EQ(third.staleBaseline, 2u);
}

}  // namespace
}  // namespace dg::lint
