// Fixture-driven tests for the dglint rule engine: each rule has a
// fixture file under tests/tools/fixtures/ exercising its positives and
// negatives; the fixture is analyzed under a synthetic repo-relative
// path so scoping (src/, ordered scope, clock allowlist) is explicit.
#include "dglint.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>

namespace dg::lint {
namespace {

std::string readFixture(const std::string& name) {
  const std::string path = std::string(DGLINT_FIXTURE_DIR) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::vector<std::string> rulesOf(const std::vector<Finding>& findings) {
  std::vector<std::string> rules;
  rules.reserve(findings.size());
  for (const Finding& f : findings) rules.push_back(f.rule);
  return rules;
}

std::size_t countRule(const std::vector<Finding>& findings,
                      const std::string& rule) {
  return static_cast<std::size_t>(std::count_if(
      findings.begin(), findings.end(),
      [&](const Finding& f) { return f.rule == rule; }));
}

TEST(DglintR1, FlagsEveryBannedSourceOnce) {
  const auto result = analyzeSource("src/fixture/r1_banned.cpp",
                                    readFixture("r1_banned.cpp"), {});
  EXPECT_EQ(countRule(result.findings, "R1"), 9u)
      << formatFindings({result.findings}, "text");
  // rand, srand, random_device, 2x time, getenv + 3 clocks.
  EXPECT_EQ(countRule(result.findings, "R2"), 0u);
  EXPECT_EQ(countRule(result.findings, "R3"), 0u);
  EXPECT_EQ(countRule(result.findings, "R4"), 0u);
}

TEST(DglintR1, ClockAllowlistSilencesChronoClocks) {
  DriverOptions options;
  options.clockAllow.push_back("src/fixture/r1_banned.cpp");
  const auto result = analyzeSource("src/fixture/r1_banned.cpp",
                                    readFixture("r1_banned.cpp"), options);
  // The three <chrono> clock findings disappear; calls remain banned.
  EXPECT_EQ(countRule(result.findings, "R1"), 6u);
}

TEST(DglintR1, OutsideLibraryCodeIsIgnored) {
  const auto result = analyzeSource("bench/r1_banned.cpp",
                                    readFixture("r1_banned.cpp"), {});
  EXPECT_EQ(countRule(result.findings, "R1"), 0u);
}

TEST(DglintR2, FlagsUnorderedIterationInOrderedScope) {
  const auto result = analyzeSource("src/telemetry/r2_fixture.cpp",
                                    readFixture("r2_unordered.cpp"), {});
  // direct member, alias type, reference binding — sorted map and the
  // annotated loop stay quiet.
  EXPECT_EQ(countRule(result.findings, "R2"), 3u)
      << formatFindings({result.findings}, "text");
  EXPECT_EQ(result.suppressed, 1u);
}

TEST(DglintR2, OutsideOrderedScopeIsQuiet) {
  const auto result = analyzeSource("src/graph/r2_fixture.cpp",
                                    readFixture("r2_unordered.cpp"), {});
  EXPECT_EQ(countRule(result.findings, "R2"), 0u);
}

TEST(DglintR3, HeaderHygiene) {
  const auto result = analyzeSource("src/fixture/r3_header_bad.hpp",
                                    readFixture("r3_header_bad.hpp"), {});
  const auto rules = rulesOf(result.findings);
  // Missing guard + using namespace + 4 globals (one more suppressed).
  EXPECT_EQ(countRule(result.findings, "R3"), 6u)
      << formatFindings({result.findings}, "text");
  EXPECT_EQ(result.suppressed, 1u);
  // The guard finding anchors to line 1.
  EXPECT_EQ(result.findings.front().line, 1u);
}

TEST(DglintR3, IfndefGuardAccepted) {
  const auto result =
      analyzeSource("src/fixture/r3_header_guarded.hpp",
                    readFixture("r3_header_guarded.hpp"), {});
  EXPECT_TRUE(result.findings.empty())
      << formatFindings({result.findings}, "text");
}

TEST(DglintR3, CppFilesSkipGuardAndUsingChecks) {
  // Same content under a .cpp path: guard + using-namespace checks are
  // header-only; the globals still fire.
  const auto result = analyzeSource("src/fixture/r3_header_bad.cpp",
                                    readFixture("r3_header_bad.hpp"), {});
  EXPECT_EQ(countRule(result.findings, "R3"), 4u)
      << formatFindings({result.findings}, "text");
}

TEST(DglintR4, FlagsFloatAccumulationInHashOrder) {
  const auto result = analyzeSource("src/telemetry/r4_fixture.cpp",
                                    readFixture("r4_float_merge.cpp"), {});
  EXPECT_EQ(countRule(result.findings, "R4"), 1u)
      << formatFindings({result.findings}, "text");
  // Integral accumulator, sorted map and the annotated min-fold are ok;
  // three ordered-ok loop annotations + one fp-merge-ok suppress.
  EXPECT_EQ(countRule(result.findings, "R2"), 0u);
  EXPECT_EQ(result.suppressed, 4u);
}

TEST(DglintClean, IdiomaticCodeHasZeroFindings) {
  const auto result = analyzeSource("src/telemetry/clean.cpp",
                                    readFixture("clean.cpp"), {});
  EXPECT_TRUE(result.findings.empty())
      << formatFindings({result.findings}, "text");
  EXPECT_EQ(result.suppressed, 0u);
}

TEST(DglintSuppressions, FormsAndFailures) {
  const auto result = analyzeSource("src/fixture/suppressions.cpp",
                                    readFixture("suppressions.cpp"), {});
  // Two good suppressions consume two R1s; the malformed ones leave
  // their R1s active and add R0s.
  EXPECT_EQ(result.suppressed, 2u);
  EXPECT_EQ(countRule(result.findings, "R1"), 3u)
      << formatFindings({result.findings}, "text");
  EXPECT_EQ(countRule(result.findings, "R0"), 3u);
}

TEST(DglintSuppressions, ContinuationLineSuppressesTheDirectiveFinding) {
  const auto result = analyzeSource("src/fixture/suppress_preproc.cpp",
                                    readFixture("suppress_preproc.cpp"), {});
  // R1 findings for macro replacement text anchor at the #define's
  // first line; a directive on any physical continuation line must
  // reach it. FIXTURE_STAMP is suppressed, FIXTURE_STAMP_BAD is not.
  EXPECT_EQ(result.suppressed, 1u);
  EXPECT_EQ(countRule(result.findings, "R1"), 1u)
      << formatFindings({result.findings}, "text");
  ASSERT_FALSE(result.findings.empty());
  EXPECT_EQ(result.findings[0].line, 10u);
}

TEST(DglintSuppressions, RawStringsNeitherEmitNorSwallowDirectives) {
  const auto result = analyzeSource("src/fixture/suppress_rawstring.cpp",
                                    readFixture("suppress_rawstring.cpp"), {});
  // The ok(R1) inside raw-string content is content: bad() still
  // fires. The real trailing directive on the raw string's closing
  // line consumes good()'s finding.
  EXPECT_EQ(result.suppressed, 1u);
  EXPECT_EQ(countRule(result.findings, "R1"), 1u)
      << formatFindings({result.findings}, "text");
  ASSERT_FALSE(result.findings.empty());
  EXPECT_EQ(result.findings[0].line, 14u);
}

TEST(DglintSuppressions, RulesFilterSelectsSubset) {
  DriverOptions options;
  options.rules = {"R1"};
  const auto result = analyzeSource("src/fixture/suppressions.cpp",
                                    readFixture("suppressions.cpp"), options);
  EXPECT_EQ(countRule(result.findings, "R0"), 0u);
  EXPECT_EQ(countRule(result.findings, "R1"), 3u);
}

}  // namespace
}  // namespace dg::lint
