// R5 cross-file fixture, entry half: the hot function is here, the
// allocation it reaches is two call-graph hops away in
// r5_cross_leaf.cpp. Exercises the cross-translation-unit link phase.
namespace fixture {

int middleHelper(int n);

// dgcheck: hot
int hotEntry(int n) { return middleHelper(n); }

}  // namespace fixture
