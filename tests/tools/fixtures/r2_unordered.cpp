// dglint fixture: R2 unordered-container iteration in export-feeding
// files. Scanned with the synthetic path "src/telemetry/r2_fixture.cpp"
// (inside the default ordered scope) and again with a path outside the
// scope, where nothing may fire.
#include <map>
#include <string>
#include <unordered_map>
#include <unordered_set>

namespace fixture {

using FlowTable = std::unordered_map<int, double>;

struct Exporter {
  std::unordered_map<std::string, int> samples;
  std::unordered_set<int> seen;
  FlowTable flows;  // via alias
  std::map<std::string, int> sorted;

  int direct() const {
    int total = 0;
    for (const auto& [name, value] : samples) {  // FINDING: direct member
      total += value;
    }
    return total;
  }

  int viaAlias() const {
    int total = 0;
    for (const auto& [flow, weight] : flows) {  // FINDING: alias type
      total += static_cast<int>(weight);
    }
    return total;
  }

  int viaReference() const {
    const auto& view = seen;
    int total = 0;
    for (const int id : view) {  // FINDING: reference binding
      total += id;
    }
    return total;
  }

  int orderedIsFine() const {
    int total = 0;
    for (const auto& [name, value] : sorted) {  // no finding: std::map
      total += value;
    }
    return total;
  }

  int annotated() const {
    int count = 0;
    // dglint: ordered-ok: only counts elements; order cannot reach output
    for (const int id : seen) {
      count += 1;
      (void)id;
    }
    return count;
  }
};

}  // namespace fixture
