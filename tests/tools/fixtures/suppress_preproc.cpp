// Regression fixture: a suppression on a physical continuation line of
// a multi-line #define applies to the directive itself, because R1
// findings for macro replacement text anchor at the directive's first
// line.
#include <ctime>

#define FIXTURE_STAMP() \
  time(nullptr)  // dglint: ok(R1): frozen fixture timestamp, never reaches results

#define FIXTURE_STAMP_BAD() \
  time(nullptr)

long stamp() { return FIXTURE_STAMP() + FIXTURE_STAMP_BAD(); }
