// dglint fixture: R4 float accumulation inside unordered-container
// loops. Scanned with the synthetic path "src/telemetry/r4_fixture.cpp"
// (in the merge-path scope). Every unordered loop here also trips R2;
// the R4 findings are the `+=` lines.
#include <map>
#include <unordered_map>

namespace fixture {

struct Merger {
  std::unordered_map<int, double> perJob;
  std::map<int, double> perJobSorted;

  double mergeHashOrder() const {
    double sum = 0.0;
    // dglint: ordered-ok: loop flagged separately; this tests R4 alone
    for (const auto& [job, value] : perJob) {
      sum += value;  // FINDING: double += in hash order
    }
    return sum;
  }

  long countHashOrder() const {
    long count = 0;
    // dglint: ordered-ok: integer count is order-independent
    for (const auto& [job, value] : perJob) {
      count += 1;  // no finding: integral accumulator
      (void)value;
    }
    return count;
  }

  double mergeSortedOrder() const {
    double sum = 0.0;
    for (const auto& [job, value] : perJobSorted) {
      sum += value;  // no finding: std::map iterates in key order
    }
    return sum;
  }

  double annotated() const {
    double minimum = 0.0;
    // dglint: ordered-ok: min is order-independent
    for (const auto& [job, value] : perJob) {
      // dglint: fp-merge-ok: min() is commutative and associative
      minimum += value < minimum ? value - minimum : 0.0;
    }
    return minimum;
  }
};

}  // namespace fixture
