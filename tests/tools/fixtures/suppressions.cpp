// dglint fixture: suppression-comment handling, scanned with the
// synthetic path "src/fixture/suppressions.cpp".
#include <cstdlib>

namespace fixture {

void cases() {
  int a = std::rand();  // dglint: ok(R1): fixture exercising same-line form
  // dglint: ok(R1): fixture exercising next-line form
  int b = std::rand();
  int c = std::rand();  // dglint: ok(R1):
  // ^ FINDING (R0): missing justification, and the R1 still fires
  int d = std::rand();  // dglint: ok(R9): no such rule
  // ^ FINDING (R0): unknown rule, and the R1 still fires
  // dglint: frobnicate the widgets
  // ^ FINDING (R0): unrecognized directive
  int e = std::rand();  // FINDING (R1): plain, unsuppressed
  (void)a; (void)b; (void)c; (void)d; (void)e;
}

}  // namespace fixture
