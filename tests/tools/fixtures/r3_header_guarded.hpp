// dglint fixture: a classic #ifndef/#define include guard satisfies R3
// just as well as #pragma once.
#ifndef DG_TESTS_TOOLS_FIXTURES_R3_HEADER_GUARDED_HPP
#define DG_TESTS_TOOLS_FIXTURES_R3_HEADER_GUARDED_HPP

namespace fixture {

constexpr int kGuarded = 1;

}  // namespace fixture

#endif  // DG_TESTS_TOOLS_FIXTURES_R3_HEADER_GUARDED_HPP
