// R5 fixture: zero-alloc hot paths. hotAlloc trips every allocation
// class dgcheck recognizes; hotClean shows the sanctioned escape
// hatches (setup region, reserve-before-push, workspace reuse).
#include <cstdlib>
#include <vector>

namespace fixture {

struct Workspace {
  std::vector<int> scratch;
};

// dgcheck: hot
int hotAlloc(Workspace& ws) {
  std::vector<int> locals;  // local allocating container
  locals.push_back(1);      // push_back without reserve
  int* raw = new int(3);    // operator new
  void* mem = std::malloc(8);
  std::free(mem);
  const int r = *raw + locals[0] + static_cast<int>(ws.scratch.size());
  delete raw;
  return r;
}

// dgcheck: hot
int hotClean(Workspace& ws) {
  // dgcheck: setup begin
  std::vector<int> table;
  table.push_back(1);
  // dgcheck: setup end
  ws.scratch.reserve(16);
  ws.scratch.push_back(2);  // reserve() in the same function
  return ws.scratch.back() + table[0];
}

}  // namespace fixture
