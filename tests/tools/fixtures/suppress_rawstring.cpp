// Regression fixture: raw strings and suppressions interact in two
// ways that must both hold. (1) Directive-looking text *inside* a raw
// string is content, not a suppression -- bad() below must still fire.
// (2) A real trailing directive on a line a raw string also occupies
// targets its own line, not the next one.
#include <cstdlib>

namespace fixture {

const char* kDoc = R"doc(
// dglint: ok(R1): this is raw-string CONTENT, not a directive
)doc";

int bad() { return std::rand(); }

int good() {
  const char* page = R"x(
multi-line raw content
)x"; return std::rand();  // dglint: ok(R1): fixture exercises a trailing directive on the raw string's closing line
  (void)page;
}

}  // namespace fixture
