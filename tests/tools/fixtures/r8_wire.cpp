// R8 fixture: wire-decode bounds. Analyzed under a synthetic
// src/live/ path (the rule is scoped to live wire code). decodeBad
// indexes with an unchecked length field; decodeGood guards it first,
// mirroring the Cursor idiom in src/live/wire.cpp.
#include <cstdint>
#include <vector>

namespace fixture {

struct Cursor {
  std::uint32_t u32();
  bool ok() const;
};

int decodeBad(Cursor& cur, std::vector<int>& out) {
  const std::uint32_t count = cur.u32();
  out.resize(count);  // BAD: unchecked wire length sizes a buffer
  int acc = 0;
  for (std::uint32_t i = 0; i < count; ++i) acc += out[i];
  return acc;
}

int decodeGood(Cursor& cur, std::vector<int>& out,
               std::uint32_t maxCount) {
  const std::uint32_t count = cur.u32();
  if (count > maxCount) return -1;  // bounds check guards every use
  out.resize(count);
  int acc = 0;
  for (std::uint32_t i = 0; i < count; ++i) acc += out[i];
  return acc;
}

}  // namespace fixture
