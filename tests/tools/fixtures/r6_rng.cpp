// R6 fixture: RNG stream discipline. loopNoFork and siblingsNoFork are
// the two violation shapes (same stream into loop iterations, same
// stream into two callees); loopForked and siblingsForked are the
// sanctioned fixes. Deleting a fork() from the *Forked functions must
// make the rule fire -- that is the acceptance shape for the MC
// sampler regression.
namespace util {
class Rng;
}

namespace fixture {

double draw(util::Rng& rng);
double consume(util::Rng& rng);

double loopNoFork(util::Rng& rng, int n) {
  double acc = 0.0;
  for (int i = 0; i < n; ++i) {
    acc += draw(rng);  // BAD: same stream every iteration
  }
  return acc;
}

double siblingsNoFork(util::Rng& rng) {
  return draw(rng) + consume(rng);  // BAD: two callees, one stream
}

double loopForked(util::Rng& rng, int n) {
  double acc = 0.0;
  for (int i = 0; i < n; ++i) {
    util::Rng sub = rng.fork();  // fresh stream per iteration
    acc += draw(sub);
  }
  return acc;
}

double siblingsForked(util::Rng& rng) {
  util::Rng a = rng.fork();
  util::Rng b = rng.fork();
  return draw(a) + consume(b);
}

}  // namespace fixture
