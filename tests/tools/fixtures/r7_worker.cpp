// R7 fixture: worker-shared mutable state. workerBad writes a
// file-scope global and declares a mutable local static; workerGood
// confines all mutation to its per-task workspace.
namespace fixture {

int g_counter = 0;  // mutable file-scope global

struct Workspace {
  int scratch = 0;
};

// dgcheck: worker
int workerBad(Workspace& ws, int n) {
  static int calls = 0;  // BAD: shared across workers
  ++calls;
  g_counter += n;  // BAD: write to file-scope mutable state
  return ws.scratch + calls;
}

// dgcheck: worker
int workerGood(Workspace& ws, int n) {
  static const int kBias = 7;  // immutable: fine
  ws.scratch += n;             // per-task workspace: fine
  return ws.scratch + kBias;
}

}  // namespace fixture
