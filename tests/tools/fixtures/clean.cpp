// dglint fixture: idiomatic project code that must produce zero
// findings under every rule, scanned with the synthetic path
// "src/telemetry/clean.cpp" (the strictest scope).
#include <map>
#include <string>
#include <vector>

namespace fixture {

constexpr int kSamples = 100;
const std::string kName = "clean";

struct Rng {
  unsigned long state = 1;
  double uniform() {
    state = state * 6364136223846793005UL + 1442695040888963407UL;
    return static_cast<double>(state >> 11) * 0x1.0p-53;
  }
};

struct Report {
  std::map<std::string, double> samples;  // ordered by design

  double total() const {
    double sum = 0.0;
    for (const auto& [name, value] : samples) {
      sum += value;  // ordered container: deterministic order
    }
    return sum;
  }
};

/// Seeded randomness via the project Rng idiom: fine under R1.
double simulate(unsigned long seed) {
  Rng rng{seed};
  double acc = 0.0;
  for (int i = 0; i < kSamples; ++i) acc += rng.uniform();
  return acc;
}

}  // namespace fixture
