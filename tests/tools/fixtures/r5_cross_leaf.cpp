// R5 cross-file fixture, leaf half: middleHelper forwards to
// leafAlloc, which allocates. The finding must anchor here while the
// traversal path names hotEntry from r5_cross_entry.cpp.
#include <vector>

namespace fixture {

int leafAlloc(int n) {
  std::vector<int> buf;
  buf.push_back(n);
  return buf[0];
}

int middleHelper(int n) { return leafAlloc(n); }

}  // namespace fixture
