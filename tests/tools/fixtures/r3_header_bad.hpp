// dglint fixture: R3 header-hygiene violations (no include guard, a
// `using namespace`, and non-const namespace-scope globals). Scanned
// with the synthetic path "src/fixture/r3_header_bad.hpp".
#include <string>
#include <vector>

using namespace std;  // FINDING: using namespace in header

namespace fixture {

int callCount = 0;                   // FINDING: non-const global
static double lastValue = 0.0;       // FINDING: static non-const global
std::vector<int> cache{1, 2, 3};     // FINDING: brace-init global
std::string label;                   // FINDING: plain definition

const int kLimit = 16;               // ok: const
constexpr double kScale = 1.5;       // ok: constexpr
inline constexpr int kWidth = 80;    // ok: inline constexpr

int add(int a, int b);               // ok: function declaration
inline int twice(int x) { return 2 * x; }  // ok: function definition

struct Config {
  int retries = 3;       // ok: member with default, not a global
  double timeout = 1.0;  // ok: member
};

enum class Mode { Fast, Slow };  // ok: type definition

// dglint: ok(R3): registry intentionally process-wide, guarded by init order
int annotatedGlobal = 7;

}  // namespace fixture
