// dglint fixture: R1 banned nondeterminism sources. Scanned by the
// rules test with the synthetic path "src/fixture/r1_banned.cpp".
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

namespace fixture {

void bannedCalls() {
  int a = std::rand();              // FINDING: std::rand
  std::srand(42);                   // FINDING: srand
  std::random_device rd;            // FINDING: random_device
  auto t1 = std::time(nullptr);     // FINDING: time()
  auto t2 = time(nullptr);          // FINDING: time(), unqualified
  const char* home = std::getenv("HOME");  // FINDING: getenv
  (void)a; (void)rd; (void)t1; (void)t2; (void)home;
}

void bannedClocks() {
  auto n1 = std::chrono::system_clock::now();           // FINDING
  auto n2 = std::chrono::steady_clock::now();           // FINDING
  auto n3 = std::chrono::high_resolution_clock::now();  // FINDING
  (void)n1; (void)n2; (void)n3;
}

struct Sim {
  long time() const { return 0; }
  long clock() const { return 0; }
};

void negatives(const Sim& sim) {
  long t = sim.time();      // member call: not libc time()
  long c = sim.clock();     // member call: not libc clock()
  long q = myns::time(3);   // qualified non-std: allowed
  long timer = 0;           // identifier containing "time": allowed
  (void)t; (void)c; (void)q; (void)timer;
  const char* s = "std::rand() in a string literal is fine";
  (void)s;
  // std::rand() in a comment is fine too.
}

}  // namespace fixture
