// Property-based tests for the graph/ algorithm layer (see
// tests/proptest.hpp): randomized graphs, >= 200 cases per property.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>
#include <vector>

#include "graph/disjoint_paths.hpp"
#include "graph/graph.hpp"
#include "graph/k_shortest.hpp"
#include "graph/shortest_path.hpp"
#include "proptest.hpp"
#include "util/rng.hpp"

namespace dg::graph {
namespace {

// A random-graph case is kept as a construction recipe so the shrinker
// can drop links one at a time and rebuild (dropping may disconnect the
// graph, which the properties must tolerate anyway).
struct GraphCase {
  struct Link {
    NodeId a = 0;
    NodeId b = 0;
    util::SimTime latency = 0;
  };
  std::size_t nodes = 2;
  std::vector<Link> links;  ///< each becomes an addBidirectional pair
  NodeId src = 0;
  NodeId dst = 1;

  Graph build() const {
    Graph g;
    g.addNodes(nodes);
    for (const Link& link : links) {
      g.addBidirectional(link.a, link.b, link.latency);
    }
    return g;
  }

  std::string describe() const {
    std::ostringstream out;
    out << "  nodes=" << nodes << " src=" << src << " dst=" << dst << "\n";
    for (const Link& link : links) {
      out << "  link " << link.a << " <-> " << link.b
          << " latency=" << link.latency << "us\n";
    }
    return out.str();
  }
};

GraphCase genGraphCase(util::Rng& rng) {
  GraphCase c;
  c.nodes = static_cast<std::size_t>(2 + rng.uniformInt(std::uint64_t{9}));
  // Random spanning tree first (every node reaches node 0), then extra
  // links for alternative routes; duplicates allowed (multigraph).
  for (NodeId n = 1; n < c.nodes; ++n) {
    const auto parent = static_cast<NodeId>(rng.uniformInt(std::uint64_t{n}));
    c.links.push_back({parent, n,
                       util::milliseconds(1 + rng.uniformInt(std::int64_t{1},
                                                             std::int64_t{60}))});
  }
  const auto extras = rng.uniformInt(std::uint64_t{2 * c.nodes});
  for (std::uint64_t i = 0; i < extras; ++i) {
    const auto a = static_cast<NodeId>(rng.uniformInt(c.nodes));
    auto b = static_cast<NodeId>(rng.uniformInt(c.nodes));
    if (a == b) b = (b + 1) % static_cast<NodeId>(c.nodes);
    c.links.push_back({a, b,
                       util::milliseconds(1 + rng.uniformInt(std::int64_t{1},
                                                             std::int64_t{60}))});
  }
  c.src = static_cast<NodeId>(rng.uniformInt(c.nodes));
  c.dst = static_cast<NodeId>(rng.uniformInt(c.nodes - 1));
  if (c.dst >= c.src) ++c.dst;
  return c;
}

std::vector<GraphCase> shrinkGraphCase(const GraphCase& c) {
  std::vector<GraphCase> out;
  // Drop one link at a time, latest first (extras go before the
  // spanning tree, keeping candidates connected for longer).
  for (std::size_t i = c.links.size(); i-- > 0;) {
    GraphCase candidate = c;
    candidate.links.erase(candidate.links.begin() +
                          static_cast<std::ptrdiff_t>(i));
    out.push_back(std::move(candidate));
  }
  return out;
}

std::string describeCase(const GraphCase& c) { return c.describe(); }

bool isSimple(const Graph& g, NodeId src, const Path& path) {
  const std::vector<NodeId> nodes = pathNodes(g, src, path);
  const std::set<NodeId> unique(nodes.begin(), nodes.end());
  return unique.size() == nodes.size();
}

TEST(GraphProperties, KShortestPathsSortedAndSimple) {
  test::prop::forAll(
      "k shortest paths are valid, simple, distinct and latency-sorted",
      genGraphCase,
      [](const GraphCase& c) {
        const Graph g = c.build();
        const auto weights = g.baseLatencies();
        const auto paths = kShortestPaths(g, c.src, c.dst, weights, 5);
        std::set<Path> unique;
        util::SimTime previous = 0;
        for (std::size_t i = 0; i < paths.size(); ++i) {
          if (!isValidPath(g, c.src, c.dst, paths[i])) {
            return test::prop::fail("path " + std::to_string(i) +
                                    " is not a valid src->dst path");
          }
          if (!isSimple(g, c.src, paths[i])) {
            return test::prop::fail("path " + std::to_string(i) +
                                    " revisits a node");
          }
          const util::SimTime latency = pathLatency(g, paths[i], weights);
          if (i > 0 && latency < previous) {
            return test::prop::fail("latency order violated at path " +
                                    std::to_string(i));
          }
          previous = latency;
          if (!unique.insert(paths[i]).second) {
            return test::prop::fail("duplicate path at index " +
                                    std::to_string(i));
          }
        }
        // The first path, when any exists, must be a shortest path.
        const PathResult best = shortestPath(g, c.src, c.dst, weights);
        if (best.found != !paths.empty()) {
          return test::prop::fail("kShortestPaths and shortestPath disagree "
                                  "about reachability");
        }
        if (best.found &&
            pathLatency(g, paths[0], weights) != best.distance) {
          return test::prop::fail("first of k paths is not a shortest path");
        }
        return test::prop::pass();
      },
      describeCase, shrinkGraphCase);
}

TEST(GraphProperties, DisjointPathsShareNoInteriorNodeOrEdge) {
  test::prop::forAll(
      "node-disjoint paths share no interior node; edge-disjoint share no "
      "edge",
      genGraphCase,
      [](const GraphCase& c) {
        const Graph g = c.build();
        const auto weights = g.baseLatencies();

        const DisjointPathsResult nd =
            nodeDisjointPaths(g, c.src, c.dst, weights, 3);
        for (std::size_t i = 0; i < nd.paths.size(); ++i) {
          if (!isValidPath(g, c.src, c.dst, nd.paths[i])) {
            return test::prop::fail("node-disjoint path " +
                                    std::to_string(i) + " invalid");
          }
          for (std::size_t j = i + 1; j < nd.paths.size(); ++j) {
            if (pathsShareInteriorNode(g, c.src, c.dst, nd.paths[i],
                                       nd.paths[j])) {
              return test::prop::fail(
                  "node-disjoint paths " + std::to_string(i) + " and " +
                  std::to_string(j) + " share an interior node");
            }
          }
        }

        const DisjointPathsResult ed =
            edgeDisjointPaths(g, c.src, c.dst, weights, 3);
        std::set<EdgeId> used;
        for (std::size_t i = 0; i < ed.paths.size(); ++i) {
          if (!isValidPath(g, c.src, c.dst, ed.paths[i])) {
            return test::prop::fail("edge-disjoint path " +
                                    std::to_string(i) + " invalid");
          }
          for (const EdgeId edge : ed.paths[i]) {
            if (!used.insert(edge).second) {
              return test::prop::fail("edge " + std::to_string(edge) +
                                      " used by two edge-disjoint paths");
            }
          }
        }

        // Node-disjointness implies edge-disjointness, so the
        // edge-disjoint optimum can never find fewer paths.
        if (ed.paths.size() < nd.paths.size()) {
          return test::prop::fail("fewer edge-disjoint than node-disjoint "
                                  "paths");
        }
        return test::prop::pass();
      },
      describeCase, shrinkGraphCase);
}

TEST(GraphProperties, DijkstraDistanceEqualsPathLatency) {
  test::prop::forAll(
      "Dijkstra's distance equals the sum of edge latencies on the "
      "returned path",
      genGraphCase,
      [](const GraphCase& c) {
        const Graph g = c.build();
        const auto weights = g.baseLatencies();
        const PathResult result = shortestPath(g, c.src, c.dst, weights);
        const auto distances = dijkstraDistances(g, c.src, weights);
        if (!result.found) {
          if (distances[c.dst] != util::kNever) {
            return test::prop::fail("shortestPath found nothing but "
                                    "dijkstraDistances disagrees");
          }
          return test::prop::pass();  // generator can disconnect via shrink
        }
        if (!isValidPath(g, c.src, c.dst, result.edges)) {
          return test::prop::fail("returned path is not a valid src->dst "
                                  "path");
        }
        if (pathLatency(g, result.edges, weights) != result.distance) {
          return test::prop::fail("distance != sum of edge latencies along "
                                  "the returned path");
        }
        if (distances[c.dst] != result.distance) {
          return test::prop::fail("single-pair and single-source distances "
                                  "disagree");
        }
        // No edge may offer a relaxation: distances are a fixed point.
        for (EdgeId e = 0; e < g.edgeCount(); ++e) {
          const Edge& edge = g.edge(e);
          if (distances[edge.from] == util::kNever) continue;
          if (distances[edge.from] + weights[e] < distances[edge.to]) {
            return test::prop::fail("edge " + std::to_string(e) +
                                    " relaxes the distance vector");
          }
        }
        return test::prop::pass();
      },
      describeCase, shrinkGraphCase);
}

}  // namespace
}  // namespace dg::graph
