#include "graph/dissemination_graph.hpp"

#include <gtest/gtest.h>

#include "graph/disjoint_paths.hpp"
#include "test_support.hpp"
#include "trace/topology.hpp"

namespace dg::graph {
namespace {

TEST(DisseminationGraph, EmptyGraphConnectsNothing) {
  test::Diamond d;
  DisseminationGraph dg(d.g, d.s, d.d);
  EXPECT_EQ(dg.edgeCount(), 0u);
  EXPECT_FALSE(dg.connectsFlow());
  EXPECT_EQ(dg.latencyToDestination(d.g.baseLatencies()), util::kNever);
}

TEST(DisseminationGraph, AddEdgeIdempotent) {
  test::Diamond d;
  DisseminationGraph dg(d.g, d.s, d.d);
  dg.addEdge(d.sa);
  dg.addEdge(d.sa);
  EXPECT_EQ(dg.edgeCount(), 1u);
  EXPECT_TRUE(dg.contains(d.sa));
  EXPECT_FALSE(dg.contains(d.ad));
}

TEST(DisseminationGraph, SinglePathSemantics) {
  test::Diamond d;
  const auto dg = singlePathGraph(d.g, d.s, d.d, Path{d.sa, d.ad});
  EXPECT_TRUE(dg.connectsFlow());
  const auto weights = d.g.baseLatencies();
  EXPECT_EQ(dg.latencyToDestination(weights), util::milliseconds(20));
  EXPECT_EQ(dg.cost(), 2);
  EXPECT_TRUE(dg.meetsDeadline(weights, util::milliseconds(20)));
  EXPECT_FALSE(dg.meetsDeadline(weights, util::milliseconds(19)));
}

TEST(DisseminationGraph, TwoPathCostIsSumOfLengths) {
  test::Diamond d;
  const std::vector<Path> paths{{d.sa, d.ad}, {d.sb, d.bd}};
  const auto dg = multiPathGraph(d.g, d.s, d.d, paths);
  EXPECT_EQ(dg.cost(), 4);
  EXPECT_EQ(dg.edgeCount(), 4u);
}

TEST(DisseminationGraph, ReachableNodes) {
  test::Diamond d;
  const auto dg = singlePathGraph(d.g, d.s, d.d, Path{d.sa, d.ad});
  const auto nodes = dg.reachableNodes();
  ASSERT_EQ(nodes.size(), 3u);
  EXPECT_EQ(nodes[0], d.s);
}

TEST(DisseminationGraph, EarliestArrivalUsesBestRoute) {
  test::Diamond d;
  DisseminationGraph dg(d.g, d.s, d.d);
  dg.addPath(Path{d.sa, d.ad});
  dg.addPath(Path{d.sb, d.bd});
  auto weights = d.g.baseLatencies();
  weights[d.ad] = util::kNever;  // fast route cut mid-way
  EXPECT_EQ(dg.latencyToDestination(weights), util::milliseconds(30));
}

TEST(DisseminationGraph, FloodingCoversAllEdgesWithNoEchoCost) {
  test::Diamond d;
  const auto dg = floodingGraph(d.g, d.s, d.d);
  EXPECT_EQ(dg.edgeCount(), d.g.edgeCount());
  // Cost: every node transmits on member out-edges except back to its
  // first-arrival predecessor; the source uses all its out-edges.
  // Diamond: S:2, A:(3-1)=2, B:(3-1)=2, D:(2-1)=1 -> 7.
  EXPECT_EQ(dg.cost(), 7);
}

TEST(DisseminationGraph, UniteMergesEdges) {
  test::Diamond d;
  auto a = singlePathGraph(d.g, d.s, d.d, Path{d.sa, d.ad});
  const auto b = singlePathGraph(d.g, d.s, d.d, Path{d.sb, d.bd});
  a.unite(b);
  EXPECT_EQ(a.edgeCount(), 4u);
  EXPECT_TRUE(a.contains(d.bd));
}

TEST(DisseminationGraph, EqualityComparesEdgesAndFlow) {
  test::Diamond d;
  const auto a = singlePathGraph(d.g, d.s, d.d, Path{d.sa, d.ad});
  const auto b = singlePathGraph(d.g, d.s, d.d, Path{d.sa, d.ad});
  const auto c = singlePathGraph(d.g, d.s, d.d, Path{d.sb, d.bd});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(DisseminationGraph, PruneRemovesDeadlineInfeasibleEdges) {
  test::Diamond d;
  auto dg = floodingGraph(d.g, d.s, d.d);
  const auto weights = d.g.baseLatencies();
  // Deadline 20ms: only S-A-D can deliver. Everything not on a route
  // that meets the deadline must go.
  const int removed = dg.pruneDeadlineInfeasible(weights,
                                                 util::milliseconds(20));
  EXPECT_GT(removed, 0);
  EXPECT_TRUE(dg.connectsFlow());
  EXPECT_EQ(dg.latencyToDestination(weights), util::milliseconds(20));
  for (const EdgeId e : dg.edges()) {
    // Each surviving edge lies on some deadline-feasible route.
    const auto arrival = dg.earliestArrival(weights);
    EXPECT_NE(arrival[d.g.edge(e).from], util::kNever);
  }
  EXPECT_EQ(dg.edgeCount(), 2u);  // exactly S->A, A->D
  EXPECT_TRUE(dg.contains(d.sa));
  EXPECT_TRUE(dg.contains(d.ad));
}

TEST(DisseminationGraph, PruneKeepsEverythingWithLooseDeadline) {
  const auto topology = trace::Topology::ltn12();
  const auto& g = topology.graph();
  auto dg = floodingGraph(g, topology.at("NYC"), topology.at("SJC"));
  const auto before = dg.edgeCount();
  dg.pruneDeadlineInfeasible(g.baseLatencies(), util::seconds(10));
  EXPECT_EQ(dg.edgeCount(), before);
}

TEST(DisseminationGraph, ToDotMentionsEndpointsAndEdges) {
  test::Diamond d;
  const auto dg = singlePathGraph(d.g, d.s, d.d, Path{d.sa, d.ad});
  const auto names = std::vector<std::string>{"S", "A", "B", "D"};
  const std::string dot =
      dg.toDot([&](NodeId n) { return names[n]; });
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("\"S\" -> \"A\""), std::string::npos);
  EXPECT_NE(dot.find("doublecircle"), std::string::npos);
  EXPECT_NE(dot.find("doubleoctagon"), std::string::npos);
}

TEST(DisseminationGraph, DisconnectedDestinationReachesPartway) {
  // S->A only: the walk reaches A but never D, so the graph neither
  // connects the flow nor reports a finite latency, yet reachableNodes
  // still reports the partial frontier in ascending order.
  test::Diamond d;
  DisseminationGraph dg(d.g, d.s, d.d);
  dg.addEdge(d.sa);
  EXPECT_FALSE(dg.connectsFlow());
  EXPECT_EQ(dg.latencyToDestination(d.g.baseLatencies()), util::kNever);
  const auto nodes = dg.reachableNodes();
  ASSERT_EQ(nodes.size(), 2u);
  EXPECT_EQ(nodes[0], d.s);
  EXPECT_EQ(nodes[1], d.a);
}

TEST(DisseminationGraph, SourceOnlyGraphReachesJustTheSource) {
  // Edges exist but none leave the source: reachability is {source},
  // and the flow is unconnected even though edgeCount() > 0.
  test::Diamond d;
  DisseminationGraph dg(d.g, d.s, d.d);
  dg.addEdge(d.ad);  // downstream edge the source can never reach
  EXPECT_EQ(dg.edgeCount(), 1u);
  EXPECT_FALSE(dg.connectsFlow());
  const auto nodes = dg.reachableNodes();
  ASSERT_EQ(nodes.size(), 1u);
  EXPECT_EQ(nodes[0], d.s);
}

TEST(DisseminationGraph, UniteWithOverlappingEdgeSetsDeduplicates) {
  // The two operands share S->A; the union must count it once, and the
  // union of two disconnected halves connects the flow end to end.
  test::Diamond d;
  DisseminationGraph upper(d.g, d.s, d.d);
  upper.addEdge(d.sa);
  DisseminationGraph lower(d.g, d.s, d.d);
  lower.addEdge(d.sa);
  lower.addEdge(d.ad);
  EXPECT_FALSE(upper.connectsFlow());
  upper.unite(lower);
  EXPECT_EQ(upper.edgeCount(), 2u);
  EXPECT_TRUE(upper.connectsFlow());
  EXPECT_TRUE(upper.contains(d.sa));
  EXPECT_TRUE(upper.contains(d.ad));
  // Uniting an identical graph is a no-op.
  upper.unite(lower);
  EXPECT_EQ(upper.edgeCount(), 2u);
  EXPECT_EQ(upper, upper);
}

TEST(DisseminationGraph, UniteWithSelfEquivalentIsIdempotent) {
  test::Diamond d;
  DisseminationGraph dg(d.g, d.s, d.d);
  dg.addPath(Path{d.sa, d.ad});
  DisseminationGraph copy = dg;
  dg.unite(copy);
  EXPECT_EQ(dg, copy);
}

TEST(DisseminationGraph, OutEdgesPerNode) {
  test::Diamond d;
  DisseminationGraph dg(d.g, d.s, d.d);
  dg.addPath(Path{d.sa, d.ad});
  dg.addPath(Path{d.sb, d.bd});
  EXPECT_EQ(dg.outEdges(d.s).size(), 2u);
  EXPECT_EQ(dg.outEdges(d.a).size(), 1u);
  EXPECT_EQ(dg.outEdges(d.d).size(), 0u);
}

}  // namespace
}  // namespace dg::graph
