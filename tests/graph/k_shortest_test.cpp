#include "graph/k_shortest.hpp"

#include <gtest/gtest.h>

#include <set>

#include "graph/shortest_path.hpp"
#include "test_support.hpp"
#include "trace/topology.hpp"

namespace dg::graph {
namespace {

TEST(KShortest, FirstMatchesDijkstra) {
  test::Diamond d;
  const auto weights = d.g.baseLatencies();
  const auto paths = kShortestPaths(d.g, d.s, d.d, weights, 3);
  ASSERT_GE(paths.size(), 1u);
  const auto dijkstra = shortestPath(d.g, d.s, d.d, weights);
  EXPECT_EQ(paths[0], dijkstra.edges);
}

TEST(KShortest, NondecreasingLatency) {
  test::Diamond d;
  const auto weights = d.g.baseLatencies();
  const auto paths = kShortestPaths(d.g, d.s, d.d, weights, 5);
  ASSERT_GE(paths.size(), 3u);
  for (std::size_t i = 1; i < paths.size(); ++i) {
    EXPECT_GE(pathLatency(d.g, paths[i], weights),
              pathLatency(d.g, paths[i - 1], weights));
  }
}

TEST(KShortest, PathsAreDistinctAndLoopless) {
  const auto topology = trace::Topology::ltn12();
  const auto& g = topology.graph();
  const auto weights = g.baseLatencies();
  const auto paths =
      kShortestPaths(g, topology.at("NYC"), topology.at("SJC"), weights, 8);
  EXPECT_EQ(paths.size(), 8u);
  std::set<Path> unique(paths.begin(), paths.end());
  EXPECT_EQ(unique.size(), paths.size());
  for (const Path& path : paths) {
    ASSERT_TRUE(
        isValidPath(g, topology.at("NYC"), topology.at("SJC"), path));
    const auto nodes = pathNodes(g, topology.at("NYC"), path);
    std::set<NodeId> seen(nodes.begin(), nodes.end());
    EXPECT_EQ(seen.size(), nodes.size()) << "loop detected";
  }
}

TEST(KShortest, ExhaustsSmallGraph) {
  test::Line line;
  const auto weights = line.g.baseLatencies();
  // Exactly one loopless path exists.
  const auto paths = kShortestPaths(line.g, line.s, line.d, weights, 10);
  EXPECT_EQ(paths.size(), 1u);
}

TEST(KShortest, ZeroKOrSameEndpoints) {
  test::Diamond d;
  const auto weights = d.g.baseLatencies();
  EXPECT_TRUE(kShortestPaths(d.g, d.s, d.d, weights, 0).empty());
  EXPECT_TRUE(kShortestPaths(d.g, d.s, d.s, weights, 3).empty());
}

TEST(KShortest, DiamondEnumeratesKnownPaths) {
  test::Diamond d;
  const auto weights = d.g.baseLatencies();
  const auto paths = kShortestPaths(d.g, d.s, d.d, weights, 10);
  // Loopless S->D paths: S-A-D (20), then S-A-B-D, S-B-D and S-B-A-D all
  // at 30. All four must be found.
  EXPECT_EQ(paths.size(), 4u);
  EXPECT_EQ(pathLatency(d.g, paths[0], weights), util::milliseconds(20));
  for (std::size_t i = 1; i < paths.size(); ++i) {
    EXPECT_EQ(pathLatency(d.g, paths[i], weights), util::milliseconds(30));
  }
}

}  // namespace
}  // namespace dg::graph
