#include "graph/shortest_path.hpp"

#include <gtest/gtest.h>

#include "test_support.hpp"
#include "trace/topology.hpp"

namespace dg::graph {
namespace {

TEST(ShortestPath, FindsDiamondShortest) {
  test::Diamond d;
  const auto weights = d.g.baseLatencies();
  const auto result = shortestPath(d.g, d.s, d.d, weights);
  ASSERT_TRUE(result.found);
  EXPECT_EQ(result.distance, util::milliseconds(20));
  EXPECT_EQ(result.edges, (Path{d.sa, d.ad}));
}

TEST(ShortestPath, RespectsExcludedEdgeWeights) {
  test::Diamond d;
  auto weights = d.g.baseLatencies();
  weights[d.ad] = util::kNever;
  const auto result = shortestPath(d.g, d.s, d.d, weights);
  ASSERT_TRUE(result.found);
  // Best detour: S-A-B-D (10+5+15=30) ties with S-B-D (30).
  EXPECT_EQ(result.distance, util::milliseconds(30));
}

TEST(ShortestPath, UnreachableReportsNotFound) {
  Graph g;
  const NodeId a = g.addNode();
  const NodeId b = g.addNode();
  const auto result = shortestPath(g, a, b, std::vector<util::SimTime>{});
  EXPECT_FALSE(result.found);
  EXPECT_EQ(result.distance, util::kNever);
}

TEST(ShortestPath, ExcludingNodes) {
  test::Diamond d;
  const auto weights = d.g.baseLatencies();
  const std::vector<NodeId> excluded{d.a};
  const auto result =
      shortestPathExcluding(d.g, d.s, d.d, weights, {}, excluded);
  ASSERT_TRUE(result.found);
  EXPECT_EQ(result.edges, (Path{d.sb, d.bd}));
}

TEST(ShortestPath, ExcludingEdges) {
  test::Diamond d;
  const auto weights = d.g.baseLatencies();
  const std::vector<EdgeId> excluded{d.sa};
  const auto result =
      shortestPathExcluding(d.g, d.s, d.d, weights, excluded, {});
  ASSERT_TRUE(result.found);
  EXPECT_EQ(result.edges.front(), d.sb);
}

TEST(ShortestPath, SrcDstNeverExcluded) {
  test::Line line;
  const auto weights = line.g.baseLatencies();
  const std::vector<NodeId> excluded{line.s, line.d};
  const auto result =
      shortestPathExcluding(line.g, line.s, line.d, weights, {}, excluded);
  ASSERT_TRUE(result.found);
  EXPECT_EQ(result.distance, util::milliseconds(20));
}

TEST(DijkstraDistances, AllNodes) {
  test::Diamond d;
  const auto weights = d.g.baseLatencies();
  const auto dist = dijkstraDistances(d.g, d.s, weights);
  EXPECT_EQ(dist[d.s], 0);
  EXPECT_EQ(dist[d.a], util::milliseconds(10));
  EXPECT_EQ(dist[d.b], util::milliseconds(15));
  EXPECT_EQ(dist[d.d], util::milliseconds(20));
}

TEST(DijkstraDistancesTo, MatchesForwardOnSymmetricGraph) {
  test::Diamond d;
  const auto weights = d.g.baseLatencies();
  const auto from = dijkstraDistances(d.g, d.s, weights);
  const auto to = dijkstraDistancesTo(d.g, d.s, weights);
  // All links are symmetric, so distances to S equal distances from S.
  for (NodeId n = 0; n < d.g.nodeCount(); ++n) EXPECT_EQ(from[n], to[n]);
}

TEST(DijkstraDistancesTo, AsymmetricWeights) {
  Graph g;
  const NodeId a = g.addNode();
  const NodeId b = g.addNode();
  g.addEdge(a, b, 10);  // a->b cheap
  g.addEdge(b, a, 99);  // b->a expensive
  const std::vector<util::SimTime> weights{10, 99};
  const auto toB = dijkstraDistancesTo(g, b, weights);
  EXPECT_EQ(toB[a], 10);
  const auto toA = dijkstraDistancesTo(g, a, weights);
  EXPECT_EQ(toA[b], 99);
}

TEST(ShortestPath, Ltn12TranscontinentalWithinDeadline) {
  const auto topology = trace::Topology::ltn12();
  const auto weights = topology.graph().baseLatencies();
  const auto result = shortestPath(topology.graph(), topology.at("NYC"),
                                   topology.at("SJC"), weights);
  ASSERT_TRUE(result.found);
  // A cross-US one-way route must fit comfortably inside the paper's
  // 65 ms budget but still be tens of milliseconds.
  EXPECT_LT(result.distance, util::milliseconds(50));
  EXPECT_GT(result.distance, util::milliseconds(15));
}

}  // namespace
}  // namespace dg::graph
