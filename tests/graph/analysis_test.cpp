#include "graph/analysis.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "graph/disjoint_paths.hpp"
#include "test_support.hpp"
#include "trace/topology.hpp"
#include "util/rng.hpp"

namespace dg::graph {
namespace {

/// A barbell: two triangles joined by one bridge through a middle node.
///   0-1-2 triangle, 3-4-5 triangle, bridge 2-3.
struct Barbell {
  Graph g;
  EdgeId bridge;
  Barbell() {
    g.addNodes(6);
    g.addBidirectional(0, 1, 1);
    g.addBidirectional(1, 2, 1);
    g.addBidirectional(0, 2, 1);
    bridge = g.addBidirectional(2, 3, 1);
    g.addBidirectional(3, 4, 1);
    g.addBidirectional(4, 5, 1);
    g.addBidirectional(3, 5, 1);
  }
};

TEST(Analysis, BarbellArticulationAndBridge) {
  Barbell b;
  const auto cuts = articulationPoints(b.g);
  EXPECT_EQ(cuts, (std::vector<NodeId>{2, 3}));
  const auto bridgeLinks = bridges(b.g);
  ASSERT_EQ(bridgeLinks.size(), 1u);
  EXPECT_EQ(bridgeLinks[0], b.bridge);
}

TEST(Analysis, TriangleHasNoWeakPoints) {
  test::Diamond d;
  EXPECT_TRUE(articulationPoints(d.g).empty());
  EXPECT_TRUE(bridges(d.g).empty());
}

TEST(Analysis, LineIsAllBridges) {
  test::Line line;
  const auto cuts = articulationPoints(line.g);
  EXPECT_EQ(cuts, (std::vector<NodeId>{line.m}));
  EXPECT_EQ(bridges(line.g).size(), 2u);
}

TEST(Analysis, Connectivity) {
  test::Diamond d;
  EXPECT_TRUE(isConnected(d.g));
  Graph disconnected;
  disconnected.addNodes(3);
  disconnected.addBidirectional(0, 1, 1);
  EXPECT_FALSE(isConnected(disconnected));
  Graph trivial;
  trivial.addNode();
  EXPECT_TRUE(isConnected(trivial));
}

TEST(Analysis, Ltn12IsTwoConnected) {
  // The evaluation overlay has no single point of failure.
  const auto topology = trace::Topology::ltn12();
  EXPECT_TRUE(isConnected(topology.graph()));
  EXPECT_TRUE(articulationPoints(topology.graph()).empty());
  EXPECT_TRUE(bridges(topology.graph()).empty());
}

TEST(Analysis, MinimumCutSizeMatchesConnectivity) {
  test::Diamond d;
  const auto cut = minimumEdgeCut(d.g, d.s, d.d);
  // Diamond S->D: edge connectivity 2 (via A and via B).
  EXPECT_EQ(cut.size(), 2u);
  // Removing the cut must actually disconnect the flow.
  auto weights = d.g.baseLatencies();
  for (const EdgeId e : cut) weights[e] = util::kNever;
  EXPECT_TRUE(
      nodeDisjointPaths(d.g, d.s, d.d, weights, 1).paths.empty());
}

TEST(Analysis, MinimumCutOnLineIsOneEdge) {
  test::Line line;
  const auto cut = minimumEdgeCut(line.g, line.s, line.d);
  EXPECT_EQ(cut.size(), 1u);
}

TEST(Analysis, MinimumCutPropertyRandomGraphs) {
  util::Rng rng(77);
  for (int trial = 0; trial < 15; ++trial) {
    Graph g;
    const std::size_t n = 6 + rng.uniformInt(std::uint64_t{5});
    g.addNodes(n);
    for (NodeId u = 0; u < n; ++u) {
      for (NodeId v = u + 1; v < n; ++v) {
        if (rng.bernoulli(0.4)) g.addBidirectional(u, v, 1);
      }
    }
    const NodeId src = 0;
    const NodeId dst = static_cast<NodeId>(n - 1);
    const auto weights = g.baseLatencies();
    const auto cut = minimumEdgeCut(g, src, dst);
    // Removing the cut disconnects; by max-flow duality its size equals
    // the number of edge-disjoint paths.
    auto cutWeights = weights;
    for (const EdgeId e : cut) cutWeights[e] = util::kNever;
    EXPECT_TRUE(
        nodeDisjointPaths(g, src, dst, cutWeights, 1).paths.empty());
    const auto edgeDisjoint = edgeDisjointPaths(g, src, dst, weights, 16);
    EXPECT_EQ(cut.size(), edgeDisjoint.paths.size());
  }
}

TEST(Analysis, TimelyConnectivityRespectsDeadline) {
  const auto topology = trace::Topology::ltn12();
  const auto& g = topology.graph();
  const auto weights = g.baseLatencies();
  const auto nyc = topology.at("NYC");
  const auto sjc = topology.at("SJC");
  const int loose =
      timelyDisjointConnectivity(g, nyc, sjc, weights, util::seconds(1));
  const int tight = timelyDisjointConnectivity(g, nyc, sjc, weights,
                                               util::milliseconds(65));
  const int impossible = timelyDisjointConnectivity(
      g, nyc, sjc, weights, util::milliseconds(10));
  EXPECT_GE(loose, tight);
  EXPECT_GE(tight, 2);  // the 2-disjoint schemes' premise
  EXPECT_EQ(impossible, 0);
  EXPECT_EQ(loose, maxNodeDisjointPaths(g, nyc, sjc, weights));
}

TEST(Analysis, FragilityReportShape) {
  Barbell b;
  const auto report = fragilityReport(b.g);
  ASSERT_EQ(report.size(), 6u);
  EXPECT_TRUE(report[2].articulation);
  EXPECT_TRUE(report[3].articulation);
  EXPECT_FALSE(report[0].articulation);
  EXPECT_EQ(report[2].adjacentBridges, 1u);
  EXPECT_EQ(report[3].adjacentBridges, 1u);
  EXPECT_EQ(report[0].adjacentBridges, 0u);
  EXPECT_EQ(report[2].degree, 3u);
}

}  // namespace
}  // namespace dg::graph
