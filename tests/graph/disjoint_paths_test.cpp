#include "graph/disjoint_paths.hpp"

#include <gtest/gtest.h>

#include <set>

#include "test_support.hpp"
#include "trace/topology.hpp"
#include "util/rng.hpp"

namespace dg::graph {
namespace {

TEST(NodeDisjointPaths, DiamondPair) {
  test::Diamond d;
  const auto weights = d.g.baseLatencies();
  const auto result = nodeDisjointPaths(d.g, d.s, d.d, weights, 2);
  ASSERT_EQ(result.paths.size(), 2u);
  EXPECT_TRUE(isValidPath(d.g, d.s, d.d, result.paths[0]));
  EXPECT_TRUE(isValidPath(d.g, d.s, d.d, result.paths[1]));
  EXPECT_FALSE(pathsShareInteriorNode(d.g, d.s, d.d, result.paths[0],
                                      result.paths[1]));
  // Minimum total: S-A-D (20) + S-B-D (30) = 50ms.
  EXPECT_EQ(result.totalLatency, util::milliseconds(50));
  // Sorted by individual latency.
  EXPECT_EQ(result.paths[0], (Path{d.sa, d.ad}));
}

TEST(NodeDisjointPaths, OnlyOnePathOnLine) {
  test::Line line;
  const auto weights = line.g.baseLatencies();
  const auto result = nodeDisjointPaths(line.g, line.s, line.d, weights, 2);
  ASSERT_EQ(result.paths.size(), 1u);
  EXPECT_EQ(result.totalLatency, util::milliseconds(20));
}

TEST(NodeDisjointPaths, TrapCaseNeedsJointOptimization) {
  // The classic Suurballe trap: the shortest path uses a node that both
  // disjoint paths would need. Greedy "shortest, then shortest-avoiding"
  // fails; min-cost flow must re-route.
  //   s -> a (1), a -> t (1)          (shortest path via a)
  //   s -> b (2), b -> a (0), b -> t (4)
  Graph g;
  const NodeId s = g.addNode();
  const NodeId a = g.addNode();
  const NodeId b = g.addNode();
  const NodeId t = g.addNode();
  g.addEdge(s, a, 1);
  g.addEdge(a, t, 1);
  g.addEdge(s, b, 2);
  g.addEdge(b, a, 0);
  g.addEdge(b, t, 4);
  const auto weights = g.baseLatencies();
  const auto result = nodeDisjointPaths(g, s, t, weights, 2);
  ASSERT_EQ(result.paths.size(), 2u);
  EXPECT_FALSE(
      pathsShareInteriorNode(g, s, t, result.paths[0], result.paths[1]));
  EXPECT_EQ(result.totalLatency, 8);  // s-a-t (2) + s-b-t (6)
}

TEST(NodeDisjointPaths, RespectsExcludedEdges) {
  test::Diamond d;
  auto weights = d.g.baseLatencies();
  weights[d.sa] = util::kNever;
  const auto result = nodeDisjointPaths(d.g, d.s, d.d, weights, 2);
  // Without S->A only one node-disjoint path remains (via B).
  ASSERT_EQ(result.paths.size(), 1u);
  EXPECT_EQ(result.paths[0], (Path{d.sb, d.bd}));
}

TEST(NodeDisjointPaths, SameSourceDestination) {
  test::Diamond d;
  const auto weights = d.g.baseLatencies();
  EXPECT_TRUE(nodeDisjointPaths(d.g, d.s, d.s, weights, 2).paths.empty());
  EXPECT_TRUE(nodeDisjointPaths(d.g, d.s, d.d, weights, 0).paths.empty());
}

TEST(EdgeDisjointPaths, CanShareNodes) {
  // Two edge-disjoint paths through the same middle node:
  // s->m (two parallel edges), m->t (two parallel edges).
  Graph g;
  const NodeId s = g.addNode();
  const NodeId m = g.addNode();
  const NodeId t = g.addNode();
  g.addEdge(s, m, 1);
  g.addEdge(s, m, 2);
  g.addEdge(m, t, 1);
  g.addEdge(m, t, 2);
  const auto weights = g.baseLatencies();
  EXPECT_EQ(edgeDisjointPaths(g, s, t, weights, 2).paths.size(), 2u);
  EXPECT_EQ(nodeDisjointPaths(g, s, t, weights, 2).paths.size(), 1u);
}

TEST(MaxNodeDisjointPaths, Ltn12Connectivity) {
  const auto topology = trace::Topology::ltn12();
  const auto weights = topology.graph().baseLatencies();
  // Every transcontinental pair in the evaluation has at least two
  // node-disjoint paths (the premise of the 2-disjoint schemes).
  const auto nyc = topology.at("NYC");
  const auto sjc = topology.at("SJC");
  EXPECT_GE(maxNodeDisjointPaths(topology.graph(), nyc, sjc, weights), 2);
}

// Property test: on random graphs, the number of paths found by the
// min-cost-flow construction equals min(k, max-flow connectivity), and
// the paths returned are valid and pairwise interior-disjoint.
class DisjointPathsProperty : public ::testing::TestWithParam<int> {};

TEST_P(DisjointPathsProperty, MatchesMaxFlowOracle) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()));
  const std::size_t n = 8 + rng.uniformInt(std::uint64_t{5});
  Graph g;
  g.addNodes(n);
  // Random sparse bidirectional graph.
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      if (rng.bernoulli(0.35)) {
        g.addBidirectional(u, v,
                           util::milliseconds(rng.uniformInt(1, 30)));
      }
    }
  }
  const auto weights = g.baseLatencies();
  const NodeId src = 0;
  const NodeId dst = static_cast<NodeId>(n - 1);
  const int connectivity = maxNodeDisjointPaths(g, src, dst, weights);
  for (const int k : {1, 2, 3}) {
    const auto result = nodeDisjointPaths(g, src, dst, weights, k);
    EXPECT_EQ(static_cast<int>(result.paths.size()),
              std::min(k, connectivity));
    std::set<NodeId> interior;
    for (const Path& path : result.paths) {
      ASSERT_TRUE(isValidPath(g, src, dst, path));
      for (const NodeId node : pathNodes(g, src, path)) {
        if (node == src || node == dst) continue;
        EXPECT_TRUE(interior.insert(node).second)
            << "interior node " << node << " shared between paths";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, DisjointPathsProperty,
                         ::testing::Range(1, 21));

// Property: total latency of the pair is never better than twice the
// single shortest path, and the best single path latency lower-bounds
// each returned path... (sanity relations).
TEST(NodeDisjointPaths, TotalLatencyDominatesShortest) {
  const auto topology = trace::Topology::ltn12();
  const auto& g = topology.graph();
  const auto weights = g.baseLatencies();
  util::Rng rng(99);
  for (int trial = 0; trial < 30; ++trial) {
    const NodeId src =
        static_cast<NodeId>(rng.uniformInt(g.nodeCount()));
    NodeId dst = static_cast<NodeId>(rng.uniformInt(g.nodeCount()));
    if (src == dst) continue;
    const auto pair = nodeDisjointPaths(g, src, dst, weights, 2);
    if (pair.paths.size() < 2) continue;
    const auto lat0 = pathLatency(g, pair.paths[0], weights);
    const auto lat1 = pathLatency(g, pair.paths[1], weights);
    EXPECT_LE(lat0, lat1);
    EXPECT_EQ(pair.totalLatency, lat0 + lat1);
  }
}

}  // namespace
}  // namespace dg::graph
