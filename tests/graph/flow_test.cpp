#include "graph/flow.hpp"

#include <gtest/gtest.h>

namespace dg::graph {
namespace {

TEST(MaxFlow, SimpleSeriesParallel) {
  // s -> a -> t and s -> b -> t, unit capacities: max flow 2.
  MaxFlow flow(4);
  flow.addArc(0, 1, 1);
  flow.addArc(1, 3, 1);
  flow.addArc(0, 2, 1);
  flow.addArc(2, 3, 1);
  EXPECT_EQ(flow.solve(0, 3), 2);
}

TEST(MaxFlow, BottleneckLimits) {
  // s -> m (capacity 3), m -> t (capacity 1).
  MaxFlow flow(3);
  flow.addArc(0, 1, 3);
  flow.addArc(1, 2, 1);
  EXPECT_EQ(flow.solve(0, 2), 1);
}

TEST(MaxFlow, Disconnected) {
  MaxFlow flow(2);
  EXPECT_EQ(flow.solve(0, 1), 0);
}

TEST(MaxFlow, ClassicExample) {
  // CLRS-style network with known max flow 23.
  MaxFlow flow(6);
  flow.addArc(0, 1, 16);
  flow.addArc(0, 2, 13);
  flow.addArc(1, 2, 10);
  flow.addArc(2, 1, 4);
  flow.addArc(1, 3, 12);
  flow.addArc(3, 2, 9);
  flow.addArc(2, 4, 14);
  flow.addArc(4, 3, 7);
  flow.addArc(3, 5, 20);
  flow.addArc(4, 5, 4);
  EXPECT_EQ(flow.solve(0, 5), 23);
}

TEST(MinCostFlow, PrefersCheapPath) {
  // Two unit paths s->t: direct cost 10, detour cost 2+2=4. Asking for
  // one unit must take the detour.
  MinCostFlow flow(3);
  const int direct = flow.addArc(0, 2, 1, 10);
  const int leg1 = flow.addArc(0, 1, 1, 2);
  const int leg2 = flow.addArc(1, 2, 1, 2);
  const auto [sent, cost] = flow.solve(0, 2, 1);
  EXPECT_EQ(sent, 1);
  EXPECT_EQ(cost, 4);
  EXPECT_EQ(flow.flowOn(direct), 0);
  EXPECT_EQ(flow.flowOn(leg1), 1);
  EXPECT_EQ(flow.flowOn(leg2), 1);
}

TEST(MinCostFlow, SecondUnitTakesSecondCheapest) {
  MinCostFlow flow(3);
  const int direct = flow.addArc(0, 2, 1, 10);
  flow.addArc(0, 1, 1, 2);
  flow.addArc(1, 2, 1, 2);
  const auto [sent, cost] = flow.solve(0, 2, 2);
  EXPECT_EQ(sent, 2);
  EXPECT_EQ(cost, 14);
  EXPECT_EQ(flow.flowOn(direct), 1);
}

TEST(MinCostFlow, CapsAtAvailableFlow) {
  MinCostFlow flow(2);
  flow.addArc(0, 1, 1, 1);
  const auto [sent, cost] = flow.solve(0, 1, 5);
  EXPECT_EQ(sent, 1);
  EXPECT_EQ(cost, 1);
}

TEST(MinCostFlow, RejectsNegativeCost) {
  MinCostFlow flow(2);
  EXPECT_THROW(flow.addArc(0, 1, 1, -1), std::invalid_argument);
}

TEST(MinCostFlow, ResidualReroutingFindsOptimum) {
  // Classic case where the second augmentation must push flow back:
  //   s->a (1, cost 1), a->t (1, cost 1), s->b (1, cost 2),
  //   b->t (1, cost 2), a->b (1, cost 0).
  // Max flow 2; optimal cost uses s-a-t and s-b-t (total 6).
  MinCostFlow flow(4);
  flow.addArc(0, 1, 1, 1);
  flow.addArc(1, 3, 1, 1);
  flow.addArc(0, 2, 1, 2);
  flow.addArc(2, 3, 1, 2);
  flow.addArc(1, 2, 1, 0);
  const auto [sent, cost] = flow.solve(0, 3, 2);
  EXPECT_EQ(sent, 2);
  EXPECT_EQ(cost, 6);
}

}  // namespace
}  // namespace dg::graph
