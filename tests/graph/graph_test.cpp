#include "graph/graph.hpp"

#include <gtest/gtest.h>

#include "test_support.hpp"

namespace dg::graph {
namespace {

TEST(Graph, AddNodesAndEdges) {
  Graph g;
  const NodeId a = g.addNode();
  const NodeId b = g.addNode();
  EXPECT_EQ(g.nodeCount(), 2u);
  const EdgeId e = g.addEdge(a, b, 100);
  EXPECT_EQ(g.edgeCount(), 1u);
  EXPECT_EQ(g.edge(e).from, a);
  EXPECT_EQ(g.edge(e).to, b);
  EXPECT_EQ(g.edge(e).latency, 100);
}

TEST(Graph, AddNodesBulk) {
  Graph g;
  const NodeId first = g.addNodes(5);
  EXPECT_EQ(first, 0u);
  EXPECT_EQ(g.nodeCount(), 5u);
}

TEST(Graph, RejectsInvalidEdges) {
  Graph g;
  const NodeId a = g.addNode();
  EXPECT_THROW(g.addEdge(a, 5, 10), std::out_of_range);
  EXPECT_THROW(g.addEdge(a, a, -1), std::invalid_argument);
}

TEST(Graph, BidirectionalPairsAdjacentIds) {
  Graph g;
  const NodeId a = g.addNode();
  const NodeId b = g.addNode();
  const EdgeId forward = g.addBidirectional(a, b, 50);
  EXPECT_EQ(g.edge(forward).from, a);
  EXPECT_EQ(g.edge(forward + 1).from, b);
  EXPECT_EQ(g.edge(forward + 1).to, a);
  EXPECT_EQ(*g.reverseEdge(forward), forward + 1);
  EXPECT_EQ(*g.reverseEdge(forward + 1), forward);
}

TEST(Graph, AdjacencyLists) {
  test::Diamond d;
  EXPECT_EQ(d.g.outDegree(d.s), 2u);
  EXPECT_EQ(d.g.inDegree(d.s), 2u);
  EXPECT_EQ(d.g.outDegree(d.a), 3u);  // to S, D, B
}

TEST(Graph, FindEdge) {
  test::Diamond d;
  EXPECT_EQ(*d.g.findEdge(d.s, d.a), d.sa);
  EXPECT_FALSE(d.g.findEdge(d.s, d.d).has_value());
}

TEST(Graph, BaseLatencies) {
  test::Line line;
  const auto weights = line.g.baseLatencies();
  ASSERT_EQ(weights.size(), 4u);
  EXPECT_EQ(weights[line.sm], util::milliseconds(10));
}

TEST(PathHelpers, PathLatencyAndNodes) {
  test::Diamond d;
  const Path path{d.sa, d.ad};
  const auto weights = d.g.baseLatencies();
  EXPECT_EQ(pathLatency(d.g, path, weights), util::milliseconds(20));
  const auto nodes = pathNodes(d.g, d.s, path);
  ASSERT_EQ(nodes.size(), 3u);
  EXPECT_EQ(nodes[0], d.s);
  EXPECT_EQ(nodes[1], d.a);
  EXPECT_EQ(nodes[2], d.d);
}

TEST(PathHelpers, PathLatencyWithExcludedEdgeIsNever) {
  test::Diamond d;
  auto weights = d.g.baseLatencies();
  weights[d.ad] = util::kNever;
  EXPECT_EQ(pathLatency(d.g, Path{d.sa, d.ad}, weights), util::kNever);
}

TEST(PathHelpers, IsValidPath) {
  test::Diamond d;
  EXPECT_TRUE(isValidPath(d.g, d.s, d.d, Path{d.sa, d.ad}));
  EXPECT_TRUE(isValidPath(d.g, d.s, d.s, Path{}));
  EXPECT_FALSE(isValidPath(d.g, d.s, d.d, Path{d.ad, d.sa}));
  EXPECT_FALSE(isValidPath(d.g, d.s, d.d, Path{d.sa}));
  EXPECT_FALSE(isValidPath(d.g, d.s, d.d, Path{999}));
}

TEST(PathHelpers, InteriorNodeSharing) {
  test::Diamond d;
  const Path viaA{d.sa, d.ad};
  const Path viaB{d.sb, d.bd};
  const Path viaAB{d.sa, d.ab, d.bd};
  EXPECT_FALSE(pathsShareInteriorNode(d.g, d.s, d.d, viaA, viaB));
  EXPECT_TRUE(pathsShareInteriorNode(d.g, d.s, d.d, viaA, viaAB));
}

}  // namespace
}  // namespace dg::graph
