#include "net/simulator.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace dg::net {
namespace {

TEST(Simulator, StartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.now(), 0);
  EXPECT_EQ(sim.pendingEvents(), 0u);
}

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.scheduleAt(30, [&] { order.push_back(3); });
  sim.scheduleAt(10, [&] { order.push_back(1); });
  sim.scheduleAt(20, [&] { order.push_back(2); });
  sim.runUntil(100);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 100);
  EXPECT_EQ(sim.processedEvents(), 3u);
}

TEST(Simulator, SameTimeFifoOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.scheduleAt(10, [&order, i] { order.push_back(i); });
  }
  sim.runAll();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulator, RunUntilStopsAtBoundary) {
  Simulator sim;
  int fired = 0;
  sim.scheduleAt(10, [&] { ++fired; });
  sim.scheduleAt(20, [&] { ++fired; });
  sim.runUntil(15);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), 15);
  EXPECT_EQ(sim.pendingEvents(), 1u);
  sim.runUntil(25);
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, EventAtBoundaryFires) {
  Simulator sim;
  int fired = 0;
  sim.scheduleAt(10, [&] { ++fired; });
  sim.runUntil(10);
  EXPECT_EQ(fired, 1);
}

TEST(Simulator, EventsCanScheduleEvents) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) sim.scheduleAfter(10, recurse);
  };
  sim.scheduleAfter(0, recurse);
  sim.runUntil(1000);
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(sim.processedEvents(), 5u);
}

TEST(Simulator, RejectsPastAndNegative) {
  Simulator sim;
  sim.scheduleAt(10, [] {});
  sim.runUntil(10);
  EXPECT_THROW(sim.scheduleAt(5, [] {}), std::invalid_argument);
  EXPECT_THROW(sim.scheduleAfter(-1, [] {}), std::invalid_argument);
}

// Regression tests for the documented scheduling contract (see
// net/simulator.hpp): behavior at the edges -- scheduling at exactly
// `now`, runUntil into the past, and boundary composition -- is part of
// the API that the chaos injector and invariant probes rely on.

TEST(Simulator, ScheduleAtNowFiresInSameRunAfterPendingPeers) {
  Simulator sim;
  std::vector<int> order;
  sim.scheduleAt(10, [&] {
    order.push_back(1);
    // Same-timestamp insertion from inside a callback: runs in this
    // same pass, after everything already queued for t=10.
    sim.scheduleAt(sim.now(), [&] { order.push_back(3); });
  });
  sim.scheduleAt(10, [&] { order.push_back(2); });
  sim.runUntil(10);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 10);
}

TEST(Simulator, RunUntilBeforeNowIsNoOp) {
  Simulator sim;
  int fired = 0;
  sim.scheduleAt(10, [&] { ++fired; });
  sim.runUntil(20);
  EXPECT_EQ(sim.now(), 20);
  sim.runUntil(5);  // into the past: no-op, clock untouched
  EXPECT_EQ(sim.now(), 20);
  EXPECT_EQ(fired, 1);
  sim.scheduleAt(25, [&] { ++fired; });
  sim.runUntil(25);
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, BackToBackRunUntilComposes) {
  Simulator a;
  Simulator b;
  std::vector<int> orderA;
  std::vector<int> orderB;
  for (Simulator* sim : {&a, &b}) {
    auto& order = sim == &a ? orderA : orderB;
    sim->scheduleAt(5, [&order] { order.push_back(5); });
    sim->scheduleAt(15, [&order] { order.push_back(15); });
    sim->scheduleAt(25, [&order] { order.push_back(25); });
  }
  a.runUntil(30);
  b.runUntil(10);
  b.runUntil(20);
  b.runUntil(30);
  EXPECT_EQ(orderA, orderB);
  EXPECT_EQ(a.now(), b.now());
  EXPECT_EQ(a.processedEvents(), b.processedEvents());
}

TEST(Simulator, EventScheduledMidRunAtExactlyUntilFires) {
  Simulator sim;
  int fired = 0;
  sim.scheduleAt(10, [&] { sim.scheduleAt(20, [&] { ++fired; }); });
  sim.runUntil(20);  // 20 is inclusive, even for events added mid-run
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.pendingEvents(), 0u);
}

TEST(Simulator, NowAdvancesDuringCallbacks) {
  Simulator sim;
  util::SimTime seen = -1;
  sim.scheduleAt(42, [&] { seen = sim.now(); });
  sim.runAll();
  EXPECT_EQ(seen, 42);
}

}  // namespace
}  // namespace dg::net
