#include "net/simulator.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace dg::net {
namespace {

TEST(Simulator, StartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.now(), 0);
  EXPECT_EQ(sim.pendingEvents(), 0u);
}

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.scheduleAt(30, [&] { order.push_back(3); });
  sim.scheduleAt(10, [&] { order.push_back(1); });
  sim.scheduleAt(20, [&] { order.push_back(2); });
  sim.runUntil(100);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 100);
  EXPECT_EQ(sim.processedEvents(), 3u);
}

TEST(Simulator, SameTimeFifoOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.scheduleAt(10, [&order, i] { order.push_back(i); });
  }
  sim.runAll();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulator, RunUntilStopsAtBoundary) {
  Simulator sim;
  int fired = 0;
  sim.scheduleAt(10, [&] { ++fired; });
  sim.scheduleAt(20, [&] { ++fired; });
  sim.runUntil(15);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), 15);
  EXPECT_EQ(sim.pendingEvents(), 1u);
  sim.runUntil(25);
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, EventAtBoundaryFires) {
  Simulator sim;
  int fired = 0;
  sim.scheduleAt(10, [&] { ++fired; });
  sim.runUntil(10);
  EXPECT_EQ(fired, 1);
}

TEST(Simulator, EventsCanScheduleEvents) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) sim.scheduleAfter(10, recurse);
  };
  sim.scheduleAfter(0, recurse);
  sim.runUntil(1000);
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(sim.processedEvents(), 5u);
}

TEST(Simulator, RejectsPastAndNegative) {
  Simulator sim;
  sim.scheduleAt(10, [] {});
  sim.runUntil(10);
  EXPECT_THROW(sim.scheduleAt(5, [] {}), std::invalid_argument);
  EXPECT_THROW(sim.scheduleAfter(-1, [] {}), std::invalid_argument);
}

TEST(Simulator, NowAdvancesDuringCallbacks) {
  Simulator sim;
  util::SimTime seen = -1;
  sim.scheduleAt(42, [&] { seen = sim.now(); });
  sim.runAll();
  EXPECT_EQ(seen, 42);
}

}  // namespace
}  // namespace dg::net
