#include "net/network.hpp"

#include <gtest/gtest.h>

#include "test_support.hpp"

namespace dg::net {
namespace {

TEST(SimulatedNetwork, DeliversAfterTraceLatency) {
  test::Line line;
  const auto trace = test::healthyTrace(line.g, 5);
  Simulator sim;
  SimulatedNetwork network(sim, line.g, trace, 1);
  util::SimTime arrival = -1;
  graph::EdgeId arrivalEdge = graph::kInvalidEdge;
  network.setDeliveryHandler(line.m, [&](graph::EdgeId e, const Packet&) {
    arrival = sim.now();
    arrivalEdge = e;
  });
  Packet packet;
  packet.type = Packet::Type::Data;
  network.transmit(line.sm, packet);
  sim.runUntil(util::seconds(1));
  EXPECT_EQ(arrival, util::milliseconds(10));
  EXPECT_EQ(arrivalEdge, line.sm);
  EXPECT_EQ(network.transmissionCount(), 1u);
  EXPECT_EQ(network.dropCount(), 0u);
}

TEST(SimulatedNetwork, DropsAtTraceLossRate) {
  test::Line line;
  auto trace = test::healthyTrace(line.g, 5);
  for (std::size_t i = 0; i < trace.intervalCount(); ++i) {
    trace.setCondition(line.sm, i,
                       trace::LinkConditions{0.5, util::milliseconds(10)});
  }
  Simulator sim;
  SimulatedNetwork network(sim, line.g, trace, 7);
  int received = 0;
  network.setDeliveryHandler(line.m,
                             [&](graph::EdgeId, const Packet&) { ++received; });
  const int sent = 10'000;
  for (int i = 0; i < sent; ++i) network.transmit(line.sm, Packet{});
  sim.runUntil(util::seconds(40));
  EXPECT_NEAR(received / static_cast<double>(sent), 0.5, 0.03);
  EXPECT_EQ(network.dropCount() + static_cast<std::uint64_t>(received),
            network.transmissionCount());
}

TEST(SimulatedNetwork, ConditionsFollowIntervals) {
  test::Line line;
  auto trace = test::healthyTrace(line.g, 3);
  trace.setCondition(line.sm, 1,
                     trace::LinkConditions{0.0, util::milliseconds(42)});
  Simulator sim;
  SimulatedNetwork network(sim, line.g, trace, 1);
  std::vector<util::SimTime> latencies;
  network.setTransmitObserver([&](graph::EdgeId, const Packet&, bool ok,
                                  util::SimTime latency) {
    if (ok) latencies.push_back(latency);
  });
  network.setDeliveryHandler(line.m, [](graph::EdgeId, const Packet&) {});
  network.transmit(line.sm, Packet{});              // interval 0
  sim.runUntil(util::seconds(12));
  network.transmit(line.sm, Packet{});              // interval 1
  sim.runUntil(util::seconds(25));
  network.transmit(line.sm, Packet{});              // interval 2
  sim.runUntil(util::seconds(30));
  ASSERT_EQ(latencies.size(), 3u);
  EXPECT_EQ(latencies[0], util::milliseconds(10));
  EXPECT_EQ(latencies[1], util::milliseconds(42));
  EXPECT_EQ(latencies[2], util::milliseconds(10));
}

TEST(SimulatedNetwork, ObserverSeesDrops) {
  test::Line line;
  auto trace = test::healthyTrace(line.g, 2);
  trace.setCondition(line.sm, 0, trace::LinkConditions{1.0, 1000});
  Simulator sim;
  SimulatedNetwork network(sim, line.g, trace, 1);
  int drops = 0;
  network.setTransmitObserver(
      [&](graph::EdgeId, const Packet&, bool ok, util::SimTime) {
        if (!ok) ++drops;
      });
  network.transmit(line.sm, Packet{});
  sim.runUntil(util::seconds(1));
  EXPECT_EQ(drops, 1);
  EXPECT_EQ(network.dropCount(), 1u);
}

TEST(SimulatedNetwork, RejectsMismatchedTrace) {
  test::Line line;
  test::Diamond diamond;
  const auto trace = test::healthyTrace(line.g, 2);
  Simulator sim;
  EXPECT_THROW(SimulatedNetwork(sim, diamond.g, trace, 1),
               std::invalid_argument);
}

TEST(SimulatedNetwork, DeterministicForSeed) {
  test::Line line;
  auto trace = test::healthyTrace(line.g, 5);
  for (std::size_t i = 0; i < trace.intervalCount(); ++i) {
    trace.setCondition(line.sm, i, trace::LinkConditions{0.3, 1000});
  }
  const auto countDeliveries = [&](std::uint64_t seed) {
    Simulator sim;
    SimulatedNetwork network(sim, line.g, trace, seed);
    int received = 0;
    network.setDeliveryHandler(
        line.m, [&](graph::EdgeId, const Packet&) { ++received; });
    for (int i = 0; i < 1000; ++i) network.transmit(line.sm, Packet{});
    sim.runUntil(util::seconds(40));
    return received;
  };
  EXPECT_EQ(countDeliveries(5), countDeliveries(5));
  EXPECT_NE(countDeliveries(5), countDeliveries(6));
}

}  // namespace
}  // namespace dg::net
