#include <gtest/gtest.h>

#include "core/transport.hpp"
#include "net/network.hpp"
#include "test_support.hpp"

namespace dg::net {
namespace {

TEST(LinkCapacity, DefaultsUnlimited) {
  LinkCapacity capacity;
  EXPECT_FALSE(capacity.limited());
  EXPECT_EQ(capacity.serviceTime(), 0);
}

TEST(LinkCapacity, ServiceTimeFromRate) {
  LinkCapacity capacity;
  capacity.packetsPerSecond = 1000.0;
  EXPECT_TRUE(capacity.limited());
  EXPECT_EQ(capacity.serviceTime(), util::milliseconds(1));
}

class CapacityNetwork : public ::testing::Test {
 protected:
  CapacityNetwork()
      : trace(test::healthyTrace(line.g, 10)), network(sim, line.g, trace, 1) {
    network.setDeliveryHandler(line.m, [this](graph::EdgeId, const Packet&) {
      arrivals.push_back(sim.now());
    });
  }

  test::Line line;
  trace::Trace trace;
  Simulator sim;
  SimulatedNetwork network;
  std::vector<util::SimTime> arrivals;
};

TEST_F(CapacityNetwork, SerializationSpacesArrivals) {
  LinkCapacity capacity;
  capacity.packetsPerSecond = 100.0;  // 10 ms service time
  network.setLinkCapacity(capacity);
  // Send a burst of 5 packets at t=0: arrivals at latency + k*10ms.
  for (int i = 0; i < 5; ++i) network.transmit(line.sm, Packet{});
  sim.runUntil(util::seconds(1));
  ASSERT_EQ(arrivals.size(), 5u);
  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    EXPECT_EQ(arrivals[i], util::milliseconds(10) /* propagation */ +
                               util::milliseconds(10) *
                                   static_cast<util::SimTime>(i + 1));
  }
}

TEST_F(CapacityNetwork, QueueOverflowDropsTail) {
  LinkCapacity capacity;
  capacity.packetsPerSecond = 100.0;
  capacity.queuePackets = 3;
  network.setLinkCapacity(capacity);
  for (int i = 0; i < 10; ++i) network.transmit(line.sm, Packet{});
  sim.runUntil(util::seconds(1));
  // Exactly queuePackets + 1 fit: one in service plus 3 queued.
  EXPECT_EQ(arrivals.size(), 4u);
  EXPECT_EQ(network.queueDropCount(), 6u);
  EXPECT_EQ(network.transmissionCount(), 10u);
}

TEST_F(CapacityNetwork, UnlimitedHasNoQueueing) {
  for (int i = 0; i < 100; ++i) network.transmit(line.sm, Packet{});
  sim.runUntil(util::seconds(1));
  ASSERT_EQ(arrivals.size(), 100u);
  for (const util::SimTime t : arrivals) {
    EXPECT_EQ(t, util::milliseconds(10));
  }
  EXPECT_EQ(network.queueDropCount(), 0u);
}

TEST_F(CapacityNetwork, LinkDrainsAndRecovers) {
  LinkCapacity capacity;
  capacity.packetsPerSecond = 100.0;
  capacity.queuePackets = 2;
  network.setLinkCapacity(capacity);
  for (int i = 0; i < 3; ++i) network.transmit(line.sm, Packet{});
  sim.runUntil(util::seconds(1));
  const auto firstBatch = arrivals.size();
  EXPECT_EQ(firstBatch, 3u);
  // After draining, a later packet goes straight through.
  network.transmit(line.sm, Packet{});
  sim.runUntil(util::seconds(2));
  ASSERT_EQ(arrivals.size(), firstBatch + 1);
  EXPECT_EQ(arrivals.back(),
            util::seconds(1) + util::milliseconds(10) +
                util::milliseconds(10));
}

TEST(CapacityTransport, FloodingSelfCongests) {
  // Flooding multiplies every flow onto (nearly) every link, so four
  // 100 pkt/s flows overload 250 pkt/s links under flooding (aggregate
  // ~400 pkt/s per shared link) while their single paths, which barely
  // overlap, fit comfortably.
  const auto topology = trace::Topology::ltn12();
  trace::Trace tr(util::seconds(10), 12,
                  trace::healthyBaseline(topology.graph(), 0.0));
  core::TransportConfig config;
  config.linkCapacity.packetsPerSecond = 250.0;

  const auto run = [&](routing::SchemeKind kind) {
    core::TransportService service(topology, tr, config);
    std::vector<net::FlowId> flows;
    for (const auto& [src, dst] :
         std::vector<std::pair<const char*, const char*>>{
             {"NYC", "SJC"}, {"NYC", "LAX"}, {"WAS", "SEA"}, {"ATL", "SJC"}}) {
      flows.push_back(service.openFlow(src, dst, kind));
    }
    service.run(util::seconds(60));
    double sum = 0;
    for (const auto id : flows) sum += service.stats(id).onTimeRate();
    return sum / static_cast<double>(flows.size());
  };
  const double single = run(routing::SchemeKind::StaticSinglePath);
  const double targeted = run(routing::SchemeKind::TargetedRedundancy);
  const double flooding = run(routing::SchemeKind::TimeConstrainedFlooding);
  EXPECT_GT(single, 0.99);
  EXPECT_GT(targeted, 0.99);  // 2DP load also fits
  EXPECT_LT(flooding, 0.9);   // self-congestion
}

}  // namespace
}  // namespace dg::net
