// Membership state machine with synthetic timestamps: seed/lookup,
// discover on first Hello, heartbeat-timeout disappearance, graceful
// Bye, rejoin, and restart detection via incarnation bumps.
#include "live/membership.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace dg {
namespace {

live::MembershipConfig testConfig() {
  live::MembershipConfig config;
  config.heartbeatInterval = util::milliseconds(100);
  config.missedHeartbeatsDead = 3;
  return config;
}

TEST(Membership, SeedPopulatesLookupWithoutDiscovery) {
  live::Membership membership(0, testConfig());
  int discovered = 0;
  membership.onDiscover([&](const live::PeerInfo&) { ++discovered; });
  membership.seed(1, 5001);
  EXPECT_EQ(membership.lookup(1), std::optional<std::uint16_t>(5001));
  EXPECT_EQ(membership.lookup(2), std::nullopt);
  EXPECT_EQ(discovered, 0);
  EXPECT_EQ(membership.aliveCount(), 0u);
}

TEST(Membership, SeedIgnoresSelf) {
  live::Membership membership(0, testConfig());
  membership.seed(0, 5000);
  EXPECT_EQ(membership.lookup(0), std::nullopt);
}

TEST(Membership, FirstHelloDiscovers) {
  live::Membership membership(0, testConfig());
  std::vector<graph::NodeId> discovered;
  membership.onDiscover(
      [&](const live::PeerInfo& peer) { discovered.push_back(peer.node); });
  membership.recordHello(1, 5001, 1, util::milliseconds(10));
  membership.recordHello(1, 5001, 1, util::milliseconds(20));  // refresh
  EXPECT_EQ(discovered, (std::vector<graph::NodeId>{1}));
  EXPECT_EQ(membership.aliveCount(), 1u);
  EXPECT_EQ(membership.discoveries(), 1u);
}

TEST(Membership, HelloWithPortZeroKeepsSeededAddress) {
  // The daemon cannot see the sender's source port, so it records Hellos
  // with port 0 -- which must not clobber the seeded address book.
  live::Membership membership(0, testConfig());
  membership.seed(1, 5001);
  membership.recordHello(1, 0, 1, util::milliseconds(10));
  EXPECT_EQ(membership.lookup(1), std::optional<std::uint16_t>(5001));
}

TEST(Membership, MissedHeartbeatsDisappear) {
  live::Membership membership(0, testConfig());
  std::vector<graph::NodeId> gone;
  membership.onDisappear(
      [&](const live::PeerInfo& peer) { gone.push_back(peer.node); });
  membership.recordHello(1, 5001, 1, util::milliseconds(0));
  // Dead deadline is heartbeatInterval * missedHeartbeatsDead = 300 ms.
  membership.tick(util::milliseconds(299));
  EXPECT_TRUE(gone.empty());
  EXPECT_EQ(membership.aliveCount(), 1u);
  membership.tick(util::milliseconds(301));
  EXPECT_EQ(gone, (std::vector<graph::NodeId>{1}));
  EXPECT_EQ(membership.aliveCount(), 0u);
  EXPECT_EQ(membership.disappearances(), 1u);
}

TEST(Membership, RejoinAfterTimeoutRediscovers) {
  live::Membership membership(0, testConfig());
  int discovered = 0;
  membership.onDiscover([&](const live::PeerInfo&) { ++discovered; });
  membership.recordHello(1, 5001, 1, util::milliseconds(0));
  membership.tick(util::milliseconds(400));  // times out
  membership.recordHello(1, 5001, 1, util::milliseconds(500));
  EXPECT_EQ(discovered, 2);
  EXPECT_EQ(membership.aliveCount(), 1u);
}

TEST(Membership, ByeDisappearsImmediately) {
  live::Membership membership(0, testConfig());
  int gone = 0;
  membership.onDisappear([&](const live::PeerInfo&) { ++gone; });
  membership.recordHello(1, 5001, 1, util::milliseconds(0));
  membership.recordBye(1, util::milliseconds(10));
  EXPECT_EQ(gone, 1);
  EXPECT_EQ(membership.aliveCount(), 0u);
  // Lookup still works: the address book outlives liveness.
  EXPECT_EQ(membership.lookup(1), std::optional<std::uint16_t>(5001));
}

TEST(Membership, HigherIncarnationIsChurn) {
  // A restarted peer bumps its incarnation: listeners must observe a
  // disappear + rediscover pair even with no gap in Hellos.
  live::Membership membership(0, testConfig());
  std::vector<std::string> events;
  membership.onDiscover(
      [&](const live::PeerInfo&) { events.push_back("up"); });
  membership.onDisappear(
      [&](const live::PeerInfo&) { events.push_back("down"); });
  membership.recordHello(1, 5001, 1, util::milliseconds(0));
  membership.recordHello(1, 5001, 2, util::milliseconds(50));
  EXPECT_EQ(events, (std::vector<std::string>{"up", "down", "up"}));
  EXPECT_EQ(membership.aliveCount(), 1u);
}

TEST(Membership, LowerIncarnationIgnored) {
  live::Membership membership(0, testConfig());
  int churn = 0;
  membership.onDisappear([&](const live::PeerInfo&) { ++churn; });
  membership.recordHello(1, 5001, 5, util::milliseconds(0));
  membership.recordHello(1, 5001, 4, util::milliseconds(10));  // stale
  EXPECT_EQ(churn, 0);
  EXPECT_EQ(membership.aliveCount(), 1u);
}

}  // namespace
}  // namespace dg
