// Wire-format fixtures: representative encodes of every message type
// round trip exactly, and strict decoding rejects every malformed shape
// (short header, bad magic, wrong version, unknown type, truncation,
// over-cap lists, trailing bytes) without ever yielding a Message.
#include "live/wire.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <vector>

namespace dg {
namespace {

live::Message dataMessage() {
  live::Message m;
  m.type = live::MessageType::Data;
  m.sender = 3;
  m.edge = 12;
  m.flow = 7;
  m.sequence = 123456789;
  m.originTime = util::milliseconds(1500);
  m.deadline = util::milliseconds(65);
  m.graphMask = 0x5014;
  m.source = 0;
  m.destination = 4;
  return m;
}

live::Message nackMessage() {
  live::Message m;
  m.type = live::MessageType::Nack;
  m.sender = 2;
  m.edge = 13;
  m.flow = 7;
  m.nackSequences = {10, 11, 15};
  return m;
}

live::Message statsReplyMessage() {
  live::Message m;
  m.type = live::MessageType::StatsReply;
  m.sender = 1;
  m.token = 2;
  m.counters.socketSends = 100;
  m.counters.socketReceives = 99;
  m.counters.impairmentDrops = 3;
  m.counters.nacksSent = 2;
  m.counters.membershipAlive = 4;
  live::FlowStatsEntry entry;
  entry.flow = 0;
  entry.sent = 800;
  entry.deliveredOnTime = 794;
  entry.deliveredLate = 4;
  entry.transmissions = 2400;
  entry.latencySumUs = 33000000;
  m.flowStats.push_back(entry);
  return m;
}

TEST(Wire, DataRoundTrip) {
  const live::Message m = dataMessage();
  const auto decoded = live::decodeMessage(live::encodeMessage(m));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, m);
}

TEST(Wire, RetransmissionRoundTrip) {
  live::Message m = dataMessage();
  m.type = live::MessageType::Retransmission;
  const auto decoded = live::decodeMessage(live::encodeMessage(m));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, m);
}

TEST(Wire, NackRoundTrip) {
  const live::Message m = nackMessage();
  const auto decoded = live::decodeMessage(live::encodeMessage(m));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, m);
}

TEST(Wire, MembershipAndControlRoundTrip) {
  for (const live::MessageType type :
       {live::MessageType::Hello, live::MessageType::Bye,
        live::MessageType::Go, live::MessageType::StatsRequest,
        live::MessageType::Shutdown}) {
    live::Message m;
    m.type = type;
    m.sender = 2;
    m.incarnation = 5;
    m.helloSeq = 17;
    m.horizon = util::seconds(4);
    m.token = 9;
    // Unserialized per-type fields must come back at defaults, so build
    // the expectation from a default message plus the serialized fields.
    const auto decoded = live::decodeMessage(live::encodeMessage(m));
    ASSERT_TRUE(decoded.has_value()) << live::messageTypeName(type);
    EXPECT_EQ(decoded->type, type);
    EXPECT_EQ(decoded->sender, 2u);
    if (type == live::MessageType::Hello || type == live::MessageType::Bye) {
      EXPECT_EQ(decoded->incarnation, 5u);
      EXPECT_EQ(decoded->helloSeq, 17u);
    }
    if (type == live::MessageType::Go) {
      EXPECT_EQ(decoded->horizon, util::seconds(4));
    }
  }
}

TEST(Wire, StatsReplyRoundTrip) {
  const live::Message m = statsReplyMessage();
  const auto decoded = live::decodeMessage(live::encodeMessage(m));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, m);
}

TEST(Wire, InvalidSenderRoundTrips) {
  live::Message m;
  m.type = live::MessageType::StatsRequest;
  m.sender = graph::kInvalidNode;  // the coordinator has no node id
  const auto decoded = live::decodeMessage(live::encodeMessage(m));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->sender, graph::kInvalidNode);
}

TEST(Wire, EmptyAndShortHeaderRejected) {
  std::string error;
  EXPECT_FALSE(live::decodeMessage({}, &error).has_value());
  EXPECT_FALSE(error.empty());
  const std::vector<std::byte> five(5, std::byte{0x47});
  EXPECT_FALSE(live::decodeMessage(five).has_value());
}

TEST(Wire, BadMagicRejected) {
  auto bytes = live::encodeMessage(dataMessage());
  bytes[0] = std::byte{0x00};
  std::string error;
  EXPECT_FALSE(live::decodeMessage(bytes, &error).has_value());
  EXPECT_NE(error.find("magic"), std::string::npos) << error;
}

TEST(Wire, UnknownVersionRejected) {
  auto bytes = live::encodeMessage(dataMessage());
  bytes[2] = std::byte{0x7F};
  std::string error;
  EXPECT_FALSE(live::decodeMessage(bytes, &error).has_value());
  EXPECT_NE(error.find("version"), std::string::npos) << error;
}

TEST(Wire, UnknownTypeRejected) {
  auto bytes = live::encodeMessage(dataMessage());
  bytes[3] = std::byte{0xEE};
  std::string error;
  EXPECT_FALSE(live::decodeMessage(bytes, &error).has_value());
  EXPECT_NE(error.find("type"), std::string::npos) << error;
}

TEST(Wire, EveryTruncationRejected) {
  for (const live::Message& m :
       {dataMessage(), nackMessage(), statsReplyMessage()}) {
    const auto bytes = live::encodeMessage(m);
    for (std::size_t len = 0; len < bytes.size(); ++len) {
      EXPECT_FALSE(
          live::decodeMessage(std::span(bytes.data(), len)).has_value())
          << live::messageTypeName(m.type) << " truncated to " << len
          << " of " << bytes.size() << " bytes";
    }
  }
}

TEST(Wire, TrailingBytesRejected) {
  auto bytes = live::encodeMessage(dataMessage());
  bytes.push_back(std::byte{0x00});
  std::string error;
  EXPECT_FALSE(live::decodeMessage(bytes, &error).has_value());
  EXPECT_NE(error.find("trailing"), std::string::npos) << error;
}

TEST(Wire, OverCapNackRejectedAtEncodeAndDecode) {
  live::Message m = nackMessage();
  m.nackSequences.assign(live::kMaxNackSequences + 1, 1);
  EXPECT_THROW((void)live::encodeMessage(m), std::length_error);

  // Decode side: forge a count above the cap on an otherwise valid nack.
  m.nackSequences.assign(live::kMaxNackSequences, 1);
  auto bytes = live::encodeMessage(m);
  // Nack body: edge u16, flow u32 follow the 6-byte header; count u16 next.
  const std::size_t countOffset = 6 + 2 + 4;
  const std::uint16_t forged = live::kMaxNackSequences + 1;
  bytes[countOffset] = static_cast<std::byte>(forged & 0xFF);
  bytes[countOffset + 1] = static_cast<std::byte>(forged >> 8);
  std::string error;
  EXPECT_FALSE(live::decodeMessage(bytes, &error).has_value());
}

TEST(Wire, OversizedNodeIdThrowsAtEncode) {
  live::Message m = dataMessage();
  m.source = 0xFFFF;  // collides with the invalid-node wire sentinel
  EXPECT_THROW((void)live::encodeMessage(m), std::length_error);
}

TEST(Wire, TypeNamesAreKebab) {
  EXPECT_EQ(live::messageTypeName(live::MessageType::Data), "data");
  EXPECT_EQ(live::messageTypeName(live::MessageType::StatsReply),
            "stats-reply");
}

}  // namespace
}  // namespace dg
