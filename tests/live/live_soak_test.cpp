// In-process live soak: a 5-daemon mesh5 fleet on one event loop runs a
// short scripted chaos scenario and its measured per-flow unavailability
// must match the playback model within the differential tolerance --
// the subsystem's end-to-end acceptance gate, sized to stay fast. Real
// wall time elapses here (daemons run on real sockets and timers), so
// the test carries the "live" label alongside the usual suite.
#include "live/fleet.hpp"

#include <gtest/gtest.h>

namespace dg {
namespace {

/// One mid-soak interval-aligned loss burst on the NYC-DFW link (edge 2):
/// severe enough to show up, short enough that the fleet finishes in
/// about three wall seconds.
chaos::ChaosSchedule shortSchedule() {
  chaos::ChaosSchedule schedule(util::seconds(2), util::milliseconds(500));
  chaos::ChaosFault loss;
  loss.kind = chaos::ChaosFault::Kind::LinkLoss;
  loss.start = util::milliseconds(500);
  loss.duration = util::milliseconds(1000);
  loss.link = 2;
  loss.lossRate = 0.9;
  schedule.add(loss);
  return schedule;
}

live::FleetParams soakParams() {
  live::FleetParams params;
  params.schedule = shortSchedule();
  params.flows.push_back({"NYC", "SJC", routing::SchemeKind::StaticTwoDisjoint});
  params.packetInterval = util::milliseconds(5);
  params.drain = util::milliseconds(500);
  params.mcSamples = 2000;
  return params;
}

TEST(LiveSoak, InProcessFleetMatchesPlaybackModel) {
  const live::FleetParams params = soakParams();
  const live::FleetResult result = live::runFleetInProcess(params);

  EXPECT_TRUE(result.converged);
  EXPECT_TRUE(result.completed);
  ASSERT_EQ(result.flows.size(), 1u);

  const live::FleetFlowResult& flow = result.flows[0];
  // 2 s horizon / 5 ms interval: the source must have originated the
  // full soak's worth of packets (exactly horizon/interval ticks).
  EXPECT_EQ(flow.sent, 400u);
  EXPECT_GT(flow.deliveredOnTime, 0u);
  EXPECT_TRUE(flow.withinTolerance())
      << "live " << flow.liveUnavailability << " vs predicted "
      << flow.predictedUnavailability << " (tolerance " << flow.tolerance()
      << ")";
  EXPECT_TRUE(result.passed());

  // Every daemon reported, and the ones on the dissemination graph
  // actually touched the network.
  EXPECT_EQ(result.nodeCounters.size(), 5u);
  std::uint64_t totalSends = 0;
  for (const auto& [node, counters] : result.nodeCounters) {
    totalSends += counters.socketSends;
  }
  EXPECT_GT(totalSends, 0u);
}

}  // namespace
}  // namespace dg
