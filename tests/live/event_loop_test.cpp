// EventLoop: timer ordering, cancellation, fd dispatch and the
// wakeup/timer counters. Real time is involved (the loop reads the
// wall-clock shim), so assertions use generous bounds -- ordering and
// counts, never exact durations.
#include "live/event_loop.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <vector>

namespace dg {
namespace {

TEST(EventLoop, NowIsMonotonicFromZero) {
  live::EventLoop loop;
  const util::SimTime a = loop.now();
  const util::SimTime b = loop.now();
  EXPECT_GE(a, 0);
  EXPECT_GE(b, a);
}

TEST(EventLoop, TimersFireInDueOrder) {
  live::EventLoop loop;
  std::vector<int> order;
  loop.scheduleAfter(util::milliseconds(30), [&] { order.push_back(3); });
  loop.scheduleAfter(util::milliseconds(10), [&] { order.push_back(1); });
  loop.scheduleAfter(util::milliseconds(20), [&] {
    order.push_back(2);
  });
  loop.runUntil(loop.now() + util::milliseconds(120));
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(loop.timersFired(), 3u);
}

TEST(EventLoop, EqualDueTimersFireInScheduleOrder) {
  live::EventLoop loop;
  std::vector<int> order;
  const util::SimTime due = loop.now() + util::milliseconds(10);
  loop.scheduleAt(due, [&] { order.push_back(1); });
  loop.scheduleAt(due, [&] { order.push_back(2); });
  loop.scheduleAt(due, [&] { order.push_back(3); });
  loop.runUntil(due + util::milliseconds(60));
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventLoop, CancelledTimerNeverFires) {
  live::EventLoop loop;
  int fired = 0;
  const live::TimerId id =
      loop.scheduleAfter(util::milliseconds(10), [&] { ++fired; });
  loop.scheduleAfter(util::milliseconds(20), [&] { loop.stop(); });
  loop.cancelTimer(id);
  loop.run();
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(loop.timersFired(), 1u);  // only the stop timer
}

TEST(EventLoop, TimerBeyondOneWheelTurnFires) {
  // 512 slots x 1 ms = one turn; a 600 ms timer wraps the wheel and must
  // not fire a turn early.
  live::EventLoop loop;
  util::SimTime firedAt = -1;
  const util::SimTime start = loop.now();
  loop.scheduleAfter(util::milliseconds(600), [&] {
    firedAt = loop.now();
    loop.stop();
  });
  loop.run();
  ASSERT_GE(firedAt, 0);
  EXPECT_GE(firedAt - start, util::milliseconds(600));
}

TEST(EventLoop, FdHandlerDispatchesAndSelfRemovalIsSafe) {
  live::EventLoop loop;
  int fds[2] = {-1, -1};
  ASSERT_EQ(pipe(fds), 0);
  int reads = 0;
  loop.addFd(fds[0], [&] {
    char buffer[16];
    (void)read(fds[0], buffer, sizeof(buffer));
    ++reads;
    // Removing the fd from inside its own handler must not invalidate
    // the running callback.
    loop.removeFd(fds[0]);
    loop.stop();
  });
  ASSERT_EQ(write(fds[1], "x", 1), 1);
  loop.run();
  EXPECT_EQ(reads, 1);
  EXPECT_GE(loop.wakeups(), 1u);
  close(fds[0]);
  close(fds[1]);
}

TEST(EventLoop, RunUntilReturnsWithoutTimers) {
  live::EventLoop loop;
  const util::SimTime start = loop.now();
  loop.runUntil(start + util::milliseconds(20));
  EXPECT_GE(loop.now() - start, util::milliseconds(20));
}

TEST(EventLoop, HandlerSchedulingFromTimerRuns) {
  live::EventLoop loop;
  int chained = 0;
  loop.scheduleAfter(util::milliseconds(5), [&] {
    loop.scheduleAfter(util::milliseconds(5), [&] {
      ++chained;
      loop.stop();
    });
  });
  loop.run();
  EXPECT_EQ(chained, 1);
}

}  // namespace
}  // namespace dg
