// Impairment shim vs chaos::compileToTrace: for interval-aligned
// schedules, the conditions the shim applies at any time inside an
// interval must equal the compiled trace's conditions for that interval
// -- that equivalence is what makes the live soak an honest
// differential against the playback model.
#include "live/impairment.hpp"

#include <gtest/gtest.h>

#include "chaos/bridge.hpp"
#include "trace/topology.hpp"

namespace dg {
namespace {

constexpr double kResidualLoss = 1e-4;

chaos::ChaosSchedule alignedSchedule(const trace::Topology& topology) {
  chaos::ChaosSchedule schedule(util::seconds(6), util::seconds(1));
  chaos::ChaosFault loss;
  loss.kind = chaos::ChaosFault::Kind::LinkLoss;
  loss.start = util::seconds(1);
  loss.duration = util::seconds(2);
  loss.link = 0;
  loss.lossRate = 0.5;
  schedule.add(loss);

  chaos::ChaosFault latency;
  latency.kind = chaos::ChaosFault::Kind::LinkLatency;
  latency.start = util::seconds(2);
  latency.duration = util::seconds(2);
  latency.link = 0;
  latency.latencyPenalty = util::milliseconds(80);
  schedule.add(latency);

  chaos::ChaosFault blackout;
  blackout.kind = chaos::ChaosFault::Kind::SiteBlackout;
  blackout.start = util::seconds(4);
  blackout.duration = util::seconds(1);
  blackout.node = topology.at("DEN");
  blackout.lossRate = 1.0;
  schedule.add(blackout);
  return schedule;
}

TEST(Impairment, ConditionsMatchCompiledTraceEveryInterval) {
  const auto topology = trace::Topology::mesh5();
  const auto schedule = alignedSchedule(topology);
  schedule.validateAgainst(topology.graph());

  live::ImpairmentPlan plan(topology.graph(), schedule, 42, kResidualLoss);
  const trace::Trace compiled =
      chaos::compileToTrace(schedule, topology, kResidualLoss);

  for (std::size_t interval = 0; interval < schedule.intervalCount();
       ++interval) {
    // Mid-interval probe: alignment means any t inside works.
    const util::SimTime t =
        static_cast<util::SimTime>(interval) * schedule.intervalLength() +
        schedule.intervalLength() / 2;
    for (graph::EdgeId e = 0; e < topology.graph().edgeCount(); ++e) {
      const trace::LinkConditions live = plan.conditionsAt(e, t);
      const trace::LinkConditions& model = compiled.at(e, interval);
      EXPECT_DOUBLE_EQ(live.lossRate, model.lossRate)
          << "edge " << e << " interval " << interval;
      EXPECT_EQ(live.latency, model.latency)
          << "edge " << e << " interval " << interval;
    }
  }
}

TEST(Impairment, BaselineOutsideFaultWindows) {
  const auto topology = trace::Topology::mesh5();
  const auto schedule = alignedSchedule(topology);
  live::ImpairmentPlan plan(topology.graph(), schedule, 42, kResidualLoss);
  for (graph::EdgeId e = 0; e < topology.graph().edgeCount(); ++e) {
    const trace::LinkConditions c = plan.conditionsAt(e, 0);
    EXPECT_DOUBLE_EQ(c.lossRate, kResidualLoss);
    EXPECT_EQ(c.latency, topology.graph().edge(e).latency);
    EXPECT_EQ(plan.baselineLatency(e), topology.graph().edge(e).latency);
  }
}

TEST(Impairment, FaultAffectsBothDirectionsOfTheLink) {
  const auto topology = trace::Topology::mesh5();
  const auto schedule = alignedSchedule(topology);
  live::ImpairmentPlan plan(topology.graph(), schedule, 42, kResidualLoss);
  // Link fault on link=0 (forward edge 0): the reverse edge is impaired
  // too, everything else stays at baseline.
  const util::SimTime inWindow = util::milliseconds(1500);
  EXPECT_GT(plan.conditionsAt(0, inWindow).lossRate, 0.49);
  EXPECT_GT(plan.conditionsAt(1, inWindow).lossRate, 0.49);
  EXPECT_DOUBLE_EQ(plan.conditionsAt(2, inWindow).lossRate, kResidualLoss);
}

TEST(Impairment, DecideDropsAlwaysUnderBlackoutNeverWhenClean) {
  const auto topology = trace::Topology::mesh5();
  const auto schedule = alignedSchedule(topology);
  // Zero residual loss so a clean edge is deterministic.
  live::ImpairmentPlan plan(topology.graph(), schedule, 42, 0.0);

  // Every edge into/out of DEN is dark during the blackout second.
  const util::SimTime blackout = util::milliseconds(4500);
  const graph::NodeId den = topology.at("DEN");
  for (graph::EdgeId e = 0; e < topology.graph().edgeCount(); ++e) {
    const graph::Edge& edge = topology.graph().edge(e);
    if (edge.from != den && edge.to != den) continue;
    for (int i = 0; i < 16; ++i) {
      EXPECT_TRUE(plan.decide(e, blackout).drop) << "edge " << e;
    }
  }

  // A clean edge at a clean time: never drops, delay = propagation.
  for (int i = 0; i < 64; ++i) {
    const live::ImpairmentDecision d = plan.decide(2, 0);
    EXPECT_FALSE(d.drop);
    EXPECT_EQ(d.delay, topology.graph().edge(2).latency);
  }
}

TEST(Impairment, DecideIsDeterministicPerSeed) {
  const auto topology = trace::Topology::mesh5();
  const auto schedule = alignedSchedule(topology);
  live::ImpairmentPlan a(topology.graph(), schedule, 7, kResidualLoss);
  live::ImpairmentPlan b(topology.graph(), schedule, 7, kResidualLoss);
  const util::SimTime inWindow = util::milliseconds(1500);
  for (int i = 0; i < 256; ++i) {
    const live::ImpairmentDecision da = a.decide(0, inWindow);
    const live::ImpairmentDecision db = b.decide(0, inWindow);
    EXPECT_EQ(da.drop, db.drop) << "sample " << i;
    EXPECT_EQ(da.delay, db.delay) << "sample " << i;
  }
}

TEST(Impairment, FlapAlternatesOnOffPhases) {
  const auto topology = trace::Topology::mesh5();
  chaos::ChaosSchedule schedule(util::seconds(6), util::seconds(1));
  chaos::ChaosFault flap;
  flap.kind = chaos::ChaosFault::Kind::LinkFlap;
  flap.start = 0;
  flap.duration = util::seconds(6);
  flap.link = 0;
  flap.lossRate = 0.8;
  flap.flapOn = util::seconds(1);
  flap.flapOff = util::seconds(1);
  schedule.add(flap);
  live::ImpairmentPlan plan(topology.graph(), schedule, 42, kResidualLoss);
  // Phases repeat on|off from the start: impaired in [0,1s), clean in
  // [1s,2s), ...
  EXPECT_GT(plan.conditionsAt(0, util::milliseconds(500)).lossRate, 0.79);
  EXPECT_DOUBLE_EQ(plan.conditionsAt(0, util::milliseconds(1500)).lossRate,
                   kResidualLoss);
  EXPECT_GT(plan.conditionsAt(0, util::milliseconds(2500)).lossRate, 0.79);
}

}  // namespace
}  // namespace dg
