// Property-based wire coverage: any well-formed Message survives an
// encode/decode round trip bit-exactly, and no strict prefix of its
// encoding decodes (strictness: a truncated datagram never yields a
// Message). Failures shrink by dropping list entries and zeroing
// fields, so counterexamples stay readable.
#include <gtest/gtest.h>

#include <cstddef>
#include <sstream>
#include <string>
#include <vector>

#include "live/wire.hpp"
#include "proptest.hpp"
#include "util/rng.hpp"

namespace dg {
namespace {

live::MessageType randomType(util::Rng& rng) {
  static constexpr live::MessageType kTypes[] = {
      live::MessageType::Data,         live::MessageType::Retransmission,
      live::MessageType::Nack,         live::MessageType::Hello,
      live::MessageType::Bye,          live::MessageType::Go,
      live::MessageType::StatsRequest, live::MessageType::StatsReply,
      live::MessageType::Shutdown,
  };
  return kTypes[rng.uniformInt(0, 8)];
}

graph::NodeId randomNode(util::Rng& rng) {
  if (rng.bernoulli(0.1)) return graph::kInvalidNode;
  return static_cast<graph::NodeId>(rng.uniformInt(0, 0xFFFE));
}

live::Message generateMessage(util::Rng& rng) {
  live::Message m;
  m.type = randomType(rng);
  m.sender = randomNode(rng);
  switch (m.type) {
    case live::MessageType::Data:
    case live::MessageType::Retransmission:
      m.edge = rng.bernoulli(0.1)
                   ? graph::kInvalidEdge
                   : static_cast<graph::EdgeId>(rng.uniformInt(0, 0xFFFE));
      m.flow = static_cast<net::FlowId>(rng.uniformInt(0, 1 << 20));
      m.sequence = rng.next();
      m.originTime = static_cast<util::SimTime>(rng.uniformInt(0, 1 << 30));
      m.deadline = static_cast<util::SimTime>(rng.uniformInt(0, 1 << 20));
      m.graphMask = rng.next();
      m.source = randomNode(rng);
      m.destination = randomNode(rng);
      break;
    case live::MessageType::Nack: {
      m.edge = static_cast<graph::EdgeId>(rng.uniformInt(0, 0xFFFE));
      m.flow = static_cast<net::FlowId>(rng.uniformInt(0, 1 << 20));
      const int count = static_cast<int>(rng.uniformInt(
          0, static_cast<std::int64_t>(live::kMaxNackSequences)));
      for (int i = 0; i < count; ++i) m.nackSequences.push_back(rng.next());
      break;
    }
    case live::MessageType::Hello:
    case live::MessageType::Bye:
      m.incarnation = rng.next();
      m.helloSeq = static_cast<std::uint32_t>(rng.uniformInt(0, 1 << 30));
      break;
    case live::MessageType::Go:
      m.horizon = static_cast<util::SimTime>(rng.uniformInt(0, 1 << 30));
      m.token = static_cast<std::uint32_t>(rng.uniformInt(0, 1 << 30));
      break;
    case live::MessageType::StatsRequest:
    case live::MessageType::Shutdown:
      m.token = static_cast<std::uint32_t>(rng.uniformInt(0, 1 << 30));
      break;
    case live::MessageType::StatsReply: {
      m.token = static_cast<std::uint32_t>(rng.uniformInt(0, 1 << 30));
      m.counters.socketSends = rng.next();
      m.counters.socketReceives = rng.next();
      m.counters.impairmentDrops = rng.next();
      m.counters.nacksSent = rng.next();
      m.counters.timersFired = rng.next();
      m.counters.membershipAlive =
          static_cast<std::uint32_t>(rng.uniformInt(0, 64));
      const int entries = static_cast<int>(rng.uniformInt(0, 12));
      for (int i = 0; i < entries; ++i) {
        live::FlowStatsEntry entry;
        entry.flow = static_cast<net::FlowId>(rng.uniformInt(0, 1 << 16));
        entry.sent = rng.next();
        entry.deliveredOnTime = rng.next();
        entry.deliveredLate = rng.next();
        entry.transmissions = rng.next();
        entry.latencySumUs = rng.next();
        m.flowStats.push_back(entry);
      }
      break;
    }
  }
  return m;
}

std::string describeMessage(const live::Message& m) {
  std::ostringstream out;
  out << "  type=" << live::messageTypeName(m.type) << " sender=" << m.sender
      << " nackSequences=" << m.nackSequences.size()
      << " flowStats=" << m.flowStats.size()
      << " encoded=" << live::encodeMessage(m).size() << " bytes\n";
  return out.str();
}

/// Strictly simpler candidates: drop half/one of each list, zero the
/// numeric payload fields.
std::vector<live::Message> shrinkMessage(const live::Message& m) {
  std::vector<live::Message> candidates;
  if (!m.nackSequences.empty()) {
    live::Message half = m;
    half.nackSequences.resize(half.nackSequences.size() / 2);
    candidates.push_back(std::move(half));
    live::Message one = m;
    one.nackSequences.pop_back();
    candidates.push_back(std::move(one));
  }
  if (!m.flowStats.empty()) {
    live::Message half = m;
    half.flowStats.resize(half.flowStats.size() / 2);
    candidates.push_back(std::move(half));
    live::Message one = m;
    one.flowStats.pop_back();
    candidates.push_back(std::move(one));
  }
  live::Message zeroed = m;
  zeroed.sequence = 0;
  zeroed.originTime = 0;
  zeroed.deadline = 0;
  zeroed.graphMask = 0;
  zeroed.incarnation = 0;
  zeroed.horizon = 0;
  zeroed.token = 0;
  zeroed.counters = live::DaemonCounters{};
  if (!(zeroed == m)) candidates.push_back(std::move(zeroed));
  return candidates;
}

TEST(WireProperty, EncodeDecodeRoundTrip) {
  test::prop::forAll(
      "encode/decode round trip", generateMessage,
      [](const live::Message& m) {
        const auto bytes = live::encodeMessage(m);
        std::string error;
        const auto decoded = live::decodeMessage(bytes, &error);
        if (!decoded.has_value())
          return test::prop::fail("decode failed: " + error);
        if (!(*decoded == m))
          return test::prop::fail("decoded message differs from original");
        return test::prop::pass();
      },
      describeMessage, shrinkMessage);
}

TEST(WireProperty, NoStrictPrefixDecodes) {
  test::prop::forAll(
      "no strict prefix of an encoding decodes", generateMessage,
      [](const live::Message& m) {
        const auto bytes = live::encodeMessage(m);
        for (std::size_t len = 0; len < bytes.size(); ++len) {
          if (live::decodeMessage(std::span(bytes.data(), len)).has_value())
            return test::prop::fail("prefix of " + std::to_string(len) +
                                    " of " + std::to_string(bytes.size()) +
                                    " bytes decoded");
        }
        return test::prop::pass();
      },
      describeMessage, shrinkMessage);
}

}  // namespace
}  // namespace dg
