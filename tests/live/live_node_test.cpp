// LiveNode forwarding engine over an in-memory sender: stamped-mask
// fan-out, no-echo, duplicate suppression, forwarding expiry, delivery
// classification at the destination, and the per-hop NACK recovery
// round trip (gap -> NACK on reverse edge -> retransmission -> first
// copy counts as a recovery). These mirror the simulator-node tests so
// a divergence pins which engine drifted.
#include "live/live_node.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace dg {
namespace {

class RecordingSender : public live::LiveNodeSender {
 public:
  struct Sent {
    graph::EdgeId edge;
    live::Message message;
  };

  void sendOnEdge(graph::EdgeId edge, const live::Message& message) override {
    sent.push_back({edge, message});
  }

  std::vector<Sent> sent;
};

/// Diamond A(0) -> {B(1), C(2)} -> D(3), all links bidirectional:
/// edges 0,1 A-B; 2,3 A-C; 4,5 B-D; 6,7 C-D.
graph::Graph diamond() {
  graph::Graph g;
  g.addNodes(4);
  g.addBidirectional(0, 1, util::milliseconds(10));
  g.addBidirectional(0, 2, util::milliseconds(10));
  g.addBidirectional(1, 3, util::milliseconds(10));
  g.addBidirectional(2, 3, util::milliseconds(10));
  return g;
}

/// Both forward paths of the diamond: A->B->D and A->C->D.
constexpr std::uint64_t kTwoPathMask = (1u << 0) | (1u << 2) | (1u << 4) |
                                       (1u << 6);

live::LiveFlow diamondFlow() {
  live::LiveFlow flow;
  flow.id = 7;
  flow.source = 0;
  flow.destination = 3;
  flow.deadline = util::milliseconds(65);
  flow.graphMask = kTwoPathMask;
  return flow;
}

live::Message arrival(const live::LiveFlow& flow, graph::EdgeId edge,
                      net::SequenceNumber sequence, util::SimTime originTime) {
  live::Message m;
  m.type = live::MessageType::Data;
  m.sender = 0;
  m.edge = edge;
  m.flow = flow.id;
  m.sequence = sequence;
  m.originTime = originTime;
  m.deadline = flow.deadline;
  m.graphMask = flow.graphMask;
  m.source = flow.source;
  m.destination = flow.destination;
  return m;
}

TEST(LiveNode, OriginateFansOutOnMaskedOutEdges) {
  const graph::Graph g = diamond();
  RecordingSender sender;
  live::LiveNode node(0, g, sender);
  node.originate(diamondFlow(), 0, util::milliseconds(100));

  ASSERT_EQ(sender.sent.size(), 2u);
  EXPECT_EQ(sender.sent[0].edge, 0u);
  EXPECT_EQ(sender.sent[1].edge, 2u);
  for (const auto& s : sender.sent) {
    EXPECT_EQ(s.message.type, live::MessageType::Data);
    EXPECT_EQ(s.message.sender, 0u);
    EXPECT_EQ(s.message.edge, s.edge);
    EXPECT_EQ(s.message.graphMask, kTwoPathMask);
  }
  const auto& stats = node.flowStats().at(7);
  EXPECT_EQ(stats.sent, 1u);
  EXPECT_EQ(stats.transmissions, 2u);
}

TEST(LiveNode, NoEchoBackToTheArrivalNeighbor) {
  const graph::Graph g = diamond();
  RecordingSender sender;
  live::LiveNode node(1, g, sender);
  // Mask deliberately includes B's echo edge (1: B->A) alongside the
  // forward edge (4: B->D); the no-echo rule must win over the mask.
  live::LiveFlow flow = diamondFlow();
  flow.graphMask = (1u << 0) | (1u << 1) | (1u << 4);
  node.handleMessage(arrival(flow, 0, 0, util::milliseconds(100)),
                     util::milliseconds(110));

  ASSERT_EQ(sender.sent.size(), 1u);
  EXPECT_EQ(sender.sent[0].edge, 4u);
}

TEST(LiveNode, DuplicateSecondCopyDropped) {
  const graph::Graph g = diamond();
  RecordingSender sender;
  live::LiveNode node(3, g, sender);
  const live::LiveFlow flow = diamondFlow();
  // The same packet arrives over both diamond branches.
  node.handleMessage(arrival(flow, 4, 0, util::milliseconds(100)),
                     util::milliseconds(120));
  node.handleMessage(arrival(flow, 6, 0, util::milliseconds(100)),
                     util::milliseconds(125));

  EXPECT_EQ(node.duplicatesDropped(), 1u);
  const auto& stats = node.flowStats().at(7);
  EXPECT_EQ(stats.deliveredOnTime, 1u);
  EXPECT_EQ(stats.deliveredLate, 0u);
}

TEST(LiveNode, ExpiredPacketIsDroppedNotForwarded) {
  const graph::Graph g = diamond();
  RecordingSender sender;
  live::LiveNode node(1, g, sender);
  const live::LiveFlow flow = diamondFlow();
  // Age at forward time equals the deadline: too old to be useful.
  node.handleMessage(arrival(flow, 0, 0, util::milliseconds(100)),
                     util::milliseconds(100) + flow.deadline);

  EXPECT_TRUE(sender.sent.empty());
  EXPECT_EQ(node.expiredDropped(), 1u);
}

TEST(LiveNode, DestinationClassifiesOnTimeAndLate) {
  const graph::Graph g = diamond();
  RecordingSender sender;
  live::LiveNode node(3, g, sender);
  const live::LiveFlow flow = diamondFlow();
  node.handleMessage(arrival(flow, 4, 0, util::milliseconds(100)),
                     util::milliseconds(100) + flow.deadline);  // boundary
  node.handleMessage(arrival(flow, 4, 1, util::milliseconds(100)),
                     util::milliseconds(100) + flow.deadline + 1);

  const auto& stats = node.flowStats().at(7);
  EXPECT_EQ(stats.deliveredOnTime, 1u);
  EXPECT_EQ(stats.deliveredLate, 1u);
  EXPECT_EQ(stats.latencySumUs,
            static_cast<std::uint64_t>(2 * flow.deadline + 1));
}

/// Link A(0) <-> B(1): edges 0 (A->B), 1 (B->A); flow terminates at B.
struct LinkPair {
  graph::Graph g;
  live::LiveFlow flow;

  LinkPair() {
    g.addNodes(2);
    g.addBidirectional(0, 1, util::milliseconds(10));
    flow.id = 3;
    flow.source = 0;
    flow.destination = 1;
    flow.deadline = util::milliseconds(65);
    flow.graphMask = 1u << 0;
  }
};

TEST(LiveNode, GapTriggersNackRetransmissionAndRecovery) {
  LinkPair link;
  RecordingSender senderA;
  RecordingSender senderB;
  live::LiveNode a(0, link.g, senderA);
  live::LiveNode b(1, link.g, senderB);

  const auto deliverToB = [&](std::size_t i, util::SimTime now) {
    b.handleMessage(senderA.sent[i].message, now);
  };

  a.originate(link.flow, 0, util::milliseconds(100));
  a.originate(link.flow, 1, util::milliseconds(200));
  a.originate(link.flow, 2, util::milliseconds(300));
  ASSERT_EQ(senderA.sent.size(), 3u);

  deliverToB(0, util::milliseconds(110));
  deliverToB(2, util::milliseconds(310));  // sequence 1 was "lost"

  // B detected the gap and NACKed exactly sequence 1 on the reverse edge.
  ASSERT_EQ(senderB.sent.size(), 1u);
  EXPECT_EQ(b.nacksSent(), 1u);
  const live::Message& nack = senderB.sent[0].message;
  EXPECT_EQ(nack.type, live::MessageType::Nack);
  EXPECT_EQ(nack.edge, 1u);
  EXPECT_EQ(nack.nackSequences, (std::vector<net::SequenceNumber>{1}));

  // A retransmits from its per-(edge, flow) buffer...
  a.handleMessage(nack, util::milliseconds(315));
  ASSERT_EQ(senderA.sent.size(), 4u);
  EXPECT_EQ(a.retransmissionsSent(), 1u);
  const live::Message& retransmission = senderA.sent[3].message;
  EXPECT_EQ(retransmission.type, live::MessageType::Retransmission);
  EXPECT_EQ(retransmission.sequence, 1u);

  // ...and the retransmission is B's first copy: a recovery, delivered.
  b.handleMessage(retransmission, util::milliseconds(320));
  EXPECT_EQ(b.nackRecoveries(), 1u);
  const auto& stats = b.flowStats().at(3);
  EXPECT_EQ(stats.deliveredOnTime, 2u);
  EXPECT_EQ(stats.deliveredLate, 1u);  // seq 1 recovered past its deadline
}

TEST(LiveNode, RetransmissionOfSeenSequenceIsNotARecovery) {
  LinkPair link;
  RecordingSender sender;
  live::LiveNode b(1, link.g, sender);
  const live::Message data = [&] {
    live::Message m;
    m.type = live::MessageType::Data;
    m.sender = 0;
    m.edge = 0;
    m.flow = link.flow.id;
    m.sequence = 0;
    m.originTime = util::milliseconds(100);
    m.deadline = link.flow.deadline;
    m.graphMask = link.flow.graphMask;
    m.source = 0;
    m.destination = 1;
    return m;
  }();
  b.handleMessage(data, util::milliseconds(110));
  live::Message again = data;
  again.type = live::MessageType::Retransmission;
  b.handleMessage(again, util::milliseconds(120));

  EXPECT_EQ(b.nackRecoveries(), 0u);
  EXPECT_EQ(b.duplicatesDropped(), 1u);
}

TEST(LiveNode, RecoveryDisabledSendsNoNacks) {
  LinkPair link;
  live::LiveNodeConfig config;
  config.recoveryEnabled = false;
  RecordingSender senderA;
  RecordingSender senderB;
  live::LiveNode a(0, link.g, senderA, config);
  live::LiveNode b(1, link.g, senderB, config);

  a.originate(link.flow, 0, util::milliseconds(100));
  a.originate(link.flow, 1, util::milliseconds(200));
  a.originate(link.flow, 2, util::milliseconds(300));
  b.handleMessage(senderA.sent[0].message, util::milliseconds(110));
  b.handleMessage(senderA.sent[2].message, util::milliseconds(310));

  EXPECT_TRUE(senderB.sent.empty());
  EXPECT_EQ(b.nacksSent(), 0u);
}

TEST(LiveNode, EvictedSequencesCannotBeRetransmitted) {
  LinkPair link;
  live::LiveNodeConfig config;
  config.sendBufferPackets = 4;
  RecordingSender senderA;
  RecordingSender senderB;
  live::LiveNode a(0, link.g, senderA, config);
  live::LiveNode b(1, link.g, senderB, config);

  for (net::SequenceNumber seq = 0; seq < 10; ++seq) {
    a.originate(link.flow, seq, util::milliseconds(100 * (seq + 1)));
  }
  // Only sequence 9 arrives: B NACKs 0..8, but A's 4-deep buffer only
  // still holds 6, 7, 8 (9 was never requested).
  b.handleMessage(senderA.sent[9].message, util::milliseconds(1010));
  ASSERT_EQ(senderB.sent.size(), 1u);
  EXPECT_EQ(senderB.sent[0].message.nackSequences.size(), 9u);

  a.handleMessage(senderB.sent[0].message, util::milliseconds(1015));
  EXPECT_EQ(a.retransmissionsSent(), 3u);
  std::vector<net::SequenceNumber> recovered;
  for (std::size_t i = 10; i < senderA.sent.size(); ++i) {
    recovered.push_back(senderA.sent[i].message.sequence);
  }
  EXPECT_EQ(recovered, (std::vector<net::SequenceNumber>{6, 7, 8}));
}

TEST(LiveNode, LateFillAfterNackDoesNotRenack) {
  LinkPair link;
  RecordingSender senderA;
  RecordingSender senderB;
  live::LiveNode a(0, link.g, senderA);
  live::LiveNode b(1, link.g, senderB);

  a.originate(link.flow, 0, util::milliseconds(100));
  a.originate(link.flow, 1, util::milliseconds(200));
  b.handleMessage(senderA.sent[1].message, util::milliseconds(210));
  ASSERT_EQ(b.nacksSent(), 1u);
  // The original copy of 0 straggles in after the NACK: a late fill,
  // not a new gap.
  b.handleMessage(senderA.sent[0].message, util::milliseconds(220));
  EXPECT_EQ(b.nacksSent(), 1u);
  EXPECT_EQ(senderB.sent.size(), 1u);
}

}  // namespace
}  // namespace dg
