// Compilation test for the umbrella header plus a minimal end-to-end
// smoke through it.
#include "dg/dg.hpp"

#include <gtest/gtest.h>

namespace {

TEST(Umbrella, EndToEndSmoke) {
  using namespace dg;
  const auto topology = trace::Topology::ltn12();
  const trace::Trace tr(util::seconds(10), 3,
                        trace::healthyBaseline(topology.graph(), 1e-4));
  core::TransportService service(topology, tr);
  const auto flow = service.openFlow(
      "NYC", "SJC", routing::SchemeKind::TargetedRedundancy);
  service.run(util::seconds(5));
  EXPECT_GT(service.stats(flow).sent, 0u);
  EXPECT_GT(service.stats(flow).onTimeRate(), 0.99);
}

}  // namespace
