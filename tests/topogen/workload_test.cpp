// Open-loop fleet workloads: arrival-process statistics (Poisson and
// bounded Pareto), exact text record/replay, window mapping onto trace
// interval geometry, and bit-identity of a windowed fleet sweep across
// both experiment runners and thread counts.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "playback/experiment.hpp"
#include "store/writer.hpp"
#include "telemetry/export.hpp"
#include "telemetry/telemetry.hpp"
#include "test_support.hpp"
#include "topogen/topogen.hpp"
#include "topogen/workload.hpp"
#include "trace/topology.hpp"
#include "util/rng.hpp"

namespace dg::topogen {
namespace {

std::vector<double> interarrivalSeconds(const FlowWorkload& w) {
  std::vector<double> gaps;
  for (std::size_t i = 1; i < w.flows.size(); ++i) {
    gaps.push_back(static_cast<double>(w.flows[i].start -
                                       w.flows[i - 1].start) /
                   1e6);
  }
  return gaps;
}

TEST(WorkloadArrivals, PoissonInterarrivalsMatchExponential) {
  const trace::Topology topo = trace::Topology::ltn12();
  WorkloadParams params;
  params.flowCount = 4000;
  params.arrival = ArrivalProcess::kPoisson;
  params.meanInterarrivalSeconds = 1.0;
  params.seed = 11;
  const FlowWorkload w = generateWorkload(topo, params);
  ASSERT_EQ(w.flows.size(), params.flowCount);

  std::vector<double> gaps = interarrivalSeconds(w);
  double sum = 0.0;
  for (const double g : gaps) {
    EXPECT_GE(g, 0.0);
    sum += g;
  }
  const double mean = sum / static_cast<double>(gaps.size());
  // Mean of 3999 Exp(1) draws: stderr ~ 1/sqrt(3999) ~ 0.016; 6 sigma.
  EXPECT_NEAR(mean, 1.0, 0.1);

  // KS-style check: the empirical CDF of the gaps must hug the Exp(1)
  // CDF. The one-sided KS bound at n ~ 4000 and alpha ~ 1e-6 is ~0.042;
  // we allow 0.05 at a handful of probe points.
  std::sort(gaps.begin(), gaps.end());
  for (const double x : {0.1, 0.25, 0.5, 1.0, 2.0, 3.0}) {
    const double empirical =
        static_cast<double>(std::lower_bound(gaps.begin(), gaps.end(), x) -
                            gaps.begin()) /
        static_cast<double>(gaps.size());
    const double analytic = 1.0 - std::exp(-x);
    EXPECT_NEAR(empirical, analytic, 0.05) << "at x=" << x;
  }
}

TEST(WorkloadArrivals, BoundedParetoStaysInRangeWithCorrectTailMass) {
  const double alpha = 1.5;
  const double lo = 0.05;
  const double hi = 3600.0;
  util::Rng rng(77);
  std::vector<double> draws;
  draws.reserve(20000);
  for (int i = 0; i < 20000; ++i) {
    const double x = boundedPareto(rng, alpha, lo, hi);
    ASSERT_GE(x, lo);
    ASSERT_LE(x, hi);
    draws.push_back(x);
  }
  // Bounded-Pareto CCDF: P(X > x) = (lo^a x^-a - lo^a hi^-a) /
  //                                 (1 - (lo/hi)^a).
  const double loA = std::pow(lo, alpha);
  const double norm = 1.0 - std::pow(lo / hi, alpha);
  for (const double x : {0.1, 0.5, 2.0, 10.0}) {
    const double analytic =
        (loA * std::pow(x, -alpha) - loA * std::pow(hi, -alpha)) / norm;
    const double empirical =
        static_cast<double>(std::count_if(
            draws.begin(), draws.end(),
            [x](const double d) { return d > x; })) /
        static_cast<double>(draws.size());
    EXPECT_NEAR(empirical, analytic, 0.02) << "tail at x=" << x;
  }
}

TEST(WorkloadArrivals, ParetoWorkloadIsHeavierTailedThanPoisson) {
  const trace::Topology topo = trace::Topology::ltn12();
  WorkloadParams params;
  params.flowCount = 3000;
  params.seed = 5;
  params.arrival = ArrivalProcess::kBoundedPareto;
  params.paretoAlpha = 1.1;
  params.paretoMinSeconds = 0.05;
  params.paretoMaxSeconds = 600.0;
  const FlowWorkload w = generateWorkload(topo, params);
  const std::vector<double> gaps = interarrivalSeconds(w);
  double maxGap = 0.0;
  double sum = 0.0;
  for (const double g : gaps) {
    EXPECT_GE(g, params.paretoMinSeconds - 1e-6);
    EXPECT_LE(g, params.paretoMaxSeconds + 1e-6);
    maxGap = std::max(maxGap, g);
    sum += g;
  }
  // Heavy tail: the largest burst gap dwarfs the mean gap.
  EXPECT_GT(maxGap, 20.0 * sum / static_cast<double>(gaps.size()));
}

TEST(WorkloadGeneration, DeterministicValidatedAndEndpointsDistinct) {
  const trace::Topology topo = trace::Topology::ltn12();
  WorkloadParams params;
  params.flowCount = 500;
  params.seed = 42;
  const FlowWorkload a = generateWorkload(topo, params);
  const FlowWorkload b = generateWorkload(topo, params);
  ASSERT_EQ(a.flows.size(), b.flows.size());
  for (std::size_t i = 0; i < a.flows.size(); ++i) {
    EXPECT_EQ(a.flows[i].flow, b.flows[i].flow);
    EXPECT_EQ(a.flows[i].start, b.flows[i].start);
    EXPECT_EQ(a.flows[i].stop, b.flows[i].stop);
    EXPECT_NE(a.flows[i].flow.source, a.flows[i].flow.destination);
    EXPECT_GT(a.flows[i].stop, a.flows[i].start);
  }
  params.seed = 43;
  const FlowWorkload c = generateWorkload(topo, params);
  bool anyDiffer = false;
  for (std::size_t i = 0; i < a.flows.size(); ++i) {
    anyDiffer = anyDiffer || !(a.flows[i].flow == c.flows[i].flow) ||
                a.flows[i].start != c.flows[i].start;
  }
  EXPECT_TRUE(anyDiffer);

  WorkloadParams bad = params;
  bad.flowCount = 0;
  EXPECT_THROW(generateWorkload(topo, bad), std::invalid_argument);
  bad = params;
  bad.meanInterarrivalSeconds = 0.0;
  EXPECT_THROW(generateWorkload(topo, bad), std::invalid_argument);
  bad = params;
  bad.paretoMinSeconds = 10.0;
  bad.paretoMaxSeconds = 1.0;
  bad.arrival = ArrivalProcess::kBoundedPareto;
  EXPECT_THROW(generateWorkload(topo, bad), std::invalid_argument);

  trace::Topology lonely;
  lonely.addSite({"ONE", 0.0, 0.0});
  EXPECT_THROW(generateWorkload(lonely, params), std::invalid_argument);
}

TEST(WorkloadGeneration, GravityExponentSkewsTowardHighDegreeSites) {
  // On a hub-heavy scale-free overlay, a strongly super-linear gravity
  // exponent must concentrate endpoints on the hubs relative to uniform.
  const trace::Topology topo = generateTopology("scale-free:n=60,seed=3");
  const graph::Graph& g = topo.graph();
  graph::NodeId hub = 0;
  for (graph::NodeId v = 0; v < g.nodeCount(); ++v) {
    if (g.outDegree(v) > g.outDegree(hub)) hub = v;
  }
  WorkloadParams params;
  params.flowCount = 4000;
  params.seed = 8;
  auto hubShare = [&](double exponent) {
    params.gravityExponent = exponent;
    const FlowWorkload w = generateWorkload(topo, params);
    std::size_t hits = 0;
    for (const WorkloadFlow& f : w.flows) {
      hits += (f.flow.source == hub) + (f.flow.destination == hub);
    }
    return static_cast<double>(hits) /
           static_cast<double>(2 * w.flows.size());
  };
  const double uniform = hubShare(0.0);
  const double skewed = hubShare(2.0);
  EXPECT_NEAR(uniform, 1.0 / 60.0, 0.01);
  EXPECT_GT(skewed, 3.0 * uniform);
}

TEST(WorkloadSpec, ParsesAndRejects) {
  const WorkloadParams p =
      parseWorkloadSpec("pareto:flows=500,alpha=1.25,min=0.1,max=60,"
                        "duration=120,seed=9,gravity=1.5");
  EXPECT_EQ(p.arrival, ArrivalProcess::kBoundedPareto);
  EXPECT_EQ(p.flowCount, 500u);
  EXPECT_DOUBLE_EQ(p.paretoAlpha, 1.25);
  EXPECT_DOUBLE_EQ(p.paretoMinSeconds, 0.1);
  EXPECT_DOUBLE_EQ(p.paretoMaxSeconds, 60.0);
  EXPECT_DOUBLE_EQ(p.meanDurationSeconds, 120.0);
  EXPECT_EQ(p.seed, 9u);
  EXPECT_DOUBLE_EQ(p.gravityExponent, 1.5);

  EXPECT_EQ(parseWorkloadSpec("poisson:mean=0.5").arrival,
            ArrivalProcess::kPoisson);
  EXPECT_THROW(parseWorkloadSpec("uniform:flows=10"), std::invalid_argument);
  EXPECT_THROW(parseWorkloadSpec("poisson:bogus=1"), std::invalid_argument);
  EXPECT_THROW(parseWorkloadSpec("poisson:flows=0"), std::invalid_argument);
}

TEST(WorkloadSerialization, TextAndFileRoundTripExactly) {
  const trace::Topology topo = trace::Topology::ltn12();
  WorkloadParams params;
  params.flowCount = 200;
  params.seed = 17;
  const FlowWorkload w = generateWorkload(topo, params);

  const std::string text = workloadToString(w, topo);
  const FlowWorkload back = workloadFromString(text, topo);
  ASSERT_EQ(back.flows.size(), w.flows.size());
  for (std::size_t i = 0; i < w.flows.size(); ++i) {
    EXPECT_EQ(back.flows[i].flow, w.flows[i].flow) << i;
    EXPECT_EQ(back.flows[i].start, w.flows[i].start) << i;
    EXPECT_EQ(back.flows[i].stop, w.flows[i].stop) << i;
  }
  // Re-serializing the parse is byte-identical: the format is exact.
  EXPECT_EQ(workloadToString(back, topo), text);

  const std::string path =
      (std::filesystem::path(::testing::TempDir()) / "workload_rt.txt")
          .string();
  {
    std::ofstream out(path, std::ios::binary);
    out << "# comment line survives the parser\n" << text;
  }
  const FlowWorkload fromFile = workloadFromFile(path, topo);
  EXPECT_EQ(workloadToString(fromFile, topo), text);
  std::filesystem::remove(path);

  EXPECT_THROW(workloadFromString("workload v1\nflow NYC NYC 0 1\n", topo),
               std::invalid_argument);
  EXPECT_THROW(workloadFromString("workload v1\nflow NYC NOPE 0 1\n", topo),
               std::invalid_argument);
  EXPECT_THROW(workloadFromString("workload v1\nflow NYC CHI 5 5\n", topo),
               std::invalid_argument);
  EXPECT_THROW(workloadFromString("workload v2\n", topo),
               std::invalid_argument);
}

TEST(WorkloadWindows, MapsSpansOntoIntervalGeometry) {
  const util::SimTime interval = util::seconds(10);
  auto window = [&](util::SimTime start, util::SimTime stop,
                    std::size_t count) {
    WorkloadFlow f;
    f.start = start;
    f.stop = stop;
    return flowIntervalWindow(f, interval, count);
  };
  // Exact alignment and mid-interval starts/stops.
  EXPECT_EQ(window(0, util::seconds(10), 100),
            (std::pair<std::size_t, std::size_t>{0, 1}));
  EXPECT_EQ(window(util::seconds(5), util::seconds(25), 100),
            (std::pair<std::size_t, std::size_t>{0, 3}));
  EXPECT_EQ(window(util::seconds(20), util::seconds(30), 100),
            (std::pair<std::size_t, std::size_t>{2, 3}));
  // Stop past the trace end clamps; the window never goes empty.
  EXPECT_EQ(window(util::seconds(990), util::seconds(5000), 100),
            (std::pair<std::size_t, std::size_t>{99, 100}));
  // Start past the trace end still yields the last interval.
  EXPECT_EQ(window(util::seconds(2000), util::seconds(3000), 100),
            (std::pair<std::size_t, std::size_t>{99, 100}));
  // Sub-interval flow widens to its single covering interval.
  EXPECT_EQ(window(util::seconds(12), util::seconds(13), 100),
            (std::pair<std::size_t, std::size_t>{1, 2}));
}

/// Same randomized ltn12 trace construction as the chunked-sweep suite.
trace::Trace randomTrace(const graph::Graph& g, std::size_t intervals,
                         std::uint64_t seed) {
  trace::Trace tr =
      dg::test::healthyTrace(g, intervals, util::seconds(10), 1e-4);
  util::Rng rng(seed);
  for (std::size_t k = 0; k < intervals; ++k) {
    const auto e = static_cast<graph::EdgeId>(
        rng.uniformInt(static_cast<std::uint64_t>(g.edgeCount())));
    const auto t = static_cast<std::size_t>(
        rng.uniformInt(static_cast<std::uint64_t>(intervals)));
    trace::LinkConditions c = tr.baseline(e);
    if (rng.bernoulli(0.6)) {
      c.lossRate = rng.uniform(0.05, 0.9);
    } else {
      c.latency = 3 * c.latency + util::milliseconds(10);
    }
    tr.setCondition(e, t, c);
  }
  return tr;
}

TEST(WorkloadReplay, WindowedSweepIsBitIdenticalAcrossRunnersAndThreads) {
  const trace::Topology topo = trace::Topology::ltn12();
  const trace::Trace tr = randomTrace(topo.graph(), 96, 909090);

  // An open-loop fleet whose spans land inside the 960 s trace.
  WorkloadParams params;
  params.flowCount = 12;
  params.seed = 21;
  params.meanInterarrivalSeconds = 40.0;
  params.meanDurationSeconds = 200.0;
  params.minDurationSeconds = 30.0;
  const FlowWorkload workload = generateWorkload(topo, params);

  // Record and replay through the text path first: the replayed fleet
  // must drive the experiment exactly like the generated one.
  const FlowWorkload replayed =
      workloadFromString(workloadToString(workload, topo), topo);

  // Replay is exact, so the replayed fleet maps to the very same flows
  // and windows the generated one does.
  ASSERT_EQ(replayed.flows.size(), workload.flows.size());
  for (std::size_t i = 0; i < workload.flows.size(); ++i) {
    EXPECT_EQ(replayed.flows[i].flow, workload.flows[i].flow);
    EXPECT_EQ(replayed.flows[i].start, workload.flows[i].start);
    EXPECT_EQ(replayed.flows[i].stop, workload.flows[i].stop);
  }

  playback::ExperimentConfig config;
  config.playback.mcSamples = 96;
  config.playback.accumBlockIntervals = 32;  // match the chunk size below
  for (const WorkloadFlow& f : replayed.flows) {
    config.flows.push_back(f.flow);
    const auto [first, last] =
        flowIntervalWindow(f, tr.intervalLength(), tr.intervalCount());
    config.flowWindows.push_back({first, last});
  }

  config.threads = 1;
  const auto inMemory = playback::runExperiment(topo.graph(), tr, config);

  const std::string path =
      (std::filesystem::path(::testing::TempDir()) / "workload_fleet.dgtrace")
          .string();
  store::WriterOptions options;
  options.chunkIntervals = 32;
  store::packTrace(tr, path, options);

  telemetry::Telemetry tel1;
  config.threads = 1;
  const auto packed1 =
      playback::runPackedExperiment(topo.graph(), path, config, &tel1);
  telemetry::Telemetry tel4;
  config.threads = 4;
  const auto packed4 =
      playback::runPackedExperiment(topo.graph(), path, config, &tel4);
  std::filesystem::remove(path);

  ASSERT_EQ(packed1.perFlow.size(), inMemory.perFlow.size());
  ASSERT_EQ(packed4.perFlow.size(), inMemory.perFlow.size());
  for (std::size_t i = 0; i < inMemory.perFlow.size(); ++i) {
    // Windowed in-memory blocked run == packed chunked run == packed run
    // at a different thread count, all exactly.
    EXPECT_EQ(inMemory.perFlow[i].unavailability,
              packed1.perFlow[i].unavailability);
    EXPECT_EQ(inMemory.perFlow[i].averageCost, packed1.perFlow[i].averageCost);
    EXPECT_EQ(inMemory.perFlow[i].problematicIntervals,
              packed1.perFlow[i].problematicIntervals);
    EXPECT_EQ(packed1.perFlow[i].unavailability,
              packed4.perFlow[i].unavailability);
    EXPECT_EQ(packed1.perFlow[i].averageCost, packed4.perFlow[i].averageCost);
    EXPECT_EQ(packed1.perFlow[i].unavailableSeconds,
              packed4.perFlow[i].unavailableSeconds);
  }
  // Telemetry exports: byte-identical across thread counts.
  EXPECT_EQ(telemetry::toPrometheus(tel1.metrics),
            telemetry::toPrometheus(tel4.metrics));
  EXPECT_EQ(telemetry::toJson(tel1.metrics),
            telemetry::toJson(tel4.metrics));
  EXPECT_EQ(telemetry::toJson(tel1.trace), telemetry::toJson(tel4.trace));
}

TEST(WorkloadWindows, RunnerRejectsMalformedWindowLists) {
  const trace::Topology topo = trace::Topology::ltn12();
  const trace::Trace tr =
      dg::test::healthyTrace(topo.graph(), 10, util::seconds(10), 1e-4);
  playback::ExperimentConfig config;
  config.flows = playback::transcontinentalFlows(topo);
  config.flows.resize(2);
  config.playback.mcSamples = 16;

  config.flowWindows = {{0, 5}};  // length 1 != 2 flows
  EXPECT_THROW(playback::runExperiment(topo.graph(), tr, config),
               std::invalid_argument);

  config.flowWindows = {{0, 5}, {7, 7}};  // empty window
  EXPECT_THROW(playback::runExperiment(topo.graph(), tr, config),
               std::invalid_argument);

  config.flowWindows = {{0, 5}, {12, 20}};  // clamps to [10, 10) = empty
  EXPECT_THROW(playback::runExperiment(topo.graph(), tr, config),
               std::invalid_argument);
}

TEST(GroupWorkload, DeterministicWithValidatedReceiverSets) {
  const trace::Topology topo = trace::Topology::ltn12();
  GroupWorkloadParams params;
  params.base.seed = 21;
  params.base.flowCount = 300;
  params.receiversMin = 2;
  params.receiversMax = 5;

  const GroupWorkload first = generateGroupWorkload(topo, params);
  const GroupWorkload second = generateGroupWorkload(topo, params);
  ASSERT_EQ(first.groups.size(), 300u);
  EXPECT_EQ(groupWorkloadToString(first, topo),
            groupWorkloadToString(second, topo));

  for (const WorkloadGroup& g : first.groups) {
    EXPECT_LT(g.source, topo.siteCount());
    EXPECT_GE(g.receivers.size(), params.receiversMin);
    EXPECT_LE(g.receivers.size(), params.receiversMax);
    EXPECT_LT(g.start, g.stop);
    std::vector<graph::NodeId> sorted = g.receivers;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(std::adjacent_find(sorted.begin(), sorted.end()),
              sorted.end())
        << "duplicate receiver";
    for (const graph::NodeId r : g.receivers) {
      EXPECT_LT(r, topo.siteCount());
      EXPECT_NE(r, g.source);
    }
  }
}

TEST(GroupWorkload, ArrivalClockMatchesFlowWorkloadForEqualBaseParams) {
  // The arrival, endpoint, and duration streams are forked in the same
  // order as generateWorkload, so the group fleet's spans line up with
  // the flow fleet's exactly.
  const trace::Topology topo = trace::Topology::ltn12();
  WorkloadParams base;
  base.seed = 77;
  base.flowCount = 100;
  GroupWorkloadParams params;
  params.base = base;

  const FlowWorkload flows = generateWorkload(topo, base);
  const GroupWorkload groups = generateGroupWorkload(topo, params);
  ASSERT_EQ(flows.flows.size(), groups.groups.size());
  for (std::size_t i = 0; i < flows.flows.size(); ++i) {
    EXPECT_EQ(flows.flows[i].start, groups.groups[i].start) << i;
    EXPECT_EQ(flows.flows[i].stop, groups.groups[i].stop) << i;
  }
}

TEST(GroupWorkload, SpecParsesReceiverBoundsAndRejectsGarbage) {
  const GroupWorkloadParams params = parseGroupWorkloadSpec(
      "poisson:flows=200,seed=7,receivers-min=3,receivers-max=8");
  EXPECT_EQ(params.base.flowCount, 200u);
  EXPECT_EQ(params.base.seed, 7u);
  EXPECT_EQ(params.receiversMin, 3u);
  EXPECT_EQ(params.receiversMax, 8u);

  // receivers-max defaults to at least receivers-min.
  const GroupWorkloadParams wide =
      parseGroupWorkloadSpec("poisson:flows=10,receivers-min=6");
  EXPECT_EQ(wide.receiversMin, 6u);
  EXPECT_GE(wide.receiversMax, 6u);

  EXPECT_THROW(parseGroupWorkloadSpec("poisson:receivers-min=0"),
               std::invalid_argument);
  EXPECT_THROW(
      parseGroupWorkloadSpec("poisson:receivers-min=4,receivers-max=2"),
      std::invalid_argument);
  EXPECT_THROW(parseGroupWorkloadSpec("poisson:bogus=1"),
               std::invalid_argument);
}

TEST(GroupWorkload, TextAndFileRoundTripExactly) {
  const trace::Topology topo = trace::Topology::ltn12();
  GroupWorkloadParams params;
  params.base.seed = 3;
  params.base.flowCount = 50;
  params.receiversMin = 2;
  params.receiversMax = 6;
  const GroupWorkload workload = generateGroupWorkload(topo, params);

  const std::string text = groupWorkloadToString(workload, topo);
  EXPECT_EQ(text.rfind("group-workload v1", 0), 0u);
  const GroupWorkload reparsed = groupWorkloadFromString(text, topo);
  ASSERT_EQ(reparsed.groups.size(), workload.groups.size());
  for (std::size_t i = 0; i < workload.groups.size(); ++i) {
    EXPECT_EQ(reparsed.groups[i].source, workload.groups[i].source);
    EXPECT_EQ(reparsed.groups[i].receivers, workload.groups[i].receivers);
    EXPECT_EQ(reparsed.groups[i].start, workload.groups[i].start);
    EXPECT_EQ(reparsed.groups[i].stop, workload.groups[i].stop);
  }
  EXPECT_EQ(groupWorkloadToString(reparsed, topo), text);

  const std::string path =
      (std::filesystem::path(::testing::TempDir()) / "groups.workload")
          .string();
  {
    std::ofstream out(path, std::ios::binary);
    out << text;
  }
  const GroupWorkload fromFile = groupWorkloadFromFile(path, topo);
  EXPECT_EQ(groupWorkloadToString(fromFile, topo), text);
  std::filesystem::remove(path);

  EXPECT_THROW(groupWorkloadFromString("bogus header\n", topo),
               std::invalid_argument);
  EXPECT_THROW(groupWorkloadFromString(
                   "group-workload v1\ngroup NYC NYC 0 10\n", topo),
               std::invalid_argument);
}

TEST(GroupWorkload, IntervalWindowMatchesFlowArithmetic) {
  WorkloadGroup group;
  group.source = 0;
  group.receivers = {1, 2};
  group.start = util::seconds(25);
  group.stop = util::seconds(95);

  WorkloadFlow flow;
  flow.flow = {0, 1};
  flow.start = group.start;
  flow.stop = group.stop;

  const auto fromGroup =
      groupIntervalWindow(group, util::seconds(10), 100);
  const auto fromFlow = flowIntervalWindow(flow, util::seconds(10), 100);
  EXPECT_EQ(fromGroup, fromFlow);
  EXPECT_EQ(fromGroup.first, 2u);
  EXPECT_EQ(fromGroup.second, 10u);
}

}  // namespace
}  // namespace dg::topogen
