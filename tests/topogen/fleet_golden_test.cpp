// Golden fleet regression: a pinned 200-node ring topology, a pinned
// 500-flow open-loop workload, and a pinned synthetic trace are swept by
// the chunk-parallel packed runner; the per-scheme summary is compared
// EXACTLY (every double printed at full %.17g precision) against a
// committed fixture. Any change to the generators, the workload mapping,
// the windowed warm-up, or the playback arithmetic shows up as a diff.
//
// Thread invariance is asserted in the same run: the summary produced at
// --threads 8 must be byte-identical to --threads 1 before either is
// compared to the fixture.
//
// To regenerate after an intentional behavior change:
//   DG_UPDATE_FLEET_GOLDEN=1 ./test_topogen \
//     --gtest_filter='FleetGolden.*'
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "playback/experiment.hpp"
#include "store/writer.hpp"
#include "topogen/topogen.hpp"
#include "topogen/workload.hpp"
#include "trace/synth.hpp"
#include "trace/topology.hpp"

namespace dg::topogen {
namespace {

std::string fixturePath() {
  return std::string(DG_TOPOGEN_FIXTURE_DIR) + "/fleet_golden.txt";
}

std::string g17(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// Renders an experiment summary as the exact fixture text.
std::string renderSummary(const playback::ExperimentResult& result) {
  std::ostringstream out;
  out << "fleet-golden v1 ring:n=200,metros=20,seed=4 flows=500\n";
  for (const playback::SchemeSummary& s : result.summary) {
    out << "scheme " << routing::schemeName(s.scheme)
        << " unavailability " << g17(s.unavailability)
        << " unavailable-seconds " << g17(s.unavailableSeconds)
        << " problematic-intervals " << s.problematicIntervals
        << " cost " << g17(s.averageCost)
        << " gap-coverage " << g17(s.gapCoverage) << "\n";
  }
  return out.str();
}

TEST(FleetGolden, PackedSweepMatchesCommittedFixtureAtAnyThreadCount) {
  // Every input below is pinned; nothing may depend on machine, thread
  // count, or wall clock.
  const trace::Topology topo = generateTopology("ring:n=200,metros=20,seed=4");
  ASSERT_EQ(topo.siteCount(), 200u);

  trace::GeneratorParams traceParams;
  traceParams.seed = 1234;
  traceParams.duration = util::seconds(3600);
  traceParams.nodeEventsPerDay = 300.0;
  traceParams.linkEventsPerDay = 60.0;
  const trace::SyntheticTrace synth =
      trace::generateSyntheticTrace(topo.graph(), traceParams);
  ASSERT_EQ(synth.trace.intervalCount(), 360u);

  WorkloadParams workloadParams;
  workloadParams.seed = 99;
  workloadParams.flowCount = 500;
  workloadParams.meanInterarrivalSeconds = 7.0;
  workloadParams.meanDurationSeconds = 300.0;
  workloadParams.minDurationSeconds = 60.0;
  const FlowWorkload workload = generateWorkload(topo, workloadParams);

  playback::ExperimentConfig config;
  config.schemes = {routing::SchemeKind::StaticSinglePath,
                    routing::SchemeKind::StaticTwoDisjoint,
                    routing::SchemeKind::DynamicSinglePath};
  config.gapOptimal = routing::SchemeKind::DynamicSinglePath;
  config.playback.mcSamples = 32;
  // A 20-metro global ring routes antipodal flows the long way around;
  // the paper's 65 ms budget would leave most of the fleet infeasible,
  // so the fleet scores against a correspondingly wider deadline.
  config.playback.delivery.deadline = util::milliseconds(400);
  config.schemeParams.deadline = util::milliseconds(400);
  for (const WorkloadFlow& f : workload.flows) {
    config.flows.push_back(f.flow);
    const auto [first, last] = flowIntervalWindow(
        f, synth.trace.intervalLength(), synth.trace.intervalCount());
    config.flowWindows.push_back({first, last});
  }

  const std::string packed =
      (std::filesystem::path(::testing::TempDir()) / "fleet_golden.dgtrace")
          .string();
  store::WriterOptions options;
  options.chunkIntervals = 128;
  store::packTrace(synth.trace, packed, options);

  config.threads = 8;
  const auto r8 = playback::runPackedExperiment(topo.graph(), packed, config);
  config.threads = 1;
  const auto r1 = playback::runPackedExperiment(topo.graph(), packed, config);
  std::filesystem::remove(packed);

  const std::string summary8 = renderSummary(r8);
  const std::string summary1 = renderSummary(r1);
  ASSERT_EQ(summary1, summary8)
      << "packed fleet sweep is not thread-invariant";

  if (std::getenv("DG_UPDATE_FLEET_GOLDEN") != nullptr) {
    std::ofstream out(fixturePath(), std::ios::binary);
    ASSERT_TRUE(out.good()) << "cannot write " << fixturePath();
    out << summary1;
    GTEST_SKIP() << "fixture regenerated at " << fixturePath();
  }

  std::ifstream in(fixturePath(), std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing fixture " << fixturePath()
                         << " (run with DG_UPDATE_FLEET_GOLDEN=1)";
  std::ostringstream expected;
  expected << in.rdbuf();
  EXPECT_EQ(summary1, expected.str())
      << "fleet summary drifted from the committed golden fixture; if the "
         "change is intentional, regenerate with DG_UPDATE_FLEET_GOLDEN=1";
}

}  // namespace
}  // namespace dg::topogen
