// Property-based suite for the topology generator families (see
// tests/proptest.hpp): forAll over random (family, size, seed) cases,
// asserting the structural invariants every downstream consumer relies
// on, with shrinking toward smaller node counts on failure.
#include <gtest/gtest.h>

#include <algorithm>
#include <queue>
#include <sstream>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "proptest.hpp"
#include "topogen/topogen.hpp"
#include "trace/topology.hpp"
#include "util/rng.hpp"

namespace dg::topogen {
namespace {

namespace prop = dg::test::prop;

/// A generator case is kept as a spec recipe so the shrinker can rebuild
/// with a smaller n.
struct FamilyCase {
  std::string family;
  std::size_t n = 4;
  std::size_t m = 2;  ///< scale-free attachment links
  std::uint64_t seed = 1;

  std::string spec() const {
    std::string s = family + ":n=" + std::to_string(n) +
                    ",seed=" + std::to_string(seed);
    if (family == "scale-free") s += ",m=" + std::to_string(m);
    return s;
  }

  std::string describe() const { return "  spec: " + spec() + "\n"; }
};

FamilyCase genFamilyCase(util::Rng& rng) {
  static const char* kFamilies[] = {"mesh", "ring", "scale-free"};
  FamilyCase c;
  c.family = kFamilies[rng.uniformInt(std::uint64_t{3})];
  c.n = static_cast<std::size_t>(4 + rng.uniformInt(std::uint64_t{253}));
  c.m = static_cast<std::size_t>(
      1 + rng.uniformInt(std::uint64_t{std::min<std::size_t>(4, c.n - 1)}));
  // Seeds travel through the text spec parser, which bounds them to the
  // non-negative int64 range.
  c.seed = rng.next() >> 1;
  return c;
}

/// Shrinker: strictly smaller node counts (and attachment widths) with
/// the family and seed held fixed, so a failure report lands on the
/// smallest topology that still falsifies.
std::vector<FamilyCase> shrinkFamilyCase(const FamilyCase& c) {
  std::vector<FamilyCase> out;
  if (c.n > 4) {
    FamilyCase half = c;
    half.n = std::max<std::size_t>(4, c.n / 2);
    half.m = std::min(half.m, half.n - 1);
    out.push_back(half);
    FamilyCase less = c;
    less.n = c.n - 1;
    less.m = std::min(less.m, less.n - 1);
    out.push_back(less);
  }
  if (c.family == "scale-free" && c.m > 1) {
    FamilyCase narrower = c;
    narrower.m = c.m - 1;
    out.push_back(narrower);
  }
  return out;
}

std::string describeCase(const FamilyCase& c) { return c.describe(); }

/// Undirected connectivity over the directed overlay (every link is a
/// bidirectional pair, so directed BFS from node 0 must reach everyone).
bool connectedFromZero(const graph::Graph& g) {
  if (g.nodeCount() == 0) return false;
  std::vector<char> seen(g.nodeCount(), 0);
  std::queue<graph::NodeId> frontier;
  frontier.push(0);
  seen[0] = 1;
  std::size_t reached = 1;
  while (!frontier.empty()) {
    const graph::NodeId node = frontier.front();
    frontier.pop();
    for (const graph::EdgeId e : g.outEdges(node)) {
      const graph::NodeId next = g.edge(e).to;
      if (seen[next]) continue;
      seen[next] = 1;
      ++reached;
      frontier.push(next);
    }
  }
  return reached == g.nodeCount();
}

TEST(TopogenProperties, GeneratedTopologiesAreConnected) {
  prop::forAll(
      "every generated topology is connected", genFamilyCase,
      [](const FamilyCase& c) {
        const trace::Topology topo = generateTopology(c.spec());
        if (topo.siteCount() != c.n)
          return prop::fail("siteCount " + std::to_string(topo.siteCount()) +
                            " != n " + std::to_string(c.n));
        if (!connectedFromZero(topo.graph()))
          return prop::fail("graph is disconnected");
        return prop::pass();
      },
      describeCase, shrinkFamilyCase, prop::Config{0xF00D1ULL, 120});
}

TEST(TopogenProperties, DegreesStayWithinBounds) {
  prop::forAll(
      "node degrees stay within [1, n-1] (and >= m for scale-free)",
      genFamilyCase,
      [](const FamilyCase& c) {
        const trace::Topology topo = generateTopology(c.spec());
        const graph::Graph& g = topo.graph();
        for (std::size_t node = 0; node < g.nodeCount(); ++node) {
          const std::size_t degree =
              g.outEdges(static_cast<graph::NodeId>(node)).size();
          const std::size_t minDegree =
              c.family == "scale-free" ? std::min(c.m, c.n - 1) : 1;
          if (degree < minDegree || degree > c.n - 1)
            return prop::fail("node " + topo.name(
                                  static_cast<graph::NodeId>(node)) +
                              " degree " + std::to_string(degree) +
                              " outside [" + std::to_string(minDegree) +
                              ", " + std::to_string(c.n - 1) + "]");
        }
        return prop::pass();
      },
      describeCase, shrinkFamilyCase, prop::Config{0xF00D2ULL, 120});
}

TEST(TopogenProperties, LatenciesAreSymmetricAndPositive) {
  prop::forAll(
      "every link is a forward/backward pair with equal positive latency",
      genFamilyCase,
      [](const FamilyCase& c) {
        const trace::Topology topo = generateTopology(c.spec());
        const graph::Graph& g = topo.graph();
        if (g.edgeCount() % 2 != 0)
          return prop::fail("odd directed edge count");
        for (graph::EdgeId e = 0; e < g.edgeCount(); e += 2) {
          const graph::Edge& fwd = g.edge(e);
          const graph::Edge& bwd = g.edge(e + 1);
          if (fwd.from != bwd.to || fwd.to != bwd.from)
            return prop::fail("edge " + std::to_string(e) +
                              " reverse endpoints mismatch");
          if (fwd.latency != bwd.latency)
            return prop::fail("edge " + std::to_string(e) +
                              " asymmetric latency");
          if (fwd.latency <= 0)
            return prop::fail("edge " + topo.edgeName(e) +
                              " non-positive latency");
        }
        return prop::pass();
      },
      describeCase, shrinkFamilyCase, prop::Config{0xF00D3ULL, 120});
}

TEST(TopogenProperties, ConnectedSitesAreGeographicallyDistinct) {
  prop::forAll(
      "great-circle distance between connected sites is positive",
      genFamilyCase,
      [](const FamilyCase& c) {
        const trace::Topology topo = generateTopology(c.spec());
        const graph::Graph& g = topo.graph();
        for (graph::EdgeId e = 0; e < g.edgeCount(); e += 2) {
          const trace::Site& a = topo.site(g.edge(e).from);
          const trace::Site& b = topo.site(g.edge(e).to);
          if (!(a.latitudeDeg >= -90.0 && a.latitudeDeg <= 90.0) ||
              !(a.longitudeDeg >= -180.0 && a.longitudeDeg <= 180.0))
            return prop::fail("site " + a.name + " out-of-range coordinates");
          const double km =
              trace::haversineKm(a.latitudeDeg, a.longitudeDeg,
                                 b.latitudeDeg, b.longitudeDeg);
          if (!(km > 0.0))
            return prop::fail("link " + topo.edgeName(e) +
                              " has zero great-circle distance");
        }
        return prop::pass();
      },
      describeCase, shrinkFamilyCase, prop::Config{0xF00D4ULL, 120});
}

TEST(TopogenProperties, SameSeedIsByteIdentical) {
  prop::forAll(
      "same spec => byte-identical topology text", genFamilyCase,
      [](const FamilyCase& c) {
        const std::string first = generateTopology(c.spec()).toString();
        const std::string second = generateTopology(c.spec()).toString();
        if (first != second)
          return prop::fail("two generations of the same spec differ");
        // The text form must also round-trip through the parser.
        const trace::Topology reparsed = trace::Topology::fromString(first);
        if (reparsed.toString() != first)
          return prop::fail("toString/fromString round trip drifted");
        return prop::pass();
      },
      describeCase, shrinkFamilyCase, prop::Config{0xF00D5ULL, 60});
}

TEST(TopogenProperties, DifferentSeedsUsuallyDiffer) {
  // Not a hard invariant (two seeds could collide), but across 40 cases
  // at n >= 50 every pair differing only in seed must not be identical
  // every time; a frozen generator would fail instantly.
  int differing = 0;
  int total = 0;
  util::Rng rng(0xF00D6ULL);
  for (int i = 0; i < 40; ++i) {
    FamilyCase c = genFamilyCase(rng);
    c.n = 50 + c.n % 100;
    FamilyCase other = c;
    other.seed = c.seed + 1;
    ++total;
    if (generateTopology(c.spec()).toString() !=
        generateTopology(other.spec()).toString())
      ++differing;
  }
  EXPECT_GT(differing, total / 2);
}

TEST(TopogenScale, EveryFamilyEmitsValidFleetSizes) {
  for (const char* family : {"mesh", "ring", "scale-free"}) {
    for (const std::size_t n : {std::size_t{100}, std::size_t{1000}}) {
      const std::string spec = std::string(family) + ":n=" +
                               std::to_string(n) + ",seed=9";
      const trace::Topology topo = generateTopology(spec);
      EXPECT_EQ(topo.siteCount(), n) << spec;
      EXPECT_TRUE(connectedFromZero(topo.graph())) << spec;
      EXPECT_GE(topo.graph().edgeCount(), 2 * (n - 1)) << spec;
    }
  }
}

TEST(TopogenSpec, ParsesFamiliesBuiltinsAndRejectsGarbage) {
  EXPECT_TRUE(isFamilySpec("mesh:n=100"));
  EXPECT_TRUE(isFamilySpec("scale-free:n=500,seed=7"));
  EXPECT_TRUE(isFamilySpec("ring"));
  EXPECT_TRUE(isFamilySpec("ltn12"));
  EXPECT_FALSE(isFamilySpec("topo.txt"));
  EXPECT_FALSE(isFamilySpec("/path/to/file"));

  EXPECT_EQ(generateTopology("ltn12").siteCount(), 12u);
  EXPECT_EQ(generateTopology("abilene11").siteCount(), 11u);
  EXPECT_EQ(generateTopology("mesh5").siteCount(), 5u);

  EXPECT_THROW(generateTopology("nope:n=10"), std::invalid_argument);
  EXPECT_THROW(generateTopology("mesh:n=banana"), std::invalid_argument);
  EXPECT_THROW(generateTopology("mesh:n=3"), std::invalid_argument);
  EXPECT_THROW(generateTopology("mesh:n=10,bogus=1"), std::invalid_argument);
  EXPECT_THROW(generateTopology("mesh:n=10,n=20"), std::invalid_argument);
  EXPECT_THROW(generateTopology("scale-free:n=10,m=0"),
               std::invalid_argument);
  EXPECT_THROW(parseFamilySpec(":n=1"), std::invalid_argument);
  EXPECT_THROW(parseFamilySpec("mesh:n"), std::invalid_argument);
}

TEST(TopogenSpec, CanonicalFormRoundTrips) {
  const FamilySpec spec = parseFamilySpec("Scale-Free: n=500 , seed=7");
  EXPECT_EQ(spec.family, "scale-free");
  EXPECT_EQ(spec.toString(), "scale-free:n=500,seed=7");
  EXPECT_EQ(parseFamilySpec(spec.toString()).toString(), spec.toString());
}

}  // namespace
}  // namespace dg::topogen
