#include "util/logging.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace dg::util {
namespace {

/// RAII guard restoring logger state after each test.
class LoggerGuard {
 public:
  LoggerGuard() : previousLevel_(Logger::instance().level()) {}
  ~LoggerGuard() {
    Logger::instance().setLevel(previousLevel_);
    Logger::instance().setSink(nullptr);
  }

 private:
  LogLevel previousLevel_;
};

TEST(Logging, LevelNamesRoundTrip) {
  for (const LogLevel level :
       {LogLevel::Trace, LogLevel::Debug, LogLevel::Info, LogLevel::Warn,
        LogLevel::Error, LogLevel::Off}) {
    EXPECT_EQ(parseLogLevel(logLevelName(level)), level);
  }
  EXPECT_EQ(parseLogLevel("WARNING"), LogLevel::Warn);
  EXPECT_EQ(parseLogLevel("none"), LogLevel::Off);
  EXPECT_EQ(parseLogLevel("bogus"), LogLevel::Info);
}

TEST(Logging, RespectsLevelThreshold) {
  LoggerGuard guard;
  std::ostringstream sink;
  Logger::instance().setSink(&sink);
  Logger::instance().setLevel(LogLevel::Warn);
  DG_LOG(Info) << "hidden";
  DG_LOG(Warn) << "visible";
  EXPECT_EQ(sink.str().find("hidden"), std::string::npos);
  EXPECT_NE(sink.str().find("visible"), std::string::npos);
}

TEST(Logging, RecordsLevelAndLocation) {
  LoggerGuard guard;
  std::ostringstream sink;
  Logger::instance().setSink(&sink);
  Logger::instance().setLevel(LogLevel::Debug);
  DG_LOG(Error) << "value=" << 42;
  const std::string record = sink.str();
  EXPECT_NE(record.find("[error]"), std::string::npos);
  EXPECT_NE(record.find("logging_test.cpp"), std::string::npos);
  EXPECT_NE(record.find("value=42"), std::string::npos);
  EXPECT_EQ(record.back(), '\n');
}

TEST(Logging, OffSilencesEverything) {
  LoggerGuard guard;
  std::ostringstream sink;
  Logger::instance().setSink(&sink);
  Logger::instance().setLevel(LogLevel::Off);
  DG_LOG(Error) << "nope";
  EXPECT_TRUE(sink.str().empty());
}

TEST(Logging, StreamOperatorsChain) {
  LoggerGuard guard;
  std::ostringstream sink;
  Logger::instance().setSink(&sink);
  Logger::instance().setLevel(LogLevel::Trace);
  DG_LOG(Trace) << "a" << 1 << 'b' << 2.5;
  EXPECT_NE(sink.str().find("a1b2.5"), std::string::npos);
}

}  // namespace
}  // namespace dg::util
