#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace dg::util {
namespace {

TEST(OnlineStats, EmptyIsZero) {
  OnlineStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_DOUBLE_EQ(stats.mean(), 0.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
  EXPECT_DOUBLE_EQ(stats.min(), 0.0);
  EXPECT_DOUBLE_EQ(stats.max(), 0.0);
}

TEST(OnlineStats, SingleValue) {
  OnlineStats stats;
  stats.add(42.0);
  EXPECT_EQ(stats.count(), 1u);
  EXPECT_DOUBLE_EQ(stats.mean(), 42.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
  EXPECT_DOUBLE_EQ(stats.min(), 42.0);
  EXPECT_DOUBLE_EQ(stats.max(), 42.0);
}

TEST(OnlineStats, KnownMoments) {
  OnlineStats stats;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    stats.add(x);
  }
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  // Sample variance with n-1 = 32/7.
  EXPECT_NEAR(stats.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
  EXPECT_DOUBLE_EQ(stats.sum(), 40.0);
}

TEST(OnlineStats, MergeMatchesSequential) {
  OnlineStats a, b, all;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(static_cast<double>(i)) * 10.0;
    (i % 2 == 0 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(OnlineStats, MergeWithEmpty) {
  OnlineStats a, empty;
  a.add(1.0);
  a.add(3.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  OnlineStats target;
  target.merge(a);
  EXPECT_EQ(target.count(), 2u);
  EXPECT_DOUBLE_EQ(target.mean(), 2.0);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(2.0, 1.0, 4), std::invalid_argument);
}

TEST(Histogram, ClampsOutOfRange) {
  Histogram h(0.0, 10.0, 10);
  h.add(-5.0);
  h.add(15.0);
  EXPECT_EQ(h.total(), 2u);
  EXPECT_EQ(h.bucketValue(0), 1u);
  EXPECT_EQ(h.bucketValue(9), 1u);
}

TEST(Histogram, QuantileInterpolates) {
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) h.add(static_cast<double>(i) + 0.5);
  EXPECT_NEAR(h.quantile(0.5), 50.0, 1.5);
  EXPECT_NEAR(h.quantile(0.9), 90.0, 1.5);
  EXPECT_NEAR(h.quantile(0.0), 0.0, 1.0);
}

TEST(Histogram, WeightedAdd) {
  Histogram h(0.0, 10.0, 10);
  h.add(1.0, 7);
  EXPECT_EQ(h.total(), 7u);
  EXPECT_EQ(h.bucketValue(1), 7u);
}

TEST(EmpiricalCdf, QuantilesExact) {
  EmpiricalCdf cdf;
  for (const double x : {5.0, 1.0, 3.0, 2.0, 4.0}) cdf.add(x);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(1.0), 5.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.5), 3.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.25), 2.0);
}

TEST(EmpiricalCdf, FractionAtOrBelow) {
  EmpiricalCdf cdf;
  for (int i = 1; i <= 10; ++i) cdf.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(cdf.fractionAtOrBelow(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.fractionAtOrBelow(5.0), 0.5);
  EXPECT_DOUBLE_EQ(cdf.fractionAtOrBelow(10.0), 1.0);
}

TEST(EmpiricalCdf, CurveIsMonotone) {
  EmpiricalCdf cdf;
  for (int i = 0; i < 37; ++i) cdf.add(static_cast<double>((i * 13) % 7));
  const auto curve = cdf.curve(20);
  ASSERT_EQ(curve.size(), 20u);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].first, curve[i - 1].first);
    EXPECT_GE(curve[i].second, curve[i - 1].second);
  }
}

TEST(WeightedMean, Weighting) {
  WeightedMean mean;
  mean.add(1.0, 1.0);
  mean.add(0.0, 3.0);
  EXPECT_DOUBLE_EQ(mean.mean(), 0.25);
  EXPECT_DOUBLE_EQ(mean.totalWeight(), 4.0);
}

TEST(WeightedMean, EmptyIsZero) {
  WeightedMean mean;
  EXPECT_DOUBLE_EQ(mean.mean(), 0.0);
}

}  // namespace
}  // namespace dg::util
