#include "util/strings.hpp"

#include <gtest/gtest.h>

#include "util/sim_time.hpp"

namespace dg::util {
namespace {

TEST(Split, PreservesEmptyFields) {
  const auto parts = split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(Split, SingleField) {
  const auto parts = split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(SplitWhitespace, DropsRuns) {
  const auto parts = splitWhitespace("  a \t b\n  c  ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(SplitWhitespace, EmptyInput) {
  EXPECT_TRUE(splitWhitespace("").empty());
  EXPECT_TRUE(splitWhitespace("   \t\n").empty());
}

TEST(Trim, BothEnds) {
  EXPECT_EQ(trim("  x y  "), "x y");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("abc"), "abc");
}

TEST(StartsWith, Basic) {
  EXPECT_TRUE(startsWith("--flag", "--"));
  EXPECT_FALSE(startsWith("-", "--"));
  EXPECT_TRUE(startsWith("abc", ""));
}

TEST(ToLower, MixedCase) { EXPECT_EQ(toLower("AbC-9"), "abc-9"); }

TEST(ParseDouble, ValidAndInvalid) {
  double out = 0;
  EXPECT_TRUE(parseDouble("3.5", out));
  EXPECT_DOUBLE_EQ(out, 3.5);
  EXPECT_TRUE(parseDouble(" -0.25 ", out));
  EXPECT_DOUBLE_EQ(out, -0.25);
  EXPECT_FALSE(parseDouble("abc", out));
  EXPECT_FALSE(parseDouble("1.5x", out));
  EXPECT_FALSE(parseDouble("", out));
}

TEST(ParseInt64, ValidAndInvalid) {
  std::int64_t out = 0;
  EXPECT_TRUE(parseInt64("42", out));
  EXPECT_EQ(out, 42);
  EXPECT_TRUE(parseInt64("-7", out));
  EXPECT_EQ(out, -7);
  EXPECT_FALSE(parseInt64("4.2", out));
  EXPECT_FALSE(parseInt64("", out));
}

TEST(Format, FixedAndPercent) {
  EXPECT_EQ(formatFixed(3.14159, 2), "3.14");
  EXPECT_EQ(formatPercent(0.9912, 2), "99.12%");
  EXPECT_EQ(formatPercent(0.5, 0), "50%");
}

TEST(Pad, LeftAndRight) {
  EXPECT_EQ(padLeft("x", 3), "  x");
  EXPECT_EQ(padRight("x", 3), "x  ");
  EXPECT_EQ(padLeft("abcd", 3), "abcd");
}

TEST(FormatDuration, CommonValues) {
  EXPECT_EQ(formatDuration(milliseconds(65)), "65ms");
  EXPECT_EQ(formatDuration(seconds(10)), "10s");
  EXPECT_EQ(formatDuration(minutes(2)), "2min");
  EXPECT_EQ(formatDuration(hours(3)), "3h");
  EXPECT_EQ(formatDuration(days(28)), "28d");
  EXPECT_EQ(formatDuration(500), "500us");
  EXPECT_EQ(formatDuration(kNever), "never");
}

}  // namespace
}  // namespace dg::util
