#include "util/config.hpp"

#include <gtest/gtest.h>

namespace dg::util {
namespace {

TEST(Config, ParsesKeyValues) {
  const auto config = Config::fromString(
      "# comment\n"
      "alpha = 1\n"
      "  beta=two words  \n"
      "\n"
      "gamma = 2.5\n");
  EXPECT_EQ(config.getInt("alpha", 0), 1);
  EXPECT_EQ(config.getString("beta"), "two words");
  EXPECT_DOUBLE_EQ(config.getDouble("gamma", 0.0), 2.5);
}

TEST(Config, MissingKeysUseFallback) {
  const Config config;
  EXPECT_EQ(config.getInt("nope", 9), 9);
  EXPECT_EQ(config.getString("nope", "dflt"), "dflt");
  EXPECT_TRUE(config.getBool("nope", true));
  EXPECT_FALSE(config.has("nope"));
}

TEST(Config, MalformedLineThrowsWithLineNumber) {
  try {
    Config::fromString("good = 1\nbad line\n");
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(Config, BadNumberThrows) {
  const auto config = Config::fromString("x = abc\n");
  EXPECT_THROW(config.getInt("x", 0), std::runtime_error);
  EXPECT_THROW(config.getDouble("x", 0.0), std::runtime_error);
  EXPECT_THROW(config.getBool("x", false), std::runtime_error);
}

TEST(Config, BoolSpellings) {
  const auto config = Config::fromString(
      "a = true\nb = YES\nc = 0\nd = off\n");
  EXPECT_TRUE(config.getBool("a", false));
  EXPECT_TRUE(config.getBool("b", false));
  EXPECT_FALSE(config.getBool("c", true));
  EXPECT_FALSE(config.getBool("d", true));
}

TEST(Config, ApplyArgsOverridesAndFlags) {
  auto config = Config::fromString("x = 1\n");
  const char* argv[] = {"prog", "--x=2", "--verbose", "positional"};
  std::vector<std::string> positional;
  config.applyArgs(4, argv, &positional);
  EXPECT_EQ(config.getInt("x", 0), 2);
  EXPECT_TRUE(config.getBool("verbose", false));
  ASSERT_EQ(positional.size(), 1u);
  EXPECT_EQ(positional[0], "positional");
}

TEST(Config, KeysSorted) {
  auto config = Config::fromString("b = 1\na = 2\n");
  const auto keys = config.keys();
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_EQ(keys[0], "a");
  EXPECT_EQ(keys[1], "b");
}

TEST(Config, RoundTripToString) {
  const auto config = Config::fromString("k = v\n");
  const auto again = Config::fromString(config.toString());
  EXPECT_EQ(again.getString("k"), "v");
}

}  // namespace
}  // namespace dg::util
