#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace dg::util {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  double sum = 0;
  for (int i = 0; i < 10'000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10'000.0, 0.5, 0.02);
}

TEST(Rng, UniformIntRange) {
  Rng rng(7);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 10'000; ++i) {
    const auto v = rng.uniformInt(std::uint64_t{10});
    ASSERT_LT(v, 10u);
    ++counts[v];
  }
  for (const int c : counts) {
    EXPECT_GT(c, 800);
    EXPECT_LT(c, 1200);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(9);
  bool sawLo = false, sawHi = false;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniformInt(std::int64_t{-3}, std::int64_t{3});
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    if (v == -3) sawLo = true;
    if (v == 3) sawHi = true;
  }
  EXPECT_TRUE(sawLo);
  EXPECT_TRUE(sawHi);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(11);
  int hits = 0;
  for (int i = 0; i < 20'000; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / 20'000.0, 0.3, 0.02);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, ExponentialMean) {
  Rng rng(17);
  double sum = 0;
  for (int i = 0; i < 50'000; ++i) sum += rng.exponential(5.0);
  EXPECT_NEAR(sum / 50'000.0, 5.0, 0.2);
}

TEST(Rng, NormalMoments) {
  Rng rng(19);
  double sum = 0, sq = 0;
  const int n = 50'000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(10.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.2);
}

TEST(Rng, LognormalMedian) {
  Rng rng(23);
  std::vector<double> samples;
  for (int i = 0; i < 10'001; ++i) samples.push_back(
      rng.lognormalMedian(100.0, 1.0));
  std::sort(samples.begin(), samples.end());
  EXPECT_NEAR(samples[5000], 100.0, 6.0);
  for (const double s : samples) EXPECT_GT(s, 0.0);
}

TEST(Rng, WeightedIndexRespectsWeights) {
  Rng rng(29);
  const std::vector<double> weights{1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 10'000; ++i) ++counts[rng.weightedIndex(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / 10'000.0, 0.75, 0.03);
}

TEST(Rng, ForkStreamsIndependent) {
  Rng parent(31);
  Rng childA = parent.fork();
  Rng childB = parent.fork();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (childA.next() == childB.next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

}  // namespace
}  // namespace dg::util
