// Corruption fixtures: every damage class maps to its own StoreErrorKind
// (and therefore its own `dgnet trace` exit code), with an actionable
// message.
#include <gtest/gtest.h>

#include <cstddef>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "store/crc32.hpp"
#include "store/format.hpp"
#include "store/reader.hpp"
#include "store/writer.hpp"
#include "test_support.hpp"
#include "trace/stream.hpp"

namespace dg {
namespace {

std::vector<std::byte> validPackedBytes() {
  const test::Diamond diamond;
  trace::Trace trace(util::seconds(10), 10,
                     trace::healthyBaseline(diamond.g, 1e-4));
  trace.setCondition(diamond.sa, 1, {0.5, util::milliseconds(30)});
  trace.setCondition(diamond.bd, 7, {0.9, util::milliseconds(15)});
  std::ostringstream out(std::ios::binary);
  store::WriterOptions options;
  options.chunkIntervals = 4;
  store::StoreWriter writer(out, options);
  trace::streamTrace(trace, writer);
  const std::string s = out.str();
  const auto* data = reinterpret_cast<const std::byte*>(s.data());
  return {data, data + s.size()};
}

void patchU32(std::vector<std::byte>& bytes, std::size_t offset,
              std::uint32_t value) {
  bytes[offset] = static_cast<std::byte>(value & 0xFF);
  bytes[offset + 1] = static_cast<std::byte>((value >> 8) & 0xFF);
  bytes[offset + 2] = static_cast<std::byte>((value >> 16) & 0xFF);
  bytes[offset + 3] = static_cast<std::byte>((value >> 24) & 0xFF);
}

std::uint32_t readU32At(const std::vector<std::byte>& bytes,
                        std::size_t offset) {
  return store::getU32(std::span<const std::byte>(bytes), offset);
}

std::uint64_t readU64At(const std::vector<std::byte>& bytes,
                        std::size_t offset) {
  return store::getU64(std::span<const std::byte>(bytes), offset);
}

/// Opens + fully verifies, returning the failure kind (the fixture
/// assertions want exactly one distinct kind per damage class).
testing::AssertionResult failsWith(std::vector<std::byte> bytes,
                                   store::StoreErrorKind kind,
                                   const std::string& messageNeedle) {
  try {
    store::PackedTraceReader reader(
        store::makeBufferSource(std::move(bytes)));
    reader.verify();
  } catch (const store::StoreError& e) {
    if (e.kind() != kind)
      return testing::AssertionFailure()
             << "expected " << store::storeErrorKindName(kind) << ", got "
             << store::storeErrorKindName(e.kind()) << ": " << e.what();
    if (std::string(e.what()).find(messageNeedle) == std::string::npos)
      return testing::AssertionFailure()
             << "message '" << e.what() << "' lacks '" << messageNeedle
             << "'";
    return testing::AssertionSuccess();
  }
  return testing::AssertionFailure() << "no StoreError thrown";
}

TEST(StoreCorruption, IntactFixturePassesVerification) {
  store::PackedTraceReader reader(
      store::makeBufferSource(validPackedBytes()));
  EXPECT_EQ(reader.verify().chunksVerified, 3u);
}

TEST(StoreCorruption, BadMagicIsDetected) {
  auto bytes = validPackedBytes();
  bytes[0] = static_cast<std::byte>('X');
  EXPECT_TRUE(failsWith(std::move(bytes), store::StoreErrorKind::BadMagic,
                        "not a dgtrace file"));
}

TEST(StoreCorruption, FutureVersionIsRejectedWithItsOwnKind) {
  auto bytes = validPackedBytes();
  patchU32(bytes, 8, store::kFormatVersion + 41);
  // Recompute the header CRC so the ONLY problem is the version: the
  // reader must still refuse, telling the user to upgrade.
  patchU32(bytes, 36,
           store::crc32(std::span<const std::byte>(bytes).first(36)));
  EXPECT_TRUE(failsWith(std::move(bytes),
                        store::StoreErrorKind::VersionMismatch,
                        "version 42"));
}

TEST(StoreCorruption, TruncationIsDetectedAtAnyCut) {
  const auto whole = validPackedBytes();
  for (const std::size_t keep :
       {whole.size() - 1, whole.size() - store::kTrailerBytes,
        whole.size() / 2, store::kHeaderBytes, std::size_t{20},
        std::size_t{3}}) {
    auto bytes = whole;
    bytes.resize(keep);
    EXPECT_TRUE(failsWith(std::move(bytes),
                          store::StoreErrorKind::Truncated, ""))
        << "cut to " << keep << " bytes";
  }
}

TEST(StoreCorruption, FlippedBaselineByteFailsItsChecksum) {
  auto bytes = validPackedBytes();
  const std::size_t baselinePayload = store::kHeaderBytes + 8;
  bytes[baselinePayload] ^= std::byte{0x40};
  EXPECT_TRUE(failsWith(std::move(bytes),
                        store::StoreErrorKind::ChecksumMismatch,
                        "baseline block"));
}

TEST(StoreCorruption, FlippedChunkByteFailsItsChecksum) {
  auto bytes = validPackedBytes();
  const std::uint32_t baselineBytes = readU32At(bytes, store::kHeaderBytes);
  const std::size_t chunkStart = store::kHeaderBytes + 8 + baselineBytes;
  bytes[chunkStart + 8] ^= std::byte{0x01};  // first chunk payload byte
  EXPECT_TRUE(failsWith(std::move(bytes),
                        store::StoreErrorKind::ChecksumMismatch, "chunk 0"));
}

TEST(StoreCorruption, IndexDisagreementIsCorruptNotChecksum) {
  auto bytes = validPackedBytes();
  // Bump chunk 0's record count in the footer index and re-CRC the
  // footer: every checksum is now valid, but the index lies.
  const std::size_t footerOffset = static_cast<std::size_t>(
      readU64At(bytes, bytes.size() - store::kTrailerBytes));
  const std::uint32_t footerBytes = readU32At(bytes, footerOffset);
  const std::size_t recordCountAt = footerOffset + 8 + 12;
  patchU32(bytes, recordCountAt, readU32At(bytes, recordCountAt) + 1);
  patchU32(bytes, footerOffset + 4,
           store::crc32(std::span<const std::byte>(bytes).subspan(
               footerOffset + 8, footerBytes)));
  EXPECT_TRUE(failsWith(std::move(bytes), store::StoreErrorKind::Corrupt,
                        "record count disagrees"));
}

TEST(StoreCorruption, MissingFileIsAnIoError) {
  try {
    store::PackedTraceReader::open("/nonexistent/definitely-missing.dgtrace");
    FAIL() << "open of a missing file succeeded";
  } catch (const store::StoreError& e) {
    EXPECT_EQ(e.kind(), store::StoreErrorKind::Io);
  }
}

TEST(StoreCorruption, ExitCodesAreDistinctAndNonZero) {
  const store::StoreErrorKind kinds[] = {
      store::StoreErrorKind::Io,        store::StoreErrorKind::BadMagic,
      store::StoreErrorKind::VersionMismatch,
      store::StoreErrorKind::Truncated,
      store::StoreErrorKind::ChecksumMismatch,
      store::StoreErrorKind::Corrupt};
  std::set<int> codes;
  for (const store::StoreErrorKind kind : kinds) {
    const int code = store::storeErrorExitCode(kind);
    EXPECT_NE(code, 0) << store::storeErrorKindName(kind);
    codes.insert(code);
  }
  EXPECT_EQ(codes.size(), std::size(kinds));
}

}  // namespace
}  // namespace dg
