// dgtrace writer/reader round trips, cursor equivalence and telemetry.
#include <gtest/gtest.h>

#include <cstddef>
#include <sstream>
#include <vector>

#include "store/reader.hpp"
#include "store/writer.hpp"
#include "telemetry/metrics.hpp"
#include "test_support.hpp"
#include "trace/condition_timeline.hpp"
#include "trace/stream.hpp"
#include "trace/synth.hpp"
#include "trace/topology.hpp"

namespace dg {
namespace {

std::vector<std::byte> packToBytes(const trace::Trace& trace,
                                   store::WriterOptions options = {},
                                   telemetry::MetricsRegistry* metrics =
                                       nullptr) {
  std::ostringstream out(std::ios::binary);
  store::StoreWriter writer(out, options, metrics);
  trace::streamTrace(trace, writer);
  const std::string s = out.str();
  const auto* data = reinterpret_cast<const std::byte*>(s.data());
  return {data, data + s.size()};
}

store::PackedTraceReader readerFor(std::vector<std::byte> bytes,
                                   telemetry::MetricsRegistry* metrics =
                                       nullptr) {
  return store::PackedTraceReader(
      store::makeBufferSource(std::move(bytes)), metrics);
}

TEST(StoreRoundTrip, EmptyTraceSurvives) {
  const test::Diamond diamond;
  const trace::Trace original(util::seconds(10), 12,
                              trace::healthyBaseline(diamond.g, 1e-4));
  auto reader = readerFor(packToBytes(original));
  EXPECT_EQ(reader.info().intervalCount, 12u);
  EXPECT_EQ(reader.info().edgeCount, original.edgeCount());
  EXPECT_EQ(reader.info().recordCount, 0u);
  EXPECT_EQ(reader.readAll(), original);
}

TEST(StoreRoundTrip, DeviationsAndDictionaryLossesSurvive) {
  const test::Diamond diamond;
  trace::Trace original(util::seconds(10), 20,
                        trace::healthyBaseline(diamond.g, 1e-4));
  // 0.85 quantizes to ppm exactly; 1/3 and 1e-7 need the raw-double
  // dictionary; latency deltas exercise both signs.
  original.setCondition(diamond.sa, 0, {0.85, util::milliseconds(10)});
  original.setCondition(diamond.ad, 3, {1.0 / 3.0, util::milliseconds(250)});
  original.setCondition(diamond.sb, 3, {1e-7, util::milliseconds(1)});
  original.setCondition(diamond.ab, 19, {1.0, util::milliseconds(5)});
  auto reader = readerFor(packToBytes(original));
  EXPECT_EQ(reader.info().recordCount, 4u);
  EXPECT_EQ(reader.readAll(), original);
}

TEST(StoreRoundTrip, MultiChunkLayoutSurvives) {
  const test::Line line;
  trace::Trace original(util::seconds(1), 10,
                        trace::healthyBaseline(line.g, 1e-4));
  for (const std::size_t interval : {0u, 3u, 4u, 5u, 9u})
    original.setCondition(line.sm, interval,
                          {0.5, util::milliseconds(10 + interval)});
  store::WriterOptions options;
  options.chunkIntervals = 4;  // chunks: [0,4) [4,8) [8,10)
  auto reader = readerFor(packToBytes(original, options));
  EXPECT_EQ(reader.info().chunkCount, 3u);
  EXPECT_EQ(reader.info().recordCount, 5u);
  EXPECT_EQ(reader.readAll(), original);
  const auto report = reader.verify();
  EXPECT_EQ(report.chunksVerified, 3u);
  EXPECT_EQ(report.recordsDecoded, 5u);
}

TEST(StoreRoundTrip, SyntheticTraceSurvivesVerbatim) {
  const auto topology = trace::Topology::ltn12();
  trace::GeneratorParams params;
  params.seed = 77;
  params.duration = util::days(1);
  const auto synthetic = generateSyntheticTrace(topology.graph(), params);
  auto reader = readerFor(packToBytes(synthetic.trace));
  EXPECT_EQ(reader.readAll(), synthetic.trace);
}

TEST(StoreRoundTrip, StreamedGeneratorPacksByteIdenticallyToBatch) {
  const auto topology = trace::Topology::ltn12();
  trace::GeneratorParams params;
  params.seed = 20170605;
  params.duration = util::days(1);

  const auto synthetic = generateSyntheticTrace(topology.graph(), params);
  const std::vector<std::byte> batchBytes = packToBytes(synthetic.trace);

  std::ostringstream out(std::ios::binary);
  store::StoreWriter writer(out);
  trace::StreamGenerationStats stats;
  const auto events =
      streamSyntheticTrace(topology.graph(), params, writer, &stats);
  const std::string streamed = out.str();

  ASSERT_EQ(streamed.size(), batchBytes.size());
  EXPECT_TRUE(std::equal(batchBytes.begin(), batchBytes.end(),
                         reinterpret_cast<const std::byte*>(streamed.data())))
      << "streamed generator bytes differ from batch-generated pack";
  EXPECT_EQ(events, synthetic.events);
  // Bounded-memory evidence: the streaming path never buffered anywhere
  // near the full record set.
  EXPECT_GT(stats.emittedDeviations, 0u);
  EXPECT_LE(stats.peakPendingOps, stats.emittedDeviations);
}

TEST(StoreRoundTrip, PackedConditionSourceMatchesTraceBackedCursor) {
  const auto topology = trace::Topology::ltn12();
  trace::GeneratorParams params;
  params.seed = 9;
  params.duration = util::days(1);
  const auto synthetic = generateSyntheticTrace(topology.graph(), params);

  store::WriterOptions options;
  options.chunkIntervals = 100;  // force many chunk crossings
  auto reader = readerFor(packToBytes(synthetic.trace, options));
  store::PackedConditionSource source(reader);
  trace::ConditionTimeline packedCursor(source);
  trace::ConditionTimeline traceCursor(synthetic.trace);

  ASSERT_EQ(source.intervalCount(), synthetic.trace.intervalCount());
  // Sequential sweep plus a few long jumps (backwards across chunks).
  std::vector<std::size_t> seeks;
  for (std::size_t i = 0; i < synthetic.trace.intervalCount(); i += 7)
    seeks.push_back(i);
  seeks.push_back(0);
  seeks.push_back(synthetic.trace.intervalCount() - 1);
  seeks.push_back(101);
  seeks.push_back(99);
  for (const std::size_t interval : seeks) {
    packedCursor.seek(interval);
    traceCursor.seek(interval);
    const auto packedLoss = packedCursor.lossRates();
    const auto traceLoss = traceCursor.lossRates();
    const auto packedLatency = packedCursor.latencies();
    const auto traceLatency = traceCursor.latencies();
    ASSERT_EQ(packedLoss.size(), traceLoss.size());
    for (std::size_t e = 0; e < traceLoss.size(); ++e) {
      ASSERT_EQ(packedLoss[e], traceLoss[e])
          << "loss mismatch at interval " << interval << " edge " << e;
      ASSERT_EQ(packedLatency[e], traceLatency[e])
          << "latency mismatch at interval " << interval << " edge " << e;
    }
  }
}

TEST(StoreRoundTrip, WriterMemoryIsBoundedByChunk) {
  const auto topology = trace::Topology::ltn12();
  trace::GeneratorParams params;
  params.seed = 3;
  params.duration = util::days(7);  // week scale

  std::ostringstream out(std::ios::binary);
  store::WriterOptions options;
  options.chunkIntervals = 360;  // one hour of 10s intervals
  store::StoreWriter writer(out, options);
  trace::StreamGenerationStats stats;
  streamSyntheticTrace(topology.graph(), params, writer, &stats);

  // The writer buffers at most one chunk's records; with hour-sized
  // chunks that is a small fraction of the full week's record set.
  EXPECT_GT(writer.recordsWritten(), 0u);
  EXPECT_LT(writer.peakBufferedRecords(), writer.recordsWritten() / 4);
  // The generator's look-ahead window is the active events, not the
  // whole trace.
  EXPECT_LT(stats.peakPendingOps, stats.emittedDeviations);
}

TEST(StoreRoundTrip, TelemetryCountersAccount) {
  const test::Diamond diamond;
  trace::Trace original(util::seconds(10), 8,
                        trace::healthyBaseline(diamond.g, 1e-4));
  original.setCondition(diamond.sa, 2, {0.5, util::milliseconds(30)});

  telemetry::MetricsRegistry metrics;
  const std::vector<std::byte> bytes =
      packToBytes(original, store::WriterOptions{}, &metrics);
  EXPECT_EQ(metrics.counterValue("dg_store_bytes_written_total"),
            bytes.size());
  EXPECT_EQ(metrics.counterValue("dg_store_chunks_written_total"), 1u);
  EXPECT_EQ(metrics.counterValue("dg_store_records_written_total"), 1u);

  auto reader = readerFor(bytes, &metrics);
  reader.verify();
  EXPECT_GT(metrics.counterValue("dg_store_bytes_read_total"), 0u);
  EXPECT_EQ(metrics.counterValue("dg_store_chunks_verified_total"), 1u);
  EXPECT_EQ(metrics.counterValue("dg_store_checksum_failures_total"), 0u);
}

TEST(StoreRoundTrip, WriterRejectsContractViolations) {
  std::ostringstream out(std::ios::binary);
  store::StoreWriter writer(out);
  const std::vector<trace::LinkConditions> baseline(
      4, trace::LinkConditions{1e-4, util::milliseconds(10)});
  writer.begin(util::seconds(10), 5, baseline);
  const std::vector<trace::Deviation> deviations{
      {2, {0.5, util::milliseconds(10)}}};
  writer.interval(1, deviations);
  EXPECT_THROW(writer.interval(1, deviations), std::logic_error);
  EXPECT_THROW(writer.interval(0, deviations), std::logic_error);
  EXPECT_THROW(writer.interval(5, deviations), std::out_of_range);
  const std::vector<trace::Deviation> unsorted{
      {3, {0.5, util::milliseconds(10)}}, {1, {0.5, util::milliseconds(10)}}};
  EXPECT_THROW(writer.interval(2, unsorted), std::logic_error);
}

}  // namespace
}  // namespace dg
