// Property-based dgtrace round trip: random traces -> writer -> reader
// must reproduce a bit-identical Trace, for any geometry, chunking and
// loss-value mix (ppm-quantizable and raw-double dictionary escapes).
#include <gtest/gtest.h>

#include <cstddef>
#include <sstream>
#include <string>
#include <vector>

#include "proptest.hpp"
#include "store/reader.hpp"
#include "store/writer.hpp"
#include "trace/trace.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace dg {
namespace {

struct DeviationSpec {
  std::size_t interval = 0;
  graph::EdgeId edge = 0;
  trace::LinkConditions conditions;
};

/// A random trace case: geometry plus an explicit deviation list, so the
/// shrinker can drop deviations without re-running the generator.
struct TraceCase {
  util::SimTime intervalLength = util::seconds(10);
  std::size_t intervalCount = 1;
  std::uint32_t chunkIntervals = 1;
  std::vector<trace::LinkConditions> baseline;
  std::vector<DeviationSpec> deviations;
};

trace::Trace materialize(const TraceCase& c) {
  trace::Trace trace(c.intervalLength, c.intervalCount, c.baseline);
  for (const DeviationSpec& d : c.deviations)
    trace.setCondition(d.edge, d.interval, d.conditions);
  return trace;
}

double randomLoss(util::Rng& rng) {
  switch (rng.uniformInt(0, 3)) {
    case 0:
      return 0.0;
    case 1:  // short decimal: survives ppm quantization exactly
      return static_cast<double>(rng.uniformInt(0, 1000)) / 1000.0;
    case 2:  // raw double in [0,1): dictionary path
      return rng.uniform();
    default:  // tiny sub-ppm values: dictionary path
      return rng.uniform() * 1e-6;
  }
}

TraceCase generateCase(util::Rng& rng) {
  TraceCase c;
  c.intervalLength = util::seconds(rng.uniformInt(1, 30));
  c.intervalCount = static_cast<std::size_t>(rng.uniformInt(1, 60));
  c.chunkIntervals = static_cast<std::uint32_t>(rng.uniformInt(1, 16));
  const int edges = static_cast<int>(rng.uniformInt(1, 12));
  for (int e = 0; e < edges; ++e) {
    c.baseline.push_back(trace::LinkConditions{
        randomLoss(rng), util::milliseconds(rng.uniformInt(1, 200))});
  }
  const int deviations = static_cast<int>(rng.uniformInt(0, 40));
  for (int d = 0; d < deviations; ++d) {
    DeviationSpec spec;
    spec.interval = static_cast<std::size_t>(
        rng.uniformInt(0, static_cast<std::int64_t>(c.intervalCount) - 1));
    spec.edge = static_cast<graph::EdgeId>(rng.uniformInt(0, edges - 1));
    spec.conditions.lossRate = randomLoss(rng);
    spec.conditions.latency =
        util::milliseconds(rng.uniformInt(0, 5000)) -
        util::milliseconds(rng.uniformInt(0, 100));
    c.deviations.push_back(spec);
  }
  return c;
}

std::string checkRoundTrip(const TraceCase& c) {
  const trace::Trace original = materialize(c);
  std::ostringstream out(std::ios::binary);
  store::WriterOptions options;
  options.chunkIntervals = c.chunkIntervals;
  try {
    store::StoreWriter writer(out, options);
    trace::streamTrace(original, writer);
  } catch (const std::exception& e) {
    return std::string("writer threw: ") + e.what();
  }
  const std::string bytes = out.str();
  const auto* data = reinterpret_cast<const std::byte*>(bytes.data());
  try {
    store::PackedTraceReader reader(
        store::makeBufferSource({data, data + bytes.size()}));
    if (reader.verify().recordsDecoded != reader.info().recordCount)
      return "verify record count disagrees with the index";
    if (!(reader.readAll() == original))
      return "decoded trace differs from the original";
  } catch (const std::exception& e) {
    return std::string("reader threw: ") + e.what();
  }
  return test::prop::pass();
}

std::string describeCase(const TraceCase& c) {
  std::string out = "  intervals=" + std::to_string(c.intervalCount) +
                    " edges=" + std::to_string(c.baseline.size()) +
                    " chunkIntervals=" + std::to_string(c.chunkIntervals) +
                    " deviations=" + std::to_string(c.deviations.size()) +
                    "\n";
  for (const DeviationSpec& d : c.deviations) {
    out += "    interval=" + std::to_string(d.interval) +
           " edge=" + std::to_string(d.edge) +
           " loss=" + util::formatFixed(d.conditions.lossRate, 9) +
           " latency=" + std::to_string(d.conditions.latency) + "us\n";
  }
  return out;
}

/// Shrink by dropping deviations (halves, then single elements): the
/// failing geometry stays, the deviation list minimizes.
std::vector<TraceCase> shrinkCase(const TraceCase& c) {
  std::vector<TraceCase> candidates;
  if (c.deviations.empty()) return candidates;
  const std::size_t half = c.deviations.size() / 2;
  if (half > 0) {
    TraceCase firstHalf = c;
    firstHalf.deviations.assign(c.deviations.begin(),
                                c.deviations.begin() +
                                    static_cast<std::ptrdiff_t>(half));
    candidates.push_back(std::move(firstHalf));
    TraceCase secondHalf = c;
    secondHalf.deviations.assign(c.deviations.begin() +
                                     static_cast<std::ptrdiff_t>(half),
                                 c.deviations.end());
    candidates.push_back(std::move(secondHalf));
  }
  for (std::size_t i = 0; i < c.deviations.size(); ++i) {
    TraceCase dropOne = c;
    dropOne.deviations.erase(dropOne.deviations.begin() +
                             static_cast<std::ptrdiff_t>(i));
    candidates.push_back(std::move(dropOne));
  }
  return candidates;
}

TEST(StoreProperty, RandomTracesRoundTripBitIdentically) {
  test::prop::Config config;
  config.cases = 150;
  test::prop::forAll("packed round trip is lossless", generateCase,
                     checkRoundTrip, describeCase, shrinkCase, config);
}

}  // namespace
}  // namespace dg
