#include "chaos/invariants.hpp"

#include <gtest/gtest.h>

#include "chaos/bridge.hpp"
#include "chaos/injector.hpp"
#include "core/transport.hpp"
#include "net/packet.hpp"
#include "trace/topology.hpp"
#include "trace/trace.hpp"

namespace dg::chaos {
namespace {

core::TransportConfig testConfig(const ChaosSchedule& schedule) {
  core::TransportConfig config;
  config.monitorMode = core::MonitorMode::Centralized;
  config.decisionInterval = schedule.intervalLength();
  config.seed = 42;
  return config;
}

trace::Trace healthyTrace(const trace::Topology& topology,
                          const ChaosSchedule& schedule) {
  return trace::Trace(schedule.intervalLength(), schedule.intervalCount(),
                      trace::healthyBaseline(topology.graph()));
}

TEST(InvariantChecker, CleanDifferentialRunHasNoViolations) {
  const auto topology = trace::Topology::ltn12();
  ChaosScheduleParams params;
  params.seed = 1;
  params.horizon = util::seconds(60);
  params.faults = 3;
  const ChaosSchedule schedule = ChaosSchedule::random(topology, params);

  DifferentialParams diff;
  diff.mcSamples = 1000;
  const DifferentialResult result = runDifferential(
      topology, schedule,
      {{"NYC", "SJC", routing::SchemeKind::DynamicSinglePath}}, diff);
  EXPECT_TRUE(result.violations.empty())
      << result.violations.front().invariant << ": "
      << result.violations.front().detail;
  EXPECT_GT(result.invariantChecksRun, 0u);
  EXPECT_TRUE(result.passed());
}

TEST(InvariantChecker, MonitorConsistencyProbesRunAndPass) {
  const auto topology = trace::Topology::ltn12();
  ChaosSchedule schedule(util::seconds(80), util::seconds(10));
  ChaosFault blackout;
  blackout.kind = ChaosFault::Kind::SiteBlackout;
  blackout.start = 0;
  blackout.duration = util::seconds(40);
  blackout.node = topology.at("LON");
  blackout.lossRate = 1.0;
  schedule.add(blackout);

  const trace::Trace healthy = healthyTrace(topology, schedule);
  core::TransportService service(topology, healthy, testConfig(schedule));
  ChaosInjector injector(service, schedule);
  injector.arm();
  InvariantChecker checker(service, schedule);
  checker.attach();
  const auto flow = service.openFlow(
      "NYC", "SJC", routing::SchemeKind::DynamicSinglePath);
  service.run(schedule.horizon());
  checker.finalize();

  EXPECT_TRUE(checker.violations().empty())
      << checker.violations().front().invariant << ": "
      << checker.violations().front().detail;
  // Both the impaired probe (t = 40s - 1) and the recovered probe
  // (t = 65s) fired on the blackout's adjacent edges, plus the per-
  // delivery checks of the flow.
  EXPECT_GT(checker.checksRun(), service.stats(flow).delivered());
}

TEST(InvariantChecker, DetectsDuplicateDelivery) {
  const auto topology = trace::Topology::ltn12();
  const ChaosSchedule schedule(util::seconds(60), util::seconds(10));
  const trace::Trace healthy = healthyTrace(topology, schedule);
  core::TransportService service(topology, healthy, testConfig(schedule));
  InvariantChecker checker(service, schedule);
  checker.attach();
  const auto flow = service.openFlow(
      "NYC", "SJC", routing::SchemeKind::DynamicSinglePath);
  service.run(util::milliseconds(200));
  ASSERT_GT(service.stats(flow).deliveredOnTime, 0u);

  // Replay sequence 0 straight into the delivery path, as a buggy
  // forwarding engine would.
  net::Packet duplicate;
  duplicate.type = net::Packet::Type::Data;
  duplicate.flow = flow;
  duplicate.sequence = 0;
  duplicate.originTime = service.simulator().now() - util::milliseconds(1);
  service.onDelivered(flow, duplicate);
  checker.finalize();

  ASSERT_EQ(checker.violations().size(), 2u);
  // Once live (the repeated sequence) and once from finalize() (the
  // distinct-sequence count no longer matches FlowStats).
  EXPECT_EQ(checker.violations()[0].invariant, "duplicate-delivery");
  EXPECT_EQ(checker.violations()[1].invariant, "duplicate-delivery");
}

TEST(InvariantChecker, DetectsDeliveryOfNeverSentSequence) {
  const auto topology = trace::Topology::ltn12();
  const ChaosSchedule schedule(util::seconds(60), util::seconds(10));
  const trace::Trace healthy = healthyTrace(topology, schedule);
  core::TransportService service(topology, healthy, testConfig(schedule));
  InvariantChecker checker(service, schedule);
  checker.attach();
  const auto flow = service.openFlow(
      "NYC", "SJC", routing::SchemeKind::DynamicSinglePath);
  service.run(util::milliseconds(200));

  net::Packet rogue;
  rogue.type = net::Packet::Type::Data;
  rogue.flow = flow;
  rogue.sequence = 10'000'000;
  rogue.originTime = service.simulator().now() - util::milliseconds(1);
  service.onDelivered(flow, rogue);
  checker.finalize();

  ASSERT_EQ(checker.violations().size(), 1u);
  EXPECT_EQ(checker.violations()[0].invariant, "sequence-sanity");
}

TEST(InvariantChecker, ViolationsCountInTelemetry) {
  const auto topology = trace::Topology::ltn12();
  const ChaosSchedule schedule(util::seconds(60), util::seconds(10));
  const trace::Trace healthy = healthyTrace(topology, schedule);
  core::TransportService service(topology, healthy, testConfig(schedule));
  telemetry::Telemetry telemetry;
  InvariantChecker checker(service, schedule);
  checker.setTelemetry(&telemetry);
  checker.attach();
  const auto flow = service.openFlow(
      "NYC", "SJC", routing::SchemeKind::DynamicSinglePath);
  service.run(util::milliseconds(200));
  ASSERT_GT(service.stats(flow).deliveredOnTime, 0u);

  net::Packet duplicate;
  duplicate.type = net::Packet::Type::Data;
  duplicate.flow = flow;
  duplicate.sequence = 0;
  duplicate.originTime = service.simulator().now();
  service.onDelivered(flow, duplicate);

  EXPECT_EQ(telemetry.metrics
                .counter("dg_chaos_invariant_violations_total",
                         {{"invariant", "duplicate-delivery"}})
                .value(),
            1.0);
  EXPECT_GT(
      telemetry.metrics.counter("dg_chaos_invariant_checks_total").value(),
      0.0);
}

}  // namespace
}  // namespace dg::chaos
