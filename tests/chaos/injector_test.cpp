#include "chaos/injector.hpp"

#include <gtest/gtest.h>

#include "chaos/bridge.hpp"
#include "chaos/schedule.hpp"
#include "core/transport.hpp"
#include "telemetry/telemetry.hpp"
#include "trace/topology.hpp"
#include "trace/trace.hpp"

namespace dg::chaos {
namespace {

graph::EdgeId edgeBetween(const trace::Topology& topology,
                          std::string_view a, std::string_view b) {
  const auto edge =
      topology.graph().findEdge(topology.at(a), topology.at(b));
  EXPECT_TRUE(edge.has_value()) << a << "-" << b;
  return *edge;
}

/// A hand-written, interval-aligned schedule whose faults never overlap
/// on any edge (so live override folding and trace compilation agree not
/// just statistically but bit for bit; see chaos/bridge.hpp).
ChaosSchedule conditionOnlySchedule(const trace::Topology& topology) {
  ChaosSchedule schedule(util::seconds(60), util::seconds(10));

  ChaosFault loss;
  loss.kind = ChaosFault::Kind::LinkLoss;
  loss.start = util::seconds(10);
  loss.duration = util::seconds(20);
  loss.link = edgeBetween(topology, "NYC", "CHI");
  loss.lossRate = 0.7;
  schedule.add(loss);

  ChaosFault latency;
  latency.kind = ChaosFault::Kind::LinkLatency;
  latency.start = util::seconds(20);
  latency.duration = util::seconds(30);
  latency.link = edgeBetween(topology, "DEN", "SJC");
  latency.latencyPenalty = util::milliseconds(80);
  schedule.add(latency);

  ChaosFault degrade;
  degrade.kind = ChaosFault::Kind::SiteDegrade;
  degrade.start = 0;
  degrade.duration = util::seconds(20);
  degrade.node = topology.at("SEA");
  degrade.lossRate = 0.6;
  schedule.add(degrade);

  ChaosFault blackout;
  blackout.kind = ChaosFault::Kind::SiteBlackout;
  blackout.start = util::seconds(30);
  blackout.duration = util::seconds(20);
  blackout.node = topology.at("LON");
  blackout.lossRate = 1.0;
  schedule.add(blackout);

  ChaosFault flap;
  flap.kind = ChaosFault::Kind::LinkFlap;
  flap.start = util::seconds(10);
  flap.duration = util::seconds(40);
  flap.link = edgeBetween(topology, "DFW", "LAX");
  flap.lossRate = 0.9;
  flap.flapOn = util::seconds(10);
  flap.flapOff = util::seconds(10);
  schedule.add(flap);

  return schedule;
}

core::TransportConfig testConfig(const ChaosSchedule& schedule) {
  core::TransportConfig config;
  config.monitorMode = core::MonitorMode::Centralized;
  config.decisionInterval = schedule.intervalLength();
  config.seed = 42;
  return config;
}

// The central equivalence claim of the harness: a live run over a
// healthy trace with the injector armed is indistinguishable -- exact
// same per-flow counters -- from a live run over the schedule compiled
// into a trace, because both fold the identical impairments with
// combineConditions in the same order.
TEST(ChaosInjector, InjectorMatchesCompiledTrace) {
  const auto topology = trace::Topology::ltn12();
  const ChaosSchedule schedule = conditionOnlySchedule(topology);

  const trace::Trace healthy(
      schedule.intervalLength(), schedule.intervalCount(),
      trace::healthyBaseline(topology.graph()));
  const trace::Trace compiled = compileToTrace(schedule, topology);

  core::TransportService injected(topology, healthy, testConfig(schedule));
  ChaosInjector injector(injected, schedule);
  injector.arm();
  const auto flowA = injected.openFlow(
      "NYC", "SJC", routing::SchemeKind::DynamicSinglePath);
  injected.run(schedule.horizon());

  core::TransportService precompiled(topology, compiled,
                                     testConfig(schedule));
  const auto flowB = precompiled.openFlow(
      "NYC", "SJC", routing::SchemeKind::DynamicSinglePath);
  precompiled.run(schedule.horizon());

  const core::FlowStats& a = injected.stats(flowA);
  const core::FlowStats& b = precompiled.stats(flowB);
  EXPECT_EQ(a.sent, b.sent);
  EXPECT_EQ(a.deliveredOnTime, b.deliveredOnTime);
  EXPECT_EQ(a.deliveredLate, b.deliveredLate);
  EXPECT_EQ(a.transmissions, b.transmissions);
  EXPECT_GT(a.sent, 0u);
  EXPECT_GT(a.deliveredOnTime, 0u);
}

TEST(ChaosInjector, CountsTransitionsAndFaults) {
  const auto topology = trace::Topology::ltn12();
  const ChaosSchedule schedule = conditionOnlySchedule(topology);
  const trace::Trace healthy(
      schedule.intervalLength(), schedule.intervalCount(),
      trace::healthyBaseline(topology.graph()));

  core::TransportService service(topology, healthy, testConfig(schedule));
  telemetry::Telemetry telemetry;
  ChaosInjector injector(service, schedule);
  injector.setTelemetry(&telemetry);
  injector.arm();
  service.run(schedule.horizon());

  const InjectorStats& stats = injector.stats();
  // Every fault starts once. The flap re-starts at each on-phase: phases
  // [10,20) and [30,40) within [10,50) given on=off=10s.
  EXPECT_EQ(stats.faultsStarted, 6u);
  EXPECT_EQ(stats.faultsEnded, 6u);
  EXPECT_GE(stats.transitions, stats.faultsStarted + stats.faultsEnded);

  EXPECT_EQ(telemetry.metrics
                .counter("dg_chaos_faults_injected_total",
                         {{"kind", "link-flap"}})
                .value(),
            2.0);
  EXPECT_EQ(telemetry.metrics.counter("dg_chaos_transitions_total").value(),
            static_cast<double>(stats.transitions));
}

TEST(ChaosInjector, ActiveAtTracksSimulatorTime) {
  const auto topology = trace::Topology::ltn12();
  ChaosSchedule schedule(util::seconds(40), util::seconds(10));
  ChaosFault loss;
  loss.kind = ChaosFault::Kind::LinkLoss;
  loss.start = util::seconds(10);
  loss.duration = util::seconds(10);
  loss.link = 0;
  loss.lossRate = 0.9;
  schedule.add(loss);

  const trace::Trace healthy(
      schedule.intervalLength(), schedule.intervalCount(),
      trace::healthyBaseline(topology.graph()));
  core::TransportService service(topology, healthy, testConfig(schedule));
  ChaosInjector injector(service, schedule);
  injector.arm();

  EXPECT_FALSE(injector.activeAt(0));
  service.run(util::seconds(15));
  EXPECT_TRUE(injector.activeAt(0));
  EXPECT_TRUE(service.network().conditionOverride(0).has_value());
  EXPECT_DOUBLE_EQ(service.network().conditionOverride(0)->lossRate, 0.9);
  service.run(util::seconds(10));
  EXPECT_FALSE(injector.activeAt(0));
  EXPECT_FALSE(service.network().conditionOverride(0).has_value());
}

TEST(ChaosInjector, NodeCrashFlipsNodeAndRestores) {
  const auto topology = trace::Topology::ltn12();
  ChaosSchedule schedule(util::seconds(60), util::seconds(10));
  ChaosFault crash;
  crash.kind = ChaosFault::Kind::NodeCrash;
  crash.start = util::seconds(10);
  crash.duration = util::seconds(20);
  crash.node = topology.at("DEN");
  crash.lossRate = 1.0;
  schedule.add(crash);

  const trace::Trace healthy(
      schedule.intervalLength(), schedule.intervalCount(),
      trace::healthyBaseline(topology.graph()));
  core::TransportService service(topology, healthy, testConfig(schedule));
  ChaosInjector injector(service, schedule);
  injector.arm();

  service.run(util::seconds(15));
  EXPECT_TRUE(service.node(topology.at("DEN")).crashed());
  // The crash's links are also dark, so packets die at the link layer
  // before reaching the daemon: crashDropped() counts only packets that
  // slip through (none here), while the crashed flag must still flip.
  service.run(util::seconds(20));
  EXPECT_FALSE(service.node(topology.at("DEN")).crashed());
}

TEST(ChaosInjector, OverlappingFaultsComposeOnSharedEdges) {
  const auto topology = trace::Topology::ltn12();
  const graph::EdgeId link = edgeBetween(topology, "NYC", "CHI");
  ChaosSchedule schedule(util::seconds(40), util::seconds(10));
  ChaosFault first;
  first.kind = ChaosFault::Kind::LinkLoss;
  first.start = util::seconds(10);
  first.duration = util::seconds(20);
  first.link = link;
  first.lossRate = 0.5;
  schedule.add(first);
  ChaosFault second = first;
  second.lossRate = 0.4;
  schedule.add(second);

  const trace::Trace healthy(
      schedule.intervalLength(), schedule.intervalCount(),
      trace::healthyBaseline(topology.graph()));
  core::TransportService service(topology, healthy, testConfig(schedule));
  ChaosInjector injector(service, schedule);
  injector.arm();
  service.run(util::seconds(15));

  const auto override_ = service.network().conditionOverride(link);
  ASSERT_TRUE(override_.has_value());
  // Independent Bernoulli composition: 1 - 0.5 * 0.6.
  EXPECT_NEAR(override_->lossRate, 0.7, 1e-12);
}

TEST(ChaosInjector, RejectsScheduleForWrongTopology) {
  const auto topology = trace::Topology::ltn12();
  ChaosSchedule schedule(util::seconds(10), util::seconds(10));
  ChaosFault loss;
  loss.kind = ChaosFault::Kind::LinkLoss;
  loss.start = 0;
  loss.duration = util::seconds(10);
  loss.link = static_cast<graph::EdgeId>(topology.graph().edgeCount() + 2);
  loss.lossRate = 0.5;
  schedule.add(loss);

  const trace::Trace healthy(
      schedule.intervalLength(), schedule.intervalCount(),
      trace::healthyBaseline(topology.graph()));
  core::TransportService service(topology, healthy, testConfig(schedule));
  EXPECT_THROW(ChaosInjector(service, schedule), std::invalid_argument);
}

}  // namespace
}  // namespace dg::chaos
