#include "chaos/schedule.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <set>

#include "trace/topology.hpp"

namespace dg::chaos {
namespace {

ChaosFault linkLoss(util::SimTime start, util::SimTime duration,
                    graph::EdgeId link, double loss) {
  ChaosFault fault;
  fault.kind = ChaosFault::Kind::LinkLoss;
  fault.start = start;
  fault.duration = duration;
  fault.link = link;
  fault.lossRate = loss;
  return fault;
}

TEST(ChaosSchedule, RandomIsDeterministic) {
  const auto topology = trace::Topology::ltn12();
  ChaosScheduleParams params;
  params.seed = 99;
  const ChaosSchedule a = ChaosSchedule::random(topology, params);
  const ChaosSchedule b = ChaosSchedule::random(topology, params);
  EXPECT_EQ(a.toString(), b.toString());

  params.seed = 100;
  const ChaosSchedule c = ChaosSchedule::random(topology, params);
  EXPECT_NE(a.toString(), c.toString());
}

TEST(ChaosSchedule, RandomIsAlignedAndValid) {
  const auto topology = trace::Topology::ltn12();
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    ChaosScheduleParams params;
    params.seed = seed;
    const ChaosSchedule schedule = ChaosSchedule::random(topology, params);
    EXPECT_EQ(schedule.faults().size(),
              static_cast<std::size_t>(params.faults));
    EXPECT_TRUE(schedule.alignedToIntervals()) << "seed " << seed;
    EXPECT_NO_THROW(schedule.validateAgainst(topology.graph()));
    // Start-sorted, and every fault starts inside the horizon.
    util::SimTime last = 0;
    for (const ChaosFault& fault : schedule.faults()) {
      EXPECT_GE(fault.start, last);
      EXPECT_LT(fault.start, schedule.horizon());
      last = fault.start;
    }
  }
}

TEST(ChaosSchedule, HardFaultsOnlyAvoidsSoftLoss) {
  const auto topology = trace::Topology::ltn12();
  ChaosScheduleParams params;
  params.seed = 5;
  params.faults = 20;
  params.hardFaultsOnly = true;
  const ChaosSchedule schedule = ChaosSchedule::random(topology, params);
  for (const ChaosFault& fault : schedule.faults()) {
    if (fault.kind == ChaosFault::Kind::LinkLatency ||
        fault.kind == ChaosFault::Kind::MonitorDelay) {
      continue;
    }
    EXPECT_DOUBLE_EQ(fault.lossRate, 1.0)
        << faultKindName(fault.kind) << " in a hard-faults-only schedule";
  }
}

TEST(ChaosSchedule, ToStringRoundTripsExactly) {
  const auto topology = trace::Topology::ltn12();
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    ChaosScheduleParams params;
    params.seed = seed;
    params.monitorDelayWeight = 1.0;  // exercise every kind's keys
    const ChaosSchedule schedule = ChaosSchedule::random(topology, params);
    const std::string text = schedule.toString();
    const ChaosSchedule parsed = ChaosSchedule::fromString(text);
    EXPECT_EQ(parsed.toString(), text) << "seed " << seed;
    EXPECT_EQ(parsed.horizon(), schedule.horizon());
    EXPECT_EQ(parsed.intervalLength(), schedule.intervalLength());
    EXPECT_EQ(parsed.faults().size(), schedule.faults().size());
  }
}

TEST(ChaosSchedule, SaveLoadRoundTrip) {
  const auto topology = trace::Topology::ltn12();
  ChaosScheduleParams params;
  params.seed = 3;
  const ChaosSchedule schedule = ChaosSchedule::random(topology, params);
  const std::string path =
      (std::filesystem::path(::testing::TempDir()) / "sched.txt").string();
  schedule.save(path);
  const ChaosSchedule loaded = ChaosSchedule::load(path);
  EXPECT_EQ(loaded.toString(), schedule.toString());
  std::filesystem::remove(path);
}

TEST(ChaosSchedule, FromStringAcceptsCommentsAndBlankLines) {
  const ChaosSchedule schedule = ChaosSchedule::fromString(
      "# a scripted scenario\n"
      "chaos v1 60000000 10000000\n"
      "\n"
      "fault link-loss 10000000 20000000 link=4 loss=0.75\n"
      "fault site-blackout 30000000 10000000 node=2 loss=1\n");
  EXPECT_EQ(schedule.horizon(), util::seconds(60));
  EXPECT_EQ(schedule.intervalLength(), util::seconds(10));
  ASSERT_EQ(schedule.faults().size(), 2u);
  EXPECT_EQ(schedule.faults()[0].kind, ChaosFault::Kind::LinkLoss);
  EXPECT_EQ(schedule.faults()[0].link, 4u);
  EXPECT_DOUBLE_EQ(schedule.faults()[0].lossRate, 0.75);
  EXPECT_EQ(schedule.faults()[1].kind, ChaosFault::Kind::SiteBlackout);
  EXPECT_EQ(schedule.faults()[1].node, 2u);
}

TEST(ChaosSchedule, FromStringRejectsGarbage) {
  // Parse errors surface as std::runtime_error naming the bad line.
  EXPECT_THROW(ChaosSchedule::fromString("not a schedule"),
               std::runtime_error);
  EXPECT_THROW(ChaosSchedule::fromString("chaos v2 10 10\n"),
               std::runtime_error);
  EXPECT_THROW(ChaosSchedule::fromString(
                   "chaos v1 60000000 10000000\n"
                   "fault warp-core-breach 0 10000000\n"),
               std::runtime_error);
  EXPECT_THROW(ChaosSchedule::fromString(
                   "chaos v1 60000000 10000000\n"
                   "fault link-loss 0 10000000 link=0 loss=many\n"),
               std::runtime_error);
}

TEST(ChaosSchedule, AddRejectsMalformedFaults) {
  ChaosSchedule schedule(util::minutes(1), util::seconds(10));
  EXPECT_THROW(schedule.add(linkLoss(0, 0, 0, 0.5)), std::invalid_argument);
  EXPECT_THROW(schedule.add(linkLoss(-1, util::seconds(10), 0, 0.5)),
               std::invalid_argument);

  ChaosFault noLink = linkLoss(0, util::seconds(10), graph::kInvalidEdge, 0.5);
  EXPECT_THROW(schedule.add(noLink), std::invalid_argument);

  ChaosFault noNode;
  noNode.kind = ChaosFault::Kind::SiteBlackout;
  noNode.duration = util::seconds(10);
  EXPECT_THROW(schedule.add(noNode), std::invalid_argument);

  ChaosFault flapless = linkLoss(0, util::seconds(10), 0, 1.0);
  flapless.kind = ChaosFault::Kind::LinkFlap;
  EXPECT_THROW(schedule.add(flapless), std::invalid_argument);
}

TEST(ChaosSchedule, AddKeepsFaultsStartSorted) {
  ChaosSchedule schedule(util::minutes(1), util::seconds(10));
  schedule.add(linkLoss(util::seconds(30), util::seconds(10), 0, 0.5));
  schedule.add(linkLoss(util::seconds(10), util::seconds(10), 2, 0.5));
  schedule.add(linkLoss(util::seconds(20), util::seconds(10), 4, 0.5));
  ASSERT_EQ(schedule.faults().size(), 3u);
  EXPECT_EQ(schedule.faults()[0].link, 2u);
  EXPECT_EQ(schedule.faults()[1].link, 4u);
  EXPECT_EQ(schedule.faults()[2].link, 0u);
}

TEST(ChaosSchedule, ValidateAgainstRejectsOutOfRangeTargets) {
  const auto topology = trace::Topology::ltn12();
  const auto& g = topology.graph();

  ChaosSchedule badLink(util::minutes(1), util::seconds(10));
  badLink.add(linkLoss(0, util::seconds(10),
                       static_cast<graph::EdgeId>(g.edgeCount()), 0.5));
  EXPECT_THROW(badLink.validateAgainst(g), std::invalid_argument);

  ChaosSchedule badNode(util::minutes(1), util::seconds(10));
  ChaosFault crash;
  crash.kind = ChaosFault::Kind::NodeCrash;
  crash.duration = util::seconds(10);
  crash.node = static_cast<graph::NodeId>(g.nodeCount());
  crash.lossRate = 1.0;
  badNode.add(crash);
  EXPECT_THROW(badNode.validateAgainst(g), std::invalid_argument);
}

TEST(ChaosSchedule, IntervalCountIsCeiling) {
  const ChaosSchedule exact(util::seconds(60), util::seconds(10));
  EXPECT_EQ(exact.intervalCount(), 6u);
  const ChaosSchedule ragged(util::seconds(61), util::seconds(10));
  EXPECT_EQ(ragged.intervalCount(), 7u);
}

TEST(ChaosFaultHelpers, FlapActivePhases) {
  ChaosFault flap;
  flap.kind = ChaosFault::Kind::LinkFlap;
  flap.start = util::seconds(10);
  flap.duration = util::seconds(40);
  flap.link = 0;
  flap.lossRate = 1.0;
  flap.flapOn = util::seconds(10);
  flap.flapOff = util::seconds(10);

  EXPECT_FALSE(faultActiveAt(flap, util::seconds(5)));
  EXPECT_TRUE(faultActiveAt(flap, util::seconds(15)));   // first on-phase
  EXPECT_FALSE(faultActiveAt(flap, util::seconds(25)));  // off-phase
  EXPECT_TRUE(faultActiveAt(flap, util::seconds(35)));   // second on-phase
  EXPECT_FALSE(faultActiveAt(flap, util::seconds(55)));  // after end
}

TEST(ChaosFaultHelpers, AffectedEdgesCoverBothDirections) {
  const auto topology = trace::Topology::ltn12();
  const auto& g = topology.graph();
  const ChaosFault fault = linkLoss(0, util::seconds(10), 0, 0.5);
  const auto edges = affectedEdges(fault, g);
  ASSERT_EQ(edges.size(), 2u);
  EXPECT_EQ(edges[0], 0u);
  EXPECT_EQ(edges[1], g.reverseEdge(0).value());
}

TEST(ChaosFaultHelpers, NodeFaultCoversAllAdjacentEdges) {
  const auto topology = trace::Topology::ltn12();
  const auto& g = topology.graph();
  const graph::NodeId nyc = topology.at("NYC");
  ChaosFault blackout;
  blackout.kind = ChaosFault::Kind::SiteBlackout;
  blackout.start = 0;
  blackout.duration = util::seconds(10);
  blackout.node = nyc;
  blackout.lossRate = 1.0;
  const auto edges = affectedEdges(blackout, g);
  EXPECT_EQ(edges.size(), g.outDegree(nyc) + g.inDegree(nyc));
  for (const graph::EdgeId e : edges) {
    const graph::Edge& edge = g.edge(e);
    EXPECT_TRUE(edge.from == nyc || edge.to == nyc);
  }
  EXPECT_TRUE(std::is_sorted(edges.begin(), edges.end()));
}

TEST(ChaosFaultHelpers, PartialOutageSparesAliveLinksDeterministically) {
  const auto topology = trace::Topology::ltn12();
  const auto& g = topology.graph();
  const graph::NodeId nyc = topology.at("NYC");
  ChaosFault outage;
  outage.kind = ChaosFault::Kind::SitePartialOutage;
  outage.start = 0;
  outage.duration = util::seconds(10);
  outage.node = nyc;
  outage.lossRate = 1.0;
  outage.aliveLinks = 1;
  outage.salt = 1234;

  const auto edges = affectedEdges(outage, g);
  // One undirected link spared = two directed edges fewer than blackout.
  EXPECT_EQ(edges.size(), g.outDegree(nyc) + g.inDegree(nyc) - 2);
  EXPECT_EQ(affectedEdges(outage, g), edges);  // salt-deterministic

  ChaosFault reseeded = outage;
  reseeded.salt = 99;  // a different salt may spare a different link
  const auto other = affectedEdges(reseeded, g);
  EXPECT_EQ(other.size(), edges.size());
}

TEST(ChaosFaultHelpers, ImpairmentMatchesKind) {
  const ChaosFault loss = linkLoss(0, util::seconds(10), 0, 0.6);
  EXPECT_DOUBLE_EQ(impairmentOf(loss).lossRate, 0.6);

  ChaosFault latency;
  latency.kind = ChaosFault::Kind::LinkLatency;
  latency.duration = util::seconds(10);
  latency.link = 0;
  latency.latencyPenalty = util::milliseconds(50);
  EXPECT_EQ(impairmentOf(latency).latency, util::milliseconds(50));

  ChaosFault crash;
  crash.kind = ChaosFault::Kind::NodeCrash;
  crash.duration = util::seconds(10);
  crash.node = 0;
  crash.lossRate = 0.2;  // ignored: crashes are always total
  EXPECT_DOUBLE_EQ(impairmentOf(crash).lossRate, 1.0);
}

}  // namespace
}  // namespace dg::chaos
