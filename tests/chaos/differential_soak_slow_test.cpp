// The full differential chaos soak (ISSUE acceptance): 50 seeded random
// schedules on the 12-site topology, live stack vs playback prediction
// within the documented tolerance, zero invariant violations -- plus a
// recovery-enabled soak over hard-faults-only schedules (where the
// per-hop recovery protocol cannot change on-time outcomes, keeping the
// tolerance honest; see DESIGN.md "Chaos harness and invariants").
//
// Built only with -DDG_SLOW_TESTS=ON and labeled `slow`; run it with
//   ctest -L slow --output-on-failure
#include <gtest/gtest.h>

#include "chaos/bridge.hpp"
#include "chaos/schedule.hpp"
#include "trace/topology.hpp"

namespace dg::chaos {
namespace {

void runSoak(std::uint64_t seed, bool recovery, bool hardFaultsOnly) {
  SCOPED_TRACE("seed " + std::to_string(seed) +
               (recovery ? " (recovery on)" : ""));
  const auto topology = trace::Topology::ltn12();
  ChaosScheduleParams params;
  params.seed = seed;
  params.hardFaultsOnly = hardFaultsOnly;
  const ChaosSchedule schedule = ChaosSchedule::random(topology, params);

  DifferentialParams diff;
  diff.recoveryEnabled = recovery;
  const DifferentialResult result = runDifferential(
      topology, schedule,
      {{"NYC", "SJC", routing::SchemeKind::TargetedRedundancy},
       {"LON", "DFW", routing::SchemeKind::DynamicSinglePath}},
      diff);

  EXPECT_TRUE(result.violations.empty())
      << result.violations.front().invariant << ": "
      << result.violations.front().detail;
  for (const DifferentialFlowResult& flow : result.flows) {
    EXPECT_TRUE(flow.withinTolerance())
        << flow.spec.source << "->" << flow.spec.destination << " live "
        << flow.liveUnavailability << " vs predicted "
        << flow.predictedUnavailability << " (tolerance "
        << flow.tolerance() << ")";
  }
  EXPECT_GT(result.invariantChecksRun, 0u);
}

TEST(DifferentialSoak, FiftySeedsRecoveryOff) {
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    runSoak(seed, /*recovery=*/false, /*hardFaultsOnly=*/false);
    if (::testing::Test::HasFailure()) break;  // first failing seed is enough
  }
}

TEST(DifferentialSoak, HardFaultSeedsRecoveryOn) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    runSoak(seed, /*recovery=*/true, /*hardFaultsOnly=*/true);
    if (::testing::Test::HasFailure()) break;
  }
}

}  // namespace
}  // namespace dg::chaos
