// Transport edge cases under chaos: retransmission across a link flap,
// duplicate suppression under systematic two-path duplication, and
// crash-induced outage with reroute -- all with the invariant checker
// attached.
#include <gtest/gtest.h>

#include "chaos/injector.hpp"
#include "chaos/invariants.hpp"
#include "chaos/schedule.hpp"
#include "core/transport.hpp"
#include "graph/shortest_path.hpp"
#include "trace/topology.hpp"
#include "trace/trace.hpp"

namespace dg::chaos {
namespace {

trace::Trace healthyTrace(const trace::Topology& topology,
                          const ChaosSchedule& schedule) {
  return trace::Trace(schedule.intervalLength(), schedule.intervalCount(),
                      trace::healthyBaseline(topology.graph()));
}

core::TransportConfig testConfig(const ChaosSchedule& schedule,
                                 bool recovery) {
  core::TransportConfig config;
  config.monitorMode = core::MonitorMode::Centralized;
  config.decisionInterval = schedule.intervalLength();
  config.node.recoveryEnabled = recovery;
  config.seed = 42;
  return config;
}

/// The first hop of the baseline shortest NYC -> SJC path (where a
/// single-path flow's traffic is guaranteed to cross).
graph::EdgeId firstHopOfShortestPath(const trace::Topology& topology) {
  const auto& g = topology.graph();
  const auto weights = g.baseLatencies();
  const auto result = graph::shortestPath(
      g, topology.at("NYC"), topology.at("SJC"), weights);
  EXPECT_TRUE(result.found);
  EXPECT_GE(result.edges.size(), 2u);  // no direct NYC-SJC link in ltn12
  return result.edges.front();
}

core::FlowStats runFlapScenario(bool recovery) {
  const auto topology = trace::Topology::ltn12();
  ChaosSchedule schedule(util::seconds(60), util::seconds(10));
  ChaosFault flap;
  flap.kind = ChaosFault::Kind::LinkFlap;
  flap.start = util::seconds(10);
  flap.duration = util::seconds(40);
  flap.link = firstHopOfShortestPath(topology);
  flap.lossRate = 1.0;  // dead while on: only retransmission can recover
  flap.flapOn = util::seconds(10);
  flap.flapOff = util::seconds(10);
  schedule.add(flap);

  const trace::Trace healthy = healthyTrace(topology, schedule);
  core::TransportService service(topology, healthy,
                                 testConfig(schedule, recovery));
  ChaosInjector injector(service, schedule);
  injector.arm();
  InvariantChecker checker(service, schedule);
  checker.attach();
  // Static: the flow keeps using the impaired path, so every on-phase
  // packet is lost in flight and only per-hop recovery can bring it back.
  const auto flow = service.openFlow(
      "NYC", "SJC", routing::SchemeKind::StaticSinglePath);
  service.run(schedule.horizon() + util::seconds(1));
  checker.finalize();
  EXPECT_TRUE(checker.violations().empty())
      << checker.violations().front().invariant << ": "
      << checker.violations().front().detail;
  return service.stats(flow);
}

TEST(TransportChaos, RetransmitRecoversAcrossLinkFlap) {
  const core::FlowStats without = runFlapScenario(false);
  const core::FlowStats with = runFlapScenario(true);
  EXPECT_EQ(without.sent, with.sent);
  // Packets stranded by the flap's on-phases come back as (late)
  // retransmissions once the link flaps healthy again.
  EXPECT_GT(with.delivered(), without.delivered());
  EXPECT_GT(with.deliveredLate, without.deliveredLate);
  EXPECT_GT(with.transmissions, without.transmissions);
  // And the flap really did hurt: a clean 60 s run loses almost nothing.
  EXPECT_LT(without.delivered(), without.sent);
}

TEST(TransportChaos, TwoPathDuplicationIsSuppressedAtDelivery) {
  const auto topology = trace::Topology::ltn12();
  const ChaosSchedule schedule(util::seconds(20), util::seconds(10));
  const trace::Trace healthy = healthyTrace(topology, schedule);
  core::TransportService service(topology, healthy,
                                 testConfig(schedule, false));
  InvariantChecker checker(service, schedule);
  checker.attach();
  // Two node-disjoint paths: every packet reaches SJC along both, and
  // the delivery layer must count exactly the first copy.
  const auto flow = service.openFlow(
      "NYC", "SJC", routing::SchemeKind::StaticTwoDisjoint);
  service.run(schedule.horizon());
  checker.finalize();

  const core::FlowStats& stats = service.stats(flow);
  EXPECT_GT(stats.sent, 0u);
  EXPECT_LE(stats.delivered(), stats.sent);
  // On a healthy network both copies nearly always arrive; if duplicates
  // leaked into the stats, delivered() would approach 2x sent.
  EXPECT_GT(stats.deliveredOnTime, stats.sent * 9 / 10);
  EXPECT_GT(stats.costPerPacket(), 1.5);
  EXPECT_TRUE(checker.violations().empty())
      << checker.violations().front().invariant << ": "
      << checker.violations().front().detail;
}

TEST(TransportChaos, IntermediateCrashReroutesWithoutViolations) {
  const auto topology = trace::Topology::ltn12();
  const auto& g = topology.graph();
  const auto path = graph::shortestPath(
      g, topology.at("NYC"), topology.at("SJC"), g.baseLatencies());
  ASSERT_TRUE(path.found);
  const graph::NodeId relay = g.edge(path.edges.front()).to;

  ChaosSchedule schedule(util::seconds(90), util::seconds(10));
  ChaosFault crash;
  crash.kind = ChaosFault::Kind::NodeCrash;
  crash.start = util::seconds(20);
  crash.duration = util::seconds(30);
  crash.node = relay;
  crash.lossRate = 1.0;
  schedule.add(crash);

  const trace::Trace healthy = healthyTrace(topology, schedule);
  core::TransportService service(topology, healthy,
                                 testConfig(schedule, false));
  ChaosInjector injector(service, schedule);
  injector.arm();
  InvariantChecker checker(service, schedule);
  checker.attach();
  const auto flow = service.openFlow(
      "NYC", "SJC", routing::SchemeKind::DynamicSinglePath);

  service.run(util::seconds(50));
  const std::uint64_t deliveredDuringCrash = service.stats(flow).delivered();
  service.run(util::seconds(40));
  checker.finalize();

  const core::FlowStats& stats = service.stats(flow);
  // Losses happen between the crash and the next decision tick, then the
  // dynamic scheme routes around the dead relay.
  EXPECT_LT(stats.delivered(), stats.sent);
  EXPECT_GT(stats.deliveredOnTime, stats.sent / 2);
  // Delivery kept making progress after the crash window too.
  EXPECT_GT(stats.delivered(), deliveredDuringCrash);
  EXPECT_FALSE(service.node(relay).crashed());
  EXPECT_TRUE(checker.violations().empty())
      << checker.violations().front().invariant << ": "
      << checker.violations().front().detail;
}

}  // namespace
}  // namespace dg::chaos
