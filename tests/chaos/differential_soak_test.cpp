// Differential smoke runs: a handful of seeded random chaos schedules
// driven through the live stack and the playback model, checked for
// invariant violations and live-vs-predicted agreement. The full
// 50-seed soak (plus the recovery-on variant) lives in
// differential_soak_slow_test.cpp behind -DDG_SLOW_TESTS=ON.
#include <gtest/gtest.h>

#include "chaos/bridge.hpp"
#include "chaos/schedule.hpp"
#include "trace/topology.hpp"

namespace dg::chaos {
namespace {

TEST(DifferentialSmoke, SeededSchedulesAgreeWithPlayback) {
  const auto topology = trace::Topology::ltn12();
  for (const std::uint64_t seed : {7ULL, 11ULL, 23ULL}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    ChaosScheduleParams params;
    params.seed = seed;
    params.horizon = util::seconds(60);
    params.faults = 4;
    const ChaosSchedule schedule = ChaosSchedule::random(topology, params);

    DifferentialParams diff;
    diff.mcSamples = 2000;
    const DifferentialResult result = runDifferential(
        topology, schedule,
        {{"NYC", "SJC", routing::SchemeKind::TargetedRedundancy}}, diff);

    EXPECT_TRUE(result.violations.empty())
        << result.violations.front().invariant << ": "
        << result.violations.front().detail;
    ASSERT_EQ(result.flows.size(), 1u);
    const DifferentialFlowResult& flow = result.flows.front();
    EXPECT_GT(flow.sent, 0u);
    EXPECT_TRUE(flow.withinTolerance())
        << "live " << flow.liveUnavailability << " vs predicted "
        << flow.predictedUnavailability << " (tolerance "
        << flow.tolerance() << ")";
  }
}

TEST(DifferentialSmoke, IsBitReproducible) {
  const auto topology = trace::Topology::ltn12();
  ChaosScheduleParams params;
  params.seed = 7;
  params.horizon = util::seconds(60);
  params.faults = 4;
  const ChaosSchedule schedule = ChaosSchedule::random(topology, params);

  DifferentialParams diff;
  diff.mcSamples = 1000;
  const std::vector<DifferentialFlowSpec> flows = {
      {"NYC", "SJC", routing::SchemeKind::DynamicSinglePath}};
  const DifferentialResult a = runDifferential(topology, schedule, flows, diff);
  const DifferentialResult b = runDifferential(topology, schedule, flows, diff);

  ASSERT_EQ(a.flows.size(), b.flows.size());
  EXPECT_EQ(a.flows[0].sent, b.flows[0].sent);
  EXPECT_EQ(a.flows[0].deliveredOnTime, b.flows[0].deliveredOnTime);
  EXPECT_EQ(a.flows[0].deliveredLate, b.flows[0].deliveredLate);
  // Bit-equal doubles, not just close: the whole pipeline is
  // deterministic from (topology, schedule, seeds).
  EXPECT_EQ(a.flows[0].liveUnavailability, b.flows[0].liveUnavailability);
  EXPECT_EQ(a.flows[0].predictedUnavailability,
            b.flows[0].predictedUnavailability);
  EXPECT_EQ(a.flows[0].liveCost, b.flows[0].liveCost);
  EXPECT_EQ(a.flows[0].predictedCost, b.flows[0].predictedCost);
  EXPECT_EQ(a.invariantChecksRun, b.invariantChecksRun);
}

}  // namespace
}  // namespace dg::chaos
