// Distributed (Spines-like) monitoring: per-node measurement, flooded
// link-state updates, source-stamped dissemination graphs.
#include <gtest/gtest.h>

#include "core/transport.hpp"
#include "net/packet.hpp"
#include "test_support.hpp"
#include "trace/synth.hpp"

namespace dg::core {
namespace {

class DistributedMode : public ::testing::Test {
 protected:
  DistributedMode() : topology_(trace::Topology::ltn12()) {}

  trace::Trace healthyTrace(std::size_t intervals = 30) const {
    return trace::Trace(util::seconds(10), intervals,
                        trace::healthyBaseline(topology_.graph(), 1e-4));
  }

  TransportConfig distributedConfig() const {
    TransportConfig config;
    config.monitorMode = MonitorMode::Distributed;
    return config;
  }

  trace::Topology topology_;
};

TEST(GraphMask, EncodesMemberEdges) {
  test::Diamond d;
  graph::DisseminationGraph dg(d.g, d.s, d.d);
  dg.addPath({d.sa, d.ad});
  const auto mask = net::graphMaskOf(dg);
  EXPECT_EQ(mask, (std::uint64_t{1} << d.sa) | (std::uint64_t{1} << d.ad));
}

TEST(GraphMask, RejectsOversizedOverlays) {
  graph::Graph g;
  g.addNodes(34);
  for (graph::NodeId n = 0; n + 1 < 34; ++n) g.addBidirectional(n, n + 1, 1);
  ASSERT_GT(g.edgeCount(), 64u);
  graph::DisseminationGraph dg(g, 0, 33);
  EXPECT_THROW(net::graphMaskOf(dg), std::length_error);
}

TEST_F(DistributedMode, DeliversOnHealthyNetwork) {
  const auto trace = healthyTrace();
  TransportService service(topology_, trace, distributedConfig());
  const auto flow = service.openFlow(
      "NYC", "SJC", routing::SchemeKind::TargetedRedundancy);
  service.run(util::seconds(300) - util::milliseconds(200));
  const auto& stats = service.stats(flow);
  EXPECT_GT(stats.sent, 25'000u);
  EXPECT_GE(stats.onTimeRate(), 0.999);
  // The stamped mask must be in force.
  EXPECT_NE(service.context(flow).graphMask, 0u);
}

TEST_F(DistributedMode, LinkStateUpdatesPropagateToEveryNode) {
  const auto trace = healthyTrace();
  TransportService service(topology_, trace, distributedConfig());
  service.run(util::seconds(35));
  // After 3 decision ticks each node has accepted updates from the other
  // 11 nodes repeatedly.
  for (graph::NodeId n = 0; n < topology_.graph().nodeCount(); ++n) {
    EXPECT_GE(service.node(n).linkStateUpdatesAccepted(), 22u)
        << topology_.name(n);
  }
}

TEST_F(DistributedMode, NodesLearnRemoteConditions) {
  auto trace = healthyTrace(30);
  // A persistent 40% loss on CHI->DEN from t=0.
  const auto& g = topology_.graph();
  const auto chiDen = g.findEdge(topology_.at("CHI"), topology_.at("DEN"));
  for (std::size_t i = 0; i < trace.intervalCount(); ++i) {
    trace.setCondition(*chiDen, i,
                       trace::LinkConditions{0.4, g.edge(*chiDen).latency});
  }
  TransportService service(topology_, trace, distributedConfig());
  service.run(util::seconds(25));
  // A node far from the link (SEA) must see roughly the right loss rate
  // through the flooded updates.
  const auto view = service.node(topology_.at("SEA")).view();
  EXPECT_NEAR(view.lossRate(*chiDen), 0.4, 0.15);
  EXPECT_LT(view.lossRate(*chiDen + 1), 0.1);
}

TEST_F(DistributedMode, SilentLinkReadsAsFullLoss) {
  auto trace = healthyTrace(30);
  const auto& g = topology_.graph();
  const auto nycChi = g.findEdge(topology_.at("NYC"), topology_.at("CHI"));
  for (std::size_t i = 0; i < trace.intervalCount(); ++i) {
    trace.setCondition(*nycChi, i,
                       trace::LinkConditions{1.0, g.edge(*nycChi).latency});
  }
  TransportService service(topology_, trace, distributedConfig());
  service.run(util::seconds(25));
  const auto view = service.node(topology_.at("CHI")).view();
  EXPECT_GT(view.lossRate(*nycChi), 0.95);
}

TEST_F(DistributedMode, TargetedSwitchesViaDistributedDetection) {
  auto trace = healthyTrace(60);
  const auto& g = topology_.graph();
  const auto nyc = topology_.at("NYC");
  for (std::size_t i = 5; i < 40; ++i) {
    for (const graph::EdgeId e : g.outEdges(nyc)) {
      trace.setCondition(e, i, trace::LinkConditions{0.6, g.edge(e).latency});
      if (const auto r = g.reverseEdge(e))
        trace.setCondition(*r, i,
                           trace::LinkConditions{0.6, g.edge(*r).latency});
    }
  }
  TransportService targetedService(topology_, trace, distributedConfig());
  const auto targeted = targetedService.openFlow(
      "NYC", "SJC", routing::SchemeKind::TargetedRedundancy);
  targetedService.run(util::seconds(500));

  TransportService staticService(topology_, trace, distributedConfig());
  const auto twoStatic = staticService.openFlow(
      "NYC", "SJC", routing::SchemeKind::StaticTwoDisjoint);
  staticService.run(util::seconds(500));

  EXPECT_GT(targetedService.stats(targeted).onTimeRate(),
            staticService.stats(twoStatic).onTimeRate());
}

TEST_F(DistributedMode, ComparableToCentralizedOnHealthyNetwork) {
  const auto trace = healthyTrace();
  const auto run = [&](MonitorMode mode) {
    TransportConfig config;
    config.monitorMode = mode;
    TransportService service(topology_, trace, config);
    const auto flow = service.openFlow(
        "NYC", "SJC", routing::SchemeKind::DynamicTwoDisjoint);
    service.run(util::seconds(200));
    return service.stats(flow).onTimeRate();
  };
  const double centralized = run(MonitorMode::Centralized);
  const double distributed = run(MonitorMode::Distributed);
  EXPECT_NEAR(centralized, distributed, 0.002);
}

TEST_F(DistributedMode, StampedForwardingMatchesGraph) {
  // With a static single path, exactly path-length transmissions per
  // packet (mask forwarding must not leak onto other edges). Probes and
  // link-state traffic are excluded via the flow's own cost counter.
  const auto trace = healthyTrace(6);
  TransportService service(topology_, trace, distributedConfig());
  const auto flow = service.openFlow(
      "NYC", "SJC", routing::SchemeKind::StaticSinglePath);
  service.run(util::seconds(50));
  const auto& stats = service.stats(flow);
  ASSERT_GT(stats.sent, 0u);
  EXPECT_NEAR(stats.costPerPacket(), 3.0, 0.05);
}

}  // namespace
}  // namespace dg::core
