#include "core/metrics.hpp"

#include <gtest/gtest.h>

namespace dg::core {
namespace {

TEST(FlowStats, RatesOnNormalTraffic) {
  FlowStats stats;
  stats.sent = 100;
  stats.deliveredOnTime = 90;
  stats.deliveredLate = 5;
  stats.transmissions = 300;
  EXPECT_EQ(stats.delivered(), 95u);
  EXPECT_EQ(stats.lost(), 5u);
  EXPECT_DOUBLE_EQ(stats.onTimeRate(), 0.9);
  EXPECT_DOUBLE_EQ(stats.unavailability(), 1.0 - 0.9);
  EXPECT_DOUBLE_EQ(stats.costPerPacket(), 3.0);
}

TEST(FlowStats, ZeroTrafficIsFullyUnavailable) {
  // A flow that never sent has demonstrated no availability: the old
  // behavior reported 0.0 (a perfect score) for an idle flow, which made
  // "min unavailability across flows" silently pick idle flows.
  const FlowStats stats;
  EXPECT_EQ(stats.sent, 0u);
  EXPECT_DOUBLE_EQ(stats.onTimeRate(), 0.0);
  EXPECT_DOUBLE_EQ(stats.unavailability(), 1.0);
  EXPECT_DOUBLE_EQ(stats.costPerPacket(), 0.0);
}

TEST(FlowStats, LostNeverUnderflows) {
  FlowStats stats;
  stats.sent = 1;
  stats.deliveredOnTime = 2;  // duplicate-free invariant violated upstream
  EXPECT_EQ(stats.lost(), 0u);
}

}  // namespace
}  // namespace dg::core
