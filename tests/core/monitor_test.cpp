#include "core/monitor.hpp"

#include <gtest/gtest.h>

#include "test_support.hpp"

namespace dg::core {
namespace {

std::vector<trace::LinkConditions> lineBaseline(const graph::Graph& g) {
  return trace::healthyBaseline(g, 1e-4);
}

TEST(LinkMonitor, StartsAtBaseline) {
  test::Line line;
  const LinkMonitor monitor(line.g, lineBaseline(line.g));
  const auto view = monitor.view();
  EXPECT_DOUBLE_EQ(view.lossRate(line.sm), 1e-4);
  EXPECT_EQ(view.latency(line.sm), util::milliseconds(10));
}

TEST(LinkMonitor, EstimatesLossFromCounts) {
  test::Line line;
  LinkMonitor monitor(line.g, lineBaseline(line.g), /*minSamples=*/8);
  for (int i = 0; i < 100; ++i) monitor.recordTransmission(line.sm);
  for (int i = 0; i < 80; ++i)
    monitor.recordReception(line.sm, util::milliseconds(10));
  monitor.rollInterval();
  const auto view = monitor.view();
  EXPECT_NEAR(view.lossRate(line.sm), 0.2, 1e-9);
  EXPECT_EQ(view.latency(line.sm), util::milliseconds(10));
}

TEST(LinkMonitor, EstimatesLatencyAverage) {
  test::Line line;
  LinkMonitor monitor(line.g, lineBaseline(line.g));
  for (int i = 0; i < 10; ++i) {
    monitor.recordTransmission(line.md);
    monitor.recordReception(
        line.md, util::milliseconds(10) + util::milliseconds(i));
  }
  monitor.rollInterval();
  // Mean of 10..19 ms = 14.5 ms.
  EXPECT_EQ(monitor.view().latency(line.md), util::microseconds(14'500));
}

TEST(LinkMonitor, TooFewSamplesFallsBackToBaseline) {
  test::Line line;
  LinkMonitor monitor(line.g, lineBaseline(line.g), /*minSamples=*/8);
  for (int i = 0; i < 5; ++i) monitor.recordTransmission(line.sm);
  // All five lost -- but below minSamples, so baseline wins.
  monitor.rollInterval();
  EXPECT_DOUBLE_EQ(monitor.view().lossRate(line.sm), 1e-4);
}

TEST(LinkMonitor, TotalBlackoutKeepsBaselineLatency) {
  test::Line line;
  LinkMonitor monitor(line.g, lineBaseline(line.g), 4);
  for (int i = 0; i < 20; ++i) monitor.recordTransmission(line.sm);
  monitor.rollInterval();
  const auto view = monitor.view();
  EXPECT_DOUBLE_EQ(view.lossRate(line.sm), 1.0);
  EXPECT_EQ(view.latency(line.sm), util::milliseconds(10));
}

TEST(LinkMonitor, RollResetsCounters) {
  test::Line line;
  LinkMonitor monitor(line.g, lineBaseline(line.g), 4);
  for (int i = 0; i < 10; ++i) monitor.recordTransmission(line.sm);
  monitor.rollInterval();
  EXPECT_DOUBLE_EQ(monitor.view().lossRate(line.sm), 1.0);
  // Next interval has no samples: back to baseline.
  monitor.rollInterval();
  EXPECT_DOUBLE_EQ(monitor.view().lossRate(line.sm), 1e-4);
  EXPECT_EQ(monitor.attempts(line.sm), 0u);
}

TEST(LinkMonitor, ViewStableUntilNextRoll) {
  test::Line line;
  LinkMonitor monitor(line.g, lineBaseline(line.g), 4);
  for (int i = 0; i < 10; ++i) monitor.recordTransmission(line.sm);
  monitor.rollInterval();
  // New measurements accumulate but do not change the view until rolled.
  for (int i = 0; i < 10; ++i) {
    monitor.recordTransmission(line.sm);
    monitor.recordReception(line.sm, util::milliseconds(10));
  }
  EXPECT_DOUBLE_EQ(monitor.view().lossRate(line.sm), 1.0);
  monitor.rollInterval();
  EXPECT_DOUBLE_EQ(monitor.view().lossRate(line.sm), 0.0);
}

}  // namespace
}  // namespace dg::core
