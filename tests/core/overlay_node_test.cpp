#include "core/overlay_node.hpp"

#include <gtest/gtest.h>

#include <map>

#include "test_support.hpp"

namespace dg::core {
namespace {

/// Minimal directory for driving nodes directly in tests.
class TestDirectory final : public FlowDirectory {
 public:
  const FlowContext* flowContext(net::FlowId id) const override {
    const auto it = contexts_.find(id);
    return it == contexts_.end() ? nullptr : &it->second;
  }
  void onDelivered(net::FlowId id, const net::Packet& packet) override {
    deliveries.push_back({id, packet.sequence});
  }
  FlowContext& add(net::FlowId id, routing::Flow flow,
                   const graph::DisseminationGraph* dg,
                   util::SimTime deadline = util::milliseconds(65)) {
    FlowContext& context = contexts_[id];
    context.id = id;
    context.flow = flow;
    context.deadline = deadline;
    context.activeGraph = dg;
    return context;
  }

  std::vector<std::pair<net::FlowId, net::SequenceNumber>> deliveries;

 private:
  std::map<net::FlowId, FlowContext> contexts_;
};

/// A line overlay with per-node OverlayNode instances wired to the
/// network.
struct LineHarness {
  test::Line line;
  trace::Trace trace;
  net::Simulator sim;
  net::SimulatedNetwork network;
  TestDirectory directory;
  std::vector<std::unique_ptr<OverlayNode>> nodes;
  graph::DisseminationGraph dg;

  explicit LineHarness(OverlayNodeConfig config = {},
                       double residualLoss = 0.0)
      : trace(test::healthyTrace(line.g, 1000, util::seconds(10),
                                 residualLoss)),
        network(sim, line.g, trace, 99),
        dg(line.g, line.s, line.d) {
    dg.addPath({line.sm, line.md});
    directory.add(0, routing::Flow{line.s, line.d}, &dg);
    for (graph::NodeId n = 0; n < line.g.nodeCount(); ++n) {
      nodes.push_back(
          std::make_unique<OverlayNode>(n, network, directory, config));
      network.setDeliveryHandler(
          n, [this, n](graph::EdgeId e, const net::Packet& p) {
            nodes[n]->handlePacket(e, p);
          });
    }
  }

  void send(net::SequenceNumber seq) {
    nodes[line.s]->originate(*directory.flowContext(0), seq, sim.now());
  }
};

TEST(OverlayNode, DeliversAlongPath) {
  LineHarness h;
  h.send(0);
  h.sim.runUntil(util::seconds(1));
  ASSERT_EQ(h.directory.deliveries.size(), 1u);
  EXPECT_EQ(h.directory.deliveries[0].second, 0u);
  // Two transmissions: S->M, M->D.
  EXPECT_EQ(h.network.transmissionCount(), 2u);
}

TEST(OverlayNode, DropsUnknownFlow) {
  LineHarness h;
  net::Packet packet;
  packet.type = net::Packet::Type::Data;
  packet.flow = 42;
  h.network.transmit(h.line.sm, packet);
  h.sim.runUntil(util::seconds(1));
  EXPECT_TRUE(h.directory.deliveries.empty());
  EXPECT_EQ(h.network.transmissionCount(), 1u);  // not forwarded
}

TEST(OverlayNode, RecoversFromSingleLoss) {
  LineHarness h;
  // Interval 0: 50% loss on S->M; send enough packets that gaps occur.
  h.trace.setCondition(h.line.sm, 0,
                       trace::LinkConditions{0.5, util::milliseconds(10)});
  for (net::SequenceNumber seq = 0; seq < 100; ++seq) {
    h.sim.scheduleAt(static_cast<util::SimTime>(seq) *
                         util::milliseconds(10),
                     [&h, seq] { h.send(seq); });
  }
  h.sim.runUntil(util::seconds(20));
  // All 100 packets fall inside the lossy interval, so retransmissions
  // also face 50% loss: expected delivery ~ (1-p) + p(1-p) = 75%.
  EXPECT_GE(h.directory.deliveries.size(), 62u);
  EXPECT_LE(h.directory.deliveries.size(), 88u);
  EXPECT_GT(h.nodes[h.line.m]->nacksSent(), 0u);
  EXPECT_GT(h.nodes[h.line.s]->retransmissionsSent(), 0u);
}

TEST(OverlayNode, NoRecoveryWhenDisabled) {
  OverlayNodeConfig config;
  config.recoveryEnabled = false;
  LineHarness h(config);
  h.trace.setCondition(h.line.sm, 0,
                       trace::LinkConditions{0.5, util::milliseconds(10)});
  for (net::SequenceNumber seq = 0; seq < 100; ++seq) {
    h.sim.scheduleAt(static_cast<util::SimTime>(seq) *
                         util::milliseconds(10),
                     [&h, seq] { h.send(seq); });
  }
  h.sim.runUntil(util::seconds(20));
  EXPECT_EQ(h.nodes[h.line.m]->nacksSent(), 0u);
  EXPECT_EQ(h.nodes[h.line.s]->retransmissionsSent(), 0u);
  // Roughly half the packets are simply gone.
  EXPECT_LT(h.directory.deliveries.size(), 80u);
  EXPECT_GT(h.directory.deliveries.size(), 20u);
}

TEST(OverlayNode, DuplicateSuppressionOnMultipath) {
  // Diamond with both paths in the graph: destination receives two
  // copies, delivers once, drops one duplicate.
  test::Diamond d;
  const auto trace = test::healthyTrace(d.g, 10);
  net::Simulator sim;
  net::SimulatedNetwork network(sim, d.g, trace, 1);
  TestDirectory directory;
  graph::DisseminationGraph dg(d.g, d.s, d.d);
  dg.addPath({d.sa, d.ad});
  dg.addPath({d.sb, d.bd});
  directory.add(0, routing::Flow{d.s, d.d}, &dg);
  std::vector<std::unique_ptr<OverlayNode>> nodes;
  for (graph::NodeId n = 0; n < d.g.nodeCount(); ++n) {
    nodes.push_back(
        std::make_unique<OverlayNode>(n, network, directory, OverlayNodeConfig{}));
    network.setDeliveryHandler(n,
                               [&nodes, n](graph::EdgeId e, const net::Packet& p) {
                                 nodes[n]->handlePacket(e, p);
                               });
  }
  nodes[d.s]->originate(*directory.flowContext(0), 0, sim.now());
  sim.runUntil(util::seconds(1));
  EXPECT_EQ(directory.deliveries.size(), 1u);
  EXPECT_EQ(nodes[d.d]->duplicatesDropped(), 1u);
  EXPECT_EQ(network.transmissionCount(), 4u);
}

TEST(OverlayNode, ExpiredPacketsNotForwarded) {
  LineHarness h;
  // Deadline shorter than the first hop: M drops instead of forwarding.
  auto& context = h.directory.add(1, routing::Flow{h.line.s, h.line.d},
                                  &h.dg, util::milliseconds(5));
  h.nodes[h.line.s]->originate(context, 0, h.sim.now());
  h.sim.runUntil(util::seconds(1));
  EXPECT_TRUE(h.directory.deliveries.empty());
  EXPECT_EQ(h.network.transmissionCount(), 1u);
  EXPECT_EQ(h.nodes[h.line.m]->expiredDropped(), 1u);
}

TEST(OverlayNode, NoEchoRule) {
  // Flooding graph on the line: M must not send the packet back to S.
  test::Line line;
  const auto trace = test::healthyTrace(line.g, 10);
  net::Simulator sim;
  net::SimulatedNetwork network(sim, line.g, trace, 1);
  TestDirectory directory;
  const auto dg = graph::floodingGraph(line.g, line.s, line.d);
  directory.add(0, routing::Flow{line.s, line.d}, &dg);
  std::vector<std::unique_ptr<OverlayNode>> nodes;
  for (graph::NodeId n = 0; n < line.g.nodeCount(); ++n) {
    nodes.push_back(std::make_unique<OverlayNode>(n, network, directory,
                                                  OverlayNodeConfig{}));
    network.setDeliveryHandler(
        n, [&nodes, n](graph::EdgeId e, const net::Packet& p) {
          nodes[n]->handlePacket(e, p);
        });
  }
  nodes[line.s]->originate(*directory.flowContext(0), 0, sim.now());
  sim.runUntil(util::seconds(1));
  // S->M, then M->D only (not M->S). D has no member out-edge except
  // back to M, suppressed. Total: 2 transmissions.
  EXPECT_EQ(network.transmissionCount(), 2u);
  EXPECT_EQ(directory.deliveries.size(), 1u);
}

TEST(OverlayNode, RecoveryRequestedOncePerSequence) {
  LineHarness h;
  // Drop exactly seq 1 by blacking out its interval... instead simulate
  // explicitly: deliver 0, skip 1, deliver 2 and 3 by injecting at M.
  const auto* context = h.directory.flowContext(0);
  net::Packet p0;
  p0.type = net::Packet::Type::Data;
  p0.flow = context->id;
  p0.sequence = 0;
  p0.originTime = 0;
  auto p2 = p0;
  p2.sequence = 2;
  auto p3 = p0;
  p3.sequence = 3;
  h.nodes[h.line.m]->handlePacket(h.line.sm, p0);
  h.nodes[h.line.m]->handlePacket(h.line.sm, p2);  // gap: requests 1
  h.nodes[h.line.m]->handlePacket(h.line.sm, p3);  // no new gap
  EXPECT_EQ(h.nodes[h.line.m]->nacksSent(), 1u);
}

}  // namespace
}  // namespace dg::core
