#include "core/transport.hpp"

#include <gtest/gtest.h>

#include "trace/synth.hpp"

namespace dg::core {
namespace {

class TransportOnLtn : public ::testing::Test {
 protected:
  TransportOnLtn() : topology_(trace::Topology::ltn12()) {}

  trace::Trace healthyTrace(std::size_t intervals = 30) const {
    return trace::Trace(util::seconds(10), intervals,
                        trace::healthyBaseline(topology_.graph(), 1e-4));
  }

  trace::Topology topology_;
};

TEST_F(TransportOnLtn, DeliversOnHealthyNetwork) {
  const auto trace = healthyTrace();
  TransportService service(topology_, trace);
  const auto flow = service.openFlow(
      "NYC", "SJC", routing::SchemeKind::TargetedRedundancy);
  service.run(util::seconds(30));
  service.setSending(flow, false);
  service.run(util::seconds(1));
  const auto& stats = service.stats(flow);
  EXPECT_GT(stats.sent, 2500u);
  EXPECT_GE(stats.onTimeRate(), 0.999);
  EXPECT_EQ(stats.deliveredLate, 0u);
  // Two disjoint paths: cost per packet is the sum of both path lengths.
  EXPECT_GE(stats.costPerPacket(), 4.0);
  EXPECT_LT(stats.costPerPacket(), 12.0);
  // Latency within the deadline.
  EXPECT_LT(stats.latencyUs.mean(), 65'000.0);
}

TEST_F(TransportOnLtn, RejectsSelfFlow) {
  const auto trace = healthyTrace(5);
  TransportService service(topology_, trace);
  EXPECT_THROW(service.openFlow("NYC", "NYC",
                                routing::SchemeKind::StaticSinglePath),
               std::invalid_argument);
  EXPECT_THROW(service.openFlow("NYC", "XXX",
                                routing::SchemeKind::StaticSinglePath),
               std::out_of_range);
}

TEST_F(TransportOnLtn, SingleVsTwoDisjointCost) {
  const auto trace = healthyTrace();
  TransportService service(topology_, trace);
  const auto one =
      service.openFlow("NYC", "SJC", routing::SchemeKind::StaticSinglePath);
  const auto two =
      service.openFlow("NYC", "SJC", routing::SchemeKind::StaticTwoDisjoint);
  service.run(util::seconds(20));
  EXPECT_GT(service.stats(two).costPerPacket(),
            service.stats(one).costPerPacket() * 1.5);
  EXPECT_GE(service.stats(one).onTimeRate(), 0.99);
  EXPECT_GE(service.stats(two).onTimeRate(), 0.99);
}

TEST_F(TransportOnLtn, RecoveryMasksModerateLossWithinDeadline) {
  auto trace = healthyTrace(60);
  // Sustained 20% loss on every NYC link, both directions, for the whole
  // run: single path must rely on per-hop recovery.
  const auto& g = topology_.graph();
  const auto nyc = topology_.at("NYC");
  for (std::size_t i = 0; i < trace.intervalCount(); ++i) {
    for (const graph::EdgeId e : g.outEdges(nyc)) {
      trace.setCondition(e, i,
                         trace::LinkConditions{0.2, g.edge(e).latency});
      if (const auto r = g.reverseEdge(e))
        trace.setCondition(*r, i,
                           trace::LinkConditions{0.2, g.edge(*r).latency});
    }
  }
  TransportConfig config;
  TransportService service(topology_, trace, config);
  const auto flow =
      service.openFlow("NYC", "SJC", routing::SchemeKind::StaticSinglePath);
  service.run(util::seconds(60));
  const auto& stats = service.stats(flow);
  // Without recovery ~20% would be lost; with one recovery per hop the
  // on-time rate should be well above 90%.
  EXPECT_GT(stats.onTimeRate(), 0.9);
  EXPECT_LT(stats.onTimeRate(), 0.9999);
  // Retransmissions cost extra.
  EXPECT_GT(stats.costPerPacket(), 3.0);
}

TEST_F(TransportOnLtn, NoRecoveryLosesAtLinkRate) {
  auto trace = healthyTrace(30);
  const auto& g = topology_.graph();
  const auto nyc = topology_.at("NYC");
  for (std::size_t i = 0; i < trace.intervalCount(); ++i) {
    for (const graph::EdgeId e : g.outEdges(nyc)) {
      trace.setCondition(e, i,
                         trace::LinkConditions{0.2, g.edge(e).latency});
    }
  }
  TransportConfig config;
  config.node.recoveryEnabled = false;
  TransportService service(topology_, trace, config);
  const auto flow =
      service.openFlow("NYC", "SJC", routing::SchemeKind::StaticSinglePath);
  service.run(util::seconds(30));
  const auto& stats = service.stats(flow);
  EXPECT_NEAR(stats.onTimeRate(), 0.8, 0.03);
}

TEST_F(TransportOnLtn, MonitorSeesInjectedLoss) {
  auto trace = healthyTrace(30);
  const auto& g = topology_.graph();
  const auto nycChi = g.findEdge(topology_.at("NYC"), topology_.at("CHI"));
  ASSERT_TRUE(nycChi.has_value());
  for (std::size_t i = 0; i < trace.intervalCount(); ++i) {
    trace.setCondition(*nycChi, i,
                       trace::LinkConditions{0.5, g.edge(*nycChi).latency});
  }
  TransportService service(topology_, trace);
  service.run(util::seconds(25));
  const auto view = service.currentView();
  EXPECT_NEAR(view.lossRate(*nycChi), 0.5, 0.15);
  EXPECT_LT(view.lossRate(*nycChi + 1), 0.05);
}

TEST_F(TransportOnLtn, TargetedSchemeSwitchesUnderSourceProblem) {
  auto trace = healthyTrace(60);
  const auto& g = topology_.graph();
  const auto nyc = topology_.at("NYC");
  // Source problem from interval 5 to 40 with heavy loss on all links.
  for (std::size_t i = 5; i < 40; ++i) {
    for (const graph::EdgeId e : g.outEdges(nyc)) {
      trace.setCondition(e, i,
                         trace::LinkConditions{0.6, g.edge(e).latency});
      if (const auto r = g.reverseEdge(e))
        trace.setCondition(*r, i,
                           trace::LinkConditions{0.6, g.edge(*r).latency});
    }
  }
  TransportService targetedService(topology_, trace);
  const auto targeted = targetedService.openFlow(
      "NYC", "SJC", routing::SchemeKind::TargetedRedundancy);
  targetedService.run(util::seconds(500));

  TransportService staticService(topology_, trace);
  const auto twoStatic = staticService.openFlow(
      "NYC", "SJC", routing::SchemeKind::StaticTwoDisjoint);
  staticService.run(util::seconds(500));

  EXPECT_GT(targetedService.stats(targeted).onTimeRate(),
            staticService.stats(twoStatic).onTimeRate());
  // The targeted flow pays more while the problem is active.
  EXPECT_GT(targetedService.stats(targeted).costPerPacket(),
            staticService.stats(twoStatic).costPerPacket());
}

TEST_F(TransportOnLtn, SetSendingPausesAndResumes) {
  const auto trace = healthyTrace();
  TransportService service(topology_, trace);
  const auto flow =
      service.openFlow("NYC", "SJC", routing::SchemeKind::StaticSinglePath);
  service.run(util::seconds(5));
  const auto sentAfter5s = service.stats(flow).sent;
  EXPECT_GT(sentAfter5s, 0u);
  service.setSending(flow, false);
  service.run(util::seconds(5));
  EXPECT_EQ(service.stats(flow).sent, sentAfter5s);
  service.setSending(flow, true);
  service.run(util::seconds(5));
  EXPECT_GT(service.stats(flow).sent, sentAfter5s);
}

TEST_F(TransportOnLtn, StatsAccessorsValidate) {
  const auto trace = healthyTrace(5);
  TransportService service(topology_, trace);
  EXPECT_THROW(service.stats(0), std::out_of_range);
  const auto flow =
      service.openFlow("NYC", "SJC", routing::SchemeKind::StaticSinglePath);
  EXPECT_NO_THROW(service.stats(flow));
  EXPECT_EQ(service.context(flow).flow.source, topology_.at("NYC"));
  EXPECT_EQ(service.flowContext(99), nullptr);
}

}  // namespace
}  // namespace dg::core
