#include "core/sequence_window.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace dg::core {
namespace {

TEST(SequenceWindow, FirstInsertIsFresh) {
  SequenceWindow window(16);
  EXPECT_FALSE(window.contains(0));
  EXPECT_TRUE(window.insert(0));
  EXPECT_TRUE(window.contains(0));
  EXPECT_FALSE(window.insert(0));
}

TEST(SequenceWindow, RejectsZeroWindow) {
  EXPECT_THROW(SequenceWindow(0), std::invalid_argument);
}

TEST(SequenceWindow, RoundsWindowToPowerOfTwo) {
  SequenceWindow window(100);
  EXPECT_EQ(window.windowSize(), 128u);
}

TEST(SequenceWindow, OutOfOrderWithinWindow) {
  SequenceWindow window(16);
  EXPECT_TRUE(window.insert(5));
  EXPECT_TRUE(window.insert(3));
  EXPECT_TRUE(window.insert(4));
  EXPECT_FALSE(window.insert(5));
  EXPECT_FALSE(window.insert(3));
  EXPECT_TRUE(window.insert(6));
  EXPECT_EQ(window.frontier(), 7u);
}

TEST(SequenceWindow, AncientSequencesTreatedAsSeen) {
  SequenceWindow window(16);
  window.insert(100);
  // 100 - 16 = 84 is the oldest retained; anything below is "seen".
  EXPECT_TRUE(window.contains(50));
  EXPECT_FALSE(window.insert(50));
  EXPECT_TRUE(window.insert(90));
}

TEST(SequenceWindow, SlotReuseAfterWrap) {
  SequenceWindow window(16);
  EXPECT_TRUE(window.insert(1));
  EXPECT_TRUE(window.insert(17));  // same slot as 1 (17 & 15 == 1)
  // 1 is now below the window once frontier reaches 18.
  EXPECT_TRUE(window.contains(1));
  EXPECT_TRUE(window.contains(17));
  EXPECT_FALSE(window.insert(17));
}

TEST(SequenceWindow, DenseStreamAllFresh) {
  SequenceWindow window(64);
  for (std::uint64_t seq = 0; seq < 10'000; ++seq) {
    EXPECT_TRUE(window.insert(seq)) << seq;
  }
  EXPECT_EQ(window.frontier(), 10'000u);
  EXPECT_FALSE(window.insert(9'999));
  EXPECT_TRUE(window.contains(1));  // ancient => reported seen
}

TEST(SequenceWindow, WraparoundNearWindowBound) {
  // Sequences straddling the exact window boundary: with window 16 and
  // frontier at 100, sequence 84 is the oldest retained slot and 83 the
  // first "ancient" one. Off-by-one here silently re-delivers packets.
  SequenceWindow window(16);
  window.insert(99);  // frontier 100
  EXPECT_EQ(window.frontier(), 100u);
  EXPECT_TRUE(window.insert(84));    // exactly frontier - windowSize
  EXPECT_FALSE(window.insert(84));   // now a duplicate
  EXPECT_FALSE(window.insert(83));   // just below the window: "seen"
  EXPECT_TRUE(window.contains(83));
  EXPECT_TRUE(window.insert(85));
}

TEST(SequenceWindow, SlotCollisionAcrossWindowBound) {
  // 5 and 21 share slot 5 (mod 16). Inserting 21 must evict 5's record,
  // and 5 must then read as seen (it is below the window), never fresh.
  SequenceWindow window(16);
  EXPECT_TRUE(window.insert(5));
  EXPECT_TRUE(window.insert(21));
  EXPECT_FALSE(window.insert(5));
  EXPECT_FALSE(window.insert(21));
  // 37 reuses the slot again; 21 is still within [frontier-16, frontier)
  // after frontier moves to 38, so it stays a duplicate.
  EXPECT_TRUE(window.insert(37));
  EXPECT_FALSE(window.insert(21));
}

TEST(SequenceWindow, ReorderAndDuplicationAtWindowEdge) {
  // A burst that arrives reordered AND duplicated right at the window
  // edge: each sequence must be fresh exactly once.
  SequenceWindow window(16);
  window.insert(63);  // frontier 64; retained range [48, 64)
  int fresh = 0;
  const std::uint64_t burst[] = {50, 49, 48, 50, 49, 48, 62, 48, 62};
  for (const std::uint64_t seq : burst) {
    if (window.insert(seq)) ++fresh;
  }
  EXPECT_EQ(fresh, 4);  // 50, 49, 48, 62 -- each exactly once
}

TEST(SequenceWindow, PropertyMatchesSetOracle) {
  // Random in-window insertions must agree exactly with a set-based
  // oracle as long as reordering stays below the window size.
  util::Rng rng(12345);
  SequenceWindow window(256);
  std::vector<bool> oracle(5000, false);
  std::uint64_t high = 0;
  for (int i = 0; i < 20'000; ++i) {
    const std::uint64_t back =
        rng.uniformInt(std::uint64_t{200});  // reorder depth < 256
    const std::uint64_t seq = high > back ? high - back : 0;
    const bool fresh = window.insert(seq);
    EXPECT_EQ(fresh, !oracle[seq]) << "seq " << seq;
    oracle[seq] = true;
    if (rng.bernoulli(0.7)) {
      ++high;
      if (high >= oracle.size()) break;
    }
  }
}

}  // namespace
}  // namespace dg::core
