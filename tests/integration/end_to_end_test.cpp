// End-to-end: generate a synthetic multi-day trace with the calibrated
// problem taxonomy, run the full flows x schemes experiment, and assert
// the paper's qualitative structure -- scheme ordering, gap-coverage
// ordering, cost ordering and endpoint-dominated problem classification.
#include <gtest/gtest.h>

#include "playback/classification.hpp"
#include "playback/experiment.hpp"
#include "trace/synth.hpp"
#include "trace/topology.hpp"

namespace dg {
namespace {

class EndToEnd : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    topology_ = new trace::Topology(trace::Topology::ltn12());
    trace::GeneratorParams gen;
    gen.seed = 20170605;  // ICDCS'17 opening day
    gen.duration = util::days(10);
    synthetic_ = new trace::SyntheticTrace(
        generateSyntheticTrace(topology_->graph(), gen));

    playback::ExperimentConfig config;
    config.flows = playback::transcontinentalFlows(*topology_);
    config.playback.mcSamples = 300;
    result_ = new playback::ExperimentResult(
        runExperiment(topology_->graph(), synthetic_->trace, config));
    config_ = new playback::ExperimentConfig(std::move(config));
  }
  static void TearDownTestSuite() {
    delete result_;
    delete config_;
    delete synthetic_;
    delete topology_;
    result_ = nullptr;
    config_ = nullptr;
    synthetic_ = nullptr;
    topology_ = nullptr;
  }

  static const playback::SchemeSummary& summary(routing::SchemeKind kind) {
    for (const auto& s : result_->summary) {
      if (s.scheme == kind) return s;
    }
    throw std::logic_error("missing scheme summary");
  }

  static trace::Topology* topology_;
  static trace::SyntheticTrace* synthetic_;
  static playback::ExperimentResult* result_;
  static playback::ExperimentConfig* config_;
};

trace::Topology* EndToEnd::topology_ = nullptr;
trace::SyntheticTrace* EndToEnd::synthetic_ = nullptr;
playback::ExperimentResult* EndToEnd::result_ = nullptr;
playback::ExperimentConfig* EndToEnd::config_ = nullptr;

TEST_F(EndToEnd, UnavailabilityOrdering) {
  using routing::SchemeKind;
  const double singleStatic =
      summary(SchemeKind::StaticSinglePath).unavailability;
  const double twoStatic =
      summary(SchemeKind::StaticTwoDisjoint).unavailability;
  const double twoDynamic =
      summary(SchemeKind::DynamicTwoDisjoint).unavailability;
  const double targeted =
      summary(SchemeKind::TargetedRedundancy).unavailability;
  const double flooding =
      summary(SchemeKind::TimeConstrainedFlooding).unavailability;

  EXPECT_GT(singleStatic, twoStatic);
  EXPECT_GT(twoStatic, twoDynamic);
  EXPECT_GT(twoDynamic, targeted);
  EXPECT_GE(targeted, flooding - 1e-12);
}

TEST_F(EndToEnd, GapCoverageBands) {
  using routing::SchemeKind;
  // The abstract's bands, with tolerance appropriate to a 4-day sample:
  // static-2 ~45%, dynamic-2 ~70%, targeted >= 99%.
  const double twoStatic = summary(SchemeKind::StaticTwoDisjoint).gapCoverage;
  const double twoDynamic =
      summary(SchemeKind::DynamicTwoDisjoint).gapCoverage;
  const double targeted =
      summary(SchemeKind::TargetedRedundancy).gapCoverage;
  EXPECT_GT(twoStatic, 0.25);
  EXPECT_LT(twoStatic, 0.75);
  EXPECT_GT(twoDynamic, twoStatic);
  EXPECT_GT(targeted, 0.93);
}

TEST_F(EndToEnd, CostStructure) {
  using routing::SchemeKind;
  const auto& single = summary(SchemeKind::StaticSinglePath);
  const auto& twoStatic = summary(SchemeKind::StaticTwoDisjoint);
  const auto& targeted = summary(SchemeKind::TargetedRedundancy);
  const auto& flooding = summary(SchemeKind::TimeConstrainedFlooding);

  EXPECT_LT(single.averageCost, twoStatic.averageCost);
  // The headline cost claim: targeted redundancy costs only a few percent
  // more than two disjoint paths...
  EXPECT_GT(targeted.costVsTwoDisjoint, 1.0);
  EXPECT_LT(targeted.costVsTwoDisjoint, 1.10);
  // ...while flooding costs several times as much.
  EXPECT_GT(flooding.averageCost, twoStatic.averageCost * 3.0);
}

TEST_F(EndToEnd, ProblemsAreEndpointDominated) {
  // Join the static-two-disjoint problematic intervals against ground
  // truth: the paper's key finding is that they are dominated by
  // problems around an endpoint.
  const std::size_t schemeCount = config_->schemes.size();
  std::size_t schemeIndex = schemeCount;
  for (std::size_t s = 0; s < schemeCount; ++s) {
    if (config_->schemes[s] == routing::SchemeKind::StaticTwoDisjoint)
      schemeIndex = s;
  }
  ASSERT_LT(schemeIndex, schemeCount);
  std::vector<playback::ProblemClassification> parts;
  for (std::size_t f = 0; f < config_->flows.size(); ++f) {
    const auto& r = result_->at(f, schemeIndex, schemeCount);
    parts.push_back(playback::classifyProblems(
        topology_->graph(), synthetic_->events, config_->flows[f],
        r.problems));
  }
  const auto combined = playback::combineClassifications(parts);
  ASSERT_GT(combined.total(), 0u);
  EXPECT_EQ(combined.unattributed, 0u);
  EXPECT_GT(combined.endpointInvolvedFraction(), 0.5);
}

TEST_F(EndToEnd, FloodingIsNotFree) {
  // Even the optimal scheme cannot beat hard blackouts: with the
  // generator's site-outage events, flooding unavailability is nonzero.
  EXPECT_GT(summary(routing::SchemeKind::TimeConstrainedFlooding)
                .unavailableSeconds,
            0.0);
}

TEST_F(EndToEnd, PerFlowResultsAreComplete) {
  EXPECT_EQ(result_->perFlow.size(),
            config_->flows.size() * config_->schemes.size());
  for (const auto& r : result_->perFlow) {
    EXPECT_GE(r.unavailability, 0.0);
    EXPECT_LE(r.unavailability, 1.0);
    EXPECT_GT(r.averageCost, 0.0);
    EXPECT_GT(r.averageLatencyUs, 0.0);
  }
}

}  // namespace
}  // namespace dg
