// Cross-validation between the two halves of the system: the analytic
// playback engine and the packet-level event-driven transport service
// must agree (within Monte-Carlo/sampling noise) on delivery rates for
// the same topology, trace and scheme -- evidence that the playback
// results used for the paper-scale experiments reflect what the real
// forwarding/recovery machinery does.
#include <gtest/gtest.h>

#include "core/transport.hpp"
#include "playback/playback.hpp"
#include "trace/topology.hpp"

namespace dg {
namespace {

struct Scenario {
  std::string name;
  routing::SchemeKind scheme;
  double lossOnSourceLinks;
};

class CrossValidation : public ::testing::TestWithParam<Scenario> {};

TEST_P(CrossValidation, PlaybackMatchesEventSimulation) {
  const auto& scenario = GetParam();
  const auto topology = trace::Topology::ltn12();
  const auto& g = topology.graph();
  const std::size_t intervals = 60;
  trace::Trace trace(util::seconds(10), intervals,
                     trace::healthyBaseline(g, 1e-4));
  // A steady source-area impairment over the whole run (steady state
  // avoids start-edge effects that the two engines model differently).
  const auto nyc = topology.at("NYC");
  if (scenario.lossOnSourceLinks > 0) {
    for (std::size_t i = 0; i < intervals; ++i) {
      for (const graph::EdgeId e : g.outEdges(nyc)) {
        trace.setCondition(
            e, i, trace::LinkConditions{scenario.lossOnSourceLinks,
                                        g.edge(e).latency});
      }
    }
  }

  // --- Playback ------------------------------------------------------
  playback::PlaybackParams playbackParams;
  playbackParams.mcSamples = 4000;
  const playback::PlaybackEngine engine(g, trace, playbackParams);
  const routing::Flow flow{topology.at("NYC"), topology.at("SJC")};
  const auto analytic =
      engine.run(flow, scenario.scheme, routing::SchemeParams{});

  // --- Event-driven ----------------------------------------------------
  core::TransportService service(topology, trace);
  const auto flowId = service.openFlow("NYC", "SJC", scenario.scheme);
  service.run(util::seconds(10) * static_cast<util::SimTime>(intervals) -
              util::milliseconds(200));
  const auto& stats = service.stats(flowId);

  const double analyticOnTime = 1.0 - analytic.unavailability;
  const double measuredOnTime = stats.onTimeRate();
  EXPECT_NEAR(measuredOnTime, analyticOnTime, 0.02)
      << scenario.name << ": playback=" << analyticOnTime
      << " event-sim=" << measuredOnTime;
}

INSTANTIATE_TEST_SUITE_P(
    Scenarios, CrossValidation,
    ::testing::Values(
        Scenario{"healthy_single", routing::SchemeKind::StaticSinglePath,
                 0.0},
        Scenario{"healthy_targeted", routing::SchemeKind::TargetedRedundancy,
                 0.0},
        Scenario{"lossy_src_single", routing::SchemeKind::StaticSinglePath,
                 0.3},
        Scenario{"lossy_src_two_disjoint",
                 routing::SchemeKind::StaticTwoDisjoint, 0.3},
        Scenario{"lossy_src_flooding",
                 routing::SchemeKind::TimeConstrainedFlooding, 0.3}),
    [](const ::testing::TestParamInfo<Scenario>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace dg
