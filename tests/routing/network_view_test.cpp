#include "routing/network_view.hpp"

#include <gtest/gtest.h>

#include "test_support.hpp"

namespace dg::routing {
namespace {

TEST(NetworkView, BaselineFromTrace) {
  test::Line line;
  const auto trace = test::healthyTrace(line.g, 5, util::seconds(10), 1e-4);
  const auto view = NetworkView::baseline(trace);
  EXPECT_EQ(view.edgeCount(), 4u);
  EXPECT_DOUBLE_EQ(view.lossRate(line.sm), 1e-4);
  EXPECT_EQ(view.latency(line.sm), util::milliseconds(10));
}

TEST(NetworkView, AtIntervalReflectsDeviation) {
  test::Line line;
  auto trace = test::healthyTrace(line.g, 5);
  trace.setCondition(line.md, 2,
                     trace::LinkConditions{0.3, util::milliseconds(25)});
  const auto view = NetworkView::atInterval(trace, 2);
  EXPECT_DOUBLE_EQ(view.lossRate(line.md), 0.3);
  EXPECT_EQ(view.latency(line.md), util::milliseconds(25));
  const auto healthy = NetworkView::atInterval(trace, 1);
  EXPECT_DOUBLE_EQ(healthy.lossRate(line.md), 0.0);
}

TEST(NetworkView, SizeMismatchThrows) {
  EXPECT_THROW(NetworkView({0.0}, {}), std::invalid_argument);
}

TEST(RoutingWeights, HealthyLinksKeepLatency) {
  NetworkView view({0.0, 0.005}, {1000, 2000});
  const auto weights = view.routingWeights(ViewParams{});
  EXPECT_EQ(weights[0], 1000);
  EXPECT_EQ(weights[1], 2000);  // below degraded threshold: no penalty
}

TEST(RoutingWeights, DegradedLinksPenalized) {
  ViewParams params;
  params.degradedLoss = 0.01;
  params.lossPenaltyFactor = 10.0;
  NetworkView view({0.1}, {1000});
  const auto weights = view.routingWeights(params);
  EXPECT_EQ(weights[0], 2000);  // 1000 * (1 + 10*0.1)
}

TEST(RoutingWeights, UnusableLinksExcluded) {
  ViewParams params;
  params.unusableLoss = 0.5;
  NetworkView view({0.5, 0.99, 0.49}, {1000, 1000, 1000});
  const auto weights = view.routingWeights(params);
  EXPECT_EQ(weights[0], util::kNever);
  EXPECT_EQ(weights[1], util::kNever);
  EXPECT_NE(weights[2], util::kNever);
}

}  // namespace
}  // namespace dg::routing
