#include "routing/scheme.hpp"

#include <gtest/gtest.h>

#include "graph/disjoint_paths.hpp"
#include "trace/topology.hpp"
#include "trace/trace.hpp"

namespace dg::routing {
namespace {

class SchemesOnLtn : public ::testing::Test {
 protected:
  SchemesOnLtn()
      : topology_(trace::Topology::ltn12()),
        trace_(util::seconds(10), 4,
               trace::healthyBaseline(topology_.graph(), 1e-4)),
        flow_{topology_.at("NYC"), topology_.at("SJC")} {}

  std::unique_ptr<RoutingScheme> makeInitialized(SchemeKind kind) {
    auto scheme = makeScheme(kind, topology_.graph(), flow_, params_);
    scheme->initialize(NetworkView::baseline(trace_));
    return scheme;
  }

  /// A view where every link adjacent to `node` is heavily lossy.
  NetworkView degradedNodeView(graph::NodeId node, double loss) const {
    const auto& g = topology_.graph();
    std::vector<double> losses(g.edgeCount(), 1e-4);
    for (const graph::EdgeId e : g.outEdges(node)) {
      losses[e] = loss;
      if (const auto r = g.reverseEdge(e)) losses[*r] = loss;
    }
    return NetworkView(std::move(losses), g.baseLatencies());
  }

  trace::Topology topology_;
  trace::Trace trace_;
  Flow flow_;
  SchemeParams params_;
};

TEST(SchemeNames, RoundTrip) {
  for (const SchemeKind kind : allSchemeKinds()) {
    EXPECT_EQ(parseSchemeKind(schemeName(kind)), kind);
  }
  EXPECT_THROW(parseSchemeKind("nope"), std::invalid_argument);
  EXPECT_EQ(allSchemeKinds().size(), 6u);
}

TEST(SchemeNames, ParseErrorListsEveryValidName) {
  try {
    parseSchemeKind("nope");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("nope"), std::string::npos) << what;
    for (const SchemeKind kind : allSchemeKinds()) {
      EXPECT_NE(what.find(std::string(schemeName(kind))), std::string::npos)
          << "error message should list " << schemeName(kind) << ": " << what;
    }
  }
}

TEST_F(SchemesOnLtn, EverySchemeConnectsOnHealthyNetwork) {
  for (const SchemeKind kind : allSchemeKinds()) {
    auto scheme = makeInitialized(kind);
    const auto& dg = scheme->select(NetworkView::baseline(trace_));
    EXPECT_TRUE(dg.connectsFlow()) << schemeName(kind);
    EXPECT_TRUE(dg.meetsDeadline(topology_.graph().baseLatencies(),
                                 params_.deadline))
        << schemeName(kind);
    EXPECT_EQ(std::string_view(scheme->name()), schemeName(kind));
  }
}

TEST_F(SchemesOnLtn, SingleStaticIsShortestPathAndStable) {
  auto scheme = makeInitialized(SchemeKind::StaticSinglePath);
  const auto baseline = NetworkView::baseline(trace_);
  const auto& dg = scheme->select(baseline);
  const auto weights = topology_.graph().baseLatencies();
  // Edge count equals shortest path hop count.
  const auto best = graph::nodeDisjointPaths(topology_.graph(), flow_.source,
                                             flow_.destination, weights, 1);
  EXPECT_EQ(dg.edgeCount(), best.paths.at(0).size());
  // Static: stays put even when its path degrades.
  const auto degraded = degradedNodeView(flow_.source, 0.9);
  EXPECT_EQ(scheme->select(degraded), dg);
}

TEST_F(SchemesOnLtn, DynamicSingleRoutesAroundMiddleProblem) {
  auto scheme = makeInitialized(SchemeKind::DynamicSinglePath);
  const auto baseline = NetworkView::baseline(trace_);
  const auto healthyDg = scheme->select(baseline);
  // Degrade the first middle link of the current path beyond the
  // unusable threshold.
  const auto& g = topology_.graph();
  graph::EdgeId victim = graph::kInvalidEdge;
  for (const graph::EdgeId e : healthyDg.edges()) {
    if (g.edge(e).from != flow_.source) {
      victim = e;
      break;
    }
  }
  ASSERT_NE(victim, graph::kInvalidEdge);
  std::vector<double> losses(g.edgeCount(), 1e-4);
  losses[victim] = 0.9;
  const NetworkView degraded(std::move(losses), g.baseLatencies());
  const auto& rerouted = scheme->select(degraded);
  EXPECT_FALSE(rerouted.contains(victim));
  EXPECT_TRUE(rerouted.connectsFlow());
}

TEST_F(SchemesOnLtn, DynamicSingleKeepsGraphWhenNoRouteExists) {
  auto scheme = makeInitialized(SchemeKind::DynamicSinglePath);
  const auto baseline = NetworkView::baseline(trace_);
  const auto healthy = scheme->select(baseline);
  // Total source blackout: no route in the view; scheme keeps previous.
  const auto dead = degradedNodeView(flow_.source, 1.0);
  EXPECT_EQ(scheme->select(dead), healthy);
}

TEST_F(SchemesOnLtn, StaticTwoDisjointHasTwoFirstHops) {
  auto scheme = makeInitialized(SchemeKind::StaticTwoDisjoint);
  const auto& dg = scheme->select(NetworkView::baseline(trace_));
  EXPECT_EQ(dg.outEdges(flow_.source).size(), 2u);
}

TEST_F(SchemesOnLtn, DynamicTwoDisjointAvoidsDegradedFirstHops) {
  auto scheme = makeInitialized(SchemeKind::DynamicTwoDisjoint);
  const auto baseline = NetworkView::baseline(trace_);
  const auto healthy = scheme->select(baseline);
  const auto firstHops = healthy.outEdges(flow_.source);
  ASSERT_EQ(firstHops.size(), 2u);
  // Make both current first hops unusable; dynamic must pick others.
  const auto& g = topology_.graph();
  std::vector<double> losses(g.edgeCount(), 1e-4);
  std::vector<graph::EdgeId> oldHops(firstHops.begin(), firstHops.end());
  for (const graph::EdgeId e : oldHops) losses[e] = 0.9;
  const NetworkView degraded(std::move(losses), g.baseLatencies());
  const auto& rerouted = scheme->select(degraded);
  for (const graph::EdgeId e : oldHops) {
    EXPECT_FALSE(rerouted.contains(e));
  }
  EXPECT_TRUE(rerouted.connectsFlow());
}

TEST_F(SchemesOnLtn, FloodingUsesDeadlineFeasibleEdgesOnly) {
  auto scheme = makeInitialized(SchemeKind::TimeConstrainedFlooding);
  const auto& dg = scheme->select(NetworkView::baseline(trace_));
  EXPECT_TRUE(dg.connectsFlow());
  // Far fewer than all 64 edges can contribute to a 65 ms NYC->SJC
  // delivery (transatlantic detours cannot), but many can.
  EXPECT_LT(dg.edgeCount(), topology_.graph().edgeCount());
  EXPECT_GT(dg.edgeCount(), 10u);
}

TEST_F(SchemesOnLtn, FloodingStructureIsStatic) {
  // The optimal benchmark never reacts to measurements: reacting could
  // only remove edges that might be useful an instant later.
  auto scheme = makeInitialized(SchemeKind::TimeConstrainedFlooding);
  const auto baseline = NetworkView::baseline(trace_);
  const auto healthy = scheme->select(baseline);
  const auto& g = topology_.graph();
  auto latencies = g.baseLatencies();
  latencies[healthy.outEdges(flow_.source)[0]] = util::milliseconds(500);
  const NetworkView slowView(std::vector<double>(g.edgeCount(), 0.9),
                             std::move(latencies));
  EXPECT_EQ(scheme->select(slowView), healthy);
}

TEST_F(SchemesOnLtn, TargetedSwitchesOnSourceProblem) {
  auto scheme = makeInitialized(SchemeKind::TargetedRedundancy);
  const auto baseline = NetworkView::baseline(trace_);
  const auto& normal = scheme->select(baseline);
  const std::size_t normalFirstHops = normal.outEdges(flow_.source).size();
  EXPECT_EQ(normalFirstHops, 2u);

  const auto& switched =
      scheme->select(degradedNodeView(flow_.source, 0.4));
  EXPECT_GT(switched.outEdges(flow_.source).size(), normalFirstHops);
  // Flap damping: the targeted graph is held for holdDownIntervals
  // healthy views before falling back to the default.
  for (int i = 0; i < params_.holdDownIntervals; ++i) {
    EXPECT_GT(scheme->select(baseline).outEdges(flow_.source).size(),
              normalFirstHops)
        << "hold-down interval " << i;
  }
  EXPECT_EQ(scheme->select(baseline).outEdges(flow_.source).size(),
            normalFirstHops);
}

TEST_F(SchemesOnLtn, TargetedSwitchesOnDestinationProblem) {
  auto scheme = makeInitialized(SchemeKind::TargetedRedundancy);
  const auto& g = topology_.graph();
  const auto& switched =
      scheme->select(degradedNodeView(flow_.destination, 0.4));
  std::size_t lastHops = 0;
  for (const graph::EdgeId e : switched.edges()) {
    if (g.edge(e).to == flow_.destination) ++lastHops;
  }
  EXPECT_GT(lastHops, 2u);
}

TEST_F(SchemesOnLtn, TargetedUsesRobustOnDoubleProblem) {
  auto scheme = makeInitialized(SchemeKind::TargetedRedundancy);
  const auto& g = topology_.graph();
  std::vector<double> losses(g.edgeCount(), 1e-4);
  for (const graph::NodeId node : {flow_.source, flow_.destination}) {
    for (const graph::EdgeId e : g.outEdges(node)) {
      losses[e] = 0.4;
      if (const auto r = g.reverseEdge(e)) losses[*r] = 0.4;
    }
  }
  const NetworkView doubled(std::move(losses), g.baseLatencies());
  const auto& robust = scheme->select(doubled);
  EXPECT_GT(robust.outEdges(flow_.source).size(), 2u);
  std::size_t lastHops = 0;
  for (const graph::EdgeId e : robust.edges()) {
    if (g.edge(e).to == flow_.destination) ++lastHops;
  }
  EXPECT_GT(lastHops, 2u);
}

TEST_F(SchemesOnLtn, TargetedRecomputesOnMiddleProblem) {
  auto scheme = makeInitialized(SchemeKind::TargetedRedundancy);
  const auto baseline = NetworkView::baseline(trace_);
  const auto normal = scheme->select(baseline);
  // Break a middle link on the default graph.
  const auto& g = topology_.graph();
  graph::EdgeId victim = graph::kInvalidEdge;
  for (const graph::EdgeId e : normal.edges()) {
    if (g.edge(e).from != flow_.source && g.edge(e).to != flow_.destination) {
      victim = e;
      break;
    }
  }
  ASSERT_NE(victim, graph::kInvalidEdge);
  std::vector<double> losses(g.edgeCount(), 1e-4);
  losses[victim] = 0.9;
  const NetworkView degraded(std::move(losses), g.baseLatencies());
  const auto& rerouted = scheme->select(degraded);
  EXPECT_FALSE(rerouted.contains(victim));
  EXPECT_TRUE(rerouted.connectsFlow());
  // Still a two-disjoint-paths style graph, not broad redundancy.
  EXPECT_EQ(rerouted.outEdges(flow_.source).size(), 2u);
}

}  // namespace
}  // namespace dg::routing
