// Parameterized invariants: every scheme, across parameter sweeps
// (disjoint-path count, hold-down, deadline), must produce dissemination
// graphs that connect the flow, meet the deadline on a healthy network,
// and stay within sane size bounds. These are the contracts the playback
// engine and transport service rely on.
#include <gtest/gtest.h>

#include <algorithm>

#include "routing/scheme.hpp"
#include "util/rng.hpp"
#include "trace/topology.hpp"
#include "trace/trace.hpp"

namespace dg::routing {
namespace {

struct SweepCase {
  SchemeKind kind;
  int disjointPaths;
  int holdDown;
  int deadlineMs;
};

std::string caseName(const ::testing::TestParamInfo<SweepCase>& info) {
  std::string name{schemeName(info.param.kind)};
  std::replace(name.begin(), name.end(), '-', '_');
  return name + "_k" + std::to_string(info.param.disjointPaths) + "_h" +
         std::to_string(info.param.holdDown) + "_d" +
         std::to_string(info.param.deadlineMs);
}

class SchemeSweep : public ::testing::TestWithParam<SweepCase> {
 protected:
  SchemeSweep()
      : topology_(trace::Topology::ltn12()),
        trace_(util::seconds(10), 4,
               trace::healthyBaseline(topology_.graph(), 1e-4)) {}

  trace::Topology topology_;
  trace::Trace trace_;
};

TEST_P(SchemeSweep, HealthyInvariants) {
  const SweepCase& c = GetParam();
  SchemeParams params;
  params.disjointPaths = c.disjointPaths;
  params.holdDownIntervals = c.holdDown;
  params.deadline = util::milliseconds(c.deadlineMs);

  for (const auto& [srcName, dstName] :
       std::vector<std::pair<const char*, const char*>>{
           {"NYC", "SJC"}, {"SEA", "ATL"}, {"JHU", "LAX"}}) {
    const Flow flow{topology_.at(srcName), topology_.at(dstName)};
    auto scheme = makeScheme(c.kind, topology_.graph(), flow, params);
    const auto baseline = NetworkView::baseline(trace_);
    scheme->initialize(baseline);
    const auto& dg = scheme->select(baseline);

    EXPECT_TRUE(dg.connectsFlow()) << srcName << "->" << dstName;
    EXPECT_EQ(dg.source(), flow.source);
    EXPECT_EQ(dg.destination(), flow.destination);
    const auto weights = topology_.graph().baseLatencies();
    EXPECT_TRUE(dg.meetsDeadline(weights, params.deadline));
    EXPECT_GE(dg.edgeCount(), 2u);
    EXPECT_LE(dg.edgeCount(), topology_.graph().edgeCount());
    // Selecting again with the same view is stable.
    EXPECT_EQ(scheme->select(baseline), dg);
  }
}

TEST_P(SchemeSweep, SurvivesChaoticViews) {
  // Feed the scheme a sequence of adversarial views (random loss spikes,
  // latency inflation, blackouts); it must always return a usable graph
  // object (never crash, never return a graph for the wrong flow).
  const SweepCase& c = GetParam();
  SchemeParams params;
  params.disjointPaths = c.disjointPaths;
  params.holdDownIntervals = c.holdDown;
  params.deadline = util::milliseconds(c.deadlineMs);
  const Flow flow{topology_.at("NYC"), topology_.at("SJC")};
  auto scheme = makeScheme(c.kind, topology_.graph(), flow, params);
  scheme->initialize(NetworkView::baseline(trace_));

  util::Rng rng(1234);
  const auto& g = topology_.graph();
  for (int step = 0; step < 40; ++step) {
    std::vector<double> losses(g.edgeCount());
    auto latencies = g.baseLatencies();
    for (graph::EdgeId e = 0; e < g.edgeCount(); ++e) {
      const double roll = rng.uniform();
      if (roll < 0.1) {
        losses[e] = 1.0;
      } else if (roll < 0.3) {
        losses[e] = rng.uniform(0.05, 0.95);
      } else {
        losses[e] = 1e-4;
      }
      if (rng.bernoulli(0.1)) {
        latencies[e] += util::milliseconds(
            static_cast<std::int64_t>(rng.uniformInt(1, 200)));
      }
    }
    const NetworkView view(std::move(losses), std::move(latencies));
    const auto& dg = scheme->select(view);
    EXPECT_EQ(dg.source(), flow.source);
    EXPECT_EQ(dg.destination(), flow.destination);
    // Whatever the view, the scheme keeps *some* forwarding structure.
    EXPECT_GT(dg.edgeCount(), 0u);
  }
}

std::vector<SweepCase> sweepCases() {
  std::vector<SweepCase> cases;
  for (const SchemeKind kind : allSchemeKinds()) {
    cases.push_back({kind, 2, 3, 65});
  }
  // Parameter variations on the schemes they matter for.
  cases.push_back({SchemeKind::DynamicTwoDisjoint, 1, 3, 65});
  cases.push_back({SchemeKind::DynamicTwoDisjoint, 3, 3, 65});
  cases.push_back({SchemeKind::StaticTwoDisjoint, 3, 3, 65});
  cases.push_back({SchemeKind::TargetedRedundancy, 2, 0, 65});
  cases.push_back({SchemeKind::TargetedRedundancy, 2, 10, 65});
  cases.push_back({SchemeKind::TargetedRedundancy, 2, 3, 100});
  cases.push_back({SchemeKind::TimeConstrainedFlooding, 2, 3, 45});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, SchemeSweep,
                         ::testing::ValuesIn(sweepCases()), caseName);

}  // namespace
}  // namespace dg::routing
