#include "routing/targeted_graphs.hpp"

#include <gtest/gtest.h>

#include "graph/disjoint_paths.hpp"
#include "graph/shortest_path.hpp"
#include "trace/topology.hpp"

namespace dg::routing {
namespace {

class TargetedOnLtn : public ::testing::Test {
 protected:
  TargetedOnLtn()
      : topology_(trace::Topology::ltn12()),
        weights_(topology_.graph().baseLatencies()),
        flow_{topology_.at("NYC"), topology_.at("SJC")},
        graphs_(buildTargetedGraphs(topology_.graph(), flow_, weights_,
                                    util::milliseconds(65))) {}

  trace::Topology topology_;
  std::vector<util::SimTime> weights_;
  Flow flow_;
  TargetedGraphs graphs_;
};

TEST_F(TargetedOnLtn, DefaultIsTwoDisjointPaths) {
  const auto disjoint = graph::nodeDisjointPaths(
      topology_.graph(), flow_.source, flow_.destination, weights_, 2);
  ASSERT_EQ(disjoint.paths.size(), 2u);
  std::size_t expectedEdges = 0;
  for (const auto& path : disjoint.paths) expectedEdges += path.size();
  EXPECT_EQ(graphs_.twoDisjoint.edgeCount(), expectedEdges);
  EXPECT_TRUE(graphs_.twoDisjoint.connectsFlow());
}

TEST_F(TargetedOnLtn, SourceGraphUsesEverySourceLink) {
  // The source-problem graph must leave the source on every adjacent
  // link that can still meet the deadline -- that is its whole point.
  const auto& g = topology_.graph();
  std::size_t feasibleOutLinks = 0;
  const auto toDst =
      graph::dijkstraDistancesTo(g, flow_.destination, weights_);
  for (const graph::EdgeId e : g.outEdges(flow_.source)) {
    if (weights_[e] + toDst[g.edge(e).to] <= util::milliseconds(65))
      ++feasibleOutLinks;
  }
  EXPECT_GE(feasibleOutLinks, 3u);
  EXPECT_EQ(graphs_.sourceProblem.outEdges(flow_.source).size(),
            feasibleOutLinks);
}

TEST_F(TargetedOnLtn, DestinationGraphUsesEveryDestinationLink) {
  const auto& g = topology_.graph();
  std::size_t feasibleInLinks = 0;
  const auto fromSrc = graph::dijkstraDistances(g, flow_.source, weights_);
  for (const graph::EdgeId e : g.inEdges(flow_.destination)) {
    if (fromSrc[g.edge(e).from] + weights_[e] <= util::milliseconds(65))
      ++feasibleInLinks;
  }
  EXPECT_GE(feasibleInLinks, 3u);
  std::size_t memberInLinks = 0;
  for (const graph::EdgeId e : graphs_.destinationProblem.edges()) {
    if (g.edge(e).to == flow_.destination) ++memberInLinks;
  }
  EXPECT_EQ(memberInLinks, feasibleInLinks);
}

TEST_F(TargetedOnLtn, GraphsContainTheDefault) {
  for (const auto* dg : {&graphs_.sourceProblem, &graphs_.destinationProblem,
                         &graphs_.robust}) {
    for (const graph::EdgeId e : graphs_.twoDisjoint.edges()) {
      EXPECT_TRUE(dg->contains(e));
    }
  }
}

TEST_F(TargetedOnLtn, RobustIsUnionOfSourceAndDestination) {
  for (const graph::EdgeId e : graphs_.sourceProblem.edges())
    EXPECT_TRUE(graphs_.robust.contains(e));
  for (const graph::EdgeId e : graphs_.destinationProblem.edges())
    EXPECT_TRUE(graphs_.robust.contains(e));
  EXPECT_LE(graphs_.robust.edgeCount(),
            graphs_.sourceProblem.edgeCount() +
                graphs_.destinationProblem.edgeCount());
}

TEST_F(TargetedOnLtn, AllGraphsMeetDeadline) {
  for (const auto* dg : {&graphs_.twoDisjoint, &graphs_.sourceProblem,
                         &graphs_.destinationProblem, &graphs_.robust}) {
    EXPECT_TRUE(dg->meetsDeadline(weights_, util::milliseconds(65)));
  }
}

TEST_F(TargetedOnLtn, TargetedCostModeratelyAboveTwoDisjoint) {
  const int base = graphs_.twoDisjoint.cost();
  const int src = graphs_.sourceProblem.cost();
  const int robust = graphs_.robust.cost();
  EXPECT_GT(src, base);
  EXPECT_GE(robust, src);
  // Targeted redundancy is far cheaper than flooding the whole overlay.
  const auto flooding = graph::floodingGraph(topology_.graph(), flow_.source,
                                             flow_.destination);
  EXPECT_LT(robust, flooding.cost());
}

TEST_F(TargetedOnLtn, SourceGraphSurvivesPrimaryLinkFailures) {
  // Kill the two first-hop links the disjoint pair uses; the source
  // graph must still connect the flow (that is the scenario it exists
  // for), while the two-disjoint graph must not.
  auto weights = weights_;
  for (const graph::EdgeId e :
       graphs_.twoDisjoint.outEdges(flow_.source)) {
    weights[e] = util::kNever;
  }
  EXPECT_EQ(graphs_.twoDisjoint.latencyToDestination(weights),
            util::kNever);
  EXPECT_NE(graphs_.sourceProblem.latencyToDestination(weights),
            util::kNever);
}

TEST(TargetedGraphs, TightDeadlineLimitsRedundancy) {
  const auto topology = trace::Topology::ltn12();
  const auto weights = topology.graph().baseLatencies();
  const Flow flow{topology.at("NYC"), topology.at("SJC")};
  // With a deadline barely above the shortest path, almost no detours
  // qualify.
  const auto shortest = graph::nodeDisjointPaths(
      topology.graph(), flow.source, flow.destination, weights, 1);
  const auto tight = buildTargetedGraphs(
      topology.graph(), flow, weights,
      shortest.totalLatency + util::milliseconds(1));
  const auto loose = buildTargetedGraphs(topology.graph(), flow, weights,
                                         util::milliseconds(100));
  EXPECT_LT(tight.robust.edgeCount(), loose.robust.edgeCount());
}

}  // namespace
}  // namespace dg::routing
