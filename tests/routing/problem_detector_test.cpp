#include "routing/problem_detector.hpp"

#include <gtest/gtest.h>

#include "test_support.hpp"
#include "trace/topology.hpp"

namespace dg::routing {
namespace {

class DetectorOnLtn : public ::testing::Test {
 protected:
  DetectorOnLtn()
      : topology_(trace::Topology::ltn12()),
        detector_(topology_.graph(), DetectorParams{}) {}

  NetworkView healthyView() const {
    const auto& g = topology_.graph();
    return NetworkView(std::vector<double>(g.edgeCount(), 1e-4),
                       g.baseLatencies());
  }

  /// Degrades every link adjacent to `node` (both directions) to `loss`.
  NetworkView nodeProblemView(graph::NodeId node, double loss) const {
    const auto& g = topology_.graph();
    std::vector<double> losses(g.edgeCount(), 1e-4);
    for (const graph::EdgeId e : g.outEdges(node)) {
      losses[e] = loss;
      if (const auto r = g.reverseEdge(e)) losses[*r] = loss;
    }
    return NetworkView(std::move(losses), g.baseLatencies());
  }

  trace::Topology topology_;
  ProblemDetector detector_;
};

TEST_F(DetectorOnLtn, HealthyNetworkHasNoProblems) {
  const auto view = healthyView();
  const auto flags = detector_.problematicEdges(view);
  for (const char f : flags) EXPECT_EQ(f, 0);
  const auto problem =
      detector_.classify(view, topology_.at("NYC"), topology_.at("SJC"));
  EXPECT_FALSE(problem.any());
}

TEST_F(DetectorOnLtn, LossAboveThresholdFlagsEdge) {
  const auto& g = topology_.graph();
  std::vector<double> losses(g.edgeCount(), 1e-4);
  losses[5] = 0.06;
  const NetworkView view(std::move(losses), g.baseLatencies());
  const auto flags = detector_.problematicEdges(view);
  EXPECT_EQ(flags[5], 1);
}

TEST_F(DetectorOnLtn, LatencyInflationFlagsEdge) {
  const auto& g = topology_.graph();
  auto latencies = g.baseLatencies();
  latencies[3] += util::milliseconds(20);
  const NetworkView view(std::vector<double>(g.edgeCount(), 0.0),
                         std::move(latencies));
  const auto flags = detector_.problematicEdges(view);
  EXPECT_EQ(flags[3], 1);
  for (std::size_t e = 0; e < flags.size(); ++e) {
    if (e != 3) EXPECT_EQ(flags[e], 0) << e;
  }
}

TEST_F(DetectorOnLtn, NodeProblemRequiresMultipleLinks) {
  const auto& g = topology_.graph();
  const auto nyc = topology_.at("NYC");
  // One bad adjacent link is not a node problem.
  std::vector<double> losses(g.edgeCount(), 1e-4);
  losses[g.outEdges(nyc)[0]] = 0.5;
  EXPECT_FALSE(detector_.nodeProblem(
      NetworkView(std::move(losses), g.baseLatencies()), nyc));
  // All adjacent links bad is.
  EXPECT_TRUE(detector_.nodeProblem(nodeProblemView(nyc, 0.5), nyc));
}

TEST_F(DetectorOnLtn, ClassifySourceProblem) {
  const auto nyc = topology_.at("NYC");
  const auto sjc = topology_.at("SJC");
  const auto problem = detector_.classify(nodeProblemView(nyc, 0.5), nyc, sjc);
  EXPECT_TRUE(problem.source);
  EXPECT_FALSE(problem.destination);
  // NYC's links are source-adjacent for this flow, not middle.
  EXPECT_FALSE(problem.middle);
}

TEST_F(DetectorOnLtn, ClassifyDestinationProblem) {
  const auto nyc = topology_.at("NYC");
  const auto sjc = topology_.at("SJC");
  const auto problem = detector_.classify(nodeProblemView(sjc, 0.5), nyc, sjc);
  EXPECT_FALSE(problem.source);
  EXPECT_TRUE(problem.destination);
}

TEST_F(DetectorOnLtn, ClassifyMiddleProblem) {
  const auto nyc = topology_.at("NYC");
  const auto sjc = topology_.at("SJC");
  const auto den = topology_.at("DEN");
  const auto problem = detector_.classify(nodeProblemView(den, 0.5), nyc, sjc);
  EXPECT_FALSE(problem.source);
  EXPECT_FALSE(problem.destination);
  EXPECT_TRUE(problem.middle);
}

TEST_F(DetectorOnLtn, ClassifySourceAndDestination) {
  const auto& g = topology_.graph();
  const auto nyc = topology_.at("NYC");
  const auto sjc = topology_.at("SJC");
  std::vector<double> losses(g.edgeCount(), 1e-4);
  for (const graph::NodeId node : {nyc, sjc}) {
    for (const graph::EdgeId e : g.outEdges(node)) {
      losses[e] = 0.5;
      if (const auto r = g.reverseEdge(e)) losses[*r] = 0.5;
    }
  }
  const auto problem = detector_.classify(
      NetworkView(std::move(losses), g.baseLatencies()), nyc, sjc);
  EXPECT_TRUE(problem.source);
  EXPECT_TRUE(problem.destination);
}

TEST_F(DetectorOnLtn, NeighborEventCountsTowardBothNodes) {
  // A problem on the NYC-CHI link (one link only) is problematic for the
  // edge but a node problem for neither endpoint under default params.
  const auto& g = topology_.graph();
  const auto nyc = topology_.at("NYC");
  const auto chi = topology_.at("CHI");
  std::vector<double> losses(g.edgeCount(), 1e-4);
  const auto e = g.findEdge(nyc, chi);
  ASSERT_TRUE(e.has_value());
  losses[*e] = 0.8;
  const NetworkView view(std::move(losses), g.baseLatencies());
  EXPECT_FALSE(detector_.nodeProblem(view, nyc));
  EXPECT_FALSE(detector_.nodeProblem(view, chi));
}

TEST(ProblemDetectorParams, FractionRequirementScalesWithDegree) {
  // Node with 8 links and nodeMinFraction 0.3 requires ceil(2.4) = 3.
  const auto topology = trace::Topology::ltn12();
  const auto& g = topology.graph();
  const auto chi = topology.at("CHI");
  ASSERT_EQ(g.outDegree(chi), 8u);
  DetectorParams params;
  params.nodeMinLinks = 2;
  params.nodeMinFraction = 0.3;
  const ProblemDetector detector(g, params);
  std::vector<double> losses(g.edgeCount(), 1e-4);
  // Two bad links: below ceil(0.3*8)=3.
  losses[g.outEdges(chi)[0]] = 0.5;
  losses[g.outEdges(chi)[1]] = 0.5;
  EXPECT_FALSE(detector.nodeProblem(
      NetworkView(losses, g.baseLatencies()), chi));
  losses[g.outEdges(chi)[2]] = 0.5;
  EXPECT_TRUE(detector.nodeProblem(
      NetworkView(losses, g.baseLatencies()), chi));
}

TEST(FlowProblem, AnyAndEquality) {
  FlowProblem none;
  EXPECT_FALSE(none.any());
  FlowProblem src{true, false, false};
  EXPECT_TRUE(src.any());
  EXPECT_EQ(src, (FlowProblem{true, false, false}));
  EXPECT_NE(src, none);
}

}  // namespace
}  // namespace dg::routing
