// Shared fixtures for the test suite: small canonical graphs with known
// shortest paths and disjoint-path structure.
#pragma once

#include "graph/graph.hpp"
#include "trace/topology.hpp"
#include "trace/trace.hpp"
#include "util/sim_time.hpp"

namespace dg::test {

/// Diamond: S=0, A=1, B=2, D=3 with bidirectional links
///   S-A (10ms), A-D (10ms), S-B (15ms), B-D (15ms), A-B (5ms).
/// Shortest S->D is S-A-D (20ms); the node-disjoint alternative is
/// S-B-D (30ms).
struct Diamond {
  graph::Graph g;
  graph::NodeId s, a, b, d;
  graph::EdgeId sa, as, ad, da, sb, bs, bd, db, ab, ba;

  Diamond() {
    s = g.addNode();
    a = g.addNode();
    b = g.addNode();
    d = g.addNode();
    sa = g.addBidirectional(s, a, util::milliseconds(10));
    as = sa + 1;
    ad = g.addBidirectional(a, d, util::milliseconds(10));
    da = ad + 1;
    sb = g.addBidirectional(s, b, util::milliseconds(15));
    bs = sb + 1;
    bd = g.addBidirectional(b, d, util::milliseconds(15));
    db = bd + 1;
    ab = g.addBidirectional(a, b, util::milliseconds(5));
    ba = ab + 1;
  }
};

/// A simple line S=0 - M=1 - D=2 (10ms each hop).
struct Line {
  graph::Graph g;
  graph::NodeId s, m, d;
  graph::EdgeId sm, ms, md, dm;

  Line() {
    s = g.addNode();
    m = g.addNode();
    d = g.addNode();
    sm = g.addBidirectional(s, m, util::milliseconds(10));
    ms = sm + 1;
    md = g.addBidirectional(m, d, util::milliseconds(10));
    dm = md + 1;
  }
};

/// A healthy trace over any graph.
inline trace::Trace healthyTrace(const graph::Graph& g,
                                 std::size_t intervals = 10,
                                 util::SimTime intervalLength =
                                     util::seconds(10),
                                 double residualLoss = 0.0) {
  return trace::Trace(intervalLength, intervals,
                      trace::healthyBaseline(g, residualLoss));
}

}  // namespace dg::test
