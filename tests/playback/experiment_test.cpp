#include "playback/experiment.hpp"

#include <gtest/gtest.h>

#include "playback/report.hpp"
#include "trace/synth.hpp"
#include "trace/topology.hpp"

namespace dg::playback {
namespace {

class ExperimentOnLtn : public ::testing::Test {
 protected:
  ExperimentOnLtn() : topology_(trace::Topology::ltn12()) {
    trace::GeneratorParams gen;
    gen.seed = 21;
    gen.duration = util::days(1);
    synthetic_ = generateSyntheticTrace(topology_.graph(), gen);
    config_.flows = {
        routing::Flow{topology_.at("NYC"), topology_.at("SJC")},
        routing::Flow{topology_.at("WAS"), topology_.at("SEA")},
    };
    config_.playback.mcSamples = 300;
    config_.threads = 2;
  }

  trace::Topology topology_;
  std::optional<trace::SyntheticTrace> synthetic_;
  ExperimentConfig config_;
};

TEST_F(ExperimentOnLtn, ProducesAllRunsAndSummaries) {
  const auto result =
      runExperiment(topology_.graph(), synthetic_->trace, config_);
  EXPECT_EQ(result.perFlow.size(),
            config_.flows.size() * config_.schemes.size());
  EXPECT_EQ(result.summary.size(), config_.schemes.size());
  for (std::size_t s = 0; s < config_.schemes.size(); ++s) {
    EXPECT_EQ(result.summary[s].scheme, config_.schemes[s]);
    EXPECT_GE(result.summary[s].unavailability, 0.0);
    EXPECT_LE(result.summary[s].unavailability, 1.0);
    EXPECT_GT(result.summary[s].averageCost, 0.0);
  }
}

TEST_F(ExperimentOnLtn, GapCoverageAnchors) {
  const auto result =
      runExperiment(topology_.graph(), synthetic_->trace, config_);
  for (const SchemeSummary& s : result.summary) {
    if (s.scheme == config_.gapBaseline) {
      EXPECT_NEAR(s.gapCoverage, 0.0, 1e-9);
    }
    if (s.scheme == config_.gapOptimal) {
      EXPECT_NEAR(s.gapCoverage, 1.0, 1e-9);
    }
    if (s.scheme == routing::SchemeKind::StaticTwoDisjoint) {
      EXPECT_NEAR(s.costVsTwoDisjoint, 1.0, 1e-9);
    }
  }
}

TEST_F(ExperimentOnLtn, DeterministicAcrossThreadCounts) {
  auto serial = config_;
  serial.threads = 1;
  auto parallel = config_;
  parallel.threads = 4;
  const auto a = runExperiment(topology_.graph(), synthetic_->trace, serial);
  const auto b =
      runExperiment(topology_.graph(), synthetic_->trace, parallel);
  ASSERT_EQ(a.perFlow.size(), b.perFlow.size());
  for (std::size_t i = 0; i < a.perFlow.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.perFlow[i].unavailability, b.perFlow[i].unavailability);
    EXPECT_DOUBLE_EQ(a.perFlow[i].averageCost, b.perFlow[i].averageCost);
  }
}

TEST_F(ExperimentOnLtn, RejectsEmptyConfig) {
  ExperimentConfig empty;
  EXPECT_THROW(runExperiment(topology_.graph(), synthetic_->trace, empty),
               std::invalid_argument);
}

TEST_F(ExperimentOnLtn, ReportsRenderAllSchemes) {
  const auto result =
      runExperiment(topology_.graph(), synthetic_->trace, config_);
  const auto table =
      renderSummaryTable(result, synthetic_->trace, config_.flows.size());
  const auto perFlow = renderPerFlowTable(result, config_, topology_);
  const auto cost = renderCostTable(result);
  const auto cdf = renderUnavailabilityCdf(result, config_);
  for (const auto kind : config_.schemes) {
    const std::string name(routing::schemeName(kind));
    EXPECT_NE(table.find(name), std::string::npos) << name;
    EXPECT_NE(cost.find(name), std::string::npos) << name;
    EXPECT_NE(cdf.find(name), std::string::npos) << name;
  }
  EXPECT_NE(perFlow.find("NYC->SJC"), std::string::npos);
}

TEST(TranscontinentalFlows, SixteenDirectedPairs) {
  const auto topology = trace::Topology::ltn12();
  const auto flows = transcontinentalFlows(topology);
  EXPECT_EQ(flows.size(), 16u);
  for (const auto& flow : flows) {
    EXPECT_NE(flow.source, flow.destination);
  }
  // Both directions present.
  EXPECT_EQ(flows[0].source, flows[1].destination);
  EXPECT_EQ(flows[0].destination, flows[1].source);
}

TEST(RenderClassification, MentionsEveryBucket) {
  ProblemClassification counts;
  counts.sourceOnly = 5;
  counts.middleOnly = 2;
  const auto text = renderClassification(counts);
  EXPECT_NE(text.find("source only"), std::string::npos);
  EXPECT_NE(text.find("middle only"), std::string::npos);
  EXPECT_NE(text.find("endpoint involved"), std::string::npos);
}

}  // namespace
}  // namespace dg::playback
