#include "playback/ablation.hpp"

#include <gtest/gtest.h>

#include "trace/topology.hpp"

namespace dg::playback {
namespace {

class AblationOnLtn : public ::testing::Test {
 protected:
  AblationOnLtn() : topology_(trace::Topology::ltn12()) {
    generator_.seed = 31;
    generator_.duration = util::days(2);
    config_.flows = {
        routing::Flow{topology_.at("NYC"), topology_.at("SJC")},
        routing::Flow{topology_.at("WAS"), topology_.at("SEA")},
    };
    config_.playback.mcSamples = 200;
  }

  trace::Topology topology_;
  trace::GeneratorParams generator_;
  ExperimentConfig config_;
};

TEST_F(AblationOnLtn, StandardSuiteHasBaselineFirst) {
  const auto specs = standardAblations();
  ASSERT_GE(specs.size(), 6u);
  EXPECT_EQ(specs[0].name, "baseline");
  for (const auto& spec : specs) {
    EXPECT_FALSE(spec.name.empty());
    EXPECT_FALSE(spec.rationale.empty());
    EXPECT_TRUE(spec.mutate != nullptr);
  }
}

TEST_F(AblationOnLtn, BaselineMatchesDirectExperiment) {
  const auto specs = standardAblations();
  const auto baseline =
      runAblation(topology_.graph(), generator_, config_, specs[0]);
  const auto synthetic = generateSyntheticTrace(topology_.graph(),
                                                generator_);
  const auto direct =
      runExperiment(topology_.graph(), synthetic.trace, config_);
  ASSERT_EQ(baseline.summary.size(), direct.summary.size());
  for (std::size_t i = 0; i < direct.summary.size(); ++i) {
    EXPECT_DOUBLE_EQ(baseline.summary[i].unavailability,
                     direct.summary[i].unavailability);
  }
}

TEST_F(AblationOnLtn, OracleMonitoringHelpsAdaptiveSchemes) {
  AblationSpec baseline{"baseline", "", [](auto&, auto&) {}};
  AblationSpec oracle{"oracle", "", [](trace::GeneratorParams&,
                                       ExperimentConfig& config) {
                        config.playback.viewStaleness = 0;
                      }};
  const auto base =
      runAblation(topology_.graph(), generator_, config_, baseline);
  const auto instant =
      runAblation(topology_.graph(), generator_, config_, oracle);
  EXPECT_LE(
      instant.unavailability(routing::SchemeKind::DynamicTwoDisjoint),
      base.unavailability(routing::SchemeKind::DynamicTwoDisjoint) + 1e-12);
  // Static schemes are untouched by monitoring speed.
  EXPECT_DOUBLE_EQ(
      instant.unavailability(routing::SchemeKind::StaticSinglePath),
      base.unavailability(routing::SchemeKind::StaticSinglePath));
}

TEST_F(AblationOnLtn, NoRecoveryHurtsEveryScheme) {
  AblationSpec noRecovery{"no-recovery", "",
                          [](trace::GeneratorParams&,
                             ExperimentConfig& config) {
                            config.playback.delivery.recoveryEnabled = false;
                          }};
  AblationSpec baseline{"baseline", "", [](auto&, auto&) {}};
  const auto base =
      runAblation(topology_.graph(), generator_, config_, baseline);
  const auto crippled =
      runAblation(topology_.graph(), generator_, config_, noRecovery);
  for (const auto kind :
       {routing::SchemeKind::StaticSinglePath,
        routing::SchemeKind::StaticTwoDisjoint,
        routing::SchemeKind::TargetedRedundancy}) {
    EXPECT_GE(crippled.unavailability(kind), base.unavailability(kind))
        << routing::schemeName(kind);
  }
}

TEST_F(AblationOnLtn, RenderComparisonListsAllRows) {
  std::vector<AblationResult> results(2);
  results[0].name = "alpha";
  results[1].name = "beta";
  SchemeSummary summary;
  summary.scheme = routing::SchemeKind::TargetedRedundancy;
  summary.gapCoverage = 0.5;
  results[0].summary.push_back(summary);
  const auto table = renderAblationComparison(
      results, {routing::SchemeKind::TargetedRedundancy});
  EXPECT_NE(table.find("alpha"), std::string::npos);
  EXPECT_NE(table.find("beta"), std::string::npos);
  EXPECT_NE(table.find("50.0%"), std::string::npos);
  EXPECT_NE(table.find("targeted"), std::string::npos);
}

TEST(AblationResultAccessors, MissingSchemeIsZero) {
  AblationResult result;
  EXPECT_DOUBLE_EQ(
      result.gapCoverage(routing::SchemeKind::TargetedRedundancy), 0.0);
  EXPECT_DOUBLE_EQ(
      result.unavailability(routing::SchemeKind::TargetedRedundancy), 0.0);
}

}  // namespace
}  // namespace dg::playback
