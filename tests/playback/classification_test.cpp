#include "playback/classification.hpp"

#include <gtest/gtest.h>

#include "trace/synth.hpp"
#include "trace/topology.hpp"
#include "util/rng.hpp"

namespace dg::playback {
namespace {

class ClassificationOnLtn : public ::testing::Test {
 protected:
  ClassificationOnLtn()
      : topology_(trace::Topology::ltn12()),
        flow_{topology_.at("NYC"), topology_.at("SJC")},
        rng_(1) {}

  trace::ProblemEvent nodeEvent(graph::NodeId node, std::size_t start,
                                std::size_t count) {
    return trace::makeNodeEvent(topology_.graph(), node, start, count, 1.0,
                                1.0, 0.9, 0, rng_);
  }

  /// A link event on CHI-DEN: touches neither NYC nor SJC.
  trace::ProblemEvent middleLinkEvent(std::size_t start, std::size_t count) {
    const auto edge = topology_.graph().findEdge(topology_.at("CHI"),
                                                 topology_.at("DEN"));
    return trace::makeLinkEvent(topology_.graph(), *edge, start, count, 1.0,
                                0.9, 0);
  }

  static std::vector<ProblematicInterval> intervals(
      std::initializer_list<std::size_t> which) {
    std::vector<ProblematicInterval> out;
    for (const std::size_t i : which) out.push_back({i, 0.5});
    return out;
  }

  trace::Topology topology_;
  routing::Flow flow_;
  util::Rng rng_;
};

TEST_F(ClassificationOnLtn, SourceEventClassifiedSourceOnly) {
  const std::vector<trace::ProblemEvent> events{
      nodeEvent(flow_.source, 5, 10)};
  const auto counts = classifyProblems(topology_.graph(), events, flow_,
                                       intervals({6, 7, 8}));
  EXPECT_EQ(counts.sourceOnly, 3u);
  EXPECT_EQ(counts.total(), 3u);
  EXPECT_DOUBLE_EQ(counts.endpointInvolvedFraction(), 1.0);
}

TEST_F(ClassificationOnLtn, DestinationEventClassifiedDestinationOnly) {
  const std::vector<trace::ProblemEvent> events{
      nodeEvent(flow_.destination, 0, 10)};
  const auto counts = classifyProblems(topology_.graph(), events, flow_,
                                       intervals({1, 2}));
  EXPECT_EQ(counts.destinationOnly, 2u);
}

TEST_F(ClassificationOnLtn, MiddleEventsClassifiedMiddle) {
  const std::vector<trace::ProblemEvent> events{middleLinkEvent(0, 10)};
  const auto counts = classifyProblems(topology_.graph(), events, flow_,
                                       intervals({3}));
  EXPECT_EQ(counts.middleOnly, 1u);
  EXPECT_DOUBLE_EQ(counts.endpointInvolvedFraction(), 0.0);
}

TEST_F(ClassificationOnLtn, NodeEventAtNeighborOfDestinationTouchesIt) {
  // DEN is adjacent to SJC, so a DEN node event that impairs the DEN-SJC
  // link counts as destination involvement for the NYC->SJC flow.
  const std::vector<trace::ProblemEvent> events{
      nodeEvent(topology_.at("DEN"), 0, 10)};
  const auto counts = classifyProblems(topology_.graph(), events, flow_,
                                       intervals({3}));
  EXPECT_EQ(counts.endpointAndMiddle, 1u);
}

TEST_F(ClassificationOnLtn, SimultaneousSourceAndDestination) {
  const std::vector<trace::ProblemEvent> events{
      nodeEvent(flow_.source, 0, 10), nodeEvent(flow_.destination, 5, 10)};
  const auto counts = classifyProblems(topology_.graph(), events, flow_,
                                       intervals({2, 7}));
  EXPECT_EQ(counts.sourceOnly, 1u);        // interval 2: only source event
  EXPECT_EQ(counts.sourceAndDestination, 1u);  // interval 7: both
}

TEST_F(ClassificationOnLtn, EndpointPlusMiddle) {
  const std::vector<trace::ProblemEvent> events{
      nodeEvent(flow_.source, 0, 10), middleLinkEvent(0, 10)};
  const auto counts = classifyProblems(topology_.graph(), events, flow_,
                                       intervals({4}));
  EXPECT_EQ(counts.endpointAndMiddle, 1u);
}

TEST_F(ClassificationOnLtn, UnattributedWhenNoEventActive) {
  const std::vector<trace::ProblemEvent> events{
      nodeEvent(flow_.source, 0, 3)};
  const auto counts = classifyProblems(topology_.graph(), events, flow_,
                                       intervals({9}));
  EXPECT_EQ(counts.unattributed, 1u);
  EXPECT_DOUBLE_EQ(counts.endpointInvolvedFraction(), 0.0);
}

TEST_F(ClassificationOnLtn, NeighborNodeEventTouchingSourceLinkIsSourceArea) {
  // An event at CHI (a neighbor of NYC) impairs the CHI<->NYC link; for
  // the NYC->SJC flow its affected links touch the source, so the
  // classification reports source involvement (possibly with middle).
  const std::vector<trace::ProblemEvent> events{
      nodeEvent(topology_.at("CHI"), 0, 10)};
  const auto counts = classifyProblems(topology_.graph(), events, flow_,
                                       intervals({1}));
  EXPECT_EQ(counts.endpointAndMiddle, 1u);
}

TEST_F(ClassificationOnLtn, CombineSums) {
  ProblemClassification a;
  a.sourceOnly = 2;
  a.middleOnly = 1;
  ProblemClassification b;
  b.sourceOnly = 1;
  b.unattributed = 3;
  const auto combined = combineClassifications({a, b});
  EXPECT_EQ(combined.sourceOnly, 3u);
  EXPECT_EQ(combined.middleOnly, 1u);
  EXPECT_EQ(combined.unattributed, 3u);
  EXPECT_EQ(combined.total(), 7u);
}

}  // namespace
}  // namespace dg::playback
