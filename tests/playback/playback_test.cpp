#include "playback/playback.hpp"

#include <gtest/gtest.h>

#include "test_support.hpp"
#include "trace/synth.hpp"
#include "trace/topology.hpp"

namespace dg::playback {
namespace {

class PlaybackOnLtn : public ::testing::Test {
 protected:
  PlaybackOnLtn()
      : topology_(trace::Topology::ltn12()),
        trace_(util::seconds(10), 60,
               trace::healthyBaseline(topology_.graph(), 1e-4)),
        flow_{topology_.at("NYC"), topology_.at("SJC")} {}

  PlaybackParams params_;
  routing::SchemeParams schemeParams_;
  trace::Topology topology_;
  trace::Trace trace_;
  routing::Flow flow_;
};

TEST_F(PlaybackOnLtn, HealthyTraceIsNearlyAlwaysAvailable) {
  const PlaybackEngine engine(topology_.graph(), trace_, params_);
  for (const auto kind : routing::allSchemeKinds()) {
    const auto result = engine.run(flow_, kind, schemeParams_);
    EXPECT_LT(result.unavailability, 1e-6) << routing::schemeName(kind);
    EXPECT_EQ(result.problematicIntervals, 0u);
    EXPECT_GT(result.averageCost, 0.0);
  }
}

TEST_F(PlaybackOnLtn, CostOrderingAcrossSchemes) {
  const PlaybackEngine engine(topology_.graph(), trace_, params_);
  const auto single =
      engine.run(flow_, routing::SchemeKind::StaticSinglePath, schemeParams_);
  const auto two = engine.run(flow_, routing::SchemeKind::StaticTwoDisjoint,
                              schemeParams_);
  const auto targeted = engine.run(
      flow_, routing::SchemeKind::TargetedRedundancy, schemeParams_);
  const auto flooding = engine.run(
      flow_, routing::SchemeKind::TimeConstrainedFlooding, schemeParams_);
  EXPECT_LT(single.averageCost, two.averageCost);
  EXPECT_LE(two.averageCost, targeted.averageCost);
  EXPECT_LT(targeted.averageCost, flooding.averageCost);
  // On a healthy trace the targeted scheme never leaves its default two
  // disjoint paths, so the costs must be identical.
  EXPECT_DOUBLE_EQ(two.averageCost, targeted.averageCost);
}

TEST_F(PlaybackOnLtn, SourceBlackoutDefeatsSinglePathNotTargeted) {
  // A long source-site event covering most links with heavy loss.
  util::Rng rng(3);
  const auto event = trace::makeNodeEvent(
      topology_.graph(), flow_.source, 10, 30, /*coverage=*/1.0,
      /*activity=*/0.7, /*severity=*/0.9, 0, rng);
  trace::applyEvent(trace_, topology_.graph(), event, rng);

  const PlaybackEngine engine(topology_.graph(), trace_, params_);
  const auto single =
      engine.run(flow_, routing::SchemeKind::StaticSinglePath, schemeParams_);
  const auto twoStatic = engine.run(
      flow_, routing::SchemeKind::StaticTwoDisjoint, schemeParams_);
  const auto targeted = engine.run(
      flow_, routing::SchemeKind::TargetedRedundancy, schemeParams_);
  const auto flooding = engine.run(
      flow_, routing::SchemeKind::TimeConstrainedFlooding, schemeParams_);

  EXPECT_GT(single.unavailability, 0.01);
  EXPECT_GT(single.unavailability, twoStatic.unavailability);
  EXPECT_GT(twoStatic.unavailability, targeted.unavailability * 2);
  // Targeted tracks flooding closely through a source problem.
  EXPECT_LT(targeted.unavailability, flooding.unavailability * 3 + 1e-4);
  EXPECT_GT(single.problematicIntervals, 0u);
}

TEST_F(PlaybackOnLtn, MiddleLinkEventIsEscapedByDynamicSchemes) {
  // Find the static single path's first middle link and break it hard
  // for a long stretch.
  const PlaybackEngine probeEngine(topology_.graph(), trace_, params_);
  const auto healthy = probeEngine.run(
      flow_, routing::SchemeKind::StaticSinglePath, schemeParams_);
  ASSERT_LT(healthy.unavailability, 1e-6);

  // Reconstruct the static path to find a middle edge.
  auto scheme =
      routing::makeScheme(routing::SchemeKind::StaticSinglePath,
                          topology_.graph(), flow_, schemeParams_);
  scheme->initialize(routing::NetworkView::baseline(trace_));
  const auto& dg = scheme->select(routing::NetworkView::baseline(trace_));
  graph::EdgeId victim = graph::kInvalidEdge;
  for (const graph::EdgeId e : dg.edges()) {
    if (topology_.graph().edge(e).from != flow_.source) {
      victim = e;
      break;
    }
  }
  ASSERT_NE(victim, graph::kInvalidEdge);
  util::Rng rng(5);
  const auto event = trace::makeLinkEvent(topology_.graph(), victim, 10, 40,
                                          1.0, 0.95, 0);
  trace::applyEvent(trace_, topology_.graph(), event, rng);

  const PlaybackEngine engine(topology_.graph(), trace_, params_);
  const auto staticSingle =
      engine.run(flow_, routing::SchemeKind::StaticSinglePath, schemeParams_);
  const auto dynamicSingle = engine.run(
      flow_, routing::SchemeKind::DynamicSinglePath, schemeParams_);
  EXPECT_GT(staticSingle.unavailability, 0.01);
  // Dynamic single escapes after the one-interval staleness.
  EXPECT_LT(dynamicSingle.unavailability,
            staticSingle.unavailability * 0.2);
}

TEST_F(PlaybackOnLtn, OracleStalenessBeatsRealistic) {
  util::Rng rng(7);
  const auto event = trace::makeNodeEvent(topology_.graph(), flow_.source,
                                          5, 20, 0.8, 0.6, 0.8, 0, rng);
  trace::applyEvent(trace_, topology_.graph(), event, rng);

  PlaybackParams oracle = params_;
  oracle.viewStaleness = 0;
  const PlaybackEngine realistic(topology_.graph(), trace_, params_);
  const PlaybackEngine instant(topology_.graph(), trace_, oracle);
  const auto kind = routing::SchemeKind::DynamicTwoDisjoint;
  const auto real = realistic.run(flow_, kind, schemeParams_);
  const auto ideal = instant.run(flow_, kind, schemeParams_);
  EXPECT_LE(ideal.unavailability, real.unavailability + 1e-9);
}

TEST_F(PlaybackOnLtn, DeterministicAcrossRuns) {
  util::Rng rng(9);
  const auto event = trace::makeNodeEvent(topology_.graph(), flow_.source,
                                          5, 20, 0.8, 0.6, 0.7, 0, rng);
  trace::applyEvent(trace_, topology_.graph(), event, rng);
  const PlaybackEngine engine(topology_.graph(), trace_, params_);
  const auto a = engine.run(flow_, routing::SchemeKind::TargetedRedundancy,
                            schemeParams_);
  const auto b = engine.run(flow_, routing::SchemeKind::TargetedRedundancy,
                            schemeParams_);
  EXPECT_DOUBLE_EQ(a.unavailability, b.unavailability);
  EXPECT_EQ(a.problematicIntervals, b.problematicIntervals);
  EXPECT_DOUBLE_EQ(a.averageCost, b.averageCost);
}

TEST_F(PlaybackOnLtn, RangeAndTimelineAgree) {
  util::Rng rng(11);
  const auto event = trace::makeNodeEvent(topology_.graph(), flow_.source,
                                          5, 10, 1.0, 1.0, 1.0, 0, rng);
  trace::applyEvent(trace_, topology_.graph(), event, rng);
  const PlaybackEngine engine(topology_.graph(), trace_, params_);
  const auto kind = routing::SchemeKind::StaticSinglePath;
  const auto result = engine.runRange(flow_, kind, schemeParams_, 0, 30);
  const auto timeline = engine.missTimeline(flow_, kind, schemeParams_, 0, 30);
  ASSERT_EQ(timeline.size(), 30u);
  double totalMiss = 0;
  std::size_t problematic = 0;
  for (const double m : timeline) {
    totalMiss += m;
    if (m > params_.problematicThreshold) ++problematic;
  }
  EXPECT_NEAR(result.unavailability, totalMiss / 30.0, 1e-9);
  EXPECT_EQ(result.problematicIntervals, problematic);
}

TEST_F(PlaybackOnLtn, ProblemsListMatchesCount) {
  util::Rng rng(13);
  const auto event = trace::makeNodeEvent(topology_.graph(), flow_.source,
                                          5, 10, 1.0, 1.0, 1.0, 0, rng);
  trace::applyEvent(trace_, topology_.graph(), event, rng);
  const PlaybackEngine engine(topology_.graph(), trace_, params_);
  const auto result = engine.run(flow_, routing::SchemeKind::StaticSinglePath,
                                 schemeParams_);
  EXPECT_EQ(result.problems.size(), result.problematicIntervals);
  for (const auto& problem : result.problems) {
    EXPECT_GE(problem.interval, 5u);
    EXPECT_LT(problem.interval, 16u);  // event span + one stale interval
    EXPECT_GT(problem.missProbability, params_.problematicThreshold);
  }
}

TEST_F(PlaybackOnLtn, BadRangesThrow) {
  const PlaybackEngine engine(topology_.graph(), trace_, params_);
  EXPECT_THROW(engine.runRange(flow_, routing::SchemeKind::StaticSinglePath,
                               schemeParams_, 10, 5),
               std::out_of_range);
  EXPECT_THROW(engine.runRange(flow_, routing::SchemeKind::StaticSinglePath,
                               schemeParams_, 0, 1000),
               std::out_of_range);
}

TEST(PlaybackEngine, RejectsMismatchedTrace) {
  test::Line line;
  const auto topology = trace::Topology::ltn12();
  const auto trace = test::healthyTrace(line.g, 5);
  EXPECT_THROW(PlaybackEngine(topology.graph(), trace, PlaybackParams{}),
               std::invalid_argument);
}

}  // namespace
}  // namespace dg::playback
