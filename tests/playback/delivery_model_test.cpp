#include "playback/delivery_model.hpp"

#include <gtest/gtest.h>

#include "test_support.hpp"

namespace dg::playback {
namespace {

DeliveryModelParams defaults() { return DeliveryModelParams{}; }

TEST(SampleHopLatency, LosslessIsDeterministic) {
  util::Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(sampleHopLatency(0.0, 1000, defaults(), rng), 1000);
  }
}

TEST(SampleHopLatency, TotalLossWithRecoveryIsNever) {
  util::Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(sampleHopLatency(1.0, 1000, defaults(), rng), util::kNever);
  }
}

TEST(SampleHopLatency, OutcomeFrequenciesMatchModel) {
  util::Rng rng(42);
  const double p = 0.3;
  const util::SimTime lat = util::milliseconds(10);
  int onTime = 0, recovered = 0, lost = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    const auto t = sampleHopLatency(p, lat, defaults(), rng);
    if (t == lat) {
      ++onTime;
    } else if (t == 3 * lat + defaults().packetInterval) {
      ++recovered;
    } else {
      ASSERT_EQ(t, util::kNever);
      ++lost;
    }
  }
  EXPECT_NEAR(onTime / static_cast<double>(n), 1 - p, 0.01);
  EXPECT_NEAR(recovered / static_cast<double>(n), p * (1 - p), 0.01);
  EXPECT_NEAR(lost / static_cast<double>(n), p * p, 0.005);
}

TEST(SampleHopLatency, NoRecoveryLosesAtRateP) {
  DeliveryModelParams params;
  params.recoveryEnabled = false;
  util::Rng rng(7);
  const double p = 0.25;
  int lost = 0;
  const int n = 50'000;
  for (int i = 0; i < n; ++i) {
    if (sampleHopLatency(p, 1000, params, rng) == util::kNever) ++lost;
  }
  EXPECT_NEAR(lost / static_cast<double>(n), p, 0.01);
}

TEST(NearLossless, ThresholdRespected) {
  test::Line line;
  const auto dg = graph::singlePathGraph(line.g, line.s, line.d,
                                         {line.sm, line.md});
  std::vector<double> losses(line.g.edgeCount(), 1e-4);
  EXPECT_TRUE(nearLossless(dg, losses, 1e-3));
  losses[line.md] = 0.01;
  EXPECT_FALSE(nearLossless(dg, losses, 1e-3));
  // Loss on a non-member edge does not matter.
  losses[line.md] = 1e-4;
  losses[line.dm] = 0.9;
  EXPECT_TRUE(nearLossless(dg, losses, 1e-3));
}

TEST(MissNearLossless, DeadlineDecides) {
  test::Line line;  // 20 ms end-to-end
  const auto dg = graph::singlePathGraph(line.g, line.s, line.d,
                                         {line.sm, line.md});
  const std::vector<double> losses(line.g.edgeCount(), 0.0);
  const auto latencies = line.g.baseLatencies();
  DeliveryModelParams params;
  params.deadline = util::milliseconds(25);
  EXPECT_NEAR(missProbabilityNearLossless(dg, losses, latencies, params),
              0.0, 1e-9);
  params.deadline = util::milliseconds(15);
  EXPECT_DOUBLE_EQ(
      missProbabilityNearLossless(dg, losses, latencies, params), 1.0);
}

TEST(MissNearLossless, ResidualLossIsTiny) {
  test::Line line;
  const auto dg = graph::singlePathGraph(line.g, line.s, line.d,
                                         {line.sm, line.md});
  const std::vector<double> losses(line.g.edgeCount(), 1e-4);
  const auto latencies = line.g.baseLatencies();
  const double miss =
      missProbabilityNearLossless(dg, losses, latencies, defaults());
  EXPECT_GT(miss, 0.0);
  EXPECT_LT(miss, 1e-6);
}

TEST(MonteCarloDelivery, LosslessAlwaysOnTime) {
  test::Line line;
  const auto dg = graph::singlePathGraph(line.g, line.s, line.d,
                                         {line.sm, line.md});
  const std::vector<double> losses(line.g.edgeCount(), 0.0);
  const auto latencies = line.g.baseLatencies();
  util::Rng rng(1);
  EXPECT_DOUBLE_EQ(onTimeProbabilityMC(dg, losses, latencies, defaults(),
                                       500, rng),
                   1.0);
}

TEST(MonteCarloDelivery, SinglePathMatchesClosedForm) {
  // One hop with loss p and ample deadline: on-time prob = 1 - p^2.
  graph::Graph g;
  const auto s = g.addNode();
  const auto d = g.addNode();
  const auto e = g.addEdge(s, d, util::milliseconds(10));
  const auto dg = graph::singlePathGraph(g, s, d, {e});
  const std::vector<double> losses{0.3};
  const std::vector<util::SimTime> latencies{util::milliseconds(10)};
  util::Rng rng(5);
  const double onTime =
      onTimeProbabilityMC(dg, losses, latencies, defaults(), 200'000, rng);
  EXPECT_NEAR(onTime, 1.0 - 0.09, 0.005);
}

TEST(MonteCarloDelivery, TightDeadlineDisablesRecovery) {
  // One 10 ms hop, deadline 15 ms: recovery (40 ms) cannot help, so
  // on-time prob = 1 - p.
  graph::Graph g;
  const auto s = g.addNode();
  const auto d = g.addNode();
  const auto e = g.addEdge(s, d, util::milliseconds(10));
  const auto dg = graph::singlePathGraph(g, s, d, {e});
  DeliveryModelParams params;
  params.deadline = util::milliseconds(15);
  util::Rng rng(5);
  const std::vector<double> losses{0.3};
  const std::vector<util::SimTime> latencies{util::milliseconds(10)};
  const double onTime =
      onTimeProbabilityMC(dg, losses, latencies, params, 100'000, rng);
  EXPECT_NEAR(onTime, 0.7, 0.01);
}

TEST(MonteCarloDelivery, TwoDisjointPathsMaskSinglePathLoss) {
  test::Diamond d;
  graph::DisseminationGraph dg(d.g, d.s, d.d);
  dg.addPath({d.sa, d.ad});
  dg.addPath({d.sb, d.bd});
  std::vector<double> losses(d.g.edgeCount(), 0.0);
  losses[d.sa] = 1.0;  // first path dead at the first hop
  util::Rng rng(5);
  const double onTime = onTimeProbabilityMC(dg, losses, d.g.baseLatencies(),
                                            defaults(), 2'000, rng);
  EXPECT_DOUBLE_EQ(onTime, 1.0);  // second path delivers deterministically
}

TEST(MonteCarloDelivery, BothPathsLossyComposes) {
  // Both disjoint paths have a single lossy hop (p=0.5, recovery off):
  // miss = 0.25.
  test::Diamond d;
  graph::DisseminationGraph dg(d.g, d.s, d.d);
  dg.addPath({d.sa, d.ad});
  dg.addPath({d.sb, d.bd});
  std::vector<double> losses(d.g.edgeCount(), 0.0);
  losses[d.sa] = 0.5;
  losses[d.sb] = 0.5;
  DeliveryModelParams params;
  params.recoveryEnabled = false;
  util::Rng rng(11);
  const double onTime = onTimeProbabilityMC(dg, losses, d.g.baseLatencies(),
                                            params, 100'000, rng);
  EXPECT_NEAR(onTime, 0.75, 0.01);
}

TEST(MonteCarloDelivery, ZeroSamplesIsZero) {
  test::Line line;
  const auto dg = graph::singlePathGraph(line.g, line.s, line.d,
                                         {line.sm, line.md});
  util::Rng rng(1);
  EXPECT_DOUBLE_EQ(
      onTimeProbabilityMC(dg, std::vector<double>(4, 0.0),
                          line.g.baseLatencies(), defaults(), 0, rng),
      0.0);
}

}  // namespace
}  // namespace dg::playback
