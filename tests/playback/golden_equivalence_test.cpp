// Golden equivalence: the optimized playback hot path (condition-timeline
// cursor, reusable delivery workspaces, decision/evaluation memos) must
// produce results and telemetry *byte-identical* to the legacy path and
// to the frozen reference evaluators, at any thread count.
#include <gtest/gtest.h>

#include <vector>

#include "playback/delivery_model.hpp"
#include "playback/experiment.hpp"
#include "playback/playback.hpp"
#include "routing/targeted_graphs.hpp"
#include "telemetry/export.hpp"
#include "telemetry/telemetry.hpp"
#include "test_support.hpp"
#include "util/rng.hpp"

namespace dg {
namespace {

/// Randomized ltn12 trace with enough loss/latency events to exercise
/// both the deterministic and the Monte-Carlo evaluation paths.
trace::Trace randomTrace(const graph::Graph& g, std::size_t intervals,
                         std::uint64_t seed) {
  trace::Trace tr =
      test::healthyTrace(g, intervals, util::seconds(10), 1e-4);
  util::Rng rng(seed);
  for (std::size_t k = 0; k < intervals; ++k) {
    const auto e = static_cast<graph::EdgeId>(
        rng.uniformInt(static_cast<std::uint64_t>(g.edgeCount())));
    const auto t = static_cast<std::size_t>(
        rng.uniformInt(static_cast<std::uint64_t>(intervals)));
    trace::LinkConditions c = tr.baseline(e);
    if (rng.bernoulli(0.6)) {
      c.lossRate = rng.uniform(0.05, 0.9);
    } else {
      c.latency = 3 * c.latency + util::milliseconds(10);
    }
    tr.setCondition(e, t, c);
  }
  return tr;
}

void expectResultsIdentical(const playback::FlowSchemeResult& a,
                            const playback::FlowSchemeResult& b) {
  EXPECT_EQ(a.unavailability, b.unavailability);
  EXPECT_EQ(a.unavailableSeconds, b.unavailableSeconds);
  EXPECT_EQ(a.problematicIntervals, b.problematicIntervals);
  EXPECT_EQ(a.averageCost, b.averageCost);
  EXPECT_EQ(a.averageLatencyUs, b.averageLatencyUs);
  ASSERT_EQ(a.problems.size(), b.problems.size());
  for (std::size_t i = 0; i < a.problems.size(); ++i) {
    EXPECT_EQ(a.problems[i].interval, b.problems[i].interval);
    EXPECT_EQ(a.problems[i].missProbability, b.problems[i].missProbability);
  }
}

class GoldenEquivalence : public ::testing::Test {
 protected:
  GoldenEquivalence()
      : topology_(trace::Topology::ltn12()),
        trace_(randomTrace(topology_.graph(), 180, 20170605)) {
    flows_ = playback::transcontinentalFlows(topology_);
    flows_.resize(4);
    params_.mcSamples = 200;
  }

  /// Runs every (flow, scheme) job on one engine and collects results
  /// plus the full telemetry exports.
  std::pair<std::vector<playback::FlowSchemeResult>, std::string> runAll(
      const playback::PlaybackParams& params) const {
    const playback::PlaybackEngine engine(topology_.graph(), trace_,
                                          params);
    telemetry::Telemetry telemetry;
    std::vector<playback::FlowSchemeResult> results;
    for (const routing::Flow flow : flows_) {
      for (const routing::SchemeKind kind : routing::allSchemeKinds()) {
        results.push_back(engine.run(flow, kind, {}, &telemetry));
      }
    }
    return {std::move(results), telemetry::toPrometheus(telemetry.metrics) +
                                    telemetry::toJson(telemetry.metrics)};
  }

  trace::Topology topology_;
  trace::Trace trace_;
  std::vector<routing::Flow> flows_;
  playback::PlaybackParams params_;
};

TEST_F(GoldenEquivalence, DecisionMemoOnOffByteIdentical) {
  playback::PlaybackParams on = params_;
  playback::PlaybackParams off = params_;
  on.decisionMemo = true;
  off.decisionMemo = false;
  const auto [rOn, tOn] = runAll(on);
  const auto [rOff, tOff] = runAll(off);
  ASSERT_EQ(rOn.size(), rOff.size());
  for (std::size_t i = 0; i < rOn.size(); ++i) {
    expectResultsIdentical(rOn[i], rOff[i]);
  }
  EXPECT_EQ(tOn, tOff);
}

TEST_F(GoldenEquivalence, CursorVsLegacyByteIdentical) {
  playback::PlaybackParams legacy = params_;
  legacy.decisionMemo = false;
  legacy.conditionCursor = false;  // reference evaluators, owned vectors
  const auto [rOpt, tOpt] = runAll(params_);
  const auto [rLegacy, tLegacy] = runAll(legacy);
  ASSERT_EQ(rOpt.size(), rLegacy.size());
  for (std::size_t i = 0; i < rOpt.size(); ++i) {
    expectResultsIdentical(rOpt[i], rLegacy[i]);
  }
  EXPECT_EQ(tOpt, tLegacy);
}

// With telemetry detached the cursor path may elide select() calls
// across clean steady spans (RoutingScheme::steadyOnBaseline). A
// deviation burst followed by a long clean tail is the adversarial
// shape: the targeted scheme's hold-down counters drain inside the
// tail, and a premature "steady" verdict would freeze the expensive
// targeted graph for the rest of the run (visible as an averageCost
// mismatch against the legacy path, which never elides).
TEST(SteadyFastPath, MatchesLegacyWithoutTelemetry) {
  const auto topology = trace::Topology::ltn12();
  const graph::Graph& g = topology.graph();
  trace::Trace tr = test::healthyTrace(g, 120, util::seconds(10), 1e-4);
  util::Rng rng(777);
  for (std::size_t k = 0; k < 90; ++k) {
    const auto e = static_cast<graph::EdgeId>(
        rng.uniformInt(static_cast<std::uint64_t>(g.edgeCount())));
    const auto t = static_cast<std::size_t>(rng.uniformInt(50));
    trace::LinkConditions c = tr.baseline(e);
    c.lossRate = rng.uniform(0.1, 0.9);
    tr.setCondition(e, t, c);  // deviations only in [0, 50): clean tail
  }

  playback::PlaybackParams optimizedParams;
  optimizedParams.mcSamples = 150;
  playback::PlaybackParams legacyParams = optimizedParams;
  legacyParams.decisionMemo = false;
  legacyParams.conditionCursor = false;

  const playback::PlaybackEngine optimized(g, tr, optimizedParams);
  const playback::PlaybackEngine legacy(g, tr, legacyParams);
  auto flows = playback::transcontinentalFlows(topology);
  flows.resize(4);
  for (const routing::Flow flow : flows) {
    for (const routing::SchemeKind kind : routing::allSchemeKinds()) {
      expectResultsIdentical(optimized.run(flow, kind, {}),
                             legacy.run(flow, kind, {}));
    }
  }
}

TEST_F(GoldenEquivalence, ThreadCountInvariant) {
  playback::ExperimentConfig config;
  config.flows = flows_;
  config.playback = params_;
  config.threads = 1;
  telemetry::Telemetry tel1;
  const auto r1 =
      runExperiment(topology_.graph(), trace_, config, &tel1);
  config.threads = 4;
  telemetry::Telemetry tel4;
  const auto r4 =
      runExperiment(topology_.graph(), trace_, config, &tel4);
  ASSERT_EQ(r1.perFlow.size(), r4.perFlow.size());
  for (std::size_t i = 0; i < r1.perFlow.size(); ++i) {
    expectResultsIdentical(r1.perFlow[i], r4.perFlow[i]);
  }
  EXPECT_EQ(telemetry::toPrometheus(tel1.metrics),
            telemetry::toPrometheus(tel4.metrics));
  EXPECT_EQ(telemetry::toJson(tel1.metrics),
            telemetry::toJson(tel4.metrics));
}

TEST_F(GoldenEquivalence, MissTimelineMatchesAcrossModes) {
  playback::PlaybackParams legacy = params_;
  legacy.decisionMemo = false;
  legacy.conditionCursor = false;
  const playback::PlaybackEngine optimized(topology_.graph(), trace_,
                                           params_);
  const playback::PlaybackEngine reference(topology_.graph(), trace_,
                                           legacy);
  for (const routing::SchemeKind kind : routing::allSchemeKinds()) {
    const auto a = optimized.missTimeline(flows_[0], kind, {}, 0,
                                          trace_.intervalCount());
    const auto b = reference.missTimeline(flows_[0], kind, {}, 0,
                                          trace_.intervalCount());
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t t = 0; t < a.size(); ++t) {
      EXPECT_EQ(a[t], b[t]) << "interval " << t;
    }
  }
}

TEST(DeliveryEquivalence, OptimizedEvaluatorsMatchReference) {
  const auto topology = trace::Topology::ltn12();
  const graph::Graph& g = topology.graph();
  const routing::Flow flow{0, 7};
  const auto targeted = routing::buildTargetedGraphs(
      g, flow, g.baseLatencies(), util::milliseconds(65));

  graph::DisseminationGraph floodingGraph(g, flow.source,
                                          flow.destination);
  for (graph::EdgeId e = 0; e < g.edgeCount(); ++e) {
    floodingGraph.addEdge(e);
  }
  const graph::DisseminationGraph& flooding = floodingGraph;

  const playback::DeliveryModelParams params;
  playback::DeliveryWorkspace ws;  // one workspace across all calls
  for (std::uint64_t seed = 0; seed < 24; ++seed) {
    util::Rng setup(seed * 977 + 3);
    std::vector<double> losses(g.edgeCount());
    std::vector<util::SimTime> latencies = g.baseLatencies();
    for (graph::EdgeId e = 0; e < g.edgeCount(); ++e) {
      losses[e] = setup.bernoulli(0.2) ? setup.uniform(0.0, 0.9) : 1e-4;
      if (setup.bernoulli(0.1)) latencies[e] *= 4;
    }
    for (const graph::DisseminationGraph* dg_ :
         {&targeted.sourceProblem, &targeted.destinationProblem,
          &flooding}) {
      util::Rng a(seed);
      util::Rng b(seed);
      const double optimized = playback::onTimeProbabilityMC(
          *dg_, losses, latencies, params, 300, a, ws);
      const double reference = playback::onTimeProbabilityMCReference(
          *dg_, losses, latencies, params, 300, b);
      EXPECT_EQ(optimized, reference) << "seed " << seed;
      EXPECT_EQ(playback::missProbabilityNearLossless(*dg_, losses,
                                                      latencies, params,
                                                      ws),
                playback::missProbabilityNearLosslessReference(
                    *dg_, losses, latencies, params))
          << "seed " << seed;
    }
  }
}

// Every batched Monte-Carlo kernel (fused scalar, portable SoA block,
// AVX2 block when the CPU has it) must agree with the frozen reference
// draw for draw: same verdicts, same final RNG state. Odd sample counts
// straddle the block size so partial tail blocks are exercised, and the
// graph set spans small member counts (scalar-dispatch territory), a
// 64-member flooding graph (both key words), and the AVX2 tail path.
TEST(DeliveryEquivalence, AllKernelsMatchReferenceAcrossSeedsAndCounts) {
  const auto topology = trace::Topology::ltn12();
  const graph::Graph& g = topology.graph();
  const routing::Flow flow{0, 7};
  const auto targeted = routing::buildTargetedGraphs(
      g, flow, g.baseLatencies(), util::milliseconds(65));

  graph::DisseminationGraph floodingGraph(g, flow.source, flow.destination);
  for (graph::EdgeId e = 0; e < g.edgeCount(); ++e) {
    floodingGraph.addEdge(e);
  }

  std::vector<playback::detail::McKernel> kernels = {
      playback::detail::McKernel::kFusedScalar,
      playback::detail::McKernel::kBlockScalar};
  if (playback::detail::mcKernelSupported(
          playback::detail::McKernel::kBlockAvx2)) {
    kernels.push_back(playback::detail::McKernel::kBlockAvx2);
  }

  const playback::DeliveryModelParams params;
  playback::DeliveryWorkspace ws;
  // 1 and 31 stay inside one 32-sample block, 33/63/65 cross one
  // boundary at different offsets, 257 crosses eight.
  const int sampleCounts[] = {1, 31, 33, 63, 65, 257};
  for (std::uint64_t seed = 100; seed < 107; ++seed) {
    util::Rng setup(seed * 1979 + 11);
    std::vector<double> losses(g.edgeCount());
    std::vector<util::SimTime> latencies = g.baseLatencies();
    for (graph::EdgeId e = 0; e < g.edgeCount(); ++e) {
      losses[e] = setup.bernoulli(0.25) ? setup.uniform(0.0, 0.9) : 1e-4;
      if (setup.bernoulli(0.1)) latencies[e] *= 4;
    }
    for (const graph::DisseminationGraph* dg_ :
         {&targeted.sourceProblem, &targeted.destinationProblem,
          static_cast<const graph::DisseminationGraph*>(&floodingGraph)}) {
      for (const int samples : sampleCounts) {
        util::Rng refRng(seed);
        const double reference = playback::onTimeProbabilityMCReference(
            *dg_, losses, latencies, params, samples, refRng);
        const std::uint64_t refFinal = refRng.next();
        for (const auto kernel : kernels) {
          playback::detail::setMcKernelForTest(kernel);
          util::Rng rng(seed);
          const double got = playback::onTimeProbabilityMC(
              *dg_, losses, latencies, params, samples, rng, ws);
          EXPECT_EQ(got, reference)
              << "kernel " << static_cast<int>(kernel) << " seed " << seed
              << " samples " << samples;
          EXPECT_EQ(rng.next(), refFinal)
              << "RNG state diverged: kernel " << static_cast<int>(kernel)
              << " seed " << seed << " samples " << samples;
        }
        playback::detail::setMcKernelForTest(
            playback::detail::McKernel::kAuto);
      }
    }
  }
}

}  // namespace
}  // namespace dg
