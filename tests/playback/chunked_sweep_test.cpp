// Chunk-parallel packed sweep: runPackedExperiment must reproduce the
// in-memory blocked run bit for bit -- at any thread count, with chunk
// boundaries splitting active problems, and for single-chunk and
// short-tail-chunk containers.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "playback/experiment.hpp"
#include "playback/playback.hpp"
#include "store/writer.hpp"
#include "telemetry/export.hpp"
#include "telemetry/telemetry.hpp"
#include "test_support.hpp"
#include "util/rng.hpp"

namespace dg {
namespace {

/// Randomized ltn12 trace exercising both the deterministic and the
/// Monte-Carlo evaluation paths (same construction as the golden
/// equivalence suite).
trace::Trace randomTrace(const graph::Graph& g, std::size_t intervals,
                         std::uint64_t seed) {
  trace::Trace tr =
      test::healthyTrace(g, intervals, util::seconds(10), 1e-4);
  util::Rng rng(seed);
  for (std::size_t k = 0; k < intervals; ++k) {
    const auto e = static_cast<graph::EdgeId>(
        rng.uniformInt(static_cast<std::uint64_t>(g.edgeCount())));
    const auto t = static_cast<std::size_t>(
        rng.uniformInt(static_cast<std::uint64_t>(intervals)));
    trace::LinkConditions c = tr.baseline(e);
    if (rng.bernoulli(0.6)) {
      c.lossRate = rng.uniform(0.05, 0.9);
    } else {
      c.latency = 3 * c.latency + util::milliseconds(10);
    }
    tr.setCondition(e, t, c);
  }
  return tr;
}

std::string packToTemp(const trace::Trace& tr, const char* name,
                       std::uint32_t chunkIntervals) {
  const std::string path =
      (std::filesystem::path(::testing::TempDir()) / name).string();
  store::WriterOptions options;
  options.chunkIntervals = chunkIntervals;
  store::packTrace(tr, path, options);
  return path;
}

void expectResultsIdentical(const playback::FlowSchemeResult& a,
                            const playback::FlowSchemeResult& b) {
  EXPECT_EQ(a.unavailability, b.unavailability);
  EXPECT_EQ(a.unavailableSeconds, b.unavailableSeconds);
  EXPECT_EQ(a.problematicIntervals, b.problematicIntervals);
  EXPECT_EQ(a.averageCost, b.averageCost);
  EXPECT_EQ(a.averageLatencyUs, b.averageLatencyUs);
  ASSERT_EQ(a.problems.size(), b.problems.size());
  for (std::size_t i = 0; i < a.problems.size(); ++i) {
    EXPECT_EQ(a.problems[i].interval, b.problems[i].interval);
    EXPECT_EQ(a.problems[i].missProbability, b.problems[i].missProbability);
  }
}

class ChunkedSweep : public ::testing::Test {
 protected:
  ChunkedSweep()
      : topology_(trace::Topology::ltn12()),
        trace_(randomTrace(topology_.graph(), 100, 424242)) {
    // Deviations hugging every chunk edge of the 32-interval layout
    // ([0,32) [32,64) [64,96) [96,100)): warm-up continuity across the
    // boundary and the per-chunk clean-eval cache reset only matter
    // when chunk boundaries split an active problem.
    for (const std::size_t t : {31u, 32u, 33u, 63u, 64u, 95u, 96u, 99u}) {
      trace::LinkConditions c = trace_.baseline(0);
      c.lossRate = 0.35;
      trace_.setCondition(0, t, c);
    }
    config_.flows = playback::transcontinentalFlows(topology_);
    config_.flows.resize(2);
    config_.playback.mcSamples = 120;
  }

  trace::Topology topology_;
  trace::Trace trace_;
  playback::ExperimentConfig config_;
};

TEST_F(ChunkedSweep, MatchesBlockedInMemoryRun) {
  const std::string path = packToTemp(trace_, "chunked32.dgtrace", 32);
  playback::ExperimentConfig packedConfig = config_;
  packedConfig.threads = 2;
  const auto packed = playback::runPackedExperiment(topology_.graph(), path,
                                                    packedConfig);

  playback::ExperimentConfig blocked = config_;
  blocked.playback.conditionCursor = true;
  blocked.playback.accumBlockIntervals = 32;  // the container's chunk size
  blocked.threads = 1;
  const auto inMemory =
      playback::runExperiment(topology_.graph(), trace_, blocked);

  ASSERT_EQ(packed.perFlow.size(), inMemory.perFlow.size());
  for (std::size_t i = 0; i < packed.perFlow.size(); ++i) {
    expectResultsIdentical(packed.perFlow[i], inMemory.perFlow[i]);
  }
  ASSERT_EQ(packed.summary.size(), inMemory.summary.size());
  for (std::size_t s = 0; s < packed.summary.size(); ++s) {
    EXPECT_EQ(packed.summary[s].unavailability,
              inMemory.summary[s].unavailability);
    EXPECT_EQ(packed.summary[s].averageCost,
              inMemory.summary[s].averageCost);
    EXPECT_EQ(packed.summary[s].gapCoverage,
              inMemory.summary[s].gapCoverage);
  }
}

TEST_F(ChunkedSweep, ThreadCountInvariantIncludingTelemetry) {
  const std::string path = packToTemp(trace_, "chunked_threads.dgtrace", 32);
  playback::ExperimentConfig config = config_;

  config.threads = 1;
  telemetry::Telemetry tel1;
  const auto r1 =
      playback::runPackedExperiment(topology_.graph(), path, config, &tel1);
  config.threads = 8;
  telemetry::Telemetry tel8;
  const auto r8 =
      playback::runPackedExperiment(topology_.graph(), path, config, &tel8);

  ASSERT_EQ(r1.perFlow.size(), r8.perFlow.size());
  for (std::size_t i = 0; i < r1.perFlow.size(); ++i) {
    expectResultsIdentical(r1.perFlow[i], r8.perFlow[i]);
  }
  EXPECT_EQ(telemetry::toPrometheus(tel1.metrics),
            telemetry::toPrometheus(tel8.metrics));
  EXPECT_EQ(telemetry::toJson(tel1.metrics),
            telemetry::toJson(tel8.metrics));
  EXPECT_EQ(telemetry::toJson(tel1.trace), telemetry::toJson(tel8.trace));
}

TEST_F(ChunkedSweep, SingleChunkContainerMatchesUnchunkedRun) {
  // chunkIntervals > intervalCount: one chunk, so the forced block never
  // folds mid-range and the packed run must equal the plain (block 0)
  // cursor run exactly.
  const std::string path = packToTemp(trace_, "chunked_one.dgtrace", 256);
  playback::ExperimentConfig packedConfig = config_;
  packedConfig.threads = 2;
  const auto packed = playback::runPackedExperiment(topology_.graph(), path,
                                                    packedConfig);
  const auto plain =
      playback::runExperiment(topology_.graph(), trace_, config_);
  ASSERT_EQ(packed.perFlow.size(), plain.perFlow.size());
  for (std::size_t i = 0; i < packed.perFlow.size(); ++i) {
    expectResultsIdentical(packed.perFlow[i], plain.perFlow[i]);
  }
}

TEST_F(ChunkedSweep, PartialFoldMatchesRunRange) {
  // The engine-level contract under the runner: folding runChunkPartial
  // results in ascending chunk order and finalizing equals runRange over
  // the union -- per scheme, including the interval straddling a chunk
  // edge (fed from the in-memory trace; null sources).
  playback::PlaybackParams params = config_.playback;
  params.accumBlockIntervals = 32;
  const playback::PlaybackEngine engine(topology_.graph(), trace_, params);
  const routing::Flow flow = config_.flows[0];
  for (const routing::SchemeKind kind : routing::allSchemeKinds()) {
    playback::RunPartial total;
    for (std::size_t first = 0; first < trace_.intervalCount(); first += 32) {
      const std::size_t last =
          std::min<std::size_t>(first + 32, trace_.intervalCount());
      total.merge(engine.runChunkPartial(flow, kind, {}, first, last,
                                         nullptr, nullptr));
    }
    const auto folded = engine.finalizePartial(flow, kind, std::move(total));
    const auto direct =
        engine.runRange(flow, kind, {}, 0, trace_.intervalCount());
    expectResultsIdentical(folded, direct);
  }
}

}  // namespace
}  // namespace dg
