#include <gtest/gtest.h>

#include "playback/playback.hpp"
#include "trace/synth.hpp"
#include "trace/topology.hpp"

namespace dg::playback {
namespace {

class LatencyCollection : public ::testing::Test {
 protected:
  LatencyCollection()
      : topology_(trace::Topology::ltn12()),
        trace_(util::seconds(10), 20,
               trace::healthyBaseline(topology_.graph(), 1e-4)),
        flow_{topology_.at("NYC"), topology_.at("SJC")} {}

  trace::Topology topology_;
  trace::Trace trace_;
  routing::Flow flow_;
};

TEST_F(LatencyCollection, DisabledByDefault) {
  const PlaybackEngine engine(topology_.graph(), trace_, PlaybackParams{});
  const auto result = engine.run(flow_, routing::SchemeKind::StaticSinglePath,
                                 routing::SchemeParams{});
  EXPECT_TRUE(result.intervalLatenciesUs.empty());
  EXPECT_GT(result.averageLatencyUs, 0.0);
}

TEST_F(LatencyCollection, CollectsOnePerReachableInterval) {
  PlaybackParams params;
  params.collectIntervalLatencies = true;
  const PlaybackEngine engine(topology_.graph(), trace_, params);
  const auto result = engine.run(flow_, routing::SchemeKind::StaticSinglePath,
                                 routing::SchemeParams{});
  ASSERT_EQ(result.intervalLatenciesUs.size(), trace_.intervalCount());
  // Healthy network: every interval at the shortest-path latency, and the
  // mean equals the summary statistic.
  double sum = 0;
  for (const double latency : result.intervalLatenciesUs) {
    EXPECT_DOUBLE_EQ(latency, result.intervalLatenciesUs.front());
    sum += latency;
  }
  EXPECT_NEAR(sum / static_cast<double>(result.intervalLatenciesUs.size()),
              result.averageLatencyUs, 1e-9);
}

TEST_F(LatencyCollection, LatencyEventShowsInTail) {
  // Inflate every NYC link's latency by 20ms for intervals 5..9: the
  // single static path's collected latencies must rise there.
  const auto& g = topology_.graph();
  const auto nyc = topology_.at("NYC");
  for (std::size_t i = 5; i < 10; ++i) {
    for (const graph::EdgeId e : g.outEdges(nyc)) {
      trace_.setCondition(
          e, i,
          trace::LinkConditions{1e-4, g.edge(e).latency +
                                          util::milliseconds(20)});
    }
  }
  PlaybackParams params;
  params.collectIntervalLatencies = true;
  const PlaybackEngine engine(topology_.graph(), trace_, params);
  const auto result = engine.run(flow_, routing::SchemeKind::StaticSinglePath,
                                 routing::SchemeParams{});
  ASSERT_EQ(result.intervalLatenciesUs.size(), trace_.intervalCount());
  const double healthy = result.intervalLatenciesUs.front();
  for (std::size_t i = 5; i < 10; ++i) {
    EXPECT_NEAR(result.intervalLatenciesUs[i], healthy + 20'000.0, 1.0);
  }
  EXPECT_DOUBLE_EQ(result.intervalLatenciesUs[12], healthy);
}

TEST_F(LatencyCollection, UnreachableIntervalsAreSkipped) {
  // Source completely isolated in intervals 3..5: no latency recorded.
  const auto& g = topology_.graph();
  const auto nyc = topology_.at("NYC");
  for (std::size_t i = 3; i < 6; ++i) {
    for (const graph::EdgeId e : g.outEdges(nyc)) {
      trace_.setCondition(e, i,
                          trace::LinkConditions{1e-4, util::kNever});
    }
  }
  PlaybackParams params;
  params.collectIntervalLatencies = true;
  const PlaybackEngine engine(topology_.graph(), trace_, params);
  const auto result = engine.run(flow_, routing::SchemeKind::StaticSinglePath,
                                 routing::SchemeParams{});
  EXPECT_EQ(result.intervalLatenciesUs.size(), trace_.intervalCount() - 3);
}

}  // namespace
}  // namespace dg::playback
