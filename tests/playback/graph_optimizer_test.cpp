#include "playback/graph_optimizer.hpp"

#include <gtest/gtest.h>

#include "routing/targeted_graphs.hpp"
#include "test_support.hpp"
#include "trace/topology.hpp"
#include "util/rng.hpp"

namespace dg::playback {
namespace {

class OptimizerOnLtn : public ::testing::Test {
 protected:
  OptimizerOnLtn()
      : topology_(trace::Topology::ltn12()),
        flow_{topology_.at("NYC"), topology_.at("SJC")},
        latencies_(topology_.graph().baseLatencies()),
        losses_(topology_.graph().edgeCount(), 0.0) {}

  trace::Topology topology_;
  routing::Flow flow_;
  std::vector<util::SimTime> latencies_;
  std::vector<double> losses_;
  OptimizerParams params_;
};

TEST_F(OptimizerOnLtn, HealthyNetworkNeedsOnePath) {
  // With lossless links, a single timely path already achieves 1.0; the
  // greedy loop must stop immediately (no gain to be had).
  const auto result = optimizeDisseminationGraph(
      topology_.graph(), flow_, losses_, latencies_, params_);
  EXPECT_DOUBLE_EQ(result.onTimeProbability, 1.0);
  EXPECT_EQ(result.steps.size(), 1u);
  EXPECT_LE(result.graph.edgeCount(), 4u);
  EXPECT_TRUE(result.graph.connectsFlow());
}

TEST_F(OptimizerOnLtn, RespectsEdgeBudget) {
  for (const graph::EdgeId e : topology_.graph().outEdges(flow_.source)) {
    losses_[e] = 0.5;
  }
  params_.edgeBudget = 7;
  params_.mcSamples = 1000;
  const auto result = optimizeDisseminationGraph(
      topology_.graph(), flow_, losses_, latencies_, params_);
  EXPECT_LE(result.graph.edgeCount(), 7u);
  EXPECT_TRUE(result.graph.connectsFlow());
}

TEST_F(OptimizerOnLtn, GainsAreMonotone) {
  for (const graph::EdgeId e : topology_.graph().outEdges(flow_.source)) {
    losses_[e] = 0.6;
  }
  params_.mcSamples = 1500;
  const auto result = optimizeDisseminationGraph(
      topology_.graph(), flow_, losses_, latencies_, params_);
  ASSERT_GE(result.steps.size(), 2u);
  for (std::size_t i = 1; i < result.steps.size(); ++i) {
    EXPECT_GT(result.steps[i].second, result.steps[i - 1].second);
    EXPECT_GT(result.steps[i].first, result.steps[i - 1].first);
  }
}

TEST_F(OptimizerOnLtn, UsesSourceRedundancyUnderSourceLoss) {
  // Every source link lossy: the optimizer should fan out over several
  // source links, just like the targeted source-problem graph does.
  for (const graph::EdgeId e : topology_.graph().outEdges(flow_.source)) {
    losses_[e] = 0.6;
  }
  params_.mcSamples = 2000;
  const auto result = optimizeDisseminationGraph(
      topology_.graph(), flow_, losses_, latencies_, params_);
  EXPECT_GE(result.graph.outEdges(flow_.source).size(), 3u);
  // And it must approach the targeted source-problem graph's quality.
  const auto targeted = routing::buildTargetedGraphs(
      topology_.graph(), flow_, latencies_, params_.delivery.deadline);
  util::Rng rng(5);
  const double targetedScore =
      onTimeProbabilityMC(targeted.sourceProblem, losses_, latencies_,
                          params_.delivery, 20'000, rng);
  EXPECT_GE(result.onTimeProbability, targetedScore - 0.03);
}

TEST_F(OptimizerOnLtn, AvoidsDeadLink) {
  // One source link completely dead: an optimized graph should waste no
  // budget on it when a budget squeeze is on.
  const auto dead = topology_.graph().outEdges(flow_.source)[0];
  losses_[dead] = 1.0;
  params_.edgeBudget = 6;
  params_.mcSamples = 1500;
  const auto result = optimizeDisseminationGraph(
      topology_.graph(), flow_, losses_, latencies_, params_);
  EXPECT_TRUE(result.graph.connectsFlow());
  EXPECT_GT(result.onTimeProbability, 0.99);
}

TEST_F(OptimizerOnLtn, NoFeasibleRouteReturnsEmpty) {
  OptimizerParams params;
  params.delivery.deadline = util::milliseconds(5);  // impossible
  const auto result = optimizeDisseminationGraph(
      topology_.graph(), flow_, losses_, latencies_, params);
  EXPECT_EQ(result.graph.edgeCount(), 0u);
  EXPECT_DOUBLE_EQ(result.onTimeProbability, 0.0);
}

TEST(OptimizerDiamond, ExactOnTinyGraph) {
  // Diamond with both first hops at 50% loss and no recovery: one path
  // delivers 50%, both paths 75%. The optimizer must find the union.
  test::Diamond d;
  std::vector<double> losses(d.g.edgeCount(), 0.0);
  losses[d.sa] = 0.5;
  losses[d.sb] = 0.5;
  OptimizerParams params;
  params.delivery.recoveryEnabled = false;
  params.delivery.deadline = util::milliseconds(40);
  params.mcSamples = 20'000;
  const auto result = optimizeDisseminationGraph(
      d.g, routing::Flow{d.s, d.d}, losses, d.g.baseLatencies(), params);
  EXPECT_GE(result.graph.outEdges(d.s).size(), 2u);
  EXPECT_NEAR(result.onTimeProbability, 0.75, 0.02);
}

}  // namespace
}  // namespace dg::playback
