// Determinism regression: the experiment runner promises byte-identical
// telemetry exports (and identical numeric results) for ANY --threads
// value. This pins that contract: a fixed config run with 1 worker and
// with 4 workers must produce the same per-flow numbers and the same
// bytes in every export format. Runs under TSan in CI, where it doubles
// as the race smoke for the runner + telemetry merge.
#include "playback/experiment.hpp"

#include <gtest/gtest.h>

#include <string>

#include "telemetry/export.hpp"
#include "telemetry/telemetry.hpp"
#include "trace/synth.hpp"
#include "trace/topology.hpp"

namespace dg::playback {
namespace {

struct RunOutput {
  ExperimentResult result;
  std::string prometheus;
  std::string json;
  std::string csv;
  std::string traceJson;
};

RunOutput runWithThreads(unsigned threads) {
  const trace::Topology topology = trace::Topology::ltn12();
  trace::GeneratorParams gen;
  gen.seed = 77;
  gen.duration = util::hours(8);
  const auto synthetic = generateSyntheticTrace(topology.graph(), gen);

  ExperimentConfig config;
  config.flows = {
      routing::Flow{topology.at("NYC"), topology.at("SJC")},
      routing::Flow{topology.at("WAS"), topology.at("SEA")},
      routing::Flow{topology.at("JHU"), topology.at("LAX")},
  };
  config.playback.mcSamples = 200;
  config.threads = threads;

  RunOutput out;
  telemetry::Telemetry telemetry(4096);
  out.result = runExperiment(topology.graph(), synthetic.trace, config,
                             &telemetry);
  out.prometheus = telemetry::toPrometheus(telemetry.metrics);
  out.json = telemetry::toJson(telemetry.metrics);
  out.csv = telemetry::toCsv(telemetry.metrics);
  out.traceJson = telemetry::toJson(telemetry.trace);
  return out;
}

TEST(ThreadDeterminism, ExportsAreByteIdenticalAcrossThreadCounts) {
  const RunOutput one = runWithThreads(1);
  const RunOutput four = runWithThreads(4);

  // Byte-identical exports in every format.
  EXPECT_EQ(one.prometheus, four.prometheus);
  EXPECT_EQ(one.json, four.json);
  EXPECT_EQ(one.csv, four.csv);
  EXPECT_EQ(one.traceJson, four.traceJson);

  // And bit-identical numeric results, job by job.
  ASSERT_EQ(one.result.perFlow.size(), four.result.perFlow.size());
  for (std::size_t i = 0; i < one.result.perFlow.size(); ++i) {
    const FlowSchemeResult& a = one.result.perFlow[i];
    const FlowSchemeResult& b = four.result.perFlow[i];
    EXPECT_EQ(a.unavailability, b.unavailability) << "job " << i;
    EXPECT_EQ(a.unavailableSeconds, b.unavailableSeconds) << "job " << i;
    EXPECT_EQ(a.averageCost, b.averageCost) << "job " << i;
    EXPECT_EQ(a.problematicIntervals, b.problematicIntervals) << "job " << i;
  }
  ASSERT_EQ(one.result.summary.size(), four.result.summary.size());
  for (std::size_t s = 0; s < one.result.summary.size(); ++s) {
    EXPECT_EQ(one.result.summary[s].unavailability,
              four.result.summary[s].unavailability);
    EXPECT_EQ(one.result.summary[s].averageCost,
              four.result.summary[s].averageCost);
    EXPECT_EQ(one.result.summary[s].gapCoverage,
              four.result.summary[s].gapCoverage);
  }
}

TEST(ThreadDeterminism, RepeatedRunsAreByteIdentical) {
  const RunOutput a = runWithThreads(4);
  const RunOutput b = runWithThreads(4);
  EXPECT_EQ(a.prometheus, b.prometheus);
  EXPECT_EQ(a.traceJson, b.traceJson);
}

}  // namespace
}  // namespace dg::playback
