// Persistent decision-memo sidecar: snapshot/absorb value round trips,
// file round trips, rejection of stale/truncated/corrupt caches (a cache
// problem may cost time, never correctness), and the warm-start path of
// the packed sweep.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "playback/experiment.hpp"
#include "playback/memo_cache.hpp"
#include "routing/decision_memo.hpp"
#include "store/reader.hpp"
#include "store/writer.hpp"
#include "test_support.hpp"
#include "util/rng.hpp"

namespace dg {
namespace {

trace::Trace randomTrace(const graph::Graph& g, std::size_t intervals,
                         std::uint64_t seed) {
  trace::Trace tr =
      test::healthyTrace(g, intervals, util::seconds(10), 1e-4);
  util::Rng rng(seed);
  for (std::size_t k = 0; k < intervals; ++k) {
    const auto e = static_cast<graph::EdgeId>(
        rng.uniformInt(static_cast<std::uint64_t>(g.edgeCount())));
    const auto t = static_cast<std::size_t>(
        rng.uniformInt(static_cast<std::uint64_t>(intervals)));
    trace::LinkConditions c = tr.baseline(e);
    if (rng.bernoulli(0.6)) {
      c.lossRate = rng.uniform(0.05, 0.9);
    } else {
      c.latency = 3 * c.latency + util::milliseconds(10);
    }
    tr.setCondition(e, t, c);
  }
  return tr;
}

std::string tempPath(const char* name) {
  return (std::filesystem::path(::testing::TempDir()) / name).string();
}

std::string packToTemp(const trace::Trace& tr, const char* name,
                       std::uint32_t chunkIntervals) {
  const std::string path = tempPath(name);
  store::WriterOptions options;
  options.chunkIntervals = chunkIntervals;
  store::packTrace(tr, path, options);
  return path;
}

/// A memo with both decision shapes (real route, no-route), two contexts
/// differing only in params, and an empty edge list.
void populate(routing::DecisionMemo& memo) {
  const std::vector<graph::EdgeId> listA = {3, 7, 11};
  const std::vector<graph::EdgeId> listB = {};
  const std::uint32_t a = memo.internEdgeList(listA);
  const std::uint32_t b = memo.internEdgeList(listB);
  routing::SchemeParams params;
  const std::uint64_t ctx1 = memo.contextKey(
      routing::SchemeKind::DynamicSinglePath, routing::Flow{1, 9}, params);
  params.deadline = util::milliseconds(80);
  const std::uint64_t ctx2 = memo.contextKey(
      routing::SchemeKind::DynamicSinglePath, routing::Flow{1, 9}, params);
  memo.storeDecision(ctx1, 5, a);
  memo.storeDecision(ctx1, 9, b);
  memo.storeDecision(ctx1, 12, routing::DecisionMemo::kNoRoute);
  memo.storeDecision(ctx2, 5, b);
}

void expectSnapshotsEqual(const routing::DecisionMemo::Snapshot& a,
                          const routing::DecisionMemo::Snapshot& b) {
  ASSERT_EQ(a.edgeLists.size(), b.edgeLists.size());
  for (std::size_t i = 0; i < a.edgeLists.size(); ++i) {
    EXPECT_EQ(a.edgeLists[i], b.edgeLists[i]);
  }
  ASSERT_EQ(a.contexts.size(), b.contexts.size());
  for (std::size_t i = 0; i < a.contexts.size(); ++i) {
    EXPECT_EQ(a.contexts[i].kind, b.contexts[i].kind);
    EXPECT_TRUE(a.contexts[i].flow == b.contexts[i].flow);
    EXPECT_TRUE(a.contexts[i].params == b.contexts[i].params);
    EXPECT_EQ(a.contexts[i].decisions, b.contexts[i].decisions);
  }
}

TEST(DecisionMemoSnapshot, AbsorbRoundTripPreservesEverything) {
  routing::DecisionMemo original;
  populate(original);
  const auto snap = original.snapshot();

  routing::DecisionMemo copy;
  copy.absorb(snap);
  expectSnapshotsEqual(copy.snapshot(), snap);
  EXPECT_EQ(copy.stats().decisions, original.stats().decisions);
  EXPECT_EQ(copy.stats().contexts, original.stats().contexts);
  EXPECT_EQ(copy.stats().edgeLists, original.stats().edgeLists);
}

TEST(DecisionMemoSnapshot, AbsorbKeepsExistingEntries) {
  routing::DecisionMemo memo;
  populate(memo);
  const std::uint32_t winner =
      memo.internEdgeList(std::vector<graph::EdgeId>{42});
  routing::SchemeParams params;
  const std::uint64_t ctx = memo.contextKey(
      routing::SchemeKind::DynamicSinglePath, routing::Flow{1, 9}, params);
  // Conflicting snapshot for (ctx1, fp 5): existing entries must win.
  routing::DecisionMemo donor;
  populate(donor);
  memo.storeDecision(ctx, 99, winner);
  memo.absorb(donor.snapshot());
  std::vector<graph::EdgeId> out;
  memo.edgeListInto(*memo.findDecision(ctx, 99), out);
  EXPECT_EQ(out, (std::vector<graph::EdgeId>{42}));
}

TEST(MemoCacheFile, MissingFileReportsMissing) {
  routing::DecisionMemo memo;
  EXPECT_EQ(playback::loadMemoCache(tempPath("nope.dgmemo"), 1, memo),
            playback::MemoCacheLoadResult::kMissing);
  EXPECT_EQ(memo.stats().decisions, 0u);
}

TEST(MemoCacheFile, SaveLoadRoundTrip) {
  routing::DecisionMemo memo;
  populate(memo);
  const std::string path = tempPath("roundtrip.dgmemo");
  playback::saveMemoCache(path, 0xFEEDFACEu, memo);

  routing::DecisionMemo loaded;
  ASSERT_EQ(playback::loadMemoCache(path, 0xFEEDFACEu, loaded),
            playback::MemoCacheLoadResult::kLoaded);
  expectSnapshotsEqual(loaded.snapshot(), memo.snapshot());
}

TEST(MemoCacheFile, WrongFingerprintRejected) {
  routing::DecisionMemo memo;
  populate(memo);
  const std::string path = tempPath("stale.dgmemo");
  playback::saveMemoCache(path, 111, memo);
  routing::DecisionMemo loaded;
  EXPECT_EQ(playback::loadMemoCache(path, 222, loaded),
            playback::MemoCacheLoadResult::kRejected);
  EXPECT_EQ(loaded.stats().decisions, 0u);
}

TEST(MemoCacheFile, TruncationAndCorruptionRejected) {
  routing::DecisionMemo memo;
  populate(memo);
  const std::string path = tempPath("corrupt.dgmemo");
  playback::saveMemoCache(path, 7, memo);

  std::vector<char> bytes;
  {
    std::ifstream in(path, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in), {});
  }
  ASSERT_GT(bytes.size(), 40u);

  const auto writeBytes = [&](const std::vector<char>& data) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(data.data(), static_cast<std::streamsize>(data.size()));
  };

  // Truncation (drops the payload CRC and more).
  writeBytes({bytes.begin(), bytes.end() - 5});
  routing::DecisionMemo loaded;
  EXPECT_EQ(playback::loadMemoCache(path, 7, loaded),
            playback::MemoCacheLoadResult::kRejected);

  // One flipped payload byte: payload CRC catches it.
  std::vector<char> flipped = bytes;
  flipped[36] = static_cast<char>(flipped[36] ^ 0x40);
  writeBytes(flipped);
  EXPECT_EQ(playback::loadMemoCache(path, 7, loaded),
            playback::MemoCacheLoadResult::kRejected);

  // One flipped header byte: header CRC catches it.
  flipped = bytes;
  flipped[13] = static_cast<char>(flipped[13] ^ 0x01);
  writeBytes(flipped);
  EXPECT_EQ(playback::loadMemoCache(path, 7, loaded),
            playback::MemoCacheLoadResult::kRejected);

  // The intact original still loads (the fixture itself is valid).
  writeBytes(bytes);
  EXPECT_EQ(playback::loadMemoCache(path, 7, loaded),
            playback::MemoCacheLoadResult::kLoaded);
  EXPECT_EQ(loaded.stats().decisions, memo.stats().decisions);
}

TEST(StoreFingerprint, StableAcrossReopensAndContentSensitive) {
  const auto topology = trace::Topology::ltn12();
  const trace::Trace a = randomTrace(topology.graph(), 64, 1);
  trace::Trace b = a;
  {
    trace::LinkConditions c = b.baseline(2);
    c.lossRate = 0.123;
    b.setCondition(2, 40, c);
  }
  const std::string pathA = packToTemp(a, "fp_a.dgtrace", 16);
  const std::string pathA2 = packToTemp(a, "fp_a2.dgtrace", 16);
  const std::string pathA3 = packToTemp(a, "fp_a3.dgtrace", 32);
  const std::string pathB = packToTemp(b, "fp_b.dgtrace", 16);
  auto open = [](const std::string& p) {
    return store::PackedTraceReader::open(p);
  };
  const std::uint64_t fpA = open(pathA).contentFingerprint();
  EXPECT_EQ(fpA, open(pathA).contentFingerprint());   // reopen: stable
  EXPECT_EQ(fpA, open(pathA2).contentFingerprint());  // same bytes
  EXPECT_NE(fpA, open(pathB).contentFingerprint());   // one condition off
  EXPECT_NE(fpA, open(pathA3).contentFingerprint());  // different layout
}

class MemoCacheSweep : public ::testing::Test {
 protected:
  MemoCacheSweep()
      : topology_(trace::Topology::ltn12()),
        trace_(randomTrace(topology_.graph(), 64, 99)) {
    config_.flows = playback::transcontinentalFlows(topology_);
    config_.flows.resize(2);
    config_.playback.mcSamples = 100;
    config_.threads = 2;
  }

  trace::Topology topology_;
  trace::Trace trace_;
  playback::ExperimentConfig config_;
};

TEST_F(MemoCacheSweep, ColdThenWarmRunsMatchAndHit) {
  const std::string tracePath = packToTemp(trace_, "sweep.dgtrace", 16);
  config_.memoCachePath = tempPath("sweep.dgmemo");
  // TempDir() outlives the process: drop any sidecar a previous test run
  // left behind so the first run really starts cold.
  std::filesystem::remove(config_.memoCachePath);

  const auto cold = playback::runPackedExperiment(topology_.graph(),
                                                  tracePath, config_);
  EXPECT_EQ(cold.memoCacheLoad, playback::MemoCacheLoadResult::kMissing);
  EXPECT_GT(cold.memoStats.decisions, 0u);
  ASSERT_TRUE(std::filesystem::exists(config_.memoCachePath));

  const auto warm = playback::runPackedExperiment(topology_.graph(),
                                                  tracePath, config_);
  EXPECT_EQ(warm.memoCacheLoad, playback::MemoCacheLoadResult::kLoaded);
  EXPECT_GT(warm.memoStats.decisionHits, cold.memoStats.decisionHits);
  ASSERT_EQ(cold.perFlow.size(), warm.perFlow.size());
  for (std::size_t i = 0; i < cold.perFlow.size(); ++i) {
    EXPECT_EQ(cold.perFlow[i].unavailability, warm.perFlow[i].unavailability);
    EXPECT_EQ(cold.perFlow[i].averageCost, warm.perFlow[i].averageCost);
    EXPECT_EQ(cold.perFlow[i].averageLatencyUs,
              warm.perFlow[i].averageLatencyUs);
  }
}

TEST_F(MemoCacheSweep, CacheOfOtherTraceRejectedAndRunStaysCorrect) {
  const std::string pathA = packToTemp(trace_, "sweep_a.dgtrace", 16);
  const trace::Trace other = randomTrace(topology_.graph(), 64, 1234);
  const std::string pathB = packToTemp(other, "sweep_b.dgtrace", 16);
  config_.memoCachePath = tempPath("cross.dgmemo");

  playback::runPackedExperiment(topology_.graph(), pathA, config_);

  // Same sidecar, different trace: must be rejected, and the run must
  // equal a fresh cache-less run of that trace.
  const auto crossed = playback::runPackedExperiment(topology_.graph(),
                                                     pathB, config_);
  EXPECT_EQ(crossed.memoCacheLoad, playback::MemoCacheLoadResult::kRejected);
  playback::ExperimentConfig noCache = config_;
  noCache.memoCachePath.clear();
  const auto fresh = playback::runPackedExperiment(topology_.graph(), pathB,
                                                   noCache);
  ASSERT_EQ(crossed.perFlow.size(), fresh.perFlow.size());
  for (std::size_t i = 0; i < crossed.perFlow.size(); ++i) {
    EXPECT_EQ(crossed.perFlow[i].unavailability,
              fresh.perFlow[i].unavailability);
    EXPECT_EQ(crossed.perFlow[i].averageCost, fresh.perFlow[i].averageCost);
  }
  // And the sidecar now belongs to trace B.
  const auto warm = playback::runPackedExperiment(topology_.graph(), pathB,
                                                  config_);
  EXPECT_EQ(warm.memoCacheLoad, playback::MemoCacheLoadResult::kLoaded);
}

}  // namespace
}  // namespace dg
