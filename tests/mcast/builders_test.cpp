// Multicast graph builders: union covers every receiver, the tree union
// shares edges, and single-receiver builds anchor to the unicast graphs.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "mcast/builders.hpp"
#include "routing/network_view.hpp"
#include "routing/scheme.hpp"
#include "trace/synth.hpp"
#include "trace/topology.hpp"

namespace dg::mcast {
namespace {

trace::Trace shortTrace(const graph::Graph& overlay) {
  trace::GeneratorParams params;
  params.seed = 5;
  params.duration = util::minutes(10);
  return trace::generateSyntheticTrace(overlay, params).trace;
}

bool reaches(const graph::DisseminationGraph& dg, graph::NodeId node) {
  const auto nodes = dg.reachableNodes();
  return std::find(nodes.begin(), nodes.end(), node) != nodes.end();
}

TEST(Builders, ReceiverUnionCoversEveryReceiver) {
  const trace::Topology topology = trace::Topology::ltn12();
  const trace::Trace tr = shortTrace(topology.graph());
  const routing::NetworkView baseline = routing::NetworkView::baseline(tr);

  Group group;
  group.source = topology.at("NYC");
  group.receivers = {topology.at("SJC"), topology.at("LAX"),
                     topology.at("FRA")};
  const std::vector<routing::SchemeParams> params(group.receivers.size());

  for (const routing::SchemeKind kind :
       {routing::SchemeKind::StaticSinglePath,
        routing::SchemeKind::StaticTwoDisjoint,
        routing::SchemeKind::TimeConstrainedFlooding}) {
    const graph::DisseminationGraph dg = buildReceiverUnion(
        topology.graph(), group, baseline, kind, params);
    EXPECT_EQ(dg.source(), group.source);
    for (const graph::NodeId receiver : group.receivers) {
      EXPECT_TRUE(reaches(dg, receiver))
          << routing::schemeName(kind) << " union misses receiver "
          << topology.name(receiver);
    }
  }
}

TEST(Builders, TreeUnionCoversReceiversAndSharesEdges) {
  const trace::Topology topology = trace::Topology::ltn12();
  const trace::Trace tr = shortTrace(topology.graph());
  const routing::NetworkView baseline = routing::NetworkView::baseline(tr);

  Group group;
  group.source = topology.at("NYC");
  group.receivers = {topology.at("SJC"), topology.at("LAX"),
                     topology.at("DEN")};
  const std::vector<routing::SchemeParams> params(group.receivers.size());

  const graph::DisseminationGraph tree =
      buildTreeUnion(topology.graph(), group, baseline, params);
  for (const graph::NodeId receiver : group.receivers)
    EXPECT_TRUE(reaches(tree, receiver));

  // The whole point of the tree union: sharing beats three independent
  // paths. The union can never have more edges than the per-receiver
  // single-path union, and on ltn12's west-coast cluster it has fewer.
  const graph::DisseminationGraph independent = buildReceiverUnion(
      topology.graph(), group, baseline,
      routing::SchemeKind::StaticSinglePath, params);
  EXPECT_LE(tree.edgeCount(), independent.edgeCount());
}

TEST(Builders, SingleReceiverTreeEqualsUnicastStaticSingleGraph) {
  const trace::Topology topology = trace::Topology::ltn12();
  const trace::Trace tr = shortTrace(topology.graph());
  const routing::NetworkView baseline = routing::NetworkView::baseline(tr);

  Group group;
  group.source = topology.at("NYC");
  group.receivers = {topology.at("SJC")};
  const std::vector<routing::SchemeParams> params(1);

  const graph::DisseminationGraph tree =
      buildTreeUnion(topology.graph(), group, baseline, params);

  const routing::Flow flow{group.source, group.receivers.front()};
  auto unicast = routing::makeScheme(routing::SchemeKind::StaticSinglePath,
                                     topology.graph(), flow, params.front());
  unicast->initialize(baseline);
  EXPECT_EQ(tree.edges(), unicast->select(baseline).edges());
}

TEST(Builders, UnreachableReceiverLeavesGraphPartialNotThrowing)
{
  // A two-component overlay: 0-1 connected, 2 isolated from them, with
  // an edge 2->3 so node 2 has degree > 0.
  graph::Graph overlay;
  overlay.addNodes(4);
  overlay.addBidirectional(0, 1, util::milliseconds(5));
  overlay.addBidirectional(2, 3, util::milliseconds(5));
  trace::GeneratorParams traceParams;
  traceParams.seed = 1;
  traceParams.duration = util::minutes(10);
  const trace::Trace tr =
      trace::generateSyntheticTrace(overlay, traceParams).trace;
  const routing::NetworkView baseline = routing::NetworkView::baseline(tr);

  Group group;
  group.source = 0;
  group.receivers = {1, 2};
  const std::vector<routing::SchemeParams> params(2);
  const graph::DisseminationGraph dg =
      buildTreeUnion(overlay, group, baseline, params);
  EXPECT_TRUE(reaches(dg, 1));
  EXPECT_FALSE(reaches(dg, 2));
}

}  // namespace
}  // namespace dg::mcast
