// Group experiment runners: bit-identical results and byte-identical
// telemetry exports at any thread count, packed == in-memory blocked
// run, and per-group window semantics.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "mcast/experiment.hpp"
#include "store/writer.hpp"
#include "telemetry/export.hpp"
#include "telemetry/telemetry.hpp"
#include "trace/synth.hpp"
#include "trace/topology.hpp"

namespace dg::mcast {
namespace {

trace::Trace experimentTrace(const graph::Graph& overlay) {
  trace::GeneratorParams params;
  params.seed = 11;
  params.duration = util::hours(4);
  params.nodeEventsPerDay = 40.0;
  params.linkEventsPerDay = 40.0;
  return trace::generateSyntheticTrace(overlay, params).trace;
}

GroupExperimentConfig baseConfig(const trace::Topology& topology) {
  GroupExperimentConfig config;
  Group a;
  a.source = topology.at("NYC");
  a.receivers = {topology.at("SJC"), topology.at("LAX")};
  Group b;
  b.source = topology.at("FRA");
  b.receivers = {topology.at("SEA"), topology.at("ATL"), topology.at("CHI")};
  config.groups = {a, b};
  config.schemes = {GroupSchemeKind::kStaticTrees,
                    GroupSchemeKind::kDynamicMesh,
                    GroupSchemeKind::kTargetedReceivers};
  config.playback.base.mcSamples = 100;
  return config;
}

void expectResultsIdentical(const GroupExperimentResult& a,
                            const GroupExperimentResult& b) {
  ASSERT_EQ(a.perGroup.size(), b.perGroup.size());
  for (std::size_t i = 0; i < a.perGroup.size(); ++i) {
    const GroupSchemeResult& x = a.perGroup[i];
    const GroupSchemeResult& y = b.perGroup[i];
    EXPECT_EQ(x.unavailabilityAll, y.unavailabilityAll) << "job " << i;
    EXPECT_EQ(x.unavailabilityK, y.unavailabilityK) << "job " << i;
    EXPECT_EQ(x.unavailableAllSeconds, y.unavailableAllSeconds) << "job " << i;
    EXPECT_EQ(x.problematicIntervals, y.problematicIntervals) << "job " << i;
    EXPECT_EQ(x.averageCost, y.averageCost) << "job " << i;
    ASSERT_EQ(x.receivers.size(), y.receivers.size());
    for (std::size_t r = 0; r < x.receivers.size(); ++r) {
      EXPECT_EQ(x.receivers[r].unavailability, y.receivers[r].unavailability);
      EXPECT_EQ(x.receivers[r].averageLatencyUs,
                y.receivers[r].averageLatencyUs);
    }
  }
  ASSERT_EQ(a.summary.size(), b.summary.size());
  for (std::size_t s = 0; s < a.summary.size(); ++s) {
    EXPECT_EQ(a.summary[s].unavailabilityAll, b.summary[s].unavailabilityAll);
    EXPECT_EQ(a.summary[s].averageCost, b.summary[s].averageCost);
    EXPECT_EQ(a.summary[s].worstReceiverUnavailability,
              b.summary[s].worstReceiverUnavailability);
  }
}

TEST(GroupExperiment, ThreadCountDoesNotChangeResultsOrTelemetry) {
  const trace::Topology topology = trace::Topology::ltn12();
  const trace::Trace tr = experimentTrace(topology.graph());
  GroupExperimentConfig config = baseConfig(topology);

  config.threads = 1;
  telemetry::Telemetry t1;
  const GroupExperimentResult r1 =
      runGroupExperiment(topology.graph(), tr, config, &t1);

  config.threads = 4;
  telemetry::Telemetry t4;
  const GroupExperimentResult r4 =
      runGroupExperiment(topology.graph(), tr, config, &t4);

  expectResultsIdentical(r1, r4);
  EXPECT_EQ(telemetry::toPrometheus(t1.metrics),
            telemetry::toPrometheus(t4.metrics));
  EXPECT_GT(t1.metrics.counterValue("dg_mcast_jobs_total", {}), 0.0);
}

TEST(GroupExperiment, PackedRunnerMatchesInMemoryBlockedRun) {
  const trace::Topology topology = trace::Topology::ltn12();
  const trace::Trace tr = experimentTrace(topology.graph());

  const std::string path =
      (std::filesystem::path(::testing::TempDir()) / "mcast_experiment.dgtrace")
          .string();
  store::WriterOptions options;
  options.chunkIntervals = 64;
  store::packTrace(tr, path, options);

  GroupExperimentConfig config = baseConfig(topology);
  config.threads = 4;
  telemetry::Telemetry packedT1;
  const GroupExperimentResult packed =
      runPackedGroupExperiment(topology.graph(), path, config, &packedT1);

  // The packed runner's contract: bit-identical to an in-memory run with
  // chunk-aligned accumulation blocks and cursor-fed decisions.
  GroupExperimentConfig blocked = config;
  blocked.playback.base.conditionCursor = true;
  blocked.playback.base.accumBlockIntervals = 64;
  const GroupExperimentResult inMemory =
      runGroupExperiment(topology.graph(), tr, blocked);
  expectResultsIdentical(packed, inMemory);

  // And thread invariance with byte-identical telemetry on the packed
  // path itself.
  config.threads = 1;
  telemetry::Telemetry packedSeq;
  const GroupExperimentResult packedAt1 =
      runPackedGroupExperiment(topology.graph(), path, config, &packedSeq);
  expectResultsIdentical(packed, packedAt1);
  EXPECT_EQ(telemetry::toPrometheus(packedSeq.metrics),
            telemetry::toPrometheus(packedT1.metrics));
}

TEST(GroupExperiment, FullCoverWindowMatchesUnwindowedRun) {
  const trace::Topology topology = trace::Topology::ltn12();
  const trace::Trace tr = experimentTrace(topology.graph());

  GroupExperimentConfig config = baseConfig(topology);
  config.threads = 2;
  config.playback.base.conditionCursor = true;
  const GroupExperimentResult whole =
      runGroupExperiment(topology.graph(), tr, config);

  config.groupWindows = {GroupWindow{}, GroupWindow{}};
  const GroupExperimentResult windowed =
      runGroupExperiment(topology.graph(), tr, config);
  expectResultsIdentical(whole, windowed);
}

TEST(GroupExperiment, NarrowWindowScoresOnlyItsIntervals) {
  const trace::Topology topology = trace::Topology::ltn12();
  const trace::Trace tr = experimentTrace(topology.graph());
  const std::size_t intervals = tr.intervalCount();

  GroupExperimentConfig config = baseConfig(topology);
  config.threads = 2;
  config.schemes = {GroupSchemeKind::kStaticMesh};
  const GroupExperimentResult whole =
      runGroupExperiment(topology.graph(), tr, config);

  config.groupWindows = {GroupWindow{0, intervals / 4},
                         GroupWindow{intervals / 4, intervals / 2}};
  const GroupExperimentResult windowed =
      runGroupExperiment(topology.graph(), tr, config);
  for (std::size_t g = 0; g < config.groups.size(); ++g) {
    EXPECT_LE(windowed.at(g, 0, 1).unavailableAllSeconds,
              whole.at(g, 0, 1).unavailableAllSeconds + 1e-9);
    EXPECT_LE(windowed.at(g, 0, 1).problematicIntervals,
              whole.at(g, 0, 1).problematicIntervals);
  }
}

TEST(GroupExperiment, RejectsMalformedConfigs) {
  const trace::Topology topology = trace::Topology::ltn12();
  const trace::Trace tr = experimentTrace(topology.graph());

  GroupExperimentConfig empty;
  EXPECT_THROW(runGroupExperiment(topology.graph(), tr, empty),
               std::invalid_argument);

  GroupExperimentConfig config = baseConfig(topology);
  config.groupWindows = {GroupWindow{}};  // not parallel to groups
  EXPECT_THROW(runGroupExperiment(topology.graph(), tr, config),
               std::invalid_argument);

  config.groupWindows = {GroupWindow{10, 10}, GroupWindow{}};  // empty window
  EXPECT_THROW(runGroupExperiment(topology.graph(), tr, config),
               std::invalid_argument);
}

}  // namespace
}  // namespace dg::mcast
