// Group playback engine semantics, anchored by the subsystem's central
// contract: a single-receiver group is bit-identical to the unicast
// playback of the scheme's unicastEquivalent(), for every scheme pair,
// on a trace that exercises both the deterministic and the Monte-Carlo
// evaluation paths.
#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "mcast/playback.hpp"
#include "playback/playback.hpp"
#include "telemetry/telemetry.hpp"
#include "trace/synth.hpp"
#include "trace/topology.hpp"

namespace dg::mcast {
namespace {

/// A 6-hour ltn12 trace dense enough in loss/latency events that every
/// scheme hits Monte-Carlo intervals, graph switches, and clean spans.
trace::SyntheticTrace lossyTrace(const graph::Graph& overlay) {
  trace::GeneratorParams params;
  params.seed = 11;
  params.duration = util::hours(6);
  params.nodeEventsPerDay = 40.0;
  params.linkEventsPerDay = 40.0;
  return trace::generateSyntheticTrace(overlay, params);
}

double mcastMcIntervals(const telemetry::Telemetry& telemetry) {
  double total = 0.0;
  for (const auto& [key, value] : telemetry.metrics.samples()) {
    if (key.find("dg_mcast_mc_intervals_total") != std::string::npos)
      total += value;
  }
  return total;
}

TEST(GroupPlayback, SingleReceiverGroupBitIdenticalToUnicastForEveryScheme) {
  const trace::Topology topology = trace::Topology::ltn12();
  const trace::SyntheticTrace synth = lossyTrace(topology.graph());

  playback::PlaybackParams unicastParams;
  unicastParams.mcSamples = 200;
  const playback::PlaybackEngine unicastEngine(topology.graph(), synth.trace,
                                               unicastParams);

  GroupPlaybackParams groupParams;
  groupParams.base = unicastParams;
  const GroupPlaybackEngine groupEngine(topology.graph(), synth.trace,
                                        groupParams);

  const routing::Flow flow{topology.at("NYC"), topology.at("SJC")};
  Group group;
  group.source = flow.source;
  group.receivers = {flow.destination};

  bool sawMonteCarlo = false;
  for (const GroupSchemeKind kind : allGroupSchemeKinds()) {
    const routing::SchemeKind unicastKind = unicastEquivalent(kind);
    const playback::FlowSchemeResult unicast =
        unicastEngine.run(flow, unicastKind, routing::SchemeParams{});
    telemetry::Telemetry telemetry;
    const GroupSchemeResult grouped = groupEngine.run(
        group, kind, routing::SchemeParams{}, &telemetry);
    if (mcastMcIntervals(telemetry) > 0) sawMonteCarlo = true;

    // Bitwise equality, not tolerance: the group engine must reduce to
    // the unicast engine exactly when the receiver set is a singleton.
    EXPECT_EQ(grouped.unavailabilityAll, unicast.unavailability)
        << groupSchemeName(kind);
    EXPECT_EQ(grouped.unavailabilityK, unicast.unavailability)
        << groupSchemeName(kind);
    EXPECT_EQ(grouped.unavailableAllSeconds, unicast.unavailableSeconds)
        << groupSchemeName(kind);
    EXPECT_EQ(grouped.problematicIntervals, unicast.problematicIntervals)
        << groupSchemeName(kind);
    EXPECT_EQ(grouped.averageCost, unicast.averageCost)
        << groupSchemeName(kind);
    ASSERT_EQ(grouped.receivers.size(), 1u);
    EXPECT_EQ(grouped.receivers[0].unavailability, unicast.unavailability)
        << groupSchemeName(kind);
    EXPECT_EQ(grouped.receivers[0].averageLatencyUs, unicast.averageLatencyUs)
        << groupSchemeName(kind);
    ASSERT_EQ(grouped.problems.size(), unicast.problems.size())
        << groupSchemeName(kind);
    for (std::size_t i = 0; i < grouped.problems.size(); ++i) {
      EXPECT_EQ(grouped.problems[i].interval, unicast.problems[i].interval);
      EXPECT_EQ(grouped.problems[i].missProbability,
                unicast.problems[i].missProbability);
    }
  }
  EXPECT_TRUE(sawMonteCarlo)
      << "trace never exercised the Monte-Carlo path; the bit-identity "
         "claim was only tested on deterministic intervals";
}

TEST(GroupPlayback, MultiReceiverInvariantsHold) {
  const trace::Topology topology = trace::Topology::ltn12();
  const trace::SyntheticTrace synth = lossyTrace(topology.graph());

  GroupPlaybackParams params;
  params.base.mcSamples = 200;
  const GroupPlaybackEngine engine(topology.graph(), synth.trace, params);

  Group group;
  group.source = topology.at("NYC");
  group.receivers = {topology.at("SJC"), topology.at("LAX"),
                     topology.at("DEN")};

  for (const GroupSchemeKind kind :
       {GroupSchemeKind::kDynamicMesh, GroupSchemeKind::kStaticTrees}) {
    const GroupSchemeResult result =
        engine.run(group, kind, routing::SchemeParams{});
    ASSERT_EQ(result.receivers.size(), 3u);
    // Delivered-to-all is at least as hard as any single receiver.
    for (const GroupReceiverResult& receiver : result.receivers) {
      EXPECT_GE(result.unavailabilityAll, receiver.unavailability - 1e-12)
          << groupSchemeName(kind);
    }
    // deliveredK defaults to "all receivers".
    EXPECT_EQ(result.unavailabilityK, result.unavailabilityAll);
    EXPECT_GT(result.averageCost, 0.0);
  }
}

TEST(GroupPlayback, DeliveredKRelaxesDeliveredAll) {
  const trace::Topology topology = trace::Topology::ltn12();
  const trace::SyntheticTrace synth = lossyTrace(topology.graph());

  GroupPlaybackParams all;
  all.base.mcSamples = 200;
  GroupPlaybackParams kOne = all;
  kOne.deliveredK = 1;

  const GroupPlaybackEngine engineAll(topology.graph(), synth.trace, all);
  const GroupPlaybackEngine engineK(topology.graph(), synth.trace, kOne);

  Group group;
  group.source = topology.at("NYC");
  group.receivers = {topology.at("SJC"), topology.at("LAX")};

  const GroupSchemeResult rAll = engineAll.run(
      group, GroupSchemeKind::kStaticMesh, routing::SchemeParams{});
  const GroupSchemeResult rK = engineK.run(
      group, GroupSchemeKind::kStaticMesh, routing::SchemeParams{});
  // Reaching at least one receiver is never harder than reaching all;
  // the all-receivers line itself is unaffected by k.
  EXPECT_LE(rK.unavailabilityK, rK.unavailabilityAll + 1e-12);
  EXPECT_EQ(rK.unavailabilityAll, rAll.unavailabilityAll);
}

TEST(GroupPlayback, PerReceiverDeadlinesAreHonored) {
  const trace::Topology topology = trace::Topology::ltn12();
  const trace::SyntheticTrace synth = lossyTrace(topology.graph());

  GroupPlaybackParams params;
  params.base.mcSamples = 100;
  const GroupPlaybackEngine engine(topology.graph(), synth.trace, params);

  Group group;
  group.source = topology.at("NYC");
  group.receivers = {topology.at("SJC"), topology.at("FRA")};
  // An absurdly tight deadline for FRA makes that receiver miss always;
  // SJC keeps the default and stays mostly served.
  group.deadlines = {util::milliseconds(65), util::microseconds(1)};

  const GroupSchemeResult result = engine.run(
      group, GroupSchemeKind::kStaticMesh, routing::SchemeParams{});
  ASSERT_EQ(result.receivers.size(), 2u);
  EXPECT_EQ(result.receivers[1].unavailability, 1.0);
  EXPECT_LT(result.receivers[0].unavailability, 0.5);
  EXPECT_EQ(result.unavailabilityAll, 1.0);
}

TEST(GroupPlayback, ChunkPartialsFoldToBlockedRunExactly) {
  const trace::Topology topology = trace::Topology::ltn12();
  const trace::SyntheticTrace synth = lossyTrace(topology.graph());
  const std::size_t intervals = synth.trace.intervalCount();
  const std::size_t block = 100;

  GroupPlaybackParams params;
  params.base.mcSamples = 200;
  params.base.accumBlockIntervals = block;
  const GroupPlaybackEngine engine(topology.graph(), synth.trace, params);

  Group group;
  group.source = topology.at("NYC");
  group.receivers = {topology.at("SJC"), topology.at("LAX")};

  for (const GroupSchemeKind kind :
       {GroupSchemeKind::kDynamicTrees, GroupSchemeKind::kTargetedReceivers,
        GroupSchemeKind::kGroupFlooding}) {
    const GroupSchemeResult whole =
        engine.run(group, kind, routing::SchemeParams{});

    GroupRunPartial folded;
    for (std::size_t first = 0; first < intervals; first += block) {
      const std::size_t last = std::min(first + block, intervals);
      folded.merge(engine.runChunkPartial(group, kind,
                                          routing::SchemeParams{}, first,
                                          last, nullptr, nullptr));
    }
    const GroupSchemeResult chunked =
        engine.finalizePartial(group, kind, std::move(folded));

    EXPECT_EQ(chunked.unavailabilityAll, whole.unavailabilityAll)
        << groupSchemeName(kind);
    EXPECT_EQ(chunked.unavailabilityK, whole.unavailabilityK)
        << groupSchemeName(kind);
    EXPECT_EQ(chunked.unavailableAllSeconds, whole.unavailableAllSeconds)
        << groupSchemeName(kind);
    EXPECT_EQ(chunked.averageCost, whole.averageCost)
        << groupSchemeName(kind);
    ASSERT_EQ(chunked.receivers.size(), whole.receivers.size());
    for (std::size_t r = 0; r < whole.receivers.size(); ++r) {
      EXPECT_EQ(chunked.receivers[r].unavailability,
                whole.receivers[r].unavailability)
          << groupSchemeName(kind) << " receiver " << r;
      EXPECT_EQ(chunked.receivers[r].averageLatencyUs,
                whole.receivers[r].averageLatencyUs)
          << groupSchemeName(kind) << " receiver " << r;
    }
  }
}

}  // namespace
}  // namespace dg::mcast
