// Group shape validation, spec parsing, labels, and the group-scheme
// name registry.
#include <gtest/gtest.h>

#include <stdexcept>

#include "mcast/group.hpp"
#include "mcast/scheme.hpp"
#include "trace/topology.hpp"

namespace dg::mcast {
namespace {

Group makeGroup(graph::NodeId source, std::vector<graph::NodeId> receivers) {
  Group group;
  group.source = source;
  group.receivers = std::move(receivers);
  return group;
}

TEST(Group, ValidateAcceptsWellFormedGroups) {
  EXPECT_NO_THROW(validateGroup(makeGroup(0, {1, 2, 3}), 4));
  EXPECT_NO_THROW(validateGroup(makeGroup(3, {0}), 4));
  Group withDeadlines = makeGroup(0, {1, 2});
  withDeadlines.deadlines = {util::milliseconds(65), util::milliseconds(80)};
  EXPECT_NO_THROW(validateGroup(withDeadlines, 3));
}

TEST(Group, ValidateRejectsMalformedGroups) {
  EXPECT_THROW(validateGroup(makeGroup(0, {}), 4), std::invalid_argument);
  EXPECT_THROW(validateGroup(makeGroup(4, {1}), 4), std::invalid_argument);
  EXPECT_THROW(validateGroup(makeGroup(0, {4}), 4), std::invalid_argument);
  EXPECT_THROW(validateGroup(makeGroup(0, {0}), 4), std::invalid_argument);
  EXPECT_THROW(validateGroup(makeGroup(0, {1, 2, 1}), 4),
               std::invalid_argument);
  Group badDeadlines = makeGroup(0, {1, 2});
  badDeadlines.deadlines = {util::milliseconds(65)};  // not parallel
  EXPECT_THROW(validateGroup(badDeadlines, 3), std::invalid_argument);
  badDeadlines.deadlines = {util::milliseconds(65), 0};  // non-positive
  EXPECT_THROW(validateGroup(badDeadlines, 3), std::invalid_argument);
}

TEST(Group, ReceiverAccessors) {
  Group group = makeGroup(0, {2, 3});
  const routing::Flow flow = receiverFlow(group, 1);
  EXPECT_EQ(flow.source, 0u);
  EXPECT_EQ(flow.destination, 3u);
  EXPECT_EQ(receiverDeadline(group, 0, util::milliseconds(65)),
            util::milliseconds(65));
  group.deadlines = {util::milliseconds(10), util::milliseconds(20)};
  EXPECT_EQ(receiverDeadline(group, 1, util::milliseconds(65)),
            util::milliseconds(20));
}

TEST(Group, Labels) {
  const Group group = makeGroup(0, {2, 3});
  EXPECT_EQ(groupLabel(group), "0->2+3");
  const trace::Topology topology = trace::Topology::ltn12();
  Group named;
  named.source = topology.at("NYC");
  named.receivers = {topology.at("SJC"), topology.at("LAX")};
  EXPECT_EQ(groupName(named, topology), "NYC->SJC+LAX");
}

TEST(Group, ParseGroupSpecRoundTripsNames) {
  const trace::Topology topology = trace::Topology::ltn12();
  const Group group = parseGroupSpec("NYC:SJC+LAX+DEN", topology);
  EXPECT_EQ(group.source, topology.at("NYC"));
  ASSERT_EQ(group.receivers.size(), 3u);
  EXPECT_EQ(group.receivers[0], topology.at("SJC"));
  EXPECT_EQ(group.receivers[1], topology.at("LAX"));
  EXPECT_EQ(group.receivers[2], topology.at("DEN"));
  EXPECT_TRUE(group.deadlines.empty());
  EXPECT_EQ(groupName(group, topology), "NYC->SJC+LAX+DEN");
}

TEST(Group, ParseGroupSpecRejectsBadInput) {
  const trace::Topology topology = trace::Topology::ltn12();
  EXPECT_THROW(parseGroupSpec("NYC", topology), std::invalid_argument);
  EXPECT_THROW(parseGroupSpec("NYC:", topology), std::invalid_argument);
  EXPECT_THROW(parseGroupSpec("NOPE:SJC", topology), std::invalid_argument);
  EXPECT_THROW(parseGroupSpec("NYC:NOPE", topology), std::invalid_argument);
  EXPECT_THROW(parseGroupSpec("NYC:NYC", topology), std::invalid_argument);
  EXPECT_THROW(parseGroupSpec("NYC:SJC+SJC", topology),
               std::invalid_argument);
}

TEST(Group, ParseGroupListSplitsOnCommas) {
  const trace::Topology topology = trace::Topology::ltn12();
  const auto groups = parseGroupList("NYC:SJC+LAX, DEN:ATL", topology);
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0].source, topology.at("NYC"));
  EXPECT_EQ(groups[1].source, topology.at("DEN"));
  ASSERT_EQ(groups[1].receivers.size(), 1u);
  EXPECT_EQ(groups[1].receivers[0], topology.at("ATL"));
  EXPECT_THROW(parseGroupList("", topology), std::invalid_argument);
  EXPECT_THROW(parseGroupList(",,", topology), std::invalid_argument);
}

TEST(GroupScheme, NamesRoundTripAndErrorsListValidNames) {
  for (const GroupSchemeKind kind : allGroupSchemeKinds()) {
    EXPECT_EQ(parseGroupSchemeKind(groupSchemeName(kind)), kind);
  }
  try {
    parseGroupSchemeKind("bogus");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("bogus"), std::string::npos) << what;
    for (const GroupSchemeKind kind : allGroupSchemeKinds()) {
      EXPECT_NE(what.find(groupSchemeName(kind)), std::string::npos)
          << what << " should list " << groupSchemeName(kind);
    }
  }
}

TEST(GroupScheme, UnicastEquivalentCoversEveryKind) {
  // The lift is injective: six group kinds map onto six distinct unicast
  // kinds.
  std::vector<routing::SchemeKind> seen;
  for (const GroupSchemeKind kind : allGroupSchemeKinds()) {
    const routing::SchemeKind unicast = unicastEquivalent(kind);
    for (const routing::SchemeKind prior : seen) EXPECT_NE(prior, unicast);
    seen.push_back(unicast);
  }
  EXPECT_EQ(seen.size(), 6u);
}

}  // namespace
}  // namespace dg::mcast
