// The `dgnet graph dump` backend: DOT/JSON rendering and the replayed
// selection matching what the playback engines would score with.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "mcast/graph_dump.hpp"
#include "routing/network_view.hpp"
#include "trace/synth.hpp"
#include "trace/topology.hpp"

namespace dg::mcast {
namespace {

trace::Trace quietTrace(const graph::Graph& overlay) {
  trace::GeneratorParams params;
  params.seed = 5;
  params.duration = util::minutes(30);
  params.nodeEventsPerDay = 0.0;
  params.linkEventsPerDay = 0.0;
  return trace::generateSyntheticTrace(overlay, params).trace;
}

TEST(GraphDump, ParseDumpFormatRoundTripsAndListsValidNames) {
  EXPECT_EQ(parseDumpFormat("dot"), DumpFormat::kDot);
  EXPECT_EQ(parseDumpFormat("json"), DumpFormat::kJson);
  try {
    parseDumpFormat("svg");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("svg"), std::string::npos) << what;
    EXPECT_NE(what.find("dot"), std::string::npos) << what;
    EXPECT_NE(what.find("json"), std::string::npos) << what;
  }
}

TEST(GraphDump, UnicastDotMarksEndpointsAndEdges) {
  const trace::Topology topology = trace::Topology::ltn12();
  const trace::Trace tr = quietTrace(topology.graph());

  GraphDumpRequest request;
  request.format = DumpFormat::kDot;
  const std::string dot = dumpUnicastGraph(
      topology.graph(), tr, topology,
      {topology.at("NYC"), topology.at("SJC")},
      routing::SchemeKind::StaticTwoDisjoint, routing::SchemeParams{},
      request);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("doublecircle"), std::string::npos);  // source
  EXPECT_NE(dot.find("doubleoctagon"), std::string::npos);  // receiver
  EXPECT_NE(dot.find("NYC"), std::string::npos);
  EXPECT_NE(dot.find("SJC"), std::string::npos);
  EXPECT_NE(dot.find("us\""), std::string::npos);  // latency edge labels
}

TEST(GraphDump, GroupJsonListsEveryReceiverAndSelectedEdges) {
  const trace::Topology topology = trace::Topology::ltn12();
  const trace::Trace tr = quietTrace(topology.graph());

  Group group;
  group.source = topology.at("NYC");
  group.receivers = {topology.at("SJC"), topology.at("LAX")};

  GraphDumpRequest request;
  request.format = DumpFormat::kJson;
  const std::string json = dumpGroupGraph(
      topology.graph(), tr, topology, group, GroupSchemeKind::kStaticMesh,
      routing::SchemeParams{}, request);
  EXPECT_NE(json.find("\"source\""), std::string::npos);
  EXPECT_NE(json.find("\"receivers\""), std::string::npos);
  EXPECT_NE(json.find("\"edges\""), std::string::npos);
  EXPECT_NE(json.find("\"SJC\""), std::string::npos);
  EXPECT_NE(json.find("\"LAX\""), std::string::npos);
  EXPECT_NE(json.find("\"latency_us\""), std::string::npos);

  // On a quiet trace the selection at any interval is the baseline
  // selection: the dump must equal the scheme's own baseline select.
  const routing::NetworkView baseline = routing::NetworkView::baseline(tr);
  const auto scheme = makeGroupScheme(GroupSchemeKind::kStaticMesh,
                                      topology.graph(), group,
                                      routing::SchemeParams{});
  scheme->initialize(baseline);
  const graph::DisseminationGraph& selected = scheme->select(baseline);
  for (const graph::EdgeId e : selected.edges()) {
    EXPECT_NE(json.find("\"id\": " + std::to_string(e)), std::string::npos)
        << "selected edge " << e << " missing from dump";
  }
}

TEST(GraphDump, LaterIntervalReplaysDeviatedSelection) {
  const trace::Topology topology = trace::Topology::ltn12();
  // A denser trace so a dynamic scheme has something to react to.
  trace::GeneratorParams params;
  params.seed = 11;
  params.duration = util::hours(2);
  params.nodeEventsPerDay = 60.0;
  params.linkEventsPerDay = 60.0;
  const trace::Trace tr =
      trace::generateSyntheticTrace(topology.graph(), params).trace;

  GraphDumpRequest request;
  request.format = DumpFormat::kJson;
  request.interval = tr.intervalCount() - 1;
  const std::string late = dumpUnicastGraph(
      topology.graph(), tr, topology,
      {topology.at("NYC"), topology.at("SJC")},
      routing::SchemeKind::DynamicSinglePath, routing::SchemeParams{},
      request);
  EXPECT_NE(late.find("\"edges\""), std::string::npos);
  EXPECT_NE(late.find("\"interval\": " +
                      std::to_string(tr.intervalCount() - 1)),
            std::string::npos);
}

TEST(GraphDump, RejectsOutOfRangeIntervals) {
  const trace::Topology topology = trace::Topology::ltn12();
  const trace::Trace tr = quietTrace(topology.graph());
  GraphDumpRequest request;
  request.interval = tr.intervalCount();  // one past the end
  EXPECT_THROW(dumpUnicastGraph(topology.graph(), tr, topology,
                                {topology.at("NYC"), topology.at("SJC")},
                                routing::SchemeKind::StaticSinglePath,
                                routing::SchemeParams{}, request),
               std::invalid_argument);
}

}  // namespace
}  // namespace dg::mcast
