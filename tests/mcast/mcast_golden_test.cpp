// Golden group-fleet regression: a pinned generated topology, a pinned
// group workload with 8..10-receiver groups, and a pinned synthetic
// trace are swept by the chunk-parallel packed group runner. The
// per-scheme summary AND the full telemetry export are compared
// byte-for-byte between --threads 1 and --threads 8; the summary is then
// compared EXACTLY (every double at %.17g) against a committed fixture.
//
// To regenerate after an intentional behavior change:
//   DG_UPDATE_MCAST_GOLDEN=1 ./test_mcast --gtest_filter='McastGolden.*'
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "mcast/experiment.hpp"
#include "store/writer.hpp"
#include "telemetry/export.hpp"
#include "telemetry/telemetry.hpp"
#include "topogen/topogen.hpp"
#include "topogen/workload.hpp"
#include "trace/synth.hpp"
#include "trace/topology.hpp"

namespace dg::mcast {
namespace {

std::string fixturePath() {
  return std::string(DG_MCAST_FIXTURE_DIR) + "/mcast_golden.txt";
}

std::string g17(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string renderSummary(const GroupExperimentResult& result) {
  std::ostringstream out;
  out << "mcast-golden v1 ring:n=60,metros=12,seed=4 groups=24 receivers=8..10\n";
  for (const GroupSchemeSummary& s : result.summary) {
    out << "scheme " << groupSchemeName(s.scheme)
        << " unavailability-all " << g17(s.unavailabilityAll)
        << " unavailability-k " << g17(s.unavailabilityK)
        << " unavailable-seconds " << g17(s.unavailableAllSeconds)
        << " problematic-intervals " << s.problematicIntervals
        << " cost " << g17(s.averageCost)
        << " worst-receiver " << g17(s.worstReceiverUnavailability) << "\n";
  }
  return out.str();
}

TEST(McastGolden, PackedGroupSweepMatchesCommittedFixtureAtAnyThreadCount) {
  // Every input below is pinned; nothing may depend on machine, thread
  // count, or wall clock.
  const trace::Topology topo = topogen::generateTopology(
      "ring:n=60,metros=12,seed=4");
  ASSERT_EQ(topo.siteCount(), 60u);

  trace::GeneratorParams traceParams;
  traceParams.seed = 1234;
  traceParams.duration = util::seconds(3600);
  traceParams.nodeEventsPerDay = 300.0;
  traceParams.linkEventsPerDay = 60.0;
  const trace::SyntheticTrace synth =
      trace::generateSyntheticTrace(topo.graph(), traceParams);
  ASSERT_EQ(synth.trace.intervalCount(), 360u);

  topogen::GroupWorkloadParams workloadParams;
  workloadParams.base.seed = 99;
  workloadParams.base.flowCount = 24;
  workloadParams.base.meanInterarrivalSeconds = 120.0;
  workloadParams.base.meanDurationSeconds = 900.0;
  workloadParams.base.minDurationSeconds = 120.0;
  workloadParams.receiversMin = 8;
  workloadParams.receiversMax = 10;
  const topogen::GroupWorkload workload =
      topogen::generateGroupWorkload(topo, workloadParams);
  ASSERT_EQ(workload.groups.size(), 24u);

  GroupExperimentConfig config;
  config.schemes = {GroupSchemeKind::kStaticTrees,
                    GroupSchemeKind::kStaticMesh,
                    GroupSchemeKind::kDynamicTrees,
                    GroupSchemeKind::kTargetedReceivers};
  config.playback.base.mcSamples = 32;
  // A 12-metro global ring routes antipodal members the long way around;
  // score against a deadline wide enough that baseline routing is
  // feasible for every receiver (same reasoning as the fleet golden).
  config.playback.base.delivery.deadline = util::milliseconds(400);
  config.schemeParams.deadline = util::milliseconds(400);
  for (const topogen::WorkloadGroup& g : workload.groups) {
    Group group;
    group.source = g.source;
    group.receivers = g.receivers;
    ASSERT_GE(group.receivers.size(), 8u);
    config.groups.push_back(std::move(group));
    const auto [first, last] = topogen::groupIntervalWindow(
        g, synth.trace.intervalLength(), synth.trace.intervalCount());
    config.groupWindows.push_back({first, last});
  }

  const std::string packed =
      (std::filesystem::path(::testing::TempDir()) / "mcast_golden.dgtrace")
          .string();
  store::WriterOptions options;
  options.chunkIntervals = 128;
  store::packTrace(synth.trace, packed, options);

  config.threads = 8;
  telemetry::Telemetry telemetry8;
  const GroupExperimentResult r8 =
      runPackedGroupExperiment(topo.graph(), packed, config, &telemetry8);
  config.threads = 1;
  telemetry::Telemetry telemetry1;
  const GroupExperimentResult r1 =
      runPackedGroupExperiment(topo.graph(), packed, config, &telemetry1);
  std::filesystem::remove(packed);

  const std::string summary8 = renderSummary(r8);
  const std::string summary1 = renderSummary(r1);
  ASSERT_EQ(summary1, summary8)
      << "packed group sweep is not thread-invariant";
  ASSERT_EQ(telemetry::toPrometheus(telemetry1.metrics),
            telemetry::toPrometheus(telemetry8.metrics))
      << "group telemetry export is not byte-identical across thread counts";

  if (std::getenv("DG_UPDATE_MCAST_GOLDEN") != nullptr) {
    std::ofstream out(fixturePath(), std::ios::binary);
    ASSERT_TRUE(out.good()) << "cannot write " << fixturePath();
    out << summary1;
    GTEST_SKIP() << "fixture regenerated at " << fixturePath();
  }

  std::ifstream in(fixturePath(), std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing fixture " << fixturePath()
                         << " (run with DG_UPDATE_MCAST_GOLDEN=1)";
  std::ostringstream expected;
  expected << in.rdbuf();
  EXPECT_EQ(summary1, expected.str())
      << "group summary drifted from the committed golden fixture; if the "
         "change is intentional, regenerate with DG_UPDATE_MCAST_GOLDEN=1";
}

}  // namespace
}  // namespace dg::mcast
