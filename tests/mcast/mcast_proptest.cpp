// Property suite for the multicast subsystem (see tests/proptest.hpp):
// random receiver sets over random generator-family topologies. Every
// group scheme's selected graph must connect the source to every
// receiver, and a single-receiver group must reproduce the equivalent
// unicast run metric for metric.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "mcast/playback.hpp"
#include "mcast/scheme.hpp"
#include "playback/playback.hpp"
#include "proptest.hpp"
#include "topogen/topogen.hpp"
#include "trace/synth.hpp"
#include "trace/topology.hpp"
#include "util/rng.hpp"

namespace dg::mcast {
namespace {

namespace prop = dg::test::prop;

/// A case is a topology recipe plus a receiver set drawn over it; the
/// shrinker rebuilds with fewer nodes/receivers, so failures report the
/// smallest falsifying group.
struct GroupCase {
  std::string family;
  std::size_t n = 4;
  std::uint64_t topoSeed = 1;
  std::uint64_t pickSeed = 1;
  std::size_t receiverCount = 1;

  std::string spec() const {
    return family + ":n=" + std::to_string(n) +
           ",seed=" + std::to_string(topoSeed);
  }

  std::string describe() const {
    return "  spec: " + spec() + " receivers=" +
           std::to_string(receiverCount) +
           " pickSeed=" + std::to_string(pickSeed) + "\n";
  }
};

GroupCase genGroupCase(util::Rng& rng) {
  static const char* kFamilies[] = {"mesh", "ring", "scale-free"};
  GroupCase c;
  c.family = kFamilies[rng.uniformInt(std::uint64_t{3})];
  c.n = static_cast<std::size_t>(4 + rng.uniformInt(std::uint64_t{28}));
  c.topoSeed = rng.next() >> 1;
  c.pickSeed = rng.next() >> 1;
  c.receiverCount = static_cast<std::size_t>(
      1 + rng.uniformInt(std::uint64_t{std::min<std::size_t>(5, c.n - 1)}));
  return c;
}

std::vector<GroupCase> shrinkGroupCase(const GroupCase& c) {
  std::vector<GroupCase> out;
  if (c.receiverCount > 1) {
    GroupCase fewer = c;
    fewer.receiverCount = c.receiverCount - 1;
    out.push_back(fewer);
  }
  if (c.n > 4) {
    GroupCase smaller = c;
    smaller.n = std::max<std::size_t>(4, c.n / 2);
    smaller.receiverCount =
        std::min(smaller.receiverCount, smaller.n - 1);
    out.push_back(smaller);
  }
  return out;
}

std::string describeCase(const GroupCase& c) { return c.describe(); }

/// Draws the group deterministically from pickSeed: a random source and
/// receiverCount distinct non-source receivers.
Group drawGroup(const GroupCase& c, std::size_t siteCount) {
  util::Rng rng(c.pickSeed);
  Group group;
  group.source = static_cast<graph::NodeId>(
      rng.uniformInt(static_cast<std::uint64_t>(siteCount)));
  std::vector<char> taken(siteCount, 0);
  taken[group.source] = 1;
  while (group.receivers.size() < c.receiverCount) {
    const auto node = static_cast<graph::NodeId>(
        rng.uniformInt(static_cast<std::uint64_t>(siteCount)));
    if (taken[node]) continue;
    taken[node] = 1;
    group.receivers.push_back(node);
  }
  return group;
}

trace::Trace shortTrace(const graph::Graph& overlay, std::uint64_t seed) {
  trace::GeneratorParams params;
  params.seed = seed;
  params.duration = util::minutes(30);
  return trace::generateSyntheticTrace(overlay, params).trace;
}

TEST(McastProperties, EverySchemeGraphConnectsSourceToEveryReceiver) {
  prop::forAll(
      "every group scheme's graph connects source to all receivers",
      genGroupCase,
      [](const GroupCase& c) {
        const trace::Topology topo = topogen::generateTopology(c.spec());
        const Group group = drawGroup(c, topo.siteCount());
        const trace::Trace tr = shortTrace(topo.graph(), c.topoSeed | 1);
        const routing::NetworkView baseline =
            routing::NetworkView::baseline(tr);
        // A generous deadline: connectivity is the property under test,
        // not deadline pruning on arbitrary geometries.
        routing::SchemeParams params;
        params.deadline = util::seconds(10);
        for (const GroupSchemeKind kind : allGroupSchemeKinds()) {
          const auto scheme =
              makeGroupScheme(kind, topo.graph(), group, params);
          scheme->initialize(baseline);
          const graph::DisseminationGraph& dg = scheme->select(baseline);
          if (dg.source() != group.source)
            return prop::fail(std::string(groupSchemeName(kind)) +
                              ": wrong source");
          const auto reachable = dg.reachableNodes();
          for (const graph::NodeId receiver : group.receivers) {
            if (std::find(reachable.begin(), reachable.end(), receiver) ==
                reachable.end())
              return prop::fail(std::string(groupSchemeName(kind)) +
                                ": receiver " + std::to_string(receiver) +
                                " unreachable");
          }
        }
        return prop::pass();
      },
      describeCase, shrinkGroupCase, prop::Config{0xD06F00DULL, 40});
}

TEST(McastProperties, SingleReceiverGroupEqualsUnicastRun) {
  prop::forAll(
      "1-receiver group playback == unicast playback, every scheme",
      genGroupCase,
      [](GroupCase c) {
        c.receiverCount = 1;
        const trace::Topology topo = topogen::generateTopology(c.spec());
        const Group group = drawGroup(c, topo.siteCount());
        const trace::Trace tr = shortTrace(topo.graph(), c.topoSeed | 1);

        playback::PlaybackParams unicastParams;
        unicastParams.mcSamples = 16;
        unicastParams.delivery.deadline = util::seconds(1);
        const playback::PlaybackEngine unicast(topo.graph(), tr,
                                               unicastParams);
        GroupPlaybackParams groupParams;
        groupParams.base = unicastParams;
        const GroupPlaybackEngine grouped(topo.graph(), tr, groupParams);

        routing::SchemeParams schemeParams;
        schemeParams.deadline = util::seconds(1);
        const routing::Flow flow = receiverFlow(group, 0);
        for (const GroupSchemeKind kind : allGroupSchemeKinds()) {
          const playback::FlowSchemeResult u =
              unicast.run(flow, unicastEquivalent(kind), schemeParams);
          const GroupSchemeResult g =
              grouped.run(group, kind, schemeParams);
          if (g.unavailabilityAll != u.unavailability ||
              g.unavailableAllSeconds != u.unavailableSeconds ||
              g.problematicIntervals != u.problematicIntervals ||
              g.averageCost != u.averageCost ||
              g.receivers.at(0).unavailability != u.unavailability ||
              g.receivers.at(0).averageLatencyUs != u.averageLatencyUs)
            return prop::fail(std::string(groupSchemeName(kind)) +
                              ": group metrics diverge from unicast");
        }
        return prop::pass();
      },
      describeCase, shrinkGroupCase, prop::Config{0xD06F00EULL, 15});
}

}  // namespace
}  // namespace dg::mcast
