// Minimal property-based testing helper over util::Rng.
//
// forAll() runs a property against `cases` generated inputs, each drawn
// from its own deterministic per-case stream, so every failure is
// reproducible from the reported (seed, case index) pair alone:
//
//   prop::forAll("k paths sorted", genGraphCase, [](const GraphCase& c) {
//     ...
//     return prop::pass();            // or prop::fail("message")
//   });
//
// A generator is any callable util::Rng& -> T. A property is any
// callable const T& -> std::string, where an empty string means "holds"
// (use pass()/fail() for readability). An optional shrinker
// (const T& -> std::vector<T> of strictly simpler candidates) is applied
// greedily on failure until no candidate still falsifies the property,
// and the shrunken counterexample's description is reported.
//
// This intentionally stays far smaller than a real QuickCheck: no
// integrated shrinking, no size parameter, no type-driven generator
// registry. Generators here are hand-written per test, which is a good
// fit for structured inputs like random graphs.
#pragma once

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/rng.hpp"

namespace dg::test::prop {

struct Config {
  std::uint64_t seed = 0xD15C0DE5ULL;
  int cases = 200;
  /// Cap on total shrink candidates evaluated (keeps pathological
  /// shrinkers from hanging a test).
  int maxShrinkEvals = 2000;
};

inline std::string pass() { return {}; }
inline std::string fail(std::string message) { return message; }

/// The per-case RNG seed: mixes the run seed with the case index so any
/// single case can be replayed without re-running its predecessors.
inline std::uint64_t caseSeed(std::uint64_t runSeed, int caseIndex) {
  return runSeed ^ (0x9E3779B97F4A7C15ULL *
                    (static_cast<std::uint64_t>(caseIndex) + 1));
}

/// Runs `property` on `config.cases` values drawn from `generate`.
/// `describe` renders a counterexample for the failure message; `shrink`
/// proposes simpler candidates (return {} for "cannot shrink").
/// Reports at most one (shrunken) counterexample via ADD_FAILURE, so a
/// falsified property fails the surrounding gtest test.
template <typename GenFn, typename PropFn, typename DescribeFn,
          typename ShrinkFn>
void forAll(const std::string& name, GenFn&& generate, PropFn&& property,
            DescribeFn&& describe, ShrinkFn&& shrink, Config config = {}) {
  using T = std::decay_t<std::invoke_result_t<GenFn&, util::Rng&>>;
  for (int i = 0; i < config.cases; ++i) {
    const std::uint64_t seed = caseSeed(config.seed, i);
    util::Rng rng(seed);
    T value = generate(rng);
    std::string failure = property(value);
    if (failure.empty()) continue;

    int evals = 0;
    bool improved = true;
    while (improved && evals < config.maxShrinkEvals) {
      improved = false;
      std::vector<T> candidates = shrink(value);
      for (T& candidate : candidates) {
        if (++evals > config.maxShrinkEvals) break;
        std::string f = property(candidate);
        if (!f.empty()) {
          value = std::move(candidate);
          failure = std::move(f);
          improved = true;
          break;
        }
      }
    }

    ADD_FAILURE() << "property '" << name << "' falsified\n"
                  << "  case: " << i << " of " << config.cases
                  << "  (replay: util::Rng rng(" << seed << "ULL))\n"
                  << "  reason: " << failure << "\n"
                  << "  counterexample (after " << evals
                  << " shrink evals):\n"
                  << describe(value);
    return;  // first counterexample is enough; later cases add noise
  }
}

/// forAll without a shrinker.
template <typename GenFn, typename PropFn, typename DescribeFn>
void forAll(const std::string& name, GenFn&& generate, PropFn&& property,
            DescribeFn&& describe, Config config = {}) {
  using T = std::decay_t<std::invoke_result_t<GenFn&, util::Rng&>>;
  forAll(name, std::forward<GenFn>(generate), std::forward<PropFn>(property),
         std::forward<DescribeFn>(describe),
         [](const T&) { return std::vector<T>{}; }, config);
}

}  // namespace dg::test::prop
