// dgnet -- command-line front end for the dissemination-graphs library.
//
//   dgnet topology   [--topology=FILE|SPEC]
//       Print the overlay (sites, links, latencies).
//   dgnet topo gen   --family=SPEC [--out=FILE]
//   dgnet topo info  [--family=SPEC | --topology=FILE|SPEC]
//       Generator-family tooling: gen emits a topology in the text
//       format (stdout when --out is omitted), info prints size, degree
//       and latency statistics plus the per-family parameter reference.
//       SPEC is "family:key=value,..." -- families mesh, ring,
//       scale-free; bare builtin names (ltn12, abilene11, mesh5) also
//       work. Example: scale-free:n=500,seed=7.
//   dgnet gen-trace  (--days=N | --hours=N) [--seed=S] --out=FILE
//                    [--csv=FILE] [--chunk-intervals=N]
//       Generate a synthetic condition trace (and optionally a CSV
//       measurement export) plus its ground-truth event log on stderr.
//       When --out ends in .dgtrace the trace is STREAMED into the
//       packed binary store (bounded memory, full double precision)
//       instead of materialized and saved as text; --chunk-intervals
//       sets the store's chunk geometry (packed output only).
//   dgnet inspect    --trace=FILE
//       Summarize a trace: horizon, deviation density, worst links.
//   dgnet trace pack   --in=FILE --out=FILE [--chunk-intervals=N]
//   dgnet trace info   --in=FILE
//   dgnet trace verify --in=FILE
//   dgnet trace cat    --in=FILE [--out=FILE]
//       Packed-trace ("dgtrace") tooling: pack converts a text or packed
//       trace into the columnar binary store; info prints the container
//       geometry, content fingerprint and per-chunk layout (interval
//       range, record count, payload bytes, file offset -- footer index
//       only) without decoding chunks; verify CRC-checks and decodes
//       every region (exit codes: 2 io-error, 3 bad-magic,
//       4 version-mismatch, 5 truncated, 6 checksum-mismatch,
//       7 corrupt); cat decodes a packed trace to the text format.
//   dgnet import     --csv=FILE --out=FILE [--interval_s=10]
//       Convert external CSV measurements into the trace format.
//   dgnet playback   --source=A --destination=B --scheme=NAME
//                    (--trace=FILE | --days=N [--seed=S])
//                    [--memo=0] [--cursor=0]
//       Replay a flow/scheme over a trace and print availability/cost.
//       --memo=0 / --cursor=0 disable the decision/evaluation memos and
//       the condition-timeline cursor (results are bit-identical either
//       way; for benchmarking and equivalence checks).
//   dgnet simulate   --source=A --destination=B --scheme=NAME --seconds=N
//                    (--trace=FILE | --days=N [--seed=S])
//       Drive the packet-level overlay (forwarding + recovery) live.
//   dgnet telemetry  [--schemes=a,b,...] [--threads=N]
//                    [--memo=0] [--cursor=0]
//                    [--chunked] [--memo-cache=FILE]
//                    [--workload=SPEC | --workload-file=FILE]
//                    [--workload-out=FILE]
//                    (--trace=FILE | --days=N [--seed=S])
//       Run the flows x schemes playback sweep with full telemetry and
//       print the merged metrics (byte-identical for any --threads).
//       --chunked parallelizes per (flow, scheme, chunk) straight off a
//       packed --trace=FILE (required) instead of per (flow, scheme);
//       --memo-cache=FILE (implies --chunked) persists the routing
//       decision memo in a sidecar keyed by the trace's content
//       fingerprint, so repeat sweeps start warm. A stale or corrupt
//       sidecar is rejected and the run starts cold; it never changes
//       results.
//       --workload replaces the default 16 transcontinental flows with
//       an open-loop generated fleet (SPEC like
//       "poisson:flows=1000,seed=3,mean=0.5"; see src/topogen/
//       workload.hpp for all keys) whose per-flow start/stop times
//       become per-flow scoring windows; --workload-file replays a
//       previously recorded workload and --workload-out records the
//       generated one for exact replay.
//   dgnet mcast      (--groups=SRC:R1+R2+R3,... |
//                     --group-workload=SPEC | --group-workload-file=FILE)
//                    [--group-workload-out=FILE]
//                    [--schemes=a,b,...] [--threads=N] [--chunked]
//                    [--delivered-k=K] [--per-group] [--mc-samples=N]
//                    [--deadline-us=65000]
//                    (--trace=FILE | --days=N [--seed=S])
//       Run the groups x group-schemes multicast sweep: each group is
//       one source with a receiver set, scored against every receiver's
//       deadline per send (delivered-to-all, and delivered-to-k when
//       --delivered-k is set). --groups lists receiver sets by site
//       name; --group-workload generates an open-loop group fleet
//       (workload keys plus receivers-min / receivers-max) whose
//       start/stop spans become per-group scoring windows. --chunked
//       parallelizes per (group, scheme, chunk) off a packed trace.
//       Results are bit-identical for any --threads, and a
//       single-receiver group is bit-identical to the unicast playback
//       of the scheme's unicast equivalent.
//   dgnet graph dump --interval=N [--staleness=1] [--format=dot|json]
//                    [--out=FILE] [--deadline-us=65000]
//                    (--source=A --destination=B --scheme=NAME |
//                     --group=SRC:R1+R2 --group-scheme=NAME)
//                    (--trace=FILE | --days=N [--seed=S])
//       Export the dissemination graph any scheme (unicast or group) has
//       in force at a given interval, reproduced by replaying decisions
//       over [0, interval] exactly as playback would.
//
// Integer flags are validated: --mc-samples=N (alias --mc_samples) must
// be in [1, 1e7] and --threads=N in [0, 4096] (0 = all cores); anything
// else -- including non-numeric values -- is a usage error (exit 2).
//   dgnet chaos      [--schedule=FILE | --seed=N [--faults=K] [--seconds=N]]
//                    [--record=FILE] [--compile-out=FILE]
//                    [--source=A --destination=B]
//                    [--scheme=NAME] [--recovery=1] [--mc_samples=N]
//       Drive the live overlay through a chaos fault schedule (scripted
//       via --schedule, or seeded-random via --seed), differentially
//       compare each flow's delivery against the playback model of the
//       equivalent trace, and report invariant-check results. --record
//       writes the schedule to FILE for replay. Bit-reproducible: the
//       same (topology, schedule, seed) always produces byte-identical
//       output and metrics exports.
//   dgnet fleet      [--topology=FILE] [--schedule=FILE | --seed=N
//                    [--faults=K] [--seconds=N] [--interval_s=N]]
//                    [--flows=SRC:DST:SCHEME,... |
//                     --source=A --destination=B --scheme=NAME]
//                    [--processes] [--port-base=47000] [--work-dir=DIR]
//                    [--record=FILE] [--recovery=1] [--mc_samples=N]
//                    [--packet-interval-us=5000] [--deadline-us=65000]
//       Run one live overlay daemon per topology site on 127.0.0.1 (real
//       UDP datagrams, epoll event loops), replay the chaos schedule as
//       socket-layer drops/delays, and differentially compare each
//       flow's live delivery against the playback model -- the same
//       tolerance the simulator chaos soak is held to. Default is every
//       daemon in-process on one event loop; --processes forks one dgnet
//       child per site (ports portBase+1+i, coordinator on an ephemeral
//       port). Only static schemes can run live.
//   dgnet daemon     --node=I --topology=FILE --schedule=FILE ...
//       Run a single live daemon until a coordinator's Shutdown arrives;
//       normally exec'd by `dgnet fleet --processes`, see cmdDaemon for
//       the full flag list.
//
// Exit codes: 0 success; 1 runtime failure (including a failed chaos or
// fleet differential); 2 usage error; 64 unknown command; trace-store
// errors map to 2..7 (see `dgnet trace`).
//
// playback/simulate/telemetry accept --trace=FILE in either trace
// format -- the packed store is detected by its magic bytes.
//
// playback/simulate/telemetry (and the trace subcommands) accept the
// shared telemetry flags:
//   --metrics-out=FILE     write collected metrics (- = stdout)
//   --metrics-format=FMT   prom (default) | json | csv
//   --trace-out=FILE       write the sim-time trace-event log as JSON
//
// All schemes: static-single dynamic-single static-two-disjoint
// dynamic-two-disjoint targeted flooding.
#include <unistd.h>

#include <cstdint>
#include <fstream>
#include <iostream>
#include <optional>

#include "chaos/bridge.hpp"
#include "chaos/injector.hpp"
#include "chaos/invariants.hpp"
#include "chaos/schedule.hpp"
#include "core/transport.hpp"
#include "live/daemon.hpp"
#include "live/event_loop.hpp"
#include "live/fleet.hpp"
#include "mcast/experiment.hpp"
#include "mcast/graph_dump.hpp"
#include "mcast/report.hpp"
#include "playback/experiment.hpp"
#include "playback/playback.hpp"
#include "store/reader.hpp"
#include "store/writer.hpp"
#include "telemetry/export.hpp"
#include "telemetry/telemetry.hpp"
#include "topogen/topogen.hpp"
#include "topogen/workload.hpp"
#include "trace/importer.hpp"
#include "trace/synth.hpp"
#include "trace/topology.hpp"
#include "util/config.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"

namespace {

using namespace dg;

/// A flag value the user got wrong (not a runtime failure): main prints
/// the message plus the usage summary and exits 2.
struct UsageError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Validated integer flag: present-but-malformed or out-of-range values
/// are usage errors, so a typo like --threads=-3 or --mc-samples=abc
/// fails fast with exit 2 instead of a confusing runtime error (or a
/// silently absurd run).
std::int64_t getCheckedInt(const util::Config& args, std::string_view key,
                           std::int64_t fallback, std::int64_t min,
                           std::int64_t max) {
  if (!args.has(key)) return fallback;
  std::int64_t value = 0;
  try {
    value = args.getInt(key, fallback);
  } catch (const std::exception&) {
    throw UsageError("--" + std::string(key) + "=" + args.getString(key) +
                     " is not an integer");
  }
  if (value < min || value > max)
    throw UsageError("--" + std::string(key) + "=" + std::to_string(value) +
                     " out of range [" + std::to_string(min) + ", " +
                     std::to_string(max) + "]");
  return value;
}

/// Monte-Carlo sample count; accepts --mc-samples and the historical
/// --mc_samples spelling.
int mcSamplesFlag(const util::Config& args, std::int64_t fallback) {
  const std::string_view key =
      args.has("mc-samples") ? "mc-samples" : "mc_samples";
  return static_cast<int>(getCheckedInt(args, key, fallback, 1, 10'000'000));
}

/// Worker thread count; 0 = hardware concurrency.
unsigned threadsFlag(const util::Config& args) {
  return static_cast<unsigned>(getCheckedInt(args, "threads", 0, 0, 4096));
}

/// Resolves a --topology / --family value: generator specs
/// ("scale-free:n=500,seed=7", bare family or builtin names) go through
/// the topogen families, anything else is a file path.
trace::Topology topologyFromValue(const std::string& value) {
  if (topogen::isFamilySpec(value)) return topogen::generateTopology(value);
  return trace::Topology::fromFile(value);
}

trace::Topology loadTopology(const util::Config& args) {
  if (args.has("topology")) return topologyFromValue(args.getString("topology"));
  return trace::Topology::ltn12();
}

/// Synthetic-trace span: --hours=N wins over --days=N (default 1 day).
/// Sub-day traces keep fleet-scale smokes tractable.
util::SimTime traceDuration(const util::Config& args) {
  if (args.has("hours"))
    return util::hours(getCheckedInt(args, "hours", 24, 1, 24 * 3650));
  return util::days(getCheckedInt(args, "days", 1, 1, 3650));
}

trace::Trace loadOrGenerateTrace(const trace::Topology& topology,
                                 const util::Config& args) {
  if (args.has("trace"))
    return store::loadAnyTrace(args.getString("trace"));
  trace::GeneratorParams params;
  params.seed = static_cast<std::uint64_t>(args.getInt("seed", 1));
  params.duration = traceDuration(args);
  auto synthetic = generateSyntheticTrace(topology.graph(), params);
  std::cerr << "generated " << util::formatDuration(params.duration)
            << " synthetic trace (" << synthetic.events.size()
            << " events, seed " << params.seed << ")\n";
  return std::move(synthetic.trace);
}

/// True when any telemetry output flag is present.
bool telemetryRequested(const util::Config& args) {
  return args.has("metrics-out") || args.has("trace-out");
}

void writeOrPrint(const std::string& path, const std::string& content) {
  if (path == "-") {
    std::cout << content;
    return;
  }
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open " + path);
  out << content;
}

std::string renderMetrics(const telemetry::MetricsRegistry& metrics,
                          const std::string& format) {
  if (format == "prom") return telemetry::toPrometheus(metrics);
  if (format == "json") return telemetry::toJson(metrics);
  if (format == "csv") return telemetry::toCsv(metrics);
  throw std::runtime_error("unknown --metrics-format '" + format +
                           "' (want prom, json or csv)");
}

/// Writes --metrics-out / --trace-out as requested.
void emitTelemetry(const telemetry::Telemetry& telemetry,
                   const util::Config& args) {
  if (args.has("metrics-out")) {
    writeOrPrint(args.getString("metrics-out"),
                 renderMetrics(telemetry.metrics,
                               args.getString("metrics-format", "prom")));
  }
  if (args.has("trace-out")) {
    writeOrPrint(args.getString("trace-out"),
                 telemetry::toJson(telemetry.trace));
  }
}

int cmdTopology(const util::Config& args) {
  const auto topology = loadTopology(args);
  std::cout << topology.toString();
  return 0;
}

/// `dgnet topo gen|info`: generator-family front end.
int cmdTopo(const util::Config& args,
            const std::vector<std::string>& positional) {
  if (positional.size() < 2) {
    std::cerr << "usage: dgnet topo <gen|info> [--family=SPEC] ...\n";
    return 2;
  }
  const std::string& sub = positional[1];
  if (sub == "gen") {
    if (!args.has("family"))
      throw UsageError("topo gen: --family=SPEC required (e.g. "
                       "--family=scale-free:n=500,seed=7)");
    const auto topology = topogen::generateTopology(args.getString("family"));
    writeOrPrint(args.getString("out", "-"), topology.toString());
    std::cerr << "generated " << topology.siteCount() << " sites, "
              << topology.graph().edgeCount() << " directed links\n";
    return 0;
  }
  if (sub == "info") {
    const auto topology = args.has("family")
                              ? topogen::generateTopology(
                                    args.getString("family"))
                              : loadTopology(args);
    const graph::Graph& g = topology.graph();
    std::size_t minDegree = g.nodeCount() == 0 ? 0 : SIZE_MAX;
    std::size_t maxDegree = 0;
    for (std::size_t n = 0; n < g.nodeCount(); ++n) {
      const std::size_t degree =
          g.outEdges(static_cast<graph::NodeId>(n)).size();
      minDegree = std::min(minDegree, degree);
      maxDegree = std::max(maxDegree, degree);
    }
    util::OnlineStats latency;
    for (const util::SimTime l : g.baseLatencies())
      latency.add(util::toMillis(l));
    std::cout << "sites:           " << topology.siteCount() << '\n'
              << "directed links:  " << g.edgeCount() << '\n'
              << "degree:          " << minDegree << " min, "
              << util::formatFixed(
                     g.nodeCount() > 0
                         ? static_cast<double>(g.edgeCount()) /
                               static_cast<double>(g.nodeCount())
                         : 0.0,
                     2)
              << " mean, " << maxDegree << " max\n"
              << "link latency:    "
              << util::formatFixed(latency.min(), 2) << " ms min, "
              << util::formatFixed(latency.mean(), 2) << " ms mean, "
              << util::formatFixed(latency.max(), 2) << " ms max\n";
    std::cout << "\nfamilies:\n";
    for (const topogen::TopologyFamily* family : topogen::allFamilies())
      std::cout << "  " << util::padRight(std::string(family->name()), 12)
                << family->parameterHelp() << '\n';
    return 0;
  }
  std::cerr << "dgnet topo: unknown subcommand '" << sub
            << "' (want gen or info)\n";
  return 2;
}

bool wantsPackedOutput(const std::string& path) {
  return path.size() >= 8 && path.ends_with(".dgtrace");
}

int cmdGenTrace(const util::Config& args) {
  if (!args.has("out")) {
    std::cerr << "gen-trace: --out=FILE required\n";
    return 2;
  }
  const auto topology = loadTopology(args);
  trace::GeneratorParams params;
  params.seed = static_cast<std::uint64_t>(args.getInt("seed", 1));
  params.duration = traceDuration(args);
  const std::string out = args.getString("out");

  std::vector<trace::ProblemEvent> events;
  std::size_t intervalCount = 0;
  if (wantsPackedOutput(out)) {
    // Stream the generator straight into the packed store: bit-identical
    // to the batch path, but memory stays bounded by the active-event
    // window plus one chunk, independent of --days.
    std::ofstream packed(out, std::ios::binary | std::ios::trunc);
    if (!packed) throw std::runtime_error("cannot open " + out);
    store::WriterOptions writerOptions;
    writerOptions.chunkIntervals = static_cast<std::uint32_t>(getCheckedInt(
        args, "chunk-intervals", store::kDefaultChunkIntervals, 1,
        1'000'000));
    store::StoreWriter writer(packed, writerOptions);
    trace::StreamGenerationStats stats;
    events = streamSyntheticTrace(topology.graph(), params, writer, &stats);
    packed.close();
    if (!packed) throw std::runtime_error("close failed: " + out);
    intervalCount =
        static_cast<std::size_t>(params.duration / params.intervalLength);
    std::cerr << "streamed " << writer.bytesWritten() << " bytes ("
              << writer.recordsWritten() << " deviation records, peak "
              << writer.peakBufferedRecords() << " buffered; "
              << stats.emittedIntervals << " non-clean intervals)\n";
    if (args.has("csv")) {
      const auto tr = store::loadPackedTrace(out);
      std::ofstream csv(args.getString("csv"));
      csv << exportMeasurementsCsv(topology, tr);
    }
  } else {
    const auto synthetic = generateSyntheticTrace(topology.graph(), params);
    synthetic.trace.save(out);
    if (args.has("csv")) {
      std::ofstream csv(args.getString("csv"));
      csv << exportMeasurementsCsv(topology, synthetic.trace);
    }
    events = synthetic.events;
    intervalCount = synthetic.trace.intervalCount();
  }
  std::cerr << "wrote " << out << ": " << intervalCount << " intervals, "
            << events.size() << " ground-truth events\n";
  for (const auto& event : events) {
    std::cerr << "  t=" << event.startInterval * 10 << "s +"
              << event.intervalCount * 10 << "s "
              << (event.kind == trace::ProblemEvent::Kind::Node
                      ? "site " + topology.name(event.node)
                      : "link " + topology.edgeName(event.link))
              << (event.impairment == trace::ProblemEvent::Impairment::Loss
                      ? " loss " + util::formatFixed(event.severity, 2)
                      : " latency +" +
                            util::formatDuration(event.latencyPenalty))
              << (event.activity < 1.0 ? " (fluttering)" : "") << '\n';
  }
  return 0;
}

int cmdInspect(const util::Config& args) {
  if (!args.has("trace")) {
    std::cerr << "inspect: --trace=FILE required\n";
    return 2;
  }
  const auto topology = loadTopology(args);
  const auto tr = store::loadAnyTrace(args.getString("trace"));
  std::size_t deviatedIntervals = 0;
  std::vector<std::size_t> perEdge(tr.edgeCount(), 0);
  std::size_t deviations = 0;
  for (std::size_t i = 0; i < tr.intervalCount(); ++i) {
    if (!tr.hasDeviation(i)) continue;
    ++deviatedIntervals;
    for (const auto& [edge, conditions] : tr.deviationsAt(i)) {
      ++perEdge[edge];
      ++deviations;
    }
  }
  std::cout << "intervals: " << tr.intervalCount() << " x "
            << util::formatDuration(tr.intervalLength()) << " = "
            << util::formatDuration(tr.duration()) << '\n'
            << "links: " << tr.edgeCount() << '\n'
            << "intervals with any deviation: " << deviatedIntervals << " ("
            << util::formatPercent(
                   static_cast<double>(deviatedIntervals) /
                       static_cast<double>(tr.intervalCount()),
                   2)
            << ")\n"
            << "total link-interval deviations: " << deviations << '\n';
  std::cout << "most-affected links:\n";
  std::vector<graph::EdgeId> order(tr.edgeCount());
  for (graph::EdgeId e = 0; e < tr.edgeCount(); ++e) order[e] = e;
  std::sort(order.begin(), order.end(), [&](graph::EdgeId a, graph::EdgeId b) {
    return perEdge[a] > perEdge[b];
  });
  for (std::size_t i = 0; i < std::min<std::size_t>(8, order.size()); ++i) {
    if (perEdge[order[i]] == 0) break;
    std::cout << "  " << util::padRight(topology.edgeName(order[i]), 10)
              << perEdge[order[i]] << " deviated intervals\n";
  }
  return 0;
}

int cmdImport(const util::Config& args) {
  if (!args.has("csv") || !args.has("out")) {
    std::cerr << "import: --csv=FILE --out=FILE required\n";
    return 2;
  }
  const auto topology = loadTopology(args);
  trace::ImportOptions options;
  options.intervalLength = util::seconds(args.getInt("interval_s", 10));
  options.skipUnknownSites = args.getBool("skip_unknown", false);
  const auto tr = trace::importMeasurementsCsvFile(
      topology, args.getString("csv"), options);
  tr.save(args.getString("out"));
  std::cerr << "imported " << tr.intervalCount() << " intervals -> "
            << args.getString("out") << '\n';
  return 0;
}

int cmdPlayback(const util::Config& args) {
  const auto topology = loadTopology(args);
  const auto tr = loadOrGenerateTrace(topology, args);
  const routing::Flow flow{topology.at(args.getString("source", "NYC")),
                           topology.at(args.getString("destination", "SJC"))};
  const auto kind = routing::parseSchemeKind(
      args.getString("scheme", "targeted"));
  playback::PlaybackParams params;
  params.mcSamples = mcSamplesFlag(args, 1000);
  params.decisionMemo = args.getBool("memo", true);
  params.conditionCursor = args.getBool("cursor", true);
  const playback::PlaybackEngine engine(topology.graph(), tr, params);
  std::optional<telemetry::Telemetry> telemetry;
  if (telemetryRequested(args)) telemetry.emplace();
  const auto result = engine.run(flow, kind, routing::SchemeParams{},
                                 telemetry ? &*telemetry : nullptr);
  if (telemetry) emitTelemetry(*telemetry, args);
  std::cout << "scheme:                 " << routing::schemeName(kind) << '\n'
            << "unavailability:         "
            << util::formatFixed(result.unavailability * 1e6, 1) << " ppm\n"
            << "expected unavailable:   "
            << util::formatFixed(result.unavailableSeconds, 1) << " s of "
            << util::formatFixed(util::toSeconds(tr.duration()), 0)
            << " s\n"
            << "problematic intervals:  " << result.problematicIntervals
            << '\n'
            << "cost:                   "
            << util::formatFixed(result.averageCost, 2)
            << " transmissions/packet\n";
  return 0;
}

int cmdSimulate(const util::Config& args) {
  const auto topology = loadTopology(args);
  const auto tr = loadOrGenerateTrace(topology, args);
  const auto kind = routing::parseSchemeKind(
      args.getString("scheme", "targeted"));
  core::TransportService service(topology, tr);
  std::optional<telemetry::Telemetry> telemetry;
  if (telemetryRequested(args)) {
    telemetry.emplace();
    service.setTelemetry(&*telemetry);
  }
  const auto flow = service.openFlow(args.getString("source", "NYC"),
                                     args.getString("destination", "SJC"),
                                     kind);
  const auto seconds = args.getInt("seconds", 60);
  service.run(util::seconds(seconds));
  if (telemetry) emitTelemetry(*telemetry, args);
  const auto& stats = service.stats(flow);
  std::cout << "scheme:        " << routing::schemeName(kind) << '\n'
            << "sent:          " << stats.sent << '\n'
            << "on time:       " << stats.deliveredOnTime << " ("
            << util::formatPercent(stats.onTimeRate(), 3) << ")\n"
            << "late:          " << stats.deliveredLate << '\n'
            << "lost:          " << stats.lost() << '\n'
            << "mean latency:  "
            << util::formatFixed(stats.latencyUs.mean() / 1000.0, 2)
            << " ms\n"
            << "cost:          "
            << util::formatFixed(stats.costPerPacket(), 2) << " tx/pkt\n";
  return 0;
}

int cmdTelemetry(const util::Config& args) {
  const auto topology = loadTopology(args);

  // Open-loop fleet workloads: generate (--workload) or replay
  // (--workload-file) thousands of flows with per-flow scoring windows
  // instead of the fixed transcontinental list.
  std::optional<topogen::FlowWorkload> workload;
  if (args.has("workload") && args.has("workload-file"))
    throw UsageError("choose one of --workload / --workload-file");
  if (args.has("workload")) {
    workload = topogen::generateWorkload(
        topology, topogen::parseWorkloadSpec(args.getString("workload")));
  } else if (args.has("workload-file")) {
    workload =
        topogen::workloadFromFile(args.getString("workload-file"), topology);
  }
  if (workload && args.has("workload-out"))
    writeOrPrint(args.getString("workload-out"),
                 topogen::workloadToString(*workload, topology));

  playback::ExperimentConfig config;
  if (workload) {
    config.flows.reserve(workload->flows.size());
    for (const topogen::WorkloadFlow& f : workload->flows)
      config.flows.push_back(f.flow);
    std::cerr << "workload: " << config.flows.size() << " flows\n";
  } else {
    config.flows = playback::transcontinentalFlows(topology);
  }
  // Windows depend on the trace geometry, known only once the trace (or
  // the packed container's footer) has been opened below.
  const auto applyWindows = [&](util::SimTime intervalLength,
                                std::size_t intervalCount) {
    if (!workload) return;
    config.flowWindows.reserve(workload->flows.size());
    for (const topogen::WorkloadFlow& f : workload->flows) {
      const auto [first, last] =
          topogen::flowIntervalWindow(f, intervalLength, intervalCount);
      config.flowWindows.push_back({first, last});
    }
  };
  if (args.has("schemes")) {
    config.schemes.clear();
    for (const std::string& name : util::split(args.getString("schemes"), ','))
      config.schemes.push_back(routing::parseSchemeKind(name));
  }
  config.playback.mcSamples = mcSamplesFlag(args, 1000);
  config.playback.decisionMemo = args.getBool("memo", true);
  config.playback.conditionCursor = args.getBool("cursor", true);
  config.threads = threadsFlag(args);

  telemetry::Telemetry telemetry;
  const bool chunked = args.getBool("chunked", false) || args.has("memo-cache");
  if (chunked) {
    // Chunk-parallel sweep straight off the packed container; the only
    // mode where the persistent decision-memo sidecar applies.
    if (!args.has("trace") || !store::isPackedTraceFile(args.getString("trace")))
      throw UsageError(
          "--chunked / --memo-cache need --trace=FILE in the packed "
          "dgtrace format (see `dgnet trace pack`)");
    config.memoCachePath = args.getString("memo-cache", "");
    if (workload) {
      const auto reader =
          store::PackedTraceReader::open(args.getString("trace"));
      applyWindows(reader.info().intervalLength,
                   static_cast<std::size_t>(reader.info().intervalCount));
    }
    const auto result = playback::runPackedExperiment(
        topology.graph(), args.getString("trace"), config, &telemetry);
    if (!config.memoCachePath.empty())
      std::cerr << "memo cache "
                << playback::memoCacheLoadResultName(result.memoCacheLoad)
                << ": " << result.memoStats.decisionHits << " hits / "
                << result.memoStats.decisionMisses << " misses, "
                << result.memoStats.decisions << " decisions saved -> "
                << config.memoCachePath << '\n';
  } else {
    const auto tr = loadOrGenerateTrace(topology, args);
    applyWindows(tr.intervalLength(), tr.intervalCount());
    playback::runExperiment(topology.graph(), tr, config, &telemetry);
  }

  if (telemetryRequested(args)) {
    emitTelemetry(telemetry, args);
  } else {
    // No output flag: the metrics themselves are the command's product.
    std::cout << renderMetrics(telemetry.metrics,
                               args.getString("metrics-format", "prom"));
  }
  std::cerr << "telemetry: " << telemetry.metrics.samples().size()
            << " samples, " << telemetry.trace.recorded()
            << " trace events (" << telemetry.trace.dropped()
            << " dropped)\n";
  return 0;
}

/// `dgnet mcast`: the groups x group-schemes multicast sweep.
int cmdMcast(const util::Config& args) {
  const auto topology = loadTopology(args);

  const int sourcesGiven = (args.has("groups") ? 1 : 0) +
                           (args.has("group-workload") ? 1 : 0) +
                           (args.has("group-workload-file") ? 1 : 0);
  if (sourcesGiven != 1)
    throw UsageError(
        "choose exactly one of --groups / --group-workload / "
        "--group-workload-file");

  mcast::GroupExperimentConfig config;
  std::optional<topogen::GroupWorkload> workload;
  if (args.has("groups")) {
    config.groups = mcast::parseGroupList(args.getString("groups"), topology);
  } else {
    if (args.has("group-workload")) {
      workload = topogen::generateGroupWorkload(
          topology,
          topogen::parseGroupWorkloadSpec(args.getString("group-workload")));
    } else {
      workload = topogen::groupWorkloadFromFile(
          args.getString("group-workload-file"), topology);
    }
    if (args.has("group-workload-out"))
      writeOrPrint(args.getString("group-workload-out"),
                   topogen::groupWorkloadToString(*workload, topology));
    config.groups.reserve(workload->groups.size());
    for (const topogen::WorkloadGroup& g : workload->groups) {
      mcast::Group group;
      group.source = g.source;
      group.receivers = g.receivers;
      config.groups.push_back(std::move(group));
    }
    std::cerr << "group workload: " << config.groups.size() << " groups\n";
  }
  // Per-group scoring windows depend on the trace geometry, known only
  // once the trace (or the packed footer) has been opened below.
  const auto applyWindows = [&](util::SimTime intervalLength,
                                std::size_t intervalCount) {
    if (!workload) return;
    config.groupWindows.reserve(workload->groups.size());
    for (const topogen::WorkloadGroup& g : workload->groups) {
      const auto [first, last] =
          topogen::groupIntervalWindow(g, intervalLength, intervalCount);
      config.groupWindows.push_back({first, last});
    }
  };

  if (args.has("schemes")) {
    config.schemes.clear();
    for (const std::string& name : util::split(args.getString("schemes"), ','))
      config.schemes.push_back(mcast::parseGroupSchemeKind(name));
  }
  config.playback.base.mcSamples = mcSamplesFlag(args, 1000);
  config.playback.base.delivery.deadline =
      args.getInt("deadline-us", config.playback.base.delivery.deadline);
  config.schemeParams.deadline = config.playback.base.delivery.deadline;
  config.playback.base.decisionMemo = args.getBool("memo", true);
  config.playback.base.conditionCursor = args.getBool("cursor", true);
  config.playback.deliveredK = static_cast<std::size_t>(
      getCheckedInt(args, "delivered-k", 0, 0, 1'000'000));
  config.threads = threadsFlag(args);

  telemetry::Telemetry telemetry;
  mcast::GroupExperimentResult result;
  std::optional<trace::Trace> tr;
  if (args.getBool("chunked", false)) {
    if (!args.has("trace") ||
        !store::isPackedTraceFile(args.getString("trace")))
      throw UsageError(
          "--chunked needs --trace=FILE in the packed dgtrace format (see "
          "`dgnet trace pack`)");
    {
      auto reader = store::PackedTraceReader::open(args.getString("trace"));
      applyWindows(reader.info().intervalLength,
                   static_cast<std::size_t>(reader.info().intervalCount));
      tr.emplace(reader.readAll());
    }
    result = mcast::runPackedGroupExperiment(
        topology.graph(), args.getString("trace"), config, &telemetry);
  } else {
    tr.emplace(loadOrGenerateTrace(topology, args));
    applyWindows(tr->intervalLength(), tr->intervalCount());
    result = mcast::runGroupExperiment(topology.graph(), *tr, config,
                                       &telemetry);
  }

  std::cout << mcast::renderGroupSummaryTable(result, *tr,
                                              config.groups.size());
  if (args.getBool("per-group", false))
    std::cout << '\n' << mcast::renderPerGroupTable(result, config, topology);
  if (telemetryRequested(args)) emitTelemetry(telemetry, args);
  return 0;
}

/// `dgnet graph dump`: export any scheme's dissemination graph at an
/// interval as DOT or JSON.
int cmdGraph(const util::Config& args,
             const std::vector<std::string>& positional) {
  if (positional.size() < 2 || positional[1] != "dump") {
    std::cerr << "usage: dgnet graph dump --interval=N ...\n";
    return 2;
  }
  const auto topology = loadTopology(args);
  const auto tr = loadOrGenerateTrace(topology, args);

  mcast::GraphDumpRequest request;
  request.interval = static_cast<std::size_t>(getCheckedInt(
      args, "interval", 0, 0,
      static_cast<std::int64_t>(tr.intervalCount()) - 1));
  request.viewStaleness =
      static_cast<int>(getCheckedInt(args, "staleness", 1, 0, 1'000'000));
  try {
    request.format = mcast::parseDumpFormat(args.getString("format", "dot"));
  } catch (const std::invalid_argument& e) {
    throw UsageError(e.what());
  }

  routing::SchemeParams schemeParams;
  schemeParams.deadline = args.getInt("deadline-us", schemeParams.deadline);

  std::string rendered;
  if (args.has("group")) {
    const mcast::Group group =
        mcast::parseGroupSpec(args.getString("group"), topology);
    const auto kind = mcast::parseGroupSchemeKind(
        args.getString("group-scheme", "dynamic-mesh"));
    rendered = mcast::dumpGroupGraph(topology.graph(), tr, topology, group,
                                     kind, schemeParams, request);
  } else {
    const routing::Flow flow{
        topology.at(args.getString("source", "NYC")),
        topology.at(args.getString("destination", "SJC"))};
    const auto kind =
        routing::parseSchemeKind(args.getString("scheme", "targeted"));
    rendered = mcast::dumpUnicastGraph(topology.graph(), tr, topology, flow,
                                       kind, schemeParams, request);
  }
  writeOrPrint(args.getString("out", "-"), rendered);
  return 0;
}

int cmdChaos(const util::Config& args) {
  const auto topology = loadTopology(args);

  chaos::ChaosSchedule schedule;
  if (args.has("schedule")) {
    schedule = chaos::ChaosSchedule::load(args.getString("schedule"));
  } else {
    chaos::ChaosScheduleParams params;
    params.seed = static_cast<std::uint64_t>(args.getInt("seed", 7));
    params.faults = static_cast<int>(args.getInt("faults", 6));
    params.horizon = util::seconds(args.getInt("seconds", 120));
    schedule = chaos::ChaosSchedule::random(topology, params);
  }
  schedule.validateAgainst(topology.graph());
  if (args.has("record")) {
    schedule.save(args.getString("record"));
    std::cerr << "recorded schedule -> " << args.getString("record") << '\n';
  }
  if (args.has("compile-out")) {
    // The playback-model trace the differential run compares against,
    // exported for offline replay (text, or packed when .dgtrace).
    const auto compiled = chaos::compileToTrace(schedule, topology);
    const std::string out = args.getString("compile-out");
    if (wantsPackedOutput(out)) {
      store::packTrace(compiled, out);
    } else {
      compiled.save(out);
    }
    std::cerr << "compiled schedule trace -> " << out << '\n';
  }

  std::cout << "schedule: " << schedule.faults().size() << " faults over "
            << util::formatDuration(schedule.horizon()) << '\n';
  for (const chaos::ChaosFault& fault : schedule.faults()) {
    std::cout << "  t=" << util::formatDuration(fault.start) << " +"
              << util::formatDuration(fault.duration) << ' '
              << chaos::faultKindName(fault.kind);
    if (fault.targetsNode())
      std::cout << " site " << topology.name(fault.node);
    if (fault.targetsLink())
      std::cout << " link " << topology.edgeName(fault.link);
    if (fault.lossRate > 0.0 && fault.lossRate < 1.0)
      std::cout << " loss " << util::formatFixed(fault.lossRate, 2);
    if (fault.latencyPenalty > 0)
      std::cout << " latency +" << util::formatDuration(fault.latencyPenalty);
    std::cout << '\n';
  }

  std::vector<chaos::DifferentialFlowSpec> flows;
  chaos::DifferentialFlowSpec spec;
  spec.source = args.getString("source", "NYC");
  spec.destination = args.getString("destination", "SJC");
  spec.scheme = routing::parseSchemeKind(args.getString("scheme", "targeted"));
  flows.push_back(spec);

  chaos::DifferentialParams params;
  params.recoveryEnabled = args.getBool("recovery", false);
  params.mcSamples = mcSamplesFlag(args, 4000);

  std::optional<telemetry::Telemetry> telemetry;
  if (telemetryRequested(args)) telemetry.emplace();
  const chaos::DifferentialResult result = chaos::runDifferential(
      topology, schedule, flows, params, telemetry ? &*telemetry : nullptr);
  if (telemetry) emitTelemetry(*telemetry, args);

  std::cout << "\nlive vs playback (per flow):\n";
  for (const chaos::DifferentialFlowResult& flow : result.flows) {
    std::cout << "  " << flow.spec.source << "->" << flow.spec.destination
              << " via " << routing::schemeName(flow.spec.scheme) << ":\n"
              << "    sent:                  " << flow.sent << '\n'
              << "    live unavailability:   "
              << util::formatPercent(flow.liveUnavailability, 3) << '\n'
              << "    predicted (playback):  "
              << util::formatPercent(flow.predictedUnavailability, 3) << '\n'
              << "    delta:                 "
              << util::formatFixed(flow.unavailabilityDelta() * 100.0, 3)
              << " pp (tolerance "
              << util::formatFixed(flow.tolerance() * 100.0, 3) << " pp, "
              << (flow.withinTolerance() ? "ok" : "EXCEEDED") << ")\n"
              << "    live cost:             "
              << util::formatFixed(flow.liveCost, 2) << " tx/pkt (model "
              << util::formatFixed(flow.predictedCost, 2) << ")\n";
  }
  std::cout << "invariants: " << result.invariantChecksRun << " checks, "
            << result.violations.size() << " violations\n";
  for (const chaos::InvariantViolation& violation : result.violations) {
    std::cout << "  VIOLATION t=" << util::formatDuration(violation.time)
              << ' ' << violation.invariant << ": " << violation.detail
              << '\n';
  }
  return result.passed() ? 0 : 1;
}

/// Runs one live daemon until the coordinator's Shutdown datagram stops
/// the loop. Normally exec'd by `dgnet fleet --processes`, which passes
/// every flag; usable by hand for ad-hoc fleets. Flows arrive as one
/// comma-joined --flows=ID:SRC:DST:SCHEME,... argument; the dissemination
/// graph of each is recomputed here (selectLiveGraphMask is deterministic,
/// so parent and children agree without shipping masks).
int cmdDaemon(const util::Config& args) {
  const trace::Topology topology =
      trace::Topology::fromFile(args.getString("topology"));
  const chaos::ChaosSchedule schedule =
      chaos::ChaosSchedule::load(args.getString("schedule"));
  schedule.validateAgainst(topology.graph());
  const double residualLoss = args.getDouble("residual-loss", 1e-4);

  live::DaemonConfig config;
  config.node = static_cast<graph::NodeId>(args.getInt("node", 0));
  config.port = static_cast<std::uint16_t>(args.getInt("port", 0));
  config.coordinatorPort =
      static_cast<std::uint16_t>(args.getInt("coordinator-port", 0));
  config.incarnation =
      static_cast<std::uint64_t>(args.getInt("incarnation", 1));
  config.recoveryEnabled = args.getBool("recovery", false);
  config.packetInterval =
      args.getInt("packet-interval-us", config.packetInterval);
  config.membership.heartbeatInterval =
      args.getInt("heartbeat-us", config.membership.heartbeatInterval);

  live::EventLoop loop;
  live::Daemon daemon(loop, topology.graph(), config);
  daemon.enableImpairment(schedule,
                          static_cast<std::uint64_t>(args.getInt("seed", 42)),
                          residualLoss);

  routing::SchemeParams schemeParams;
  schemeParams.deadline = args.getInt("deadline-us", schemeParams.deadline);
  for (const std::string& item : util::split(args.getString("flows"), ',')) {
    if (item.empty()) continue;
    const auto fields = util::split(item, ':');
    std::int64_t id = 0;
    if (fields.size() != 4 || !util::parseInt64(fields[0], id) || id < 0)
      throw std::runtime_error("daemon: bad --flows entry '" + item +
                               "' (want ID:SRC:DST:SCHEME)");
    live::LiveFlow flow;
    flow.id = static_cast<net::FlowId>(id);
    flow.source = topology.at(fields[1]);
    flow.destination = topology.at(fields[2]);
    flow.deadline = schemeParams.deadline;
    flow.graphMask = live::selectLiveGraphMask(
        topology, routing::parseSchemeKind(fields[3]), flow.source,
        flow.destination, schemeParams, residualLoss);
    daemon.addFlow(flow);
  }

  const auto portBase =
      static_cast<std::uint16_t>(args.getInt("port-base", 0));
  if (portBase != 0) {
    for (std::size_t j = 0; j < topology.siteCount(); ++j) {
      if (static_cast<graph::NodeId>(j) == config.node) continue;
      daemon.seedPeer(static_cast<graph::NodeId>(j),
                      static_cast<std::uint16_t>(portBase + 1 + j));
    }
  }

  std::optional<telemetry::Telemetry> telemetry;
  if (telemetryRequested(args)) {
    telemetry.emplace();
    // Live churn events carry loop (wall) time, not sim time.
    telemetry->trace.setTimeBase("wall");
    daemon.setTelemetry(&*telemetry);
  }

  daemon.start();
  loop.run();  // until the coordinator's Shutdown stops the loop
  daemon.stop();
  if (telemetry) {
    daemon.exportTelemetry(*telemetry);
    emitTelemetry(*telemetry, args);
  }
  return 0;
}

std::string selfExePath() {
  char buffer[4096];
  const ssize_t n = readlink("/proc/self/exe", buffer, sizeof(buffer) - 1);
  if (n <= 0)
    throw std::runtime_error("fleet: cannot resolve /proc/self/exe");
  return std::string(buffer, static_cast<std::size_t>(n));
}

int cmdFleet(const util::Config& args) {
  live::FleetParams params;
  params.topology = args.has("topology")
                        ? trace::Topology::fromFile(args.getString("topology"))
                        : trace::Topology::mesh5();

  if (args.has("schedule")) {
    params.schedule = chaos::ChaosSchedule::load(args.getString("schedule"));
  } else {
    chaos::ChaosScheduleParams sp;
    sp.seed = static_cast<std::uint64_t>(args.getInt("seed", 7));
    sp.faults = static_cast<int>(args.getInt("faults", 4));
    sp.horizon = util::seconds(args.getInt("seconds", 8));
    sp.intervalLength = util::seconds(args.getInt("interval_s", 1));
    // Live daemons do not crash mid-soak and run no monitoring plane, so
    // random soak schedules stick to link/site condition impairments.
    sp.nodeCrashWeight = 0.0;
    sp.monitorDelayWeight = 0.0;
    params.schedule = chaos::ChaosSchedule::random(params.topology, sp);
  }
  params.schedule.validateAgainst(params.topology.graph());
  if (args.has("record")) {
    params.schedule.save(args.getString("record"));
    std::cerr << "recorded schedule -> " << args.getString("record") << '\n';
  }

  if (args.has("flows")) {
    for (const std::string& item :
         util::split(args.getString("flows"), ',')) {
      if (item.empty()) continue;
      const auto fields = util::split(item, ':');
      if (fields.size() != 3)
        throw std::runtime_error("fleet: bad --flows entry '" + item +
                                 "' (want SRC:DST:SCHEME)");
      live::FleetFlowSpec spec;
      spec.source = fields[0];
      spec.destination = fields[1];
      spec.scheme = routing::parseSchemeKind(fields[2]);
      params.flows.push_back(spec);
    }
  } else {
    live::FleetFlowSpec spec;
    spec.source = args.getString("source", "NYC");
    spec.destination = args.getString("destination", "SJC");
    spec.scheme = routing::parseSchemeKind(
        args.getString("scheme", "static-two-disjoint"));
    params.flows.push_back(spec);
  }
  if (params.flows.empty())
    throw std::runtime_error("fleet: no flows configured");

  params.schemeParams.deadline =
      args.getInt("deadline-us", params.schemeParams.deadline);
  params.packetInterval =
      args.getInt("packet-interval-us", params.packetInterval);
  params.impairmentSeed =
      static_cast<std::uint64_t>(args.getInt("impairment-seed", 42));
  params.residualLoss = args.getDouble("residual-loss", params.residualLoss);
  params.recoveryEnabled = args.getBool("recovery", false);
  params.drain = args.getInt("drain-us", params.drain);
  params.mcSamples = mcSamplesFlag(args, params.mcSamples);
  params.playbackSeed = static_cast<std::uint64_t>(
      args.getInt("playback-seed", static_cast<std::int64_t>(
                                       params.playbackSeed)));
  params.portBase =
      static_cast<std::uint16_t>(args.getInt("port-base", params.portBase));
  params.workDir = args.getString("work-dir", params.workDir);

  const bool processes = args.getBool("processes", false);
  std::cout << "fleet: " << params.topology.siteCount() << " daemons ("
            << (processes ? "multi-process" : "in-process") << "), "
            << params.schedule.faults().size() << " faults over "
            << util::formatDuration(params.schedule.horizon()) << '\n';

  std::optional<telemetry::Telemetry> telemetry;
  if (telemetryRequested(args)) {
    telemetry.emplace();
    telemetry->trace.setTimeBase("wall");  // live churn events
  }

  live::FleetResult result;
  if (processes) {
    params.dgnetBinary = selfExePath();
    result =
        live::runFleetProcesses(params, telemetry ? &*telemetry : nullptr);
  } else {
    result =
        live::runFleetInProcess(params, telemetry ? &*telemetry : nullptr);
  }
  if (telemetry) emitTelemetry(*telemetry, args);

  std::cout << "converged: " << (result.converged ? "yes" : "NO")
            << "  collected: " << (result.completed ? "yes" : "NO") << '\n';

  std::cout << "\nlive vs playback (per flow):\n";
  for (const live::FleetFlowResult& flow : result.flows) {
    std::cout << "  " << flow.spec.source << "->" << flow.spec.destination
              << " via " << routing::schemeName(flow.spec.scheme) << ":\n"
              << "    sent:                  " << flow.sent << '\n'
              << "    delivered on time:     " << flow.deliveredOnTime
              << " (late " << flow.deliveredLate << ")\n"
              << "    live unavailability:   "
              << util::formatPercent(flow.liveUnavailability, 3) << '\n'
              << "    predicted (playback):  "
              << util::formatPercent(flow.predictedUnavailability, 3) << '\n'
              << "    delta:                 "
              << util::formatFixed(flow.unavailabilityDelta() * 100.0, 3)
              << " pp (tolerance "
              << util::formatFixed(flow.tolerance() * 100.0, 3) << " pp, "
              << (flow.withinTolerance() ? "ok" : "EXCEEDED") << ")\n"
              << "    live cost:             "
              << util::formatFixed(flow.liveCost, 2) << " tx/pkt (model "
              << util::formatFixed(flow.predictedCost, 2) << ")\n";
  }

  std::uint64_t sends = 0, receives = 0, drops = 0, nacks = 0;
  for (const auto& [node, counters] : result.nodeCounters) {
    sends += counters.socketSends;
    receives += counters.socketReceives;
    drops += counters.impairmentDrops;
    nacks += counters.nacksSent;
  }
  std::cout << "sockets: " << sends << " sends, " << receives
            << " receives, " << drops << " impairment drops, " << nacks
            << " nacks\n";
  return result.passed() ? 0 : 1;
}

/// Resolves the input file of a `dgnet trace` subcommand: --in=FILE or
/// the positional after the subcommand.
std::string traceStoreInput(const util::Config& args,
                            const std::vector<std::string>& positional) {
  if (args.has("in")) return args.getString("in");
  if (positional.size() >= 3) return positional[2];
  throw std::runtime_error("--in=FILE required");
}

int cmdTraceStore(const util::Config& args,
                  const std::vector<std::string>& positional) {
  if (positional.size() < 2) {
    std::cerr << "usage: dgnet trace <pack|info|verify|cat> --in=FILE ...\n";
    return 2;
  }
  const std::string& sub = positional[1];
  std::optional<telemetry::Telemetry> telemetry;
  if (telemetryRequested(args)) telemetry.emplace();
  telemetry::MetricsRegistry* metrics =
      telemetry ? &telemetry->metrics : nullptr;
  try {
    if (sub == "pack") {
      const std::string in = traceStoreInput(args, positional);
      if (!args.has("out")) {
        std::cerr << "trace pack: --out=FILE required\n";
        return 2;
      }
      const auto tr = store::loadAnyTrace(in, metrics);
      store::WriterOptions options;
      options.chunkIntervals = static_cast<std::uint32_t>(args.getInt(
          "chunk-intervals", store::kDefaultChunkIntervals));
      store::packTrace(tr, args.getString("out"), options, metrics);
      const auto reader = store::PackedTraceReader::open(args.getString("out"));
      std::cout << "packed " << in << " -> " << args.getString("out") << ": "
                << reader.info().fileBytes << " bytes, "
                << reader.info().chunkCount << " chunks, "
                << reader.info().recordCount << " deviation records\n";
    } else if (sub == "info") {
      auto reader = store::PackedTraceReader::open(
          traceStoreInput(args, positional), metrics);
      const store::PackedTraceInfo& info = reader.info();
      std::cout << "format:          dgtrace v" << info.version << '\n'
                << "file size:       " << info.fileBytes << " bytes\n"
                << "intervals:       " << info.intervalCount << " x "
                << util::formatDuration(info.intervalLength) << " = "
                << util::formatDuration(
                       info.intervalLength *
                       static_cast<util::SimTime>(info.intervalCount))
                << '\n'
                << "links:           " << info.edgeCount << '\n'
                << "chunks:          " << info.chunkCount << " x "
                << info.chunkIntervals << " intervals\n"
                << "records:         " << info.recordCount
                << " deviation records\n"
                << "fingerprint:     " << util::formatHex64(
                       reader.contentFingerprint()) << '\n';
      // Per-chunk layout from the footer index alone (no chunk decode):
      // where each chunk sits, what it covers, and how dense it is.
      for (std::uint64_t c = 0; c < info.chunkCount; ++c) {
        const auto geometry = reader.chunkGeometry(c);
        std::cout << "  chunk " << util::padRight(std::to_string(c) + ":", 7)
                  << "intervals [" << geometry.firstInterval << ", "
                  << geometry.firstInterval + geometry.intervals << ")  "
                  << geometry.recordCount << " records  "
                  << geometry.payloadBytes << " payload bytes  @ offset "
                  << geometry.offset << '\n';
      }
    } else if (sub == "verify") {
      auto reader = store::PackedTraceReader::open(
          traceStoreInput(args, positional), metrics);
      const auto report = reader.verify();
      std::cout << "ok: " << report.chunksVerified << " chunks, "
                << report.recordsDecoded << " records, "
                << reader.info().fileBytes << " bytes verified\n";
    } else if (sub == "cat") {
      const auto tr = store::loadPackedTrace(
          traceStoreInput(args, positional), metrics);
      writeOrPrint(args.getString("out", "-"), tr.toString());
    } else {
      std::cerr << "dgnet trace: unknown subcommand '" << sub
                << "' (want pack, info, verify or cat)\n";
      return 2;
    }
  } catch (const store::StoreError& e) {
    if (telemetry) emitTelemetry(*telemetry, args);
    std::cerr << "dgnet trace " << sub << ": " << e.what() << '\n';
    return store::storeErrorExitCode(e.kind());
  }
  if (telemetry) emitTelemetry(*telemetry, args);
  return 0;
}

void printUsage(std::ostream& out) {
  out << "usage: dgnet <command> [--key=value ...]\n"
         "\n"
         "commands:\n"
         "  topology   print the overlay topology (sites, links, latencies)\n"
         "  topo       topology-family tooling (gen, info); "
         "--family=mesh|ring|scale-free:...\n"
         "  gen-trace  generate a synthetic condition trace (text or packed)\n"
         "  inspect    summarize a trace: horizon, deviations, worst links\n"
         "  import     convert external CSV measurements into a trace\n"
         "  playback   replay a flow/scheme over a trace (availability/cost)\n"
         "  simulate   drive the packet-level overlay (forwarding + recovery)\n"
         "  telemetry  run the flows x schemes sweep with full telemetry\n"
         "  mcast      run the groups x group-schemes multicast sweep\n"
         "  graph      dissemination-graph tooling (dump as DOT/JSON)\n"
         "  chaos      differential chaos soak: live simulator vs playback\n"
         "  trace      packed-trace store tooling (pack, info, verify, cat)\n"
         "  daemon     run one live UDP overlay daemon (fleet child process)\n"
         "  fleet      run a localhost daemon fleet through a live chaos "
         "soak\n"
         "  help       print this summary\n"
         "\n"
         "see the header of tools/dgnet.cpp for per-command flags\n";
}

}  // namespace

int main(int argc, char** argv) {
  // Accept both "--key=value" and "--key value". dgnet's only positional
  // argument is the leading command, so once it has been seen, a bare
  // "--key" followed by a non-flag token unambiguously means key=value.
  std::vector<std::string> normalized;
  normalized.reserve(static_cast<std::size_t>(argc));
  normalized.emplace_back(argv[0]);
  bool haveCommand = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (!util::startsWith(arg, "--")) {
      haveCommand = true;
      normalized.push_back(std::move(arg));
      continue;
    }
    if (haveCommand && arg.find('=') == std::string::npos && i + 1 < argc &&
        !util::startsWith(argv[i + 1], "--")) {
      arg += '=';
      arg += argv[++i];
    }
    normalized.push_back(std::move(arg));
  }
  std::vector<const char*> normalizedPtrs;
  normalizedPtrs.reserve(normalized.size());
  for (const std::string& arg : normalized)
    normalizedPtrs.push_back(arg.c_str());

  util::Config args;
  std::vector<std::string> positional;
  args.applyArgs(static_cast<int>(normalizedPtrs.size()),
                 normalizedPtrs.data(), &positional);
  if (positional.empty()) {
    if (args.getBool("help", false)) {
      printUsage(std::cout);
      return 0;
    }
    printUsage(std::cerr);
    return 2;
  }
  const std::string& command = positional.front();
  try {
    if (command == "help") {
      printUsage(std::cout);
      return 0;
    }
    if (command == "topology") return cmdTopology(args);
    if (command == "topo") return cmdTopo(args, positional);
    if (command == "gen-trace") return cmdGenTrace(args);
    if (command == "inspect") return cmdInspect(args);
    if (command == "import") return cmdImport(args);
    if (command == "playback") return cmdPlayback(args);
    if (command == "simulate") return cmdSimulate(args);
    if (command == "telemetry") return cmdTelemetry(args);
    if (command == "mcast") return cmdMcast(args);
    if (command == "graph") return cmdGraph(args, positional);
    if (command == "chaos") return cmdChaos(args);
    if (command == "trace") return cmdTraceStore(args, positional);
    if (command == "daemon") return cmdDaemon(args);
    if (command == "fleet") return cmdFleet(args);
    std::cerr << "dgnet: unknown command '" << command << "'\n";
    printUsage(std::cerr);
    return 64;
  } catch (const UsageError& e) {
    std::cerr << "dgnet " << command << ": " << e.what() << '\n';
    printUsage(std::cerr);
    return 2;
  } catch (const store::StoreError& e) {
    // Store errors outside `dgnet trace` (e.g. a truncated --trace=FILE)
    // keep their distinct per-kind exit codes.
    std::cerr << "dgnet " << command << ": " << e.what() << '\n';
    return store::storeErrorExitCode(e.kind());
  } catch (const std::exception& e) {
    std::cerr << "dgnet " << command << ": " << e.what() << '\n';
    return 1;
  }
}
