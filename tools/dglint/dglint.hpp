// dglint driver: file discovery, suppression comments, baseline
// handling and output formatting around the rule engine in rules.hpp.
//
// Suppressions (same line, or a comment-only line suppressing the next
// line; a justification after the colon is mandatory — an empty reason
// is itself a finding, rule R0):
//
//   // dglint: ok(R1): <why this use is sound>
//   // dglint: ordered-ok: <why hash order cannot reach the output>
//   // dglint: fp-merge-ok: <why the sum is order-independent>
//
// `ordered-ok` is sugar for ok(R2), `fp-merge-ok` for ok(R4).
//
// The baseline file grandfathers pre-existing findings: one
// `<rule> <path> <hash>` line per finding, where the hash covers the
// finding's source-line text (so it survives unrelated edits but goes
// stale when the offending line changes). This repo's committed
// baseline (.dglint-baseline) is empty and must stay empty.
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "rules.hpp"

namespace dg::lint {

struct DriverOptions {
  /// Repo root; findings are reported relative to it.
  std::string root = ".";
  /// Files or directories to scan, relative to root.
  std::vector<std::string> paths = {"src", "tools"};
  /// Substring patterns (matched against the repo-relative path) for
  /// files that feed exports/reports/merges — the R2/R4 scope.
  std::vector<std::string> orderedScope = defaultOrderedScope();
  /// Substring patterns for files allowed to touch raw wall clocks.
  std::vector<std::string> clockAllow = defaultClockAllow();
  /// Enabled rules; empty = all.
  std::set<std::string> rules;
  std::string baselinePath;       ///< "" = no baseline filtering
  std::string writeBaselinePath;  ///< "" = don't write one

  static std::vector<std::string> defaultOrderedScope();
  static std::vector<std::string> defaultClockAllow();
};

struct LintResult {
  std::vector<Finding> findings;  ///< active: not suppressed/baselined
  std::size_t suppressed = 0;
  std::size_t baselined = 0;
  std::size_t staleBaseline = 0;  ///< baseline entries that matched nothing
  std::size_t filesScanned = 0;
};

/// Analyzes one in-memory source (rule pass + suppression filtering +
/// R0 checks). `relPath` determines rule scoping. Exposed for tests.
struct SourceResult {
  std::vector<Finding> findings;
  std::size_t suppressed = 0;
};
SourceResult analyzeSource(const std::string& relPath,
                           const std::string& source,
                           const DriverOptions& options);

/// Full run over options.paths: walks directories (sorted, so output
/// order is deterministic), applies the baseline, optionally writes a
/// fresh baseline of the remaining findings.
LintResult runLint(const DriverOptions& options);

/// Renders findings as "text", "json", "github" (workflow commands) or
/// "sarif" (SARIF 2.1.0 for GitHub code scanning). `toolName` labels the
/// SARIF driver so dglint and dgcheck uploads stay distinct.
std::string formatFindings(const LintResult& result,
                           const std::string& format,
                           const std::string& toolName = "dglint");

/// Deterministic (sorted, deduplicated) list of .h/.hpp/.cpp/.cc/.cxx
/// files under `paths` relative to `root`, skipping .git and build*.
std::vector<std::string> collectSourceFiles(
    const std::string& root, const std::vector<std::string>& paths);

/// Markdown debt report over every suppression directive found under
/// options.paths: counts per rule and per file, the full reason list,
/// and the oldest suppression (via `git blame` when available).
std::string reportSuppressions(const DriverOptions& options);

/// Stable 64-bit key of a finding for the baseline file: hashes rule,
/// path and the trimmed text of the finding's source line.
std::uint64_t baselineKey(const Finding& finding,
                          const std::string& lineText);

/// Complete CLI (argument parsing to exit code); used by main().
int lintMain(int argc, const char* const* argv);

}  // namespace dg::lint
