// Shared parsing for in-source analyzer directives.
//
// Both analyzers read the same comment vocabulary; a directive comment
// starts with `dglint:` or `dgcheck:` (the two prefixes are equivalent
// for suppressions, so a suppression written for one tool is honored by
// the other):
//
//   // dglint: ok(Rn): <why this finding is safe to ignore>
//   // dglint: ordered-ok: <why>        (sugar for ok(R2))
//   // dglint: fp-merge-ok: <why>       (sugar for ok(R4))
//
// dgcheck additionally understands semantic annotations (only with the
// `dgcheck:` prefix):
//
//   // dgcheck: hot            marks the next/current function as a
//                              zero-allocation hot path (R5 root)
//   // dgcheck: worker         marks a (flow, scheme, chunk) task entry
//                              point (R7 root)
//   // dgcheck: cold: <why>    stops hot/worker reachability traversal
//                              at this function
//   // dgcheck: setup begin    opens a region exempt from R5/R7 (one-time
//   // dgcheck: setup end      initialization before the steady state)
//
// Placement: a directive comment alone on its line targets the NEXT
// line; a trailing comment targets its own line. Inside a multi-line
// preprocessor directive, either placement targets the directive's
// first line (where findings are anchored). "Alone on its line" is
// decided from the token stream, not the raw text, so a line whose text
// happens to begin with `//` inside a raw string literal does not
// confuse the targeting.
//
// Malformed directives (unknown verb, unknown rule, missing reason,
// unbalanced setup regions) are themselves findings, rule R0.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "rules.hpp"

namespace dg::lint {

/// One parsed `ok(Rn)`-style suppression.
struct Suppression {
  std::size_t targetLine = 0;   ///< line the suppression applies to
  std::size_t commentLine = 0;  ///< line of the directive comment itself
  std::string rule;             ///< "R1".."R8"
  std::string reason;
  bool used = false;
};

/// A `setup begin` .. `setup end` region, inclusive of both lines.
struct SetupRange {
  std::size_t beginLine = 0;
  std::size_t endLine = 0;
};

struct Directives {
  std::vector<Suppression> suppressions;
  std::vector<std::size_t> hotLines;     ///< target lines of `hot`
  std::vector<std::size_t> workerLines;  ///< target lines of `worker`
  std::vector<std::size_t> coldLines;    ///< target lines of `cold:`
  std::vector<SetupRange> setupRanges;
  std::vector<Finding> malformed;  ///< R0 findings
};

/// Parses every directive comment in `tokens`. `lines` are the file's
/// physical lines (for target-line decisions).
Directives parseDirectives(const std::string& relPath,
                           const std::vector<Token>& tokens,
                           const std::vector<std::string>& lines);

/// True when `line` falls inside any setup region.
bool lineInSetup(const Directives& directives, std::size_t line);

}  // namespace dg::lint
