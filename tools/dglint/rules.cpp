#include "rules.hpp"

#include <algorithm>
#include <set>
#include <string_view>

namespace dg::lint {
namespace {

using TokenList = std::vector<Token>;

bool isIdent(const Token& t, std::string_view text) {
  return t.kind == TokenKind::Identifier && t.text == text;
}
bool isPunct(const Token& t, std::string_view text) {
  return t.kind == TokenKind::Punct && t.text == text;
}

/// Code tokens only (rules never match inside comments, strings, char
/// literals or preprocessor directives), with original indices dropped.
TokenList codeTokens(const TokenList& tokens) {
  TokenList code;
  code.reserve(tokens.size());
  for (const Token& t : tokens) {
    if (t.kind == TokenKind::Identifier || t.kind == TokenKind::Number ||
        t.kind == TokenKind::Punct) {
      code.push_back(t);
    }
  }
  return code;
}

// ---------------------------------------------------------------------
// R1: banned nondeterminism sources
// ---------------------------------------------------------------------

const std::set<std::string, std::less<>> kBannedCalls = {
    // Callable only: flagged when directly followed by `(`.
    "rand",        "srand",         "clock",     "gettimeofday",
    "clock_gettime", "localtime",   "gmtime",    "mktime",
    "timespec_get", "getenv",       "secure_getenv",
};

const std::set<std::string, std::less<>> kBannedClockIdents = {
    // Flagged wherever they appear (type or call position).
    "system_clock", "steady_clock", "high_resolution_clock",
};

/// Keywords that can directly precede a call expression; any other
/// identifier before `name(` means `name` is being *declared* with that
/// identifier as its return type (e.g. `long time() const`), which R1
/// does not flag.
const std::set<std::string, std::less<>> kExprKeywords = {
    "return", "co_return", "co_yield", "case", "else", "do",
};

void runR1(const FileContext& file, const TokenList& code,
           std::vector<Finding>& out) {
  if (!file.libraryCode) return;
  for (std::size_t i = 0; i < code.size(); ++i) {
    const Token& t = code[i];
    if (t.kind != TokenKind::Identifier) continue;
    const bool memberAccess =
        i > 0 && (isPunct(code[i - 1], ".") || isPunct(code[i - 1], "->"));
    if (memberAccess) continue;  // obj.time(), registry.clock() are fine
    const bool declContext = i > 0 &&
                             code[i - 1].kind == TokenKind::Identifier &&
                             kExprKeywords.count(code[i - 1].text) == 0;
    if (declContext) continue;  // `long time() const` declares, not calls

    if (isIdent(t, "random_device")) {
      out.push_back({file.path, t.line, "R1",
                     "std::random_device is nondeterministic; seed a "
                     "util::Rng from configuration instead"});
      continue;
    }
    if (kBannedClockIdents.count(t.text) > 0) {
      if (file.clockAllowed) continue;
      out.push_back({file.path, t.line, "R1",
                     "raw <chrono> clock '" + t.text +
                         "' outside the wall-clock shim; use "
                         "util::SimTime or util/wall_clock.hpp"});
      continue;
    }
    if (isIdent(t, "time")) {
      // Only `time(...)` / `std::time(...)` — not SimTime, not members.
      const bool call = i + 1 < code.size() && isPunct(code[i + 1], "(");
      bool qualifiedOther = false;
      if (i >= 2 && isPunct(code[i - 1], "::") && !isIdent(code[i - 2], "std"))
        qualifiedOther = true;  // e.g. some_ns::time — not libc time()
      if (call && !qualifiedOther) {
        out.push_back({file.path, t.line, "R1",
                       "wall-clock time() call; simulation code must use "
                       "util::SimTime (or the wall-clock shim for "
                       "benchmarks)"});
      }
      continue;
    }
    if (kBannedCalls.count(t.text) > 0) {
      const bool call = i + 1 < code.size() && isPunct(code[i + 1], "(");
      bool qualifiedOther = false;
      if (i >= 2 && isPunct(code[i - 1], "::") && !isIdent(code[i - 2], "std"))
        qualifiedOther = true;
      if (call && !qualifiedOther) {
        out.push_back({file.path, t.line, "R1",
                       "banned nondeterminism source '" + t.text +
                           "()'; route randomness through util::Rng and "
                           "time through util::SimTime / the wall-clock "
                           "shim, and pass configuration explicitly "
                           "instead of getenv"});
      }
    }
  }
}

/// R1 inside `#define` bodies: macro expansions smuggle banned calls
/// past the token rules (the call only appears at expansion sites, which
/// may be in excluded contexts), so the replacement text is re-lexed and
/// scanned with the same matcher. Findings anchor at the directive's
/// first line, which is also where suppressions on any continuation line
/// resolve to.
void runR1Defines(const FileContext& file, std::vector<Finding>& out) {
  if (!file.libraryCode) return;
  for (const Token& t : file.tokens) {
    if (t.kind != TokenKind::Preprocessor) continue;
    std::string text = t.text;
    if (!text.empty() && text[0] == '#') text = text.substr(1);
    const std::size_t word = text.find_first_not_of(" \t");
    if (word == std::string::npos || text.compare(word, 6, "define") != 0)
      continue;
    const TokenList body = codeTokens(tokenize(text.substr(word + 6)));
    // Skip the macro's own name (and parameter list, for function-like
    // macros) — `#define time(x) ...` defines, it does not call.
    std::size_t start = 0;
    if (start < body.size() && body[start].kind == TokenKind::Identifier) {
      ++start;
      if (start < body.size() && isPunct(body[start], "(")) {
        int depth = 0;
        for (; start < body.size(); ++start) {
          if (isPunct(body[start], "(")) ++depth;
          if (isPunct(body[start], ")") && --depth == 0) {
            ++start;
            break;
          }
        }
      }
    }
    for (std::size_t i = start; i < body.size(); ++i) {
      const Token& b = body[i];
      if (b.kind != TokenKind::Identifier) continue;
      if (i > 0 && (isPunct(body[i - 1], ".") || isPunct(body[i - 1], "->")))
        continue;
      bool qualifiedOther = false;
      if (i >= 2 && isPunct(body[i - 1], "::") &&
          !isIdent(body[i - 2], "std"))
        qualifiedOther = true;
      if (isIdent(b, "random_device") && !qualifiedOther) {
        out.push_back({file.path, t.line, "R1",
                       "std::random_device in a macro definition; seed a "
                       "util::Rng from configuration instead"});
        continue;
      }
      if (kBannedClockIdents.count(b.text) > 0 && !file.clockAllowed) {
        out.push_back({file.path, t.line, "R1",
                       "raw <chrono> clock '" + b.text +
                           "' in a macro definition outside the wall-clock "
                           "shim; use util::SimTime or util/wall_clock.hpp"});
        continue;
      }
      const bool call = i + 1 < body.size() && isPunct(body[i + 1], "(");
      if (call && !qualifiedOther &&
          (isIdent(b, "time") || kBannedCalls.count(b.text) > 0)) {
        out.push_back({file.path, t.line, "R1",
                       "banned nondeterminism source '" + b.text +
                           "()' in a macro definition; route randomness "
                           "through util::Rng and time through "
                           "util::SimTime / the wall-clock shim"});
      }
    }
  }
}

// ---------------------------------------------------------------------
// Shared unordered-container tracking for R2 / R4
// ---------------------------------------------------------------------

const std::set<std::string, std::less<>> kUnorderedTypes = {
    "unordered_map", "unordered_set", "unordered_multimap",
    "unordered_multiset", "flat_hash_map", "flat_hash_set",
};

/// Skips a balanced template argument list starting at code[i] == "<".
/// Returns the index one past the closing ">" (handles ">>" closing two
/// levels), or tokens.size() when unbalanced.
std::size_t skipAngles(const TokenList& code, std::size_t i) {
  int depth = 0;
  for (; i < code.size(); ++i) {
    const Token& t = code[i];
    if (t.kind != TokenKind::Punct) continue;
    if (t.text == "<" || t.text == "<<") {
      depth += t.text == "<<" ? 2 : 1;
    } else if (t.text == ">" || t.text == ">>") {
      depth -= t.text == ">>" ? 2 : 1;
      if (depth <= 0) return i + 1;
    } else if (t.text == ";" || t.text == "{") {
      return code.size();  // not actually a template argument list
    }
  }
  return code.size();
}

struct UnorderedNames {
  std::set<std::string, std::less<>> variables;  ///< declared of hash type
  std::set<std::string, std::less<>> aliases;    ///< using X = unordered_...
};

/// Collects names declared with an unordered container type (members,
/// locals, params) plus `using`/`typedef` aliases of such types, then
/// variables declared via those aliases. Purely lexical: declarations in
/// other files are invisible, which is the documented limit of R2/R4.
UnorderedNames collectUnordered(const TokenList& code) {
  UnorderedNames names;
  for (int pass = 0; pass < 2; ++pass) {
    for (std::size_t i = 0; i < code.size(); ++i) {
      const Token& t = code[i];
      const bool hashType = t.kind == TokenKind::Identifier &&
                            kUnorderedTypes.count(t.text) > 0;
      const bool aliasType = t.kind == TokenKind::Identifier &&
                             names.aliases.count(t.text) > 0;
      if (!hashType && !aliasType) continue;

      // `using NAME = ...unordered_map<...>...;` — scan backwards for
      // the alias pattern within the current statement.
      bool isAliasDef = false;
      for (std::size_t back = i; back-- > 0;) {
        const Token& b = code[back];
        if (isPunct(b, ";") || isPunct(b, "{") || isPunct(b, "}")) break;
        if (isIdent(b, "using") || isIdent(b, "typedef")) {
          // `using NAME =`: NAME is right after `using`.
          if (back + 1 < code.size() &&
              code[back + 1].kind == TokenKind::Identifier) {
            names.aliases.insert(code[back + 1].text);
          }
          isAliasDef = true;
          break;
        }
      }
      if (isAliasDef) continue;

      // Otherwise: a declaration `unordered_map<K,V> [*&]* NAME ...`.
      std::size_t j = i + 1;
      if (j < code.size() && isPunct(code[j], "<")) j = skipAngles(code, j);
      while (j < code.size() &&
             (isPunct(code[j], "*") || isPunct(code[j], "&") ||
              isIdent(code[j], "const")))
        ++j;
      if (j < code.size() && code[j].kind == TokenKind::Identifier)
        names.variables.insert(code[j].text);
    }
    // Second pass resolves variables declared via aliases found late in
    // pass one (e.g. alias in a header section above its use).
  }
  // Reference bindings: `auto& NAME = <unordered variable>;`
  for (std::size_t i = 0; i + 2 < code.size(); ++i) {
    if (!isIdent(code[i], "auto")) continue;
    std::size_t j = i + 1;
    while (j < code.size() &&
           (isPunct(code[j], "&") || isPunct(code[j], "*") ||
            isIdent(code[j], "const")))
      ++j;
    if (j + 2 >= code.size() || code[j].kind != TokenKind::Identifier ||
        !isPunct(code[j + 1], "="))
      continue;
    const Token& rhs = code[j + 2];
    if (rhs.kind == TokenKind::Identifier &&
        names.variables.count(rhs.text) > 0) {
      names.variables.insert(code[j].text);
    }
  }
  return names;
}

/// One `for (... : range)` loop whose range mentions an unordered name.
struct UnorderedLoop {
  std::size_t forLine;    ///< line of the `for` keyword
  std::size_t bodyBegin;  ///< code-token index of first body token
  std::size_t bodyEnd;    ///< one past last body token
};

std::vector<UnorderedLoop> findUnorderedLoops(const TokenList& code,
                                              const UnorderedNames& names) {
  std::vector<UnorderedLoop> loops;
  for (std::size_t i = 0; i + 1 < code.size(); ++i) {
    if (!isIdent(code[i], "for") || !isPunct(code[i + 1], "(")) continue;
    // Find the range-for `:` and the closing `)` at depth 1.
    int depth = 0;
    std::size_t colon = 0, close = 0;
    for (std::size_t j = i + 1; j < code.size(); ++j) {
      if (isPunct(code[j], "(")) ++depth;
      if (isPunct(code[j], ")")) {
        --depth;
        if (depth == 0) {
          close = j;
          break;
        }
      }
      if (depth == 1 && isPunct(code[j], ":") && colon == 0) colon = j;
    }
    if (colon == 0 || close == 0) continue;  // classic for / unbalanced

    bool unordered = false;
    for (std::size_t j = colon + 1; j < close; ++j) {
      if (code[j].kind != TokenKind::Identifier) continue;
      if (names.variables.count(code[j].text) > 0 ||
          kUnorderedTypes.count(code[j].text) > 0) {
        unordered = true;
        break;
      }
    }
    if (!unordered) continue;

    // Body: `{...}` brace-matched, or a single statement up to `;`.
    std::size_t bodyBegin = close + 1, bodyEnd = bodyBegin;
    if (bodyBegin < code.size() && isPunct(code[bodyBegin], "{")) {
      int braces = 0;
      for (std::size_t j = bodyBegin; j < code.size(); ++j) {
        if (isPunct(code[j], "{")) ++braces;
        if (isPunct(code[j], "}")) {
          --braces;
          if (braces == 0) {
            bodyEnd = j + 1;
            break;
          }
        }
      }
    } else {
      while (bodyEnd < code.size() && !isPunct(code[bodyEnd], ";")) ++bodyEnd;
    }
    loops.push_back({code[i].line, bodyBegin, bodyEnd});
  }
  return loops;
}

void runR2(const FileContext& file, const std::vector<UnorderedLoop>& loops,
           std::vector<Finding>& out) {
  if (!file.orderedScope) return;
  for (const UnorderedLoop& loop : loops) {
    out.push_back(
        {file.path, loop.forLine, "R2",
         "iteration over an unordered container in an export/merge path; "
         "hash order is not deterministic across platforms or runs -- "
         "iterate a sorted view, or annotate `// dglint: ordered-ok: "
         "<why order cannot reach the output>`"});
  }
}

// ---------------------------------------------------------------------
// R4: float accumulation inside unordered loops
// ---------------------------------------------------------------------

std::set<std::string, std::less<>> collectFloatNames(const TokenList& code) {
  std::set<std::string, std::less<>> floats;
  for (std::size_t i = 0; i + 1 < code.size(); ++i) {
    if (!isIdent(code[i], "double") && !isIdent(code[i], "float")) continue;
    std::size_t j = i + 1;
    while (j < code.size() &&
           (isPunct(code[j], "&") || isIdent(code[j], "const")))
      ++j;
    if (j < code.size() && code[j].kind == TokenKind::Identifier)
      floats.insert(code[j].text);
  }
  return floats;
}

void runR4(const FileContext& file, const TokenList& code,
           const std::vector<UnorderedLoop>& loops,
           std::vector<Finding>& out) {
  if (!file.orderedScope) return;
  const auto floats = collectFloatNames(code);
  for (const UnorderedLoop& loop : loops) {
    for (std::size_t j = loop.bodyBegin; j < loop.bodyEnd; ++j) {
      if (!isPunct(code[j], "+=") || j == 0) continue;
      const Token& lhs = code[j - 1];
      if (lhs.kind == TokenKind::Identifier && floats.count(lhs.text) > 0) {
        out.push_back(
            {file.path, code[j].line, "R4",
             "float accumulation '" + lhs.text +
                 " +=' inside a loop over an unordered container; "
                 "addition order follows hash order, so the sum is not "
                 "reproducible -- accumulate into a sorted intermediate "
                 "or annotate `// dglint: fp-merge-ok: <why>`"});
      }
    }
  }
}

// ---------------------------------------------------------------------
// R3: header hygiene + non-const globals
// ---------------------------------------------------------------------

/// Normalizes a preprocessor directive: text after '#' with runs of
/// whitespace collapsed, e.g. "#  pragma   once" -> "pragma once".
std::string directiveText(const Token& t) {
  std::string out;
  bool space = false;
  for (const char c : t.text) {
    if (c == '#' && out.empty()) continue;
    if (c == ' ' || c == '\t') {
      space = !out.empty();
      continue;
    }
    if (space) out += ' ';
    space = false;
    out += c;
  }
  return out;
}

void runR3Guards(const FileContext& file, std::vector<Finding>& out) {
  if (!file.isHeader) return;
  bool pragmaOnce = false;
  std::string pendingGuard;
  bool guarded = false;
  for (const Token& t : file.tokens) {
    if (t.kind != TokenKind::Preprocessor) continue;
    const std::string d = directiveText(t);
    if (d == "pragma once") pragmaOnce = true;
    if (d.rfind("ifndef ", 0) == 0 && pendingGuard.empty())
      pendingGuard = d.substr(7);
    if (d.rfind("define ", 0) == 0 && !pendingGuard.empty() &&
        d.substr(7, pendingGuard.size()) == pendingGuard)
      guarded = true;
  }
  if (!pragmaOnce && !guarded) {
    out.push_back({file.path, 1, "R3",
                   "header missing `#pragma once` (or an #ifndef/#define "
                   "include guard)"});
  }
}

void runR3UsingNamespace(const FileContext& file, const TokenList& code,
                         std::vector<Finding>& out) {
  if (!file.isHeader) return;
  for (std::size_t i = 0; i + 1 < code.size(); ++i) {
    if (isIdent(code[i], "using") && isIdent(code[i + 1], "namespace")) {
      out.push_back({file.path, code[i].line, "R3",
                     "`using namespace` in a header leaks into every "
                     "includer; qualify names instead"});
    }
  }
}

/// Statement starters that can never begin a variable definition we want
/// to flag (type definitions, templates, declarations-only, etc.).
const std::set<std::string, std::less<>> kNonVarStarters = {
    "using",   "typedef", "template", "class",    "struct",
    "union",   "enum",    "namespace", "friend",  "static_assert",
    "concept", "extern",  "asm",       "requires",
};

void runR3Globals(const FileContext& file, const TokenList& code,
                  std::vector<Finding>& out) {
  if (!file.libraryCode) return;

  enum class Scope { Namespace, Type, Function, Init };
  std::vector<Scope> scopes;   // implicit outermost namespace scope
  TokenList stmt;              // current statement's tokens at this scope
  std::size_t initDepth = 0;   // nested Init braces (tokens not recorded)
  int parenDepth = 0;          // braces inside parens are not scopes
  bool stmtHadBraceInit = false;

  const auto atNamespaceScope = [&] {
    return std::all_of(scopes.begin(), scopes.end(),
                       [](Scope s) { return s == Scope::Namespace; });
  };

  const auto analyzeStatement = [&] {
    if (stmt.empty() || !atNamespaceScope()) return;
    if (kNonVarStarters.count(stmt.front().text) > 0) return;
    bool sawConst = false, sawParenBeforeEq = false, sawEq = false;
    bool sawOperator = false;
    int depth = 0;
    for (const Token& t : stmt) {
      if (t.kind == TokenKind::Identifier) {
        if (t.text == "const" || t.text == "constexpr" ||
            t.text == "constinit" || t.text == "consteval")
          sawConst = true;
        if (t.text == "operator") sawOperator = true;
      }
      if (t.kind != TokenKind::Punct) continue;
      if (t.text == "(" || t.text == "[") {
        if (t.text == "(" && depth == 0 && !sawEq) sawParenBeforeEq = true;
        ++depth;
      } else if (t.text == ")" || t.text == "]") {
        --depth;
      } else if (t.text == "=" && depth == 0) {
        sawEq = true;
      }
    }
    // Function declarations/definitions have a parameter list before any
    // initializer; anything const-qualified is fine; `operator` covers
    // free operator overloads.
    if (sawConst || sawOperator || sawParenBeforeEq) return;
    // What remains: `T x = ...;`, `T x{...};`, or a plain `T x;` — a
    // namespace-scope variable definition (declarations-only statements
    // were filtered by kNonVarStarters' `extern`).
    const bool definition =
        sawEq || stmtHadBraceInit ||
        (stmt.size() >= 2 && stmt.back().kind == TokenKind::Identifier);
    if (!definition) return;
    out.push_back(
        {file.path, stmt.front().line, "R3",
         "non-const namespace-scope variable; mutable global state "
         "breaks run isolation and thread safety -- make it const/"
         "constexpr, or pass it explicitly (annotate `// dglint: "
         "ok(R3): <why>` if it is genuinely required)"});
  };

  for (const Token& t : code) {
    if (initDepth == 0) {
      if (isPunct(t, "(")) ++parenDepth;
      if (isPunct(t, ")") && parenDepth > 0) --parenDepth;
      // Inside a parameter list / call, braces (default arguments,
      // lambda bodies) and semicolons are part of the statement, not
      // scope or statement boundaries.
      if (parenDepth > 0) {
        stmt.push_back(t);
        continue;
      }
    }
    if (isPunct(t, "{")) {
      if (initDepth > 0) {
        ++initDepth;
        continue;
      }
      // Classify the brace by the statement tokens before it.
      bool sawEq = false, sawParen = false, sawType = false, sawNs = false;
      for (const Token& p : stmt) {
        if (isIdent(p, "namespace")) sawNs = true;
        if (isIdent(p, "class") || isIdent(p, "struct") ||
            isIdent(p, "union") || isIdent(p, "enum"))
          sawType = true;
        if (isPunct(p, "=")) sawEq = true;
        if (isPunct(p, "(")) sawParen = true;
        if (isIdent(p, "extern")) sawNs = true;  // extern "C" { ... }
      }
      Scope s = Scope::Function;
      if (sawNs) {
        s = Scope::Namespace;
      } else if (atNamespaceScope() && !sawParen && !sawType &&
                 (sawEq || (!stmt.empty() &&
                            stmt.back().kind == TokenKind::Identifier))) {
        // `Foo x = { ... };` or `Foo x{ ... };` at namespace scope: the
        // brace is an initializer, the statement continues after it.
        s = Scope::Init;
        stmtHadBraceInit = true;
      } else if (sawType && !sawParen) {
        s = Scope::Type;
      }
      if (s == Scope::Init) {
        initDepth = 1;
        scopes.push_back(s);
        continue;
      }
      scopes.push_back(s);
      stmt.clear();
      continue;
    }
    if (isPunct(t, "}")) {
      if (initDepth > 0) {
        --initDepth;
        if (initDepth > 0) continue;
      }
      if (!scopes.empty()) {
        const Scope closed = scopes.back();
        scopes.pop_back();
        if (closed == Scope::Init) continue;  // statement continues
      }
      stmt.clear();
      stmtHadBraceInit = false;
      continue;
    }
    if (initDepth > 0) continue;  // inside an initializer: skip tokens
    if (isPunct(t, ";")) {
      analyzeStatement();
      stmt.clear();
      stmtHadBraceInit = false;
      continue;
    }
    stmt.push_back(t);
  }
}

}  // namespace

std::vector<Finding> runRules(const FileContext& file) {
  std::vector<Finding> out;
  const TokenList code = codeTokens(file.tokens);

  runR1(file, code, out);
  runR1Defines(file, out);

  const UnorderedNames unordered = collectUnordered(code);
  const auto loops = findUnorderedLoops(code, unordered);
  runR2(file, loops, out);
  runR4(file, code, loops, out);

  runR3Guards(file, out);
  runR3UsingNamespace(file, code, out);
  runR3Globals(file, code, out);

  std::stable_sort(out.begin(), out.end(),
                   [](const Finding& a, const Finding& b) {
                     return a.line < b.line;
                   });
  return out;
}

const std::vector<std::string>& allRuleIds() {
  // R1-R4 are dglint's token rules; R5-R8 are dgcheck's semantic rules
  // (see semantic.hpp). Both tools honor suppressions for any of them.
  static const std::vector<std::string> ids = {"R0", "R1", "R2", "R3", "R4",
                                               "R5", "R6", "R7", "R8"};
  return ids;
}

}  // namespace dg::lint
