#include "semantic.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string_view>

#include "dglint.hpp"

namespace dg::lint {
namespace {

using TokenList = std::vector<Token>;

std::string trim(const std::string& s) {
  std::size_t b = s.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) return "";
  std::size_t e = s.find_last_not_of(" \t\r\n");
  return s.substr(b, e - b + 1);
}

std::uint64_t fnv1a(std::string_view s,
                    std::uint64_t h = 0xcbf29ce484222325ULL) {
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

bool isIdent(const Token& t, std::string_view text) {
  return t.kind == TokenKind::Identifier && t.text == text;
}
bool isPunct(const Token& t, std::string_view text) {
  return t.kind == TokenKind::Punct && t.text == text;
}

TokenList codeTokens(const TokenList& tokens) {
  TokenList code;
  code.reserve(tokens.size());
  for (const Token& t : tokens) {
    if (t.kind == TokenKind::Identifier || t.kind == TokenKind::Number ||
        t.kind == TokenKind::Punct) {
      code.push_back(t);
    }
  }
  return code;
}

/// Skips a balanced template argument list starting at code[i] == "<".
std::size_t skipAngles(const TokenList& code, std::size_t i) {
  int depth = 0;
  for (; i < code.size(); ++i) {
    const Token& t = code[i];
    if (t.kind != TokenKind::Punct) continue;
    if (t.text == "<" || t.text == "<<") {
      depth += t.text == "<<" ? 2 : 1;
    } else if (t.text == ">" || t.text == ">>") {
      depth -= t.text == ">>" ? 2 : 1;
      if (depth <= 0) return i + 1;
    } else if (t.text == ";" || t.text == "{") {
      return code.size();
    }
  }
  return code.size();
}

/// Keywords/specifiers that are never a user type or variable name in
/// the declaration patterns the extractor matches.
const std::set<std::string, std::less<>>& notATypeName() {
  static const std::set<std::string, std::less<>> kSet = {
      "if",       "else",     "for",        "while",     "do",
      "switch",   "case",     "return",     "break",     "continue",
      "goto",     "new",      "delete",     "throw",     "sizeof",
      "const",    "constexpr","constinit",  "consteval", "static",
      "auto",     "using",    "typedef",    "template",  "typename",
      "class",    "struct",   "enum",       "union",     "public",
      "private",  "protected","virtual",    "override",  "final",
      "inline",   "extern",   "operator",   "namespace", "true",
      "false",    "nullptr",  "this",       "co_return", "co_await",
      "co_yield", "catch",    "try",        "default",   "volatile",
      "mutable",  "register", "thread_local","noexcept", "alignas",
      "alignof",  "decltype", "concept",    "requires",  "friend",
      "explicit", "export",   "and",        "or",        "not",
      "void",     "static_assert",          "__attribute__",
  };
  return kSet;
}

/// Identifiers that look like calls but are control flow / expressions.
const std::set<std::string, std::less<>>& notACall() {
  static const std::set<std::string, std::less<>> kSet = {
      "if",     "for",    "while",  "switch",   "return", "sizeof",
      "catch",  "throw",  "alignof", "decltype", "noexcept",
      "static_assert",    "alignas", "co_await", "co_return", "co_yield",
  };
  return kSet;
}

/// std value types whose construction allocates (R5 local-declaration
/// check) — matched on the last component of the declared type.
const std::set<std::string, std::less<>>& allocatingTypes() {
  static const std::set<std::string, std::less<>> kSet = {
      "vector", "string",        "deque",         "list",
      "map",    "set",           "multimap",      "multiset",
      "unordered_map",           "unordered_set", "basic_string",
      "ostringstream",           "istringstream", "stringstream",
      "function",
  };
  return kSet;
}

/// Receiver types whose member calls never resolve to repo functions
/// (std containers / streams); stops name-collision overlinking when a
/// hot function calls e.g. `.clear()` on a vector.
const std::set<std::string, std::less<>>& externalRecvTypes() {
  static const std::set<std::string, std::less<>> kSet = {
      "vector",  "string",   "deque",   "list",     "map",    "set",
      "multimap","multiset", "unordered_map",       "unordered_set",
      "array",   "span",     "optional","pair",     "tuple",  "function",
      "ostringstream",       "istringstream",       "stringstream",
      "ifstream","ofstream", "fstream", "string_view",
  };
  return kSet;
}

/// Member-call names so common on std containers/iterators/handles that
/// an unknown-receiver call must NOT fall back to "all candidates" — a
/// repo class happening to define begin()/end()/size() would otherwise
/// be linked into every hot function that touches a vector. Such calls
/// link only on an exact receiver-type match.
const std::set<std::string, std::less<>>& genericMemberNames() {
  static const std::set<std::string, std::less<>> kSet = {
      "begin",   "end",     "rbegin",  "rend",     "cbegin", "cend",
      "size",    "empty",   "clear",   "data",     "front",  "back",
      "at",      "find",    "count",   "contains", "insert", "erase",
      "emplace", "reserve", "resize",  "capacity", "swap",   "get",
      "reset",   "release", "str",     "c_str",    "length", "top",
      "pop",     "push",    "first",   "second",   "value",  "has_value",
      "fill",    "assign",  "append",  "substr",   "lock",   "unlock",
  };
  return kSet;
}

const std::set<std::string, std::less<>>& mallocFamily() {
  static const std::set<std::string, std::less<>> kSet = {
      "malloc", "calloc", "realloc", "aligned_alloc", "strdup",
      "posix_memalign",
  };
  return kSet;
}

const std::set<std::string, std::less<>>& allocatingCalls() {
  static const std::set<std::string, std::less<>> kSet = {
      "make_unique", "make_shared", "to_string",
  };
  return kSet;
}

/// Wire-cursor read methods whose result is a length/count field (R8).
bool isCursorRead(const std::string& name) {
  return name == "u8" || name == "u16" || name == "u32" || name == "u64" ||
         name.rfind("read", 0) == 0 || name.rfind("decode", 0) == 0;
}

bool isAssignOp(const Token& t) {
  if (t.kind != TokenKind::Punct) return false;
  const std::string& s = t.text;
  return s == "=" || s == "+=" || s == "-=" || s == "*=" || s == "/=" ||
         s == "%=" || s == "&=" || s == "|=" || s == "^=" || s == "<<=" ||
         s == ">>=" || s == "++" || s == "--";
}

// ---------------------------------------------------------------------
// Scope walk: function definition ranges + mutable globals
// ---------------------------------------------------------------------

struct RawFunction {
  std::string name;
  std::string qualifier;
  std::size_t declLine = 0;
  std::size_t bodyLine = 0;
  std::size_t bodyBegin = 0;  ///< code index just inside '{'
  std::size_t bodyEnd = 0;    ///< code index of the closing '}'
  TokenList declTokens;       ///< the declaration statement (params etc.)
};

const std::set<std::string, std::less<>>& nonVarStarters() {
  static const std::set<std::string, std::less<>> kSet = {
      "using",   "typedef", "template",  "class",    "struct",
      "union",   "enum",    "namespace", "friend",   "static_assert",
      "concept", "extern",  "asm",       "requires",
  };
  return kSet;
}

/// Finds the function name in a declaration statement: the identifier
/// before the first top-level (paren- and angle-depth zero) `(`.
/// Returns false for operators and anything that doesn't look like a
/// function definition header.
bool extractFunctionName(const TokenList& stmt, std::string& name,
                         std::string& qualifier) {
  int paren = 0;
  int angle = 0;
  std::size_t open = stmt.size();
  for (std::size_t i = 0; i < stmt.size(); ++i) {
    const Token& t = stmt[i];
    if (t.kind != TokenKind::Punct) continue;
    if (t.text == "<") ++angle;
    else if (t.text == "<<") angle += 2;
    else if (t.text == ">" && angle > 0) --angle;
    else if (t.text == ">>" && angle > 0) angle -= 2;
    else if (t.text == "(") {
      if (paren == 0 && angle <= 0 && open == stmt.size() && i > 0 &&
          stmt[i - 1].kind == TokenKind::Identifier &&
          notATypeName().count(stmt[i - 1].text) == 0) {
        open = i;
      }
      ++paren;
    } else if (t.text == ")") {
      --paren;
    }
    if (angle < 0) angle = 0;
  }
  if (open == stmt.size() || open == 0) return false;
  name = stmt[open - 1].text;
  if (open >= 3 && isPunct(stmt[open - 2], "::") &&
      stmt[open - 3].kind == TokenKind::Identifier) {
    qualifier = stmt[open - 3].text;
  }
  return true;
}

struct WalkResult {
  std::vector<RawFunction> functions;
  std::vector<std::string> mutableGlobals;
};

WalkResult walkScopes(const TokenList& code) {
  WalkResult out;
  enum class Scope { Namespace, Type, Function, Init };
  struct Entry {
    Scope kind;
    std::string typeName;
  };
  std::vector<Entry> scopes;
  TokenList stmt;
  std::size_t initDepth = 0;
  int parenDepth = 0;
  bool stmtHadBraceInit = false;
  int funcBraceDepth = 0;
  RawFunction current;

  const auto atNamespaceScope = [&] {
    return std::all_of(scopes.begin(), scopes.end(), [](const Entry& e) {
      return e.kind == Scope::Namespace;
    });
  };
  const auto innermostType = [&]() -> std::string {
    for (auto it = scopes.rbegin(); it != scopes.rend(); ++it) {
      if (it->kind == Scope::Type) return it->typeName;
    }
    return "";
  };
  const auto inFunctionScope = [&] {
    return std::any_of(scopes.begin(), scopes.end(), [](const Entry& e) {
      return e.kind == Scope::Function;
    });
  };

  const auto analyzeStatement = [&] {
    if (stmt.empty() || !atNamespaceScope()) return;
    if (nonVarStarters().count(stmt.front().text) > 0) return;
    bool sawConst = false, sawParenBeforeEq = false, sawEq = false;
    bool sawOperator = false;
    std::size_t eqIndex = stmt.size();
    int depth = 0;
    for (std::size_t i = 0; i < stmt.size(); ++i) {
      const Token& t = stmt[i];
      if (t.kind == TokenKind::Identifier) {
        if (t.text == "const" || t.text == "constexpr" ||
            t.text == "constinit" || t.text == "consteval")
          sawConst = true;
        if (t.text == "operator") sawOperator = true;
      }
      if (t.kind != TokenKind::Punct) continue;
      if (t.text == "(" || t.text == "[") {
        if (t.text == "(" && depth == 0 && !sawEq) sawParenBeforeEq = true;
        ++depth;
      } else if (t.text == ")" || t.text == "]") {
        --depth;
      } else if (t.text == "=" && depth == 0 && !sawEq) {
        sawEq = true;
        eqIndex = i;
      }
    }
    if (sawConst || sawOperator || sawParenBeforeEq) return;
    const bool definition =
        sawEq || stmtHadBraceInit ||
        (stmt.size() >= 2 && stmt.back().kind == TokenKind::Identifier);
    if (!definition) return;
    std::string name;
    if (sawEq && eqIndex > 0 &&
        stmt[eqIndex - 1].kind == TokenKind::Identifier) {
      name = stmt[eqIndex - 1].text;
    } else {
      for (auto it = stmt.rbegin(); it != stmt.rend(); ++it) {
        if (it->kind == TokenKind::Identifier) {
          name = it->text;
          break;
        }
      }
    }
    if (!name.empty() && notATypeName().count(name) == 0)
      out.mutableGlobals.push_back(name);
  };

  for (std::size_t i = 0; i < code.size(); ++i) {
    const Token& t = code[i];
    if (funcBraceDepth > 0) {
      if (isPunct(t, "{")) {
        ++funcBraceDepth;
      } else if (isPunct(t, "}")) {
        if (--funcBraceDepth == 0) {
          current.bodyEnd = i;
          out.functions.push_back(current);
        }
      }
      continue;
    }
    if (initDepth == 0) {
      if (isPunct(t, "(")) ++parenDepth;
      if (isPunct(t, ")") && parenDepth > 0) --parenDepth;
      if (parenDepth > 0) {
        stmt.push_back(t);
        continue;
      }
    }
    if (isPunct(t, "{")) {
      if (initDepth > 0) {
        ++initDepth;
        continue;
      }
      bool sawEq = false, sawParen = false, sawType = false, sawNs = false;
      std::string typeName;
      for (std::size_t p = 0; p < stmt.size(); ++p) {
        const Token& s = stmt[p];
        if (isIdent(s, "namespace")) sawNs = true;
        if (isIdent(s, "class") || isIdent(s, "struct") ||
            isIdent(s, "union") || isIdent(s, "enum")) {
          sawType = true;
          if (p + 1 < stmt.size() &&
              stmt[p + 1].kind == TokenKind::Identifier &&
              typeName.empty())
            typeName = stmt[p + 1].text;
        }
        if (isPunct(s, "=")) sawEq = true;
        if (isPunct(s, "(")) sawParen = true;
        if (isIdent(s, "extern")) sawNs = true;
      }
      Scope s = Scope::Function;
      if (sawNs) {
        s = Scope::Namespace;
      } else if (atNamespaceScope() && !sawParen && !sawType &&
                 (sawEq || (!stmt.empty() &&
                            stmt.back().kind == TokenKind::Identifier))) {
        s = Scope::Init;
        stmtHadBraceInit = true;
      } else if (sawType && !sawParen) {
        s = Scope::Type;
      }
      if (s == Scope::Init) {
        initDepth = 1;
        scopes.push_back({s, ""});
        continue;
      }
      if (s == Scope::Function && !inFunctionScope()) {
        std::string name, qualifier;
        if (extractFunctionName(stmt, name, qualifier)) {
          current = RawFunction{};
          current.name = name;
          current.qualifier =
              qualifier.empty() ? innermostType() : qualifier;
          current.declLine = stmt.front().line;
          current.bodyLine = t.line;
          current.bodyBegin = i + 1;
          current.declTokens = stmt;
          funcBraceDepth = 1;
          stmt.clear();
          stmtHadBraceInit = false;
          continue;
        }
      }
      scopes.push_back({s, typeName});
      stmt.clear();
      continue;
    }
    if (isPunct(t, "}")) {
      if (initDepth > 0) {
        --initDepth;
        if (initDepth > 0) continue;
      }
      if (!scopes.empty()) {
        const Scope closed = scopes.back().kind;
        scopes.pop_back();
        if (closed == Scope::Init) continue;
      }
      stmt.clear();
      stmtHadBraceInit = false;
      continue;
    }
    if (initDepth > 0) continue;
    if (isPunct(t, ";")) {
      analyzeStatement();
      stmt.clear();
      stmtHadBraceInit = false;
      continue;
    }
    stmt.push_back(t);
  }
  return out;
}

// ---------------------------------------------------------------------
// Per-function fact extraction
// ---------------------------------------------------------------------

struct DeclaredVar {
  std::string type;      ///< last component of the declared type
  std::size_t declIdx;   ///< absolute code index (0 for parameters)
  bool byValue = false;  ///< no & or * between type and name
};

/// Collects `Type [*&const]* name` declaration patterns from a token
/// span. `base` offsets recorded indices (0 marks parameters, i.e.
/// "declared before every loop").
void collectDecls(const TokenList& span, std::size_t begin, std::size_t end,
                  std::size_t base,
                  std::map<std::string, DeclaredVar>& vars) {
  for (std::size_t i = begin; i + 1 < end; ++i) {
    const Token& a = span[i];
    if (a.kind != TokenKind::Identifier ||
        notATypeName().count(a.text) > 0)
      continue;
    std::size_t j = i + 1;
    if (j < end && isPunct(span[j], "<")) {
      j = skipAngles(span, j);
      if (j >= end) continue;
    }
    bool byValue = true;
    while (j < end && (isPunct(span[j], "&") || isPunct(span[j], "&&") ||
                       isPunct(span[j], "*") || isIdent(span[j], "const"))) {
      if (span[j].kind == TokenKind::Punct) byValue = false;
      ++j;
    }
    if (j + 1 > end || j >= end) continue;
    const Token& v = span[j];
    if (v.kind != TokenKind::Identifier ||
        notATypeName().count(v.text) > 0)
      continue;
    if (j + 1 >= end) continue;
    const Token& after = span[j + 1];
    if (!(isPunct(after, "=") || isPunct(after, ";") ||
          isPunct(after, ",") || isPunct(after, ")") ||
          isPunct(after, "{") || isPunct(after, "(")))
      continue;
    // First declaration wins (shadowing is out of scope).
    if (vars.count(v.text) == 0)
      vars[v.text] = {a.text, base == 0 ? 0 : base + i, byValue};
  }
}

/// Matches the closing paren for code[open] == "(".
std::size_t matchParen(const TokenList& code, std::size_t open,
                       std::size_t end) {
  int depth = 0;
  for (std::size_t j = open; j < end; ++j) {
    if (isPunct(code[j], "(")) ++depth;
    if (isPunct(code[j], ")") && --depth == 0) return j;
  }
  return end;
}

struct LoopRange {
  std::size_t begin = 0;  ///< index of the loop keyword
  std::size_t end = 0;    ///< one past the loop body
  std::size_t headerBegin = 0, headerEnd = 0;  ///< the (...) condition
};

std::vector<LoopRange> findLoops(const TokenList& code, std::size_t begin,
                                 std::size_t end) {
  std::vector<LoopRange> loops;
  for (std::size_t i = begin; i + 1 < end; ++i) {
    if (!(isIdent(code[i], "for") || isIdent(code[i], "while")) ||
        !isPunct(code[i + 1], "("))
      continue;
    const std::size_t close = matchParen(code, i + 1, end);
    if (close >= end) continue;
    std::size_t bodyEnd = close + 1;
    if (bodyEnd < end && isPunct(code[bodyEnd], "{")) {
      int depth = 0;
      for (std::size_t j = bodyEnd; j < end; ++j) {
        if (isPunct(code[j], "{")) ++depth;
        if (isPunct(code[j], "}") && --depth == 0) {
          bodyEnd = j + 1;
          break;
        }
      }
    } else {
      while (bodyEnd < end && !isPunct(code[bodyEnd], ";")) ++bodyEnd;
    }
    loops.push_back({i, bodyEnd, i + 1, close});
  }
  return loops;
}

/// Ranges of if-conditions (and min/clamp call arguments): occurrences
/// of a decoded length inside one count as a bounds check for R8.
std::vector<std::pair<std::size_t, std::size_t>> findGuardRanges(
    const TokenList& code, std::size_t begin, std::size_t end) {
  std::vector<std::pair<std::size_t, std::size_t>> ranges;
  for (std::size_t i = begin; i + 1 < end; ++i) {
    const bool ifCond = isIdent(code[i], "if") && isPunct(code[i + 1], "(");
    const bool clampCall =
        (isIdent(code[i], "min") || isIdent(code[i], "max") ||
         isIdent(code[i], "clamp")) &&
        isPunct(code[i + 1], "(");
    if (!ifCond && !clampCall) continue;
    const std::size_t close = matchParen(code, i + 1, end);
    if (close < end) ranges.push_back({i + 1, close});
  }
  return ranges;
}

bool inAnyRange(
    const std::vector<std::pair<std::size_t, std::size_t>>& ranges,
    std::size_t idx) {
  for (const auto& [b, e] : ranges) {
    if (idx > b && idx < e) return true;
  }
  return false;
}

/// Innermost call whose argument list contains code[k]; empty when the
/// occurrence is not a call argument.
std::string enclosingCallName(const TokenList& code, std::size_t begin,
                              std::size_t k) {
  int depth = 0;
  for (std::size_t j = k; j-- > begin;) {
    const Token& t = code[j];
    if (isPunct(t, ")")) {
      ++depth;
      continue;
    }
    if (isPunct(t, "(")) {
      if (depth > 0) {
        --depth;
        continue;
      }
      if (j > begin && code[j - 1].kind == TokenKind::Identifier) {
        if (notACall().count(code[j - 1].text) > 0) return "";
        return code[j - 1].text;
      }
      continue;  // grouping paren; keep scanning outward
    }
    if (isPunct(t, ";") || isPunct(t, "{") || isPunct(t, "}")) return "";
  }
  return "";
}

void extractFunctionFacts(const TokenList& code, const RawFunction& rf,
                          const Directives& dirs, const std::string& relPath,
                          bool liveFile, FunctionInfo& fn,
                          std::vector<Finding>& localFindings) {
  const std::size_t begin = rf.bodyBegin;
  const std::size_t end = rf.bodyEnd;

  std::map<std::string, DeclaredVar> vars;
  collectDecls(rf.declTokens, 0, rf.declTokens.size(), 0, vars);
  collectDecls(code, begin, end, 1, vars);

  // Receivers that see a .reserve() anywhere in this function.
  std::set<std::string> reservedRecvs;
  for (std::size_t i = begin; i + 2 < end; ++i) {
    if (code[i].kind == TokenKind::Identifier &&
        (isPunct(code[i + 1], ".") || isPunct(code[i + 1], "->")) &&
        isIdent(code[i + 2], "reserve")) {
      reservedRecvs.insert(code[i].text);
    }
  }

  // Allocations inside a `throw` statement are error-path construction
  // (formatting the exception message on the way out), never part of the
  // steady-state hot loop; R5 ignores them.
  const auto inThrow = [&](std::size_t i) {
    std::size_t first = begin;
    for (std::size_t j = i; j > begin; --j) {
      const Token& p = code[j - 1];
      if (isPunct(p, ";") || isPunct(p, "{") || isPunct(p, "}")) {
        first = j;
        break;
      }
    }
    // Hop over brace-less guards: `if (cond) throw ...`, `else throw ...`.
    while (first < i) {
      if (isIdent(code[first], "else")) {
        ++first;
        continue;
      }
      if (isIdent(code[first], "if") && first + 1 < i &&
          isPunct(code[first + 1], "(")) {
        first = matchParen(code, first + 1, i) + 1;
        continue;
      }
      break;
    }
    return first < i && isIdent(code[first], "throw");
  };

  for (std::size_t i = begin; i < end; ++i) {
    const Token& t = code[i];
    if (t.kind != TokenKind::Identifier) continue;
    const bool inSetup = lineInSetup(dirs, t.line);
    const Token* prev = i > begin ? &code[i - 1] : nullptr;
    const Token* next = i + 1 < end ? &code[i + 1] : nullptr;

    // Allocation expressions (R5 sites).
    if (t.text == "new" && (prev == nullptr || !isIdent(*prev, "operator")) &&
        !inThrow(i)) {
      fn.allocs.push_back({t.line, inSetup, "operator new"});
      continue;
    }
    if (next != nullptr && isPunct(*next, "(") &&
        mallocFamily().count(t.text) > 0 &&
        (prev == nullptr ||
         (!isPunct(*prev, ".") && !isPunct(*prev, "->")))) {
      fn.allocs.push_back({t.line, inSetup, t.text + "()"});
    }
    if (next != nullptr && (isPunct(*next, "(") || isPunct(*next, "<")) &&
        allocatingCalls().count(t.text) > 0 && !inThrow(i)) {
      fn.allocs.push_back({t.line, inSetup, t.text + "()"});
    }
    if ((t.text == "push_back" || t.text == "emplace_back") &&
        prev != nullptr && (isPunct(*prev, ".") || isPunct(*prev, "->")) &&
        next != nullptr && isPunct(*next, "(")) {
      const std::string recv =
          i >= begin + 2 && code[i - 2].kind == TokenKind::Identifier
              ? code[i - 2].text
              : "";
      if (recv.empty() || reservedRecvs.count(recv) == 0) {
        fn.allocs.push_back(
            {t.line, inSetup,
             t.text + (recv.empty() ? "" : " on '" + recv + "'") +
                 " without a reserve() in the same function"});
      }
    }

    // Non-const static locals (R7 sites).
    if (t.text == "static") {
      bool exempt = false;
      for (std::size_t j = i + 1; j < std::min(i + 16, end); ++j) {
        if (isPunct(code[j], ";") || isPunct(code[j], "=") ||
            isPunct(code[j], "{"))
          break;
        if (isIdent(code[j], "const") || isIdent(code[j], "constexpr") ||
            isIdent(code[j], "constinit") ||
            isIdent(code[j], "thread_local")) {
          exempt = true;
          break;
        }
      }
      if (!exempt) fn.staticLocalLines.push_back(t.line);
      continue;
    }

    // Call sites.
    if (next != nullptr && isPunct(*next, "(") &&
        notACall().count(t.text) == 0 && t.text != "new" &&
        t.text != "delete") {
      CallSite c;
      c.name = t.text;
      c.line = t.line;
      c.inSetup = inSetup;
      if (prev != nullptr && (isPunct(*prev, ".") || isPunct(*prev, "->"))) {
        c.member = true;
        if (i >= begin + 2) {
          const Token& recv = code[i - 2];
          if (isIdent(recv, "this")) {
            c.recvType = rf.qualifier;
          } else if (recv.kind == TokenKind::Identifier) {
            const auto it = vars.find(recv.text);
            if (it != vars.end()) c.recvType = it->second.type;
          }
        }
      } else if (prev != nullptr && isPunct(*prev, "::") &&
                 i >= begin + 2 &&
                 code[i - 2].kind == TokenKind::Identifier) {
        c.qualifier = code[i - 2].text;
      }
      fn.calls.push_back(c);
    }

    // Writes to bare identifiers (R7 matches against globals later).
    if (next != nullptr && isAssignOp(*next) && !isPunct(*next, "++") &&
        !isPunct(*next, "--")) {
      if (prev != nullptr && (isPunct(*prev, ".") || isPunct(*prev, "->"))) {
        if (i >= begin + 2 && code[i - 2].kind == TokenKind::Identifier)
          fn.writes.push_back({code[i - 2].text, t.line});
      } else if (prev == nullptr || !isPunct(*prev, "::")) {
        fn.writes.push_back({t.text, t.line});
      }
    } else if ((next != nullptr &&
                (isPunct(*next, "++") || isPunct(*next, "--"))) ||
               (prev != nullptr &&
                (isPunct(*prev, "++") || isPunct(*prev, "--")))) {
      if (prev == nullptr ||
          (!isPunct(*prev, ".") && !isPunct(*prev, "->") &&
           !isPunct(*prev, "::"))) {
        fn.writes.push_back({t.text, t.line});
      }
    }
  }

  // Local allocating-container declarations (R5 sites): by-value locals
  // of std container/stream types declared in the body.
  for (const auto& [name, var] : vars) {
    if (var.declIdx == 0 || !var.byValue) continue;
    if (allocatingTypes().count(var.type) == 0) continue;
    const std::size_t idx = var.declIdx - 1;
    if (idx < begin || idx >= end) continue;
    fn.allocs.push_back({code[idx].line, lineInSetup(dirs, code[idx].line),
                         "local std::" + var.type + " '" + name +
                             "' constructed in the body"});
  }

  // ---- R6: RNG stream discipline (per-function) --------------------
  std::map<std::string, std::size_t> rngDecls;
  for (const auto& [name, var] : vars) {
    if (var.type == "Rng") rngDecls[name] = var.declIdx;
  }
  for (std::size_t i = begin; i + 4 < end; ++i) {
    // `auto sub = master.fork()` — typed via the fork result.
    if (code[i].kind == TokenKind::Identifier && isPunct(code[i + 1], "=") &&
        code[i + 2].kind == TokenKind::Identifier &&
        (isPunct(code[i + 3], ".") || isPunct(code[i + 3], "->")) &&
        (isIdent(code[i + 4], "fork") || isIdent(code[i + 4], "split"))) {
      if (rngDecls.count(code[i].text) == 0) rngDecls[code[i].text] = i;
    }
  }
  if (!rngDecls.empty()) {
    const std::vector<LoopRange> loops = findLoops(code, begin, end);
    for (const auto& [rng, declIdx] : rngDecls) {
      struct Event {
        std::size_t idx;
        bool fork;
        std::string callee;
        std::size_t line;
      };
      std::vector<Event> events;
      for (std::size_t i = begin; i < end; ++i) {
        if (!isIdent(code[i], rng)) continue;
        const Token* prev = i > begin ? &code[i - 1] : nullptr;
        const Token* next = i + 1 < end ? &code[i + 1] : nullptr;
        if (prev != nullptr && (isPunct(*prev, ".") || isPunct(*prev, "->") ||
                                isPunct(*prev, "::")))
          continue;  // member of another object
        if (next != nullptr && (isPunct(*next, ".") || isPunct(*next, "->"))) {
          // Method call on the rng itself: a draw, or a fork.
          if (i + 2 < end && (isIdent(code[i + 2], "fork") ||
                              isIdent(code[i + 2], "split"))) {
            events.push_back({i, true, "", code[i].line});
          }
          continue;
        }
        const std::string callee = enclosingCallName(code, begin, i);
        if (callee.empty() || callee == rng) continue;
        events.push_back({i, false, callee, code[i].line});
      }
      std::sort(events.begin(), events.end(),
                [](const Event& a, const Event& b) { return a.idx < b.idx; });

      // (a) two different callees with no fork in between.
      std::set<std::string> calleesSinceFork;
      for (const Event& e : events) {
        if (e.fork) {
          calleesSinceFork.clear();
          continue;
        }
        if (!calleesSinceFork.empty() &&
            calleesSinceFork.count(e.callee) == 0) {
          localFindings.push_back(
              {relPath, e.line, "R6",
               "util::Rng '" + rng + "' is passed to '" + e.callee +
                   "' after already feeding another callee with no "
                   "intervening fork(); sibling consumers must draw from "
                   "forked streams so draw order stays reproducible"});
        }
        calleesSinceFork.insert(e.callee);
      }

      // (b) passed into loop iterations without a per-iteration fork.
      std::set<std::size_t> flaggedLoops;
      for (const Event& e : events) {
        if (e.fork) continue;
        const LoopRange* inner = nullptr;
        for (const LoopRange& l : loops) {
          if (e.idx > l.begin && e.idx < l.end &&
              (declIdx < l.begin || declIdx >= l.end)) {
            if (inner == nullptr || l.begin > inner->begin) inner = &l;
          }
        }
        if (inner == nullptr || flaggedLoops.count(inner->begin) > 0)
          continue;
        bool forkInLoop = false;
        for (const Event& f : events) {
          if (f.fork && f.idx > inner->begin && f.idx < inner->end) {
            forkInLoop = true;
            break;
          }
        }
        if (forkInLoop) continue;
        flaggedLoops.insert(inner->begin);
        localFindings.push_back(
            {relPath, e.line, "R6",
             "util::Rng '" + rng + "' is passed to '" + e.callee +
                 "' inside a loop with no per-iteration fork(); iteration "
                 "count changes would shift every later draw — fork a "
                 "stream per iteration (util::Rng sub = " + rng +
                 ".fork())"});
      }
    }
  }

  // ---- R8: wire-decode bounds (src/live/ only) ---------------------
  if (liveFile) {
    struct LenVar {
      std::string name;
      std::size_t assignIdx;
    };
    std::vector<LenVar> lenVars;
    for (std::size_t i = begin; i + 1 < end; ++i) {
      if (code[i].kind != TokenKind::Identifier || !isPunct(code[i + 1], "="))
        continue;
      // Scan the initializer (to the `;`) for a cursor read `.m(`.
      for (std::size_t j = i + 2; j + 2 < end && !isPunct(code[j], ";");
           ++j) {
        if ((isPunct(code[j], ".") || isPunct(code[j], "->")) &&
            code[j + 1].kind == TokenKind::Identifier &&
            isCursorRead(code[j + 1].text) && isPunct(code[j + 2], "(")) {
          lenVars.push_back({code[i].text, i});
          break;
        }
      }
    }
    if (!lenVars.empty()) {
      const auto guardRanges = findGuardRanges(code, begin, end);
      const std::vector<LoopRange> loops = findLoops(code, begin, end);
      for (const LenVar& lv : lenVars) {
        bool guarded = false;
        for (std::size_t i = lv.assignIdx + 1; i < end; ++i) {
          if (!isIdent(code[i], lv.name)) continue;
          const Token* prev = i > begin ? &code[i - 1] : nullptr;
          if (prev != nullptr &&
              (isPunct(*prev, ".") || isPunct(*prev, "->") ||
               isPunct(*prev, "::")))
            continue;
          if (inAnyRange(guardRanges, i)) {
            guarded = true;
            continue;
          }
          if (guarded) continue;
          // Qualifying use: reserve/resize argument, index, loop bound.
          std::string kind;
          const std::string call = enclosingCallName(code, begin, i);
          if (call == "reserve" || call == "resize") kind = "a " + call +
                                                           "() size";
          if (kind.empty()) {
            int depth = 0;
            for (std::size_t j = i; j-- > begin;) {
              if (isPunct(code[j], "]")) ++depth;
              else if (isPunct(code[j], "[")) {
                if (depth == 0) {
                  kind = "an index";
                  break;
                }
                --depth;
              } else if (isPunct(code[j], ";") || isPunct(code[j], "{") ||
                         isPunct(code[j], "}")) {
                break;
              }
            }
          }
          if (kind.empty()) {
            for (const LoopRange& l : loops) {
              if (i > l.headerBegin && i < l.headerEnd) {
                kind = "a loop bound";
                break;
              }
            }
          }
          if (kind.empty()) continue;
          localFindings.push_back(
              {relPath, code[i].line, "R8",
               "decoded length '" + lv.name + "' is used as " + kind +
                   " with no preceding bounds check; compare it against a "
                   "cap or remaining() in an if before trusting it"});
          break;  // one finding per variable
        }
      }
    }
  }
}

// ---------------------------------------------------------------------
// Cache serialization
// ---------------------------------------------------------------------

constexpr const char* kCacheMagic = "dgcheck-cache 3";

std::string orDash(const std::string& s) { return s.empty() ? "-" : s; }
std::string fromDash(const std::string& s) { return s == "-" ? "" : s; }

void writeCache(std::ostream& out, const std::vector<FileSummary>& files) {
  out << kCacheMagic << "\n";
  for (const FileSummary& f : files) {
    char hex[32];
    std::snprintf(hex, sizeof hex, "%016llx",
                  static_cast<unsigned long long>(f.contentHash));
    out << "file " << hex << " " << f.path << "\n";
    for (const std::string& g : f.mutableGlobals) out << "g " << g << "\n";
    for (const FunctionInfo& fn : f.functions) {
      out << "fn " << fn.declLine << " " << fn.bodyLine << " "
          << (fn.hot ? 1 : 0) << (fn.worker ? 1 : 0) << (fn.cold ? 1 : 0)
          << " " << orDash(fn.qualifier) << " " << fn.name << "\n";
      for (const CallSite& c : fn.calls) {
        out << "c " << c.line << " " << (c.inSetup ? 1 : 0) << " "
            << (c.member ? 1 : 0) << " " << orDash(c.qualifier) << " "
            << orDash(c.recvType) << " " << c.name << "\n";
      }
      for (const AllocSite& a : fn.allocs)
        out << "a " << a.line << " " << (a.inSetup ? 1 : 0) << " " << a.what
            << "\n";
      for (const std::size_t l : fn.staticLocalLines) out << "sl " << l
                                                          << "\n";
      for (const WriteSite& w : fn.writes)
        out << "w " << w.line << " " << w.name << "\n";
    }
    for (const Finding& lf : f.localFindings)
      out << "lf " << lf.rule << " " << lf.line << " " << lf.message << "\n";
    for (const Suppression& s : f.suppressions)
      out << "sup " << s.rule << " " << s.targetLine << " " << s.commentLine
          << " " << s.reason << "\n";
    for (const auto& [line, text] : f.lineText)
      out << "lt " << line << " " << text << "\n";
    out << "end\n";
  }
}

std::string restOfLine(std::istringstream& iss) {
  std::string rest;
  std::getline(iss, rest);
  return trim(rest);
}

std::map<std::string, FileSummary> readCache(std::istream& in) {
  std::map<std::string, FileSummary> out;
  std::string line;
  if (!std::getline(in, line) || trim(line) != kCacheMagic) return out;
  FileSummary cur;
  bool open = false;
  while (std::getline(in, line)) {
    std::istringstream iss(line);
    std::string tag;
    if (!(iss >> tag)) continue;
    if (tag == "file") {
      std::string hex;
      iss >> hex;
      cur = FileSummary{};
      cur.contentHash = std::stoull(hex, nullptr, 16);
      cur.path = restOfLine(iss);
      open = true;
    } else if (!open) {
      continue;
    } else if (tag == "g") {
      std::string g;
      iss >> g;
      cur.mutableGlobals.push_back(g);
    } else if (tag == "fn") {
      FunctionInfo fn;
      std::string flags, qual;
      iss >> fn.declLine >> fn.bodyLine >> flags >> qual >> fn.name;
      fn.hot = flags.size() > 0 && flags[0] == '1';
      fn.worker = flags.size() > 1 && flags[1] == '1';
      fn.cold = flags.size() > 2 && flags[2] == '1';
      fn.qualifier = fromDash(qual);
      cur.functions.push_back(std::move(fn));
    } else if (tag == "c" && !cur.functions.empty()) {
      CallSite c;
      int setup = 0, member = 0;
      std::string qual, recv;
      iss >> c.line >> setup >> member >> qual >> recv >> c.name;
      c.inSetup = setup != 0;
      c.member = member != 0;
      c.qualifier = fromDash(qual);
      c.recvType = fromDash(recv);
      cur.functions.back().calls.push_back(std::move(c));
    } else if (tag == "a" && !cur.functions.empty()) {
      AllocSite a;
      int setup = 0;
      iss >> a.line >> setup;
      a.inSetup = setup != 0;
      a.what = restOfLine(iss);
      cur.functions.back().allocs.push_back(std::move(a));
    } else if (tag == "sl" && !cur.functions.empty()) {
      std::size_t l = 0;
      iss >> l;
      cur.functions.back().staticLocalLines.push_back(l);
    } else if (tag == "w" && !cur.functions.empty()) {
      WriteSite w;
      iss >> w.line >> w.name;
      cur.functions.back().writes.push_back(std::move(w));
    } else if (tag == "lf") {
      Finding f;
      iss >> f.rule >> f.line;
      f.path = cur.path;
      f.message = restOfLine(iss);
      cur.localFindings.push_back(std::move(f));
    } else if (tag == "sup") {
      Suppression s;
      iss >> s.rule >> s.targetLine >> s.commentLine;
      s.reason = restOfLine(iss);
      cur.suppressions.push_back(std::move(s));
    } else if (tag == "lt") {
      std::size_t l = 0;
      iss >> l;
      cur.lineText[l] = restOfLine(iss);
    } else if (tag == "end") {
      out[cur.path] = std::move(cur);
      cur = FileSummary{};
      open = false;
    }
  }
  return out;
}

// ---------------------------------------------------------------------
// Link phase
// ---------------------------------------------------------------------

struct FnRef {
  std::size_t file = 0;
  std::size_t fn = 0;
  bool operator<(const FnRef& o) const {
    return file != o.file ? file < o.file : fn < o.fn;
  }
};

void sortFindings(std::vector<Finding>& findings) {
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.path != b.path) return a.path < b.path;
              if (a.line != b.line) return a.line < b.line;
              if (a.rule != b.rule) return a.rule < b.rule;
              return a.message < b.message;
            });
  findings.erase(std::unique(findings.begin(), findings.end()),
                 findings.end());
}

}  // namespace

FileSummary summarizeSource(const std::string& relPath,
                            const std::string& source) {
  FileSummary out;
  out.path = relPath;
  out.contentHash = fnv1a(source);

  const std::vector<Token> tokens = tokenize(source);
  const std::vector<std::string> lines = splitLines(source);
  const TokenList code = codeTokens(tokens);
  const Directives dirs = parseDirectives(relPath, tokens, lines);
  out.suppressions = dirs.suppressions;
  for (const Finding& f : dirs.malformed) out.localFindings.push_back(f);

  const WalkResult walked = walkScopes(code);
  out.mutableGlobals = walked.mutableGlobals;

  const bool liveFile = relPath.rfind("src/live/", 0) == 0;
  std::set<std::size_t> boundHot, boundWorker, boundCold;
  for (const RawFunction& rf : walked.functions) {
    FunctionInfo fn;
    fn.name = rf.name;
    fn.qualifier = rf.qualifier;
    fn.declLine = rf.declLine;
    fn.bodyLine = rf.bodyLine;
    for (const std::size_t l : dirs.hotLines) {
      if (l >= rf.declLine && l <= rf.bodyLine) {
        fn.hot = true;
        boundHot.insert(l);
      }
    }
    for (const std::size_t l : dirs.workerLines) {
      if (l >= rf.declLine && l <= rf.bodyLine) {
        fn.worker = true;
        boundWorker.insert(l);
      }
    }
    for (const std::size_t l : dirs.coldLines) {
      if (l >= rf.declLine && l <= rf.bodyLine) {
        fn.cold = true;
        boundCold.insert(l);
      }
    }
    extractFunctionFacts(code, rf, dirs, relPath, liveFile, fn,
                         out.localFindings);
    out.functions.push_back(std::move(fn));
  }

  const auto reportUnbound = [&](const std::vector<std::size_t>& targets,
                                 const std::set<std::size_t>& bound,
                                 const char* which) {
    for (const std::size_t l : targets) {
      if (bound.count(l) > 0) continue;
      out.localFindings.push_back(
          {relPath, l, "R0",
           std::string("`dgcheck: ") + which +
               "` does not attach to a function definition here; place it "
               "on (or directly above) the definition's first line"});
    }
  };
  reportUnbound(dirs.hotLines, boundHot, "hot");
  reportUnbound(dirs.workerLines, boundWorker, "worker");
  reportUnbound(dirs.coldLines, boundCold, "cold");

  // Line text for every potential finding site (baseline keys on warm
  // runs must not re-read the file).
  const auto keep = [&](std::size_t line) {
    if (line >= 1 && line - 1 < lines.size())
      out.lineText[line] = trim(lines[line - 1]);
    else
      out.lineText[line] = "";
  };
  for (const FunctionInfo& fn : out.functions) {
    for (const AllocSite& a : fn.allocs) keep(a.line);
    for (const std::size_t l : fn.staticLocalLines) keep(l);
    for (const WriteSite& w : fn.writes) keep(w.line);
  }
  for (const Finding& f : out.localFindings) keep(f.line);
  return out;
}

std::vector<Finding> linkAndCheck(const std::vector<FileSummary>& files) {
  std::vector<Finding> out;

  std::map<std::string, std::vector<FnRef>> byName;
  std::set<std::string> knownQualifiers;
  std::set<std::string> globals;
  for (std::size_t fi = 0; fi < files.size(); ++fi) {
    for (std::size_t gi = 0; gi < files[fi].mutableGlobals.size(); ++gi)
      globals.insert(files[fi].mutableGlobals[gi]);
    for (std::size_t ni = 0; ni < files[fi].functions.size(); ++ni) {
      byName[files[fi].functions[ni].name].push_back({fi, ni});
      if (!files[fi].functions[ni].qualifier.empty())
        knownQualifiers.insert(files[fi].functions[ni].qualifier);
    }
  }
  const auto fnOf = [&](const FnRef& r) -> const FunctionInfo& {
    return files[r.file].functions[r.fn];
  };

  const auto resolve = [&](const CallSite& c) -> std::vector<FnRef> {
    const auto it = byName.find(c.name);
    if (it == byName.end()) return {};
    const std::vector<FnRef>& candidates = it->second;
    if (!c.qualifier.empty()) {
      if (c.qualifier == "std") return {};
      std::vector<FnRef> filtered;
      for (const FnRef& r : candidates) {
        if (fnOf(r).qualifier == c.qualifier) filtered.push_back(r);
      }
      if (!filtered.empty()) return filtered;
      return candidates;  // namespace-qualified free function
    }
    if (c.member) {
      if (!c.recvType.empty()) {
        if (externalRecvTypes().count(c.recvType) > 0) return {};
        std::vector<FnRef> filtered;
        for (const FnRef& r : candidates) {
          if (fnOf(r).qualifier == c.recvType) filtered.push_back(r);
        }
        if (!filtered.empty()) return filtered;
      }
      // Unknown receiver (or no exact match → virtual dispatch through a
      // base/interface type): fall back to every candidate, except for
      // container-idiom names where that would link .begin()/.size() on
      // some vector to an unrelated repo method.
      if (genericMemberNames().count(c.name) > 0) return {};
      return candidates;
    }
    return candidates;
  };

  const auto traverse = [&](bool worker, std::set<FnRef>& visited,
                            std::map<FnRef, FnRef>& parent) {
    std::vector<FnRef> queue;
    for (std::size_t fi = 0; fi < files.size(); ++fi) {
      for (std::size_t ni = 0; ni < files[fi].functions.size(); ++ni) {
        const FunctionInfo& fn = files[fi].functions[ni];
        if ((worker && fn.worker) || (!worker && fn.hot)) {
          const FnRef r{fi, ni};
          visited.insert(r);
          queue.push_back(r);
        }
      }
    }
    for (std::size_t qi = 0; qi < queue.size(); ++qi) {
      const FnRef cur = queue[qi];
      for (const CallSite& c : fnOf(cur).calls) {
        if (c.inSetup) continue;
        for (const FnRef& tgt : resolve(c)) {
          if (fnOf(tgt).cold) continue;
          if (visited.insert(tgt).second) {
            parent[tgt] = cur;
            queue.push_back(tgt);
          }
        }
      }
    }
  };

  const auto pathTo = [&](const FnRef& r,
                          const std::map<FnRef, FnRef>& parent) {
    std::vector<std::string> chain;
    FnRef cur = r;
    for (int hop = 0; hop < 8; ++hop) {
      const FunctionInfo& fn = fnOf(cur);
      chain.push_back(fn.qualifier.empty() ? fn.name
                                           : fn.qualifier + "::" + fn.name);
      const auto it = parent.find(cur);
      if (it == parent.end()) break;
      cur = it->second;
    }
    std::reverse(chain.begin(), chain.end());
    std::string out2;
    for (std::size_t i = 0; i < chain.size(); ++i) {
      if (i > 0) out2 += " -> ";
      out2 += chain[i];
    }
    return out2;
  };

  // R5: allocations reachable from hot roots.
  {
    std::set<FnRef> visited;
    std::map<FnRef, FnRef> parent;
    traverse(false, visited, parent);
    for (const FnRef& r : visited) {
      const FunctionInfo& fn = fnOf(r);
      for (const AllocSite& a : fn.allocs) {
        if (a.inSetup) continue;
        out.push_back({files[r.file].path, a.line, "R5",
                       "allocation on a dgcheck:hot path: " + a.what +
                           " (reached via " + pathTo(r, parent) +
                           "); hoist it into a setup region / workspace, "
                           "mark the callee `// dgcheck: cold: <why>`, or "
                           "suppress with a reason"});
      }
    }
  }

  // R7: shared mutable state reachable from worker roots.
  {
    std::set<FnRef> visited;
    std::map<FnRef, FnRef> parent;
    traverse(true, visited, parent);
    for (const FnRef& r : visited) {
      const FunctionInfo& fn = fnOf(r);
      for (const std::size_t line : fn.staticLocalLines) {
        out.push_back({files[r.file].path, line, "R7",
                       "non-const function-local static in worker-reachable "
                       "code (reached via " + pathTo(r, parent) +
                           "); it is shared across (flow, scheme, chunk) "
                           "tasks — use a Workspace/per-task parameter"});
      }
      for (const WriteSite& w : fn.writes) {
        if (globals.count(w.name) == 0) continue;
        out.push_back({files[r.file].path, w.line, "R7",
                       "write to file-scope mutable global '" + w.name +
                           "' in worker-reachable code (reached via " +
                           pathTo(r, parent) +
                           "); workers may only mutate Workspace/per-task "
                           "state"});
      }
    }
  }

  sortFindings(out);
  return out;
}

namespace {

SemanticResult filterAndFinish(std::vector<FileSummary>& files,
                               const std::set<std::string>& rules) {
  SemanticResult result;
  std::vector<Finding> all = linkAndCheck(files);
  for (const FileSummary& f : files) {
    for (const Finding& lf : f.localFindings) all.push_back(lf);
  }
  sortFindings(all);

  std::map<std::string, FileSummary*> byPath;
  for (FileSummary& f : files) byPath[f.path] = &f;

  for (Finding& f : all) {
    if (!rules.empty() && rules.count(f.rule) == 0) continue;
    bool suppressed = false;
    const auto it = byPath.find(f.path);
    if (it != byPath.end()) {
      for (Suppression& s : it->second->suppressions) {
        if (s.targetLine == f.line && s.rule == f.rule) {
          s.used = true;
          suppressed = true;
          break;
        }
      }
    }
    if (suppressed) {
      ++result.suppressed;
    } else {
      result.findings.push_back(std::move(f));
    }
  }
  return result;
}

}  // namespace

SemanticResult analyzeSemanticSources(
    const std::vector<std::pair<std::string, std::string>>& sources,
    const std::set<std::string>& rules) {
  std::vector<FileSummary> files;
  files.reserve(sources.size());
  for (const auto& [relPath, source] : sources)
    files.push_back(summarizeSource(relPath, source));
  SemanticResult result = filterAndFinish(files, rules);
  result.filesScanned = files.size();
  return result;
}

SemanticResult runSemantic(const SemanticOptions& options) {
  namespace fs = std::filesystem;
  const std::vector<std::string> list =
      collectSourceFiles(options.root, options.paths);

  std::map<std::string, FileSummary> cached;
  if (!options.cachePath.empty()) {
    std::ifstream in(options.cachePath, std::ios::binary);
    if (in) cached = readCache(in);
  }

  std::vector<FileSummary> files;
  files.reserve(list.size());
  std::size_t reused = 0;
  for (const std::string& relPath : list) {
    std::ifstream in(fs::path(options.root) / relPath, std::ios::binary);
    if (!in) {
      std::cerr << "dgcheck: cannot read " << relPath << "\n";
      continue;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::string source = buffer.str();
    const std::uint64_t hash = fnv1a(source);
    const auto it = cached.find(relPath);
    if (it != cached.end() && it->second.contentHash == hash) {
      files.push_back(it->second);
      ++reused;
    } else {
      files.push_back(summarizeSource(relPath, source));
    }
  }

  if (!options.cachePath.empty()) {
    std::ofstream out(options.cachePath, std::ios::binary | std::ios::trunc);
    if (out) writeCache(out, files);
  }

  SemanticResult result = filterAndFinish(files, options.rules);
  result.filesScanned = files.size();
  result.filesReused = reused;

  // Baseline: key -> unconsumed count (same machinery as dglint).
  std::map<std::uint64_t, std::size_t> baseline;
  if (!options.baselinePath.empty()) {
    std::ifstream in(fs::path(options.root) / options.baselinePath);
    std::string line;
    while (std::getline(in, line)) {
      line = trim(line);
      if (line.empty() || line[0] == '#') continue;
      std::istringstream fields(line);
      std::string rule, path, hex;
      if (fields >> rule >> path >> hex)
        ++baseline[std::stoull(hex, nullptr, 16)];
    }
  }
  std::map<std::string, const FileSummary*> byPath;
  for (const FileSummary& f : files) byPath[f.path] = &f;
  std::ostringstream baselineOut;
  std::vector<Finding> remaining;
  for (Finding& f : result.findings) {
    std::string lineText;
    const auto it = byPath.find(f.path);
    if (it != byPath.end()) {
      const auto lt = it->second->lineText.find(f.line);
      if (lt != it->second->lineText.end()) lineText = lt->second;
    }
    const std::uint64_t key = baselineKey(f, lineText);
    const auto b = baseline.find(key);
    if (b != baseline.end() && b->second > 0) {
      --b->second;
      ++result.baselined;
      continue;
    }
    if (!options.writeBaselinePath.empty()) {
      char hex[32];
      std::snprintf(hex, sizeof hex, "%016llx",
                    static_cast<unsigned long long>(key));
      baselineOut << f.rule << ' ' << f.path << ' ' << hex << '\n';
    }
    remaining.push_back(std::move(f));
  }
  result.findings = std::move(remaining);
  for (const auto& [key, count] : baseline) result.staleBaseline += count;
  if (!options.writeBaselinePath.empty()) {
    std::ofstream out(fs::path(options.root) / options.writeBaselinePath,
                      std::ios::binary | std::ios::trunc);
    out << baselineOut.str();
  }
  return result;
}

int dgcheckMain(int argc, const char* const* argv) {
  SemanticOptions options;
  options.paths.clear();
  std::string format = "text";

  const auto value = [](const std::string& arg) {
    return arg.substr(arg.find('=') + 1);
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--root=", 0) == 0) {
      options.root = value(arg);
    } else if (arg.rfind("--format=", 0) == 0) {
      format = value(arg);
      if (format != "text" && format != "json" && format != "github" &&
          format != "sarif") {
        std::cerr << "dgcheck: unknown --format '" << format << "'\n";
        return 2;
      }
    } else if (arg.rfind("--baseline=", 0) == 0) {
      options.baselinePath = value(arg);
    } else if (arg.rfind("--write-baseline=", 0) == 0) {
      options.writeBaselinePath = value(arg);
    } else if (arg.rfind("--cache=", 0) == 0) {
      options.cachePath = value(arg);
    } else if (arg.rfind("--rules=", 0) == 0) {
      std::istringstream ss(value(arg));
      std::string rule;
      while (std::getline(ss, rule, ',')) options.rules.insert(trim(rule));
    } else if (arg == "--help" || arg == "-h") {
      std::cerr
          << "usage: dgcheck [--root=DIR] [--format=text|json|github|sarif]\n"
          << "               [--baseline=FILE] [--write-baseline=FILE]\n"
          << "               [--rules=R5,R6,...] [--cache=FILE] [paths...]\n"
          << "Cross-file semantic pass (R5 hot-path allocation, R6 RNG\n"
          << "stream discipline, R7 worker-shared state, R8 wire-decode\n"
          << "bounds). --cache enables incremental per-file summaries.\n"
          << "Exit code is 1 when any unsuppressed, unbaselined finding\n"
          << "remains.\n";
      return 0;
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "dgcheck: unknown option " << arg << " (see --help)\n";
      return 2;
    } else {
      options.paths.push_back(arg);
    }
  }
  if (options.paths.empty()) options.paths = {"src", "tools"};

  // dglint: ok(R1): tool-side elapsed-time reporting on stderr; never
  // feeds simulation results or any deterministic surface.
  const auto t0 = std::chrono::steady_clock::now();
  const SemanticResult result = runSemantic(options);
  // dglint: ok(R1): see above — stderr timing only.
  const auto t1 = std::chrono::steady_clock::now();
  const auto ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(t1 - t0).count();

  LintResult lintView;
  lintView.findings = result.findings;
  lintView.suppressed = result.suppressed;
  lintView.baselined = result.baselined;
  lintView.staleBaseline = result.staleBaseline;
  lintView.filesScanned = result.filesScanned;
  std::cout << formatFindings(lintView, format, "dgcheck");

  std::cerr << "dgcheck: " << result.filesScanned << " files ("
            << result.filesReused << " reused, "
            << (result.filesScanned - result.filesReused) << " analyzed), "
            << result.findings.size() << " findings, " << result.suppressed
            << " suppressed, " << result.baselined << " baselined, " << ms
            << " ms";
  if (result.staleBaseline > 0)
    std::cerr << " (" << result.staleBaseline
              << " stale baseline entries -- refresh the baseline)";
  std::cerr << "\n";
  return result.findings.empty() ? 0 : 1;
}

}  // namespace dg::lint
