#include "directives.hpp"

#include <algorithm>

namespace dg::lint {
namespace {

std::string trimCopy(const std::string& s) {
  std::size_t b = s.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) return "";
  std::size_t e = s.find_last_not_of(" \t\r\n");
  return s.substr(b, e - b + 1);
}

std::size_t tokenEndLine(const Token& t) {
  return t.endLine >= t.line ? t.endLine : t.line;
}

/// Splits `verb: reason`; returns false when there is no colon.
bool splitReason(const std::string& directive, std::size_t from,
                 std::string& reason) {
  const std::size_t colon = directive.find(':', from);
  if (colon == std::string::npos) return false;
  reason = trimCopy(directive.substr(colon + 1));
  return true;
}

}  // namespace

bool lineInSetup(const Directives& directives, std::size_t line) {
  for (const SetupRange& r : directives.setupRanges) {
    if (line >= r.beginLine && line <= r.endLine) return true;
  }
  return false;
}

Directives parseDirectives(const std::string& relPath,
                           const std::vector<Token>& tokens,
                           const std::vector<std::string>& lines) {
  Directives out;

  // Line occupancy: lines that carry at least one code token. Decides
  // whether a directive comment is "alone on its line" (targets the next
  // line) or trails code (targets its own line). Multi-line tokens (raw
  // strings) occupy every line they span, so text that merely *looks*
  // like a comment inside one cannot flip the decision.
  std::vector<char> occupied(lines.size() + 2, 0);
  // Preprocessor logical lines: map every physical line of a continued
  // directive to the directive's first line (where findings anchor).
  std::vector<std::size_t> preprocStart(lines.size() + 2, 0);
  for (const Token& t : tokens) {
    if (t.kind == TokenKind::Comment) continue;
    const std::size_t end = std::min(tokenEndLine(t), lines.size() + 1);
    for (std::size_t l = t.line; l <= end; ++l) {
      occupied[l] = 1;
      if (t.kind == TokenKind::Preprocessor) preprocStart[l] = t.line;
    }
  }

  const auto targetOf = [&](const Token& t) -> std::size_t {
    if (t.line < preprocStart.size() && preprocStart[t.line] != 0)
      return preprocStart[t.line];
    std::size_t target = t.line;
    // A comment alone on its line targets the next code-occupied line,
    // skipping any further comment-only lines (so a directive may carry
    // a multi-line justification above the line it governs).
    while (target < occupied.size() - 1 && !occupied[target]) ++target;
    if (target < preprocStart.size() && preprocStart[target] != 0)
      return preprocStart[target];
    return target;
  };

  std::vector<std::size_t> setupStack;  // open `setup begin` lines
  for (const Token& t : tokens) {
    if (t.kind != TokenKind::Comment) continue;
    const std::string text = trimCopy(t.text);
    bool isCheck = false;
    std::string directive;
    if (text.rfind("dglint:", 0) == 0) {
      directive = trimCopy(text.substr(7));
    } else if (text.rfind("dgcheck:", 0) == 0) {
      directive = trimCopy(text.substr(8));
      isCheck = true;
    } else {
      continue;
    }
    const char* prefix = isCheck ? "dgcheck" : "dglint";

    std::string rule;
    std::string reason;
    bool haveReason = false;
    if (directive.rfind("ordered-ok", 0) == 0) {
      rule = "R2";
      haveReason = splitReason(directive, 0, reason);
    } else if (directive.rfind("fp-merge-ok", 0) == 0) {
      rule = "R4";
      haveReason = splitReason(directive, 0, reason);
    } else if (directive.rfind("ok(", 0) == 0) {
      const std::size_t close = directive.find(')');
      if (close != std::string::npos) {
        rule = trimCopy(directive.substr(3, close - 3));
        haveReason = splitReason(directive, close, reason);
      }
    } else if (isCheck && directive == "hot") {
      out.hotLines.push_back(targetOf(t));
      continue;
    } else if (isCheck && directive == "worker") {
      out.workerLines.push_back(targetOf(t));
      continue;
    } else if (isCheck && directive.rfind("cold", 0) == 0) {
      if (!splitReason(directive, 0, reason) || reason.empty()) {
        out.malformed.push_back(
            {relPath, t.line, "R0",
             "dgcheck cold annotation is missing its justification; "
             "write `// dgcheck: cold: <why traversal may stop here>`"});
        continue;
      }
      out.coldLines.push_back(targetOf(t));
      continue;
    } else if (isCheck && directive.rfind("setup", 0) == 0) {
      const std::string which = trimCopy(directive.substr(5));
      if (which == "begin") {
        setupStack.push_back(t.line);
      } else if (which == "end") {
        if (setupStack.empty()) {
          out.malformed.push_back(
              {relPath, t.line, "R0",
               "`dgcheck: setup end` without a matching `setup begin`"});
        } else {
          out.setupRanges.push_back({setupStack.back(), t.line});
          setupStack.pop_back();
        }
      } else {
        out.malformed.push_back(
            {relPath, t.line, "R0",
             "unrecognized dgcheck setup directive '" + directive +
                 "'; expected `setup begin` or `setup end`"});
      }
      continue;
    } else {
      out.malformed.push_back(
          {relPath, t.line, "R0",
           std::string("unrecognized ") + prefix + " directive '" +
               directive + "'; expected ok(Rn): <why>, ordered-ok: <why>, "
               "fp-merge-ok: <why>" +
               (isCheck ? ", hot, worker, cold: <why> or setup begin/end"
                        : "")});
      continue;
    }

    const auto& ids = allRuleIds();
    if (rule.empty() || std::find(ids.begin(), ids.end(), rule) == ids.end()) {
      out.malformed.push_back(
          {relPath, t.line, "R0",
           std::string(prefix) + " suppression names unknown rule '" + rule +
               "'"});
      continue;
    }
    if (!haveReason || reason.empty()) {
      out.malformed.push_back(
          {relPath, t.line, "R0",
           std::string(prefix) + " suppression for " + rule +
               " is missing its justification; write `// " + prefix +
               ": ...: <why this is safe>`"});
      continue;
    }
    out.suppressions.push_back({targetOf(t), t.line, rule, reason, false});
  }
  for (const std::size_t openLine : setupStack) {
    out.malformed.push_back(
        {relPath, openLine, "R0",
         "`dgcheck: setup begin` is never closed with `setup end`"});
  }
  std::sort(out.setupRanges.begin(), out.setupRanges.end(),
            [](const SetupRange& a, const SetupRange& b) {
              return a.beginLine < b.beginLine;
            });
  return out;
}

}  // namespace dg::lint
