// dglint rule definitions.
//
// Four project-specific determinism/safety rules, each a heuristic
// token-pattern matcher over the lexer's stream (see DESIGN.md "Static
// analysis & determinism enforcement" for rationale and examples):
//
//   R1  banned nondeterminism sources (std::rand, srand, random_device,
//       raw <chrono> clocks, time()/clock()/gettimeofday, getenv) in
//       library code; the seeded util::Rng and the allowlisted
//       wall-clock shim are the only sanctioned sources.
//   R2  iteration over unordered containers in files that feed exports,
//       reports, telemetry merges or decision memos (hash order is not
//       part of the contract, so it must never reach a deterministic
//       surface) unless annotated `// dglint: ordered-ok: <why>`.
//   R3  header hygiene: include guard / #pragma once, no
//       `using namespace` in headers, no non-const namespace-scope
//       globals in library code.
//   R4  floating-point accumulation (`+=` on a double/float) inside a
//       loop over an unordered container in merge-path files: addition
//       is not associative, so hash order changes the sum.
//
// Rules are heuristics, not a compiler: they are tuned to have zero
// false positives on this codebase and to catch the regression classes
// named above. Escapes exist (`// dglint: ok(Rn): why`) and every
// escape requires a justification.
#pragma once

#include <string>
#include <vector>

#include "lexer.hpp"

namespace dg::lint {

struct Finding {
  std::string path;   ///< repo-relative, forward slashes
  std::size_t line;   ///< 1-based
  std::string rule;   ///< "R1".."R4" ("R0" = malformed suppression)
  std::string message;

  bool operator==(const Finding&) const = default;
};

/// Per-file inputs to the rule pass.
struct FileContext {
  std::string path;           ///< repo-relative, forward slashes
  std::vector<Token> tokens;  ///< from tokenize()
  bool isHeader = false;      ///< .hpp / .h
  bool libraryCode = false;   ///< under src/ or tools/ (R1, R3 scope)
  bool orderedScope = false;  ///< feeds exports/reports/merges (R2, R4)
  bool clockAllowed = false;  ///< allowlisted wall-clock shim (R1 clocks)
};

/// Runs every rule over one file. Findings are returned in line order;
/// suppression comments are NOT applied here (the driver does that, so
/// it can also report suppressed counts and stale suppressions).
std::vector<Finding> runRules(const FileContext& file);

/// All rule ids understood by `--rules` and `ok(...)` suppressions.
const std::vector<std::string>& allRuleIds();

}  // namespace dg::lint
