// dgcheck — the cross-translation-unit semantic pass.
//
// Stage two of the analyzer. Stage one (dglint, rules.hpp) is purely
// lexical and per-file; dgcheck builds a lightweight symbol table and
// call graph across all of src/ and tools/ — function definitions found
// by the brace-scope classifier, call sites linked to definitions by
// (qualified) name, receiver types inferred from local declarations —
// and evaluates four semantic rule families on top:
//
//   R5  hot-path allocation: functions annotated `// dgcheck: hot` must
//       not transitively reach operator new / malloc / allocating std
//       container construction / push_back-without-reserve, outside
//       `// dgcheck: setup` regions. `// dgcheck: cold: <why>` stops
//       the traversal (e.g. at the memo-amortized decision path).
//   R6  RNG stream discipline: a function holding a util::Rng may not
//       pass it to two different callees, or into loop iterations, with
//       no intervening fork() — the invariant that makes draw order
//       reproducible under chunk-parallel execution.
//   R7  worker-shared mutable state: code reachable from functions
//       annotated `// dgcheck: worker` (the (flow, scheme, chunk) task
//       entry points) may not write file-scope mutable globals or
//       declare non-const function-local statics.
//   R8  wire-decode bounds: in src/live/, a variable assigned from a
//       wire-cursor length/count read must pass through a bounds check
//       (an if-condition or min/clamp) before it is used to reserve,
//       index, or bound a loop.
//
// Like the token rules this is a heuristic analyzer, not a compiler:
// name linking over-approximates virtual dispatch and misses function
// pointers; the documented escape hatch is the same suppression
// machinery (`// dgcheck: ok(Rn): <why>`) plus the FNV line-hash
// baseline. The committed baseline (.dgcheck-baseline) is empty and
// must stay empty.
//
// Warm runs are incremental: per-file summaries are cached keyed by a
// content hash, so an unchanged file is never re-lexed. The link phase
// re-runs every time (it is cross-file and cheap).
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "directives.hpp"
#include "rules.hpp"

namespace dg::lint {

/// One call expression `name(...)`, `obj.name(...)` or `Q::name(...)`.
struct CallSite {
  std::string name;
  std::string qualifier;  ///< "Q" for Q::name(...), else ""
  std::string recvType;   ///< declared type of obj for member calls, else ""
  bool member = false;    ///< obj.name(...) / obj->name(...)
  std::size_t line = 0;
  bool inSetup = false;
};

/// One allocation expression (R5).
struct AllocSite {
  std::size_t line = 0;
  bool inSetup = false;
  std::string what;  ///< human-readable description
};

/// One assignment to a bare identifier (R7 matches these against the
/// repo-wide set of mutable file-scope globals).
struct WriteSite {
  std::string name;
  std::size_t line = 0;
};

struct FunctionInfo {
  std::string name;
  std::string qualifier;  ///< innermost class (or explicit Q:: scope)
  std::size_t declLine = 0;  ///< first line of the declaration statement
  std::size_t bodyLine = 0;  ///< line of the opening '{'
  bool hot = false;
  bool worker = false;
  bool cold = false;
  std::vector<CallSite> calls;
  std::vector<AllocSite> allocs;
  std::vector<std::size_t> staticLocalLines;  ///< non-const local statics
  std::vector<WriteSite> writes;
};

/// Everything dgcheck needs from one file; cacheable by content hash.
struct FileSummary {
  std::string path;
  std::uint64_t contentHash = 0;
  std::vector<FunctionInfo> functions;
  std::vector<std::string> mutableGlobals;  ///< non-const namespace-scope
  std::vector<Finding> localFindings;       ///< R6/R8/R0, per-file rules
  std::vector<Suppression> suppressions;
  /// Trimmed text of every line that can carry a finding (for FNV
  /// baseline keys without re-reading the file on warm runs).
  std::map<std::size_t, std::string> lineText;
};

/// Extracts one file's summary. Pure function of (path, source); the
/// cross-file rules run later in linkAndCheck().
FileSummary summarizeSource(const std::string& relPath,
                            const std::string& source);

/// Cross-file phase: links call sites to definitions, runs the hot /
/// worker reachability traversals and emits R5/R7 findings. Per-file
/// findings (R6/R8/R0) are NOT included; callers append
/// FileSummary::localFindings themselves (analyzeSemanticSources and
/// runSemantic both do).
std::vector<Finding> linkAndCheck(const std::vector<FileSummary>& files);

struct SemanticOptions {
  std::string root = ".";
  std::vector<std::string> paths = {"src", "tools"};
  std::set<std::string> rules;  ///< empty = all of R0, R5..R8
  std::string baselinePath;
  std::string writeBaselinePath;
  std::string cachePath;  ///< "" = no incremental cache
};

struct SemanticResult {
  std::vector<Finding> findings;
  std::size_t suppressed = 0;
  std::size_t baselined = 0;
  std::size_t staleBaseline = 0;
  std::size_t filesScanned = 0;
  std::size_t filesReused = 0;  ///< summaries served from the cache
};

/// In-memory entry point for tests: summarizes every (relPath, source)
/// pair, links, applies suppressions and the rule filter.
SemanticResult analyzeSemanticSources(
    const std::vector<std::pair<std::string, std::string>>& sources,
    const std::set<std::string>& rules = {});

/// Full run over options.paths with cache + baseline handling.
SemanticResult runSemantic(const SemanticOptions& options);

/// Complete dgcheck CLI (argument parsing to exit code).
int dgcheckMain(int argc, const char* const* argv);

}  // namespace dg::lint
