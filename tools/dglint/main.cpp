// dglint — determinism & safety lint for the dissemination-graphs repo.
// See dglint.hpp for the rule set and DESIGN.md for the rationale.
#include "dglint.hpp"

int main(int argc, char** argv) { return dg::lint::lintMain(argc, argv); }
