// Lightweight C++ tokenizer for dglint.
//
// dglint's rules only need a token stream that is faithful about the
// things that trip up grep-style linting -- string literals (including
// raw strings), comments, char literals and preprocessor logical lines
// -- plus enough punctuation fidelity to brace-match and to tell a
// range-for `:` apart from `::`. A full C++ grammar is explicitly out of
// scope; rules are heuristic token-pattern matchers over this stream.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace dg::lint {

enum class TokenKind {
  Identifier,    ///< keywords are identifiers too; rules compare text
  Number,        ///< integer/float literal (incl. hex, digit separators)
  String,        ///< "...", R"(...)", prefixed variants; text excludes quotes
  CharLiteral,   ///< '...'
  Punct,         ///< operator / punctuator, greedily matched (e.g. "+=", "::")
  Comment,       ///< // or /* */; text excludes the comment markers
  Preprocessor,  ///< one logical `#...` line, continuations joined
};

struct Token {
  TokenKind kind;
  std::string text;
  std::size_t line;  ///< 1-based line of the token's first character
  /// 1-based line of the token's last character for multi-line tokens
  /// (raw strings, block comments, continued preprocessor directives).
  /// 0 (the aggregate-init default) means "same as `line`".
  std::size_t endLine = 0;
};

/// Tokenizes `source`. Never throws on malformed input: unterminated
/// strings/comments extend to end of file, unknown bytes become 1-char
/// Punct tokens. `path` is only used for error context in assertions.
std::vector<Token> tokenize(std::string_view source);

/// Splits `source` into physical lines (no terminators), 0-indexed.
std::vector<std::string> splitLines(std::string_view source);

}  // namespace dg::lint
