// dgcheck — cross-file semantic analysis (stage two of the analyzer).
// See semantic.hpp for the rule set and DESIGN.md for the rationale.
#include "semantic.hpp"

int main(int argc, char** argv) { return dg::lint::dgcheckMain(argc, argv); }
