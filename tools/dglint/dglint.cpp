#include "dglint.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>

#include "directives.hpp"

namespace dg::lint {
namespace fs = std::filesystem;
namespace {

std::string trim(const std::string& s) {
  std::size_t b = s.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) return "";
  std::size_t e = s.find_last_not_of(" \t\r\n");
  return s.substr(b, e - b + 1);
}

bool matchesAny(const std::string& path,
                const std::vector<std::string>& patterns) {
  for (const std::string& p : patterns) {
    if (path.find(p) != std::string::npos) return true;
  }
  return false;
}

bool hasSourceExtension(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".hpp" || ext == ".h" || ext == ".cpp" || ext == ".cc" ||
         ext == ".cxx";
}

bool isHeaderPath(const std::string& path) {
  return path.size() >= 2 &&
         (path.ends_with(".hpp") || path.ends_with(".h"));
}

std::uint64_t fnv1a(std::string_view s, std::uint64_t h = 0xcbf29ce484222325ULL) {
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::string jsonEscape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::vector<std::string> DriverOptions::defaultOrderedScope() {
  // Files whose output must be byte-stable: exporters and everything
  // that merges or reports in a defined order. Matched as substrings of
  // the repo-relative path.
  return {
      "src/telemetry/",          "src/playback/experiment",
      "src/playback/report",     "src/playback/classification",
      "src/playback/playback",   "src/playback/memo_cache",
      "src/routing/decision_memo", "src/chaos/invariants",
      "src/chaos/bridge",        "src/store/",
      "src/live/",               "src/topogen/",
      "src/mcast/",
  };
}

std::vector<std::string> DriverOptions::defaultClockAllow() {
  return {"src/util/wall_clock"};
}

SourceResult analyzeSource(const std::string& relPath,
                           const std::string& source,
                           const DriverOptions& options) {
  FileContext context;
  context.path = relPath;
  context.tokens = tokenize(source);
  context.isHeader = isHeaderPath(relPath);
  context.libraryCode = relPath.rfind("src/", 0) == 0 ||
                        relPath.rfind("tools/", 0) == 0;
  context.orderedScope = matchesAny(relPath, options.orderedScope);
  context.clockAllowed = matchesAny(relPath, options.clockAllow);

  std::vector<Finding> raw = runRules(context);
  const std::vector<std::string> lines = splitLines(source);

  Directives directives = parseDirectives(relPath, context.tokens, lines);
  std::vector<Suppression>& suppressions = directives.suppressions;
  std::vector<Finding>& r0 = directives.malformed;

  SourceResult result;
  for (Finding& f : raw) {
    if (!options.rules.empty() && options.rules.count(f.rule) == 0)
      continue;
    bool suppressed = false;
    for (Suppression& s : suppressions) {
      if (s.targetLine == f.line && s.rule == f.rule) {
        s.used = true;
        suppressed = true;
        break;
      }
    }
    if (suppressed) {
      ++result.suppressed;
    } else {
      result.findings.push_back(std::move(f));
    }
  }
  if (options.rules.empty() || options.rules.count("R0") > 0) {
    for (Finding& f : r0) result.findings.push_back(std::move(f));
  }
  std::stable_sort(result.findings.begin(), result.findings.end(),
                   [](const Finding& a, const Finding& b) {
                     return a.line < b.line;
                   });
  return result;
}

std::uint64_t baselineKey(const Finding& finding,
                          const std::string& lineText) {
  std::uint64_t h = fnv1a(finding.rule);
  h = fnv1a("|", h);
  h = fnv1a(finding.path, h);
  h = fnv1a("|", h);
  h = fnv1a(trim(lineText), h);
  return h;
}

std::vector<std::string> collectSourceFiles(
    const std::string& rootPath, const std::vector<std::string>& paths) {
  const fs::path root = rootPath;
  // Deterministic file list: collect, normalize, sort.
  std::vector<std::string> files;
  for (const std::string& p : paths) {
    const fs::path full = root / p;
    std::error_code ec;
    if (fs::is_directory(full, ec)) {
      for (fs::recursive_directory_iterator it(full, ec), end;
           it != end && !ec; it.increment(ec)) {
        const fs::path& entry = it->path();
        const std::string name = entry.filename().string();
        if (it->is_directory() &&
            (name == ".git" || name.rfind("build", 0) == 0)) {
          it.disable_recursion_pending();
          continue;
        }
        if (it->is_regular_file() && hasSourceExtension(entry))
          files.push_back(fs::relative(entry, root).generic_string());
      }
    } else if (fs::exists(full, ec)) {
      files.push_back(fs::relative(full, root).generic_string());
    } else {
      std::cerr << "dglint: path not found: " << full.string() << "\n";
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());
  return files;
}

LintResult runLint(const DriverOptions& options) {
  LintResult result;
  const fs::path root = options.root;
  const std::vector<std::string> files =
      collectSourceFiles(options.root, options.paths);

  // Baseline: key -> unconsumed count.
  std::map<std::uint64_t, std::size_t> baseline;
  if (!options.baselinePath.empty()) {
    std::ifstream in(root / options.baselinePath);
    std::string line;
    while (std::getline(in, line)) {
      line = trim(line);
      if (line.empty() || line[0] == '#') continue;
      std::istringstream fields(line);
      std::string rule, path, hex;
      if (fields >> rule >> path >> hex)
        ++baseline[std::stoull(hex, nullptr, 16)];
    }
  }

  std::ostringstream baselineOut;
  for (const std::string& relPath : files) {
    std::ifstream in(root / relPath, std::ios::binary);
    if (!in) {
      std::cerr << "dglint: cannot read " << relPath << "\n";
      continue;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::string source = buffer.str();
    ++result.filesScanned;

    SourceResult sr = analyzeSource(relPath, source, options);
    result.suppressed += sr.suppressed;
    const std::vector<std::string> lines = splitLines(source);
    for (Finding& f : sr.findings) {
      const std::string lineText =
          f.line - 1 < lines.size() ? lines[f.line - 1] : "";
      const std::uint64_t key = baselineKey(f, lineText);
      const auto it = baseline.find(key);
      if (it != baseline.end() && it->second > 0) {
        --it->second;
        ++result.baselined;
        continue;
      }
      if (!options.writeBaselinePath.empty()) {
        char hex[32];
        std::snprintf(hex, sizeof hex, "%016llx",
                      static_cast<unsigned long long>(key));
        baselineOut << f.rule << ' ' << f.path << ' ' << hex << '\n';
      }
      result.findings.push_back(std::move(f));
    }
  }
  for (const auto& [key, remaining] : baseline)
    result.staleBaseline += remaining;

  if (!options.writeBaselinePath.empty()) {
    std::ofstream out(root / options.writeBaselinePath,
                      std::ios::binary | std::ios::trunc);
    out << baselineOut.str();
  }
  return result;
}

std::string formatFindings(const LintResult& result,
                           const std::string& format,
                           const std::string& toolName) {
  std::ostringstream out;
  if (format == "sarif") {
    // Minimal SARIF 2.1.0 for GitHub code scanning upload.
    out << "{\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\","
        << "\"version\":\"2.1.0\",\"runs\":[{\"tool\":{\"driver\":{"
        << "\"name\":\"" << jsonEscape(toolName) << "\","
        << "\"informationUri\":"
        << "\"https://example.invalid/dgnet/tools/dglint\",\"rules\":[";
    std::vector<std::string> ruleIds;
    for (const Finding& f : result.findings) {
      if (std::find(ruleIds.begin(), ruleIds.end(), f.rule) == ruleIds.end())
        ruleIds.push_back(f.rule);
    }
    std::sort(ruleIds.begin(), ruleIds.end());
    for (std::size_t i = 0; i < ruleIds.size(); ++i) {
      if (i > 0) out << ',';
      out << "{\"id\":\"" << ruleIds[i] << "\"}";
    }
    out << "]}},\"results\":[";
    for (std::size_t i = 0; i < result.findings.size(); ++i) {
      const Finding& f = result.findings[i];
      if (i > 0) out << ',';
      out << "{\"ruleId\":\"" << f.rule << "\",\"level\":\"error\","
          << "\"message\":{\"text\":\"" << jsonEscape(f.message) << "\"},"
          << "\"locations\":[{\"physicalLocation\":{\"artifactLocation\":{"
          << "\"uri\":\"" << jsonEscape(f.path)
          << "\",\"uriBaseId\":\"%SRCROOT%\"},\"region\":{\"startLine\":"
          << f.line << "}}}]}";
    }
    out << "]}]}\n";
    return out.str();
  }
  if (format == "json") {
    out << "{\"findings\":[";
    for (std::size_t i = 0; i < result.findings.size(); ++i) {
      const Finding& f = result.findings[i];
      if (i > 0) out << ',';
      out << "{\"path\":\"" << jsonEscape(f.path) << "\",\"line\":" << f.line
          << ",\"rule\":\"" << f.rule << "\",\"message\":\""
          << jsonEscape(f.message) << "\"}";
    }
    out << "],\"suppressed\":" << result.suppressed
        << ",\"baselined\":" << result.baselined
        << ",\"staleBaseline\":" << result.staleBaseline
        << ",\"filesScanned\":" << result.filesScanned << "}\n";
    return out.str();
  }
  if (format == "github") {
    for (const Finding& f : result.findings) {
      out << "::error file=" << f.path << ",line=" << f.line
          << ",title=dglint " << f.rule << "::" << f.message << "\n";
    }
    return out.str();
  }
  for (const Finding& f : result.findings) {
    out << f.path << ':' << f.line << ": [" << f.rule << "] " << f.message
        << "\n";
  }
  return out.str();
}

std::string reportSuppressions(const DriverOptions& options) {
  struct Entry {
    std::string path;
    Suppression s;
  };
  std::vector<Entry> all;
  const fs::path root = options.root;
  for (const std::string& relPath :
       collectSourceFiles(options.root, options.paths)) {
    std::ifstream in(root / relPath, std::ios::binary);
    if (!in) continue;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::string source = buffer.str();
    const std::vector<Token> tokens = tokenize(source);
    const std::vector<std::string> lines = splitLines(source);
    const Directives d = parseDirectives(relPath, tokens, lines);
    for (const Suppression& s : d.suppressions) all.push_back({relPath, s});
  }

  std::map<std::string, std::size_t> byRule;
  std::map<std::string, std::size_t> byFile;
  for (const Entry& e : all) {
    ++byRule[e.s.rule];
    ++byFile[e.path];
  }

  // Oldest suppression via git blame (committer time of the directive
  // comment's line). Degrades to "n/a" outside a git checkout or when
  // the tree is too large to blame line by line.
  std::string oldest = "n/a";
  if (!all.empty() && all.size() <= 500) {
    long long oldestEpoch = -1;
    std::string oldestWhere;
    for (const Entry& e : all) {
      std::string cmd = "git -C '" + options.root + "' blame -L " +
                        std::to_string(e.s.commentLine) + "," +
                        std::to_string(e.s.commentLine) +
                        " --porcelain -- '" + e.path + "' 2>/dev/null";
      FILE* pipe = popen(cmd.c_str(), "r");
      if (pipe == nullptr) break;
      std::string blame;
      char buf[512];
      while (fgets(buf, sizeof buf, pipe) != nullptr) blame += buf;
      pclose(pipe);
      const std::size_t at = blame.find("committer-time ");
      if (at == std::string::npos) continue;
      const long long epoch = std::atoll(blame.c_str() + at + 15);
      if (epoch > 0 && (oldestEpoch < 0 || epoch < oldestEpoch)) {
        oldestEpoch = epoch;
        oldestWhere = e.path + ":" + std::to_string(e.s.commentLine) + " (" +
                      e.s.rule + ")";
      }
    }
    if (oldestEpoch > 0) {
      char date[32];
      const std::time_t t = static_cast<std::time_t>(oldestEpoch);
      std::tm tmBuf{};
      if (gmtime_r(&t, &tmBuf) != nullptr &&
          std::strftime(date, sizeof date, "%Y-%m-%d", &tmBuf) > 0) {
        oldest = oldestWhere + ", committed " + date;
      } else {
        oldest = oldestWhere;
      }
    }
  }

  std::ostringstream out;
  out << "## Suppression debt report\n\n";
  out << "Total: " << all.size() << " suppression"
      << (all.size() == 1 ? "" : "s") << " across " << byFile.size()
      << " file" << (byFile.size() == 1 ? "" : "s") << "\n\n";
  if (!all.empty()) {
    out << "| Rule | Count |\n|---|---|\n";
    for (const auto& [rule, count] : byRule)
      out << "| " << rule << " | " << count << " |\n";
    out << "\n| File | Count |\n|---|---|\n";
    for (const auto& [file, count] : byFile)
      out << "| " << file << " | " << count << " |\n";
    out << "\nOldest suppression: " << oldest << "\n\n";
    out << "<details><summary>All suppressions</summary>\n\n";
    for (const Entry& e : all) {
      out << "- `" << e.path << ":" << e.s.commentLine << "` " << e.s.rule
          << " — " << e.s.reason << "\n";
    }
    out << "\n</details>\n";
  }
  return out.str();
}

int lintMain(int argc, const char* const* argv) {
  DriverOptions options;
  options.paths.clear();
  std::string format = "text";
  bool suppressionReport = false;

  const auto value = [](const std::string& arg) {
    return arg.substr(arg.find('=') + 1);
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--root=", 0) == 0) {
      options.root = value(arg);
    } else if (arg.rfind("--format=", 0) == 0) {
      format = value(arg);
      if (format != "text" && format != "json" && format != "github" &&
          format != "sarif") {
        std::cerr << "dglint: unknown --format '" << format << "'\n";
        return 2;
      }
    } else if (arg == "--report-suppressions") {
      suppressionReport = true;
    } else if (arg.rfind("--baseline=", 0) == 0) {
      options.baselinePath = value(arg);
    } else if (arg.rfind("--write-baseline=", 0) == 0) {
      options.writeBaselinePath = value(arg);
    } else if (arg.rfind("--rules=", 0) == 0) {
      std::istringstream ss(value(arg));
      std::string rule;
      while (std::getline(ss, rule, ',')) options.rules.insert(trim(rule));
    } else if (arg.rfind("--ordered-scope=", 0) == 0) {
      options.orderedScope.push_back(value(arg));
    } else if (arg.rfind("--clock-allow=", 0) == 0) {
      options.clockAllow.push_back(value(arg));
    } else if (arg == "--help" || arg == "-h") {
      std::cerr
          << "usage: dglint [--root=DIR] [--format=text|json|github|sarif]\n"
          << "              [--baseline=FILE] [--write-baseline=FILE]\n"
          << "              [--rules=R1,R2,...] [--ordered-scope=PAT]\n"
          << "              [--clock-allow=PAT] [--report-suppressions]\n"
          << "              [paths...]\n"
          << "Scans src/ and tools/ under --root by default. Exit code\n"
          << "is 1 when any unsuppressed, unbaselined finding remains.\n"
          << "--report-suppressions prints a markdown debt report of\n"
          << "every suppression (with reasons) instead of linting.\n";
      return 0;
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "dglint: unknown option " << arg << " (see --help)\n";
      return 2;
    } else {
      options.paths.push_back(arg);
    }
  }
  if (options.paths.empty()) options.paths = {"src", "tools"};

  if (suppressionReport) {
    std::cout << reportSuppressions(options);
    return 0;
  }

  const LintResult result = runLint(options);
  std::cout << formatFindings(result, format);
  std::cerr << "dglint: " << result.filesScanned << " files, "
            << result.findings.size() << " findings, " << result.suppressed
            << " suppressed, " << result.baselined << " baselined";
  if (result.staleBaseline > 0)
    std::cerr << " (" << result.staleBaseline
              << " stale baseline entries -- refresh the baseline)";
  std::cerr << "\n";
  return result.findings.empty() ? 0 : 1;
}

}  // namespace dg::lint
