#include "dglint.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>

namespace dg::lint {
namespace fs = std::filesystem;
namespace {

std::string trim(const std::string& s) {
  std::size_t b = s.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) return "";
  std::size_t e = s.find_last_not_of(" \t\r\n");
  return s.substr(b, e - b + 1);
}

bool matchesAny(const std::string& path,
                const std::vector<std::string>& patterns) {
  for (const std::string& p : patterns) {
    if (path.find(p) != std::string::npos) return true;
  }
  return false;
}

bool hasSourceExtension(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".hpp" || ext == ".h" || ext == ".cpp" || ext == ".cc" ||
         ext == ".cxx";
}

bool isHeaderPath(const std::string& path) {
  return path.size() >= 2 &&
         (path.ends_with(".hpp") || path.ends_with(".h"));
}

std::uint64_t fnv1a(std::string_view s, std::uint64_t h = 0xcbf29ce484222325ULL) {
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// One parsed suppression comment.
struct Suppression {
  std::size_t targetLine;
  std::string rule;  ///< "" for malformed (already reported as R0)
  bool used = false;
};

/// Extracts suppressions from comment tokens; malformed ones become R0
/// findings directly.
std::vector<Suppression> parseSuppressions(
    const std::string& relPath, const std::vector<Token>& tokens,
    const std::vector<std::string>& lines, std::vector<Finding>& r0) {
  std::vector<Suppression> out;
  for (const Token& t : tokens) {
    if (t.kind != TokenKind::Comment) continue;
    // Only comments that START with `dglint:` are directives; prose
    // that merely mentions the syntax is ignored.
    const std::string text = trim(t.text);
    if (text.rfind("dglint:", 0) != 0) continue;
    std::string directive = trim(text.substr(7));

    std::string rule;
    std::string reason;
    if (directive.rfind("ordered-ok", 0) == 0) {
      rule = "R2";
      const std::size_t colon = directive.find(':');
      reason = colon == std::string::npos ? ""
                                          : trim(directive.substr(colon + 1));
    } else if (directive.rfind("fp-merge-ok", 0) == 0) {
      rule = "R4";
      const std::size_t colon = directive.find(':');
      reason = colon == std::string::npos ? ""
                                          : trim(directive.substr(colon + 1));
    } else if (directive.rfind("ok(", 0) == 0) {
      const std::size_t close = directive.find(')');
      if (close != std::string::npos) {
        rule = trim(directive.substr(3, close - 3));
        const std::size_t colon = directive.find(':', close);
        reason = colon == std::string::npos
                     ? ""
                     : trim(directive.substr(colon + 1));
      }
    } else {
      r0.push_back({relPath, t.line, "R0",
                    "unrecognized dglint directive '" + directive +
                        "'; expected ok(Rn): <why>, ordered-ok: <why> "
                        "or fp-merge-ok: <why>"});
      continue;
    }
    const auto& ids = allRuleIds();
    if (rule.empty() ||
        std::find(ids.begin(), ids.end(), rule) == ids.end()) {
      r0.push_back({relPath, t.line, "R0",
                    "dglint suppression names unknown rule '" + rule + "'"});
      continue;
    }
    if (reason.empty()) {
      r0.push_back({relPath, t.line, "R0",
                    "dglint suppression for " + rule +
                        " is missing its justification; write `// "
                        "dglint: ...: <why this is safe>`"});
      continue;
    }
    // Comment alone on its line suppresses the NEXT line; a trailing
    // comment suppresses its own line.
    std::size_t target = t.line;
    if (t.line - 1 < lines.size()) {
      const std::string lineText = trim(lines[t.line - 1]);
      if (lineText.rfind("//", 0) == 0) target = t.line + 1;
    }
    out.push_back({target, rule, false});
  }
  return out;
}

std::string jsonEscape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::vector<std::string> DriverOptions::defaultOrderedScope() {
  // Files whose output must be byte-stable: exporters and everything
  // that merges or reports in a defined order. Matched as substrings of
  // the repo-relative path.
  return {
      "src/telemetry/",          "src/playback/experiment",
      "src/playback/report",     "src/playback/classification",
      "src/playback/playback",   "src/playback/memo_cache",
      "src/routing/decision_memo", "src/chaos/invariants",
      "src/chaos/bridge",        "src/store/",
      "src/live/",               "src/topogen/",
  };
}

std::vector<std::string> DriverOptions::defaultClockAllow() {
  return {"src/util/wall_clock"};
}

SourceResult analyzeSource(const std::string& relPath,
                           const std::string& source,
                           const DriverOptions& options) {
  FileContext context;
  context.path = relPath;
  context.tokens = tokenize(source);
  context.isHeader = isHeaderPath(relPath);
  context.libraryCode = relPath.rfind("src/", 0) == 0 ||
                        relPath.rfind("tools/", 0) == 0;
  context.orderedScope = matchesAny(relPath, options.orderedScope);
  context.clockAllowed = matchesAny(relPath, options.clockAllow);

  std::vector<Finding> raw = runRules(context);
  const std::vector<std::string> lines = splitLines(source);

  std::vector<Finding> r0;
  std::vector<Suppression> suppressions =
      parseSuppressions(relPath, context.tokens, lines, r0);

  SourceResult result;
  for (Finding& f : raw) {
    if (!options.rules.empty() && options.rules.count(f.rule) == 0)
      continue;
    bool suppressed = false;
    for (Suppression& s : suppressions) {
      if (s.targetLine == f.line && s.rule == f.rule) {
        s.used = true;
        suppressed = true;
        break;
      }
    }
    if (suppressed) {
      ++result.suppressed;
    } else {
      result.findings.push_back(std::move(f));
    }
  }
  if (options.rules.empty() || options.rules.count("R0") > 0) {
    for (Finding& f : r0) result.findings.push_back(std::move(f));
  }
  std::stable_sort(result.findings.begin(), result.findings.end(),
                   [](const Finding& a, const Finding& b) {
                     return a.line < b.line;
                   });
  return result;
}

std::uint64_t baselineKey(const Finding& finding,
                          const std::string& lineText) {
  std::uint64_t h = fnv1a(finding.rule);
  h = fnv1a("|", h);
  h = fnv1a(finding.path, h);
  h = fnv1a("|", h);
  h = fnv1a(trim(lineText), h);
  return h;
}

LintResult runLint(const DriverOptions& options) {
  LintResult result;
  const fs::path root = options.root;

  // Deterministic file list: collect, normalize, sort.
  std::vector<std::string> files;
  for (const std::string& p : options.paths) {
    const fs::path full = root / p;
    std::error_code ec;
    if (fs::is_directory(full, ec)) {
      for (fs::recursive_directory_iterator it(full, ec), end;
           it != end && !ec; it.increment(ec)) {
        const fs::path& entry = it->path();
        const std::string name = entry.filename().string();
        if (it->is_directory() &&
            (name == ".git" || name.rfind("build", 0) == 0)) {
          it.disable_recursion_pending();
          continue;
        }
        if (it->is_regular_file() && hasSourceExtension(entry))
          files.push_back(fs::relative(entry, root).generic_string());
      }
    } else if (fs::exists(full, ec)) {
      files.push_back(fs::relative(full, root).generic_string());
    } else {
      std::cerr << "dglint: path not found: " << full.string() << "\n";
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  // Baseline: key -> unconsumed count.
  std::map<std::uint64_t, std::size_t> baseline;
  if (!options.baselinePath.empty()) {
    std::ifstream in(root / options.baselinePath);
    std::string line;
    while (std::getline(in, line)) {
      line = trim(line);
      if (line.empty() || line[0] == '#') continue;
      std::istringstream fields(line);
      std::string rule, path, hex;
      if (fields >> rule >> path >> hex)
        ++baseline[std::stoull(hex, nullptr, 16)];
    }
  }

  std::ostringstream baselineOut;
  for (const std::string& relPath : files) {
    std::ifstream in(root / relPath, std::ios::binary);
    if (!in) {
      std::cerr << "dglint: cannot read " << relPath << "\n";
      continue;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::string source = buffer.str();
    ++result.filesScanned;

    SourceResult sr = analyzeSource(relPath, source, options);
    result.suppressed += sr.suppressed;
    const std::vector<std::string> lines = splitLines(source);
    for (Finding& f : sr.findings) {
      const std::string lineText =
          f.line - 1 < lines.size() ? lines[f.line - 1] : "";
      const std::uint64_t key = baselineKey(f, lineText);
      const auto it = baseline.find(key);
      if (it != baseline.end() && it->second > 0) {
        --it->second;
        ++result.baselined;
        continue;
      }
      if (!options.writeBaselinePath.empty()) {
        char hex[32];
        std::snprintf(hex, sizeof hex, "%016llx",
                      static_cast<unsigned long long>(key));
        baselineOut << f.rule << ' ' << f.path << ' ' << hex << '\n';
      }
      result.findings.push_back(std::move(f));
    }
  }
  for (const auto& [key, remaining] : baseline)
    result.staleBaseline += remaining;

  if (!options.writeBaselinePath.empty()) {
    std::ofstream out(root / options.writeBaselinePath,
                      std::ios::binary | std::ios::trunc);
    out << baselineOut.str();
  }
  return result;
}

std::string formatFindings(const LintResult& result,
                           const std::string& format) {
  std::ostringstream out;
  if (format == "json") {
    out << "{\"findings\":[";
    for (std::size_t i = 0; i < result.findings.size(); ++i) {
      const Finding& f = result.findings[i];
      if (i > 0) out << ',';
      out << "{\"path\":\"" << jsonEscape(f.path) << "\",\"line\":" << f.line
          << ",\"rule\":\"" << f.rule << "\",\"message\":\""
          << jsonEscape(f.message) << "\"}";
    }
    out << "],\"suppressed\":" << result.suppressed
        << ",\"baselined\":" << result.baselined
        << ",\"staleBaseline\":" << result.staleBaseline
        << ",\"filesScanned\":" << result.filesScanned << "}\n";
    return out.str();
  }
  if (format == "github") {
    for (const Finding& f : result.findings) {
      out << "::error file=" << f.path << ",line=" << f.line
          << ",title=dglint " << f.rule << "::" << f.message << "\n";
    }
    return out.str();
  }
  for (const Finding& f : result.findings) {
    out << f.path << ':' << f.line << ": [" << f.rule << "] " << f.message
        << "\n";
  }
  return out.str();
}

int lintMain(int argc, const char* const* argv) {
  DriverOptions options;
  options.paths.clear();
  std::string format = "text";

  const auto value = [](const std::string& arg) {
    return arg.substr(arg.find('=') + 1);
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--root=", 0) == 0) {
      options.root = value(arg);
    } else if (arg.rfind("--format=", 0) == 0) {
      format = value(arg);
      if (format != "text" && format != "json" && format != "github") {
        std::cerr << "dglint: unknown --format '" << format << "'\n";
        return 2;
      }
    } else if (arg.rfind("--baseline=", 0) == 0) {
      options.baselinePath = value(arg);
    } else if (arg.rfind("--write-baseline=", 0) == 0) {
      options.writeBaselinePath = value(arg);
    } else if (arg.rfind("--rules=", 0) == 0) {
      std::istringstream ss(value(arg));
      std::string rule;
      while (std::getline(ss, rule, ',')) options.rules.insert(trim(rule));
    } else if (arg.rfind("--ordered-scope=", 0) == 0) {
      options.orderedScope.push_back(value(arg));
    } else if (arg.rfind("--clock-allow=", 0) == 0) {
      options.clockAllow.push_back(value(arg));
    } else if (arg == "--help" || arg == "-h") {
      std::cerr
          << "usage: dglint [--root=DIR] [--format=text|json|github]\n"
          << "              [--baseline=FILE] [--write-baseline=FILE]\n"
          << "              [--rules=R1,R2,...] [--ordered-scope=PAT]\n"
          << "              [--clock-allow=PAT] [paths...]\n"
          << "Scans src/ and tools/ under --root by default. Exit code\n"
          << "is 1 when any unsuppressed, unbaselined finding remains.\n";
      return 0;
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "dglint: unknown option " << arg << " (see --help)\n";
      return 2;
    } else {
      options.paths.push_back(arg);
    }
  }
  if (options.paths.empty()) options.paths = {"src", "tools"};

  const LintResult result = runLint(options);
  std::cout << formatFindings(result, format);
  std::cerr << "dglint: " << result.filesScanned << " files, "
            << result.findings.size() << " findings, " << result.suppressed
            << " suppressed, " << result.baselined << " baselined";
  if (result.staleBaseline > 0)
    std::cerr << " (" << result.staleBaseline
              << " stale baseline entries -- refresh the baseline)";
  std::cerr << "\n";
  return result.findings.empty() ? 0 : 1;
}

}  // namespace dg::lint
