#include "lexer.hpp"

#include <array>
#include <cctype>

namespace dg::lint {
namespace {

bool isIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool isIdentBody(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}
bool isDigit(char c) { return std::isdigit(static_cast<unsigned char>(c)); }

/// Multi-character punctuators dglint cares about, longest first so the
/// greedy match picks "<<=" over "<<" over "<".
constexpr std::array<std::string_view, 36> kPuncts = {
    "<<=", ">>=", "...", "->*", "::", "->", "++", "--", "<<", ">>", "<=",
    ">=",  "==",  "!=",  "&&", "||", "+=", "-=", "*=", "/=", "%=", "&=",
    "|=",  "^=",  "##",  ".*", "{",  "}",  "(",  ")",  "[",  "]",  ";",
    ":",   ",",   ".",
};

class Lexer {
 public:
  explicit Lexer(std::string_view src) : src_(src) {}

  std::vector<Token> run() {
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
        atLineStart_ = true;
        continue;
      }
      if (c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f') {
        ++pos_;
        continue;
      }
      if (c == '#' && atLineStart_) {
        lexPreprocessor();
        continue;
      }
      atLineStart_ = false;
      if (c == '/' && pos_ + 1 < src_.size()) {
        if (src_[pos_ + 1] == '/') {
          lexLineComment();
          continue;
        }
        if (src_[pos_ + 1] == '*') {
          lexBlockComment();
          continue;
        }
      }
      if (isStringPrefixAt(pos_)) {
        lexString();
        continue;
      }
      if (c == '\'') {
        lexCharLiteral();
        continue;
      }
      if (isIdentStart(c)) {
        lexIdentifier();
        continue;
      }
      if (isDigit(c) || (c == '.' && pos_ + 1 < src_.size() &&
                         isDigit(src_[pos_ + 1]))) {
        lexNumber();
        continue;
      }
      lexPunct();
    }
    return std::move(tokens_);
  }

 private:
  void emit(TokenKind kind, std::string text, std::size_t line) {
    tokens_.push_back(Token{kind, std::move(text), line, line_});
  }

  /// True when pos starts a string literal, including encoding/raw
  /// prefixes (u8R"...", L"...", ...).
  bool isStringPrefixAt(std::size_t pos) const {
    std::size_t p = pos;
    if (p < src_.size() && (src_[p] == 'u' || src_[p] == 'U' ||
                            src_[p] == 'L')) {
      if (src_[p] == 'u' && p + 1 < src_.size() && src_[p + 1] == '8') ++p;
      ++p;
    }
    if (p < src_.size() && src_[p] == 'R') ++p;
    if (p >= src_.size() || src_[p] != '"') return false;
    // Don't treat the identifier `u8` / `LR` etc. as a prefix if it is
    // part of a longer identifier (e.g. `FLU"..."` is ident then string).
    if (pos > 0 && isIdentBody(src_[pos - 1]) && src_[pos] != '"')
      return false;
    return true;
  }

  void lexPreprocessor() {
    const std::size_t startLine = line_;
    std::string text;
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '\\' && pos_ + 1 < src_.size() && src_[pos_ + 1] == '\n') {
        text += ' ';
        pos_ += 2;
        ++line_;
        continue;
      }
      if (c == '\n') break;
      // Strip trailing // comments from the directive text. The comment
      // still becomes a Comment token, so suppression directives on any
      // physical line of the directive are honored.
      if (c == '/' && pos_ + 1 < src_.size() && src_[pos_ + 1] == '/') {
        lexLineComment();
        continue;
      }
      // Block comments inside a directive act as whitespace and may
      // span lines (GCC keeps the directive going across them).
      if (c == '/' && pos_ + 1 < src_.size() && src_[pos_ + 1] == '*') {
        lexBlockComment();
        text += ' ';
        continue;
      }
      text += c;
      ++pos_;
    }
    emit(TokenKind::Preprocessor, std::move(text), startLine);
  }

  void lexLineComment() {
    const std::size_t startLine = line_;
    pos_ += 2;  // skip //
    std::string text;
    while (pos_ < src_.size() && src_[pos_] != '\n') {
      // Phase-2 line splicing: a backslash-newline continues the
      // comment onto the next physical line.
      if (src_[pos_] == '\\' && pos_ + 1 < src_.size() &&
          src_[pos_ + 1] == '\n') {
        text += ' ';
        pos_ += 2;
        ++line_;
        continue;
      }
      text += src_[pos_++];
    }
    emit(TokenKind::Comment, std::move(text), startLine);
  }

  void lexBlockComment() {
    const std::size_t startLine = line_;
    pos_ += 2;  // skip /*
    std::string text;
    while (pos_ < src_.size()) {
      if (src_[pos_] == '*' && pos_ + 1 < src_.size() &&
          src_[pos_ + 1] == '/') {
        pos_ += 2;
        break;
      }
      if (src_[pos_] == '\n') ++line_;
      text += src_[pos_++];
    }
    emit(TokenKind::Comment, std::move(text), startLine);
  }

  void lexString() {
    const std::size_t startLine = line_;
    bool raw = false;
    while (pos_ < src_.size() && src_[pos_] != '"') {
      if (src_[pos_] == 'R') raw = true;
      ++pos_;
    }
    ++pos_;  // opening quote
    std::string text;
    if (raw) {
      // R"delim( ... )delim"
      std::string delim;
      while (pos_ < src_.size() && src_[pos_] != '(') delim += src_[pos_++];
      ++pos_;  // (
      const std::string closer = ")" + delim + "\"";
      while (pos_ < src_.size() &&
             src_.compare(pos_, closer.size(), closer) != 0) {
        if (src_[pos_] == '\n') ++line_;
        text += src_[pos_++];
      }
      pos_ += closer.size();
    } else {
      while (pos_ < src_.size() && src_[pos_] != '"') {
        if (src_[pos_] == '\\' && pos_ + 1 < src_.size()) {
          text += src_[pos_];
          text += src_[pos_ + 1];
          pos_ += 2;
          continue;
        }
        if (src_[pos_] == '\n') {  // unterminated; stop at the line end
          break;
        }
        text += src_[pos_++];
      }
      if (pos_ < src_.size() && src_[pos_] == '"') ++pos_;
    }
    emit(TokenKind::String, std::move(text), startLine);
  }

  void lexCharLiteral() {
    const std::size_t startLine = line_;
    ++pos_;  // opening '
    std::string text;
    while (pos_ < src_.size() && src_[pos_] != '\'') {
      if (src_[pos_] == '\\' && pos_ + 1 < src_.size()) {
        text += src_[pos_];
        text += src_[pos_ + 1];
        pos_ += 2;
        continue;
      }
      if (src_[pos_] == '\n') break;  // unterminated (likely a digit sep)
      text += src_[pos_++];
    }
    if (pos_ < src_.size() && src_[pos_] == '\'') ++pos_;
    emit(TokenKind::CharLiteral, std::move(text), startLine);
  }

  void lexIdentifier() {
    // A string prefix directly attached to a quote was handled earlier;
    // here the identifier is a plain name.
    const std::size_t startLine = line_;
    std::string text;
    while (pos_ < src_.size() && isIdentBody(src_[pos_]))
      text += src_[pos_++];
    // `u8"..."`-style: identifier chars immediately followed by a quote
    // form a string literal prefix.
    if (pos_ < src_.size() && src_[pos_] == '"' &&
        (text == "u8" || text == "u" || text == "U" || text == "L" ||
         text == "R" || text == "u8R" || text == "uR" || text == "UR" ||
         text == "LR")) {
      lexString();
      return;
    }
    emit(TokenKind::Identifier, std::move(text), startLine);
  }

  void lexNumber() {
    const std::size_t startLine = line_;
    std::string text;
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (isIdentBody(c) || c == '\'' || c == '.') {
        text += c;
        ++pos_;
        continue;
      }
      // Exponent sign: 1e-5, 0x1p+3
      if ((c == '+' || c == '-') && !text.empty()) {
        const char prev = text.back();
        if (prev == 'e' || prev == 'E' || prev == 'p' || prev == 'P') {
          text += c;
          ++pos_;
          continue;
        }
      }
      break;
    }
    emit(TokenKind::Number, std::move(text), startLine);
  }

  void lexPunct() {
    for (const std::string_view p : kPuncts) {
      if (src_.compare(pos_, p.size(), p) == 0) {
        emit(TokenKind::Punct, std::string(p), line_);
        pos_ += p.size();
        return;
      }
    }
    emit(TokenKind::Punct, std::string(1, src_[pos_]), line_);
    ++pos_;
  }

  std::string_view src_;
  std::size_t pos_ = 0;
  std::size_t line_ = 1;
  bool atLineStart_ = true;
  std::vector<Token> tokens_;
};

}  // namespace

std::vector<Token> tokenize(std::string_view source) {
  return Lexer(source).run();
}

std::vector<std::string> splitLines(std::string_view source) {
  std::vector<std::string> lines;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= source.size(); ++i) {
    if (i == source.size() || source[i] == '\n') {
      std::string line(source.substr(start, i - start));
      if (!line.empty() && line.back() == '\r') line.pop_back();
      lines.push_back(std::move(line));
      start = i + 1;
    }
  }
  return lines;
}

}  // namespace dg::lint
