// Umbrella header: the library's public API in one include.
//
//   #include "dg/dg.hpp"
//
// Brings in the overlay transport service, routing schemes, topology and
// trace machinery, the playback evaluation engine and the analysis
// helpers. Individual headers remain includable for finer-grained
// dependencies.
#pragma once

// Substrate.
#include "util/config.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"
#include "util/sim_time.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"

// Graphs and dissemination graphs.
#include "graph/analysis.hpp"
#include "graph/disjoint_paths.hpp"
#include "graph/dissemination_graph.hpp"
#include "graph/graph.hpp"
#include "graph/k_shortest.hpp"
#include "graph/shortest_path.hpp"

// Topologies and condition traces.
#include "trace/importer.hpp"
#include "trace/synth.hpp"
#include "trace/topology.hpp"
#include "trace/trace.hpp"

// Routing.
#include "routing/network_view.hpp"
#include "routing/problem_detector.hpp"
#include "routing/scheme.hpp"
#include "routing/targeted_graphs.hpp"

// The live overlay transport service.
#include "core/transport.hpp"

// Evaluation.
#include "playback/ablation.hpp"
#include "playback/classification.hpp"
#include "playback/experiment.hpp"
#include "playback/graph_optimizer.hpp"
#include "playback/playback.hpp"
#include "playback/report.hpp"
