// Bridge between the chaos harness and the playback engine: compiles a
// ChaosSchedule into a trace::Trace and runs the same scenario through
// both halves of the system for differential comparison.
//
// Equivalence argument: the live injector composes each active fault
// into a per-edge condition override with combineConditions, and the
// network composes that override with the underlying trace conditions
// the same way. compileToTrace() folds the same faults into the same
// baseline with Trace::applyImpairment -- also combineConditions, which
// is associative and commutative -- so for interval-aligned schedules
// the conditions every transmission sees are IDENTICAL in the two
// setups, and a live run over (healthy trace + injector) is bit-equal
// to a live run over (compiled trace, no injector). The differential
// then compares the live stack against the playback *model* of the
// compiled trace, where remaining differences are real modeling gaps
// (sampling noise, recovery-protocol asymmetries), not wiring bugs.
#pragma once

#include <cmath>
#include <string>
#include <vector>

#include "chaos/invariants.hpp"
#include "chaos/schedule.hpp"
#include "playback/playback.hpp"
#include "routing/scheme.hpp"
#include "trace/topology.hpp"
#include "trace/trace.hpp"

namespace dg::chaos {

/// Compiles a schedule into a playback trace over the topology: a
/// healthy baseline (residualLoss on every edge) with every fault's
/// impairment folded into the intervals it is active in. Faults aligned
/// to the interval grid compile exactly; an unaligned fault covers an
/// interval iff it is active for the majority of it (quantization --
/// the differential tolerance does not cover unaligned schedules).
trace::Trace compileToTrace(const ChaosSchedule& schedule,
                            const trace::Topology& topology,
                            double residualLoss = 1e-4);

/// The documented live-vs-model bound for a flow whose predicted
/// unavailability is `predicted` and which sent `sent` packets: a small
/// systematic allowance (0.02, the cross-validation suite's precedent)
/// plus four binomial standard errors of the live estimate around the
/// predicted rate. 1.0 (always passes) when nothing was sent. Shared by
/// the simulator differential and the live fleet soak.
double differentialTolerance(double predicted, std::uint64_t sent);

/// One flow of a differential scenario.
struct DifferentialFlowSpec {
  std::string source;
  std::string destination;
  routing::SchemeKind scheme = routing::SchemeKind::DynamicSinglePath;
  util::SimTime packetInterval = util::milliseconds(10);
};

struct DifferentialParams {
  routing::SchemeParams schemeParams;
  /// Seed of the live network's per-edge loss streams.
  std::uint64_t networkSeed = 42;
  /// Per-hop recovery on both sides. The live protocol's NACK path is
  /// weaker than the playback model's per-hop recovery term (requests
  /// cross the same lossy link, and each gap is requested once), so the
  /// tight tolerance below is only honest with recovery off, or with
  /// hardFaultsOnly schedules where recovery cannot change outcomes.
  bool recoveryEnabled = false;
  /// Monte-Carlo samples per lossy interval on the playback side.
  int mcSamples = 4000;
  std::uint64_t playbackSeed = 7;
  /// Extra simulated time after the horizon for in-flight packets to
  /// land (flows stop sending at the horizon).
  util::SimTime drain = util::seconds(1);
  InvariantCheckerConfig invariants;
};

struct DifferentialFlowResult {
  DifferentialFlowSpec spec;
  /// Live stack: fraction of sent packets not delivered on time.
  double liveUnavailability = 0.0;
  /// Playback model prediction for the compiled trace.
  double predictedUnavailability = 0.0;
  /// Live transmissions per packet vs the model's structural cost.
  double liveCost = 0.0;
  double predictedCost = 0.0;
  std::uint64_t sent = 0;
  std::uint64_t deliveredOnTime = 0;
  std::uint64_t deliveredLate = 0;

  double unavailabilityDelta() const {
    return liveUnavailability - predictedUnavailability;
  }
  /// The documented differential bound: a small systematic term plus a
  /// binomial confidence band around the predicted rate at `n` sent
  /// packets (see DESIGN.md, "Chaos harness and invariants").
  double tolerance() const;
  bool withinTolerance() const {
    return std::abs(unavailabilityDelta()) <= tolerance();
  }
};

struct DifferentialResult {
  std::vector<DifferentialFlowResult> flows;
  std::vector<InvariantViolation> violations;
  std::uint64_t invariantChecksRun = 0;
  bool allWithinTolerance() const {
    for (const DifferentialFlowResult& flow : flows) {
      if (!flow.withinTolerance()) return false;
    }
    return true;
  }
  bool passed() const { return violations.empty() && allWithinTolerance(); }
};

/// Runs one schedule through the live stack (healthy trace + injector +
/// invariant checker) and the playback model (compiled trace) and
/// compares per-flow delivery. Deterministic: identical inputs give an
/// identical result, bit for bit. `telemetry` (nullable) is attached
/// across the live service, the injector and the invariant checker.
DifferentialResult runDifferential(const trace::Topology& topology,
                                   const ChaosSchedule& schedule,
                                   const std::vector<DifferentialFlowSpec>& flows,
                                   const DifferentialParams& params = {},
                                   telemetry::Telemetry* telemetry = nullptr);

}  // namespace dg::chaos
