#include "chaos/bridge.hpp"

#include <algorithm>

#include "chaos/injector.hpp"
#include "core/transport.hpp"

namespace dg::chaos {

namespace {

/// Time the fault is actively impairing inside [a, b) (flap-aware).
util::SimTime activeTimeIn(const ChaosFault& fault, util::SimTime a,
                           util::SimTime b) {
  const util::SimTime lo = std::max(a, fault.start);
  const util::SimTime hi = std::min(b, fault.end());
  if (lo >= hi) return 0;
  if (fault.kind != ChaosFault::Kind::LinkFlap) return hi - lo;
  const util::SimTime period = fault.flapOn + fault.flapOff;
  util::SimTime active = 0;
  // Walk the on-phases overlapping [lo, hi). Phases repeat from
  // fault.start; the count is tiny, so the linear walk is fine.
  const util::SimTime firstPeriod = (lo - fault.start) / period;
  for (util::SimTime k = firstPeriod;; ++k) {
    const util::SimTime onStart = fault.start + k * period;
    if (onStart >= hi) break;
    const util::SimTime onEnd =
        std::min(onStart + fault.flapOn, fault.end());
    active += std::max<util::SimTime>(
        0, std::min(onEnd, hi) - std::max(onStart, lo));
  }
  return active;
}

trace::Trace compileInto(const ChaosSchedule& schedule,
                         const trace::Topology& topology,
                         std::size_t intervalCount, double residualLoss) {
  const graph::Graph& overlay = topology.graph();
  schedule.validateAgainst(overlay);
  const util::SimTime interval = schedule.intervalLength();
  trace::Trace trace(interval, intervalCount,
                     trace::healthyBaseline(overlay, residualLoss));
  const std::size_t faultIntervals =
      std::min(intervalCount, schedule.intervalCount());
  for (const ChaosFault& fault : schedule.faults()) {
    if (!fault.impairsConditions()) continue;
    const std::vector<graph::EdgeId> edges = affectedEdges(fault, overlay);
    const trace::LinkConditions impairment = impairmentOf(fault);
    for (std::size_t i = 0; i < faultIntervals; ++i) {
      const util::SimTime a = static_cast<util::SimTime>(i) * interval;
      // Majority quantization: exact for interval-aligned schedules.
      if (2 * activeTimeIn(fault, a, a + interval) < interval) continue;
      for (const graph::EdgeId edge : edges) {
        trace.applyImpairment(edge, i, impairment);
      }
    }
  }
  return trace;
}

}  // namespace

trace::Trace compileToTrace(const ChaosSchedule& schedule,
                            const trace::Topology& topology,
                            double residualLoss) {
  return compileInto(schedule, topology, schedule.intervalCount(),
                     residualLoss);
}

double differentialTolerance(double predicted, std::uint64_t sent) {
  if (sent == 0) return 1.0;
  // A small systematic allowance (decision-boundary and drain edge
  // effects, matching the cross-validation suite's 0.02 precedent) plus
  // four binomial standard errors of the live estimate around the
  // predicted rate.
  const double p = std::clamp(predicted, 1e-3, 1.0 - 1e-3);
  const double n = static_cast<double>(sent);
  return 0.02 + 4.0 * std::sqrt(p * (1.0 - p) / n);
}

double DifferentialFlowResult::tolerance() const {
  return differentialTolerance(predictedUnavailability, sent);
}

DifferentialResult runDifferential(
    const trace::Topology& topology, const ChaosSchedule& schedule,
    const std::vector<DifferentialFlowSpec>& flows,
    const DifferentialParams& params, telemetry::Telemetry* telemetry) {
  const util::SimTime interval = schedule.intervalLength();
  const std::size_t horizonIntervals = schedule.intervalCount();
  const auto drainIntervals = static_cast<std::size_t>(
      (params.drain + interval - 1) / interval);
  const std::size_t totalIntervals = horizonIntervals + drainIntervals;

  // Both traces carry healthy tail intervals for the drain, so in-flight
  // packets see identical (healthy) conditions on both sides after the
  // horizon.
  const trace::Trace liveTrace(interval, totalIntervals,
                               trace::healthyBaseline(topology.graph()));
  const trace::Trace compiled =
      compileInto(schedule, topology, totalIntervals, 1e-4);

  core::TransportConfig config;
  config.schemeParams = params.schemeParams;
  config.monitorMode = core::MonitorMode::Centralized;
  config.decisionInterval = interval;
  config.node.recoveryEnabled = params.recoveryEnabled;
  config.seed = params.networkSeed;
  core::TransportService service(topology, liveTrace, config);
  if (telemetry != nullptr) service.setTelemetry(telemetry);

  ChaosInjector injector(service, schedule);
  if (telemetry != nullptr) injector.setTelemetry(telemetry);
  injector.arm();
  InvariantChecker checker(service, schedule, params.invariants);
  if (telemetry != nullptr) checker.setTelemetry(telemetry);
  checker.attach();

  std::vector<net::FlowId> ids;
  ids.reserve(flows.size());
  for (const DifferentialFlowSpec& spec : flows) {
    ids.push_back(service.openFlow(spec.source, spec.destination, spec.scheme,
                                   spec.packetInterval));
  }
  service.simulator().scheduleAt(schedule.horizon(), [&service, &ids] {
    for (const net::FlowId id : ids) service.setSending(id, false);
  });
  service.run(schedule.horizon() + params.drain);
  checker.finalize();

  DifferentialResult result;
  result.violations = checker.violations();
  result.invariantChecksRun = checker.checksRun();
  result.flows.reserve(flows.size());
  for (std::size_t i = 0; i < flows.size(); ++i) {
    const DifferentialFlowSpec& spec = flows[i];
    const core::FlowStats& stats = service.stats(ids[i]);

    playback::PlaybackParams pb;
    pb.delivery.deadline = params.schemeParams.deadline;
    pb.delivery.packetInterval = spec.packetInterval;
    pb.delivery.recoveryEnabled = params.recoveryEnabled;
    pb.mcSamples = params.mcSamples;
    pb.seed = params.playbackSeed;
    const playback::PlaybackEngine engine(topology.graph(), compiled, pb);
    const routing::Flow flow{topology.at(spec.source),
                             topology.at(spec.destination)};
    const playback::FlowSchemeResult predicted = engine.runRange(
        flow, spec.scheme, params.schemeParams, 0, horizonIntervals);

    DifferentialFlowResult entry;
    entry.spec = spec;
    entry.liveUnavailability = stats.unavailability();
    entry.predictedUnavailability = predicted.unavailability;
    entry.liveCost = stats.costPerPacket();
    entry.predictedCost = predicted.averageCost;
    entry.sent = stats.sent;
    entry.deliveredOnTime = stats.deliveredOnTime;
    entry.deliveredLate = stats.deliveredLate;
    result.flows.push_back(std::move(entry));
  }
  return result;
}

}  // namespace dg::chaos
