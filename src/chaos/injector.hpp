// ChaosInjector: turns a ChaosSchedule into simulator events against a
// live TransportService.
//
// arm() schedules one event per fault transition (start, end, and each
// flap phase toggle) on the service's simulator; nothing runs until the
// service itself runs. At each transition the injector re-folds the set
// of active faults into per-edge condition overrides on the simulated
// network (composing concurrent faults with combineConditions, which is
// associative and commutative -- so a live run under overrides is
// statistically identical to running over the same schedule compiled
// into a trace, see chaos/bridge.hpp). NodeCrash faults additionally
// flip the node's crashed flag; MonitorDelay faults stretch the
// service's decision-tick cadence while active.
#pragma once

#include <cstdint>
#include <vector>

#include "chaos/schedule.hpp"
#include "core/transport.hpp"
#include "telemetry/telemetry.hpp"

namespace dg::chaos {

struct InjectorStats {
  std::uint64_t faultsStarted = 0;
  std::uint64_t faultsEnded = 0;
  std::uint64_t transitions = 0;  ///< includes flap phase toggles
};

class ChaosInjector {
 public:
  /// The service and schedule must outlive the injector. Validates the
  /// schedule against the service's topology (throws on mismatch).
  ChaosInjector(core::TransportService& service,
                const ChaosSchedule& schedule);

  /// Schedules every fault transition on the service's simulator. Call
  /// once, before running the service past the first fault start. Safe
  /// at any simulator time >= 0; transitions already in the past are
  /// skipped (their end-state is NOT applied -- arm before running).
  void arm();

  const InjectorStats& stats() const { return stats_; }

  /// True when fault index `i` of the schedule is actively impairing at
  /// the service's current simulator time.
  bool activeAt(std::size_t faultIndex) const;

  /// Attaches telemetry (nullable): per-kind injection counters
  /// (`dg_chaos_faults_injected_total{kind}`, `..._ended_total{kind}`,
  /// `dg_chaos_transitions_total`) and ChaosFaultStart/End trace events.
  void setTelemetry(telemetry::Telemetry* telemetry);

 private:
  void applyTransitions();

  core::TransportService* service_;
  const ChaosSchedule* schedule_;
  /// Per-fault impaired edge lists, resolved once against the topology.
  std::vector<std::vector<graph::EdgeId>> faultEdges_;
  /// Per-fault "was active at the last transition" (edge detection for
  /// telemetry and crash flips).
  std::vector<bool> wasActive_;
  InjectorStats stats_;

  telemetry::Telemetry* telemetry_ = nullptr;
  std::vector<telemetry::Counter*> startCounters_;  // per kind
  std::vector<telemetry::Counter*> endCounters_;    // per kind
  telemetry::Counter* transitionCounter_ = nullptr;
};

}  // namespace dg::chaos
