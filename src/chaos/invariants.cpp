#include "chaos/invariants.hpp"

#include <cmath>
#include <cstdlib>

#include "util/strings.hpp"

namespace dg::chaos {

InvariantChecker::InvariantChecker(core::TransportService& service,
                                   const ChaosSchedule& schedule,
                                   InvariantCheckerConfig config)
    : service_(&service), schedule_(&schedule), config_(config) {
  const graph::Graph& overlay = service.topology().graph();
  schedule.validateAgainst(overlay);
  faultEdges_.reserve(schedule.faults().size());
  for (const ChaosFault& fault : schedule.faults()) {
    faultEdges_.push_back(affectedEdges(fault, overlay));
  }
}

void InvariantChecker::setTelemetry(telemetry::Telemetry* telemetry) {
  telemetry_ = telemetry;
  checksCounter_ = nullptr;
  if (telemetry_ == nullptr) return;
  checksCounter_ =
      &telemetry_->metrics.counter("dg_chaos_invariant_checks_total");
}

void InvariantChecker::violate(const std::string& invariant,
                               std::string detail) {
  const util::SimTime now = service_->simulator().now();
  violations_.push_back(InvariantViolation{now, invariant, detail});
  if (telemetry_ != nullptr) {
    telemetry_->metrics
        .counter("dg_chaos_invariant_violations_total",
                 {{"invariant", invariant}})
        .inc();
    telemetry_->trace.record(now,
                             telemetry::TraceEventKind::InvariantViolation,
                             -1, -1, -1, 0.0, invariant);
  }
}

void InvariantChecker::noteClock() {
  ++checksRun_;
  if (checksCounter_ != nullptr) checksCounter_->inc();
  const util::SimTime now = service_->simulator().now();
  if (now < lastClock_) {
    violate("clock-monotone",
            "time " + std::to_string(now) + " after " +
                std::to_string(lastClock_));
  }
  lastClock_ = now;
}

void InvariantChecker::onDelivery(net::FlowId flow, const net::Packet& packet,
                                  util::SimTime latency, bool onTime) {
  noteClock();
  const util::SimTime now = service_->simulator().now();
  FlowAccount& account = accounts_[flow];

  ++checksRun_;
  if (checksCounter_ != nullptr) checksCounter_->inc();
  if (!account.delivered.insert(packet.sequence).second) {
    violate("duplicate-delivery",
            "flow " + std::to_string(flow) + " seq " +
                std::to_string(packet.sequence));
  }

  ++checksRun_;
  if (checksCounter_ != nullptr) checksCounter_->inc();
  if (packet.sequence >= service_->stats(flow).sent) {
    violate("sequence-sanity",
            "flow " + std::to_string(flow) + " delivered seq " +
                std::to_string(packet.sequence) + " with only " +
                std::to_string(service_->stats(flow).sent) + " sent");
  }

  // Timely accounting: re-derive the classification from first
  // principles (arrival time minus origin time vs the flow's deadline)
  // and hold the service to it.
  ++checksRun_;
  if (checksCounter_ != nullptr) checksCounter_->inc();
  const util::SimTime trueLatency = now - packet.originTime;
  const bool trueOnTime =
      trueLatency <= service_->context(flow).deadline;
  if (latency != trueLatency || onTime != trueOnTime) {
    violate("timely-accounting",
            "flow " + std::to_string(flow) + " seq " +
                std::to_string(packet.sequence) + " reported latency " +
                std::to_string(latency) + "/onTime " +
                std::to_string(onTime) + ", derived " +
                std::to_string(trueLatency) + "/" +
                std::to_string(trueOnTime));
  }
  (trueOnTime ? account.onTime : account.late) += 1;
}

trace::LinkConditions InvariantChecker::expectedConditionsAt(
    graph::EdgeId edge, util::SimTime t) const {
  const trace::Trace& trace = service_->network().trace();
  trace::LinkConditions expected = trace.at(edge, trace.intervalAt(t));
  const std::vector<ChaosFault>& faults = schedule_->faults();
  for (std::size_t i = 0; i < faults.size(); ++i) {
    if (!faults[i].impairsConditions()) continue;
    if (!faultActiveAt(faults[i], t)) continue;
    bool touches = false;
    for (const graph::EdgeId e : faultEdges_[i]) {
      if (e == edge) {
        touches = true;
        break;
      }
    }
    if (touches) {
      expected = trace::combineConditions(expected, impairmentOf(faults[i]));
    }
  }
  return expected;
}

bool InvariantChecker::monitorDelayedIn(util::SimTime from,
                                        util::SimTime to) const {
  for (const ChaosFault& fault : schedule_->faults()) {
    if (fault.kind != ChaosFault::Kind::MonitorDelay) continue;
    if (fault.start <= to && fault.end() > from) return true;
  }
  return false;
}

void InvariantChecker::checkMonitorAgainst(std::size_t faultIndex,
                                           bool expectImpaired) {
  noteClock();
  const util::SimTime now = service_->simulator().now();
  const util::SimTime interval = schedule_->intervalLength();
  // The view visible now was measured over [lastTick - I, lastTick]. Skip
  // when the decision cadence was perturbed or the expected conditions
  // were not stable across that window (another fault started/ended
  // inside it) -- the estimate legitimately blends two regimes then.
  const util::SimTime windowStart = now - 2 * interval;
  if (monitorDelayedIn(0, now)) {
    ++checksSkipped_;
    return;
  }
  const routing::NetworkView view = service_->currentView();
  for (const graph::EdgeId edge : faultEdges_[faultIndex]) {
    const trace::LinkConditions atEnd = expectedConditionsAt(edge, now);
    // Stability must hold across the WHOLE window, not just at its
    // endpoints: a flap phase (>= one interval) can start and end inside
    // it, so sample at quarter-interval steps (dense enough to hit any
    // interval-aligned excursion).
    bool stable = true;
    const util::SimTime from = windowStart < 0 ? 0 : windowStart;
    for (util::SimTime t = from; t < now; t += interval / 4) {
      if (expectedConditionsAt(edge, t) != atEnd) {
        stable = false;
        break;
      }
    }
    if (!stable) {
      ++checksSkipped_;
      continue;
    }
    const double estimate = view.lossRate(edge);
    const double expected = atEnd.lossRate;
    ++checksRun_;
    if (checksCounter_ != nullptr) checksCounter_->inc();
    if (expectImpaired && expected >= 0.999) {
      if (estimate < config_.deadLossThreshold) {
        violate("monitor-consistency",
                "edge " + std::to_string(edge) + " injected dead, estimated " +
                    util::formatFixed(estimate, 3));
      }
    } else if (expectImpaired) {
      if (std::abs(estimate - expected) > config_.moderateLossTolerance) {
        violate("monitor-consistency",
                "edge " + std::to_string(edge) + " injected " +
                    util::formatFixed(expected, 3) + ", estimated " +
                    util::formatFixed(estimate, 3));
      }
    } else {
      if (expected > config_.recoveredLossThreshold) {
        // Another fault is legitimately impairing this edge right now.
        ++checksSkipped_;
        continue;
      }
      if (estimate > config_.recoveredLossThreshold) {
        violate("monitor-consistency",
                "edge " + std::to_string(edge) + " healthy again, estimated " +
                    util::formatFixed(estimate, 3));
      }
    }
    // Latency estimates come from actual receptions, so they are only
    // trustworthy when most transmissions get through.
    if (expected < 0.5) {
      ++checksRun_;
      if (checksCounter_ != nullptr) checksCounter_->inc();
      const util::SimTime latencyEstimate = view.latency(edge);
      if (std::llabs(latencyEstimate - atEnd.latency) >
          config_.latencyToleranceUs) {
        violate("monitor-consistency",
                "edge " + std::to_string(edge) + " latency injected " +
                    std::to_string(atEnd.latency) + "us, estimated " +
                    std::to_string(latencyEstimate) + "us");
      }
    }
  }
}

void InvariantChecker::attach() {
  service_->setDeliveryObserver(
      [this](net::FlowId flow, const net::Packet& packet,
             util::SimTime latency, bool onTime) {
        onDelivery(flow, packet, latency, onTime);
      });

  // Monitor consistency only holds where there is one service-wide
  // monitor being fed by every transmission.
  if (service_->monitorMode() != core::MonitorMode::Centralized) return;

  net::Simulator& simulator = service_->simulator();
  const util::SimTime interval = schedule_->intervalLength();
  const util::SimTime settle =
      static_cast<util::SimTime>(config_.settleIntervals) * interval;
  const std::vector<ChaosFault>& faults = schedule_->faults();
  for (std::size_t i = 0; i < faults.size(); ++i) {
    const ChaosFault& fault = faults[i];
    if (!fault.impairsConditions()) continue;
    if (fault.kind == ChaosFault::Kind::LinkFlap) continue;
    // NodeCrash kills the node's daemon too; its adjacent-link estimates
    // still read dead (probes stop flowing) so the check applies.
    if (fault.duration < settle + interval) continue;
    // While impaired: probe just before the fault ends, when the last
    // closed measurement interval lies entirely inside the fault.
    const util::SimTime impairedProbe = fault.end() - 1;
    if (impairedProbe > fault.start + settle &&
        impairedProbe < schedule_->horizon()) {
      simulator.scheduleAt(impairedProbe,
                           [this, i] { checkMonitorAgainst(i, true); });
    }
    // After recovery: probe once the estimate had `settle` worth of
    // healthy measurements to converge back.
    const util::SimTime recoveredProbe = fault.end() + settle + interval / 2;
    if (recoveredProbe < schedule_->horizon()) {
      simulator.scheduleAt(recoveredProbe,
                           [this, i] { checkMonitorAgainst(i, false); });
    }
  }
}

void InvariantChecker::finalize() {
  if (finalized_) return;
  finalized_ = true;
  noteClock();
  for (net::FlowId id = 0; id < service_->flowCount(); ++id) {
    const core::FlowStats& stats = service_->stats(id);
    const FlowAccount& account = accounts_[id];
    ++checksRun_;
    if (checksCounter_ != nullptr) checksCounter_->inc();
    if (account.onTime != stats.deliveredOnTime ||
        account.late != stats.deliveredLate) {
      violate("timely-accounting",
              "flow " + std::to_string(id) + " stats say " +
                  std::to_string(stats.deliveredOnTime) + " on-time/" +
                  std::to_string(stats.deliveredLate) +
                  " late, checker derived " +
                  std::to_string(account.onTime) + "/" +
                  std::to_string(account.late));
    }
    ++checksRun_;
    if (checksCounter_ != nullptr) checksCounter_->inc();
    if (account.delivered.size() != stats.delivered()) {
      violate("duplicate-delivery",
              "flow " + std::to_string(id) + " delivered " +
                  std::to_string(stats.delivered()) + " packets but only " +
                  std::to_string(account.delivered.size()) +
                  " distinct sequences");
    }
  }
}

}  // namespace dg::chaos
