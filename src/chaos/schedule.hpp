// Chaos schedules: deterministic fault-injection scripts for the live
// overlay stack.
//
// A ChaosSchedule is an ordered list of timed faults -- link loss and
// latency spikes, link flaps ("fluttering"), site degradations, partial
// and full site blackouts, node crash/restart, and monitoring-report
// delay -- over a fixed horizon. Schedules are plain data: they can be
// scripted by hand, generated from a seed (bit-reproducibly), recorded to
// a small text format and replayed from it. The ChaosInjector turns a
// schedule into simulator events against a live TransportService; the
// bridge (chaos/bridge.hpp) compiles the same schedule into a playback
// trace::Trace so one scenario can be driven through both halves of the
// system and differentially compared.
//
// Determinism contract: a run is a pure function of (topology, schedule,
// seed). Faults aligned to the schedule's interval grid compile into the
// trace exactly; unaligned faults are quantized to the majority interval
// (see compileToTrace) and introduce boundary error in the differential.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "graph/graph.hpp"
#include "trace/conditions.hpp"
#include "trace/topology.hpp"
#include "util/rng.hpp"
#include "util/sim_time.hpp"

namespace dg::chaos {

struct ChaosFault {
  enum class Kind : std::uint8_t {
    LinkLoss,          ///< loss on one undirected link (both directions)
    LinkLatency,       ///< latency penalty on one undirected link
    LinkFlap,          ///< link alternates impaired/healthy ("fluttering")
    SiteDegrade,       ///< every link of a site lossy at `lossRate`
    SitePartialOutage, ///< all but `aliveLinks` links of a site dark
    SiteBlackout,      ///< every link of a site dark (100% loss)
    NodeCrash,         ///< node down: links dark AND soft state lost
    MonitorDelay,      ///< decision/monitor reports delayed while active
  };

  Kind kind = Kind::LinkLoss;
  util::SimTime start = 0;
  util::SimTime duration = 0;

  /// Target site (Site*/NodeCrash kinds).
  graph::NodeId node = graph::kInvalidNode;
  /// Target link (Link* kinds): the forward directed edge; the reverse
  /// direction is always affected too.
  graph::EdgeId link = graph::kInvalidEdge;

  /// Loss rate while active (Link{Loss,Flap}, SiteDegrade; forced to 1.0
  /// for SitePartialOutage / SiteBlackout / NodeCrash).
  double lossRate = 0.0;
  /// Latency added while active (LinkLatency; optional on others).
  util::SimTime latencyPenalty = 0;
  /// LinkFlap: impaired for `flapOn`, healthy for `flapOff`, repeating
  /// from `start` until the fault ends. Both must be > 0 for flaps.
  util::SimTime flapOn = 0;
  util::SimTime flapOff = 0;
  /// SitePartialOutage: undirected links spared (>= 1, clamped to degree).
  int aliveLinks = 1;
  /// MonitorDelay: extra delay added to each decision tick while active.
  util::SimTime reportDelay = 0;
  /// Per-fault randomness (e.g. which links a partial outage spares);
  /// part of the schedule so replay is exact.
  std::uint64_t salt = 0;

  util::SimTime end() const { return start + duration; }
  bool targetsNode() const {
    return kind == Kind::SiteDegrade || kind == Kind::SitePartialOutage ||
           kind == Kind::SiteBlackout || kind == Kind::NodeCrash;
  }
  bool targetsLink() const {
    return kind == Kind::LinkLoss || kind == Kind::LinkLatency ||
           kind == Kind::LinkFlap;
  }
  /// True for kinds that impair link conditions (everything except
  /// MonitorDelay, which only perturbs control timing).
  bool impairsConditions() const { return kind != Kind::MonitorDelay; }
};

/// Canonical lowercase-kebab kind name ("link-loss", "site-blackout", ...).
std::string_view faultKindName(ChaosFault::Kind kind);
/// Parses a canonical kind name; throws std::invalid_argument on unknown.
ChaosFault::Kind parseFaultKind(std::string_view name);

/// Parameters for seeded random schedule generation. Faults are aligned
/// to the interval grid so the playback compilation is exact (see the
/// header comment); severity and placement ranges loosely follow the
/// synthetic-trace generator's problem taxonomy.
struct ChaosScheduleParams {
  std::uint64_t seed = 1;
  util::SimTime horizon = util::minutes(2);
  /// Fault grid; must match the decision/monitoring interval of the run.
  util::SimTime intervalLength = util::seconds(10);
  int faults = 6;

  /// Relative kind weights (0 disables a kind).
  double linkLossWeight = 2.0;
  double linkLatencyWeight = 1.0;
  double linkFlapWeight = 1.0;
  double siteDegradeWeight = 2.0;
  double sitePartialOutageWeight = 1.0;
  double siteBlackoutWeight = 0.5;
  double nodeCrashWeight = 0.5;
  double monitorDelayWeight = 0.0;  ///< live-only; off by default

  /// Loss severity for degradations (blackouts/outages/crashes use 1.0).
  double lossMin = 0.5;
  double lossMax = 0.95;
  /// Latency penalty range for latency faults.
  util::SimTime latencyPenaltyMin = util::milliseconds(30);
  util::SimTime latencyPenaltyMax = util::milliseconds(200);
  /// Fault durations in intervals (uniform, inclusive).
  int durationIntervalsMin = 3;
  int durationIntervalsMax = 6;
  /// Flap on/off phase lengths in intervals (uniform, inclusive).
  int flapPhaseIntervalsMin = 1;
  int flapPhaseIntervalsMax = 2;
  /// MonitorDelay report delay as a fraction of the interval.
  double reportDelayFraction = 0.5;

  /// When true, only loss rates in {1.0} and latency faults are
  /// generated (blackout-style schedules where the per-hop recovery
  /// protocol cannot change outcomes; used by the recovery-on soak).
  bool hardFaultsOnly = false;
};

class ChaosSchedule {
 public:
  ChaosSchedule() = default;
  ChaosSchedule(util::SimTime horizon, util::SimTime intervalLength)
      : horizon_(horizon), intervalLength_(intervalLength) {}

  /// Adds a fault (kept start-sorted, stable for equal starts). Throws
  /// std::invalid_argument on malformed faults (bad target, nonpositive
  /// duration, flap without phases).
  void add(ChaosFault fault);

  const std::vector<ChaosFault>& faults() const { return faults_; }
  util::SimTime horizon() const { return horizon_; }
  util::SimTime intervalLength() const { return intervalLength_; }
  std::size_t intervalCount() const {
    return static_cast<std::size_t>((horizon_ + intervalLength_ - 1) /
                                    intervalLength_);
  }

  /// True when every fault's start/duration/flap phases sit on the
  /// interval grid (exact playback compilation, see header comment).
  bool alignedToIntervals() const;

  /// Validates fault targets against a topology graph (node/edge ids in
  /// range). Throws std::invalid_argument naming the offending fault.
  void validateAgainst(const graph::Graph& overlay) const;

  /// Text serialization:
  ///   chaos v1 HORIZON_US INTERVAL_US
  ///   fault KIND START_US DURATION_US [key=value ...]
  /// with keys node=, link=, loss=, latency=, flap_on=, flap_off=,
  /// alive=, delay=, salt=. '#' starts a comment.
  std::string toString() const;
  static ChaosSchedule fromString(std::string_view text);
  void save(const std::string& path) const;
  static ChaosSchedule load(const std::string& path);

  /// Deterministic seeded random schedule over a topology: placement
  /// follows the paper's taxonomy (site faults weighted toward
  /// low-degree edge sites). Identical (topology, params) always yield
  /// an identical schedule.
  static ChaosSchedule random(const trace::Topology& topology,
                              const ChaosScheduleParams& params);

 private:
  util::SimTime horizon_ = util::minutes(2);
  util::SimTime intervalLength_ = util::seconds(10);
  std::vector<ChaosFault> faults_;  ///< start-sorted
};

/// Directed edges a fault impairs (empty for MonitorDelay): both
/// directions of the target link, or the target node's in+out edges
/// (minus the spared links for partial outages, chosen deterministically
/// from the fault's salt). Sorted ascending, deduplicated.
std::vector<graph::EdgeId> affectedEdges(const ChaosFault& fault,
                                         const graph::Graph& overlay);

/// The condition impairment a fault applies to each affected edge while
/// active (loss for loss-kinds, latency penalty for latency faults).
trace::LinkConditions impairmentOf(const ChaosFault& fault);

/// True when the fault is actively impairing at time `t` (inside the
/// fault window and, for flaps, inside an "on" phase).
bool faultActiveAt(const ChaosFault& fault, util::SimTime t);

}  // namespace dg::chaos
