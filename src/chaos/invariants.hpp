// InvariantChecker: runs alongside a chaos-injected live simulation and
// verifies properties the stack must hold under ANY fault schedule:
//
//   duplicate-delivery   the app layer never sees the same (flow, seq)
//                        twice
//   sequence-sanity      a delivered sequence was actually sent (seq <
//                        the flow's sent count at delivery time)
//   timely-accounting    a delivery is counted on-time iff its end-to-
//                        end latency (arrival - origin) is within the
//                        flow deadline; finalize() re-derives the
//                        per-flow on-time/late totals independently and
//                        compares them to FlowStats exactly
//   clock-monotone       simulation time never decreases across any
//                        observed callback
//   monitor-consistency  for long-lived condition faults, the monitor's
//                        routing view eventually reflects the injected
//                        conditions (dead links read ~1.0 loss, degraded
//                        links read near the injected rate, and the view
//                        recovers to ~baseline after the fault clears)
//
// The checker is passive: it installs the service's delivery observer
// and schedules read-only probe events; it never transmits, draws
// randomness, or perturbs the run's RNG streams.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "chaos/schedule.hpp"
#include "core/transport.hpp"
#include "telemetry/telemetry.hpp"

namespace dg::chaos {

struct InvariantViolation {
  util::SimTime time = 0;
  std::string invariant;  ///< "duplicate-delivery", "clock-monotone", ...
  std::string detail;
};

struct InvariantCheckerConfig {
  /// Decision intervals a fault must span before the monitor is expected
  /// to have caught up (and to have recovered after it ends).
  int settleIntervals = 2;
  /// A link injected at >= ~1.0 loss must be estimated at least this.
  double deadLossThreshold = 0.9;
  /// |estimate - injected| bound for moderate (non-dead) loss faults.
  double moderateLossTolerance = 0.3;
  /// A recovered link's estimate must drop back below this.
  double recoveredLossThreshold = 0.1;
  /// Latency estimate tolerance (checked only when loss < 0.5, where the
  /// estimator has plenty of samples).
  util::SimTime latencyToleranceUs = util::milliseconds(2);
};

class InvariantChecker {
 public:
  /// The service and schedule must outlive the checker. Call attach()
  /// before running the service; call finalize() after the run (and any
  /// drain) completes to run the accounting cross-check.
  InvariantChecker(core::TransportService& service,
                   const ChaosSchedule& schedule,
                   InvariantCheckerConfig config = {});

  /// Installs the delivery observer and schedules the monitor
  /// consistency probes. The service's delivery-observer slot is taken
  /// over (there is only one).
  void attach();

  /// Re-derives per-flow delivery accounting and compares it to the
  /// service's FlowStats. Call exactly once, after the run.
  void finalize();

  const std::vector<InvariantViolation>& violations() const {
    return violations_;
  }
  std::uint64_t checksRun() const { return checksRun_; }
  std::uint64_t checksSkipped() const { return checksSkipped_; }

  /// Attaches telemetry (nullable): `dg_chaos_invariant_checks_total`,
  /// `dg_chaos_invariant_violations_total{invariant}` and
  /// InvariantViolation trace events.
  void setTelemetry(telemetry::Telemetry* telemetry);

 private:
  struct FlowAccount {
    std::unordered_set<net::SequenceNumber> delivered;
    std::uint64_t onTime = 0;
    std::uint64_t late = 0;
  };

  void onDelivery(net::FlowId flow, const net::Packet& packet,
                  util::SimTime latency, bool onTime);
  void noteClock();
  void violate(const std::string& invariant, std::string detail);
  void checkMonitorAgainst(std::size_t faultIndex, bool expectImpaired);
  /// Folds every fault active at `t` into the expected conditions of
  /// `edge` (combined with the service trace's conditions at `t`).
  trace::LinkConditions expectedConditionsAt(graph::EdgeId edge,
                                             util::SimTime t) const;
  /// True when a MonitorDelay fault is active anywhere in [from, to]
  /// (the decision cadence is perturbed; monitor timing checks skip).
  bool monitorDelayedIn(util::SimTime from, util::SimTime to) const;

  core::TransportService* service_;
  const ChaosSchedule* schedule_;
  InvariantCheckerConfig config_;
  std::vector<std::vector<graph::EdgeId>> faultEdges_;
  std::unordered_map<net::FlowId, FlowAccount> accounts_;
  std::vector<InvariantViolation> violations_;
  util::SimTime lastClock_ = 0;
  std::uint64_t checksRun_ = 0;
  std::uint64_t checksSkipped_ = 0;
  bool finalized_ = false;

  telemetry::Telemetry* telemetry_ = nullptr;
  telemetry::Counter* checksCounter_ = nullptr;
};

}  // namespace dg::chaos
