#include "chaos/schedule.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/strings.hpp"

namespace dg::chaos {

namespace {

struct KindName {
  ChaosFault::Kind kind;
  std::string_view name;
};

constexpr KindName kKindNames[] = {
    {ChaosFault::Kind::LinkLoss, "link-loss"},
    {ChaosFault::Kind::LinkLatency, "link-latency"},
    {ChaosFault::Kind::LinkFlap, "link-flap"},
    {ChaosFault::Kind::SiteDegrade, "site-degrade"},
    {ChaosFault::Kind::SitePartialOutage, "site-partial-outage"},
    {ChaosFault::Kind::SiteBlackout, "site-blackout"},
    {ChaosFault::Kind::NodeCrash, "node-crash"},
    {ChaosFault::Kind::MonitorDelay, "monitor-delay"},
};

[[noreturn]] void malformed(std::size_t lineNumber, const std::string& why) {
  throw std::runtime_error("ChaosSchedule: line " +
                           std::to_string(lineNumber) + ": " + why);
}

}  // namespace

std::string_view faultKindName(ChaosFault::Kind kind) {
  for (const KindName& entry : kKindNames) {
    if (entry.kind == kind) return entry.name;
  }
  return "unknown";
}

ChaosFault::Kind parseFaultKind(std::string_view name) {
  for (const KindName& entry : kKindNames) {
    if (entry.name == name) return entry.kind;
  }
  throw std::invalid_argument("unknown chaos fault kind '" +
                              std::string(name) + "'");
}

void ChaosSchedule::add(ChaosFault fault) {
  if (fault.duration <= 0)
    throw std::invalid_argument("ChaosFault: duration must be > 0");
  if (fault.start < 0)
    throw std::invalid_argument("ChaosFault: start must be >= 0");
  if (fault.targetsNode() && fault.node == graph::kInvalidNode)
    throw std::invalid_argument("ChaosFault: site fault without a node");
  if (fault.targetsLink() && fault.link == graph::kInvalidEdge)
    throw std::invalid_argument("ChaosFault: link fault without a link");
  if (fault.kind == ChaosFault::Kind::LinkFlap &&
      (fault.flapOn <= 0 || fault.flapOff <= 0)) {
    throw std::invalid_argument("ChaosFault: flap needs flapOn/flapOff > 0");
  }
  if (fault.kind == ChaosFault::Kind::SitePartialOutage &&
      fault.aliveLinks < 1) {
    throw std::invalid_argument("ChaosFault: partial outage needs alive >= 1");
  }
  const auto position = std::upper_bound(
      faults_.begin(), faults_.end(), fault,
      [](const ChaosFault& a, const ChaosFault& b) { return a.start < b.start; });
  faults_.insert(position, std::move(fault));
}

bool ChaosSchedule::alignedToIntervals() const {
  const util::SimTime grid = intervalLength_;
  for (const ChaosFault& fault : faults_) {
    if (fault.start % grid != 0 || fault.duration % grid != 0) return false;
    if (fault.kind == ChaosFault::Kind::LinkFlap &&
        (fault.flapOn % grid != 0 || fault.flapOff % grid != 0)) {
      return false;
    }
  }
  return true;
}

void ChaosSchedule::validateAgainst(const graph::Graph& overlay) const {
  for (std::size_t i = 0; i < faults_.size(); ++i) {
    const ChaosFault& fault = faults_[i];
    if (fault.targetsNode() && fault.node >= overlay.nodeCount()) {
      throw std::invalid_argument("ChaosSchedule: fault " + std::to_string(i) +
                                  " targets node " +
                                  std::to_string(fault.node) +
                                  " outside the topology");
    }
    if (fault.targetsLink() && fault.link >= overlay.edgeCount()) {
      throw std::invalid_argument("ChaosSchedule: fault " + std::to_string(i) +
                                  " targets link " +
                                  std::to_string(fault.link) +
                                  " outside the topology");
    }
  }
}

std::string ChaosSchedule::toString() const {
  std::ostringstream out;
  // max_digits10: loss rates round-trip bit-exactly, so a recorded
  // schedule replays the identical run.
  out.precision(17);
  out << "chaos v1 " << horizon_ << ' ' << intervalLength_ << '\n';
  for (const ChaosFault& fault : faults_) {
    out << "fault " << faultKindName(fault.kind) << ' ' << fault.start << ' '
        << fault.duration;
    if (fault.targetsNode()) out << " node=" << fault.node;
    if (fault.targetsLink()) out << " link=" << fault.link;
    if (fault.lossRate > 0.0) out << " loss=" << fault.lossRate;
    if (fault.latencyPenalty > 0) out << " latency=" << fault.latencyPenalty;
    if (fault.kind == ChaosFault::Kind::LinkFlap) {
      out << " flap_on=" << fault.flapOn << " flap_off=" << fault.flapOff;
    }
    if (fault.kind == ChaosFault::Kind::SitePartialOutage) {
      out << " alive=" << fault.aliveLinks;
    }
    if (fault.kind == ChaosFault::Kind::MonitorDelay) {
      out << " delay=" << fault.reportDelay;
    }
    if (fault.salt != 0) out << " salt=" << fault.salt;
    out << '\n';
  }
  return out.str();
}

ChaosSchedule ChaosSchedule::fromString(std::string_view text) {
  ChaosSchedule schedule;
  bool sawHeader = false;
  std::size_t lineNumber = 0;
  std::istringstream in{std::string(text)};
  std::string line;
  while (std::getline(in, line)) {
    ++lineNumber;
    const std::string_view trimmed = util::trim(line);
    if (trimmed.empty() || trimmed.front() == '#') continue;
    const std::vector<std::string> tokens = util::splitWhitespace(trimmed);
    if (tokens[0] == "chaos") {
      if (tokens.size() != 4 || tokens[1] != "v1")
        malformed(lineNumber, "want 'chaos v1 HORIZON_US INTERVAL_US'");
      std::int64_t horizon = 0;
      std::int64_t interval = 0;
      if (!util::parseInt64(tokens[2], horizon) ||
          !util::parseInt64(tokens[3], interval) || horizon <= 0 ||
          interval <= 0) {
        malformed(lineNumber, "bad horizon/interval");
      }
      schedule.horizon_ = horizon;
      schedule.intervalLength_ = interval;
      sawHeader = true;
      continue;
    }
    if (tokens[0] != "fault")
      malformed(lineNumber, "unknown directive '" + tokens[0] + "'");
    if (!sawHeader) malformed(lineNumber, "fault before 'chaos v1' header");
    if (tokens.size() < 4)
      malformed(lineNumber, "want 'fault KIND START_US DURATION_US ...'");
    ChaosFault fault;
    try {
      fault.kind = parseFaultKind(tokens[1]);
    } catch (const std::invalid_argument& e) {
      malformed(lineNumber, e.what());
    }
    std::int64_t start = 0;
    std::int64_t duration = 0;
    if (!util::parseInt64(tokens[2], start) ||
        !util::parseInt64(tokens[3], duration)) {
      malformed(lineNumber, "bad start/duration");
    }
    fault.start = start;
    fault.duration = duration;
    for (std::size_t i = 4; i < tokens.size(); ++i) {
      const auto eq = tokens[i].find('=');
      if (eq == std::string::npos)
        malformed(lineNumber, "want key=value, got '" + tokens[i] + "'");
      const std::string key = tokens[i].substr(0, eq);
      const std::string value = tokens[i].substr(eq + 1);
      std::int64_t asInt = 0;
      double asDouble = 0.0;
      const bool isInt = util::parseInt64(value, asInt);
      const bool isDouble = util::parseDouble(value, asDouble);
      const auto wantInt = [&](const char* what) {
        if (!isInt) malformed(lineNumber, std::string("bad ") + what);
        return asInt;
      };
      if (key == "node") {
        fault.node = static_cast<graph::NodeId>(wantInt("node"));
      } else if (key == "link") {
        fault.link = static_cast<graph::EdgeId>(wantInt("link"));
      } else if (key == "loss") {
        if (!isDouble || asDouble < 0.0 || asDouble > 1.0)
          malformed(lineNumber, "bad loss");
        fault.lossRate = asDouble;
      } else if (key == "latency") {
        fault.latencyPenalty = wantInt("latency");
      } else if (key == "flap_on") {
        fault.flapOn = wantInt("flap_on");
      } else if (key == "flap_off") {
        fault.flapOff = wantInt("flap_off");
      } else if (key == "alive") {
        fault.aliveLinks = static_cast<int>(wantInt("alive"));
      } else if (key == "delay") {
        fault.reportDelay = wantInt("delay");
      } else if (key == "salt") {
        // Salt is a full 64-bit word (may exceed int64 range).
        try {
          std::size_t used = 0;
          fault.salt = std::stoull(value, &used);
          if (used != value.size()) malformed(lineNumber, "bad salt");
        } catch (const std::exception&) {
          malformed(lineNumber, "bad salt");
        }
      } else {
        malformed(lineNumber, "unknown key '" + key + "'");
      }
    }
    try {
      schedule.add(std::move(fault));
    } catch (const std::invalid_argument& e) {
      malformed(lineNumber, e.what());
    }
  }
  if (!sawHeader)
    throw std::runtime_error("ChaosSchedule: missing 'chaos v1' header");
  return schedule;
}

void ChaosSchedule::save(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("ChaosSchedule: cannot open " + path);
  out << toString();
}

ChaosSchedule ChaosSchedule::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("ChaosSchedule: cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return fromString(buffer.str());
}

ChaosSchedule ChaosSchedule::random(const trace::Topology& topology,
                                    const ChaosScheduleParams& params) {
  const graph::Graph& overlay = topology.graph();
  ChaosSchedule schedule(params.horizon, params.intervalLength);
  util::Rng rng(params.seed);
  const auto totalIntervals =
      static_cast<std::int64_t>(schedule.intervalCount());
  if (totalIntervals <= 0 || params.faults <= 0) return schedule;

  // Site placement weights: degree^-2, echoing the synthetic generator's
  // finding that problems cluster at poorly connected edge sites.
  std::vector<double> siteWeights(overlay.nodeCount(), 0.0);
  for (graph::NodeId n = 0; n < overlay.nodeCount(); ++n) {
    const double degree = static_cast<double>(overlay.outDegree(n));
    siteWeights[n] = degree > 0.0 ? 1.0 / (degree * degree) : 0.0;
  }

  std::vector<double> kindWeights = {
      params.linkLossWeight,     params.linkLatencyWeight,
      params.linkFlapWeight,     params.siteDegradeWeight,
      params.sitePartialOutageWeight, params.siteBlackoutWeight,
      params.nodeCrashWeight,    params.monitorDelayWeight,
  };
  if (params.hardFaultsOnly) {
    // Only faults whose impairment the recovery protocol cannot soften:
    // dead links (loss 1.0) and pure latency inflation.
    kindWeights = {0.0, params.linkLatencyWeight, 0.0, 0.0,
                   params.sitePartialOutageWeight, params.siteBlackoutWeight,
                   params.nodeCrashWeight, 0.0};
  }

  for (int i = 0; i < params.faults; ++i) {
    ChaosFault fault;
    fault.kind = static_cast<ChaosFault::Kind>(rng.weightedIndex(kindWeights));
    const std::int64_t durationIntervals =
        rng.uniformInt(params.durationIntervalsMin,
                       std::max(params.durationIntervalsMin,
                                params.durationIntervalsMax));
    const std::int64_t maxStart =
        std::max<std::int64_t>(0, totalIntervals - durationIntervals);
    fault.start = rng.uniformInt(0, maxStart) * params.intervalLength;
    fault.duration =
        std::min(durationIntervals,
                 totalIntervals - fault.start / params.intervalLength) *
        params.intervalLength;
    fault.salt = rng.next();
    if (fault.targetsNode()) {
      fault.node = static_cast<graph::NodeId>(rng.weightedIndex(siteWeights));
    }
    if (fault.targetsLink()) {
      // Pick an undirected link: forward edges are the even ids (the
      // topology builder always adds bidirectional pairs).
      const auto undirected =
          static_cast<std::uint64_t>(overlay.edgeCount() / 2);
      fault.link = static_cast<graph::EdgeId>(2 * rng.uniformInt(undirected));
    }
    switch (fault.kind) {
      case ChaosFault::Kind::LinkLoss:
      case ChaosFault::Kind::SiteDegrade:
        fault.lossRate = rng.uniform(params.lossMin, params.lossMax);
        break;
      case ChaosFault::Kind::LinkFlap:
        fault.lossRate = rng.uniform(params.lossMin, params.lossMax);
        fault.flapOn = rng.uniformInt(params.flapPhaseIntervalsMin,
                                      params.flapPhaseIntervalsMax) *
                       params.intervalLength;
        fault.flapOff = rng.uniformInt(params.flapPhaseIntervalsMin,
                                       params.flapPhaseIntervalsMax) *
                        params.intervalLength;
        break;
      case ChaosFault::Kind::LinkLatency:
        fault.latencyPenalty = rng.uniformInt(params.latencyPenaltyMin,
                                              params.latencyPenaltyMax);
        break;
      case ChaosFault::Kind::SitePartialOutage:
        fault.lossRate = 1.0;
        fault.aliveLinks = 1;
        break;
      case ChaosFault::Kind::SiteBlackout:
      case ChaosFault::Kind::NodeCrash:
        fault.lossRate = 1.0;
        break;
      case ChaosFault::Kind::MonitorDelay:
        fault.reportDelay = static_cast<util::SimTime>(
            params.reportDelayFraction *
            static_cast<double>(params.intervalLength));
        break;
    }
    schedule.add(std::move(fault));
  }
  return schedule;
}

std::vector<graph::EdgeId> affectedEdges(const ChaosFault& fault,
                                         const graph::Graph& overlay) {
  std::vector<graph::EdgeId> edges;
  if (!fault.impairsConditions()) return edges;
  if (fault.targetsLink()) {
    edges.push_back(fault.link);
    if (const auto reverse = overlay.reverseEdge(fault.link)) {
      edges.push_back(*reverse);
    }
  } else {
    for (const graph::EdgeId e : overlay.outEdges(fault.node))
      edges.push_back(e);
    for (const graph::EdgeId e : overlay.inEdges(fault.node))
      edges.push_back(e);
    if (fault.kind == ChaosFault::Kind::SitePartialOutage) {
      // Spare `aliveLinks` undirected neighbor links, chosen
      // deterministically from the fault's salt.
      const auto outs = overlay.outEdges(fault.node);
      const auto degree = static_cast<int>(outs.size());
      const int alive = std::min(fault.aliveLinks, degree);
      std::vector<graph::EdgeId> spared;
      util::Rng pick(fault.salt ^ (0x51CEB10CULL + fault.node));
      std::vector<int> candidates(static_cast<std::size_t>(degree));
      for (int c = 0; c < degree; ++c) candidates[static_cast<std::size_t>(c)] = c;
      for (int a = 0; a < alive; ++a) {
        const auto slot = static_cast<std::size_t>(
            pick.uniformInt(static_cast<std::uint64_t>(candidates.size())));
        const graph::EdgeId out = outs[static_cast<std::size_t>(
            candidates[slot])];
        spared.push_back(out);
        if (const auto reverse = overlay.reverseEdge(out))
          spared.push_back(*reverse);
        candidates.erase(candidates.begin() + static_cast<std::ptrdiff_t>(slot));
      }
      std::erase_if(edges, [&](graph::EdgeId e) {
        return std::find(spared.begin(), spared.end(), e) != spared.end();
      });
    }
  }
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  return edges;
}

trace::LinkConditions impairmentOf(const ChaosFault& fault) {
  trace::LinkConditions impairment;
  switch (fault.kind) {
    case ChaosFault::Kind::LinkLoss:
    case ChaosFault::Kind::LinkFlap:
    case ChaosFault::Kind::SiteDegrade:
      impairment.lossRate = fault.lossRate;
      break;
    case ChaosFault::Kind::SitePartialOutage:
    case ChaosFault::Kind::SiteBlackout:
    case ChaosFault::Kind::NodeCrash:
      impairment.lossRate = 1.0;
      break;
    case ChaosFault::Kind::LinkLatency:
      impairment.latency = fault.latencyPenalty;
      break;
    case ChaosFault::Kind::MonitorDelay:
      break;
  }
  // Latency penalties may accompany loss kinds too (hand-written
  // schedules); combineConditions takes the max against the trace
  // latency, so a zero penalty is a no-op.
  if (fault.kind != ChaosFault::Kind::LinkLatency &&
      fault.latencyPenalty > 0) {
    impairment.latency = fault.latencyPenalty;
  }
  return impairment;
}

bool faultActiveAt(const ChaosFault& fault, util::SimTime t) {
  if (t < fault.start || t >= fault.end()) return false;
  if (fault.kind != ChaosFault::Kind::LinkFlap) return true;
  const util::SimTime period = fault.flapOn + fault.flapOff;
  return (t - fault.start) % period < fault.flapOn;
}

}  // namespace dg::chaos
