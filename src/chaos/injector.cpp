#include "chaos/injector.hpp"

#include <algorithm>
#include <string>

namespace dg::chaos {

namespace {

constexpr std::size_t kKindCount = 8;

std::size_t kindIndex(ChaosFault::Kind kind) {
  return static_cast<std::size_t>(kind);
}

}  // namespace

ChaosInjector::ChaosInjector(core::TransportService& service,
                             const ChaosSchedule& schedule)
    : service_(&service), schedule_(&schedule) {
  const graph::Graph& overlay = service.topology().graph();
  schedule.validateAgainst(overlay);
  faultEdges_.reserve(schedule.faults().size());
  for (const ChaosFault& fault : schedule.faults()) {
    faultEdges_.push_back(affectedEdges(fault, overlay));
  }
  wasActive_.assign(schedule.faults().size(), false);
}

void ChaosInjector::setTelemetry(telemetry::Telemetry* telemetry) {
  telemetry_ = telemetry;
  startCounters_.clear();
  endCounters_.clear();
  transitionCounter_ = nullptr;
  if (telemetry_ == nullptr) return;
  startCounters_.reserve(kKindCount);
  endCounters_.reserve(kKindCount);
  for (std::size_t k = 0; k < kKindCount; ++k) {
    const telemetry::Labels labels{
        {"kind", std::string(faultKindName(static_cast<ChaosFault::Kind>(k)))}};
    startCounters_.push_back(&telemetry_->metrics.counter(
        "dg_chaos_faults_injected_total", labels));
    endCounters_.push_back(
        &telemetry_->metrics.counter("dg_chaos_faults_ended_total", labels));
  }
  transitionCounter_ =
      &telemetry_->metrics.counter("dg_chaos_transitions_total");
}

bool ChaosInjector::activeAt(std::size_t faultIndex) const {
  return faultActiveAt(schedule_->faults()[faultIndex],
                       service_->simulator().now());
}

void ChaosInjector::arm() {
  net::Simulator& simulator = service_->simulator();
  const util::SimTime now = simulator.now();
  const auto scheduleTransition = [&](util::SimTime at) {
    if (at < now) return;  // already past: arm() before running
    simulator.scheduleAt(at, [this] { applyTransitions(); });
  };
  for (const ChaosFault& fault : schedule_->faults()) {
    scheduleTransition(fault.start);
    scheduleTransition(fault.end());
    if (fault.kind == ChaosFault::Kind::LinkFlap) {
      const util::SimTime period = fault.flapOn + fault.flapOff;
      for (util::SimTime t = fault.start; t < fault.end(); t += period) {
        const util::SimTime off = t + fault.flapOn;
        if (off < fault.end()) scheduleTransition(off);
        const util::SimTime on = t + period;
        if (on < fault.end()) scheduleTransition(on);
      }
    }
  }
}

void ChaosInjector::applyTransitions() {
  const util::SimTime now = service_->simulator().now();
  const std::vector<ChaosFault>& faults = schedule_->faults();
  net::SimulatedNetwork& network = service_->network();
  const std::size_t edgeCount = network.overlay().edgeCount();
  ++stats_.transitions;
  if (transitionCounter_ != nullptr) transitionCounter_->inc();

  // Re-fold the complete override state from the set of active faults.
  // Transitions are rare (a handful per run), so the O(faults x edges)
  // rebuild is simpler and safer than incremental bookkeeping.
  std::vector<trace::LinkConditions> folded(edgeCount);
  std::vector<bool> impaired(edgeCount, false);
  util::SimTime decisionDelay = 0;
  for (std::size_t i = 0; i < faults.size(); ++i) {
    const ChaosFault& fault = faults[i];
    const bool active = faultActiveAt(fault, now);
    if (active != wasActive_[i]) {
      wasActive_[i] = active;
      ++(active ? stats_.faultsStarted : stats_.faultsEnded);
      if (telemetry_ != nullptr) {
        (active ? startCounters_ : endCounters_)[kindIndex(fault.kind)]->inc();
        telemetry_->trace.record(
            now,
            active ? telemetry::TraceEventKind::ChaosFaultStart
                   : telemetry::TraceEventKind::ChaosFaultEnd,
            -1, fault.targetsNode() ? static_cast<std::int64_t>(fault.node) : -1,
            fault.targetsLink() ? static_cast<std::int64_t>(fault.link) : -1,
            static_cast<double>(i), std::string(faultKindName(fault.kind)));
      }
      if (fault.kind == ChaosFault::Kind::NodeCrash) {
        service_->node(fault.node).setCrashed(active);
      }
    }
    if (!active) continue;
    if (fault.kind == ChaosFault::Kind::MonitorDelay) {
      decisionDelay = std::max(decisionDelay, fault.reportDelay);
      continue;
    }
    const trace::LinkConditions impairment = impairmentOf(fault);
    for (const graph::EdgeId edge : faultEdges_[i]) {
      folded[edge] = impaired[edge]
                         ? trace::combineConditions(folded[edge], impairment)
                         : impairment;
      impaired[edge] = true;
    }
  }
  for (graph::EdgeId edge = 0; edge < edgeCount; ++edge) {
    if (impaired[edge]) {
      network.setConditionOverride(edge, folded[edge]);
    } else {
      network.clearConditionOverride(edge);
    }
  }
  service_->setDecisionTickDelay(decisionDelay);
}

}  // namespace dg::chaos
