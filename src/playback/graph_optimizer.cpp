#include "playback/graph_optimizer.hpp"

#include <algorithm>

#include "graph/k_shortest.hpp"
#include "graph/shortest_path.hpp"
#include "util/rng.hpp"

namespace dg::playback {

namespace {

/// Candidate paths: Yen's k shortest on current latencies, plus the best
/// deadline-feasible path through every source out-link and destination
/// in-link (the augmentations the targeted constructions use), all
/// filtered to the deadline.
std::vector<graph::Path> buildCandidates(
    const graph::Graph& overlay, routing::Flow flow,
    std::span<const util::SimTime> latencies, const OptimizerParams& params) {
  std::vector<graph::Path> candidates = graph::kShortestPaths(
      overlay, flow.source, flow.destination, latencies,
      static_cast<std::size_t>(params.candidatePaths));

  const auto pushUnique = [&](graph::Path path) {
    if (std::find(candidates.begin(), candidates.end(), path) ==
        candidates.end()) {
      candidates.push_back(std::move(path));
    }
  };

  for (const graph::EdgeId out : overlay.outEdges(flow.source)) {
    if (latencies[out] == util::kNever) continue;
    const graph::NodeId n = overlay.edge(out).to;
    if (n == flow.destination) {
      pushUnique(graph::Path{out});
      continue;
    }
    const auto rest = graph::shortestPathExcluding(
        overlay, n, flow.destination, latencies, {},
        std::vector<graph::NodeId>{flow.source});
    if (!rest.found) continue;
    graph::Path path{out};
    path.insert(path.end(), rest.edges.begin(), rest.edges.end());
    pushUnique(std::move(path));
  }
  for (const graph::EdgeId in : overlay.inEdges(flow.destination)) {
    if (latencies[in] == util::kNever) continue;
    const graph::NodeId n = overlay.edge(in).from;
    if (n == flow.source) continue;
    const auto head = graph::shortestPathExcluding(
        overlay, flow.source, n, latencies, {},
        std::vector<graph::NodeId>{flow.destination});
    if (!head.found) continue;
    graph::Path path = head.edges;
    path.push_back(in);
    pushUnique(std::move(path));
  }

  // Deadline filter.
  std::erase_if(candidates, [&](const graph::Path& path) {
    const util::SimTime latency =
        graph::pathLatency(overlay, path, latencies);
    return latency == util::kNever || latency > params.delivery.deadline;
  });
  return candidates;
}

}  // namespace

OptimizedGraph optimizeDisseminationGraph(
    const graph::Graph& overlay, routing::Flow flow,
    std::span<const double> lossRates,
    std::span<const util::SimTime> latencies,
    const OptimizerParams& params) {
  OptimizedGraph result{
      graph::DisseminationGraph(overlay, flow.source, flow.destination), 0.0,
      {}};

  const auto candidates = buildCandidates(overlay, flow, latencies, params);
  if (candidates.empty()) return result;

  // Common-random-number evaluation: identical seed per call so that
  // candidate comparisons within a round share their randomness. One
  // workspace serves every candidate evaluation.
  DeliveryWorkspace workspace;
  const auto evaluate = [&](const graph::DisseminationGraph& dg) {
    util::Rng rng(params.seed);
    return onTimeProbabilityMC(dg, lossRates, latencies, params.delivery,
                               params.mcSamples, rng, workspace);
  };

  // Seed with the single best candidate path.
  double bestSeedScore = -1.0;
  const graph::Path* bestSeed = nullptr;
  for (const graph::Path& path : candidates) {
    if (static_cast<int>(path.size()) > params.edgeBudget) continue;
    graph::DisseminationGraph dg(overlay, flow.source, flow.destination);
    dg.addPath(path);
    const double score = evaluate(dg);
    if (score > bestSeedScore) {
      bestSeedScore = score;
      bestSeed = &path;
    }
  }
  if (bestSeed == nullptr) return result;
  result.graph.addPath(*bestSeed);
  result.onTimeProbability = bestSeedScore;
  result.steps.emplace_back(result.graph.edgeCount(), bestSeedScore);

  // Greedy augmentation.
  std::vector<char> used(candidates.size(), 0);
  for (;;) {
    double bestGain = params.minGain;
    std::size_t bestIndex = candidates.size();
    double bestScore = result.onTimeProbability;
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      if (used[i]) continue;
      graph::DisseminationGraph tentative = result.graph;
      tentative.addPath(candidates[i]);
      if (tentative.edgeCount() == result.graph.edgeCount()) {
        used[i] = 1;  // fully contained already
        continue;
      }
      if (static_cast<int>(tentative.edgeCount()) > params.edgeBudget)
        continue;
      const double score = evaluate(tentative);
      const double gain = score - result.onTimeProbability;
      if (gain >= bestGain) {
        bestGain = gain;
        bestIndex = i;
        bestScore = score;
      }
    }
    if (bestIndex == candidates.size()) break;
    used[bestIndex] = 1;
    result.graph.addPath(candidates[bestIndex]);
    result.onTimeProbability = bestScore;
    result.steps.emplace_back(result.graph.edgeCount(), bestScore);
  }
  return result;
}

}  // namespace dg::playback
