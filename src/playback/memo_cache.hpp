// Persistent decision-memo sidecar ("dgmemo"): serializes a playback
// engine's interned routing-decision memo next to a packed trace so a
// later process starts with every (scheme, params, flow) x view-content
// decision already made.
//
// Safety model: the cache is *only* an accelerator. Every stored decision
// is a pure function of its exact key, so a loaded entry reproduces what
// recomputation would produce bit for bit -- provided the cache actually
// belongs to this trace and this build of the decision logic. Two guards
// enforce that:
//   - the trace content fingerprint (PackedTraceReader::contentFingerprint)
//     is stored in the header and must match the file being replayed;
//   - kMemoCacheVersion must match exactly; bump it whenever
//     routing::SchemeParams, the decision logic, or this byte layout
//     changes.
// Any mismatch, truncation or CRC failure makes load() report the cache
// unusable -- the caller just runs cold. A memo-cache problem can cost
// time, never correctness.
//
// Layout (little-endian, CRC framing as in store/format.hpp):
//   0  magic "dgmemo\0\0"      8 bytes
//   8  version                 u32   kMemoCacheVersion
//   12 traceFingerprint        u64
//   20 payloadBytes            u64
//   28 headerCrc               u32   CRC-32 of bytes [0, 28)
//   32 payload (see memo_cache.cpp), then payloadCrc u32
#pragma once

#include <cstdint>
#include <string>

#include "routing/decision_memo.hpp"

namespace dg::playback {

inline constexpr std::uint32_t kMemoCacheVersion = 1;

enum class MemoCacheLoadResult {
  kLoaded,    ///< cache absorbed into the memo
  kMissing,   ///< no file at `path` (normal cold start)
  kRejected,  ///< wrong magic/version/fingerprint, truncated, or corrupt
};

/// Human-readable name ("loaded", "missing", "rejected").
const char* memoCacheLoadResultName(MemoCacheLoadResult result);

/// Loads the sidecar at `path` and absorbs it into `memo` iff the file
/// is intact, the right version, and carries `traceFingerprint`. Never
/// throws on a bad cache file -- that is what kRejected is for.
MemoCacheLoadResult loadMemoCache(const std::string& path,
                                  std::uint64_t traceFingerprint,
                                  routing::DecisionMemo& memo);

/// Serializes `memo` to `path` (atomically: temp file + rename), keyed by
/// `traceFingerprint`. Throws store::StoreError{Io} on write failure.
void saveMemoCache(const std::string& path, std::uint64_t traceFingerprint,
                   const routing::DecisionMemo& memo);

}  // namespace dg::playback
