#include "playback/experiment.hpp"

#include <algorithm>
#include <atomic>
#include <memory>
#include <stdexcept>
#include <thread>
#include <utility>

#include "store/reader.hpp"
#include "util/logging.hpp"
#include "util/stats.hpp"
#include "util/wall_clock.hpp"

namespace dg::playback {

namespace {

/// Per-scheme aggregation shared by both runners: flow-mean
/// unavailability/cost, gap coverage against the configured baseline and
/// optimal schemes, and cost relative to static two-disjoint-paths.
void summarizeSchemes(ExperimentResult& result,
                      const ExperimentConfig& config) {
  const std::size_t schemeCount = config.schemes.size();
  double baselineUnavailability = 0.0;
  double optimalUnavailability = 0.0;
  double twoDisjointCost = 0.0;
  bool haveTwoDisjoint = false;
  std::vector<SchemeSummary> summaries(schemeCount);
  for (std::size_t s = 0; s < schemeCount; ++s) {
    SchemeSummary& summary = summaries[s];
    summary.scheme = config.schemes[s];
    util::OnlineStats unavail;
    util::OnlineStats cost;
    for (std::size_t f = 0; f < config.flows.size(); ++f) {
      const FlowSchemeResult& r = result.at(f, s, schemeCount);
      unavail.add(r.unavailability);
      cost.add(r.averageCost);
      summary.unavailableSeconds += r.unavailableSeconds;
      summary.problematicIntervals += r.problematicIntervals;
    }
    summary.unavailability = unavail.mean();
    summary.averageCost = cost.mean();
    if (summary.scheme == config.gapBaseline)
      baselineUnavailability = summary.unavailability;
    if (summary.scheme == config.gapOptimal)
      optimalUnavailability = summary.unavailability;
    if (summary.scheme == routing::SchemeKind::StaticTwoDisjoint) {
      twoDisjointCost = summary.averageCost;
      haveTwoDisjoint = true;
    }
  }

  const double gap = baselineUnavailability - optimalUnavailability;
  for (SchemeSummary& summary : summaries) {
    summary.gapCoverage =
        gap > 0 ? (baselineUnavailability - summary.unavailability) / gap
                : 0.0;
    summary.costVsTwoDisjoint =
        haveTwoDisjoint && twoDisjointCost > 0
            ? summary.averageCost / twoDisjointCost
            : 0.0;
  }
  result.summary = std::move(summaries);
}

/// Clamps and validates config.flowWindows against the trace geometry:
/// one [first, last) pair per flow, {0, intervalCount} for every flow
/// when no windows are configured. Throws std::invalid_argument on a
/// length mismatch or a window that clamps to empty.
std::vector<std::pair<std::size_t, std::size_t>> resolveWindows(
    const ExperimentConfig& config, std::size_t intervalCount) {
  std::vector<std::pair<std::size_t, std::size_t>> windows(
      config.flows.size(), {std::size_t{0}, intervalCount});
  if (config.flowWindows.empty()) return windows;
  if (config.flowWindows.size() != config.flows.size())
    throw std::invalid_argument(
        "flowWindows must be empty or parallel to flows");
  for (std::size_t f = 0; f < config.flows.size(); ++f) {
    const std::size_t first =
        std::min(config.flowWindows[f].firstInterval, intervalCount);
    const std::size_t last =
        std::min(config.flowWindows[f].lastInterval, intervalCount);
    if (first >= last)
      throw std::invalid_argument("flowWindows: empty window for flow " +
                                  std::to_string(f));
    windows[f] = {first, last};
  }
  return windows;
}

void captureStages(const PlaybackEngine& engine, ExperimentResult& result) {
  const StageTimings& timings = engine.stageTimings();
  result.stages.decodeNs = timings.decodeNs.load(std::memory_order_relaxed);
  result.stages.mcNs = timings.mcNs.load(std::memory_order_relaxed);
  result.stages.memoNs = timings.memoNs.load(std::memory_order_relaxed);
  result.stages.mergeNs = timings.mergeNs.load(std::memory_order_relaxed);
}

/// Experiment-level counters recorded after the sequential telemetry
/// merge; identical in both runners so exports stay comparable.
void recordExperimentMetrics(telemetry::Telemetry& telemetry,
                             std::size_t jobs,
                             const ExperimentResult& result) {
  telemetry.metrics.counter("dg_playback_jobs_total").inc(jobs);
  telemetry::SummaryMetric& perJobUnavailable =
      telemetry.metrics.summary("dg_playback_job_unavailable_seconds");
  for (const FlowSchemeResult& r : result.perFlow)
    perJobUnavailable.observe(r.unavailableSeconds);
}

}  // namespace

// dgcheck: worker
ExperimentResult runExperiment(const graph::Graph& overlay,
                               const trace::Trace& trace,
                               const ExperimentConfig& config,
                               telemetry::Telemetry* telemetry) {
  if (config.flows.empty() || config.schemes.empty())
    throw std::invalid_argument("runExperiment: empty flows or schemes");

  // Windowed jobs replay through runChunkPartial (full-history warm-up,
  // same semantics as the packed runner), which requires cursor mode.
  const bool windowed = !config.flowWindows.empty();
  PlaybackParams playback = config.playback;
  if (windowed) playback.conditionCursor = true;
  const PlaybackEngine engine(overlay, trace, playback);
  const std::vector<std::pair<std::size_t, std::size_t>> windows =
      resolveWindows(config, trace.intervalCount());
  const std::size_t schemeCount = config.schemes.size();
  const std::size_t jobs = config.flows.size() * schemeCount;

  ExperimentResult result;
  result.perFlow.resize(jobs);

  unsigned threadCount = config.threads != 0
                             ? config.threads
                             : std::thread::hardware_concurrency();
  threadCount = std::max(1u, std::min<unsigned>(threadCount,
                                                static_cast<unsigned>(jobs)));

  // One private Telemetry per job: workers never share an instrument, and
  // the sequential job-order merge below is what keeps exports
  // byte-identical across thread counts.
  std::vector<std::unique_ptr<telemetry::Telemetry>> jobTelemetry;
  if (telemetry != nullptr) {
    jobTelemetry.resize(jobs);
    for (auto& t : jobTelemetry)
      t = std::make_unique<telemetry::Telemetry>(telemetry->trace.capacity());
  }

  std::atomic<std::size_t> next{0};
  const auto worker = [&] {
    for (;;) {
      const std::size_t job = next.fetch_add(1);
      if (job >= jobs) return;
      const std::size_t flowIndex = job / schemeCount;
      const std::size_t schemeIndex = job % schemeCount;
      telemetry::Telemetry* jobSink =
          telemetry != nullptr ? jobTelemetry[job].get() : nullptr;
      if (windowed) {
        const auto [first, last] = windows[flowIndex];
        RunPartial partial = engine.runChunkPartial(
            config.flows[flowIndex], config.schemes[schemeIndex],
            config.schemeParams, first, last, nullptr, nullptr, jobSink);
        result.perFlow[job] = engine.finalizePartial(
            config.flows[flowIndex], config.schemes[schemeIndex],
            std::move(partial));
      } else {
        result.perFlow[job] =
            engine.run(config.flows[flowIndex], config.schemes[schemeIndex],
                       config.schemeParams, jobSink);
      }
    }
  };
  if (threadCount == 1) {
    worker();
  } else {
    std::vector<std::thread> threads;
    threads.reserve(threadCount);
    for (unsigned i = 0; i < threadCount; ++i) threads.emplace_back(worker);
    for (std::thread& t : threads) t.join();
  }

  if (telemetry != nullptr) {
    for (const auto& jobResult : jobTelemetry) telemetry->merge(*jobResult);
    recordExperimentMetrics(*telemetry, jobs, result);
  }

  captureStages(engine, result);
  summarizeSchemes(result, config);
  DG_LOG(Info) << "experiment complete: " << jobs << " runs";
  return result;
}

// dgcheck: worker
ExperimentResult runPackedExperiment(const graph::Graph& overlay,
                                     const std::string& packedPath,
                                     const ExperimentConfig& config,
                                     telemetry::Telemetry* telemetry) {
  if (config.flows.empty() || config.schemes.empty())
    throw std::invalid_argument(
        "runPackedExperiment: empty flows or schemes");

  store::PackedTraceReader reader = store::PackedTraceReader::open(packedPath);
  if (reader.info().intervalCount == 0 || reader.info().chunkCount == 0)
    throw std::invalid_argument("runPackedExperiment: empty trace");
  const trace::Trace trace = reader.readAll();

  // The chunk is the accumulation block: the per-job fold below then
  // reproduces a single-threaded blocked run bit for bit (see
  // PlaybackParams::accumBlockIntervals). The cursor mode is what
  // runChunkPartial requires.
  PlaybackParams playback = config.playback;
  playback.conditionCursor = true;
  playback.accumBlockIntervals = reader.info().chunkIntervals;
  const PlaybackEngine engine(overlay, trace, playback);

  ExperimentResult result;
  const bool useMemoCache =
      !config.memoCachePath.empty() && playback.decisionMemo;
  std::uint64_t fingerprint = 0;
  if (useMemoCache) {
    fingerprint = reader.contentFingerprint();
    result.memoCacheLoad = loadMemoCache(config.memoCachePath, fingerprint,
                                         engine.decisionMemoMutable());
    DG_LOG(Info) << "memo cache " << config.memoCachePath << ": "
                 << memoCacheLoadResultName(result.memoCacheLoad);
  }

  const std::size_t schemeCount = config.schemes.size();
  const std::size_t jobs = config.flows.size() * schemeCount;
  const std::vector<std::pair<std::size_t, std::size_t>> windows =
      resolveWindows(config,
                     static_cast<std::size_t>(reader.info().intervalCount));
  const std::size_t chunkCount =
      static_cast<std::size_t>(reader.info().chunkCount);
  const std::size_t chunkIntervals = reader.info().chunkIntervals;
  const std::size_t intervalCount =
      static_cast<std::size_t>(reader.info().intervalCount);
  const std::size_t tasks = jobs * chunkCount;

  result.perFlow.resize(jobs);
  std::vector<RunPartial> partials(tasks);

  unsigned threadCount = config.threads != 0
                             ? config.threads
                             : std::thread::hardware_concurrency();
  threadCount = std::max(
      1u, std::min<unsigned>(threadCount, static_cast<unsigned>(tasks)));

  std::vector<std::unique_ptr<telemetry::Telemetry>> taskTelemetry;
  if (telemetry != nullptr) {
    taskTelemetry.resize(tasks);
    for (auto& t : taskTelemetry)
      t = std::make_unique<telemetry::Telemetry>(telemetry->trace.capacity());
  }

  std::atomic<std::size_t> next{0};
  const auto worker = [&] {
    // Worker-private reader and cursor feeds: chunk decode state is never
    // shared across threads. Two sources because the decision cursor lags
    // the truth cursor by the view staleness, so near a chunk boundary
    // they sit in different chunks -- one shared source would thrash.
    store::PackedTraceReader workerReader =
        store::PackedTraceReader::open(packedPath);
    store::PackedConditionSource decisionSource(workerReader);
    store::PackedConditionSource truthSource(workerReader);
    for (;;) {
      const std::size_t task = next.fetch_add(1);
      if (task >= tasks) return;
      const std::size_t job = task / chunkCount;
      const std::size_t chunk = task % chunkCount;
      // Clamp the chunk to the flow's active window; chunks entirely
      // outside leave their partial empty (merging an empty partial is a
      // no-op). Accumulation blocks sit at absolute chunk boundaries, so
      // the clamped fold still reproduces the single-threaded blocked
      // run over the window -- and the skip decision depends only on the
      // task index, preserving thread invariance.
      const auto [windowFirst, windowLast] = windows[job / schemeCount];
      const std::size_t first =
          std::max(chunk * chunkIntervals, windowFirst);
      const std::size_t last = std::min(
          {chunk * chunkIntervals + chunkIntervals, intervalCount,
           windowLast});
      if (first >= last) continue;
      partials[task] = engine.runChunkPartial(
          config.flows[job / schemeCount], config.schemes[job % schemeCount],
          config.schemeParams, first, last, &decisionSource, &truthSource,
          telemetry != nullptr ? taskTelemetry[task].get() : nullptr);
    }
  };
  if (threadCount == 1) {
    worker();
  } else {
    std::vector<std::thread> threads;
    threads.reserve(threadCount);
    for (unsigned i = 0; i < threadCount; ++i) threads.emplace_back(worker);
    for (std::thread& t : threads) t.join();
  }

  // Deterministic fold: each job's chunk partials in ascending chunk
  // order -- the same merge tree as the single-threaded blocked run.
  const std::int64_t mergeStart =
      playback.collectStageTimings ? util::nowNanos() : 0;
  for (std::size_t job = 0; job < jobs; ++job) {
    RunPartial total;
    for (std::size_t chunk = 0; chunk < chunkCount; ++chunk)
      total.merge(std::move(partials[job * chunkCount + chunk]));
    result.perFlow[job] = engine.finalizePartial(
        config.flows[job / schemeCount], config.schemes[job % schemeCount],
        std::move(total));
  }
  if (playback.collectStageTimings)
    engine.addStageMergeNs(
        static_cast<std::uint64_t>(util::nowNanos() - mergeStart));

  if (telemetry != nullptr) {
    for (const auto& taskResult : taskTelemetry)
      telemetry->merge(*taskResult);
    recordExperimentMetrics(*telemetry, jobs, result);
  }

  if (useMemoCache)
    saveMemoCache(config.memoCachePath, fingerprint, engine.decisionMemo());
  result.memoStats = engine.decisionMemo().stats();

  captureStages(engine, result);
  summarizeSchemes(result, config);
  DG_LOG(Info) << "packed experiment complete: " << jobs << " runs, "
               << chunkCount << " chunks, " << threadCount << " threads";
  return result;
}

std::vector<routing::Flow> transcontinentalFlows(
    const trace::Topology& topology) {
  const std::vector<std::pair<const char*, const char*>> pairs = {
      {"NYC", "SJC"}, {"NYC", "LAX"}, {"JHU", "SEA"}, {"JHU", "SJC"},
      {"WAS", "LAX"}, {"WAS", "SEA"}, {"ATL", "SJC"}, {"ATL", "SEA"},
  };
  std::vector<routing::Flow> flows;
  flows.reserve(pairs.size() * 2);
  for (const auto& [east, west] : pairs) {
    const graph::NodeId e = topology.at(east);
    const graph::NodeId w = topology.at(west);
    flows.push_back(routing::Flow{e, w});
    flows.push_back(routing::Flow{w, e});
  }
  return flows;
}

}  // namespace dg::playback
