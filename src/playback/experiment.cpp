#include "playback/experiment.hpp"

#include <algorithm>
#include <atomic>
#include <memory>
#include <stdexcept>
#include <thread>

#include "util/logging.hpp"
#include "util/stats.hpp"

namespace dg::playback {

ExperimentResult runExperiment(const graph::Graph& overlay,
                               const trace::Trace& trace,
                               const ExperimentConfig& config,
                               telemetry::Telemetry* telemetry) {
  if (config.flows.empty() || config.schemes.empty())
    throw std::invalid_argument("runExperiment: empty flows or schemes");

  const PlaybackEngine engine(overlay, trace, config.playback);
  const std::size_t schemeCount = config.schemes.size();
  const std::size_t jobs = config.flows.size() * schemeCount;

  ExperimentResult result;
  result.perFlow.resize(jobs);

  unsigned threadCount = config.threads != 0
                             ? config.threads
                             : std::thread::hardware_concurrency();
  threadCount = std::max(1u, std::min<unsigned>(threadCount,
                                                static_cast<unsigned>(jobs)));

  // One private Telemetry per job: workers never share an instrument, and
  // the sequential job-order merge below is what keeps exports
  // byte-identical across thread counts.
  std::vector<std::unique_ptr<telemetry::Telemetry>> jobTelemetry;
  if (telemetry != nullptr) {
    jobTelemetry.resize(jobs);
    for (auto& t : jobTelemetry)
      t = std::make_unique<telemetry::Telemetry>(telemetry->trace.capacity());
  }

  std::atomic<std::size_t> next{0};
  const auto worker = [&] {
    for (;;) {
      const std::size_t job = next.fetch_add(1);
      if (job >= jobs) return;
      const std::size_t flowIndex = job / schemeCount;
      const std::size_t schemeIndex = job % schemeCount;
      result.perFlow[job] =
          engine.run(config.flows[flowIndex], config.schemes[schemeIndex],
                     config.schemeParams,
                     telemetry != nullptr ? jobTelemetry[job].get() : nullptr);
    }
  };
  if (threadCount == 1) {
    worker();
  } else {
    std::vector<std::thread> threads;
    threads.reserve(threadCount);
    for (unsigned i = 0; i < threadCount; ++i) threads.emplace_back(worker);
    for (std::thread& t : threads) t.join();
  }

  if (telemetry != nullptr) {
    for (const auto& jobResult : jobTelemetry) telemetry->merge(*jobResult);
    telemetry->metrics.counter("dg_playback_jobs_total").inc(jobs);
    telemetry::SummaryMetric& perJobUnavailable =
        telemetry->metrics.summary("dg_playback_job_unavailable_seconds");
    for (const FlowSchemeResult& r : result.perFlow)
      perJobUnavailable.observe(r.unavailableSeconds);
  }

  // ---- Aggregate per scheme -------------------------------------------
  double baselineUnavailability = 0.0;
  double optimalUnavailability = 0.0;
  double twoDisjointCost = 0.0;
  bool haveTwoDisjoint = false;
  std::vector<SchemeSummary> summaries(schemeCount);
  for (std::size_t s = 0; s < schemeCount; ++s) {
    SchemeSummary& summary = summaries[s];
    summary.scheme = config.schemes[s];
    util::OnlineStats unavail;
    util::OnlineStats cost;
    for (std::size_t f = 0; f < config.flows.size(); ++f) {
      const FlowSchemeResult& r = result.at(f, s, schemeCount);
      unavail.add(r.unavailability);
      cost.add(r.averageCost);
      summary.unavailableSeconds += r.unavailableSeconds;
      summary.problematicIntervals += r.problematicIntervals;
    }
    summary.unavailability = unavail.mean();
    summary.averageCost = cost.mean();
    if (summary.scheme == config.gapBaseline)
      baselineUnavailability = summary.unavailability;
    if (summary.scheme == config.gapOptimal)
      optimalUnavailability = summary.unavailability;
    if (summary.scheme == routing::SchemeKind::StaticTwoDisjoint) {
      twoDisjointCost = summary.averageCost;
      haveTwoDisjoint = true;
    }
  }

  const double gap = baselineUnavailability - optimalUnavailability;
  for (SchemeSummary& summary : summaries) {
    summary.gapCoverage =
        gap > 0 ? (baselineUnavailability - summary.unavailability) / gap
                : 0.0;
    summary.costVsTwoDisjoint =
        haveTwoDisjoint && twoDisjointCost > 0
            ? summary.averageCost / twoDisjointCost
            : 0.0;
  }
  result.summary = std::move(summaries);
  DG_LOG(Info) << "experiment complete: " << jobs << " runs";
  return result;
}

std::vector<routing::Flow> transcontinentalFlows(
    const trace::Topology& topology) {
  const std::vector<std::pair<const char*, const char*>> pairs = {
      {"NYC", "SJC"}, {"NYC", "LAX"}, {"JHU", "SEA"}, {"JHU", "SJC"},
      {"WAS", "LAX"}, {"WAS", "SEA"}, {"ATL", "SJC"}, {"ATL", "SEA"},
  };
  std::vector<routing::Flow> flows;
  flows.reserve(pairs.size() * 2);
  for (const auto& [east, west] : pairs) {
    const graph::NodeId e = topology.at(east);
    const graph::NodeId w = topology.at(west);
    flows.push_back(routing::Flow{e, w});
    flows.push_back(routing::Flow{w, e});
  }
  return flows;
}

}  // namespace dg::playback
