// Per-packet delivery semantics shared by the playback engine and
// (conceptually) the event-driven simulator.
//
// A packet is flooded on a dissemination graph. On each hop it is lost
// with the link's current loss probability; a lost transmission can be
// recovered at most once per hop by the real-time link protocol: the gap
// is noticed when the next packet arrives (one inter-packet interval),
// then a NACK crosses the link and the retransmission crosses it again,
// so a recovered hop costs 3*latency + packetInterval instead of latency.
// A packet counts as delivered iff some causal chain of successful (or
// once-recovered) transmissions reaches the destination within the
// deadline.
#pragma once

#include <span>

#include "graph/dissemination_graph.hpp"
#include "util/rng.hpp"
#include "util/sim_time.hpp"

namespace dg::playback {

struct DeliveryModelParams {
  util::SimTime deadline = util::milliseconds(65);
  /// Inter-packet gap of the flow; bounds loss-detection delay.
  util::SimTime packetInterval = util::milliseconds(10);
  /// Master switch for the per-hop real-time recovery protocol.
  bool recoveryEnabled = true;
};

/// Effective hop outcome distribution on a link with loss rate p and
/// latency `lat`:
///   on-time transit  w.p. (1-p)          after lat
///   recovered        w.p. p(1-p)         after 3*lat + packetInterval
///   lost             w.p. p^2
/// (without recovery: transit w.p. 1-p, lost w.p. p).
util::SimTime sampleHopLatency(double lossRate, util::SimTime latency,
                               const DeliveryModelParams& params,
                               util::Rng& rng);

/// Monte-Carlo estimate of P(packet delivered within deadline) when
/// flooded on `dg` under the given per-edge conditions.
double onTimeProbabilityMC(const graph::DisseminationGraph& dg,
                           std::span<const double> lossRates,
                           std::span<const util::SimTime> latencies,
                           const DeliveryModelParams& params,
                           int samples, util::Rng& rng);

/// Exact fast path valid when every member edge's loss rate is tiny
/// (<= lossEpsilon): delivery is then deterministic up to a residual miss
/// probability bounded by the sum of per-hop unrecoverable losses along
/// the best path. Returns the miss probability (0 area or 1 when even the
/// lossless earliest arrival exceeds the deadline).
double missProbabilityNearLossless(const graph::DisseminationGraph& dg,
                                   std::span<const double> lossRates,
                                   std::span<const util::SimTime> latencies,
                                   const DeliveryModelParams& params);

/// True if the fast path above is applicable.
bool nearLossless(const graph::DisseminationGraph& dg,
                  std::span<const double> lossRates, double lossEpsilon);

}  // namespace dg::playback
