// Per-packet delivery semantics shared by the playback engine and
// (conceptually) the event-driven simulator.
//
// A packet is flooded on a dissemination graph. On each hop it is lost
// with the link's current loss probability; a lost transmission can be
// recovered at most once per hop by the real-time link protocol: the gap
// is noticed when the next packet arrives (one inter-packet interval),
// then a NACK crosses the link and the retransmission crosses it again,
// so a recovered hop costs 3*latency + packetInterval instead of latency.
// A packet counts as delivered iff some causal chain of successful (or
// once-recovered) transmissions reaches the destination within the
// deadline.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "graph/dissemination_graph.hpp"
#include "util/rng.hpp"
#include "util/sim_time.hpp"

namespace dg::playback {

struct DeliveryModelParams {
  util::SimTime deadline = util::milliseconds(65);
  /// Inter-packet gap of the flow; bounds loss-detection delay.
  util::SimTime packetInterval = util::milliseconds(10);
  /// Master switch for the per-hop real-time recovery protocol.
  bool recoveryEnabled = true;
};

namespace detail {

/// Flat 4-ary min-heap over (time, node) entries, ordered by the full
/// pair. Because the order is total (up to exact duplicates, which are
/// interchangeable), the pop sequence equals sorted order and is
/// therefore identical to std::priority_queue's regardless of heap shape
/// -- Dijkstra results stay bit-for-bit unchanged. The 4-ary layout
/// trades slightly more sift-down comparisons for half the tree depth and
/// better cache locality, and the backing vector is reused across
/// samples/intervals without reallocating.
class DaryHeap {
 public:
  struct Entry {
    util::SimTime time;
    graph::NodeId node;
  };

  bool empty() const { return entries_.empty(); }
  void clear() { entries_.clear(); }

  void push(util::SimTime time, graph::NodeId node);
  /// Removes and returns the minimum entry. Precondition: !empty().
  Entry popMin();

 private:
  static constexpr std::size_t kArity = 4;
  static bool less(const Entry& a, const Entry& b) {
    return a.time < b.time || (a.time == b.time && a.node < b.node);
  }
  std::vector<Entry> entries_;
};

/// Per-Monte-Carlo-call memo of sampled outcome patterns. Within one call
/// every member edge draws one of three outcomes (on-time / recovered /
/// lost), so a sample's effective weight vector is fully described by 2
/// bits per member edge -- and with realistic loss rates only a handful
/// of patterns ever occur across the 1000 samples. Caching the Dijkstra
/// verdict per pattern skips the redundant re-runs while every RNG draw
/// still happens, so results are bit-identical to evaluating each sample
/// directly. Epoch-tagged open addressing: beginEpoch() is O(1), lookups
/// probe a bounded window and simply decline to cache on contention.
class SampleOutcomeCache {
 public:
  static constexpr int kMiss = -1;  ///< reserved a slot; store() next
  static constexpr int kFull = -2;  ///< probe window busy; do not store

  /// Starts a new memo epoch, logically clearing all entries.
  void beginEpoch();

  /// Returns 0/1 for a cached verdict. On kMiss the slot is reserved and
  /// the caller MUST follow up with store(); on kFull it must not.
  int find(std::uint64_t keyLo, std::uint64_t keyHi);

  /// Fills the slot reserved by the preceding find() == kMiss.
  void store(bool onTime);

 private:
  struct Slot {
    std::uint64_t keyLo = 0;
    std::uint64_t keyHi = 0;
    std::uint32_t epoch = 0;
    bool onTime = false;
  };
  static constexpr std::size_t kSlots = 4096;  // power of two
  static constexpr std::size_t kMaxProbes = 8;

  std::vector<Slot> slots_;
  std::uint32_t epoch_ = 0;
  std::size_t pending_ = 0;
};

/// Monte-Carlo classify-kernel selection. The batched evaluator draws
/// RNG outcomes for a whole block of samples at once (structure-of-arrays
/// draw buffer) and then classifies the block against the per-edge 53-bit
/// thresholds either with a portable scalar pass or with an AVX2 pass;
/// the fused kernel is the original draw-and-classify loop. All kernels
/// consume draws in the identical order and produce bit-identical
/// results -- kAuto picks per call based on runtime CPU support and the
/// member-edge count, and the forced values let the equivalence suite pin
/// every kernel against the frozen reference.
enum class McKernel { kAuto, kFusedScalar, kBlockScalar, kBlockAvx2 };

/// Forces a kernel for testing (kAuto restores normal dispatch). Not
/// thread-safe; flip it only from single-threaded test setup.
void setMcKernelForTest(McKernel kernel);
/// True if this process can execute the given kernel.
bool mcKernelSupported(McKernel kernel);

}  // namespace detail

/// Caller-owned scratch memory for the delivery evaluators. One workspace
/// serves any number of calls (its arrays are sized on demand); reusing it
/// across the playback hot loop removes every per-call allocation. The
/// contents carry no state between calls -- results are identical whether
/// a workspace is reused, fresh, or (via the wrapper overloads) implicit.
struct DeliveryWorkspace {
  std::vector<util::SimTime> sampledHop;  ///< per-edge sampled hop latency
  std::vector<util::SimTime> dist;        ///< per-node tentative arrival
  std::vector<graph::EdgeId> via;         ///< per-node predecessor edge
  detail::DaryHeap heap;
  detail::SampleOutcomeCache outcomeCache;
  /// Per-member-edge sampling tables, rebuilt per Monte-Carlo call: the
  /// hop-outcome thresholds as exact 53-bit integers (see
  /// onTimeProbabilityMC for the u < thr equivalence proof) and the
  /// on-time / recovered hop latencies, laid out densely in
  /// dissemination-graph edge order.
  std::vector<std::uint64_t> mcThrOnTime;
  std::vector<std::uint64_t> mcThrRecovered;
  std::vector<util::SimTime> mcLatency;
  std::vector<util::SimTime> mcRecoveredLatency;
  /// Structure-of-arrays block buffers for the batched Monte-Carlo
  /// kernels: raw RNG draws for a block of samples (sample-major, so the
  /// draw order equals the reference's), and the per-sample 2-bit
  /// outcome-pattern keys classified from them.
  std::vector<std::uint64_t> mcDraws;
  std::vector<std::uint64_t> mcKeyLo;
  std::vector<std::uint64_t> mcKeyHi;

  /// Group-evaluator scratch: per-receiver clean-run verdicts and the
  /// per-member-edge "lies on some clean-on-time receiver's earliest
  /// path" mask (see onTimeCountsMCGroup).
  std::vector<char> groupCleanOnTime;
  std::vector<char> groupMemberOnCleanPath;

  /// Ensures the per-edge/per-node arrays cover `overlay`.
  void prepare(const graph::Graph& overlay);
};

/// Effective hop outcome distribution on a link with loss rate p and
/// latency `lat`:
///   on-time transit  w.p. (1-p)          after lat
///   recovered        w.p. p(1-p)         after 3*lat + packetInterval
///   lost             w.p. p^2
/// (without recovery: transit w.p. 1-p, lost w.p. p).
util::SimTime sampleHopLatency(double lossRate, util::SimTime latency,
                               const DeliveryModelParams& params,
                               util::Rng& rng);

/// Monte-Carlo estimate of P(packet delivered within deadline) when
/// flooded on `dg` under the given per-edge conditions. Scratch memory
/// comes from `workspace`; for a given rng state the result does not
/// depend on the workspace's prior contents.
double onTimeProbabilityMC(const graph::DisseminationGraph& dg,
                           std::span<const double> lossRates,
                           std::span<const util::SimTime> latencies,
                           const DeliveryModelParams& params,
                           int samples, util::Rng& rng,
                           DeliveryWorkspace& workspace);

/// Convenience overload with a private throwaway workspace.
double onTimeProbabilityMC(const graph::DisseminationGraph& dg,
                           std::span<const double> lossRates,
                           std::span<const util::SimTime> latencies,
                           const DeliveryModelParams& params,
                           int samples, util::Rng& rng);

/// Exact fast path valid when every member edge's loss rate is tiny
/// (<= lossEpsilon): delivery is then deterministic up to a residual miss
/// probability bounded by the sum of per-hop unrecoverable losses along
/// the best path. Returns the miss probability (0 area or 1 when even the
/// lossless earliest arrival exceeds the deadline).
double missProbabilityNearLossless(const graph::DisseminationGraph& dg,
                                   std::span<const double> lossRates,
                                   std::span<const util::SimTime> latencies,
                                   const DeliveryModelParams& params,
                                   DeliveryWorkspace& workspace);

/// Convenience overload with a private throwaway workspace.
double missProbabilityNearLossless(const graph::DisseminationGraph& dg,
                                   std::span<const double> lossRates,
                                   std::span<const util::SimTime> latencies,
                                   const DeliveryModelParams& params);

/// True if the fast path above is applicable.
bool nearLossless(const graph::DisseminationGraph& dg,
                  std::span<const double> lossRates, double lossEpsilon);

// ---------------------------------------------------------------------
// Receiver-set (multicast) evaluators. One flooded send on `dg` is
// scored against every receiver's own deadline. For a single receiver
// these are bit-identical to the unicast evaluators above (same RNG draw
// discipline, same Dijkstra, same arithmetic) -- pinned by test.
// ---------------------------------------------------------------------

/// Near-lossless group evaluation: one unbounded earliest-arrival run,
/// then per receiver the unicast deterministic verdict -- miss 1.0 when
/// unreachable or late, otherwise the residual loss summed along that
/// receiver's earliest-path predecessor chain. Fills missOut[i] and
/// arrivalOut[i] (util::kNever when unreachable), both sized to the
/// receiver count.
void missGroupNearLossless(const graph::DisseminationGraph& dg,
                           std::span<const graph::NodeId> receivers,
                           std::span<const util::SimTime> deadlines,
                           std::span<const double> lossRates,
                           std::span<const util::SimTime> latencies,
                           const DeliveryModelParams& params,
                           DeliveryWorkspace& workspace,
                           std::span<double> missOut,
                           std::span<util::SimTime> arrivalOut);

/// Clean (no-loss) earliest arrival per receiver under the given
/// latencies; util::kNever where unreachable. Equals
/// DisseminationGraph::latencyToDestination for each receiver.
void groupCleanArrivals(const graph::DisseminationGraph& dg,
                        std::span<const util::SimTime> latencies,
                        std::span<const graph::NodeId> receivers,
                        DeliveryWorkspace& workspace,
                        std::span<util::SimTime> arrivalOut);

/// Monte-Carlo group evaluation: for each sample every member edge draws
/// its hop outcome exactly as the unicast evaluator does (identical RNG
/// stream; `rng` is advanced by samples * memberCount draws), and every
/// receiver gets an on-time verdict against its own deadline.
/// onTimeCounts[i] (receiver count) accumulates per-receiver on-time
/// samples; deliveredHistogram[c] (receiver count + 1) counts samples
/// delivered on time to exactly c receivers -- delivered-to-all is the
/// last bin, delivered-to-k is an upper tail sum. Both are zeroed here.
void onTimeCountsMCGroup(const graph::DisseminationGraph& dg,
                         std::span<const graph::NodeId> receivers,
                         std::span<const util::SimTime> deadlines,
                         std::span<const double> lossRates,
                         std::span<const util::SimTime> latencies,
                         const DeliveryModelParams& params, int samples,
                         util::Rng& rng, DeliveryWorkspace& workspace,
                         std::span<int> onTimeCounts,
                         std::span<int> deliveredHistogram);

/// Pre-optimization reference implementations (per-call vector
/// allocations, per-sample std::priority_queue, no clean-sample
/// shortcut). Kept as the baseline arm of the throughput benchmark and
/// for the equivalence tests, which assert the optimized versions above
/// are bit-identical to these on every input.
double onTimeProbabilityMCReference(const graph::DisseminationGraph& dg,
                                    std::span<const double> lossRates,
                                    std::span<const util::SimTime> latencies,
                                    const DeliveryModelParams& params,
                                    int samples, util::Rng& rng);
double missProbabilityNearLosslessReference(
    const graph::DisseminationGraph& dg, std::span<const double> lossRates,
    std::span<const util::SimTime> latencies,
    const DeliveryModelParams& params);

}  // namespace dg::playback
