#include "playback/classification.hpp"

#include <algorithm>

namespace dg::playback {

double ProblemClassification::endpointInvolvedFraction() const {
  const std::size_t attributed = total() - unattributed;
  if (attributed == 0) return 0.0;
  const std::size_t endpoint =
      sourceOnly + destinationOnly + sourceAndDestination + endpointAndMiddle;
  return static_cast<double>(endpoint) / static_cast<double>(attributed);
}

ProblemClassification classifyProblems(
    const graph::Graph& overlay,
    const std::vector<trace::ProblemEvent>& events, routing::Flow flow,
    const std::vector<ProblematicInterval>& problems) {
  ProblemClassification out;
  for (const ProblematicInterval& problem : problems) {
    bool source = false;
    bool destination = false;
    bool middle = false;
    bool attributed = false;
    for (const trace::ProblemEvent& event : events) {
      if (!event.activeDuring(problem.interval)) continue;
      attributed = true;
      for (const graph::EdgeId e : event.affectedEdges) {
        const graph::Edge& edge = overlay.edge(e);
        const bool touchesSource =
            edge.from == flow.source || edge.to == flow.source;
        const bool touchesDestination =
            edge.from == flow.destination || edge.to == flow.destination;
        if (touchesSource) source = true;
        if (touchesDestination) destination = true;
        if (!touchesSource && !touchesDestination) middle = true;
      }
    }
    if (!attributed) {
      ++out.unattributed;
    } else if (source && destination) {
      // Endpoint-dominated either way; fold middle involvement in only
      // when neither endpoint is hit, per the paper's taxonomy emphasis.
      ++out.sourceAndDestination;
    } else if (source && middle) {
      ++out.endpointAndMiddle;
    } else if (destination && middle) {
      ++out.endpointAndMiddle;
    } else if (source) {
      ++out.sourceOnly;
    } else if (destination) {
      ++out.destinationOnly;
    } else {
      ++out.middleOnly;
    }
  }
  return out;
}

ProblemClassification combineClassifications(
    const std::vector<ProblemClassification>& parts) {
  ProblemClassification out;
  for (const ProblemClassification& p : parts) {
    out.sourceOnly += p.sourceOnly;
    out.destinationOnly += p.destinationOnly;
    out.middleOnly += p.middleOnly;
    out.sourceAndDestination += p.sourceAndDestination;
    out.endpointAndMiddle += p.endpointAndMiddle;
    out.unattributed += p.unattributed;
  }
  return out;
}

}  // namespace dg::playback
