// Budgeted dissemination-graph optimization.
//
// The dissemination-graph framework admits *arbitrary* subgraphs, but the
// paper deliberately ships precomputed targeted graphs because optimizing
// a graph per flow per condition snapshot is expensive. This module
// explores that design space (the paper's natural extension): given the
// current per-link conditions and an edge budget, greedily assemble the
// dissemination graph that maximizes on-time delivery probability.
//
// Method: candidate deadline-feasible paths (Yen's k shortest, plus the
// best path through each source/destination link) are merged greedily by
// marginal Monte-Carlo gain under common random numbers, until the budget
// is exhausted or gains vanish. This is a heuristic -- maximizing
// delivery probability over subgraphs is NP-hard in general -- but on
// 12-node overlays it closely tracks exhaustive search and provides an
// independent yardstick for how much of the optimization headroom the
// paper's precomputed targeted graphs already capture (see the
// bench_fig_optimizer experiment).
#pragma once

#include <span>
#include <vector>

#include "graph/dissemination_graph.hpp"
#include "playback/delivery_model.hpp"
#include "routing/scheme.hpp"

namespace dg::playback {

struct OptimizerParams {
  DeliveryModelParams delivery;
  /// Maximum number of member edges of the result.
  int edgeBudget = 12;
  /// Monte-Carlo samples per candidate evaluation (common random numbers
  /// across candidates of one round keep comparisons low-variance).
  int mcSamples = 3000;
  /// Size of the Yen candidate-path pool.
  int candidatePaths = 12;
  /// Stop when the best remaining augmentation gains less than this.
  double minGain = 1e-4;
  std::uint64_t seed = 99;
};

struct OptimizedGraph {
  graph::DisseminationGraph graph;
  /// Monte-Carlo estimate of P(on-time delivery) for `graph`.
  double onTimeProbability = 0.0;
  /// Accepted augmentations, in order: (edges after, estimate after).
  std::vector<std::pair<std::size_t, double>> steps;
};

/// Optimizes a dissemination graph for `flow` under the given per-edge
/// conditions. Returns an empty graph (onTimeProbability 0) when no
/// deadline-feasible route exists at all.
OptimizedGraph optimizeDisseminationGraph(
    const graph::Graph& overlay, routing::Flow flow,
    std::span<const double> lossRates,
    std::span<const util::SimTime> latencies, const OptimizerParams& params);

}  // namespace dg::playback
