#include "playback/ablation.hpp"

#include <sstream>

#include "util/strings.hpp"

namespace dg::playback {

double AblationResult::gapCoverage(routing::SchemeKind kind) const {
  for (const SchemeSummary& s : summary) {
    if (s.scheme == kind) return s.gapCoverage;
  }
  return 0.0;
}

double AblationResult::unavailability(routing::SchemeKind kind) const {
  for (const SchemeSummary& s : summary) {
    if (s.scheme == kind) return s.unavailability;
  }
  return 0.0;
}

std::vector<AblationSpec> standardAblations() {
  using trace::GeneratorParams;
  std::vector<AblationSpec> specs;
  specs.push_back(
      {"baseline", "the canonical configuration",
       [](GeneratorParams&, ExperimentConfig&) {}});
  specs.push_back(
      {"oracle-monitoring",
       "decisions see current conditions (staleness 0): upper-bounds what "
       "faster measurement could buy",
       [](GeneratorParams&, ExperimentConfig& config) {
         config.playback.viewStaleness = 0;
       }});
  specs.push_back(
      {"sluggish-monitoring",
       "two-interval staleness: path chasing degrades, problem "
       "localization barely does",
       [](GeneratorParams&, ExperimentConfig& config) {
         config.playback.viewStaleness = 2;
       }});
  specs.push_back(
      {"no-recovery",
       "per-hop real-time recovery disabled: every scheme loses its "
       "loss-squaring",
       [](GeneratorParams&, ExperimentConfig& config) {
         config.playback.delivery.recoveryEnabled = false;
       }});
  specs.push_back(
      {"all-steady-events",
       "every degradation continuous: adaptive reroutes at their best",
       [](GeneratorParams& generator, ExperimentConfig&) {
         generator.nodeSteadyProb = 1.0;
       }});
  specs.push_back(
      {"all-fluttering-events",
       "every degradation intermittent: reroute-chasing is useless, only "
       "broad redundancy helps",
       [](GeneratorParams& generator, ExperimentConfig&) {
         generator.nodeSteadyProb = 0.0;
       }});
  specs.push_back(
      {"uniform-placement",
       "events spread evenly over sites instead of clustering at edge "
       "sites: middle problems (trivially covered by any redundancy) "
       "dominate the gap",
       [](GeneratorParams& generator, ExperimentConfig&) {
         generator.nodePlacementDegreeExponent = 0.0;
       }});
  specs.push_back(
      {"three-disjoint-paths",
       "redundancy dial: k=3 for the disjoint and targeted schemes",
       [](GeneratorParams&, ExperimentConfig& config) {
         config.schemeParams.disjointPaths = 3;
       }});
  return specs;
}

AblationResult runAblation(const graph::Graph& overlay,
                           const trace::GeneratorParams& baseGenerator,
                           const ExperimentConfig& baseConfig,
                           const AblationSpec& spec) {
  trace::GeneratorParams generator = baseGenerator;
  ExperimentConfig config = baseConfig;
  spec.mutate(generator, config);
  const auto synthetic = generateSyntheticTrace(overlay, generator);
  AblationResult result;
  result.name = spec.name;
  result.summary = runExperiment(overlay, synthetic.trace, config).summary;
  return result;
}

std::vector<AblationResult> runAblationSuite(
    const graph::Graph& overlay, const trace::GeneratorParams& baseGenerator,
    const ExperimentConfig& baseConfig,
    const std::vector<AblationSpec>& specs) {
  std::vector<AblationResult> results;
  results.reserve(specs.size());
  for (const AblationSpec& spec : specs) {
    results.push_back(runAblation(overlay, baseGenerator, baseConfig, spec));
  }
  return results;
}

std::string renderAblationComparison(
    const std::vector<AblationResult>& results,
    const std::vector<routing::SchemeKind>& schemes) {
  std::ostringstream out;
  out << util::padRight("ablation", 26);
  for (const routing::SchemeKind kind : schemes) {
    out << util::padLeft(std::string(routing::schemeName(kind)), 22);
  }
  out << '\n';
  for (const AblationResult& result : results) {
    out << util::padRight(result.name, 26);
    for (const routing::SchemeKind kind : schemes) {
      out << util::padLeft(
          util::formatPercent(result.gapCoverage(kind), 1), 22);
    }
    out << '\n';
  }
  return out.str();
}

}  // namespace dg::playback
