#include "playback/delivery_model.hpp"

#include <queue>
#include <vector>

namespace dg::playback {

util::SimTime sampleHopLatency(double lossRate, util::SimTime latency,
                               const DeliveryModelParams& params,
                               util::Rng& rng) {
  const double u = rng.uniform();
  if (u < 1.0 - lossRate) return latency;
  if (!params.recoveryEnabled) return util::kNever;
  if (u < 1.0 - lossRate * lossRate) {
    return 3 * latency + params.packetInterval;
  }
  return util::kNever;
}

double onTimeProbabilityMC(const graph::DisseminationGraph& dg,
                           std::span<const double> lossRates,
                           std::span<const util::SimTime> latencies,
                           const DeliveryModelParams& params,
                           int samples, util::Rng& rng) {
  if (samples <= 0) return 0.0;
  const graph::Graph& overlay = dg.overlay();
  std::vector<util::SimTime> sampled(overlay.edgeCount(), util::kNever);
  std::vector<util::SimTime> dist(overlay.nodeCount());
  int delivered = 0;

  for (int s = 0; s < samples; ++s) {
    // Sample every member edge's hop outcome for this packet.
    for (const graph::EdgeId e : dg.edges()) {
      sampled[e] = sampleHopLatency(lossRates[e], latencies[e], params, rng);
    }
    // Earliest arrival over the sampled outcomes (Dijkstra; graphs are
    // tiny, a flat array scan is fine for the priority queue).
    std::fill(dist.begin(), dist.end(), util::kNever);
    using Entry = std::pair<util::SimTime, graph::NodeId>;
    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue;
    dist[dg.source()] = 0;
    queue.push({0, dg.source()});
    bool onTime = false;
    while (!queue.empty()) {
      const auto [d, u] = queue.top();
      queue.pop();
      if (d > dist[u]) continue;
      if (u == dg.destination()) {
        onTime = d <= params.deadline;
        break;
      }
      if (d > params.deadline) break;  // nothing reachable in time anymore
      for (const graph::EdgeId e : dg.outEdges(u)) {
        if (sampled[e] == util::kNever) continue;
        const graph::NodeId v = overlay.edge(e).to;
        const util::SimTime nd = d + sampled[e];
        if (nd < dist[v]) {
          dist[v] = nd;
          queue.push({nd, v});
        }
      }
    }
    if (onTime) ++delivered;
  }
  return static_cast<double>(delivered) / static_cast<double>(samples);
}

bool nearLossless(const graph::DisseminationGraph& dg,
                  std::span<const double> lossRates, double lossEpsilon) {
  for (const graph::EdgeId e : dg.edges()) {
    if (lossRates[e] > lossEpsilon) return false;
  }
  return true;
}

double missProbabilityNearLossless(const graph::DisseminationGraph& dg,
                                   std::span<const double> lossRates,
                                   std::span<const util::SimTime> latencies,
                                   const DeliveryModelParams& params) {
  // With near-zero loss, delivery timing is deterministic: the earliest
  // arrival under current latencies either meets the deadline or not.
  // Track predecessors so the residual can be computed along the actual
  // earliest path.
  const graph::Graph& overlay = dg.overlay();
  std::vector<util::SimTime> dist(overlay.nodeCount(), util::kNever);
  std::vector<graph::EdgeId> via(overlay.nodeCount(), graph::kInvalidEdge);
  using Entry = std::pair<util::SimTime, graph::NodeId>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue;
  dist[dg.source()] = 0;
  queue.push({0, dg.source()});
  while (!queue.empty()) {
    const auto [d, u] = queue.top();
    queue.pop();
    if (d > dist[u]) continue;
    for (const graph::EdgeId e : dg.outEdges(u)) {
      const util::SimTime w = latencies[e];
      if (w == util::kNever) continue;
      const graph::NodeId v = overlay.edge(e).to;
      if (d + w < dist[v]) {
        dist[v] = d + w;
        via[v] = e;
        queue.push({d + w, v});
      }
    }
  }
  const util::SimTime at = dist[dg.destination()];
  if (at == util::kNever || at > params.deadline) return 1.0;

  // Residual miss: a packet is only lost if it is dropped (beyond
  // recovery) on *every* usable route; the per-hop residual summed along
  // the single earliest path is therefore a valid upper bound (extra
  // redundancy in the graph only shrinks the truth further).
  double residual = 0.0;
  for (graph::NodeId n = dg.destination(); n != dg.source();) {
    const graph::EdgeId e = via[n];
    const double p = lossRates[e];
    residual += params.recoveryEnabled ? p * p : p;
    n = overlay.edge(e).from;
  }
  return std::min(residual, 1.0);
}

}  // namespace dg::playback
