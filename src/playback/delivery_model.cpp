#include "playback/delivery_model.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <queue>
#include <utility>
#include <vector>

#if defined(__x86_64__) && defined(__GNUC__)
#define DG_MC_HAVE_AVX2_TARGET 1
#include <immintrin.h>
#endif

namespace dg::playback {

namespace detail {

namespace {
// Test-only kernel pin; every kernel is bit-identical, so the selection
// cannot affect results -- only which code path the equivalence tests
// exercise.
McKernel g_mcKernelOverride =  // dglint: ok(R3): test-only kernel pin
    McKernel::kAuto;
}  // namespace

void setMcKernelForTest(McKernel kernel) { g_mcKernelOverride = kernel; }

bool mcKernelSupported(McKernel kernel) {
  if (kernel != McKernel::kBlockAvx2) return true;
#if DG_MC_HAVE_AVX2_TARGET
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

void DaryHeap::push(util::SimTime time, graph::NodeId node) {
  entries_.push_back(Entry{time, node});
  std::size_t i = entries_.size() - 1;
  while (i > 0) {
    const std::size_t parent = (i - 1) / kArity;
    if (!less(entries_[i], entries_[parent])) break;
    std::swap(entries_[i], entries_[parent]);
    i = parent;
  }
}

DaryHeap::Entry DaryHeap::popMin() {
  const Entry top = entries_.front();
  entries_.front() = entries_.back();
  entries_.pop_back();
  const std::size_t n = entries_.size();
  std::size_t i = 0;
  while (true) {
    const std::size_t firstChild = i * kArity + 1;
    if (firstChild >= n) break;
    const std::size_t lastChild = std::min(firstChild + kArity, n);
    std::size_t best = firstChild;
    for (std::size_t c = firstChild + 1; c < lastChild; ++c) {
      if (less(entries_[c], entries_[best])) best = c;
    }
    if (!less(entries_[best], entries_[i])) break;
    std::swap(entries_[i], entries_[best]);
    i = best;
  }
  return top;
}

void SampleOutcomeCache::beginEpoch() {
  if (slots_.empty()) slots_.resize(kSlots);
  if (++epoch_ == 0) {  // uint32 wrap: stale tags could alias, hard-reset
    std::fill(slots_.begin(), slots_.end(), Slot{});
    epoch_ = 1;
  }
}

int SampleOutcomeCache::find(std::uint64_t keyLo, std::uint64_t keyHi) {
  std::uint64_t h = keyLo * 0x9E3779B97F4A7C15ULL + keyHi;
  h ^= h >> 29;
  h *= 0xBF58476D1CE4E5B9ULL;
  h ^= h >> 32;
  for (std::size_t probe = 0; probe < kMaxProbes; ++probe) {
    const std::size_t i = (static_cast<std::size_t>(h) + probe) & (kSlots - 1);
    Slot& slot = slots_[i];
    if (slot.epoch != epoch_) {
      slot.keyLo = keyLo;
      slot.keyHi = keyHi;
      slot.epoch = epoch_;
      pending_ = i;
      return kMiss;
    }
    if (slot.keyLo == keyLo && slot.keyHi == keyHi) {
      return slot.onTime ? 1 : 0;
    }
  }
  return kFull;
}

void SampleOutcomeCache::store(bool onTime) {
  slots_[pending_].onTime = onTime;
}

}  // namespace detail

void DeliveryWorkspace::prepare(const graph::Graph& overlay) {
  if (sampledHop.size() < overlay.edgeCount())
    sampledHop.resize(overlay.edgeCount());
  if (dist.size() < overlay.nodeCount()) dist.resize(overlay.nodeCount());
  if (via.size() < overlay.nodeCount()) via.resize(overlay.nodeCount());
  heap.clear();
}

util::SimTime sampleHopLatency(double lossRate, util::SimTime latency,
                               const DeliveryModelParams& params,
                               util::Rng& rng) {
  const double u = rng.uniform();
  if (u < 1.0 - lossRate) return latency;
  if (!params.recoveryEnabled) return util::kNever;
  if (u < 1.0 - lossRate * lossRate) {
    return 3 * latency + params.packetInterval;
  }
  return util::kNever;
}

namespace {

/// Earliest-arrival deadline check shared by the Monte-Carlo sample loop
/// and its clean-sample precomputation: true iff the destination is
/// reachable within the deadline when member edge e delivers after
/// weights[e] (kNever = lost). Dijkstra on the workspace's flat heap; see
/// DaryHeap for why the result is identical to a std::priority_queue run.
bool onTimeUnder(const graph::DisseminationGraph& dg,
                 std::span<const util::SimTime> weights,
                 util::SimTime deadline, DeliveryWorkspace& ws) {
  const graph::Graph& overlay = dg.overlay();
  std::fill_n(ws.dist.begin(),
              static_cast<std::ptrdiff_t>(overlay.nodeCount()),
              util::kNever);
  ws.heap.clear();
  ws.dist[dg.source()] = 0;
  ws.heap.push(0, dg.source());
  while (!ws.heap.empty()) {
    const auto [d, u] = ws.heap.popMin();
    if (d > ws.dist[u]) continue;
    if (u == dg.destination()) return d <= deadline;
    if (d > deadline) return false;  // nothing reachable in time anymore
    for (const graph::EdgeId e : dg.outEdges(u)) {
      if (weights[e] == util::kNever) continue;
      const graph::NodeId v = overlay.edge(e).to;
      const util::SimTime nd = d + weights[e];
      if (nd < ws.dist[v]) {
        ws.dist[v] = nd;
        ws.heap.push(nd, v);
      }
    }
  }
  return false;
}

/// Like onTimeUnder, but finalizes *every* node whose earliest arrival is
/// within the deadline (no destination early-exit), leaving those exact
/// distances in ws.dist: when the loop stops, all unpopped tentative
/// distances exceed the heap minimum that triggered the stop, so a node
/// has ws.dist <= deadline iff its true distance is. Returns the same
/// on-time verdict as onTimeUnder.
bool distancesWithin(const graph::DisseminationGraph& dg,
                     std::span<const util::SimTime> weights,
                     util::SimTime deadline, DeliveryWorkspace& ws) {
  const graph::Graph& overlay = dg.overlay();
  const std::size_t nodeCount = overlay.nodeCount();
  std::fill_n(ws.dist.begin(), static_cast<std::ptrdiff_t>(nodeCount),
              util::kNever);
  std::fill_n(ws.via.begin(), static_cast<std::ptrdiff_t>(nodeCount),
              graph::kInvalidEdge);
  ws.heap.clear();
  ws.dist[dg.source()] = 0;
  ws.heap.push(0, dg.source());
  while (!ws.heap.empty()) {
    const auto [d, u] = ws.heap.popMin();
    if (d > ws.dist[u]) continue;
    if (d > deadline) break;
    for (const graph::EdgeId e : dg.outEdges(u)) {
      if (weights[e] == util::kNever) continue;
      const graph::NodeId v = overlay.edge(e).to;
      const util::SimTime nd = d + weights[e];
      if (nd < ws.dist[v]) {
        ws.dist[v] = nd;
        ws.via[v] = e;
        ws.heap.push(nd, v);
      }
    }
  }
  return ws.dist[dg.destination()] <= deadline;
}

/// Samples per batched block. Bounded so the draw buffer (block *
/// members * 8 bytes) stays inside L1 even for 64-member graphs.
constexpr int kMcBlockSamples = 32;

/// Portable SoA classify pass: turns a block of raw draws (sample-major,
/// `memberCount` draws per sample) into per-sample 2-bit outcome-pattern
/// keys. Identical classification to the fused loop -- same thresholds,
/// same 53-bit integer comparison -- just decoupled from the RNG
/// advance.
// dgcheck: hot
void buildKeysScalar(const std::uint64_t* draws, std::size_t memberCount,
                     int blockSamples, const std::uint64_t* thrOnTime,
                     const std::uint64_t* thrRecovered,
                     std::uint64_t* keyLo, std::uint64_t* keyHi) {
  for (int b = 0; b < blockSamples; ++b) {
    const std::uint64_t* d =
        draws + static_cast<std::size_t>(b) * memberCount;
    std::uint64_t key[2] = {0, 0};
    for (std::size_t i = 0; i < memberCount; ++i) {
      const std::uint64_t k = d[i] >> 11;
      if (k >= thrOnTime[i]) [[unlikely]] {
        const std::uint64_t code =
            1 + static_cast<std::uint64_t>(k >= thrRecovered[i]);
        key[i >> 5] |= code << (2 * (i & 31));
      }
    }
    keyLo[b] = key[0];
    keyHi[b] = key[1];
  }
}

#if DG_MC_HAVE_AVX2_TARGET
/// AVX2 classify pass: 4 member edges per vector, fully branchless. Both
/// sides of the threshold comparisons are 53-bit integers, so the signed
/// 64-bit compares are exact; per-lane the outcome code is
/// 2 + (k < thrOnTime) + (k < thrRecovered) with the compares as 0/-1
/// masks (0 = on-time, 1 = recovered, 2 = lost), shifted into key
/// position with a variable shift and OR-folded across the block.
// dgcheck: hot
__attribute__((target("avx2"))) void buildKeysAvx2(
    const std::uint64_t* draws, std::size_t memberCount, int blockSamples,
    const std::uint64_t* thrOnTime, const std::uint64_t* thrRecovered,
    std::uint64_t* keyLo, std::uint64_t* keyHi) {
  const __m256i laneShift = _mm256_set_epi64x(6, 4, 2, 0);
  const __m256i two = _mm256_set1_epi64x(2);
  for (int b = 0; b < blockSamples; ++b) {
    const std::uint64_t* d =
        draws + static_cast<std::size_t>(b) * memberCount;
    __m256i accLo = _mm256_setzero_si256();
    __m256i accHi = _mm256_setzero_si256();
    std::size_t i = 0;
    for (; i + 4 <= memberCount; i += 4) {
      const __m256i k = _mm256_srli_epi64(
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(d + i)), 11);
      const __m256i tOn = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(thrOnTime + i));
      const __m256i tRec = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(thrRecovered + i));
      const __m256i onTimeMask = _mm256_cmpgt_epi64(tOn, k);    // k < tOn
      const __m256i recMask = _mm256_cmpgt_epi64(tRec, k);      // k < tRec
      const __m256i code = _mm256_add_epi64(
          two, _mm256_add_epi64(onTimeMask, recMask));
      const __m256i shift = _mm256_add_epi64(
          _mm256_set1_epi64x(2 * static_cast<long long>(i & 31)),
          laneShift);
      const __m256i contrib = _mm256_sllv_epi64(code, shift);
      if (i < 32) {
        accLo = _mm256_or_si256(accLo, contrib);
      } else {
        accHi = _mm256_or_si256(accHi, contrib);
      }
    }
    // Horizontal OR of the four lanes (a lambda would lose the target
    // attribute, so spelled out for both accumulators).
    const __m128i foldedLo = _mm_or_si128(_mm256_castsi256_si128(accLo),
                                          _mm256_extracti128_si256(accLo, 1));
    std::uint64_t kLo =
        static_cast<std::uint64_t>(_mm_cvtsi128_si64(foldedLo)) |
        static_cast<std::uint64_t>(_mm_extract_epi64(foldedLo, 1));
    const __m128i foldedHi = _mm_or_si128(_mm256_castsi256_si128(accHi),
                                          _mm256_extracti128_si256(accHi, 1));
    std::uint64_t kHi =
        static_cast<std::uint64_t>(_mm_cvtsi128_si64(foldedHi)) |
        static_cast<std::uint64_t>(_mm_extract_epi64(foldedHi, 1));
    for (; i < memberCount; ++i) {  // scalar tail (memberCount % 4)
      const std::uint64_t k = d[i] >> 11;
      if (k >= thrOnTime[i]) [[unlikely]] {
        const std::uint64_t code =
            1 + static_cast<std::uint64_t>(k >= thrRecovered[i]);
        (i < 32 ? kLo : kHi) |= code << (2 * (i & 31));
      }
    }
    keyLo[b] = kLo;
    keyHi[b] = kHi;
  }
}
#endif  // DG_MC_HAVE_AVX2_TARGET

/// Kernel dispatch: honor a test override, otherwise pick by measured
/// profitability. The fused loop wins for small member counts (the
/// classify work hides under the serial RNG dependency chain); the
/// branchless AVX2 block pass wins once the per-sample classify is wide
/// enough to amortize the draw-buffer round trip.
detail::McKernel resolveMcKernel(std::size_t memberCount) {
  using detail::McKernel;
  const McKernel forced = detail::g_mcKernelOverride;
  if (forced != McKernel::kAuto) return forced;
#if DG_MC_HAVE_AVX2_TARGET
  static const bool haveAvx2 = __builtin_cpu_supports("avx2") != 0;
  if (haveAvx2 && memberCount >= 16) return McKernel::kBlockAvx2;
#else
  (void)memberCount;
#endif
  return McKernel::kFusedScalar;
}

}  // namespace

// dgcheck: hot
double onTimeProbabilityMC(const graph::DisseminationGraph& dg,
                           std::span<const double> lossRates,
                           std::span<const util::SimTime> latencies,
                           const DeliveryModelParams& params,
                           int samples, util::Rng& rng,
                           DeliveryWorkspace& ws) {
  if (samples <= 0) return 0.0;
  ws.prepare(dg.overlay());
  int delivered = 0;

  // Clean-sample shortcut: when every member edge draws its on-time
  // transit outcome, the sampled array *equals* the latency array, so the
  // per-sample Dijkstra would reproduce this no-loss run exactly --
  // typically the majority of samples, since per-hop loss is well below 1
  // even on problematic links. The RNG is still advanced identically for
  // every sample, so results match the reference implementation bit for
  // bit.
  const bool cleanOnTime =
      distancesWithin(dg, latencies, params.deadline, ws);

  // Deviating samples repeat themselves: each member edge lands on one of
  // three outcomes, so the sample's weight vector is captured by 2 bits
  // per member edge (0 = on-time, 1 = recovered, 2 = lost). Identical
  // patterns imply identical Dijkstra runs -- memoize the verdict per
  // pattern for the duration of this call. Graphs with more than 64
  // member edges overflow the 128-bit key and simply skip the memo.
  const std::vector<graph::EdgeId>& members = dg.edges();
  const std::size_t memberCount = members.size();
  const bool patternMemo = memberCount <= 64;
  if (patternMemo) ws.outcomeCache.beginEpoch();

  // Hoist the per-edge sampling arithmetic out of the sample loop, and
  // classify each draw on the raw 53-bit integer instead of the double:
  // sampleHopLatency draws u = (next() >> 11) * 2^-53 and compares
  // u < thr. Both u and thr * 2^53 are exact doubles (a 53-bit integer
  // scaled by a power of two), so u < thr is *equivalent* to the integer
  // comparison (next() >> 11) < ceil(thr * 2^53) -- every draw classifies
  // identically, bit for bit. With recovery disabled the recovered
  // threshold is pinned to the on-time one so that band is empty.
  if (ws.mcThrOnTime.size() < memberCount) {
    ws.mcThrOnTime.resize(memberCount);
    ws.mcThrRecovered.resize(memberCount);
    ws.mcLatency.resize(memberCount);
    ws.mcRecoveredLatency.resize(memberCount);
  }
  constexpr double kScale53 = 9007199254740992.0;  // 2^53
  for (std::size_t i = 0; i < memberCount; ++i) {
    const double p = lossRates[members[i]];
    const util::SimTime lat = latencies[members[i]];
    ws.mcThrOnTime[i] =
        static_cast<std::uint64_t>(std::ceil((1.0 - p) * kScale53));
    ws.mcThrRecovered[i] =
        params.recoveryEnabled
            ? static_cast<std::uint64_t>(std::ceil((1.0 - p * p) * kScale53))
            : ws.mcThrOnTime[i];
    ws.mcLatency[i] = lat;
    ws.mcRecoveredLatency[i] = 3 * lat + params.packetInterval;
  }
  // Pre-fill the sampled weights with the clean (on-time) outcome; each
  // memoized-pattern miss below only patches the deviating edges in and
  // back out again. Alongside, mark the clean earliest path's member
  // edges (in the key's even bit positions). Sampled outcomes only ever
  // slow an edge down (recovered > on-time, lost = never), which makes
  // the verdict monotone in the clean one:
  //   - clean misses the deadline  -> every sample misses it too;
  //   - clean on time and a sample's deviating edges all avoid the clean
  //     earliest path -> that path is intact, the sample is on time.
  // Only samples that actually slow the earliest path down need a memo
  // lookup or a Dijkstra run.
  std::uint64_t cleanPathLo = 0;
  std::uint64_t cleanPathHi = 0;
  if (patternMemo) {
    for (std::size_t i = 0; i < memberCount; ++i) {
      ws.sampledHop[members[i]] = ws.mcLatency[i];
    }
    if (cleanOnTime) {
      const graph::Graph& overlay = dg.overlay();
      for (graph::NodeId n = dg.destination(); n != dg.source();) {
        const graph::EdgeId e = ws.via[n];
        const std::size_t i = static_cast<std::size_t>(
            std::lower_bound(members.begin(), members.end(), e) -
            members.begin());
        (i < 32 ? cleanPathLo : cleanPathHi) |= std::uint64_t{1}
                                                << (2 * (i & 31));
        n = overlay.edge(e).from;
      }
    }
  }

  // Verdict for one sample's 2-bit outcome-pattern key. Collapse each
  // 2-bit code to its even bit (a pair is never 11) and intersect with
  // the clean-path mask: empty means the clean earliest path is intact
  // (covers the all-on-time case as well). Only samples that slow the
  // clean earliest path down consult the memo / run Dijkstra.
  const auto scoreKey = [&](std::uint64_t keyLo, std::uint64_t keyHi) {
    if (!cleanOnTime) return false;
    if ((((keyLo | (keyLo >> 1)) & cleanPathLo) |
         ((keyHi | (keyHi >> 1)) & cleanPathHi)) == 0) {
      return true;
    }
    const int cached = ws.outcomeCache.find(keyLo, keyHi);
    if (cached >= 0) return cached != 0;
    // A Dijkstra run is actually needed: patch the deviating edges
    // into the pre-filled clean weights. A code pair is never 11,
    // so every set key bit identifies one deviating edge -- even
    // bit means recovered, odd bit means lost.
    const auto patch = [&](std::uint64_t bits, std::size_t base,
                           bool restore) {
      while (bits != 0) {
        const int b = std::countr_zero(bits);
        bits &= bits - 1;
        const std::size_t i = base + static_cast<std::size_t>(b >> 1);
        ws.sampledHop[members[i]] =
            restore ? ws.mcLatency[i]
            : (b & 1) != 0 ? util::kNever
                           : ws.mcRecoveredLatency[i];
      }
    };
    patch(keyLo, 0, false);
    patch(keyHi, 32, false);
    const bool onTime = onTimeUnder(dg, ws.sampledHop, params.deadline, ws);
    patch(keyLo, 0, true);
    patch(keyHi, 32, true);
    if (cached == detail::SampleOutcomeCache::kMiss) {
      ws.outcomeCache.store(onTime);
    }
    return onTime;
  };

  // Draw through a local generator so the four state words live in
  // registers for the whole loop nest (the caller's rng is advanced to
  // the same final state below).
  util::Rng localRng = rng;

  const detail::McKernel kernel =
      patternMemo ? resolveMcKernel(memberCount) : detail::McKernel::kAuto;

  if (!patternMemo) {
    // Too many member edges for a 128-bit pattern key: sample straight
    // into the weight array.
    for (int s = 0; s < samples; ++s) {
      bool deviates = false;
      for (std::size_t i = 0; i < memberCount; ++i) {
        const std::uint64_t k = localRng.next() >> 11;
        const util::SimTime hop = k < ws.mcThrOnTime[i] ? ws.mcLatency[i]
                                  : k < ws.mcThrRecovered[i]
                                      ? ws.mcRecoveredLatency[i]
                                      : util::kNever;
        ws.sampledHop[members[i]] = hop;
        deviates |= hop != ws.mcLatency[i];
      }
      const bool onTime =
          deviates && cleanOnTime
              ? onTimeUnder(dg, ws.sampledHop, params.deadline, ws)
              : cleanOnTime;
      if (onTime) ++delivered;
    }
  } else if (kernel == detail::McKernel::kFusedScalar) {
    // Fused draw-and-classify loop: 2-bit outcome code per member edge
    // (0 = on-time, 1 = recovered, 2 = lost; the thresholds nest, so
    // 1 + the second comparison is the band index). The on-time branch
    // is the overwhelmingly common case -- with baseline loss rates it
    // is taken ~99.99% of the time -- so the key-building work is kept
    // off that path entirely, and the classify work hides under the
    // serial RNG dependency chain.
    for (int s = 0; s < samples; ++s) {
      std::uint64_t keyLo = 0;
      std::uint64_t keyHi = 0;
      const std::size_t lowCount = std::min<std::size_t>(memberCount, 32);
      for (std::size_t i = 0; i < lowCount; ++i) {
        const std::uint64_t k = localRng.next() >> 11;
        if (k >= ws.mcThrOnTime[i]) [[unlikely]] {
          const std::uint64_t code =
              1 + static_cast<std::uint64_t>(k >= ws.mcThrRecovered[i]);
          keyLo |= code << (2 * i);
        }
      }
      for (std::size_t i = 32; i < memberCount; ++i) {
        const std::uint64_t k = localRng.next() >> 11;
        if (k >= ws.mcThrOnTime[i]) [[unlikely]] {
          const std::uint64_t code =
              1 + static_cast<std::uint64_t>(k >= ws.mcThrRecovered[i]);
          keyHi |= code << (2 * (i - 32));
        }
      }
      if (scoreKey(keyLo, keyHi)) ++delivered;
    }
  } else {
    // Batched SoA kernels: draw a whole block of samples into the draw
    // buffer (sample-major -- byte-for-byte the order the fused loop
    // consumes), classify the block into per-sample pattern keys, then
    // score the keys in sample order. The RNG advances by exactly
    // blockSamples * memberCount draws either way, so the caller-visible
    // generator state and every verdict are bit-identical across
    // kernels.
    const std::size_t blockDraws =
        static_cast<std::size_t>(kMcBlockSamples) * memberCount;
    if (ws.mcDraws.size() < blockDraws) ws.mcDraws.resize(blockDraws);
    if (ws.mcKeyLo.size() < static_cast<std::size_t>(kMcBlockSamples)) {
      ws.mcKeyLo.resize(static_cast<std::size_t>(kMcBlockSamples));
      ws.mcKeyHi.resize(static_cast<std::size_t>(kMcBlockSamples));
    }
    for (int s0 = 0; s0 < samples; s0 += kMcBlockSamples) {
      const int blockSamples = std::min(kMcBlockSamples, samples - s0);
      localRng.nextBlock(ws.mcDraws.data(),
                         static_cast<std::size_t>(blockSamples) *
                             memberCount);
#if DG_MC_HAVE_AVX2_TARGET
      if (kernel == detail::McKernel::kBlockAvx2) {
        buildKeysAvx2(ws.mcDraws.data(), memberCount, blockSamples,
                      ws.mcThrOnTime.data(), ws.mcThrRecovered.data(),
                      ws.mcKeyLo.data(), ws.mcKeyHi.data());
      } else {
        buildKeysScalar(ws.mcDraws.data(), memberCount, blockSamples,
                        ws.mcThrOnTime.data(), ws.mcThrRecovered.data(),
                        ws.mcKeyLo.data(), ws.mcKeyHi.data());
      }
#else
      buildKeysScalar(ws.mcDraws.data(), memberCount, blockSamples,
                      ws.mcThrOnTime.data(), ws.mcThrRecovered.data(),
                      ws.mcKeyLo.data(), ws.mcKeyHi.data());
#endif
      for (int b = 0; b < blockSamples; ++b) {
        if (scoreKey(ws.mcKeyLo[static_cast<std::size_t>(b)],
                     ws.mcKeyHi[static_cast<std::size_t>(b)])) {
          ++delivered;
        }
      }
    }
  }
  rng = localRng;
  return static_cast<double>(delivered) / static_cast<double>(samples);
}

double onTimeProbabilityMC(const graph::DisseminationGraph& dg,
                           std::span<const double> lossRates,
                           std::span<const util::SimTime> latencies,
                           const DeliveryModelParams& params,
                           int samples, util::Rng& rng) {
  DeliveryWorkspace ws;
  return onTimeProbabilityMC(dg, lossRates, latencies, params, samples, rng,
                             ws);
}

bool nearLossless(const graph::DisseminationGraph& dg,
                  std::span<const double> lossRates, double lossEpsilon) {
  for (const graph::EdgeId e : dg.edges()) {
    if (lossRates[e] > lossEpsilon) return false;
  }
  return true;
}

double missProbabilityNearLossless(const graph::DisseminationGraph& dg,
                                   std::span<const double> lossRates,
                                   std::span<const util::SimTime> latencies,
                                   const DeliveryModelParams& params,
                                   DeliveryWorkspace& ws) {
  // With near-zero loss, delivery timing is deterministic: the earliest
  // arrival under current latencies either meets the deadline or not.
  // Track predecessors so the residual can be computed along the actual
  // earliest path.
  const graph::Graph& overlay = dg.overlay();
  ws.prepare(overlay);
  const std::size_t nodeCount = overlay.nodeCount();
  std::fill_n(ws.dist.begin(), static_cast<std::ptrdiff_t>(nodeCount),
              util::kNever);
  std::fill_n(ws.via.begin(), static_cast<std::ptrdiff_t>(nodeCount),
              graph::kInvalidEdge);
  ws.heap.clear();
  ws.dist[dg.source()] = 0;
  ws.heap.push(0, dg.source());
  while (!ws.heap.empty()) {
    const auto [d, u] = ws.heap.popMin();
    if (d > ws.dist[u]) continue;
    for (const graph::EdgeId e : dg.outEdges(u)) {
      const util::SimTime w = latencies[e];
      if (w == util::kNever) continue;
      const graph::NodeId v = overlay.edge(e).to;
      if (d + w < ws.dist[v]) {
        ws.dist[v] = d + w;
        ws.via[v] = e;
        ws.heap.push(d + w, v);
      }
    }
  }
  const util::SimTime at = ws.dist[dg.destination()];
  if (at == util::kNever || at > params.deadline) return 1.0;

  // Residual miss: a packet is only lost if it is dropped (beyond
  // recovery) on *every* usable route; the per-hop residual summed along
  // the single earliest path is therefore a valid upper bound (extra
  // redundancy in the graph only shrinks the truth further).
  double residual = 0.0;
  for (graph::NodeId n = dg.destination(); n != dg.source();) {
    const graph::EdgeId e = ws.via[n];
    const double p = lossRates[e];
    residual += params.recoveryEnabled ? p * p : p;
    n = overlay.edge(e).from;
  }
  return std::min(residual, 1.0);
}

double missProbabilityNearLossless(const graph::DisseminationGraph& dg,
                                   std::span<const double> lossRates,
                                   std::span<const util::SimTime> latencies,
                                   const DeliveryModelParams& params) {
  DeliveryWorkspace ws;
  return missProbabilityNearLossless(dg, lossRates, latencies, params, ws);
}

// ---------------------------------------------------------------------
// Receiver-set (multicast) evaluators.
// ---------------------------------------------------------------------

namespace {

/// Unbounded earliest-arrival run over the dissemination graph with
/// predecessor tracking -- the exact loop missProbabilityNearLossless
/// runs, shared so the group variant finalizes every receiver in one
/// pass. Leaves exact distances in ws.dist and the predecessor edge of
/// each reached node in ws.via.
void groupDistancesUnbounded(const graph::DisseminationGraph& dg,
                             std::span<const util::SimTime> weights,
                             DeliveryWorkspace& ws) {
  const graph::Graph& overlay = dg.overlay();
  ws.prepare(overlay);
  const std::size_t nodeCount = overlay.nodeCount();
  std::fill_n(ws.dist.begin(), static_cast<std::ptrdiff_t>(nodeCount),
              util::kNever);
  std::fill_n(ws.via.begin(), static_cast<std::ptrdiff_t>(nodeCount),
              graph::kInvalidEdge);
  ws.heap.clear();
  ws.dist[dg.source()] = 0;
  ws.heap.push(0, dg.source());
  while (!ws.heap.empty()) {
    const auto [d, u] = ws.heap.popMin();
    if (d > ws.dist[u]) continue;
    for (const graph::EdgeId e : dg.outEdges(u)) {
      const util::SimTime w = weights[e];
      if (w == util::kNever) continue;
      const graph::NodeId v = overlay.edge(e).to;
      if (d + w < ws.dist[v]) {
        ws.dist[v] = d + w;
        ws.via[v] = e;
        ws.heap.push(d + w, v);
      }
    }
  }
}

}  // namespace

void missGroupNearLossless(const graph::DisseminationGraph& dg,
                           std::span<const graph::NodeId> receivers,
                           std::span<const util::SimTime> deadlines,
                           std::span<const double> lossRates,
                           std::span<const util::SimTime> latencies,
                           const DeliveryModelParams& params,
                           DeliveryWorkspace& ws, std::span<double> missOut,
                           std::span<util::SimTime> arrivalOut) {
  const graph::Graph& overlay = dg.overlay();
  groupDistancesUnbounded(dg, latencies, ws);
  for (std::size_t r = 0; r < receivers.size(); ++r) {
    const util::SimTime at = ws.dist[receivers[r]];
    arrivalOut[r] = at;
    if (at == util::kNever || at > deadlines[r]) {
      missOut[r] = 1.0;
      continue;
    }
    // Residual miss along this receiver's earliest-path predecessor
    // chain, exactly as the unicast near-lossless fast path charges it.
    double residual = 0.0;
    for (graph::NodeId n = receivers[r]; n != dg.source();) {
      const graph::EdgeId e = ws.via[n];
      const double p = lossRates[e];
      residual += params.recoveryEnabled ? p * p : p;
      n = overlay.edge(e).from;
    }
    missOut[r] = std::min(residual, 1.0);
  }
}

void groupCleanArrivals(const graph::DisseminationGraph& dg,
                        std::span<const util::SimTime> latencies,
                        std::span<const graph::NodeId> receivers,
                        DeliveryWorkspace& ws,
                        std::span<util::SimTime> arrivalOut) {
  groupDistancesUnbounded(dg, latencies, ws);
  for (std::size_t r = 0; r < receivers.size(); ++r) {
    arrivalOut[r] = ws.dist[receivers[r]];
  }
}

// dgcheck: hot
void onTimeCountsMCGroup(const graph::DisseminationGraph& dg,
                         std::span<const graph::NodeId> receivers,
                         std::span<const util::SimTime> deadlines,
                         std::span<const double> lossRates,
                         std::span<const util::SimTime> latencies,
                         const DeliveryModelParams& params, int samples,
                         util::Rng& rng, DeliveryWorkspace& ws,
                         std::span<int> onTimeCounts,
                         std::span<int> deliveredHistogram) {
  // dgcheck: setup begin
  const std::size_t receiverCount = receivers.size();
  std::fill(onTimeCounts.begin(), onTimeCounts.end(), 0);
  std::fill(deliveredHistogram.begin(), deliveredHistogram.end(), 0);
  if (samples <= 0) return;
  ws.prepare(dg.overlay());

  // One clean (all edges on time) run bounded by the loosest deadline
  // finalizes every receiver: a receiver left beyond maxDeadline has true
  // arrival beyond *every* deadline. Per-receiver clean verdicts are
  // saved before the sample loop clobbers ws.dist.
  util::SimTime maxDeadline = 0;
  for (const util::SimTime d : deadlines) maxDeadline = std::max(maxDeadline, d);
  distancesWithin(dg, latencies, maxDeadline, ws);
  if (ws.groupCleanOnTime.size() < receiverCount)
    ws.groupCleanOnTime.resize(receiverCount);
  for (std::size_t r = 0; r < receiverCount; ++r) {
    ws.groupCleanOnTime[r] = ws.dist[receivers[r]] <= deadlines[r] ? 1 : 0;
  }

  // Per-member sampling tables, identical to the unicast evaluator's (see
  // onTimeProbabilityMC for the 53-bit threshold equivalence proof).
  const std::vector<graph::EdgeId>& members = dg.edges();
  const std::size_t memberCount = members.size();
  if (ws.mcThrOnTime.size() < memberCount) {
    ws.mcThrOnTime.resize(memberCount);
    ws.mcThrRecovered.resize(memberCount);
    ws.mcLatency.resize(memberCount);
    ws.mcRecoveredLatency.resize(memberCount);
  }
  constexpr double kScale53 = 9007199254740992.0;  // 2^53
  for (std::size_t i = 0; i < memberCount; ++i) {
    const double p = lossRates[members[i]];
    const util::SimTime lat = latencies[members[i]];
    ws.mcThrOnTime[i] =
        static_cast<std::uint64_t>(std::ceil((1.0 - p) * kScale53));
    ws.mcThrRecovered[i] =
        params.recoveryEnabled
            ? static_cast<std::uint64_t>(std::ceil((1.0 - p * p) * kScale53))
            : ws.mcThrOnTime[i];
    ws.mcLatency[i] = lat;
    ws.mcRecoveredLatency[i] = 3 * lat + params.packetInterval;
  }

  // Monotonicity shortcut, generalized from the unicast clean-path mask:
  // sampled outcomes only ever slow edges down, so (a) a clean-late
  // receiver stays late in every sample, and (b) if a sample's deviating
  // edges all avoid every clean-on-time receiver's earliest path, those
  // paths are intact and every clean verdict stands. Only samples that
  // slow some clean earliest path down need a Dijkstra run.
  if (ws.groupMemberOnCleanPath.size() < memberCount)
    ws.groupMemberOnCleanPath.resize(memberCount);
  std::fill_n(ws.groupMemberOnCleanPath.begin(),
              static_cast<std::ptrdiff_t>(memberCount), char{0});
  {
    const graph::Graph& overlay = dg.overlay();
    for (std::size_t r = 0; r < receiverCount; ++r) {
      if (ws.groupCleanOnTime[r] == 0) continue;
      for (graph::NodeId n = receivers[r]; n != dg.source();) {
        const graph::EdgeId e = ws.via[n];
        const std::size_t i = static_cast<std::size_t>(
            std::lower_bound(members.begin(), members.end(), e) -
            members.begin());
        ws.groupMemberOnCleanPath[i] = 1;
        n = overlay.edge(e).from;
      }
    }
  }
  // dgcheck: setup end

  util::Rng localRng = rng;
  for (int s = 0; s < samples; ++s) {
    bool deviates = false;
    bool touches = false;
    for (std::size_t i = 0; i < memberCount; ++i) {
      const std::uint64_t k = localRng.next() >> 11;
      const util::SimTime hop = k < ws.mcThrOnTime[i] ? ws.mcLatency[i]
                                : k < ws.mcThrRecovered[i]
                                    ? ws.mcRecoveredLatency[i]
                                    : util::kNever;
      ws.sampledHop[members[i]] = hop;
      if (hop != ws.mcLatency[i]) {
        deviates = true;
        touches |= ws.groupMemberOnCleanPath[i] != 0;
      }
    }
    int deliveredCount = 0;
    if (deviates && touches) {
      distancesWithin(dg, ws.sampledHop, maxDeadline, ws);
      for (std::size_t r = 0; r < receiverCount; ++r) {
        if (ws.dist[receivers[r]] <= deadlines[r]) {
          ++onTimeCounts[r];
          ++deliveredCount;
        }
      }
    } else {
      for (std::size_t r = 0; r < receiverCount; ++r) {
        if (ws.groupCleanOnTime[r] != 0) {
          ++onTimeCounts[r];
          ++deliveredCount;
        }
      }
    }
    ++deliveredHistogram[static_cast<std::size_t>(deliveredCount)];
  }
  rng = localRng;
}

// ---------------------------------------------------------------------
// Reference implementations: the pre-optimization code, frozen. Do not
// "improve" these -- their entire value is being the unchanged baseline
// the optimized versions are proven bit-identical against.
// ---------------------------------------------------------------------

// dgcheck: cold: frozen reference implementation; exists to be the unoptimized baseline the fast path is proven bit-identical against
double onTimeProbabilityMCReference(const graph::DisseminationGraph& dg,
                                    std::span<const double> lossRates,
                                    std::span<const util::SimTime> latencies,
                                    const DeliveryModelParams& params,
                                    int samples, util::Rng& rng) {
  if (samples <= 0) return 0.0;
  const graph::Graph& overlay = dg.overlay();
  std::vector<util::SimTime> sampled(overlay.edgeCount(), util::kNever);
  std::vector<util::SimTime> dist(overlay.nodeCount());
  int delivered = 0;

  for (int s = 0; s < samples; ++s) {
    for (const graph::EdgeId e : dg.edges()) {
      sampled[e] = sampleHopLatency(lossRates[e], latencies[e], params, rng);  // dgcheck: ok(R6): reference impl; sequential draws are the frozen spec the fast path is proven bit-identical against
    }
    std::fill(dist.begin(), dist.end(), util::kNever);
    using Entry = std::pair<util::SimTime, graph::NodeId>;
    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue;
    dist[dg.source()] = 0;
    queue.push({0, dg.source()});
    bool onTime = false;
    while (!queue.empty()) {
      const auto [d, u] = queue.top();
      queue.pop();
      if (d > dist[u]) continue;
      if (u == dg.destination()) {
        onTime = d <= params.deadline;
        break;
      }
      if (d > params.deadline) break;
      for (const graph::EdgeId e : dg.outEdges(u)) {
        if (sampled[e] == util::kNever) continue;
        const graph::NodeId v = overlay.edge(e).to;
        const util::SimTime nd = d + sampled[e];
        if (nd < dist[v]) {
          dist[v] = nd;
          queue.push({nd, v});
        }
      }
    }
    if (onTime) ++delivered;
  }
  return static_cast<double>(delivered) / static_cast<double>(samples);
}

// dgcheck: cold: frozen reference implementation; exists to be the unoptimized baseline the fast path is proven bit-identical against
double missProbabilityNearLosslessReference(
    const graph::DisseminationGraph& dg, std::span<const double> lossRates,
    std::span<const util::SimTime> latencies,
    const DeliveryModelParams& params) {
  const graph::Graph& overlay = dg.overlay();
  std::vector<util::SimTime> dist(overlay.nodeCount(), util::kNever);
  std::vector<graph::EdgeId> via(overlay.nodeCount(), graph::kInvalidEdge);
  using Entry = std::pair<util::SimTime, graph::NodeId>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue;
  dist[dg.source()] = 0;
  queue.push({0, dg.source()});
  while (!queue.empty()) {
    const auto [d, u] = queue.top();
    queue.pop();
    if (d > dist[u]) continue;
    for (const graph::EdgeId e : dg.outEdges(u)) {
      const util::SimTime w = latencies[e];
      if (w == util::kNever) continue;
      const graph::NodeId v = overlay.edge(e).to;
      if (d + w < dist[v]) {
        dist[v] = d + w;
        via[v] = e;
        queue.push({d + w, v});
      }
    }
  }
  const util::SimTime at = dist[dg.destination()];
  if (at == util::kNever || at > params.deadline) return 1.0;

  double residual = 0.0;
  for (graph::NodeId n = dg.destination(); n != dg.source();) {
    const graph::EdgeId e = via[n];
    const double p = lossRates[e];
    residual += params.recoveryEnabled ? p * p : p;
    n = overlay.edge(e).from;
  }
  return std::min(residual, 1.0);
}

}  // namespace dg::playback
