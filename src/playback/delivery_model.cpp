#include "playback/delivery_model.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <queue>
#include <utility>
#include <vector>

namespace dg::playback {

namespace detail {

void DaryHeap::push(util::SimTime time, graph::NodeId node) {
  entries_.push_back(Entry{time, node});
  std::size_t i = entries_.size() - 1;
  while (i > 0) {
    const std::size_t parent = (i - 1) / kArity;
    if (!less(entries_[i], entries_[parent])) break;
    std::swap(entries_[i], entries_[parent]);
    i = parent;
  }
}

DaryHeap::Entry DaryHeap::popMin() {
  const Entry top = entries_.front();
  entries_.front() = entries_.back();
  entries_.pop_back();
  const std::size_t n = entries_.size();
  std::size_t i = 0;
  while (true) {
    const std::size_t firstChild = i * kArity + 1;
    if (firstChild >= n) break;
    const std::size_t lastChild = std::min(firstChild + kArity, n);
    std::size_t best = firstChild;
    for (std::size_t c = firstChild + 1; c < lastChild; ++c) {
      if (less(entries_[c], entries_[best])) best = c;
    }
    if (!less(entries_[best], entries_[i])) break;
    std::swap(entries_[i], entries_[best]);
    i = best;
  }
  return top;
}

void SampleOutcomeCache::beginEpoch() {
  if (slots_.empty()) slots_.resize(kSlots);
  if (++epoch_ == 0) {  // uint32 wrap: stale tags could alias, hard-reset
    std::fill(slots_.begin(), slots_.end(), Slot{});
    epoch_ = 1;
  }
}

int SampleOutcomeCache::find(std::uint64_t keyLo, std::uint64_t keyHi) {
  std::uint64_t h = keyLo * 0x9E3779B97F4A7C15ULL + keyHi;
  h ^= h >> 29;
  h *= 0xBF58476D1CE4E5B9ULL;
  h ^= h >> 32;
  for (std::size_t probe = 0; probe < kMaxProbes; ++probe) {
    const std::size_t i = (static_cast<std::size_t>(h) + probe) & (kSlots - 1);
    Slot& slot = slots_[i];
    if (slot.epoch != epoch_) {
      slot.keyLo = keyLo;
      slot.keyHi = keyHi;
      slot.epoch = epoch_;
      pending_ = i;
      return kMiss;
    }
    if (slot.keyLo == keyLo && slot.keyHi == keyHi) {
      return slot.onTime ? 1 : 0;
    }
  }
  return kFull;
}

void SampleOutcomeCache::store(bool onTime) {
  slots_[pending_].onTime = onTime;
}

}  // namespace detail

void DeliveryWorkspace::prepare(const graph::Graph& overlay) {
  if (sampledHop.size() < overlay.edgeCount())
    sampledHop.resize(overlay.edgeCount());
  if (dist.size() < overlay.nodeCount()) dist.resize(overlay.nodeCount());
  if (via.size() < overlay.nodeCount()) via.resize(overlay.nodeCount());
  heap.clear();
}

util::SimTime sampleHopLatency(double lossRate, util::SimTime latency,
                               const DeliveryModelParams& params,
                               util::Rng& rng) {
  const double u = rng.uniform();
  if (u < 1.0 - lossRate) return latency;
  if (!params.recoveryEnabled) return util::kNever;
  if (u < 1.0 - lossRate * lossRate) {
    return 3 * latency + params.packetInterval;
  }
  return util::kNever;
}

namespace {

/// Earliest-arrival deadline check shared by the Monte-Carlo sample loop
/// and its clean-sample precomputation: true iff the destination is
/// reachable within the deadline when member edge e delivers after
/// weights[e] (kNever = lost). Dijkstra on the workspace's flat heap; see
/// DaryHeap for why the result is identical to a std::priority_queue run.
bool onTimeUnder(const graph::DisseminationGraph& dg,
                 std::span<const util::SimTime> weights,
                 util::SimTime deadline, DeliveryWorkspace& ws) {
  const graph::Graph& overlay = dg.overlay();
  std::fill_n(ws.dist.begin(),
              static_cast<std::ptrdiff_t>(overlay.nodeCount()),
              util::kNever);
  ws.heap.clear();
  ws.dist[dg.source()] = 0;
  ws.heap.push(0, dg.source());
  while (!ws.heap.empty()) {
    const auto [d, u] = ws.heap.popMin();
    if (d > ws.dist[u]) continue;
    if (u == dg.destination()) return d <= deadline;
    if (d > deadline) return false;  // nothing reachable in time anymore
    for (const graph::EdgeId e : dg.outEdges(u)) {
      if (weights[e] == util::kNever) continue;
      const graph::NodeId v = overlay.edge(e).to;
      const util::SimTime nd = d + weights[e];
      if (nd < ws.dist[v]) {
        ws.dist[v] = nd;
        ws.heap.push(nd, v);
      }
    }
  }
  return false;
}

/// Like onTimeUnder, but finalizes *every* node whose earliest arrival is
/// within the deadline (no destination early-exit), leaving those exact
/// distances in ws.dist: when the loop stops, all unpopped tentative
/// distances exceed the heap minimum that triggered the stop, so a node
/// has ws.dist <= deadline iff its true distance is. Returns the same
/// on-time verdict as onTimeUnder.
bool distancesWithin(const graph::DisseminationGraph& dg,
                     std::span<const util::SimTime> weights,
                     util::SimTime deadline, DeliveryWorkspace& ws) {
  const graph::Graph& overlay = dg.overlay();
  const std::size_t nodeCount = overlay.nodeCount();
  std::fill_n(ws.dist.begin(), static_cast<std::ptrdiff_t>(nodeCount),
              util::kNever);
  std::fill_n(ws.via.begin(), static_cast<std::ptrdiff_t>(nodeCount),
              graph::kInvalidEdge);
  ws.heap.clear();
  ws.dist[dg.source()] = 0;
  ws.heap.push(0, dg.source());
  while (!ws.heap.empty()) {
    const auto [d, u] = ws.heap.popMin();
    if (d > ws.dist[u]) continue;
    if (d > deadline) break;
    for (const graph::EdgeId e : dg.outEdges(u)) {
      if (weights[e] == util::kNever) continue;
      const graph::NodeId v = overlay.edge(e).to;
      const util::SimTime nd = d + weights[e];
      if (nd < ws.dist[v]) {
        ws.dist[v] = nd;
        ws.via[v] = e;
        ws.heap.push(nd, v);
      }
    }
  }
  return ws.dist[dg.destination()] <= deadline;
}

}  // namespace

double onTimeProbabilityMC(const graph::DisseminationGraph& dg,
                           std::span<const double> lossRates,
                           std::span<const util::SimTime> latencies,
                           const DeliveryModelParams& params,
                           int samples, util::Rng& rng,
                           DeliveryWorkspace& ws) {
  if (samples <= 0) return 0.0;
  ws.prepare(dg.overlay());
  int delivered = 0;

  // Clean-sample shortcut: when every member edge draws its on-time
  // transit outcome, the sampled array *equals* the latency array, so the
  // per-sample Dijkstra would reproduce this no-loss run exactly --
  // typically the majority of samples, since per-hop loss is well below 1
  // even on problematic links. The RNG is still advanced identically for
  // every sample, so results match the reference implementation bit for
  // bit.
  const bool cleanOnTime =
      distancesWithin(dg, latencies, params.deadline, ws);

  // Deviating samples repeat themselves: each member edge lands on one of
  // three outcomes, so the sample's weight vector is captured by 2 bits
  // per member edge (0 = on-time, 1 = recovered, 2 = lost). Identical
  // patterns imply identical Dijkstra runs -- memoize the verdict per
  // pattern for the duration of this call. Graphs with more than 64
  // member edges overflow the 128-bit key and simply skip the memo.
  const std::vector<graph::EdgeId>& members = dg.edges();
  const std::size_t memberCount = members.size();
  const bool patternMemo = memberCount <= 64;
  if (patternMemo) ws.outcomeCache.beginEpoch();

  // Hoist the per-edge sampling arithmetic out of the sample loop, and
  // classify each draw on the raw 53-bit integer instead of the double:
  // sampleHopLatency draws u = (next() >> 11) * 2^-53 and compares
  // u < thr. Both u and thr * 2^53 are exact doubles (a 53-bit integer
  // scaled by a power of two), so u < thr is *equivalent* to the integer
  // comparison (next() >> 11) < ceil(thr * 2^53) -- every draw classifies
  // identically, bit for bit. With recovery disabled the recovered
  // threshold is pinned to the on-time one so that band is empty.
  if (ws.mcThrOnTime.size() < memberCount) {
    ws.mcThrOnTime.resize(memberCount);
    ws.mcThrRecovered.resize(memberCount);
    ws.mcLatency.resize(memberCount);
    ws.mcRecoveredLatency.resize(memberCount);
  }
  constexpr double kScale53 = 9007199254740992.0;  // 2^53
  for (std::size_t i = 0; i < memberCount; ++i) {
    const double p = lossRates[members[i]];
    const util::SimTime lat = latencies[members[i]];
    ws.mcThrOnTime[i] =
        static_cast<std::uint64_t>(std::ceil((1.0 - p) * kScale53));
    ws.mcThrRecovered[i] =
        params.recoveryEnabled
            ? static_cast<std::uint64_t>(std::ceil((1.0 - p * p) * kScale53))
            : ws.mcThrOnTime[i];
    ws.mcLatency[i] = lat;
    ws.mcRecoveredLatency[i] = 3 * lat + params.packetInterval;
  }
  // Pre-fill the sampled weights with the clean (on-time) outcome; each
  // memoized-pattern miss below only patches the deviating edges in and
  // back out again. Alongside, mark the clean earliest path's member
  // edges (in the key's even bit positions). Sampled outcomes only ever
  // slow an edge down (recovered > on-time, lost = never), which makes
  // the verdict monotone in the clean one:
  //   - clean misses the deadline  -> every sample misses it too;
  //   - clean on time and a sample's deviating edges all avoid the clean
  //     earliest path -> that path is intact, the sample is on time.
  // Only samples that actually slow the earliest path down need a memo
  // lookup or a Dijkstra run.
  std::uint64_t cleanPathLo = 0;
  std::uint64_t cleanPathHi = 0;
  if (patternMemo) {
    for (std::size_t i = 0; i < memberCount; ++i) {
      ws.sampledHop[members[i]] = ws.mcLatency[i];
    }
    if (cleanOnTime) {
      const graph::Graph& overlay = dg.overlay();
      for (graph::NodeId n = dg.destination(); n != dg.source();) {
        const graph::EdgeId e = ws.via[n];
        const std::size_t i = static_cast<std::size_t>(
            std::lower_bound(members.begin(), members.end(), e) -
            members.begin());
        (i < 32 ? cleanPathLo : cleanPathHi) |= std::uint64_t{1}
                                                << (2 * (i & 31));
        n = overlay.edge(e).from;
      }
    }
  }

  // Draw through a local generator so the four state words live in
  // registers for the whole loop nest (the caller's rng is advanced to
  // the same final state below).
  util::Rng localRng = rng;

  for (int s = 0; s < samples; ++s) {
    bool onTime;
    if (patternMemo) {
      // Draw loop: 2-bit outcome code per member edge (0 = on-time,
      // 1 = recovered, 2 = lost; the thresholds nest, so 1 + the second
      // comparison is the band index). The on-time branch is the
      // overwhelmingly common case -- with baseline loss rates it is
      // taken ~99.99% of the time -- so the key-building work is kept
      // off that path entirely.
      std::uint64_t keyLo = 0;
      std::uint64_t keyHi = 0;
      const std::size_t lowCount = std::min<std::size_t>(memberCount, 32);
      for (std::size_t i = 0; i < lowCount; ++i) {
        const std::uint64_t k = localRng.next() >> 11;
        if (k >= ws.mcThrOnTime[i]) [[unlikely]] {
          const std::uint64_t code =
              1 + static_cast<std::uint64_t>(k >= ws.mcThrRecovered[i]);
          keyLo |= code << (2 * i);
        }
      }
      for (std::size_t i = 32; i < memberCount; ++i) {
        const std::uint64_t k = localRng.next() >> 11;
        if (k >= ws.mcThrOnTime[i]) [[unlikely]] {
          const std::uint64_t code =
              1 + static_cast<std::uint64_t>(k >= ws.mcThrRecovered[i]);
          keyHi |= code << (2 * (i - 32));
        }
      }
      // Collapse each 2-bit code to its even bit (a pair is never 11) and
      // intersect with the clean-path mask: empty means the clean
      // earliest path is intact (covers the all-on-time case as well).
      if (!cleanOnTime) {
        onTime = false;
      } else if ((((keyLo | (keyLo >> 1)) & cleanPathLo) |
                  ((keyHi | (keyHi >> 1)) & cleanPathHi)) == 0) {
        onTime = true;
      } else {
        const int cached = ws.outcomeCache.find(keyLo, keyHi);
        if (cached >= 0) {
          onTime = cached != 0;
        } else {
          // A Dijkstra run is actually needed: patch the deviating edges
          // into the pre-filled clean weights. A code pair is never 11,
          // so every set key bit identifies one deviating edge -- even
          // bit means recovered, odd bit means lost.
          const auto patch = [&](std::uint64_t bits, std::size_t base,
                                 bool restore) {
            while (bits != 0) {
              const int b = std::countr_zero(bits);
              bits &= bits - 1;
              const std::size_t i = base + static_cast<std::size_t>(b >> 1);
              ws.sampledHop[members[i]] =
                  restore ? ws.mcLatency[i]
                  : (b & 1) != 0 ? util::kNever
                                 : ws.mcRecoveredLatency[i];
            }
          };
          patch(keyLo, 0, false);
          patch(keyHi, 32, false);
          onTime = onTimeUnder(dg, ws.sampledHop, params.deadline, ws);
          patch(keyLo, 0, true);
          patch(keyHi, 32, true);
          if (cached == detail::SampleOutcomeCache::kMiss) {
            ws.outcomeCache.store(onTime);
          }
        }
      }
    } else {
      // Too many member edges for a 128-bit pattern key: sample straight
      // into the weight array.
      bool deviates = false;
      for (std::size_t i = 0; i < memberCount; ++i) {
        const std::uint64_t k = localRng.next() >> 11;
        const util::SimTime hop = k < ws.mcThrOnTime[i] ? ws.mcLatency[i]
                                  : k < ws.mcThrRecovered[i]
                                      ? ws.mcRecoveredLatency[i]
                                      : util::kNever;
        ws.sampledHop[members[i]] = hop;
        deviates |= hop != ws.mcLatency[i];
      }
      onTime = deviates && cleanOnTime
                   ? onTimeUnder(dg, ws.sampledHop, params.deadline, ws)
                   : cleanOnTime;
    }
    if (onTime) ++delivered;
  }
  rng = localRng;
  return static_cast<double>(delivered) / static_cast<double>(samples);
}

double onTimeProbabilityMC(const graph::DisseminationGraph& dg,
                           std::span<const double> lossRates,
                           std::span<const util::SimTime> latencies,
                           const DeliveryModelParams& params,
                           int samples, util::Rng& rng) {
  DeliveryWorkspace ws;
  return onTimeProbabilityMC(dg, lossRates, latencies, params, samples, rng,
                             ws);
}

bool nearLossless(const graph::DisseminationGraph& dg,
                  std::span<const double> lossRates, double lossEpsilon) {
  for (const graph::EdgeId e : dg.edges()) {
    if (lossRates[e] > lossEpsilon) return false;
  }
  return true;
}

double missProbabilityNearLossless(const graph::DisseminationGraph& dg,
                                   std::span<const double> lossRates,
                                   std::span<const util::SimTime> latencies,
                                   const DeliveryModelParams& params,
                                   DeliveryWorkspace& ws) {
  // With near-zero loss, delivery timing is deterministic: the earliest
  // arrival under current latencies either meets the deadline or not.
  // Track predecessors so the residual can be computed along the actual
  // earliest path.
  const graph::Graph& overlay = dg.overlay();
  ws.prepare(overlay);
  const std::size_t nodeCount = overlay.nodeCount();
  std::fill_n(ws.dist.begin(), static_cast<std::ptrdiff_t>(nodeCount),
              util::kNever);
  std::fill_n(ws.via.begin(), static_cast<std::ptrdiff_t>(nodeCount),
              graph::kInvalidEdge);
  ws.heap.clear();
  ws.dist[dg.source()] = 0;
  ws.heap.push(0, dg.source());
  while (!ws.heap.empty()) {
    const auto [d, u] = ws.heap.popMin();
    if (d > ws.dist[u]) continue;
    for (const graph::EdgeId e : dg.outEdges(u)) {
      const util::SimTime w = latencies[e];
      if (w == util::kNever) continue;
      const graph::NodeId v = overlay.edge(e).to;
      if (d + w < ws.dist[v]) {
        ws.dist[v] = d + w;
        ws.via[v] = e;
        ws.heap.push(d + w, v);
      }
    }
  }
  const util::SimTime at = ws.dist[dg.destination()];
  if (at == util::kNever || at > params.deadline) return 1.0;

  // Residual miss: a packet is only lost if it is dropped (beyond
  // recovery) on *every* usable route; the per-hop residual summed along
  // the single earliest path is therefore a valid upper bound (extra
  // redundancy in the graph only shrinks the truth further).
  double residual = 0.0;
  for (graph::NodeId n = dg.destination(); n != dg.source();) {
    const graph::EdgeId e = ws.via[n];
    const double p = lossRates[e];
    residual += params.recoveryEnabled ? p * p : p;
    n = overlay.edge(e).from;
  }
  return std::min(residual, 1.0);
}

double missProbabilityNearLossless(const graph::DisseminationGraph& dg,
                                   std::span<const double> lossRates,
                                   std::span<const util::SimTime> latencies,
                                   const DeliveryModelParams& params) {
  DeliveryWorkspace ws;
  return missProbabilityNearLossless(dg, lossRates, latencies, params, ws);
}

// ---------------------------------------------------------------------
// Reference implementations: the pre-optimization code, frozen. Do not
// "improve" these -- their entire value is being the unchanged baseline
// the optimized versions are proven bit-identical against.
// ---------------------------------------------------------------------

double onTimeProbabilityMCReference(const graph::DisseminationGraph& dg,
                                    std::span<const double> lossRates,
                                    std::span<const util::SimTime> latencies,
                                    const DeliveryModelParams& params,
                                    int samples, util::Rng& rng) {
  if (samples <= 0) return 0.0;
  const graph::Graph& overlay = dg.overlay();
  std::vector<util::SimTime> sampled(overlay.edgeCount(), util::kNever);
  std::vector<util::SimTime> dist(overlay.nodeCount());
  int delivered = 0;

  for (int s = 0; s < samples; ++s) {
    for (const graph::EdgeId e : dg.edges()) {
      sampled[e] = sampleHopLatency(lossRates[e], latencies[e], params, rng);
    }
    std::fill(dist.begin(), dist.end(), util::kNever);
    using Entry = std::pair<util::SimTime, graph::NodeId>;
    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue;
    dist[dg.source()] = 0;
    queue.push({0, dg.source()});
    bool onTime = false;
    while (!queue.empty()) {
      const auto [d, u] = queue.top();
      queue.pop();
      if (d > dist[u]) continue;
      if (u == dg.destination()) {
        onTime = d <= params.deadline;
        break;
      }
      if (d > params.deadline) break;
      for (const graph::EdgeId e : dg.outEdges(u)) {
        if (sampled[e] == util::kNever) continue;
        const graph::NodeId v = overlay.edge(e).to;
        const util::SimTime nd = d + sampled[e];
        if (nd < dist[v]) {
          dist[v] = nd;
          queue.push({nd, v});
        }
      }
    }
    if (onTime) ++delivered;
  }
  return static_cast<double>(delivered) / static_cast<double>(samples);
}

double missProbabilityNearLosslessReference(
    const graph::DisseminationGraph& dg, std::span<const double> lossRates,
    std::span<const util::SimTime> latencies,
    const DeliveryModelParams& params) {
  const graph::Graph& overlay = dg.overlay();
  std::vector<util::SimTime> dist(overlay.nodeCount(), util::kNever);
  std::vector<graph::EdgeId> via(overlay.nodeCount(), graph::kInvalidEdge);
  using Entry = std::pair<util::SimTime, graph::NodeId>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue;
  dist[dg.source()] = 0;
  queue.push({0, dg.source()});
  while (!queue.empty()) {
    const auto [d, u] = queue.top();
    queue.pop();
    if (d > dist[u]) continue;
    for (const graph::EdgeId e : dg.outEdges(u)) {
      const util::SimTime w = latencies[e];
      if (w == util::kNever) continue;
      const graph::NodeId v = overlay.edge(e).to;
      if (d + w < dist[v]) {
        dist[v] = d + w;
        via[v] = e;
        queue.push({d + w, v});
      }
    }
  }
  const util::SimTime at = dist[dg.destination()];
  if (at == util::kNever || at > params.deadline) return 1.0;

  double residual = 0.0;
  for (graph::NodeId n = dg.destination(); n != dg.source();) {
    const graph::EdgeId e = via[n];
    const double p = lossRates[e];
    residual += params.recoveryEnabled ? p * p : p;
    n = overlay.edge(e).from;
  }
  return std::min(residual, 1.0);
}

}  // namespace dg::playback
