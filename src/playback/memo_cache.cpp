#include "playback/memo_cache.hpp"

#include <array>
#include <cstdio>
#include <fstream>
#include <span>
#include <utility>
#include <vector>

#include "store/crc32.hpp"
#include "store/format.hpp"

namespace dg::playback {

namespace {

constexpr std::array<char, 8> kMemoMagic = {'d', 'g', 'm', 'e',
                                            'm', 'o', '\0', '\0'};
constexpr std::size_t kMemoHeaderBytes = 32;

/// Bounds-checked little-endian cursor. A cache file is untrusted input:
/// any overrun just flips `ok` and the caller rejects the file.
struct Cursor {
  std::span<const std::byte> data;
  std::size_t pos = 0;
  bool ok = true;

  std::uint32_t u32() {
    if (!ok || data.size() - pos < 4) {
      ok = false;
      return 0;
    }
    const std::uint32_t v = store::getU32(data, pos);
    pos += 4;
    return v;
  }
  std::uint64_t u64() {
    if (!ok || data.size() - pos < 8) {
      ok = false;
      return 0;
    }
    const std::uint64_t v = store::getU64(data, pos);
    pos += 8;
    return v;
  }
  double f64() { return store::doubleFromBits(u64()); }
};

void putParams(std::vector<std::byte>& out,
               const routing::SchemeParams& params) {
  store::putU64(out, store::doubleBits(params.view.unusableLoss));
  store::putU64(out, store::doubleBits(params.view.degradedLoss));
  store::putU64(out, store::doubleBits(params.view.lossPenaltyFactor));
  store::putU64(out, store::doubleBits(params.detector.problemLoss));
  store::putU64(out,
                static_cast<std::uint64_t>(params.detector.problemExtraLatency));
  store::putU32(out, static_cast<std::uint32_t>(params.detector.nodeMinLinks));
  store::putU64(out, store::doubleBits(params.detector.nodeMinFraction));
  store::putU64(out, static_cast<std::uint64_t>(params.deadline));
  store::putU32(out, static_cast<std::uint32_t>(params.disjointPaths));
  store::putU32(out, static_cast<std::uint32_t>(params.holdDownIntervals));
}

routing::SchemeParams readParams(Cursor& cursor) {
  routing::SchemeParams params;
  params.view.unusableLoss = cursor.f64();
  params.view.degradedLoss = cursor.f64();
  params.view.lossPenaltyFactor = cursor.f64();
  params.detector.problemLoss = cursor.f64();
  params.detector.problemExtraLatency =
      static_cast<util::SimTime>(cursor.u64());
  params.detector.nodeMinLinks = static_cast<int>(cursor.u32());
  params.detector.nodeMinFraction = cursor.f64();
  params.deadline = static_cast<util::SimTime>(cursor.u64());
  params.disjointPaths = static_cast<int>(cursor.u32());
  params.holdDownIntervals = static_cast<int>(cursor.u32());
  return params;
}

bool validSchemeKind(std::uint32_t raw) {
  for (const routing::SchemeKind kind : routing::allSchemeKinds()) {
    if (raw == static_cast<std::uint32_t>(kind)) return true;
  }
  return false;
}

std::vector<std::byte> buildPayload(const routing::DecisionMemo::Snapshot&
                                        snapshot) {
  std::vector<std::byte> payload;
  store::putU32(payload,
                static_cast<std::uint32_t>(snapshot.edgeLists.size()));
  for (const std::vector<graph::EdgeId>& list : snapshot.edgeLists) {
    store::putU32(payload, static_cast<std::uint32_t>(list.size()));
    for (const graph::EdgeId e : list)
      store::putU32(payload, static_cast<std::uint32_t>(e));
  }
  store::putU32(payload,
                static_cast<std::uint32_t>(snapshot.contexts.size()));
  for (const auto& context : snapshot.contexts) {
    store::putU32(payload, static_cast<std::uint32_t>(context.kind));
    store::putU32(payload, static_cast<std::uint32_t>(context.flow.source));
    store::putU32(payload,
                  static_cast<std::uint32_t>(context.flow.destination));
    putParams(payload, context.params);
    store::putU32(payload,
                  static_cast<std::uint32_t>(context.decisions.size()));
    for (const auto& [fingerprint, edgeListId] : context.decisions) {
      store::putU64(payload, fingerprint);
      store::putU32(payload, edgeListId);
    }
  }
  return payload;
}

/// Parses a payload back into a snapshot; false means reject the file.
bool parsePayload(std::span<const std::byte> payload,
                  routing::DecisionMemo::Snapshot& snapshot) {
  Cursor cursor{payload};
  const std::uint32_t edgeListCount = cursor.u32();
  if (!cursor.ok) return false;
  snapshot.edgeLists.reserve(edgeListCount);
  for (std::uint32_t i = 0; i < edgeListCount; ++i) {
    const std::uint32_t length = cursor.u32();
    if (!cursor.ok || payload.size() - cursor.pos < length * 4ull)
      return false;
    std::vector<graph::EdgeId> list;
    list.reserve(length);
    for (std::uint32_t k = 0; k < length; ++k)
      list.push_back(static_cast<graph::EdgeId>(cursor.u32()));
    snapshot.edgeLists.push_back(std::move(list));
  }
  const std::uint32_t contextCount = cursor.u32();
  if (!cursor.ok) return false;
  snapshot.contexts.reserve(contextCount);
  for (std::uint32_t i = 0; i < contextCount; ++i) {
    routing::DecisionMemo::Snapshot::ContextEntry entry;
    const std::uint32_t rawKind = cursor.u32();
    if (!validSchemeKind(rawKind)) return false;
    entry.kind = static_cast<routing::SchemeKind>(rawKind);
    entry.flow.source = static_cast<graph::NodeId>(cursor.u32());
    entry.flow.destination = static_cast<graph::NodeId>(cursor.u32());
    entry.params = readParams(cursor);
    const std::uint32_t decisionCount = cursor.u32();
    if (!cursor.ok || payload.size() - cursor.pos < decisionCount * 12ull)
      return false;
    entry.decisions.reserve(decisionCount);
    for (std::uint32_t d = 0; d < decisionCount; ++d) {
      const std::uint64_t fingerprint = cursor.u64();
      const std::uint32_t edgeListId = cursor.u32();
      if (edgeListId != routing::DecisionMemo::kNoRoute &&
          edgeListId >= edgeListCount)
        return false;
      entry.decisions.emplace_back(fingerprint, edgeListId);
    }
    snapshot.contexts.push_back(std::move(entry));
  }
  // Trailing garbage after a well-formed payload means the framing lied.
  return cursor.ok && cursor.pos == payload.size();
}

}  // namespace

const char* memoCacheLoadResultName(MemoCacheLoadResult result) {
  switch (result) {
    case MemoCacheLoadResult::kLoaded: return "loaded";
    case MemoCacheLoadResult::kMissing: return "missing";
    case MemoCacheLoadResult::kRejected: return "rejected";
  }
  return "unknown";
}

MemoCacheLoadResult loadMemoCache(const std::string& path,
                                  std::uint64_t traceFingerprint,
                                  routing::DecisionMemo& memo) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return MemoCacheLoadResult::kMissing;
  std::vector<std::byte> bytes;
  {
    in.seekg(0, std::ios::end);
    const std::streamoff size = in.tellg();
    if (size < 0) return MemoCacheLoadResult::kRejected;
    in.seekg(0, std::ios::beg);
    bytes.resize(static_cast<std::size_t>(size));
    if (!bytes.empty() &&
        !in.read(reinterpret_cast<char*>(bytes.data()),
                 static_cast<std::streamsize>(bytes.size())))
      return MemoCacheLoadResult::kRejected;
  }
  if (bytes.size() < kMemoHeaderBytes + 4)
    return MemoCacheLoadResult::kRejected;
  const std::span<const std::byte> data = bytes;
  for (std::size_t i = 0; i < kMemoMagic.size(); ++i) {
    if (static_cast<char>(data[i]) != kMemoMagic[i])
      return MemoCacheLoadResult::kRejected;
  }
  if (store::crc32(data.first(kMemoHeaderBytes - 4)) !=
      store::getU32(data, kMemoHeaderBytes - 4))
    return MemoCacheLoadResult::kRejected;
  if (store::getU32(data, 8) != kMemoCacheVersion)
    return MemoCacheLoadResult::kRejected;
  if (store::getU64(data, 12) != traceFingerprint)
    return MemoCacheLoadResult::kRejected;
  const std::uint64_t payloadBytes = store::getU64(data, 20);
  if (kMemoHeaderBytes + payloadBytes + 4 != bytes.size())
    return MemoCacheLoadResult::kRejected;
  const std::span<const std::byte> payload =
      data.subspan(kMemoHeaderBytes, static_cast<std::size_t>(payloadBytes));
  if (store::crc32(payload) !=
      store::getU32(data, kMemoHeaderBytes +
                              static_cast<std::size_t>(payloadBytes)))
    return MemoCacheLoadResult::kRejected;
  routing::DecisionMemo::Snapshot snapshot;
  if (!parsePayload(payload, snapshot)) return MemoCacheLoadResult::kRejected;
  memo.absorb(snapshot);
  return MemoCacheLoadResult::kLoaded;
}

void saveMemoCache(const std::string& path, std::uint64_t traceFingerprint,
                   const routing::DecisionMemo& memo) {
  const std::vector<std::byte> payload = buildPayload(memo.snapshot());

  std::vector<std::byte> file;
  file.reserve(kMemoHeaderBytes + payload.size() + 4);
  for (const char c : kMemoMagic) file.push_back(static_cast<std::byte>(c));
  store::putU32(file, kMemoCacheVersion);
  store::putU64(file, traceFingerprint);
  store::putU64(file, payload.size());
  store::putU32(file, store::crc32(std::span(file).first(kMemoHeaderBytes -
                                                         4)));
  file.insert(file.end(), payload.begin(), payload.end());
  store::putU32(file, store::crc32(payload));

  // Atomic publish: a crash mid-write must not leave a half-cache that a
  // later run would have to reject.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out ||
        !out.write(reinterpret_cast<const char*>(file.data()),
                   static_cast<std::streamsize>(file.size())))
      throw store::StoreError(store::StoreErrorKind::Io,
                              "cannot write memo cache: " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0)
    throw store::StoreError(store::StoreErrorKind::Io,
                            "cannot move memo cache into place: " + path);
}

}  // namespace dg::playback
