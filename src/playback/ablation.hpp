// Structured ablation studies over the evaluation pipeline.
//
// DESIGN.md calls out the design choices whose effect should be
// measurable: monitoring staleness, the per-hop recovery protocol, the
// synthetic event mix (steady vs fluttering, endpoint clustering), and
// the redundancy dial (number of disjoint paths). Each ablation mutates
// the baseline configuration, regenerates the trace where generator
// parameters changed, reruns the full flows x schemes experiment, and the
// comparison renderer lines the gap coverages up side by side.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "playback/experiment.hpp"
#include "trace/synth.hpp"

namespace dg::playback {

struct AblationSpec {
  std::string name;
  std::string rationale;  ///< one line: what this isolates
  /// Mutates the generator and/or experiment configuration.
  std::function<void(trace::GeneratorParams&, ExperimentConfig&)> mutate;
};

struct AblationResult {
  std::string name;
  std::vector<SchemeSummary> summary;  ///< experiment scheme summaries

  /// Gap coverage of a scheme in this ablation (0 if absent).
  double gapCoverage(routing::SchemeKind kind) const;
  double unavailability(routing::SchemeKind kind) const;
};

/// The standard suite: baseline, staleness 0/2, recovery off, all-steady
/// and all-fluttering event mixes, uniform placement, and three disjoint
/// paths.
std::vector<AblationSpec> standardAblations();

/// Runs one ablation: applies the mutation, regenerates the synthetic
/// trace from the (possibly mutated) generator parameters, and runs the
/// experiment.
AblationResult runAblation(const graph::Graph& overlay,
                           const trace::GeneratorParams& baseGenerator,
                           const ExperimentConfig& baseConfig,
                           const AblationSpec& spec);

/// Runs a whole suite (baseline first is conventional but not required).
std::vector<AblationResult> runAblationSuite(
    const graph::Graph& overlay, const trace::GeneratorParams& baseGenerator,
    const ExperimentConfig& baseConfig,
    const std::vector<AblationSpec>& specs);

/// Side-by-side table: one row per ablation, gap-coverage columns for the
/// given schemes.
std::string renderAblationComparison(
    const std::vector<AblationResult>& results,
    const std::vector<routing::SchemeKind>& schemes);

}  // namespace dg::playback
