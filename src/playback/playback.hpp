// The playback engine: replays a recorded (or synthetic) condition trace
// for one flow under one routing scheme and computes, per 10-second
// interval, the probability that a packet sent in that interval arrives
// within the deadline -- plus the scheme's cost in transmissions per
// packet.
//
// This mirrors the paper's Playback Network Simulator methodology: all
// schemes replay the *identical* condition stream; adaptive schemes see
// conditions with a configurable staleness (default one interval, since
// loss statistics cannot be acted upon before they are collected).
//
// Healthy intervals (the overwhelming majority) take an exact fast path;
// intervals where any member link of the current dissemination graph is
// lossy are evaluated by Monte-Carlo over the per-hop outcome model.
//
// Hot-path architecture (see DESIGN.md, "Playback performance
// architecture"): replay is driven by trace::ConditionTimeline cursors
// (O(changes) per interval, zero allocation) handing out fingerprinted
// borrowed NetworkViews; routing decisions and deterministic interval
// evaluations are memoized across jobs in engine-owned, exact-keyed,
// internally synchronized memos. Monte-Carlo evaluations are never
// memoized -- each interval draws from its own deterministic RNG stream
// -- so results are bit-identical with the memos and cursor on or off.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <vector>

#include "graph/graph.hpp"
#include "playback/delivery_model.hpp"
#include "routing/decision_memo.hpp"
#include "routing/scheme.hpp"
#include "telemetry/telemetry.hpp"
#include "trace/condition_timeline.hpp"
#include "trace/trace.hpp"
#include "util/stats.hpp"

namespace dg::playback {

struct PlaybackParams {
  DeliveryModelParams delivery;
  /// Monte-Carlo samples per lossy interval.
  int mcSamples = 1000;
  /// Member-link loss rate above which an interval needs Monte-Carlo.
  double lossEpsilon = 1e-3;
  /// How stale the view driving adaptive decisions is, in intervals.
  /// 0 = oracle (decisions see current conditions), 1 = realistic.
  int viewStaleness = 1;
  /// An interval is counted as "problematic" for a flow/scheme when its
  /// miss probability exceeds this.
  double problematicThreshold = 1e-3;
  /// Seed driving all Monte-Carlo sampling (per-interval streams are
  /// derived deterministically, so results are independent of run order).
  std::uint64_t seed = 7;
  /// When set, FlowSchemeResult::intervalLatenciesUs records the selected
  /// graph's earliest-arrival latency for every interval where delivery
  /// is possible (for latency-distribution figures).
  bool collectIntervalLatencies = false;
  /// Consult/populate the engine's cross-job decision and evaluation
  /// memos (results are bit-identical either way; off = recompute
  /// everything, for benchmarking and equivalence tests).
  bool decisionMemo = true;
  /// Drive replay with the condition-timeline cursor and fingerprinted
  /// views (off = legacy per-interval vector materialization; results
  /// are bit-identical either way).
  bool conditionCursor = true;
  /// Accumulation block length in intervals. 0 (default) accumulates the
  /// whole range into one block -- the historical behavior. When set,
  /// per-interval statistics are folded into per-block partials at
  /// absolute interval boundaries (t % block == 0) and the blocks are
  /// merged in order, and the run-local clean-interval reuse cache is
  /// reset at each boundary. This fixes the floating-point merge tree, so
  /// a chunk-parallel sweep whose chunks coincide with the blocks
  /// produces bit-identical results at any thread count -- and identical
  /// to a single-threaded run with the same block length. (Results with
  /// block B differ from block 0 in the last float bits; both are valid.)
  std::size_t accumBlockIntervals = 0;
  /// Accumulate per-stage wall-clock nanoseconds (decode / Monte-Carlo /
  /// memo / merge) into PlaybackEngine::stageTimings(). Adds two clock
  /// reads around each non-trivial operation; leave off outside
  /// benchmarks.
  bool collectStageTimings = false;
};

/// One problematic interval of a flow/scheme run (sparse record).
struct ProblematicInterval {
  std::size_t interval = 0;
  double missProbability = 0.0;
};

struct FlowSchemeResult {
  routing::Flow flow;
  routing::SchemeKind scheme{};

  /// Packet-weighted mean miss probability over the whole trace.
  double unavailability = 0.0;
  /// Sum over intervals of missProbability * interval length, in seconds:
  /// the expected total unavailable time ("unavailable seconds").
  double unavailableSeconds = 0.0;
  /// Number of intervals with miss probability > problematicThreshold.
  std::size_t problematicIntervals = 0;
  /// Mean transmissions per packet (the paper's cost metric).
  double averageCost = 0.0;
  /// Mean on-time one-way latency proxy: earliest-arrival latency of the
  /// selected graph under current conditions, averaged over intervals
  /// where delivery is possible, in microseconds.
  double averageLatencyUs = 0.0;

  /// Sparse list of the problematic intervals (for classification and
  /// case-study plots).
  std::vector<ProblematicInterval> problems;
  /// Dense per-interval delivery latency (microseconds; only intervals
  /// where delivery is possible). Populated only when
  /// PlaybackParams::collectIntervalLatencies is set.
  std::vector<double> intervalLatenciesUs;
};

/// Partial accumulation of one contiguous interval range of a (flow,
/// scheme) run. Chunk-parallel sweeps compute one RunPartial per chunk
/// and fold them in chunk order; merging partials of adjacent ranges in
/// ascending order reproduces the single-threaded blocked accumulation
/// bit for bit (see PlaybackParams::accumBlockIntervals).
struct RunPartial {
  util::WeightedMean missMean;
  util::OnlineStats costStats;
  util::OnlineStats latencyStats;
  double unavailableSeconds = 0.0;
  std::size_t problematicIntervals = 0;
  std::vector<ProblematicInterval> problems;
  std::vector<double> intervalLatenciesUs;

  /// Folds a partial covering the range immediately *after* this one.
  void merge(RunPartial&& later);
};

/// Cumulative wall-clock nanoseconds per replay stage, summed across all
/// runs on one engine (workers add their local tallies once per range,
/// relaxed). Collected only when PlaybackParams::collectStageTimings is
/// set. "decode" is condition access (cursor seeks, span fetches, legacy
/// vector materialization), "mc" is Monte-Carlo evaluation, "memo" is
/// routing selects plus deterministic evaluations and memo traffic,
/// "merge" is block folds and partial merges.
struct StageTimings {
  std::atomic<std::uint64_t> decodeNs{0};
  std::atomic<std::uint64_t> mcNs{0};
  std::atomic<std::uint64_t> memoNs{0};
  std::atomic<std::uint64_t> mergeNs{0};
};

class PlaybackEngine {
 public:
  PlaybackEngine(const graph::Graph& overlay, const trace::Trace& trace,
                 PlaybackParams params);

  /// Replays the whole trace for one flow under one scheme. `telemetry`
  /// (nullable) collects per-interval counters and histograms labeled
  /// {flow="src->dst", scheme=...}, classification counts from the
  /// scheme, and GraphSwitch trace events; `telemetry->now` tracks the
  /// sim-time start of the interval being replayed.
  FlowSchemeResult run(routing::Flow flow, routing::SchemeKind kind,
                       const routing::SchemeParams& schemeParams,
                       telemetry::Telemetry* telemetry = nullptr) const;

  /// Replays an interval range [first, last) -- used by the case-study
  /// experiment and by tests.
  FlowSchemeResult runRange(routing::Flow flow, routing::SchemeKind kind,
                            const routing::SchemeParams& schemeParams,
                            std::size_t first, std::size_t last,
                            telemetry::Telemetry* telemetry = nullptr) const;

  /// Per-interval miss probabilities over a range (dense; for timelines).
  /// Every interval is evaluated fresh (no run-local reuse), so
  /// Monte-Carlo intervals reflect their own per-interval RNG streams.
  std::vector<double> missTimeline(routing::Flow flow,
                                   routing::SchemeKind kind,
                                   const routing::SchemeParams& schemeParams,
                                   std::size_t first, std::size_t last) const;

  /// Chunk-parallel building block: replays [first, last) and returns the
  /// partial accumulation, after rolling the scheme's decision state
  /// forward over [0, first) exactly as a full run would (telemetry
  /// detached, clean steady spans skipped in O(log deviations) via the
  /// schemes' steadyOnBaseline() fixed-point contract). `decisionSource`
  /// and `truthSource` (nullable -> replay from the in-memory trace) let
  /// each worker cursor over its own PackedConditionSource so no decode
  /// state is shared across threads. Requires conditionCursor mode.
  ///
  /// With params().accumBlockIntervals == B > 0 and chunks aligned to B,
  /// merging the partials of a run's chunks in ascending order yields the
  /// same bits as runRange over the union -- at any thread count.
  /// `telemetry` (nullable) collects this range's counters/events; chunk
  /// boundaries reset the per-run "last classification" trace-event
  /// dedup, so chunked trace *event* streams can differ from unchunked
  /// ones (counters and results do not).
  RunPartial runChunkPartial(routing::Flow flow, routing::SchemeKind kind,
                             const routing::SchemeParams& schemeParams,
                             std::size_t first, std::size_t last,
                             trace::ConditionSource* decisionSource,
                             trace::ConditionSource* truthSource,
                             telemetry::Telemetry* telemetry = nullptr) const;

  /// Converts a fully merged partial into the result record.
  FlowSchemeResult finalizePartial(routing::Flow flow,
                                   routing::SchemeKind kind,
                                   RunPartial&& total) const;

  const trace::Trace& trace() const { return *trace_; }
  const PlaybackParams& params() const { return params_; }

  /// The per-interval content index built over the trace (exact
  /// memoization fingerprints; also useful for deviation statistics).
  const trace::ConditionIndex& conditionIndex() const {
    return conditionIndex_;
  }
  /// The engine's cross-job decision memo (for hit-rate reporting).
  const routing::DecisionMemo& decisionMemo() const { return decisionMemo_; }
  /// Mutable handle for the persistent sidecar cache (memo_cache.*):
  /// absorb a loaded snapshot before runs, snapshot after. Memoized
  /// decisions are pure functions of their keys, so pre-seeding cannot
  /// change results.
  routing::DecisionMemo& decisionMemoMutable() const { return decisionMemo_; }

  /// Per-stage wall-clock tallies (populated only when
  /// PlaybackParams::collectStageTimings is set).
  const StageTimings& stageTimings() const { return stageTimings_; }
  /// Lets drivers (the experiment merge loop) account their own merge
  /// work in the same place.
  void addStageMergeNs(std::uint64_t ns) const {
    stageTimings_.mergeNs.fetch_add(ns, std::memory_order_relaxed);
  }

 private:
  struct IntervalEval {
    double miss = 0.0;
    double cost = 0.0;
    util::SimTime latency = util::kNever;
    bool monteCarlo = false;  ///< the lossy path actually sampled
  };
  /// Exact key of a memoized deterministic interval evaluation:
  /// {flow source, flow destination, interned edge-list id, interval
  /// content id}. Engine-level delivery params are fixed per engine, so
  /// these four components determine the evaluation completely.
  using EvalKey = std::array<std::uint32_t, 4>;

  /// Everything the scoring loop needs. Bundled because the loop is
  /// shared by three entry points (runRange, missTimeline,
  /// runChunkPartial) with different warm-up offsets, cursors and
  /// continuity seeds.
  struct ScoreSpec {
    routing::RoutingScheme* scheme = nullptr;
    const routing::NetworkView* baselineView = nullptr;
    routing::Flow flow;
    routing::SchemeKind kind{};
    std::size_t first = 0;
    std::size_t last = 0;
    /// Intervals below this are decided on the baseline view regardless
    /// of trace content (the scheme cannot have observed anything yet).
    /// runRange passes first + staleness; chunk partials pass the
    /// absolute staleness because their scheme history starts at 0.
    std::size_t warmupUntil = 0;
    trace::ConditionTimeline* decisionCursor = nullptr;
    trace::ConditionTimeline* truthCursor = nullptr;
    telemetry::Telemetry* telemetry = nullptr;
    std::vector<double>* timelineOut = nullptr;
    bool reuseCleanEvals = true;
    /// GraphSwitch continuity across chunk boundaries: the selection in
    /// force at the end of warm-up (updated in place by the loop).
    std::vector<graph::EdgeId> lastSelectedEdges;
    bool haveSelected = false;
  };

  /// Shared replay core behind runRange (timelineOut == nullptr) and
  /// missTimeline (timelineOut != nullptr; per-interval miss appended,
  /// no run-local evaluation reuse, no telemetry).
  FlowSchemeResult runCore(routing::Flow flow, routing::SchemeKind kind,
                           const routing::SchemeParams& schemeParams,
                           std::size_t first, std::size_t last,
                           telemetry::Telemetry* telemetry,
                           std::vector<double>* timelineOut) const;

  /// The per-interval scoring loop (decision, truth conditions,
  /// evaluation, accumulation) over [spec.first, spec.last).
  RunPartial scoreIntervals(ScoreSpec& spec) const;

  /// Smallest interval t >= fromInterval whose *decision* view (t -
  /// staleness) carries a deviation; trace end if none. O(log
  /// deviations) via the sorted deviation list built at construction.
  std::size_t nextDeviatingDecision(std::size_t fromInterval,
                                    std::size_t staleness) const;

  std::optional<IntervalEval> findEval(const EvalKey& key) const;
  void storeEval(const EvalKey& key, const IntervalEval& eval) const;

  const graph::Graph* overlay_;
  const trace::Trace* trace_;
  PlaybackParams params_;
  trace::ConditionIndex conditionIndex_;
  /// Sorted intervals that deviate from baseline (for steady-span jumps).
  std::vector<std::size_t> deviatingIntervals_;
  mutable StageTimings stageTimings_;

  // Cross-job memos. Mutable + internally synchronized: one const engine
  // is shared across experiment worker threads, and every memoized value
  // is a pure function of its exact key, so results are independent of
  // thread count and insertion order.
  mutable routing::DecisionMemo decisionMemo_;
  mutable std::mutex evalMutex_;
  mutable std::map<EvalKey, IntervalEval> evalMemo_;
};

}  // namespace dg::playback
